/**
 * Ablation (Sec. V-A design choice): the Eq. 6 output-MSE coefficient
 * search vs the plain weight-MSE search. The output-weighted objective
 * spends grid resolution on the weights that multiply high-power
 * (hot-channel) activations. Reports per-layer output NMSE on held-out
 * activations and the end-to-end proxy perplexity of both searches.
 */

#include "bench_util.h"
#include "model/quantized_linear.h"
#include "tensor/stats.h"

using namespace mant;
using namespace mant::bench;

int
main()
{
    banner(std::cout, "Ablation — Eq. 6 output-MSE vs weight-MSE "
                      "coefficient search");

    ModelInstance inst = makeInstance("llama-1-7b");
    const ModelCalibration calib = ModelCalibration::collect(
        *inst.weights, inst.evaluator->corpus()[0]);

    // --- Layer-level: quantize each attention-input projection both
    // ways and measure output NMSE against held-out activations.
    TablePrinter table({"layer", "weight-MSE out NMSE",
                        "Eq.6 out NMSE", "improvement"});
    Rng rng(808);
    const ArchDims &d = inst.profile.simDims;
    for (size_t l = 0; l < inst.weights->layers.size(); ++l) {
        const Tensor &w = inst.weights->layers[l].wq;
        const auto power =
            calib.power(static_cast<int64_t>(l), LinearSlot::AttnIn);

        // Held-out activations with the hot-channel power profile.
        Tensor x(Shape{32, d.dModel});
        for (int64_t t = 0; t < 32; ++t) {
            for (int64_t c = 0; c < d.dModel; ++c) {
                x.at(t, c) = static_cast<float>(
                    rng.gaussian(0.0,
                                 std::sqrt(power[static_cast<size_t>(
                                     c)])));
            }
        }
        const Tensor ref = linearNT(x, w);

        const MantQuantizedMatrix plain =
            MantQuantizedMatrix::quantize(w, 64);
        const MantQuantizedMatrix eq6 = MantQuantizedMatrix::quantize(
            w, 64, MantQuantizedMatrix::Search::OutputMse, power);

        const double nmse_plain =
            nmse(ref.span(), linearNT(x, plain.dequantize()).span());
        const double nmse_eq6 =
            nmse(ref.span(), linearNT(x, eq6.dequantize()).span());
        table.addRow({std::to_string(l), fmt(nmse_plain, 5),
                      fmt(nmse_eq6, 5),
                      fmtX(nmse_plain / nmse_eq6)});
    }
    table.print(std::cout);

    // --- End to end.
    QuantSetup setup = mantW4A8Setup(64);
    const double ppl_plain = inst.evaluator->perplexityOf(setup);
    const double ppl_eq6 =
        inst.evaluator->perplexityOf(setup, nullptr, &calib);
    std::cout << "\nEnd-to-end proxy PPL (MANT W4A8): weight-MSE "
              << fmt(ppl_plain) << "  vs  Eq.6 " << fmt(ppl_eq6)
              << "  (FP16 " << fmt(inst.evaluator->referencePerplexity())
              << ")\n";
    std::cout << "Takeaway: weighting the search by calibration E[x^2] "
                 "protects the weights that multiply hot activation "
                 "channels — every layer's output error drops "
                 "(Sec. V-A, Eq. 6). On this synthetic substrate the "
                 "end-to-end proxy PPL is within seed noise of the "
                 "plain search: a random residual stream lacks the "
                 "trained structure that turns per-layer gains into "
                 "model-level gains (see EXPERIMENTS.md limitations).\n";
    return 0;
}
