/**
 * Ablation (Sec. VI-E): the non-pipelined division unit. The paper
 * models a 12-cycle divider whose latency hides behind K-dimension
 * iterations; this bench sweeps the number of K-tiles and divider
 * latency and reports the exposed fraction of total GEMM cycles.
 */

#include "bench_util.h"
#include "sim/accelerators.h"
#include "sim/systolic.h"

using namespace mant;
using namespace mant::bench;

int
main()
{
    banner(std::cout,
           "Ablation — division-unit latency hiding (Sec. VI-E)");

    const ArchConfig arch = mantArch();

    // Sweep K (accumulation depth) for a decode-style and a
    // prefill-style GEMM with output quantization.
    TablePrinter table({"M", "K", "k-tiles", "exposed cycles",
                        "total cycles", "overhead %"});
    for (const int64_t m : {1, 2048}) {
        for (const int64_t k : {128, 256, 512, 768, 1024, 4096}) {
            GemmShape g;
            g.m = m;
            g.k = k;
            g.n = 4096;
            g.actBits = 8;
            g.weightBits = 4;
            g.mantWeights = true;
            g.outputQuant = true;
            const GemmStats s = simulateGemm(arch, g);
            const int64_t k_tiles =
                (k + arch.arrayRows(8, 4) - 1) / arch.arrayRows(8, 4);
            table.addRow({std::to_string(m), std::to_string(k),
                          std::to_string(k_tiles),
                          fmt(s.exposedQuantCycles, 0),
                          fmt(s.cycles, 0),
                          fmt(100.0 * s.exposedQuantCycles / s.cycles,
                              2)});
        }
    }
    table.print(std::cout);

    std::cout << "\nDivider-latency sensitivity (k-tiles needed to "
                 "hide):\n";
    TablePrinter sens({"divider latency", "exposed @ 4 k-tiles",
                       "exposed @ 12 k-tiles", "exposed @ 16 k-tiles"});
    for (const int64_t lat : {4, 8, 12, 16, 24}) {
        auto exposed = [&](int64_t kt) {
            return kt >= lat ? 0.0
                             : static_cast<double>(lat - kt) * 128.0;
        };
        sens.addRow({std::to_string(lat), fmt(exposed(4), 0),
                     fmt(exposed(12), 0), fmt(exposed(16), 0)});
    }
    sens.print(std::cout);
    std::cout << "\nPaper check: a (2048,4096,4096) GEMM exposes "
                 "~0.3% quantization overhead; K >= 12 array-depths "
                 "fully hides the 12-cycle divider.\n";
    return 0;
}
