/**
 * Ablation (Sec. V-C design choice): variance-based real-time type
 * selection vs the exhaustive MSE search, on real K/V cache samples.
 * Reports quantization-error ratio, selection agreement, and the
 * speed gap that forces the variance shortcut in the decode stage.
 */

#include "bench_util.h"
#include "core/variance_selector.h"
#include "model/transformer.h"

using namespace mant;
using namespace mant::bench;

int
main()
{
    banner(std::cout, "Ablation — variance-based vs MSE-based type "
                      "selection for the KV cache");

    ModelInstance inst = makeInstance("llama-2-7b");
    const auto calib_samples = Transformer::collectKvSamples(
        *inst.weights, inst.evaluator->corpus()[0]);
    const VarianceSelector sel =
        VarianceSelector::calibrateMulti(calib_samples, 64);

    // Held-out samples from a different context.
    const auto test_samples = Transformer::collectKvSamples(
        *inst.weights, inst.evaluator->corpus()[1]);

    double var_err = 0.0, mse_err = 0.0;
    int64_t groups = 0, agree_type = 0;
    double var_ns = 0.0, mse_ns = 0.0;
    std::vector<float> out;

    for (const Tensor &t : test_samples) {
        const int64_t inner = t.shape().innerDim();
        const int64_t outer = t.shape().outerCount();
        for (int64_t r = 0; r < outer; ++r) {
            for (int64_t g0 = 0; g0 + 64 <= inner; g0 += 64) {
                std::span<const float> group(t.data() + r * inner + g0,
                                             64);
                out.resize(64);

                Stopwatch sv;
                StreamingStats st;
                st.addAll(group);
                const MantSelection fast = sel.selectFromStats(st);
                var_ns += sv.elapsedNs();
                applySelection(group, fast, out);
                for (size_t i = 0; i < 64; ++i) {
                    const double d = group[i] - out[i];
                    var_err += d * d;
                }

                Stopwatch sm;
                const MantSelection slow = searchCoefficient(group);
                mse_ns += sm.elapsedNs();
                mse_err += slow.err;

                agree_type += fast.isInt == slow.isInt &&
                              (fast.isInt ||
                               std::abs(fast.a - slow.a) <= 10);
                ++groups;
            }
        }
    }

    TablePrinter table({"selector", "sq-error (norm.)",
                        "select ns/group", "notes"});
    table.addRow({"MSE search (16 types)", "1.000",
                  fmt(mse_ns / static_cast<double>(groups), 0),
                  "offline-only (weights)"});
    table.addRow({"variance lookup", fmt(var_err / mse_err, 3),
                  fmt(var_ns / static_cast<double>(groups), 0),
                  "streaming, used for KV"});
    table.print(std::cout);
    std::cout << "\nType agreement (same type or |delta a| <= 10): "
              << fmt(100.0 * static_cast<double>(agree_type) /
                         static_cast<double>(groups), 1)
              << "% over " << groups << " held-out groups\n";

    // End-to-end effect: PPL with each selector path.
    const ModelCalibration calib = ModelCalibration::collect(
        *inst.weights, inst.evaluator->corpus()[0]);
    const double ppl_var = inst.evaluator->perplexityOf(
        mantFullSetup(64), &sel, &calib);
    std::cout << "\nEnd-to-end proxy PPL (W4A8 + KV4, variance "
                 "selection): "
              << fmt(ppl_var) << "  (FP16 "
              << fmt(inst.evaluator->referencePerplexity()) << ")\n";
    std::cout << "Takeaway: the variance lookup costs a small error "
                 "factor but is orders of magnitude cheaper, making "
                 "real-time KV selection feasible (Sec. V-C).\n";
    return 0;
}
