/**
 * Ablation (Sec. V-C): the V-cache process-window size. Larger
 * windows hold more recent tokens at INT8 (better late-token quality,
 * more 8-bit residency); smaller windows finalize to 4-bit sooner.
 * Sweeps the window/group size and reports reconstruction error,
 * average 8-bit residency, and end-to-end proxy PPL.
 */

#include "bench_util.h"
#include "core/kv_quant.h"
#include "model/transformer.h"
#include "tensor/stats.h"

using namespace mant;
using namespace mant::bench;

int
main()
{
    banner(std::cout,
           "Ablation — V-cache process-window (group) size");

    ModelInstance inst = makeInstance("llama-2-7b");
    const auto samples = Transformer::collectKvSamples(
        *inst.weights, inst.evaluator->corpus()[0]);
    const ModelCalibration calib = ModelCalibration::collect(
        *inst.weights, inst.evaluator->corpus()[0]);

    TablePrinter table({"window G", "V recon NMSE", "avg 8-bit rows",
                        "proxy PPL (W4A8+KV4)"});

    for (const int64_t window : {16, 32, 64, 96}) {
        const VarianceSelector sel =
            VarianceSelector::calibrateMulti(samples, window);

        // Reconstruction error of a simulated 96-step decode stream.
        Rng rng(42);
        const int64_t ch = 48, steps = 96;
        TemporalVQuantizer tq(ch, window, sel);
        Tensor seed(Shape{window, ch});
        for (int64_t i = 0; i < seed.numel(); ++i)
            seed[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
        tq.pushPrefill(seed);

        Tensor stream(Shape{steps, ch});
        double pending_rows = 0.0;
        for (int64_t r = 0; r < steps; ++r) {
            for (int64_t c = 0; c < ch; ++c)
                stream.at(r, c) =
                    static_cast<float>(rng.gaussian(0.0, 1.0));
            tq.pushDecode(stream.row(r));
            pending_rows += static_cast<double>(tq.pendingRows());
        }
        const Tensor rec = tq.reconstruct();
        double err = 0.0, ref = 0.0;
        for (int64_t r = 0; r < steps; ++r) {
            for (int64_t c = 0; c < ch; ++c) {
                const double d =
                    rec.at(window + r, c) - stream.at(r, c);
                err += d * d;
                ref += static_cast<double>(stream.at(r, c)) *
                       stream.at(r, c);
            }
        }

        QuantSetup setup = mantFullSetup(window);
        const double ppl =
            inst.evaluator->perplexityOf(setup, &sel, &calib);
        table.addRow({std::to_string(window), fmt(err / ref, 4),
                      fmt(pending_rows / static_cast<double>(steps), 1),
                      fmt(ppl)});
        std::cout << "  [G=" << window << "] done\n";
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\nTakeaway: the window is the group size — small "
                 "windows quantize sooner (finer groups, lower error "
                 "per group) but leave fewer recent tokens at INT8; "
                 "G-64 is the paper's balance point.\n";
    return 0;
}
