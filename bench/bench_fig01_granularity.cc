/**
 * Figure 1 reproduction: LLaMA-7B perplexity under INT4 W4A16
 * symmetric weight quantization at channel / G-128 / G-64 / G-32
 * granularity. Paper series: FP16 5.68; channel 6.85; group sizes
 * approach FP16, with G-32 only marginally better than G-64 while
 * quadrupling the scale overhead.
 */

#include "bench_util.h"
#include "model/quant_setup.h"
#include "quant/granularity.h"

using namespace mant;
using namespace mant::bench;

int
main()
{
    banner(std::cout, "Fig. 1 — PPL vs quantization granularity "
                      "(llama-1-7b-sim, INT4 W4A16)");

    ModelInstance inst = makeInstance("llama-1-7b");
    const double fp16 = inst.evaluator->referencePerplexity();

    struct Row
    {
        const char *label;
        Granularity gran;
        int64_t group;
        double paper;
    };
    const Row rows[] = {
        {"Channel", Granularity::PerChannel, 0, 6.85},
        {"G-128", Granularity::PerGroup, 128, 5.81},
        {"G-64", Granularity::PerGroup, 64, 5.78},
        {"G-32", Granularity::PerGroup, 32, 5.76},
    };

    TablePrinter table({"granularity", "bits/elem", "measured PPL",
                        "paper PPL (approx)"});
    table.addRow({"FP16", "16", fmt(fp16), "5.68"});
    for (const Row &row : rows) {
        QuantSetup setup;
        setup.weight = WeightMethod::Int;
        setup.weightBits = 4;
        setup.weightGran = row.gran;
        setup.weightGroup = row.group;
        setup.act = ActMethod::None; // W4A16

        const double ppl = inst.evaluator->perplexityOf(setup);
        const double bits =
            row.group > 0 ? 4.0 + 16.0 / static_cast<double>(row.group)
                          : 4.0 + 16.0 / 192.0;
        table.addRow({row.label, fmt(bits, 3), fmt(ppl),
                      fmt(row.paper)});
        std::cout << "  [" << row.label << "] done\n";
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\nExpected shape: channel-wise clearly worse; group "
                 "sizes recover most of the FP16 quality; G-32 only "
                 "marginally better than G-64.\n";
    return 0;
}
