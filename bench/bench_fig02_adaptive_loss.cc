/**
 * Figure 2 reproduction: PPL *loss* over FP16 for INT, ANT, and the
 * Ideal per-group clustering method under 4-bit group quantization
 * (G-128) on LLaMA-7B. Paper: INT 0.404, ANT 0.218, Ideal 0.074.
 * MANT is included as a fourth bar: it should land between ANT and
 * Ideal (Sec. III-A's motivation for full adaptivity).
 */

#include "bench_util.h"
#include "model/quant_setup.h"
#include "model/quantized_linear.h"
#include "tensor/stats.h"

using namespace mant;
using namespace mant::bench;

int
main()
{
    banner(std::cout, "Fig. 2 — PPL loss of adaptive methods "
                      "(llama-1-7b-sim, 4-bit, G-128)");

    ModelInstance inst = makeInstance("llama-1-7b");
    const double fp16 = inst.evaluator->referencePerplexity();

    auto weight_only = [](WeightMethod m) {
        QuantSetup s;
        s.weight = m;
        s.weightBits = 4;
        s.weightGran = Granularity::PerGroup;
        s.weightGroup = 128;
        s.act = ActMethod::None;
        return s;
    };

    TablePrinter table({"method", "weight NMSE", "measured PPL",
                        "measured loss", "paper loss"});
    struct Row
    {
        const char *label;
        WeightMethod method;
        const char *paper;
    };
    const Row rows[] = {
        {"INT", WeightMethod::Int, "0.404"},
        {"ANT", WeightMethod::Ant, "0.218"},
        {"MANT", WeightMethod::Mant, "(between ANT and Ideal)"},
        {"Ideal (K-means)", WeightMethod::KMeans, "0.074"},
    };
    for (const Row &row : rows) {
        // All four methods use the same plain quantization-MSE
        // objective, as Fig. 2 compares data types, not calibration.
        const QuantSetup setup = weight_only(row.method);
        const double ppl = inst.evaluator->perplexityOf(setup);

        // Aggregate weight-space NMSE across all linear layers: the
        // direct data-type fidelity measure.
        double err = 0.0, ref = 0.0;
        for (const auto &nt : inst.weights->namedLinearWeights()) {
            const Tensor q = quantizeWeightMatrix(*nt.tensor, setup);
            for (int64_t i = 0; i < q.numel(); ++i) {
                const double d =
                    static_cast<double>((*nt.tensor)[i]) - q[i];
                err += d * d;
                ref += static_cast<double>((*nt.tensor)[i]) *
                       (*nt.tensor)[i];
            }
        }
        table.addRow({row.label, fmt(err / ref, 5), fmt(ppl, 3),
                      fmt(ppl - fp16, 3), row.paper});
        std::cout << "  [" << row.label << "] done\n";
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\nExpected shape: on weight NMSE (the data-type "
                 "fidelity measure) INT > ANT > MANT > Ideal, with the "
                 "ANT-to-Ideal gap that motivates MANT. The proxy-PPL "
                 "column tracks the same ordering except that ANT and "
                 "MANT swap within noise: MANT's grid has no exact "
                 "zero, and on an untrained random substrate the dense "
                 "small perturbations that costs transfer to PPL worse "
                 "than they do on real trained models (see "
                 "EXPERIMENTS.md limitations).\n";
    return 0;
}
