/**
 * Figure 3 reproduction: cumulative distribution functions of Q-weight
 * and V-cache data at tensor, channel, and group level (16 series
 * each). The paper's takeaway: tensor-level CDFs nearly coincide while
 * group-level CDFs diverge strongly — quantified here with the
 * cdfDiversity summary (mean CDF spread across series).
 */

#include "bench_util.h"
#include "model/transformer.h"
#include "tensor/stats.h"

using namespace mant;
using namespace mant::bench;

namespace {

/** Print one CDF series block at fixed query points. */
void
printSeries(const std::string &title,
            const std::vector<std::vector<double>> &series,
            std::span<const double> queries)
{
    std::cout << "  " << title
              << "  (diversity = " << fmt(cdfDiversity(series), 4)
              << ")\n";
    std::cout << "    x:";
    for (double q : queries)
        std::cout << " " << fmt(q, 2);
    std::cout << "\n";
    for (size_t s = 0; s < std::min<size_t>(series.size(), 4); ++s) {
        std::cout << "    s" << s << ":";
        for (double v : series[s])
            std::cout << " " << fmt(v, 2);
        std::cout << "\n";
    }
    std::cout << "    (" << series.size() << " series total)\n";
}

std::vector<double>
queryGrid()
{
    std::vector<double> qs;
    for (double q = -1.0; q <= 1.0001; q += 0.125)
        qs.push_back(q);
    return qs;
}

} // namespace

int
main()
{
    banner(std::cout,
           "Fig. 3 — CDF diversity at tensor/channel/group level");

    const ModelProfile &profile = modelProfile("llama-1-7b");
    const std::vector<double> queries = queryGrid();

    // --- Q weights: 16 tensors (distinct layers), 16 channels and 16
    // groups sampled from one tensor with strides, as in the paper.
    std::vector<std::vector<double>> tensor_series, chan_series,
        group_series;
    Rng root(profile.seed);
    Tensor first;
    for (int t = 0; t < 16; ++t) {
        Rng rng = root.fork(static_cast<uint64_t>(t));
        Tensor w = genWeightMatrix(rng, 64, 512, profile.weightStats);
        tensor_series.push_back(
            cdfAt(normalizedCdf(w.span()), queries));
        if (t == 0)
            first = std::move(w);
    }
    for (int c = 0; c < 16; ++c) {
        chan_series.push_back(
            cdfAt(normalizedCdf(first.row(c * 4)), queries));
    }
    for (int g = 0; g < 16; ++g) {
        std::span<const float> grp(first.data() + g * 64 * 7, 64);
        group_series.push_back(cdfAt(normalizedCdf(grp), queries));
    }

    std::cout << "Weight of Q:\n";
    printSeries("tensor-wise CDF", tensor_series, queries);
    printSeries("channel-wise CDF", chan_series, queries);
    printSeries("group-wise CDF", group_series, queries);

    // --- V cache: sample from a real forward pass.
    const ModelWeights weights = ModelWeights::generate(profile, 256);
    std::vector<int32_t> toks(96);
    Rng trng(99);
    for (auto &t : toks)
        t = static_cast<int32_t>(trng.uniformInt(1024));
    const auto samples = Transformer::collectKvSamples(weights, toks);

    std::vector<std::vector<double>> v_tensor, v_group;
    for (size_t i = 1; i < samples.size() && v_tensor.size() < 16;
         i += 2) { // odd entries are V (transposed: channels x seq)
        v_tensor.push_back(
            cdfAt(normalizedCdf(samples[i].span()), queries));
        if (v_group.size() < 16) {
            v_group.push_back(
                cdfAt(normalizedCdf(samples[i].row(0)), queries));
            v_group.push_back(
                cdfAt(normalizedCdf(samples[i].row(7)), queries));
        }
    }
    std::cout << "\nValue cache:\n";
    printSeries("tensor-wise CDF", v_tensor, queries);
    printSeries("group-wise CDF", v_group, queries);

    const double t_div = cdfDiversity(tensor_series);
    const double g_div = cdfDiversity(group_series);
    std::cout << "\nTakeaway 1 check: group diversity / tensor "
                 "diversity = "
              << fmt(g_div / t_div, 2)
              << "x  (paper: groups are markedly more diverse)\n";
    return 0;
}
