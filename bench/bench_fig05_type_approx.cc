/**
 * Figure 5 reproduction: MANT approximating Float and NormalFloat by
 * choice of coefficient. Prints the normalized positive grids y(i) for
 * MANT a=17 vs the float curve and MANT a=25 vs NF (Eq. 3), plus the
 * best-fitting coefficient found by exhaustive search.
 */

#include <cmath>

#include "bench_util.h"
#include "core/mant_grid.h"
#include "quant/fixed_formats.h"
#include "tensor/stats.h"

using namespace mant;
using namespace mant::bench;

namespace {

/**
 * NF positive quantile curve. The paper's Eq. 3 with its small-eps
 * guard; the *deployed* NF4 grid (QLoRA/bitsandbytes) corresponds to a
 * larger effective eps, so we take the reference points from the real
 * NF4 format's positive levels — that is the curve Fig. 5 plots.
 */
double
nfLevel(int i)
{
    // nf4Format() levels are sorted; positives start at index 8
    // (index 7 is the exact zero).
    return nf4Format().levels()[static_cast<size_t>(8 + i)];
}

double
l1Fit(int a, std::span<const double> target)
{
    double d = 0.0;
    for (int i = 0; i <= 7; ++i)
        d += std::fabs(mantNormalizedValue(a, i) - target[i]);
    return d;
}

int
bestCoefficient(std::span<const double> target)
{
    int best_a = 0;
    double best = 1e18;
    for (int a = 0; a <= kMantMaxCoefficient; ++a) {
        const double d = l1Fit(a, target);
        if (d < best) {
            best = d;
            best_a = a;
        }
    }
    return best_a;
}

} // namespace

int
main()
{
    banner(std::cout,
           "Fig. 5 — MANT approximating Float and NF via coefficient a");

    // Float (E2M1-style) normalized positive curve.
    std::vector<double> float_curve = {1 / 16.0, 2 / 16.0,  3 / 16.0,
                                       4 / 16.0, 6 / 16.0,  8 / 16.0,
                                       12 / 16.0, 1.0};
    std::vector<double> nf_curve(8);
    for (int i = 0; i <= 7; ++i)
        nf_curve[static_cast<size_t>(i)] = nfLevel(i) / nfLevel(7);

    TablePrinter table({"i", "float", "mant a=17", "NF", "mant a=25"});
    for (int i = 0; i <= 7; ++i) {
        table.addRow({std::to_string(i),
                      fmt(float_curve[static_cast<size_t>(i)], 3),
                      fmt(mantNormalizedValue(17, i), 3),
                      fmt(nf_curve[static_cast<size_t>(i)], 3),
                      fmt(mantNormalizedValue(25, i), 3)});
    }
    table.print(std::cout);

    std::cout << "\nBest-fit coefficients (exhaustive over a in "
                 "[0,127]):\n";
    std::cout << "  float curve -> a = " << bestCoefficient(float_curve)
              << "  (paper uses a = 17)\n";
    std::cout << "  NF curve    -> a = " << bestCoefficient(nf_curve)
              << "  (paper uses a = 25)\n";
    std::cout << "  L1 fit of a=17 to float: "
              << fmt(l1Fit(17, float_curve), 4) << " vs PoT (a=0): "
              << fmt(l1Fit(0, float_curve), 4) << "\n";
    std::cout << "  L1 fit of a=25 to NF:    "
              << fmt(l1Fit(25, nf_curve), 4) << " vs PoT (a=0): "
              << fmt(l1Fit(0, nf_curve), 4) << "\n";
    return 0;
}
