/**
 * Figure 6 reproduction: how the normalized MANT grid morphs as the
 * coefficient a sweeps 0 -> 128 (PoT -> float-like -> NF-like ->
 * near-INT), and the saturation beyond a ~ 128 that justifies the
 * 8-bit encoding of a (Sec. IV-A).
 */

#include <cmath>

#include "bench_util.h"
#include "core/mant_grid.h"

using namespace mant;
using namespace mant::bench;

namespace {

/** Max absolute change of the normalized grid from a to a+delta. */
double
gridShift(int a, int delta)
{
    double shift = 0.0;
    for (int i = 0; i <= 7; ++i) {
        shift = std::max(shift,
                         std::fabs(mantNormalizedValue(a + delta, i) -
                                   mantNormalizedValue(a, i)));
    }
    return shift;
}

} // namespace

int
main()
{
    banner(std::cout,
           "Fig. 6 — normalized grid distribution vs coefficient a");

    TablePrinter table({"a", "y(1)", "y(2)", "y(3)", "y(4)", "y(5)",
                        "y(6)", "nearest named type"});
    struct Row
    {
        int a;
        const char *named;
    };
    const Row rows[] = {
        {0, "PoT"},       {5, "-"},          {10, "-"},
        {17, "float"},    {25, "NF4"},       {40, "-"},
        {60, "-"},        {90, "-"},         {120, "~INT"},
        {127, "~INT"},
    };
    for (const Row &row : rows) {
        std::vector<std::string> cells = {std::to_string(row.a)};
        for (int i = 1; i <= 6; ++i)
            cells.push_back(fmt(mantNormalizedValue(row.a, i), 3));
        cells.push_back(row.named);
        table.addRow(cells);
    }
    table.print(std::cout);

    std::cout << "\nSmoothness: max grid movement per +5 step of a\n";
    for (int a : {0, 20, 60, 100, 122}) {
        std::cout << "  a=" << a << " -> " << (a + 5) << ": "
                  << fmt(gridShift(a, 5), 4) << "\n";
    }
    std::cout << "\nSaturation check (why a is capped at 128 / 8 bits): "
                 "grid movement from a=127 to a=254-equivalent would "
                 "be marginal; movement per step at a=122 is already "
              << fmt(gridShift(122, 5), 4) << " vs "
              << fmt(gridShift(0, 5), 4) << " at a=0.\n";
    return 0;
}
