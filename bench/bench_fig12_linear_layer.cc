/**
 * Figure 12 reproduction: linear-layer speedup and energy breakdown
 * across the five accelerators on LLaMA-7B/65B and OPT-6.7B/13B
 * (prefill, sequence 2048, batch 1, area-equalized, PPL-aligned).
 *
 * Paper: MANT over Tender / OliVe / ANT* / BitFusion = 1.83x / 1.96x
 * / 2.00x / 4.93x average; energy reductions 1.39 / 1.54 / 1.57 / 4.16;
 * static energy is the main differentiator, DRAM+buffer scale with bit
 * width, core energy roughly comparable.
 */

#include <cmath>
#include <map>

#include "bench_util.h"
#include "sim/accelerators.h"
#include "sim/layer_walker.h"
#include "sim/policy.h"

using namespace mant;
using namespace mant::bench;

namespace {

struct ArchResult
{
    GemmStats stats;
    double avgBits = 0.0;
};

/** Build the walk + run it for one (arch, model) pair. */
ArchResult
runLinear(const ArchConfig &arch, const ModelProfile &profile,
          double budget, const PolicyConfig &pcfg)
{
    WalkSpec spec;
    spec.dims = profile.archDims;
    spec.stage = Stage::Prefill;
    spec.seqLen = 2048;
    spec.ffnMats = profile.family == ModelFamily::Llama ? 3 : 2;
    spec.quantizeOutputs = true;

    ArchResult result;
    if (arch.name == "MANT") {
        spec.defaultWeightBits = 4;
        spec.actBits = 8;
        spec.groupSize = 64;
        spec.mantWeights = true;
        result.avgBits = 4.0;
    } else if (arch.name == "ANT") {
        // ANT* runs fixed INT8 (cannot recover PPL; Sec. VII-A).
        spec.defaultWeightBits = 8;
        spec.actBits = 8;
        spec.groupSize = 0;
        result.avgBits = 8.0;
    } else {
        const WeightMethod method = arch.name == "OliVe"
                                        ? WeightMethod::Olive
                                    : arch.name == "Tender"
                                        ? WeightMethod::Tender
                                        : WeightMethod::Int;
        const std::vector<int> widths =
            arch.name == "BitFusion" ? std::vector<int>{8, 16}
                                     : std::vector<int>{4, 8};
        // BitFusion predates per-channel LLM quantization: its plain
        // INT path is measured tensor-wise, which is what forces the
        // large 16-bit share the paper reports.
        PolicyConfig mcfg = pcfg;
        if (arch.name == "BitFusion")
            mcfg.granularity = Granularity::PerTensor;
        const PrecisionPlan plan =
            alignPrecision(profile, method, widths, budget, mcfg);
        spec.layerWeightBits = plan.layerBits;
        spec.actFollowsWeights = true;
        spec.groupSize = 0;
        result.avgBits = plan.avgBits;
    }
    result.stats = runWork(arch, linearWork(spec));
    return result;
}

} // namespace

int
main()
{
    banner(std::cout, "Fig. 12 — linear-layer speedup & energy "
                      "breakdown (prefill, seq 2048, batch 1)");

    const char *model_names[] = {"llama-1-7b", "llama-1-65b",
                                 "opt-6.7b", "opt-13b"};
    const auto archs = allArchs();

    PolicyConfig pcfg;
    pcfg.sampleRows = 64;
    pcfg.sampleCols = 384;
    pcfg.granularity = Granularity::PerChannel;

    std::map<std::string, std::vector<double>> speedups, energies;

    for (const char *name : model_names) {
        const ModelProfile &profile = modelProfile(name);
        std::cout << "  [" << name << "] aligning precision..."
                  << std::flush;
        const double budget = mantErrorBudget(profile, pcfg);
        std::cout << " budget(NMSE)=" << fmt(budget, 4) << "\n";

        std::map<std::string, ArchResult> results;
        for (const ArchConfig &arch : archs)
            results[arch.name] = runLinear(arch, profile, budget, pcfg);

        const double base_cycles =
            results["BitFusion"].stats.cycles;
        const double base_energy =
            results["BitFusion"].stats.energy.totalPj();

        TablePrinter table({"arch", "avg W bits", "cycles(M)",
                            "speedup vs BitFusion", "norm. energy",
                            "core%", "buffer%", "dram%", "static%"});
        for (const ArchConfig &arch : archs) {
            const ArchResult &r = results[arch.name];
            const double e = r.stats.energy.totalPj();
            table.addRow(
                {arch.name, fmt(r.avgBits, 1),
                 fmt(r.stats.cycles / 1e6, 1),
                 fmtX(base_cycles / r.stats.cycles),
                 fmt(e / base_energy, 3),
                 fmt(100.0 * r.stats.energy.corePj / e, 0),
                 fmt(100.0 * r.stats.energy.bufferPj / e, 0),
                 fmt(100.0 * r.stats.energy.dramPj / e, 0),
                 fmt(100.0 * r.stats.energy.staticPj / e, 0)});
            speedups[arch.name].push_back(base_cycles /
                                          r.stats.cycles);
            energies[arch.name].push_back(e / base_energy);
        }
        std::cout << "\nModel " << name << ":\n";
        table.print(std::cout);
        std::cout << "\n";
    }

    // Geomean MANT-vs-X summary, the paper's headline numbers.
    auto geomean = [](const std::vector<double> &v) {
        double acc = 0.0;
        for (double x : v)
            acc += std::log(x);
        return std::exp(acc / static_cast<double>(v.size()));
    };
    const double mant_s = geomean(speedups["MANT"]);
    const double mant_e = geomean(energies["MANT"]);
    TablePrinter summary({"MANT vs", "speedup (paper)",
                          "energy reduction (paper)"});
    struct Ref
    {
        const char *arch;
        const char *s;
        const char *e;
    };
    const Ref refs[] = {{"Tender", "1.83x", "1.39x"},
                        {"OliVe", "1.96x", "1.54x"},
                        {"ANT", "2.00x", "1.57x"},
                        {"BitFusion", "4.93x", "4.16x"}};
    for (const Ref &ref : refs) {
        summary.addRow(
            {ref.arch,
             fmtX(mant_s / geomean(speedups[ref.arch])) + "  (" +
                 ref.s + ")",
             fmtX(geomean(energies[ref.arch]) / mant_e) + "  (" +
                 ref.e + ")"});
    }
    std::cout << "Geomean over the four models:\n";
    summary.print(std::cout);
    return 0;
}
