/**
 * Figure 13 reproduction: speedup and normalized energy of all layers
 * (linear + attention) on LLaMA-7B at context lengths 2K / 8K / 32K /
 * 128K, decode stage (the memory-bound regime the paper motivates).
 * Baselines do not quantize attention and run it at FP16; MANT runs
 * 8-bit activations against the 4-bit MANT KV cache.
 *
 * Paper shapes: at 2K the linear layer dominates; by 128K the
 * attention layer decides everything, OliVe/Tender shrink to ~1.15x
 * over BitFusion while MANT keeps 2.04-4.54x over OliVe; average
 * 2.99x (up to 4.46x) over Tender.
 */

#include <map>

#include "bench_util.h"
#include "sim/accelerators.h"
#include "sim/layer_walker.h"
#include "sim/policy.h"

using namespace mant;
using namespace mant::bench;

namespace {

struct Work
{
    GemmStats linear;
    GemmStats attention;

    GemmStats
    total() const
    {
        GemmStats t = linear;
        t.add(attention);
        return t;
    }
};

Work
runAll(const ArchConfig &arch, const ModelProfile &profile,
       int64_t context, const std::vector<int> &layerBits)
{
    WalkSpec spec;
    spec.dims = profile.archDims;
    spec.stage = Stage::Decode;
    spec.seqLen = context;
    spec.ffnMats = 3;
    spec.quantizeOutputs = true;

    if (arch.name == "MANT") {
        spec.defaultWeightBits = 4;
        spec.actBits = 8;
        spec.groupSize = 64;
        spec.mantWeights = true;
        spec.attnActBits = 8;
        spec.kvBits = 4;
        spec.attnGroupSize = 64;
        spec.mantKv = true;
    } else {
        if (arch.name == "ANT") {
            spec.defaultWeightBits = 8;
            spec.actBits = 8;
            spec.groupSize = 0;
        } else {
            spec.layerWeightBits = layerBits;
            spec.actFollowsWeights = true;
            spec.groupSize = 0;
        }
        // Baselines keep the attention layer in FP16 (Sec. VII-A).
        spec.attnActBits = 16;
        spec.kvBits = 16;
        spec.attnGroupSize = 0;
        spec.mantKv = false;
    }

    Work w;
    w.linear = runWork(arch, linearWork(spec));
    w.attention = runWork(arch, attentionWork(spec));
    return w;
}

} // namespace

int
main()
{
    banner(std::cout, "Fig. 13 — all-layer speedup & energy vs "
                      "context length (llama-1-7b, decode stage)");

    const ModelProfile &profile = modelProfile("llama-1-7b");
    const auto archs = allArchs();

    PolicyConfig pcfg;
    pcfg.sampleRows = 64;
    pcfg.sampleCols = 384;
    pcfg.granularity = Granularity::PerChannel;
    std::cout << "  aligning baseline precision..." << std::flush;
    const double budget = mantErrorBudget(profile, pcfg);
    const int w48[] = {4, 8};
    const int w816[] = {8, 16};
    std::map<std::string, std::vector<int>> bit_maps;
    bit_maps["OliVe"] =
        alignPrecision(profile, WeightMethod::Olive, w48, budget, pcfg)
            .layerBits;
    bit_maps["Tender"] =
        alignPrecision(profile, WeightMethod::Tender, w48, budget, pcfg)
            .layerBits;
    PolicyConfig bf_cfg = pcfg; // BitFusion: tensor-wise INT
    bf_cfg.granularity = Granularity::PerTensor;
    bit_maps["BitFusion"] =
        alignPrecision(profile, WeightMethod::Int, w816, budget, bf_cfg)
            .layerBits;
    std::cout << " done\n";

    std::map<std::string, std::map<int64_t, Work>> all;
    const int64_t contexts[] = {2048, 8192, 32768, 131072};

    for (const int64_t ctx : contexts) {
        for (const ArchConfig &arch : archs) {
            all[arch.name][ctx] =
                runAll(arch, profile, ctx, bit_maps[arch.name]);
        }
    }

    for (const int64_t ctx : contexts) {
        const double base = all["BitFusion"][ctx].total().cycles;
        const double base_e =
            all["BitFusion"][ctx].total().energy.totalPj();
        TablePrinter table({"arch", "attn cycles(K)",
                            "linear cycles(K)", "speedup",
                            "norm. energy"});
        for (const ArchConfig &arch : archs) {
            const Work &w = all[arch.name][ctx];
            table.addRow({arch.name,
                          fmt(w.attention.cycles / 1e3, 0),
                          fmt(w.linear.cycles / 1e3, 0),
                          fmtX(base / w.total().cycles),
                          fmt(w.total().energy.totalPj() / base_e, 3)});
        }
        std::cout << "\nSeq. len = " << ctx / 1024 << "K:\n";
        table.print(std::cout);
    }

    // Headline ratios.
    std::cout << "\nMANT over baselines by context:\n";
    TablePrinter head({"context", "vs Tender", "vs OliVe", "vs ANT*",
                       "vs BitFusion"});
    for (const int64_t ctx : contexts) {
        const double m = all["MANT"][ctx].total().cycles;
        head.addRow(
            {std::to_string(ctx / 1024) + "K",
             fmtX(all["Tender"][ctx].total().cycles / m),
             fmtX(all["OliVe"][ctx].total().cycles / m),
             fmtX(all["ANT"][ctx].total().cycles / m),
             fmtX(all["BitFusion"][ctx].total().cycles / m)});
    }
    head.print(std::cout);
    std::cout << "\nPaper: MANT 2.04-4.54x over OliVe across lengths; "
                 "avg 2.99x (up to 4.46x) over Tender; at 128K OliVe "
                 "is only ~1.15x over BitFusion (attention-dominated)."
              << "\n";
    return 0;
}
