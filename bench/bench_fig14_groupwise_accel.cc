/**
 * Figure 14 reproduction: accelerator comparison when *every* method
 * uses group-wise quantization (G-64): MANT vs group-wise ANT vs
 * group-wise INT, linear layers. ANT selects per-group types for
 * weights but cannot select activation types in real time, and needs
 * 4/8 mixed precision to align PPL; both baselines pay the
 * vector-unit cost of runtime per-group scale handling (no RQU).
 *
 * Paper: MANT 1.70x speedup and 1.55x energy efficiency over
 * group-wise ANT at the same group size of 64.
 */

#include <cmath>
#include <map>

#include "bench_util.h"
#include "sim/accelerators.h"
#include "sim/layer_walker.h"
#include "sim/policy.h"

using namespace mant;
using namespace mant::bench;

int
main()
{
    banner(std::cout, "Fig. 14 — group-wise accelerators (G-64), "
                      "linear layers");

    const char *model_names[] = {"llama-1-7b", "llama-1-65b",
                                 "opt-6.7b", "opt-13b"};

    PolicyConfig pcfg;
    pcfg.sampleRows = 64;
    pcfg.sampleCols = 384;
    pcfg.granularity = Granularity::PerGroup;
    pcfg.groupSize = 64;

    std::map<std::string, std::vector<double>> speedups, energies;
    const int w48[] = {4, 8};

    for (const char *name : model_names) {
        const ModelProfile &profile = modelProfile(name);
        std::cout << "  [" << name << "] aligning..." << std::flush;
        const double budget = mantErrorBudget(profile, pcfg);

        WalkSpec base;
        base.dims = profile.archDims;
        base.stage = Stage::Prefill;
        base.seqLen = 2048;
        base.ffnMats = profile.family == ModelFamily::Llama ? 3 : 2;
        base.groupSize = 64;
        base.quantizeOutputs = true; // per-group runtime act quant
        base.actBits = 8;

        // MANT: 4-bit groups, fused, RQU present.
        WalkSpec mant_spec = base;
        mant_spec.defaultWeightBits = 4;
        mant_spec.mantWeights = true;
        const GemmStats mant_s =
            runWork(mantArch(), linearWork(mant_spec));

        // Group-wise ANT: per-group weight types, 4/8 mixed to align
        // PPL, no RQU (vector-unit quant penalty).
        const PrecisionPlan ant_plan = alignPrecision(
            profile, WeightMethod::Ant, w48, budget, pcfg);
        WalkSpec ant_spec = base;
        ant_spec.layerWeightBits = ant_plan.layerBits;
        const GemmStats ant_s =
            runWork(antArch(), linearWork(ant_spec));

        // Group-wise INT: plain INT4/8 mixed.
        const PrecisionPlan int_plan = alignPrecision(
            profile, WeightMethod::Int, w48, budget, pcfg);
        WalkSpec int_spec = base;
        int_spec.layerWeightBits = int_plan.layerBits;
        const GemmStats int_s =
            runWork(tenderArch(), linearWork(int_spec));
        std::cout << " done (ANT avg bits " << fmt(ant_plan.avgBits, 1)
                  << ", INT avg bits " << fmt(int_plan.avgBits, 1)
                  << ")\n";

        TablePrinter table({"method", "cycles(M)", "speedup vs INT",
                            "norm. energy", "static%"});
        struct Row
        {
            const char *label;
            const GemmStats *s;
        };
        const Row rows[] = {{"MANT", &mant_s},
                            {"ANT", &ant_s},
                            {"INT", &int_s}};
        const double base_c = int_s.cycles;
        const double base_e = int_s.energy.totalPj();
        for (const Row &row : rows) {
            const double e = row.s->energy.totalPj();
            table.addRow({row.label, fmt(row.s->cycles / 1e6, 1),
                          fmtX(base_c / row.s->cycles),
                          fmt(e / base_e, 3),
                          fmt(100.0 * row.s->energy.staticPj / e, 0)});
            speedups[row.label].push_back(base_c / row.s->cycles);
            energies[row.label].push_back(e / base_e);
        }
        std::cout << "\nModel " << name << " (all group-wise, G-64):\n";
        table.print(std::cout);
        std::cout << "\n";
    }

    auto geomean = [](const std::vector<double> &v) {
        double acc = 0.0;
        for (double x : v)
            acc += std::log(x);
        return std::exp(acc / static_cast<double>(v.size()));
    };
    std::cout << "Geomean MANT over group-wise ANT: speedup "
              << fmtX(geomean(speedups["MANT"]) /
                      geomean(speedups["ANT"]))
              << " (paper 1.70x), energy "
              << fmtX(geomean(energies["ANT"]) /
                      geomean(energies["MANT"]))
              << " (paper 1.55x)\n";
    return 0;
}
