/**
 * Figure 15 reproduction: the selection ratio of coefficient a across
 * tensors (q/k/v/o/up/gate/down), layers, and models. Paper findings:
 * layer 0 of LLaMA-2-7B and OPT-6.7B mostly selects a = 0 (PoT-like,
 * spiky weights); deeper layers and other models select relatively
 * uniformly across the coefficient set.
 */

#include <algorithm>
#include <map>

#include "bench_util.h"
#include "core/fused_gemm.h"
#include "model/weights.h"

using namespace mant;
using namespace mant::bench;

namespace {

/** Histogram (bucket -> fraction) for one tensor. */
std::map<int, double>
selectionRatio(const Tensor &w)
{
    const MantQuantizedMatrix q = MantQuantizedMatrix::quantize(w, 64);
    std::map<int, double> ratio;
    int64_t total = 0;
    for (const auto &[bucket, count] : q.selectionHistogram()) {
        ratio[bucket] += static_cast<double>(count);
        total += count;
    }
    for (auto &[bucket, r] : ratio)
        r /= static_cast<double>(total);
    return ratio;
}

std::string
topBuckets(const std::map<int, double> &ratio)
{
    // Render the top-3 buckets as "a=0:62% a=5:11% int:8%".
    std::vector<std::pair<int, double>> sorted(ratio.begin(),
                                               ratio.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &x, const auto &y) {
                  return x.second > y.second;
              });
    std::string out;
    for (size_t i = 0; i < std::min<size_t>(3, sorted.size()); ++i) {
        const auto &[bucket, r] = sorted[i];
        out += (bucket < 0 ? std::string("int")
                           : "a=" + std::to_string(bucket)) +
               ":" + fmt(100.0 * r, 0) + "% ";
    }
    return out;
}

} // namespace

int
main()
{
    banner(std::cout,
           "Fig. 15 — coefficient-a selection ratio per tensor / layer "
           "/ model");

    const char *model_names[] = {"llama-2-7b", "llama-3-8b", "opt-6.7b",
                                 "bloom-7.1b"};

    for (const char *name : model_names) {
        const ModelProfile &profile = modelProfile(name);
        const ModelWeights weights = ModelWeights::generate(profile, 64);
        std::cout << "\nModel " << name << ":\n";

        TablePrinter table({"layer", "tensor", "top selections",
                            "a<=10 share"});
        std::map<int, double> model_total;
        int64_t tensor_count = 0;
        for (const auto &nt : weights.namedLinearWeights()) {
            const auto ratio = selectionRatio(*nt.tensor);
            // Per-layer detail for the first and last layers only
            // (the paper shows layers 0/8/16).
            if (nt.layer == 0 ||
                nt.layer ==
                    profile.simDims.nLayers - 1) {
                double low_a = 0.0;
                for (const auto &[bucket, r] : ratio) {
                    if (bucket >= 0 && bucket <= 10)
                        low_a += r;
                }
                table.addRow({std::to_string(nt.layer), nt.kind,
                              topBuckets(ratio),
                              fmt(100.0 * low_a, 1) + "%"});
            }
            for (const auto &[bucket, r] : ratio)
                model_total[bucket] += r;
            ++tensor_count;
        }
        table.print(std::cout);

        for (auto &[bucket, r] : model_total)
            r /= static_cast<double>(tensor_count);
        std::cout << "  model aggregate: " << topBuckets(model_total)
                  << "\n";
    }
    std::cout << "\nShape checks: layer-0 rows shift strongly toward "
                 "the PoT end (the paper's layer-0 bars are mostly "
                 "a=0; here the low-coefficient a<=10 share carries "
                 "that signal — see EXPERIMENTS.md); deeper layers "
                 "select a broad, relatively uniform mix.\n";
    return 0;
}
