/**
 * Kernel microbenchmarks (google-benchmark): the fused MANT integer
 * dot product vs the dequantize-then-float path vs plain INT8, the
 * encode paths, the real-time quantization primitives, and
 * scalar-vs-SIMD × serial-vs-parallel throughput for the dispatched
 * kernels.
 *
 * Unless --benchmark_out is given explicitly, results are also written
 * to BENCH_kernels.json (google-benchmark JSON) in the working
 * directory, so CI records the perf trajectory per commit.
 *
 * The matrix benchmarks take two arguments, /threads/simd:
 *   threads: 1 pins the kernel serial, 0 resolves to all hardware
 *            threads (MANT_THREADS-style).
 *   simd:    0 pins the scalar backend, 1 follows the environment
 *            (MANT_SIMD or the best available path).
 * Each run reports a `checksum` counter — a fixed-order sum over the
 * produced values. The determinism contract says checksums must be
 * identical across every /threads/simd variant and across
 * MANT_SIMD=scalar vs =auto runs of the whole binary; CI diffs the
 * two JSON files and fails on any mismatch.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/fused_attention.h"
#include "model/model_file.h"
#include "core/fused_gemm.h"
#include "core/kv_pages.h"
#include "core/kv_panels.h"
#include "core/kv_quant.h"
#include "model/kv_cache.h"
#include "model/layers.h"
#include "core/packed_tiles.h"
#include "core/parallel.h"
#include "core/simd.h"
#include "model/quantized_linear.h"
#include "quant/fixed_formats.h"
#include "quant/group_quantizer.h"
#include "serve/serving_engine.h"
#include "tensor/distribution.h"

namespace mant {
namespace {

constexpr int64_t kN = 4096;

Tensor
weights()
{
    DistProfile p;
    Rng rng(777);
    return genWeightMatrix(rng, 1, kN, p);
}

static void
BM_FusedMantDot(benchmark::State &state)
{
    const Tensor w = weights();
    const MantQuantizedMatrix qw = MantQuantizedMatrix::quantize(w, 64);
    std::vector<int32_t> x(kN);
    std::vector<MantCode> codes(kN);
    Rng rng(1);
    for (int64_t i = 0; i < kN; ++i) {
        x[static_cast<size_t>(i)] =
            static_cast<int32_t>(rng.uniformInt(255)) - 127;
        codes[static_cast<size_t>(i)] =
            static_cast<MantCode>(qw.rowCodes(0)[i]);
    }
    for (auto _ : state) {
        MantPsums p = fusedDot(x, codes);
        benchmark::DoNotOptimize(p);
    }
    state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_FusedMantDot);

static void
BM_DequantFloatDot(benchmark::State &state)
{
    const Tensor w = weights();
    const MantQuantizedMatrix qw = MantQuantizedMatrix::quantize(w, 64);
    const Tensor wd = qw.dequantize();
    std::vector<float> x(kN);
    Rng rng(2);
    for (auto &v : x)
        v = static_cast<float>(rng.gaussian());
    for (auto _ : state) {
        double acc = 0.0;
        for (int64_t i = 0; i < kN; ++i)
            acc += static_cast<double>(x[static_cast<size_t>(i)]) *
                   wd[i];
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_DequantFloatDot);

static void
BM_Int8Dot(benchmark::State &state)
{
    std::vector<int32_t> x(kN), w(kN);
    Rng rng(3);
    for (int64_t i = 0; i < kN; ++i) {
        x[static_cast<size_t>(i)] =
            static_cast<int32_t>(rng.uniformInt(255)) - 127;
        w[static_cast<size_t>(i)] =
            static_cast<int32_t>(rng.uniformInt(15)) - 7;
    }
    for (auto _ : state) {
        int64_t acc = 0;
        for (int64_t i = 0; i < kN; ++i)
            acc += static_cast<int64_t>(x[static_cast<size_t>(i)]) *
                   w[static_cast<size_t>(i)];
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_Int8Dot);

static void
BM_MantEncodeSearch(benchmark::State &state)
{
    const Tensor w = weights();
    for (auto _ : state) {
        auto q = MantQuantizedMatrix::quantize(w, 64);
        benchmark::DoNotOptimize(q);
    }
    state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_MantEncodeSearch);

static void
BM_IntEncode(benchmark::State &state)
{
    const Tensor w = weights();
    QuantConfig cfg;
    cfg.gran = Granularity::PerGroup;
    cfg.groupSize = 64;
    for (auto _ : state) {
        auto q = quantDequantFixed(w, int4Format(), cfg);
        benchmark::DoNotOptimize(q);
    }
    state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_IntEncode);

static void
BM_VarianceSelect(benchmark::State &state)
{
    const VarianceSelector sel = VarianceSelector::analytic();
    const Tensor w = weights();
    std::vector<float> out(kN);
    for (auto _ : state) {
        auto sels = spatialQuantizeRow(w.span(), 64, sel, out);
        benchmark::DoNotOptimize(sels);
    }
    state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_VarianceSelect);

/* ------------------------------------------------------------------ */
/* Scalar-vs-SIMD × serial-vs-parallel kernel throughput               */
/* (args = /threads/simd: threads 0 = all hardware, 1 = serial;        */
/*  simd 0 = scalar backend, 1 = environment / best available)         */
/* ------------------------------------------------------------------ */

constexpr int64_t kBigDim = 4096;

const Tensor &
bigMatrix()
{
    static const Tensor w = [] {
        DistProfile p;
        Rng rng(4242);
        return genWeightMatrix(rng, kBigDim, kBigDim, p);
    }();
    return w;
}

void
setBenchMode(benchmark::State &state)
{
    setMaxThreads(static_cast<int>(state.range(0)));
    setSimdPath(state.range(1) == 0 ? SimdPath::Scalar
                                    : SimdPath::Auto);
    state.counters["threads"] = static_cast<double>(maxThreads());
    state.counters["simd"] =
        static_cast<double>(static_cast<int>(activeSimdPath()));
    state.SetLabel(simdOps().name);
}

void
clearBenchMode()
{
    setMaxThreads(0);
    setSimdPath(SimdPath::Auto);
}

/** Fixed-order output digest: bit-identical tensors <=> equal sums. */
double
checksum(std::span<const float> xs)
{
    double acc = 0.0;
    for (float x : xs)
        acc += static_cast<double>(x);
    return acc;
}

static void
BM_AdaptiveQuant4096(benchmark::State &state)
{
    setBenchMode(state);
    const Tensor &w = bigMatrix();
    QuantConfig cfg;
    cfg.gran = Granularity::PerGroup;
    cfg.groupSize = 64;
    Tensor q;
    for (auto _ : state) {
        q = quantDequantAdaptive(w, antTypeSet(), cfg);
        benchmark::DoNotOptimize(q);
    }
    state.counters["checksum"] = checksum(q.span());
    state.SetItemsProcessed(state.iterations() * kBigDim * kBigDim);
    clearBenchMode();
}
BENCHMARK(BM_AdaptiveQuant4096)
    ->ArgsProduct({{1, 0}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

static void
BM_MantEncode4096(benchmark::State &state)
{
    setBenchMode(state);
    const Tensor &w = bigMatrix();
    MantQuantizedMatrix q;
    for (auto _ : state) {
        q = MantQuantizedMatrix::quantize(w, 64);
        benchmark::DoNotOptimize(q);
    }
    double sum = 0.0;
    for (int64_t r = 0; r < q.rows(); ++r)
        for (int8_t c : q.rowCodes(r))
            sum += c;
    state.counters["checksum"] = sum;
    state.SetItemsProcessed(state.iterations() * kBigDim * kBigDim);
    clearBenchMode();
}
BENCHMARK(BM_MantEncode4096)
    ->ArgsProduct({{1, 0}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

static void
BM_Dequantize4096(benchmark::State &state)
{
    setBenchMode(state);
    const MantQuantizedMatrix qw =
        MantQuantizedMatrix::quantize(bigMatrix(), 64);
    Tensor out;
    for (auto _ : state) {
        out = qw.dequantize();
        benchmark::DoNotOptimize(out);
    }
    state.counters["checksum"] = checksum(out.span());
    state.SetItemsProcessed(state.iterations() * kBigDim * kBigDim);
    clearBenchMode();
}
BENCHMARK(BM_Dequantize4096)
    ->ArgsProduct({{1, 0}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

/**
 * Raw dequantize kernel into a preallocated buffer: isolates the LUT
 * decode from the output-tensor allocation that dominates the
 * end-to-end BM_Dequantize4096 walltime.
 */
static void
BM_DequantKernel(benchmark::State &state)
{
    setBenchMode(state);
    constexpr int64_t kElems = int64_t{1} << 22;
    std::vector<int8_t> codes(static_cast<size_t>(kElems));
    std::vector<float> out(static_cast<size_t>(kElems));
    Rng rng(4646);
    for (auto &c : codes)
        c = static_cast<int8_t>(rng.uniformInt(16));
    float lut[16];
    for (int i = 0; i < 16; ++i)
        lut[i] = static_cast<float>(
            mantCodeValue(17, static_cast<MantCode>(i)));
    const SimdOps &ops = simdOps();
    for (auto _ : state) {
        ops.dequantLut16(codes.data(), out.data(), kElems, lut,
                         0.01f);
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.counters["checksum"] =
        checksum(std::span<const float>(out));
    state.SetItemsProcessed(state.iterations() * kElems);
    clearBenchMode();
}
BENCHMARK(BM_DequantKernel)
    ->ArgsProduct({{1}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

static void
BM_QuantizeFixed4096(benchmark::State &state)
{
    setBenchMode(state);
    const Tensor &w = bigMatrix();
    QuantConfig cfg;
    cfg.gran = Granularity::PerGroup;
    cfg.groupSize = 64;
    Tensor out;
    for (auto _ : state) {
        out = quantDequantFixed(w, int4Format(), cfg);
        benchmark::DoNotOptimize(out);
    }
    state.counters["checksum"] = checksum(out.span());
    state.SetItemsProcessed(state.iterations() * kBigDim * kBigDim);
    clearBenchMode();
}
BENCHMARK(BM_QuantizeFixed4096)
    ->ArgsProduct({{1, 0}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

static void
BM_Int8ActQuantize(benchmark::State &state)
{
    setBenchMode(state);
    Rng rng(4444);
    Tensor x(Shape{64, kBigDim});
    for (int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.gaussian());
    Tensor out;
    for (auto _ : state) {
        const auto qx = Int8QuantizedActivations::quantize(x, 64);
        out = qx.dequantize();
        benchmark::DoNotOptimize(out);
    }
    state.counters["checksum"] = checksum(out.span());
    state.SetItemsProcessed(state.iterations() * x.numel());
    clearBenchMode();
}
BENCHMARK(BM_Int8ActQuantize)
    ->ArgsProduct({{1, 0}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

static void
BM_FusedGemmThreaded(benchmark::State &state)
{
    setBenchMode(state);
    constexpr int64_t kM = 32, kK = 1024, kNOut = 512;
    DistProfile p;
    Rng rng(4343);
    const Tensor w = genWeightMatrix(rng, kNOut, kK, p);
    Tensor x(Shape{kM, kK});
    for (int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.gaussian());
    const MantQuantizedMatrix qw = MantQuantizedMatrix::quantize(w, 64);
    const auto qx = Int8QuantizedActivations::quantize(x, 64);
    Tensor out;
    for (auto _ : state) {
        out = fusedGemm(qx, qw);
        benchmark::DoNotOptimize(out);
    }
    state.counters["checksum"] = checksum(out.span());
    state.SetItemsProcessed(state.iterations() * kM * kK * kNOut);
    clearBenchMode();
}
BENCHMARK(BM_FusedGemmThreaded)
    ->ArgsProduct({{1, 0}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

static void
BM_LinearNT(benchmark::State &state)
{
    setBenchMode(state);
    constexpr int64_t kM = 32, kK = 1024, kNOut = 512;
    Rng rng(4545);
    Tensor x(Shape{kM, kK}), w(Shape{kNOut, kK});
    for (int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.gaussian());
    for (int64_t i = 0; i < w.numel(); ++i)
        w[i] = static_cast<float>(rng.gaussian(0.0, 0.02));
    Tensor out;
    for (auto _ : state) {
        out = linearNT(x, w);
        benchmark::DoNotOptimize(out);
    }
    state.counters["checksum"] = checksum(out.span());
    state.SetItemsProcessed(state.iterations() * kM * kK * kNOut);
    clearBenchMode();
}
BENCHMARK(BM_LinearNT)
    ->ArgsProduct({{1, 0}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

/* ------------------------------------------------------------------ */
/* M×N×K GEMM sweep: reference fused path vs prepacked tiles           */
/* (arg = M: 1 is the decode shape, 256 the prefill shape; K = N =     */
/*  2048, group 64, serial so the per-code kernel cost is isolated.    */
/*  The tiled checksum must equal the reference checksum bit-for-bit   */
/*  — tools/bench_gate.py fails CI on mismatch or on a >10% tiled      */
/*  throughput regression against BENCH_kernels.baseline.json.)       */
/* ------------------------------------------------------------------ */

constexpr int64_t kSweepK = 2048, kSweepN = 2048, kSweepGroup = 64;

/** Nominal CPU frequency parsed from /proc/cpuinfo ("@ x.xxGHz"), 0
 *  when unknown — feeds the codes/cycle counter, best effort only. */
double
nominalCpuHz()
{
    static const double hz = [] {
        std::ifstream in("/proc/cpuinfo");
        std::string line;
        while (std::getline(in, line)) {
            const size_t at = line.find("@ ");
            const size_t ghz = line.find("GHz");
            if (line.rfind("model name", 0) == 0 &&
                at != std::string::npos && ghz > at) {
                try {
                    return std::stod(line.substr(at + 2, ghz - at - 2)) *
                           1e9;
                } catch (...) {
                    return 0.0;
                }
            }
        }
        return 0.0;
    }();
    return hz;
}

const MantQuantizedMatrix &
sweepWeights()
{
    static const MantQuantizedMatrix qw = [] {
        DistProfile p;
        Rng rng(9090);
        const Tensor w = genWeightMatrix(rng, kSweepN, kSweepK, p);
        return MantQuantizedMatrix::quantize(w, kSweepGroup);
    }();
    return qw;
}

const Int8QuantizedActivations &
sweepActivations(int64_t m)
{
    static std::map<int64_t, Int8QuantizedActivations> cache;
    auto it = cache.find(m);
    if (it != cache.end())
        return it->second;
    Rng rng(static_cast<uint64_t>(9191 + m));
    Tensor x(Shape{m, kSweepK});
    for (int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.gaussian());
    return cache
        .emplace(m, Int8QuantizedActivations::quantize(x, kSweepGroup))
        .first->second;
}

/** Shared counter block: GB/s of operand traffic (activation codes +
 *  weight codes per GEMM) and codes/cycle at the nominal clock. */
void
setSweepCounters(benchmark::State &state, int64_t m,
                 int64_t weightBytes, std::span<const float> out)
{
    const int64_t codes = m * kSweepN * kSweepK;
    const int64_t bytes = m * kSweepK + weightBytes;
    state.SetItemsProcessed(state.iterations() * codes);
    state.counters["GBps"] = benchmark::Counter(
        static_cast<double>(state.iterations() * bytes),
        benchmark::Counter::kIsRate,
        benchmark::Counter::kIs1024);
    if (nominalCpuHz() > 0.0) {
        state.counters["codes_per_cycle"] = benchmark::Counter(
            static_cast<double>(state.iterations() * codes) /
                nominalCpuHz(),
            benchmark::Counter::kIsRate);
    }
    state.counters["checksum"] = checksum(out);
}

static void
BM_GemmRef(benchmark::State &state)
{
    setMaxThreads(1);
    const int64_t m = state.range(0);
    const MantQuantizedMatrix &qw = sweepWeights();
    const Int8QuantizedActivations &qx = sweepActivations(m);
    Tensor out;
    for (auto _ : state) {
        out = fusedGemm(qx, qw);
        benchmark::DoNotOptimize(out);
    }
    state.SetLabel(simdOps().name);
    // One byte per weight code in the reference layout.
    setSweepCounters(state, m, kSweepN * kSweepK, out.span());
    setMaxThreads(0);
}
BENCHMARK(BM_GemmRef)
    ->Arg(1)
    ->Arg(16)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

static void
BM_GemmTiled(benchmark::State &state)
{
    setMaxThreads(1);
    const int64_t m = state.range(0);
    const MantQuantizedMatrix &qw = sweepWeights();
    const MantPackedTiles tiles = MantPackedTiles::pack(qw);
    const Int8QuantizedActivations &qx = sweepActivations(m);
    Tensor out;
    for (auto _ : state) {
        fusedGemmTiledInto(qx, tiles, out);
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetLabel(simdOps().name);
    // Two weight codes per byte in the tiled layout.
    setSweepCounters(state, m, kSweepN * kSweepK / 2, out.span());
    setMaxThreads(0);
}
BENCHMARK(BM_GemmTiled)
    ->Arg(1)
    ->Arg(16)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

/**
 * Serving decode benches: aggregate greedy-decode throughput of N
 * streams, run serially through the single-stream path
 * (BM_DecodeSerial) vs batched through the ServingEngine's
 * continuous-batching M = N passes (BM_DecodeBatched). The serial
 * side is a hand-rolled prefill + decodeStep loop on the model's
 * default stream — deliberately NOT greedyGenerate, which is itself
 * an engine run; the gate must compare the engine against the
 * independent single-stream oracle, not against itself. Both report
 * a `checksum` over the generated token ids in stream-major order;
 * the serving determinism contract says the two must match exactly,
 * and tools/bench_gate.py fails CI when they do not.
 * items_per_second is aggregate decode tokens/s. Serial runs pinned
 * (setMaxThreads(1)) would hide nothing here — both sides share the
 * thread setting, so the ratio isolates batching; threads stay at
 * the environment value like the serving engine itself.
 */
constexpr int64_t kServeTokens = 24;
constexpr int kServePromptLen = 8;

const ModelWeights &
servingWeights()
{
    static const ModelWeights w =
        ModelWeights::generate(bench::servingBenchProfile(), 256);
    return w;
}

Transformer &
servingModel()
{
    static Transformer m(servingWeights(), mantFusedSetup(64));
    return m;
}

std::vector<int32_t>
servingPrompt(int64_t stream)
{
    return bench::servingBenchPrompt(
        stream, kServePromptLen,
        servingWeights().embedding.shape().dim(0));
}

double
tokenChecksum(const std::vector<std::vector<int32_t>> &outs)
{
    double sum = 0.0;
    int64_t i = 1;
    for (const auto &stream : outs)
        for (const int32_t t : stream)
            sum += static_cast<double>(t) * static_cast<double>(i++);
    return sum;
}

static void
BM_DecodeSerial(benchmark::State &state)
{
    const int64_t streams = state.range(0);
    Transformer &model = servingModel();
    std::vector<std::vector<int32_t>> outs;
    for (auto _ : state) {
        outs.clear();
        for (int64_t s = 0; s < streams; ++s)
            outs.push_back(bench::serialGreedyOracle(
                model, servingPrompt(s), kServeTokens));
        benchmark::DoNotOptimize(outs);
    }
    state.SetLabel(simdOps().name);
    state.SetItemsProcessed(state.iterations() * streams *
                            kServeTokens);
    state.counters["checksum"] = tokenChecksum(outs);
}
BENCHMARK(BM_DecodeSerial)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

static void
BM_DecodeBatched(benchmark::State &state)
{
    const int64_t streams = state.range(0);
    Transformer &model = servingModel();
    std::vector<std::vector<int32_t>> outs;
    for (auto _ : state) {
        ServingEngine engine(model,
                             ServingConfig{.maxStreams = streams});
        std::vector<RequestId> ids;
        for (int64_t s = 0; s < streams; ++s) {
            GenRequest req;
            req.prompt = servingPrompt(s);
            req.maxNewTokens = kServeTokens;
            ids.push_back(engine.submit(std::move(req)));
        }
        engine.run();
        outs.clear();
        for (const RequestId id : ids)
            outs.push_back(engine.output(id));
        benchmark::DoNotOptimize(outs);
    }
    state.SetLabel(simdOps().name);
    state.SetItemsProcessed(state.iterations() * streams *
                            kServeTokens);
    state.counters["checksum"] = tokenChecksum(outs);
}
BENCHMARK(BM_DecodeBatched)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/**
 * Paged variants: same streams/prompts/decode budget, but on the
 * MANT4-KV fused-attention model whose caches capture quantized
 * codes. BM_DecodeSerialQuantKv is the reference twin — each stream
 * alone through the single-stream path with monolithic private cache
 * storage. BM_DecodePaged runs the engine with a bounded shared page
 * pool, chunked prefill (chunk 4), and watermark backoff. Paging and
 * chunking are placement/scheduling changes only, so the two must
 * produce byte-identical tokens — tools/bench_gate.py compares their
 * `checksum` counters and gates the paged/serial throughput ratio
 * against the baseline. (BM_DecodeSerial is NOT a valid twin here:
 * it runs the fp16-KV model, whose logits differ.)
 */
Transformer &
servingPagedModel()
{
    static Transformer m(servingWeights(),
                         mantFusedAttentionSetup(64));
    return m;
}

static void
BM_DecodeSerialQuantKv(benchmark::State &state)
{
    const int64_t streams = state.range(0);
    Transformer &model = servingPagedModel();
    std::vector<std::vector<int32_t>> outs;
    for (auto _ : state) {
        outs.clear();
        for (int64_t s = 0; s < streams; ++s)
            outs.push_back(bench::serialGreedyOracle(
                model, servingPrompt(s), kServeTokens));
        benchmark::DoNotOptimize(outs);
    }
    state.SetLabel(simdOps().name);
    state.SetItemsProcessed(state.iterations() * streams *
                            kServeTokens);
    state.counters["checksum"] = tokenChecksum(outs);
}
BENCHMARK(BM_DecodeSerialQuantKv)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

static void
BM_DecodePaged(benchmark::State &state)
{
    const int64_t streams = state.range(0);
    Transformer &model = servingPagedModel();
    const ArchDims &d = servingWeights().profile.simDims;
    const int64_t pageBytes =
        std::max(KPanelStore::blockBytesFor(d.headDim(), 64),
                 VPanelStore::blockBytesFor(d.headDim(), 64));
    // Worst-case pages per stream (prompt 8 + 24 new = 32 rows):
    // ceil(32/8)=4 K blocks, ceil(32/64)=1 V block per cache, one
    // block per page at this geometry, x nLayers x nHeads caches.
    const int64_t pagesPerStream = 5 * d.nLayers * d.nHeads;
    std::vector<std::vector<int32_t>> outs;
    for (auto _ : state) {
        ServingEngine engine(
            model,
            ServingConfig{.maxStreams = streams,
                          .prefillChunkTokens = 4,
                          .pagePoolPages = streams * pagesPerStream,
                          .freePageWatermark = pagesPerStream,
                          .agingSteps = 4});
        std::vector<RequestId> ids;
        for (int64_t s = 0; s < streams; ++s) {
            GenRequest req;
            req.prompt = servingPrompt(s);
            req.maxNewTokens = kServeTokens;
            ids.push_back(engine.submit(std::move(req)));
        }
        engine.run();
        outs.clear();
        for (const RequestId id : ids)
            outs.push_back(engine.output(id));
        benchmark::DoNotOptimize(outs);
        if (engine.pagePool()->inUsePages() != 0)
            state.SkipWithError("page pool not drained");
        benchmark::DoNotOptimize(pageBytes);
    }
    state.SetLabel(simdOps().name);
    state.SetItemsProcessed(state.iterations() * streams *
                            kServeTokens);
    state.counters["checksum"] = tokenChecksum(outs);
}
BENCHMARK(BM_DecodePaged)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/**
 * Attention-path benches: one full decode-step attention row (query
 * quantize → QK^T scores → softmax → P·V) over a pre-populated
 * MANT4 KV cache with captured codes. BM_AttnRef walks the flat
 * one-code-per-byte views with the scalar reference kernels;
 * BM_AttnFused runs the panel-packed fusedTilePanel path. Arg =
 * sequence length (cache rows visible to the query). Both report a
 * `checksum` over the attention output row — the fused/reference
 * bit-exactness contract says the two must match exactly, and
 * tools/bench_gate.py fails CI on mismatch or on a fused-vs-reference
 * throughput regression against BENCH_kernels.baseline.json.
 */
constexpr int64_t kAttnHeadDim = 128;
constexpr int64_t kAttnGroup = 64;

const HeadKvCache &
attnBenchCache(int64_t seqLen)
{
    static const VarianceSelector sel = VarianceSelector::analytic();
    static std::map<int64_t, HeadKvCache> cache;
    auto it = cache.find(seqLen);
    if (it != cache.end())
        return it->second;
    HeadKvCache kv(KvMethod::Mant4, kAttnHeadDim, kAttnGroup, &sel,
                   /*captureCodes=*/true);
    Rng rng(static_cast<uint64_t>(6000 + seqLen));
    std::vector<float> row(static_cast<size_t>(kAttnHeadDim));
    for (int64_t p = 0; p < seqLen; ++p) {
        for (auto &x : row)
            x = static_cast<float>(rng.gaussian());
        kv.appendK(row);
        for (auto &x : row)
            x = static_cast<float>(rng.gaussian());
        kv.appendV(row);
    }
    return cache.emplace(seqLen, std::move(kv)).first->second;
}

std::vector<float>
attnBenchQuery()
{
    Rng rng(6100);
    std::vector<float> q(static_cast<size_t>(kAttnHeadDim));
    for (auto &x : q)
        x = static_cast<float>(rng.gaussian());
    return q;
}

static void
BM_AttnRef(benchmark::State &state)
{
    setMaxThreads(1);
    const int64_t seqLen = state.range(0);
    const HeadKvCache &kv = attnBenchCache(seqLen);
    const std::vector<float> q = attnBenchQuery();
    const float invSqrtDh =
        1.0f / std::sqrt(static_cast<float>(kAttnHeadDim));
    const SimdOps &ops = simdOps();
    AttnScratch scratch;
    std::vector<float> probs(static_cast<size_t>(seqLen));
    std::vector<float> out(static_cast<size_t>(kAttnHeadDim));
    for (auto _ : state) {
        quantizeQRow(ops, q, kAttnGroup, scratch);
        attnScoresReference(kv.kPanels(), scratch.qCodes,
                            scratch.qScales, seqLen, invSqrtDh, 0.0f,
                            probs);
        softmaxRow(probs);
        attnPvReference(ops, kv.vQuant(), probs, scratch, out);
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetLabel(simdOps().name);
    state.SetItemsProcessed(state.iterations() * 2 * seqLen *
                            kAttnHeadDim);
    state.counters["checksum"] =
        checksum(std::span<const float>(out));
    setMaxThreads(0);
}
BENCHMARK(BM_AttnRef)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

static void
BM_AttnFused(benchmark::State &state)
{
    setMaxThreads(1);
    const int64_t seqLen = state.range(0);
    const HeadKvCache &kv = attnBenchCache(seqLen);
    const std::vector<float> q = attnBenchQuery();
    const float invSqrtDh =
        1.0f / std::sqrt(static_cast<float>(kAttnHeadDim));
    const SimdOps &ops = simdOps();
    AttnScratch scratch;
    std::vector<float> probs(static_cast<size_t>(seqLen));
    std::vector<float> out(static_cast<size_t>(kAttnHeadDim));
    for (auto _ : state) {
        quantizeQRow(ops, q, kAttnGroup, scratch);
        attnScoresFused(ops, kv.kPanels(), scratch.qCodes,
                        scratch.qScales, seqLen, invSqrtDh, 0.0f,
                        probs);
        softmaxRow(probs);
        attnPvFused(ops, kv.vQuant(), probs, scratch, out);
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetLabel(simdOps().name);
    state.SetItemsProcessed(state.iterations() * 2 * seqLen *
                            kAttnHeadDim);
    state.counters["checksum"] =
        checksum(std::span<const float>(out));
    setMaxThreads(0);
}
BENCHMARK(BM_AttnFused)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

/**
 * Cold-start pair: constructing a ready-to-serve Transformer by
 * quantize + coefficient-search + tile-pack (BM_ModelBuild, the
 * reference) vs mmap-loading the exported v2 container and wrapping
 * views (BM_ModelLoad, the optimized path). Both report a `checksum`
 * over the same fixed prefill logits — the zero-copy contract says
 * the mapped tiles are the exact bytes the packer produced, so the
 * checksums must match bit-for-bit. tools/bench_gate.py gates this
 * pair on checksum only: the speedup spans orders of magnitude and
 * tracks page-cache state, not kernel perf. Arg = maxSeq.
 */
const ModelWeights &
loadBenchWeights()
{
    static const ModelWeights w =
        ModelWeights::generate(bench::servingBenchProfile(), 128);
    return w;
}

const std::string &
loadBenchFile()
{
    static const std::string path = [] {
        std::string p = "BENCH_model_cold.mant";
        exportModelToFile(p, loadBenchWeights(), mantFusedSetup(64));
        return p;
    }();
    return path;
}

double
loadBenchChecksum(Transformer &model)
{
    const Tensor logits = model.prefill(servingPrompt(0));
    return checksum(logits.span());
}

static void
BM_ModelBuild(benchmark::State &state)
{
    const ModelWeights &w = loadBenchWeights();
    const QuantSetup setup = mantFusedSetup(64);
    for (auto _ : state) {
        Transformer model(w, setup);
        benchmark::ClobberMemory();
    }
    Transformer model(w, setup);
    state.SetLabel(simdOps().name);
    state.SetItemsProcessed(state.iterations());
    state.counters["checksum"] = loadBenchChecksum(model);
}
BENCHMARK(BM_ModelBuild)->Arg(128)->Unit(benchmark::kMillisecond);

static void
BM_ModelLoad(benchmark::State &state)
{
    const std::string &path = loadBenchFile();
    for (auto _ : state) {
        auto loaded = LoadedModel::load(path);
        benchmark::DoNotOptimize(loaded);
    }
    auto loaded = LoadedModel::load(path);
    state.SetLabel(simdOps().name);
    state.SetItemsProcessed(state.iterations());
    state.counters["checksum"] =
        loadBenchChecksum(loaded->transformer());
}
BENCHMARK(BM_ModelLoad)->Arg(128)->Unit(benchmark::kMillisecond);

static void
BM_TemporalVPush(benchmark::State &state)
{
    const VarianceSelector sel = VarianceSelector::analytic();
    TemporalVQuantizer tq(128, 64, sel);
    Rng rng(4);
    Tensor prefill(Shape{64, 128});
    for (int64_t i = 0; i < prefill.numel(); ++i)
        prefill[i] = static_cast<float>(rng.gaussian());
    tq.pushPrefill(prefill);
    std::vector<float> v(128);
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian());
    for (auto _ : state) {
        tq.pushDecode(v);
    }
    state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_TemporalVPush);

} // namespace
} // namespace mant

int
main(int argc, char **argv)
{
    // Default to recording JSON alongside the console output so the
    // perf trajectory lands in CI artifacts without extra flags.
    std::vector<char *> args(argv, argv + argc);
    bool has_out = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0)
            has_out = true;
    }
    std::string out_flag = "--benchmark_out=BENCH_kernels.json";
    std::string fmt_flag = "--benchmark_out_format=json";
    if (!has_out) {
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    int argn = static_cast<int>(args.size());
    benchmark::Initialize(&argn, args.data());
    if (benchmark::ReportUnrecognizedArguments(argn, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
