/**
 * Kernel microbenchmarks (google-benchmark): the fused MANT integer
 * dot product vs the dequantize-then-float path vs plain INT8, the
 * encode paths, the real-time quantization primitives, and
 * serial-vs-parallel throughput for the threaded kernels.
 *
 * Unless --benchmark_out is given explicitly, results are also written
 * to BENCH_kernels.json (google-benchmark JSON) in the working
 * directory, so CI records the perf trajectory per commit.
 *
 * Threaded benchmarks take the thread budget as their argument:
 * /1 pins the kernel serial, /0 resolves to all hardware threads.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/fused_gemm.h"
#include "core/kv_quant.h"
#include "core/parallel.h"
#include "quant/fixed_formats.h"
#include "quant/group_quantizer.h"
#include "tensor/distribution.h"

namespace mant {
namespace {

constexpr int64_t kN = 4096;

Tensor
weights()
{
    DistProfile p;
    Rng rng(777);
    return genWeightMatrix(rng, 1, kN, p);
}

static void
BM_FusedMantDot(benchmark::State &state)
{
    const Tensor w = weights();
    const MantQuantizedMatrix qw = MantQuantizedMatrix::quantize(w, 64);
    std::vector<int32_t> x(kN);
    std::vector<MantCode> codes(kN);
    Rng rng(1);
    for (int64_t i = 0; i < kN; ++i) {
        x[static_cast<size_t>(i)] =
            static_cast<int32_t>(rng.uniformInt(255)) - 127;
        codes[static_cast<size_t>(i)] =
            static_cast<MantCode>(qw.rowCodes(0)[i]);
    }
    for (auto _ : state) {
        MantPsums p = fusedDot(x, codes);
        benchmark::DoNotOptimize(p);
    }
    state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_FusedMantDot);

static void
BM_DequantFloatDot(benchmark::State &state)
{
    const Tensor w = weights();
    const MantQuantizedMatrix qw = MantQuantizedMatrix::quantize(w, 64);
    const Tensor wd = qw.dequantize();
    std::vector<float> x(kN);
    Rng rng(2);
    for (auto &v : x)
        v = static_cast<float>(rng.gaussian());
    for (auto _ : state) {
        double acc = 0.0;
        for (int64_t i = 0; i < kN; ++i)
            acc += static_cast<double>(x[static_cast<size_t>(i)]) *
                   wd[i];
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_DequantFloatDot);

static void
BM_Int8Dot(benchmark::State &state)
{
    std::vector<int32_t> x(kN), w(kN);
    Rng rng(3);
    for (int64_t i = 0; i < kN; ++i) {
        x[static_cast<size_t>(i)] =
            static_cast<int32_t>(rng.uniformInt(255)) - 127;
        w[static_cast<size_t>(i)] =
            static_cast<int32_t>(rng.uniformInt(15)) - 7;
    }
    for (auto _ : state) {
        int64_t acc = 0;
        for (int64_t i = 0; i < kN; ++i)
            acc += static_cast<int64_t>(x[static_cast<size_t>(i)]) *
                   w[static_cast<size_t>(i)];
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_Int8Dot);

static void
BM_MantEncodeSearch(benchmark::State &state)
{
    const Tensor w = weights();
    for (auto _ : state) {
        auto q = MantQuantizedMatrix::quantize(w, 64);
        benchmark::DoNotOptimize(q);
    }
    state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_MantEncodeSearch);

static void
BM_IntEncode(benchmark::State &state)
{
    const Tensor w = weights();
    QuantConfig cfg;
    cfg.gran = Granularity::PerGroup;
    cfg.groupSize = 64;
    for (auto _ : state) {
        auto q = quantDequantFixed(w, int4Format(), cfg);
        benchmark::DoNotOptimize(q);
    }
    state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_IntEncode);

static void
BM_VarianceSelect(benchmark::State &state)
{
    const VarianceSelector sel = VarianceSelector::analytic();
    const Tensor w = weights();
    std::vector<float> out(kN);
    for (auto _ : state) {
        auto sels = spatialQuantizeRow(w.span(), 64, sel, out);
        benchmark::DoNotOptimize(sels);
    }
    state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_VarianceSelect);

/* ------------------------------------------------------------------ */
/* Serial vs parallel kernel throughput (arg = thread budget, 0=auto)  */
/* ------------------------------------------------------------------ */

constexpr int64_t kBigDim = 4096;

const Tensor &
bigMatrix()
{
    static const Tensor w = [] {
        DistProfile p;
        Rng rng(4242);
        return genWeightMatrix(rng, kBigDim, kBigDim, p);
    }();
    return w;
}

void
setBenchThreads(benchmark::State &state)
{
    setMaxThreads(static_cast<int>(state.range(0)));
    state.counters["threads"] = static_cast<double>(maxThreads());
}

static void
BM_AdaptiveQuant4096(benchmark::State &state)
{
    setBenchThreads(state);
    const Tensor &w = bigMatrix();
    QuantConfig cfg;
    cfg.gran = Granularity::PerGroup;
    cfg.groupSize = 64;
    for (auto _ : state) {
        auto q = quantDequantAdaptive(w, antTypeSet(), cfg);
        benchmark::DoNotOptimize(q);
    }
    state.SetItemsProcessed(state.iterations() * kBigDim * kBigDim);
    setMaxThreads(0);
}
BENCHMARK(BM_AdaptiveQuant4096)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

static void
BM_MantEncode4096(benchmark::State &state)
{
    setBenchThreads(state);
    const Tensor &w = bigMatrix();
    for (auto _ : state) {
        auto q = MantQuantizedMatrix::quantize(w, 64);
        benchmark::DoNotOptimize(q);
    }
    state.SetItemsProcessed(state.iterations() * kBigDim * kBigDim);
    setMaxThreads(0);
}
BENCHMARK(BM_MantEncode4096)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

static void
BM_FusedGemmThreaded(benchmark::State &state)
{
    setBenchThreads(state);
    constexpr int64_t kM = 32, kK = 1024, kNOut = 512;
    DistProfile p;
    Rng rng(4343);
    const Tensor w = genWeightMatrix(rng, kNOut, kK, p);
    Tensor x(Shape{kM, kK});
    for (int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.gaussian());
    const MantQuantizedMatrix qw = MantQuantizedMatrix::quantize(w, 64);
    const auto qx = Int8QuantizedActivations::quantize(x, 64);
    for (auto _ : state) {
        Tensor out = fusedGemm(qx, qw);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * kM * kK * kNOut);
    setMaxThreads(0);
}
BENCHMARK(BM_FusedGemmThreaded)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

static void
BM_TemporalVPush(benchmark::State &state)
{
    const VarianceSelector sel = VarianceSelector::analytic();
    TemporalVQuantizer tq(128, 64, sel);
    Rng rng(4);
    Tensor prefill(Shape{64, 128});
    for (int64_t i = 0; i < prefill.numel(); ++i)
        prefill[i] = static_cast<float>(rng.gaussian());
    tq.pushPrefill(prefill);
    std::vector<float> v(128);
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian());
    for (auto _ : state) {
        tq.pushDecode(v);
    }
    state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_TemporalVPush);

} // namespace
} // namespace mant

int
main(int argc, char **argv)
{
    // Default to recording JSON alongside the console output so the
    // perf trajectory lands in CI artifacts without extra flags.
    std::vector<char *> args(argv, argv + argc);
    bool has_out = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0)
            has_out = true;
    }
    std::string out_flag = "--benchmark_out=BENCH_kernels.json";
    std::string fmt_flag = "--benchmark_out_format=json";
    if (!has_out) {
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    int argn = static_cast<int>(args.size());
    benchmark::Initialize(&argn, args.data());
    if (benchmark::ReportUnrecognizedArguments(argn, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
