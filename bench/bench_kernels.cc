/**
 * Kernel microbenchmarks (google-benchmark): the fused MANT integer
 * dot product vs the dequantize-then-float path vs plain INT8, the
 * encode paths, and the real-time quantization primitives.
 */

#include <benchmark/benchmark.h>

#include "core/fused_gemm.h"
#include "core/kv_quant.h"
#include "quant/fixed_formats.h"
#include "quant/group_quantizer.h"
#include "tensor/distribution.h"

namespace mant {
namespace {

constexpr int64_t kN = 4096;

Tensor
weights()
{
    DistProfile p;
    Rng rng(777);
    return genWeightMatrix(rng, 1, kN, p);
}

static void
BM_FusedMantDot(benchmark::State &state)
{
    const Tensor w = weights();
    const MantQuantizedMatrix qw = MantQuantizedMatrix::quantize(w, 64);
    std::vector<int32_t> x(kN);
    std::vector<MantCode> codes(kN);
    Rng rng(1);
    for (int64_t i = 0; i < kN; ++i) {
        x[static_cast<size_t>(i)] =
            static_cast<int32_t>(rng.uniformInt(255)) - 127;
        codes[static_cast<size_t>(i)] =
            static_cast<MantCode>(qw.rowCodes(0)[i]);
    }
    for (auto _ : state) {
        MantPsums p = fusedDot(x, codes);
        benchmark::DoNotOptimize(p);
    }
    state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_FusedMantDot);

static void
BM_DequantFloatDot(benchmark::State &state)
{
    const Tensor w = weights();
    const MantQuantizedMatrix qw = MantQuantizedMatrix::quantize(w, 64);
    const Tensor wd = qw.dequantize();
    std::vector<float> x(kN);
    Rng rng(2);
    for (auto &v : x)
        v = static_cast<float>(rng.gaussian());
    for (auto _ : state) {
        double acc = 0.0;
        for (int64_t i = 0; i < kN; ++i)
            acc += static_cast<double>(x[static_cast<size_t>(i)]) *
                   wd[i];
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_DequantFloatDot);

static void
BM_Int8Dot(benchmark::State &state)
{
    std::vector<int32_t> x(kN), w(kN);
    Rng rng(3);
    for (int64_t i = 0; i < kN; ++i) {
        x[static_cast<size_t>(i)] =
            static_cast<int32_t>(rng.uniformInt(255)) - 127;
        w[static_cast<size_t>(i)] =
            static_cast<int32_t>(rng.uniformInt(15)) - 7;
    }
    for (auto _ : state) {
        int64_t acc = 0;
        for (int64_t i = 0; i < kN; ++i)
            acc += static_cast<int64_t>(x[static_cast<size_t>(i)]) *
                   w[static_cast<size_t>(i)];
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_Int8Dot);

static void
BM_MantEncodeSearch(benchmark::State &state)
{
    const Tensor w = weights();
    for (auto _ : state) {
        auto q = MantQuantizedMatrix::quantize(w, 64);
        benchmark::DoNotOptimize(q);
    }
    state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_MantEncodeSearch);

static void
BM_IntEncode(benchmark::State &state)
{
    const Tensor w = weights();
    QuantConfig cfg;
    cfg.gran = Granularity::PerGroup;
    cfg.groupSize = 64;
    for (auto _ : state) {
        auto q = quantDequantFixed(w, int4Format(), cfg);
        benchmark::DoNotOptimize(q);
    }
    state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_IntEncode);

static void
BM_VarianceSelect(benchmark::State &state)
{
    const VarianceSelector sel = VarianceSelector::analytic();
    const Tensor w = weights();
    std::vector<float> out(kN);
    for (auto _ : state) {
        auto sels = spatialQuantizeRow(w.span(), 64, sel, out);
        benchmark::DoNotOptimize(sels);
    }
    state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_VarianceSelect);

static void
BM_TemporalVPush(benchmark::State &state)
{
    const VarianceSelector sel = VarianceSelector::analytic();
    TemporalVQuantizer tq(128, 64, sel);
    Rng rng(4);
    Tensor prefill(Shape{64, 128});
    for (int64_t i = 0; i < prefill.numel(); ++i)
        prefill[i] = static_cast<float>(rng.gaussian());
    tq.pushPrefill(prefill);
    std::vector<float> v(128);
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian());
    for (auto _ : state) {
        tq.pushDecode(v);
    }
    state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_TemporalVPush);

} // namespace
} // namespace mant

BENCHMARK_MAIN();
