/**
 * @file
 * Cold-start bench for the zero-copy model load path.
 *
 * Measures the wall-clock cost of bringing up a ready-to-serve
 * Transformer two ways from the same weights:
 *   build — quantize + coefficient-search + tile-pack in memory (the
 *           pre-container path every process used to pay);
 *   load  — mmap an exported v2 container and wrap views (the format
 *           IS the compute layout, so no quantization runs at all).
 *
 * Self-checking: prefill + decode logits from the loaded model must be
 * byte-identical to the built model (mmap and read-fallback both), the
 * load path must beat the build path by at least MIN_SPEEDUP, and a
 * forked child re-loading the same file must see byte-identical logits
 * again — with an mincore() report showing how much of the mapping the
 * page cache already held (the multi-process sharing story). Exits
 * non-zero on any parity or speedup failure.
 *
 * Usage: bench_model_load [reps] [out.mant]
 */

#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "model/model_file.h"
#include "model/model_profiles.h"
#include "model/quant_setup.h"
#include "model/transformer.h"
#include "model/weights.h"
#include "tensor/rng.h"

namespace mant {
namespace {

constexpr double kMinSpeedup = 2.0;
constexpr int64_t kMaxSeq = 256;
constexpr int kPromptLen = 24;

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** VmRSS in KiB from /proc/self/status; -1 when unavailable. */
long
rssKib()
{
    std::ifstream f("/proc/self/status");
    std::string key;
    while (f >> key) {
        if (key == "VmRSS:") {
            long kib = -1;
            f >> kib;
            return kib;
        }
        f.ignore(4096, '\n');
    }
    return -1;
}

std::vector<int32_t>
prompt(int64_t vocab)
{
    Rng rng(4242);
    std::vector<int32_t> t(kPromptLen);
    for (auto &x : t)
        x = static_cast<int32_t>(
            rng.uniformInt(static_cast<uint64_t>(vocab)));
    return t;
}

/** Prefill + one decode step, concatenated into one byte buffer. */
std::vector<uint8_t>
logitsBytes(Transformer &model, const std::vector<int32_t> &toks)
{
    const Tensor logits = model.prefill(toks);
    const std::vector<float> step = model.decodeStep(7);
    std::vector<uint8_t> out(
        static_cast<size_t>(logits.numel()) * 4 + step.size() * 4);
    std::memcpy(out.data(), logits.data(),
                static_cast<size_t>(logits.numel()) * 4);
    std::memcpy(out.data() + static_cast<size_t>(logits.numel()) * 4,
                step.data(), step.size() * 4);
    return out;
}

/** Fraction of the mapping already resident per mincore(). */
double
residentFraction(const uint8_t *base, size_t size)
{
    const long page = sysconf(_SC_PAGESIZE);
    if (page <= 0 || size == 0)
        return -1.0;
    const size_t pages =
        (size + static_cast<size_t>(page) - 1) /
        static_cast<size_t>(page);
    std::vector<unsigned char> vec(pages);
    if (mincore(const_cast<uint8_t *>(base), size, vec.data()) != 0)
        return -1.0;
    size_t resident = 0;
    for (const unsigned char v : vec)
        resident += v & 1u;
    return static_cast<double>(resident) /
           static_cast<double>(pages);
}

int
run(int reps, const std::string &path)
{
    const ModelProfile &profile = modelProfile("llama-2-7b");
    const ModelWeights weights =
        ModelWeights::generate(profile, kMaxSeq);
    const QuantSetup setup = mantFusedSetup(64);
    const std::vector<int32_t> toks =
        prompt(profile.simDims.vocab);

    // Build path: quantize-then-pack in memory, timed per rep.
    double buildMs = 1e30;
    std::vector<uint8_t> want;
    for (int r = 0; r < reps; ++r) {
        const double t0 = nowMs();
        Transformer built(weights, setup);
        const double t1 = nowMs();
        buildMs = std::min(buildMs, t1 - t0);
        if (r == 0)
            want = logitsBytes(built, toks);
    }

    exportModelToFile(path, weights, setup);

    // Load path: mmap + validate + wrap views, timed per rep.
    const long rssBefore = rssKib();
    double loadMs = 1e30;
    std::shared_ptr<LoadedModel> loaded;
    for (int r = 0; r < reps; ++r) {
        loaded.reset();
        const double t0 = nowMs();
        loaded = LoadedModel::load(path);
        const double t1 = nowMs();
        loadMs = std::min(loadMs, t1 - t0);
    }
    const long rssAfterLoad = rssKib();

    if (logitsBytes(loaded->transformer(), toks) != want) {
        std::fprintf(stderr,
                     "FAIL: mmap-loaded logits differ from the "
                     "in-memory build\n");
        return 1;
    }
    {
        auto viaRead = LoadedModel::load(path, /*forceRead=*/true);
        if (logitsBytes(viaRead->transformer(), toks) != want) {
            std::fprintf(stderr,
                         "FAIL: read-fallback logits differ from "
                         "the in-memory build\n");
            return 1;
        }
    }
    const long rssAfterRun = rssKib();

    const double speedup = buildMs / loadMs;
    std::printf("model %s: file %zu bytes, %d reps\n",
                profile.name.c_str(), loaded->file().size(), reps);
    std::printf("  build (quantize+pack): %9.3f ms\n", buildMs);
    std::printf("  load  (mmap+views):    %9.3f ms   %.1fx faster\n",
                loadMs, speedup);
    std::printf("  VmRSS: %ld KiB before, %ld after load, %ld after "
                "inference\n",
                rssBefore, rssAfterLoad, rssAfterRun);

    // Multi-process smoke: a forked child re-loads the same file.
    // Its mapping should ride the shared page cache the parent just
    // populated, and its logits must be byte-identical.
    std::fflush(stdout); // don't duplicate buffered output via fork
    const pid_t pid = fork();
    if (pid == 0) {
        auto child = LoadedModel::load(path);
        const double frac = residentFraction(child->file().data(),
                                             child->file().size());
        std::printf("  child: %.0f%% of mapping page-cache resident "
                    "at load\n",
                    frac * 100.0);
        std::fflush(stdout); // _exit skips stdio teardown
        _exit(logitsBytes(child->transformer(), toks) == want ? 0
                                                              : 1);
    }
    if (pid > 0) {
        int status = 0;
        waitpid(pid, &status, 0);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            std::fprintf(stderr,
                         "FAIL: forked child parity check failed\n");
            return 1;
        }
    } else {
        std::perror("fork");
        return 1;
    }

    if (speedup < kMinSpeedup) {
        std::fprintf(stderr,
                     "FAIL: load speedup %.2fx below the %.1fx "
                     "floor\n",
                     speedup, kMinSpeedup);
        return 1;
    }
    std::printf("OK: load path parity (mmap, read, child) and "
                "%.1fx cold-start speedup\n",
                speedup);
    return 0;
}

} // namespace
} // namespace mant

int
main(int argc, char **argv)
{
    const int reps = argc > 1 ? std::atoi(argv[1]) : 3;
    const std::string path =
        argc > 2 ? argv[2] : "BENCH_model_load.mant";
    return mant::run(reps > 0 ? reps : 1, path);
}
