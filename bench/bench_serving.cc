/**
 * @file
 * Serving-engine throughput sweeps.
 *
 * Sweep 1 (batching): aggregate decode tokens/s of the batched
 * multi-stream engine vs the same streams run serially through the
 * single-stream path, over a streams × tokens grid (the Fig. 13/14
 * batching story applied to the software decode path).
 *
 * Sweep 2 (paging): the paged + chunked-prefill configuration scaled
 * to hundreds of queued streams over a FIXED page-pool budget sized
 * for only the 16 concurrent decode slots — the point is that memory
 * stays bounded by concurrency, not by total request volume. Each
 * stream count reports the pool high-water mark (pages and MB) and
 * the worst per-round prefill burst, and is parity-checked against a
 * monolithic (unchunked, unbounded) engine plus a serial-oracle
 * subset.
 *
 * Sweep 3 (preemption): the paged mix against a pool deliberately
 * undersized for the decode slots, measuring the recompute overhead
 * of eviction + deterministic replay (see runPreemptionSweep).
 *
 * Every cell of every sweep is parity-checked byte-for-byte (the
 * serving determinism contract) and the binary exits non-zero on any
 * mismatch — so this sweep doubles as an end-to-end check wherever it
 * runs (CI executes it in the bench job).
 *
 * Usage: bench_serving [maxPagedStreams] [tokensPerStream]
 *   maxPagedStreams (default 256) caps the paged and preemption
 *     sweeps' stream grids {16, ..., maxPagedStreams}; 0 skips both.
 *   tokensPerStream (default 32) applies to the batching sweep; the
 *     paged sweep decodes a fixed 16 tokens/stream since its variable
 *     of interest is stream count and pool pressure, not decode
 *     length.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/kv_pages.h"
#include "core/kv_panels.h"
#include "core/parallel.h"
#include "core/simd.h"
#include "model/transformer.h"
#include "serve/serving_engine.h"
#include "tensor/rng.h"

namespace mant {
namespace {

int
runSweep(int64_t tokensPerStream)
{
    const ModelProfile profile = bench::servingBenchProfile();
    const ModelWeights weights = ModelWeights::generate(profile, 256);
    Transformer model(weights, mantFusedSetup(64));
    const int64_t vocab = profile.simDims.vocab;
    constexpr int kPromptLen = 8;

    std::cout << "Serving decode throughput (" << profile.simDims.dModel
              << "d x " << profile.simDims.nLayers << "L, vocab "
              << vocab << ", MANT W4A8 fused, backend "
              << simdPathName(activeSimdPath()) << ", "
              << maxThreads() << " thread(s)), " << tokensPerStream
              << " tokens/stream:\n\n";
    std::cout << "streams | serial ms | batched ms | serial tok/s | "
                 "batched tok/s | speedup | parity\n";
    std::cout << "--------+-----------+------------+--------------+-"
                 "--------------+---------+-------\n";

    bool all_ok = true;
    for (const int64_t streams : {1, 2, 4, 8, 16}) {
        std::vector<std::vector<int32_t>> prompts;
        for (int64_t s = 0; s < streams; ++s)
            prompts.push_back(
                bench::servingBenchPrompt(s, kPromptLen, vocab));

        // Serial: each stream alone through the single-stream path.
        std::vector<std::vector<int32_t>> serial;
        const bench::Stopwatch serial_watch;
        for (int64_t s = 0; s < streams; ++s)
            serial.push_back(bench::serialGreedyOracle(
                model, prompts[static_cast<size_t>(s)],
                tokensPerStream));
        const double serial_ms = serial_watch.elapsedNs() / 1e6;

        // Batched: one engine, one decode pass per step for all
        // streams together.
        ServingEngine engine(model,
                             ServingConfig{.maxStreams = streams});
        std::vector<RequestId> ids;
        const bench::Stopwatch batched_watch;
        for (int64_t s = 0; s < streams; ++s) {
            GenRequest req;
            req.prompt = prompts[static_cast<size_t>(s)];
            req.maxNewTokens = tokensPerStream;
            ids.push_back(engine.submit(std::move(req)));
        }
        engine.run();
        const double batched_ms = batched_watch.elapsedNs() / 1e6;

        bool parity = true;
        for (int64_t s = 0; s < streams; ++s)
            parity = parity &&
                     engine.output(ids[static_cast<size_t>(s)]) ==
                         serial[static_cast<size_t>(s)];
        all_ok = all_ok && parity;

        const double total_tokens =
            static_cast<double>(streams * tokensPerStream);
        std::printf(
            "%7lld | %9.1f | %10.1f | %12.0f | %13.0f | %6.2fx | %s\n",
            static_cast<long long>(streams), serial_ms, batched_ms,
            total_tokens / (serial_ms / 1e3),
            total_tokens / (batched_ms / 1e3),
            serial_ms / batched_ms, parity ? "OK" : "MISMATCH");
    }

    if (!all_ok) {
        std::cerr << "\nFAIL: batched outputs diverged from the "
                     "serial single-stream path\n";
        return 1;
    }
    std::cout << "\nAll batch widths byte-identical to serial.\n";
    return 0;
}

/** Ragged prompt lengths so streams straddle panel (8) and V-window
 *  (64) boundaries differently: 4..35 tokens. */
int64_t
pagedPromptLen(int64_t stream)
{
    return 4 + (stream * 7) % 32;
}

/** Worst-case pages one stream can pin, from the same blockBytesFor
 *  math the engine uses to size pages. With pool capacity >=
 *  decodeSlots * this, exhaustion is impossible: at most decodeSlots
 *  streams hold pages at once and each holds at most this many. */
int64_t
worstPagesPerStream(const ArchDims &d, int64_t kvGroup,
                    int64_t maxRows, int64_t pageBytes)
{
    const int64_t kBlock =
        KPanelStore::blockBytesFor(d.headDim(), kvGroup);
    const int64_t vBlock =
        VPanelStore::blockBytesFor(d.headDim(), kvGroup);
    const auto ceilDiv = [](int64_t a, int64_t b) {
        return (a + b - 1) / b;
    };
    const int64_t kBlocks = ceilDiv(maxRows, kTilePanelCols);
    const int64_t vBlocks = ceilDiv(maxRows, kvGroup);
    const int64_t pagesPerCache =
        ceilDiv(kBlocks, pageBytes / kBlock) +
        ceilDiv(vBlocks, pageBytes / vBlock);
    return pagesPerCache * d.nLayers * d.nHeads;
}

int
runPagedSweep(int64_t maxStreams)
{
    constexpr int64_t kDecodeSlots = 16;
    constexpr int64_t kPagedTokens = 16;
    constexpr int64_t kvGroup = 64;
    const ModelProfile profile = bench::servingBenchProfile();
    const ModelWeights weights = ModelWeights::generate(profile, 256);
    Transformer model(weights, mantFusedAttentionSetup(kvGroup));
    const ArchDims &d = profile.simDims;

    // Pool budget: sized for the decode slots, NOT for the total
    // stream count — the whole point of paging. maxRows uses the
    // largest ragged prompt (35) plus the decode budget.
    const int64_t pageBytes =
        std::max(KPanelStore::blockBytesFor(d.headDim(), kvGroup),
                 VPanelStore::blockBytesFor(d.headDim(), kvGroup));
    const int64_t pagesPerStream = worstPagesPerStream(
        d, kvGroup, 35 + kPagedTokens, pageBytes);
    const int64_t poolPages = kDecodeSlots * pagesPerStream;

    std::cout << "\nPaged + chunked-prefill sweep (" << d.dModel
              << "d x " << d.nLayers << "L, MANT4 KV codes, "
              << kDecodeSlots << " decode slots, chunk 8, pool "
              << poolPages << " pages x " << pageBytes << " B = "
              << std::fixed << std::setprecision(1)
              << static_cast<double>(poolPages * pageBytes) / 1e6
              << " MB cap, watermark " << pagesPerStream << "), "
              << kPagedTokens << " tokens/stream:\n\n";
    std::cout << "streams | paged ms | tok/s | peak pages | peak MB | "
                 "defers | maxPrefill/step | parity\n";
    std::cout << "--------+----------+-------+------------+---------+-"
                 "-------+-----------------+-------\n";

    bool all_ok = true;
    for (const int64_t streams : {16, 32, 64, 128, 256}) {
        if (streams > maxStreams)
            break;
        std::vector<std::vector<int32_t>> prompts;
        for (int64_t s = 0; s < streams; ++s)
            prompts.push_back(bench::servingBenchPrompt(
                s, pagedPromptLen(s), d.vocab));

        // Monolithic reference: same model, unchunked prefill,
        // unbounded pool, same decode width. The determinism
        // contract says paged+chunked output must be byte-identical.
        ServingEngine mono(
            model, ServingConfig{.maxStreams = kDecodeSlots});
        std::vector<RequestId> monoIds;
        for (int64_t s = 0; s < streams; ++s) {
            GenRequest req;
            req.prompt = prompts[static_cast<size_t>(s)];
            req.maxNewTokens = kPagedTokens;
            monoIds.push_back(mono.submit(std::move(req)));
        }
        mono.run();

        ServingEngine paged(
            model,
            ServingConfig{.maxStreams = kDecodeSlots,
                          .prefillChunkTokens = 8,
                          .pagePoolPages = poolPages,
                          .freePageWatermark = pagesPerStream,
                          .agingSteps = 4});
        std::vector<RequestId> ids;
        const bench::Stopwatch watch;
        for (int64_t s = 0; s < streams; ++s) {
            GenRequest req;
            req.prompt = prompts[static_cast<size_t>(s)];
            req.maxNewTokens = kPagedTokens;
            ids.push_back(paged.submit(std::move(req)));
        }
        paged.run();
        const double paged_ms = watch.elapsedNs() / 1e6;

        bool parity = true;
        for (int64_t s = 0; s < streams; ++s)
            parity = parity &&
                     paged.output(ids[static_cast<size_t>(s)]) ==
                         mono.output(monoIds[static_cast<size_t>(s)]);
        // Serial-oracle spot check on a subset (full oracle coverage
        // lives in the batching sweep and the test suite).
        for (int64_t s = 0; s < std::min<int64_t>(streams, 4); ++s)
            parity = parity &&
                     paged.output(ids[static_cast<size_t>(s)]) ==
                         bench::serialGreedyOracle(
                             model, prompts[static_cast<size_t>(s)],
                             kPagedTokens);

        const ServingEngine::Stats &st = paged.stats();
        const KvPageAllocator *pool = paged.pagePool();
        const bool bounded =
            pool != nullptr && pool->inUsePages() == 0 &&
            pool->peakInUsePages() <= poolPages &&
            pool->createdPages() <= poolPages &&
            st.peakPagesInUse == pool->peakInUsePages();
        parity = parity && bounded;
        all_ok = all_ok && parity;

        const double total_tokens =
            static_cast<double>(streams * kPagedTokens);
        std::printf("%7lld | %8.1f | %5.0f | %10lld | %7.2f | %6lld "
                    "| %15lld | %s\n",
                    static_cast<long long>(streams), paged_ms,
                    total_tokens / (paged_ms / 1e3),
                    static_cast<long long>(st.peakPagesInUse),
                    static_cast<double>(st.peakPagesInUse *
                                        pageBytes) /
                        1e6,
                    static_cast<long long>(st.admissionDeferrals),
                    static_cast<long long>(
                        st.maxPrefillTokensPerStep),
                    !parity     ? "MISMATCH"
                    : !bounded  ? "UNBOUNDED"
                                : "OK");
    }

    if (!all_ok) {
        std::cerr << "\nFAIL: paged/chunked outputs diverged from "
                     "the monolithic engine, or the page pool "
                     "leaked/exceeded its cap\n";
        return 1;
    }
    std::cout << "\nAll paged stream counts byte-identical to the "
                 "monolithic engine, pool bounded and drained.\n";
    return 0;
}

/**
 * Sweep 3 (preemption): the same request mix against a pool
 * deliberately undersized for the decode slots (40% of slots ×
 * worst-case pages, watermark off), so the scheduler must keep the
 * batch alive by evicting and later replaying streams. Reports the
 * recompute overhead of running undersized — evicted-and-replayed
 * tokens as a fraction of tokens decoded — next to throughput. The
 * run must finish with zero engine-fatal exceptions, at least one
 * eviction per cell, byte-parity with the monolithic engine for every
 * request (serial-oracle spot check on a subset), and a drained,
 * cap-honoring pool; any violation exits non-zero.
 */
int
runPreemptionSweep(int64_t maxStreams)
{
    constexpr int64_t kDecodeSlots = 16;
    constexpr int64_t kPagedTokens = 16;
    // Group 16 (vs the paged sweep's 64) so page claims spread across
    // a stream's whole lifetime — K panels every 8 rows, V windows
    // every 16 — instead of all landing in the admission chunk. With
    // claims mid-flight, an undersized pool must preempt running
    // streams; claims-at-admission would be absorbed by admission
    // deferral alone and never exercise eviction.
    constexpr int64_t kvGroup = 16;
    const ModelProfile profile = bench::servingBenchProfile();
    const ModelWeights weights = ModelWeights::generate(profile, 256);
    Transformer model(weights, mantFusedAttentionSetup(kvGroup));
    const ArchDims &d = profile.simDims;

    const int64_t pageBytes =
        std::max(KPanelStore::blockBytesFor(d.headDim(), kvGroup),
                 VPanelStore::blockBytesFor(d.headDim(), kvGroup));
    const int64_t pagesPerStream = worstPagesPerStream(
        d, kvGroup, 35 + kPagedTokens, pageBytes);
    // Undersized on purpose: well below what the decode slots can
    // pin together, but any single stream still fits — so requests
    // are preempted and replayed, never failed.
    const int64_t poolPages =
        std::max(pagesPerStream + 1,
                 kDecodeSlots * pagesPerStream * 2 / 5);

    std::cout << "\nPreemption sweep (undersized pool: " << poolPages
              << " pages vs " << kDecodeSlots * pagesPerStream
              << " worst-case for " << kDecodeSlots
              << " slots; chunk 8), " << kPagedTokens
              << " tokens/stream:\n\n";
    std::cout << "streams | ms | tok/s | evictions | recomputed tok | "
                 "overhead | parity\n";
    std::cout << "--------+----+-------+-----------+----------------+-"
                 "---------+-------\n";

    bool all_ok = true;
    for (const int64_t streams : {16, 64, 256}) {
        if (streams > maxStreams)
            break;
        std::vector<std::vector<int32_t>> prompts;
        for (int64_t s = 0; s < streams; ++s)
            prompts.push_back(bench::servingBenchPrompt(
                s, pagedPromptLen(s), d.vocab));

        ServingEngine mono(
            model, ServingConfig{.maxStreams = kDecodeSlots});
        std::vector<RequestId> monoIds;
        for (int64_t s = 0; s < streams; ++s) {
            GenRequest req;
            req.prompt = prompts[static_cast<size_t>(s)];
            req.maxNewTokens = kPagedTokens;
            monoIds.push_back(mono.submit(std::move(req)));
        }
        mono.run();

        ServingEngine engine(
            model, ServingConfig{.maxStreams = kDecodeSlots,
                                 .prefillChunkTokens = 8,
                                 .pagePoolPages = poolPages});
        std::vector<RequestId> ids;
        const bench::Stopwatch watch;
        for (int64_t s = 0; s < streams; ++s) {
            GenRequest req;
            req.prompt = prompts[static_cast<size_t>(s)];
            req.maxNewTokens = kPagedTokens;
            ids.push_back(engine.submit(std::move(req)));
        }
        // The headline claim: request-level pool pressure can never
        // kill the engine. Any exception here is an engine bug.
        try {
            engine.run();
        } catch (const std::exception &e) {
            std::cerr << "\nFAIL: engine-fatal exception under pool "
                         "pressure: "
                      << e.what() << "\n";
            return 1;
        }
        const double ms = watch.elapsedNs() / 1e6;

        bool parity = true;
        for (int64_t s = 0; s < streams; ++s)
            parity = parity &&
                     engine.state(ids[static_cast<size_t>(s)]) ==
                         RequestState::Done &&
                     engine.output(ids[static_cast<size_t>(s)]) ==
                         mono.output(monoIds[static_cast<size_t>(s)]);
        for (int64_t s = 0; s < std::min<int64_t>(streams, 8); ++s)
            parity = parity &&
                     engine.output(ids[static_cast<size_t>(s)]) ==
                         bench::serialGreedyOracle(
                             model, prompts[static_cast<size_t>(s)],
                             kPagedTokens);

        const ServingEngine::Stats &st = engine.stats();
        const KvPageAllocator *pool = engine.pagePool();
        const bool pressured = st.evictions >= 1;
        const bool bounded =
            pool != nullptr && pool->inUsePages() == 0 &&
            pool->peakInUsePages() <= poolPages &&
            st.failed == 0;
        all_ok = all_ok && parity && pressured && bounded;

        const double total_tokens =
            static_cast<double>(streams * kPagedTokens);
        std::printf(
            "%7lld | %2.0f | %5.0f | %9lld | %14lld | %7.1f%% | %s\n",
            static_cast<long long>(streams), ms,
            total_tokens / (ms / 1e3),
            static_cast<long long>(st.evictions),
            static_cast<long long>(st.recomputedTokens),
            100.0 * static_cast<double>(st.recomputedTokens) /
                static_cast<double>(std::max<int64_t>(
                    st.decodedTokens + st.prefillTokens, 1)),
            !parity      ? "MISMATCH"
            : !pressured ? "NO-EVICT"
            : !bounded   ? "UNBOUNDED"
                         : "OK");
    }

    if (!all_ok) {
        std::cerr << "\nFAIL: preemption sweep diverged from the "
                     "monolithic engine, saw no evictions, or "
                     "leaked/failed under pressure\n";
        return 1;
    }
    std::cout << "\nAll preempted runs byte-identical to the "
                 "monolithic engine; recompute overhead is the whole "
                 "cost of the undersized pool.\n";
    return 0;
}

} // namespace
} // namespace mant

int
main(int argc, char **argv)
{
    int64_t pagedStreams = 256;
    int64_t tokens = 32;
    try {
        if (argc > 1)
            pagedStreams = std::stoll(argv[1]);
        if (argc > 2)
            tokens = std::stoll(argv[2]);
    } catch (const std::exception &) {
        pagedStreams = -1; // falls through to the usage error below
    }
    if (pagedStreams < 0 || tokens < 1) {
        std::cerr << "usage: bench_serving [maxPagedStreams>=0] "
                     "[tokensPerStream>=1]\n";
        return 2;
    }
    const int rc = mant::runSweep(tokens);
    if (rc != 0)
        return rc;
    if (pagedStreams > 0) {
        const int paged = mant::runPagedSweep(pagedStreams);
        if (paged != 0)
            return paged;
        return mant::runPreemptionSweep(pagedStreams);
    }
    return 0;
}
