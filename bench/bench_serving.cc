/**
 * @file
 * Serving-engine throughput sweep: aggregate decode tokens/s of the
 * batched multi-stream engine vs the same streams run serially through
 * the single-stream path, over a streams × tokens grid (the Fig. 13/14
 * batching story applied to the software decode path).
 *
 * Every cell is parity-checked: the batched engine must produce
 * byte-identical token sequences to the serial runs (the serving
 * determinism contract), and the binary exits non-zero on any
 * mismatch — so this sweep doubles as an end-to-end check wherever it
 * runs (CI executes it in the bench job).
 *
 * Usage: bench_serving [tokensPerStream] (default 32)
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/parallel.h"
#include "core/simd.h"
#include "model/transformer.h"
#include "serve/serving_engine.h"
#include "tensor/rng.h"

namespace mant {
namespace {

int
runSweep(int64_t tokensPerStream)
{
    const ModelProfile profile = bench::servingBenchProfile();
    const ModelWeights weights = ModelWeights::generate(profile, 256);
    Transformer model(weights, mantFusedSetup(64));
    const int64_t vocab = profile.simDims.vocab;
    constexpr int kPromptLen = 8;

    std::cout << "Serving decode throughput (" << profile.simDims.dModel
              << "d x " << profile.simDims.nLayers << "L, vocab "
              << vocab << ", MANT W4A8 fused, backend "
              << simdPathName(activeSimdPath()) << ", "
              << maxThreads() << " thread(s)), " << tokensPerStream
              << " tokens/stream:\n\n";
    std::cout << "streams | serial ms | batched ms | serial tok/s | "
                 "batched tok/s | speedup | parity\n";
    std::cout << "--------+-----------+------------+--------------+-"
                 "--------------+---------+-------\n";

    bool all_ok = true;
    for (const int64_t streams : {1, 2, 4, 8, 16}) {
        std::vector<std::vector<int32_t>> prompts;
        for (int64_t s = 0; s < streams; ++s)
            prompts.push_back(
                bench::servingBenchPrompt(s, kPromptLen, vocab));

        // Serial: each stream alone through the single-stream path.
        std::vector<std::vector<int32_t>> serial;
        const bench::Stopwatch serial_watch;
        for (int64_t s = 0; s < streams; ++s)
            serial.push_back(bench::serialGreedyOracle(
                model, prompts[static_cast<size_t>(s)],
                tokensPerStream));
        const double serial_ms = serial_watch.elapsedNs() / 1e6;

        // Batched: one engine, one decode pass per step for all
        // streams together.
        ServingEngine engine(model,
                             ServingConfig{.maxStreams = streams});
        std::vector<RequestId> ids;
        const bench::Stopwatch batched_watch;
        for (int64_t s = 0; s < streams; ++s) {
            GenRequest req;
            req.prompt = prompts[static_cast<size_t>(s)];
            req.maxNewTokens = tokensPerStream;
            ids.push_back(engine.submit(std::move(req)));
        }
        engine.run();
        const double batched_ms = batched_watch.elapsedNs() / 1e6;

        bool parity = true;
        for (int64_t s = 0; s < streams; ++s)
            parity = parity &&
                     engine.output(ids[static_cast<size_t>(s)]) ==
                         serial[static_cast<size_t>(s)];
        all_ok = all_ok && parity;

        const double total_tokens =
            static_cast<double>(streams * tokensPerStream);
        std::printf(
            "%7lld | %9.1f | %10.1f | %12.0f | %13.0f | %6.2fx | %s\n",
            static_cast<long long>(streams), serial_ms, batched_ms,
            total_tokens / (serial_ms / 1e3),
            total_tokens / (batched_ms / 1e3),
            serial_ms / batched_ms, parity ? "OK" : "MISMATCH");
    }

    if (!all_ok) {
        std::cerr << "\nFAIL: batched outputs diverged from the "
                     "serial single-stream path\n";
        return 1;
    }
    std::cout << "\nAll batch widths byte-identical to serial.\n";
    return 0;
}

} // namespace
} // namespace mant

int
main(int argc, char **argv)
{
    int64_t tokens = 32;
    if (argc > 1) {
        try {
            tokens = std::stoll(argv[1]);
        } catch (const std::exception &) {
            tokens = 0; // falls through to the usage error below
        }
    }
    if (tokens < 1) {
        std::cerr << "bench_serving: tokensPerStream must be a "
                     "positive integer\n";
        return 2;
    }
    return mant::runSweep(tokens);
}
