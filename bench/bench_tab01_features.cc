/**
 * Table I reproduction: the feature/efficiency matrix of adaptive
 * quantization methods — with the qualitative ratings backed by
 * *measured* software-model costs: encode ns/element, compute-path
 * ns/MAC (integer fused vs float LUT), and decode mechanism.
 */

#include <functional>
#include <numeric>

#include "bench_util.h"
#include "core/fused_gemm.h"
#include "quant/fixed_formats.h"
#include "quant/group_quantizer.h"
#include "quant/olive.h"
#include "sim/energy_model.h"
#include "tensor/distribution.h"

using namespace mant;
using namespace mant::bench;

namespace {

constexpr int64_t kRows = 64;
constexpr int64_t kCols = 1024;

double
timeEncode(const Tensor &w, const std::function<void()> &fn, int reps)
{
    (void)w;
    Stopwatch sw;
    for (int r = 0; r < reps; ++r)
        fn();
    return sw.elapsedNs() / (reps * static_cast<double>(kRows * kCols));
}

} // namespace

int
main()
{
    banner(std::cout, "Tbl. I — adaptive-method features with "
                      "measured encode/compute costs");

    DistProfile p;
    Rng rng(555);
    const Tensor w = genWeightMatrix(rng, kRows, kCols, p);
    QuantConfig g64;
    g64.gran = Granularity::PerGroup;
    g64.groupSize = 64;

    // --- Encode cost per element (ns).
    const double enc_int = timeEncode(
        w, [&] { quantDequantFixed(w, int4Format(), g64); }, 8);
    const double enc_ant = timeEncode(
        w, [&] { quantDequantAdaptive(w, antTypeSet(), g64); }, 4);
    const double enc_olive = timeEncode(
        w, [&] { quantDequantOlive(w, OliveConfig{}, g64); }, 8);
    const double enc_mant = timeEncode(
        w, [&] { MantQuantizedMatrix::quantize(w, 64); }, 2);
    const double enc_kmeans = timeEncode(
        w, [&] { quantDequantKMeans(w, 16, g64); }, 1);

    // --- Compute cost per MAC (ns): integer fused vs dequant-float.
    const MantQuantizedMatrix qw = MantQuantizedMatrix::quantize(w, 64);
    const Tensor x = [&] {
        Rng r2(556);
        return genActivationMatrix(r2, 16, kCols, ActProfile{});
    }();
    const auto qx = Int8QuantizedActivations::quantize(x, 64);
    double t_fused, t_dequant;
    {
        Stopwatch sw;
        for (int r = 0; r < 4; ++r)
            fusedGemm(qx, qw);
        t_fused = sw.elapsedNs() / (4.0 * 16 * kRows * kCols);
    }
    {
        Stopwatch sw;
        for (int r = 0; r < 4; ++r)
            dequantGemmReference(qx, qw);
        t_dequant = sw.elapsedNs() / (4.0 * 16 * kRows * kCols);
    }

    TablePrinter table({"method", "encode", "enc ns/elem",
                        "compute bits", "decode", "adaptivity"});
    table.addRow({"INT", "round", fmt(enc_int, 1), "int 4&8",
                  "calculation", "low"});
    table.addRow({"OliVe", "search", fmt(enc_olive, 1), "int 4&8",
                  "decoder", "med"});
    table.addRow({"ANT", "search", fmt(enc_ant, 1), "int 4&8",
                  "decoder", "med"});
    table.addRow({"Mokey/GOBO", "cluster", fmt(enc_kmeans, 1),
                  "float", "LUT", "high"});
    table.addRow({"MANT", "search+map", fmt(enc_mant, 1), "int 4&8",
                  "calculation (fused)", "high"});
    table.print(std::cout);

    std::cout << "\nCompute path, hardware energy model (pJ/MAC, "
                 "28 nm constants):\n";
    const EnergyParams e;
    std::cout << "  MANT fused (INT8x4 MAC + SAC):   "
              << fmt(macEnergyPj(e, 8, 4) + e.sacPj, 3) << "\n";
    std::cout << "  plain INT8x8 MAC:                "
              << fmt(macEnergyPj(e, 8, 8), 3) << "\n";
    std::cout << "  LUT path (FP16 MAC + table read): "
              << fmt(macEnergyPj(e, 16, 16) + 2.0 * e.sramPjPerByte, 3)
              << "\n";
    std::cout << "\n(Software sanity check, not a hardware estimate: "
                 "fused loop "
              << fmt(t_fused, 2) << " ns/MAC vs dequantize-then-float "
              << fmt(t_dequant, 2)
              << " ns/MAC on this CPU — the scalar shift loop does "
                 "not vectorize, which is precisely why the paper "
                 "builds a SAC lane in hardware.)\n";
    std::cout << "\nShape checks: INT encodes cheapest; ANT ~3x INT "
                 "(3-type search); MANT ~16x INT offline (16-type "
                 "search, done once); clustering is the most "
                 "expensive encode; the fused path computes without a "
                 "separate dequantization pass and at a fraction of "
                 "the FP16 LUT path's energy.\n";
    return 0;
}
