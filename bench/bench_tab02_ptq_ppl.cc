/**
 * Table II reproduction: PTQ perplexity across methods and models.
 * Rows: FP16; W4A4 for ANT/OliVe/Tender/MANT; W8A8 for ANT/OliVe/
 * Tender; MANT W4A8; MANT W4A8 + 8-bit attention + 4-bit MANT KV.
 * Baselines use tensor-wise activations / channel-wise weights
 * (Sec. VII-A); MANT uses G-64 groups everywhere.
 *
 * Shape targets (paper): W4A4 baselines degrade badly (catastrophic on
 * OPT), MANT W4A4 stays close to FP16; W8A8 baselines recover; MANT
 * W4A8 is the best 4-bit-weight row; adding KV quantization costs a
 * further ~0.1-0.2 PPL.
 */

#include <vector>

#include "bench_util.h"
#include "model/quant_setup.h"
#include "model/transformer.h"

using namespace mant;
using namespace mant::bench;

namespace {

struct RowSpec
{
    std::string label;
    QuantSetup setup;
    bool needsKvSelector = false;
};

std::vector<RowSpec>
tableRows()
{
    std::vector<RowSpec> rows;
    const Granularity chan = Granularity::PerChannel;

    rows.push_back({"FP16", fp16Setup(), false});

    rows.push_back({"ANT W4A4",
                    w4a4Setup(WeightMethod::Ant, ActMethod::Ant, chan, 0),
                    false});
    rows.push_back({"OliVe W4A4",
                    w4a4Setup(WeightMethod::Olive, ActMethod::Olive,
                              chan, 0),
                    false});
    rows.push_back({"Tender W4A4",
                    w4a4Setup(WeightMethod::Tender, ActMethod::Tender,
                              chan, 0),
                    false});
    {
        QuantSetup s = w4a4Setup(WeightMethod::Mant, ActMethod::Int,
                                 Granularity::PerGroup, 64);
        s.label = "MANT W4A4";
        rows.push_back({"MANT W4A4", s, false});
    }

    rows.push_back({"ANT* W8A8",
                    w8a8Setup(WeightMethod::Ant, ActMethod::Ant, chan, 0),
                    false});
    rows.push_back({"OliVe W8A8",
                    w8a8Setup(WeightMethod::Olive, ActMethod::Olive,
                              chan, 0),
                    false});
    rows.push_back({"Tender W8A8",
                    w8a8Setup(WeightMethod::Tender, ActMethod::Tender,
                              chan, 0),
                    false});

    rows.push_back({"MANT W4A8", mantW4A8Setup(64), false});
    rows.push_back({"MANT W4A8 KV4", mantFullSetup(64), true});
    return rows;
}

/** Paper Tbl. II values for reference printing, per model column. */
const char *
paperValue(const std::string &row, const std::string &model)
{
    struct Entry
    {
        const char *row;
        const char *model;
        const char *value;
    };
    static const Entry entries[] = {
        {"FP16", "llama-1-7b", "5.68"},
        {"FP16", "llama-2-7b", "5.47"},
        {"FP16", "opt-6.7b", "10.86"},
        {"ANT W4A4", "llama-1-7b", "61.35"},
        {"ANT W4A4", "opt-6.7b", "6.4E+3"},
        {"OliVe W4A4", "llama-1-7b", "32.15"},
        {"OliVe W4A4", "opt-6.7b", "39.18"},
        {"Tender W4A4", "llama-1-7b", "23.85"},
        {"Tender W4A4", "opt-6.7b", "13.56"},
        {"MANT W4A4", "llama-1-7b", "6.09"},
        {"MANT W4A4", "opt-6.7b", "11.29"},
        {"ANT* W8A8", "llama-1-7b", "9.50"},
        {"OliVe W8A8", "llama-1-7b", "5.86"},
        {"Tender W8A8", "llama-1-7b", "5.87"},
        {"MANT W4A8", "llama-1-7b", "5.79"},
        {"MANT W4A8", "opt-6.7b", "10.98"},
        {"MANT W4A8 KV4", "llama-1-7b", "5.97"},
        {"MANT W4A8 KV4", "opt-6.7b", "11.14"},
    };
    for (const Entry &e : entries) {
        if (row == e.row && model == e.model)
            return e.value;
    }
    return "-";
}

} // namespace

int
main()
{
    banner(std::cout, "Tbl. II — PTQ perplexity across methods and "
                      "models (proxy PPL, see EXPERIMENTS.md)");

    const std::vector<std::string> models = {
        "llama-1-7b", "llama-1-13b", "llama-1-30b", "llama-1-65b",
        "llama-2-7b", "llama-2-13b", "opt-6.7b",    "opt-13b"};
    const std::vector<RowSpec> rows = tableRows();

    std::vector<std::string> headers = {"method"};
    for (const auto &m : models)
        headers.push_back(m);
    TablePrinter table(headers);
    TablePrinter paper(headers);

    // Collect measured values row-major; evaluate model by model so
    // each model's evaluator and KV selector are built once.
    std::vector<std::vector<std::string>> cells(
        rows.size(), std::vector<std::string>(models.size()));

    for (size_t mi = 0; mi < models.size(); ++mi) {
        std::cout << "  [model " << models[mi] << "] ..." << std::flush;
        ModelInstance inst = makeInstance(models[mi]);

        // KV selector and Eq. 6 activation calibration, both from the
        // model's own calibration pass (Sec. V-A / V-C).
        const auto samples = Transformer::collectKvSamples(
            *inst.weights, inst.evaluator->corpus()[0]);
        const VarianceSelector kv_sel =
            VarianceSelector::calibrateMulti(samples, 64);
        const ModelCalibration calib = ModelCalibration::collect(
            *inst.weights, inst.evaluator->corpus()[0]);

        for (size_t ri = 0; ri < rows.size(); ++ri) {
            const bool is_mant =
                rows[ri].setup.weight == WeightMethod::Mant;
            const double ppl =
                rows[ri].label == "FP16"
                    ? inst.evaluator->referencePerplexity()
                    : inst.evaluator->perplexityOf(
                          rows[ri].setup,
                          rows[ri].needsKvSelector ? &kv_sel : nullptr,
                          is_mant ? &calib : nullptr);
            cells[ri][mi] = fmt(ppl);
        }
        std::cout << " done\n";
    }

    for (size_t ri = 0; ri < rows.size(); ++ri) {
        std::vector<std::string> r = {rows[ri].label};
        std::vector<std::string> p = {rows[ri].label};
        for (size_t mi = 0; mi < models.size(); ++mi) {
            r.push_back(cells[ri][mi]);
            p.push_back(paperValue(rows[ri].label, models[mi]));
        }
        table.addRow(r);
        paper.addRow(p);
    }

    std::cout << "\nMeasured (proxy PPL):\n";
    table.print(std::cout);
    std::cout << "\nPaper reference values (where reported):\n";
    paper.print(std::cout);
    std::cout << "\nShape checks: W4A4 baselines >> FP16 (OPT worst); "
                 "MANT W4A4 close to FP16; W8A8 baselines recover "
                 "except ANT*; MANT W4A8 best 4-bit row; KV4 adds a "
                 "small delta.\n";
    return 0;
}
