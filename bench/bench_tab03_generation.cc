/**
 * Table III reproduction: generation tasks with KV-cache quantization
 * during the decode stage. Paper (LLaMA-2-7B, W4A8 weights/acts):
 *   TruthfulQA (BLEU): FP16 27.88 | KV FP16 27.55 | INT4 25.48 |
 *   4-bit MANT 26.19.
 *   TriviaQA (F1): 87.72 | 86.38 | 85.13 | 86.86.
 * Substitution: greedy-decode similarity vs the FP16 generation,
 * rescaled to the paper's FP16 task score (DESIGN.md §2). Exercises
 * the real decode path: spatial K quant + two-phase temporal V.
 */

#include <cmath>

#include "bench_util.h"
#include "model/generation.h"
#include "model/transformer.h"

using namespace mant;
using namespace mant::bench;

namespace {

struct Task
{
    const char *name;
    double fp16Score;
    int64_t promptLen;
    int64_t genTokens;
    uint64_t seed;
};

std::vector<int32_t>
makePrompt(int64_t len, uint64_t seed, int64_t vocab)
{
    Rng rng(seed);
    std::vector<int32_t> p(static_cast<size_t>(len));
    for (auto &t : p)
        t = static_cast<int32_t>(
            rng.uniformInt(static_cast<uint64_t>(vocab)));
    return p;
}

} // namespace

int
main()
{
    banner(std::cout, "Tbl. III — generation tasks with KV cache "
                      "quantization (llama-2-7b-sim, W4A8)");

    const ModelProfile &profile = modelProfile("llama-2-7b");
    const ModelWeights weights = ModelWeights::generate(profile, 512);

    // Logit scale from the standard evaluator calibration.
    const PplEvaluator eval(weights, standardEvalConfig());
    const float scale = eval.logitScale();

    const auto samples = Transformer::collectKvSamples(
        weights, eval.corpus()[0]);
    const VarianceSelector kv_sel =
        VarianceSelector::calibrateMulti(samples, 64);
    const ModelCalibration calib =
        ModelCalibration::collect(weights, eval.corpus()[0]);

    // TruthfulQA ~ short prompts; TriviaQA/LongBench ~ long contexts.
    const Task tasks[] = {
        {"TruthfulQA (BLEU-proxy)", 27.88, 24, 64, 171},
        {"TriviaQA (F1-proxy)", 87.72, 120, 64, 172},
    };
    struct Config
    {
        const char *label;
        bool quantWeights;
        KvMethod kv;
        const char *paperT;
        const char *paperQ;
    };
    const Config configs[] = {
        {"FP16 / KV FP16", false, KvMethod::Fp16, "27.88", "87.72"},
        {"W4A8 / KV FP16", true, KvMethod::Fp16, "27.55", "86.38"},
        {"W4A8 / KV INT4", true, KvMethod::Int4, "25.48", "85.13"},
        {"W4A8 / KV MANT4", true, KvMethod::Mant4, "26.19", "86.86"},
    };

    constexpr int kPrompts = 4; // average out single-sequence noise
    for (const Task &task : tasks) {
        std::cout << "\nTask: " << task.name << "\n";

        // FP16 reference generations, one per prompt.
        Transformer ref(weights, fp16Setup());
        ref.setLogitScale(scale);
        std::vector<std::vector<int32_t>> prompts, ref_gens;
        std::vector<double> ref_liks;
        for (int i = 0; i < kPrompts; ++i) {
            prompts.push_back(makePrompt(
                task.promptLen, task.seed + static_cast<uint64_t>(i),
                profile.simDims.vocab));
            ref_gens.push_back(
                greedyGenerate(ref, prompts.back(), task.genTokens));
            ref_liks.push_back(forcedLikelihood(ref, prompts.back(),
                                                ref_gens.back()));
        }

        TablePrinter table({"config", "forced likelihood",
                            "forced agreement", "measured score",
                            "paper score"});
        for (const Config &cfg : configs) {
            QuantSetup setup =
                cfg.quantWeights ? mantW4A8Setup(64) : fp16Setup();
            setup.kv = cfg.kv;
            setup.kvGroup = 64;
            setup.quantizeAttention = cfg.kv != KvMethod::Fp16;

            Transformer model(weights, setup,
                              cfg.kv == KvMethod::Mant4 ? &kv_sel
                                                        : nullptr,
                              cfg.quantWeights ? &calib : nullptr);
            model.setLogitScale(scale);
            // Teacher-forced metrics resolve the fine KV-quality
            // differences that free-running greedy decoding hides;
            // averaged over prompts to wash out sequence noise.
            double forced = 0.0, log_lik = 0.0;
            for (int i = 0; i < kPrompts; ++i) {
                forced += forcedDecodingAgreement(model, prompts[i],
                                                  ref_gens[i]);
                log_lik += std::log(
                    forcedLikelihood(model, prompts[i], ref_gens[i]) /
                    ref_liks[static_cast<size_t>(i)]);
            }
            forced /= kPrompts;
            const double lik =
                std::min(1.0, std::exp(log_lik / kPrompts));
            const double quality = forced * lik;
            table.addRow({cfg.label, fmt(lik, 3), fmt(forced, 3),
                          fmt(scaledGenerationScore(quality,
                                                    task.fp16Score)),
                          task.name[0] == 'T' && task.fp16Score > 80
                              ? cfg.paperQ
                              : cfg.paperT});
            std::cout << "  [" << cfg.label << "] done\n";
        }
        std::cout << "\n";
        table.print(std::cout);
    }
    std::cout << "\nShape checks: KV FP16 ~ FP16; INT4 KV loses the "
                 "most; 4-bit MANT KV recovers most of the INT4 "
                 "loss.\n";
    return 0;
}
