/**
 * Table IV reproduction: area breakdown of the core components and
 * shared buffers for MANT and the baselines (28 nm constants from the
 * paper's synthesis; see DESIGN.md §2 substitution 4).
 */

#include "bench_util.h"
#include "sim/accelerators.h"
#include "sim/area_model.h"

using namespace mant;
using namespace mant::bench;

int
main()
{
    banner(std::cout, "Tbl. IV — area of core components (28 nm)");

    const char *archs[] = {"MANT", "OliVe", "ANT", "Tender",
                           "BitFusion"};
    TablePrinter table({"arch", "component", "unit area (um^2)",
                        "count", "total (mm^2)"});
    for (const char *name : archs) {
        const AreaReport r = areaReport(name);
        bool first = true;
        for (const AreaItem &item : r.core) {
            table.addRow({first ? name : "", item.component,
                          fmt(item.unitUm2), std::to_string(item.count),
                          fmt(item.totalMm2(), 3)});
            first = false;
        }
        table.addRow({"", "core total", "", "", fmt(r.coreMm2(), 3)});
    }
    table.print(std::cout);

    std::cout << "\nShared across all accelerators:\n";
    TablePrinter shared({"component", "area (mm^2)"});
    const AreaReport mant = areaReport("MANT");
    for (const AreaItem &item : mant.shared)
        shared.addRow({item.component, fmt(item.totalMm2(), 3)});
    shared.addRow({"shared total", fmt(mant.sharedMm2(), 3)});
    shared.print(std::cout);

    std::cout << "\nPaper core areas: MANT 0.302, OliVe 0.337, ANT "
                 "0.327, Tender 0.317 mm^2 — the RQUs add ~4.4% to "
                 "MANT's core, negligible at accelerator scale.\n";

    std::cout << "\nStatic-power inputs (energy model): ";
    for (const ArchConfig &a : allArchs())
        std::cout << a.name << "=" << fmt(a.staticWatts() * 1e3, 0)
                  << "mW  ";
    std::cout << "\n";
    return 0;
}
