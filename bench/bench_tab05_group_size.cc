/**
 * Table V reproduction: W4A4 perplexity vs group size (G-128/64/32)
 * for MANT, OliVe, ANT, INT — all group-wise — plus MXFP4 at G-32.
 * Paper (LLaMA-2-7B, FP16 = 5.47):
 *   MANT: 6.26 / 5.91 / 5.76;  OliVe: 6.43 / 6.31 / 6.72;
 *   ANT:  6.49 / 6.38 / 6.23;  INT:   6.54 / 6.14 / 5.95;
 *   MXFP4 (G-32): 7.16.
 * Shape targets: MANT best at every size; OliVe fails to gain from
 * smaller groups (victim cost); MXFP4 worst (E8M0 scale error).
 * Per the paper's group-wise comparison, activations are group-wise
 * INT4 for every method here.
 */

#include "bench_util.h"
#include "model/quant_setup.h"

using namespace mant;
using namespace mant::bench;

int
main()
{
    banner(std::cout,
           "Tbl. V — W4A4 proxy PPL vs group size (llama-2-7b-sim)");

    ModelInstance inst = makeInstance("llama-2-7b");
    const ModelCalibration calib = ModelCalibration::collect(
        *inst.weights, inst.evaluator->corpus()[0]);
    std::cout << "  FP16 reference PPL: "
              << fmt(inst.evaluator->referencePerplexity()) << "\n\n";

    struct Method
    {
        const char *label;
        WeightMethod wm;
    };
    const Method methods[] = {
        {"MANT", WeightMethod::Mant},
        {"OliVe", WeightMethod::Olive},
        {"ANT", WeightMethod::Ant},
        {"INT", WeightMethod::Int},
        {"MXFP4", WeightMethod::Mxfp4},
    };
    const int64_t groups[] = {128, 64, 32};

    TablePrinter table({"method", "G-128", "G-64", "G-32", "paper"});
    const char *paper_rows[] = {
        "6.26 / 5.91 / 5.76", "6.43 / 6.31 / 6.72",
        "6.49 / 6.38 / 6.23", "6.54 / 6.14 / 5.95", "- / - / 7.16"};

    for (size_t m = 0; m < std::size(methods); ++m) {
        std::vector<std::string> row = {methods[m].label};
        for (int64_t g : groups) {
            if (methods[m].wm == WeightMethod::Mxfp4 && g != 32) {
                row.push_back("-");
                continue;
            }
            QuantSetup s = w4a4Setup(methods[m].wm, ActMethod::Int,
                                     Granularity::PerGroup, g);
            // MXFP spec: 32-element blocks with E8M0 scale.
            const double ppl = inst.evaluator->perplexityOf(
                s, nullptr,
                methods[m].wm == WeightMethod::Mant ? &calib
                                                    : nullptr);
            row.push_back(fmt(ppl));
            std::cout << "  [" << methods[m].label << " G-" << g
                      << "] done\n";
        }
        row.push_back(paper_rows[m]);
        table.addRow(row);
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\nShape checks: MANT lowest in each column; OliVe "
                 "does not improve toward G-32; MXFP4 worst overall.\n";
    return 0;
}
