/**
 * @file
 * Shared helpers for the bench binaries: the standard evaluation
 * configuration, per-model evaluator construction, and the Tbl. II row
 * catalogue. Every bench prints the paper's reference values next to
 * the measured ones so the shape comparison is one glance.
 */

#ifndef MANT_BENCH_BENCH_UTIL_H_
#define MANT_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "model/evaluator.h"
#include "model/model_profiles.h"
#include "model/transformer.h"
#include "sim/report.h"

namespace mant::bench {

/** Standard accuracy-run configuration (kept small; see DESIGN.md §2). */
inline EvalConfig
standardEvalConfig()
{
    EvalConfig cfg;
    cfg.contexts = 3;
    cfg.seqLen = 96;
    cfg.skip = 8;
    cfg.seed = 4242;
    return cfg;
}

/** One model's generated weights + calibrated evaluator. */
struct ModelInstance
{
    ModelProfile profile;
    std::unique_ptr<ModelWeights> weights;
    std::unique_ptr<PplEvaluator> evaluator;
};

inline ModelInstance
makeInstance(const std::string &name,
             EvalConfig cfg = standardEvalConfig())
{
    ModelInstance inst;
    inst.profile = modelProfile(name);
    inst.weights = std::make_unique<ModelWeights>(
        ModelWeights::generate(inst.profile, 512));
    inst.evaluator =
        std::make_unique<PplEvaluator>(*inst.weights, cfg);
    return inst;
}

/**
 * Shared serving-bench fixtures: the model profile, per-stream
 * prompts, and the hand-rolled single-stream greedy oracle used by
 * both `bench_serving` and `bench_kernels`' BM_Decode* gate entries.
 * One definition, so the two parity gates can never desynchronize.
 */
inline ModelProfile
servingBenchProfile()
{
    ModelProfile p;
    p.name = "bench-serving";
    p.family = ModelFamily::Llama;
    p.simDims.nLayers = 2;
    p.simDims.dModel = 512;
    p.simDims.nHeads = 4;
    p.simDims.dFfn = 1024;
    p.simDims.vocab = 256;
    p.archDims = p.simDims;
    p.fp16Ppl = 8.0;
    p.seed = 21;
    p.actStats.outlierChannelRate = 0.02;
    return p;
}

/** Deterministic per-stream prompt, `len` ids in [0, vocab). */
inline std::vector<int32_t>
servingBenchPrompt(int64_t stream, int len, int64_t vocab)
{
    Rng rng(4000 + static_cast<uint64_t>(stream));
    std::vector<int32_t> p(static_cast<size_t>(len));
    for (auto &t : p)
        t = static_cast<int32_t>(
            rng.uniformInt(static_cast<uint64_t>(vocab)));
    return p;
}

/**
 * The pre-engine single-stream loop (prefill + decodeStep feedback on
 * the model's default stream): the independent serial oracle the
 * batched ServingEngine's token checksums are gated against.
 * Deliberately NOT greedyGenerate — that now runs on the engine
 * itself, and an engine-vs-engine comparison would gate nothing.
 * Requires numTokens >= 1 and a non-empty prompt.
 */
inline std::vector<int32_t>
serialGreedyOracle(Transformer &model, std::span<const int32_t> prompt,
                   int64_t numTokens)
{
    std::vector<int32_t> out;
    const Tensor logits = model.prefill(prompt);
    const auto last = logits.row(logits.shape().dim(0) - 1);
    int32_t next = static_cast<int32_t>(
        std::max_element(last.begin(), last.end()) - last.begin());
    out.push_back(next);
    while (static_cast<int64_t>(out.size()) < numTokens) {
        const std::vector<float> row = model.decodeStep(next);
        next = static_cast<int32_t>(
            std::max_element(row.begin(), row.end()) - row.begin());
        out.push_back(next);
    }
    return out;
}

/** Wall-clock helper for the Tbl. I efficiency measurements. */
class Stopwatch
{
  public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    double
    elapsedNs() const
    {
        return std::chrono::duration<double, std::nano>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace mant::bench

#endif // MANT_BENCH_BENCH_UTIL_H_
