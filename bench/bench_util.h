/**
 * @file
 * Shared helpers for the bench binaries: the standard evaluation
 * configuration, per-model evaluator construction, and the Tbl. II row
 * catalogue. Every bench prints the paper's reference values next to
 * the measured ones so the shape comparison is one glance.
 */

#ifndef MANT_BENCH_BENCH_UTIL_H_
#define MANT_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <iostream>
#include <memory>
#include <string>

#include "model/evaluator.h"
#include "model/model_profiles.h"
#include "sim/report.h"

namespace mant::bench {

/** Standard accuracy-run configuration (kept small; see DESIGN.md §2). */
inline EvalConfig
standardEvalConfig()
{
    EvalConfig cfg;
    cfg.contexts = 3;
    cfg.seqLen = 96;
    cfg.skip = 8;
    cfg.seed = 4242;
    return cfg;
}

/** One model's generated weights + calibrated evaluator. */
struct ModelInstance
{
    ModelProfile profile;
    std::unique_ptr<ModelWeights> weights;
    std::unique_ptr<PplEvaluator> evaluator;
};

inline ModelInstance
makeInstance(const std::string &name,
             EvalConfig cfg = standardEvalConfig())
{
    ModelInstance inst;
    inst.profile = modelProfile(name);
    inst.weights = std::make_unique<ModelWeights>(
        ModelWeights::generate(inst.profile, 512));
    inst.evaluator =
        std::make_unique<PplEvaluator>(*inst.weights, cfg);
    return inst;
}

/** Wall-clock helper for the Tbl. I efficiency measurements. */
class Stopwatch
{
  public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    double
    elapsedNs() const
    {
        return std::chrono::duration<double, std::nano>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace mant::bench

#endif // MANT_BENCH_BENCH_UTIL_H_
