/**
 * Driving the accelerator simulator directly.
 *
 * Sweeps a GEMM across precision modes on the MANT systolic array and
 * compares the five accelerator configs on a single transformer layer,
 * printing cycles, bottleneck, and the energy breakdown — a miniature
 * of the Fig. 12/13 pipelines for interactive exploration.
 *
 * Build & run:  ./build/examples/accelerator_sim
 */

#include <cstdio>

#include "sim/accelerators.h"
#include "sim/layer_walker.h"
#include "sim/policy.h"

using namespace mant;

namespace {

void
printStats(const char *label, const ArchConfig &arch,
           const GemmStats &s)
{
    const double e = s.energy.totalPj();
    std::printf("  %-22s %10.0f cycles  %s  %6.2f uJ "
                "(core %2.0f%% buf %2.0f%% dram %2.0f%% static %2.0f%%)\n",
                label, s.cycles,
                s.memoryBound ? "mem-bound " : "compute   ", e / 1e6,
                100.0 * s.energy.corePj / e,
                100.0 * s.energy.bufferPj / e,
                100.0 * s.energy.dramPj / e,
                100.0 * s.energy.staticPj / e);
    (void)arch;
}

} // namespace

int
main()
{
    const ArchConfig mant = mantArch();

    // --- 1. One GEMM, three precision modes (Sec. VI-B's 32x32 /
    // 64x32 / 128x32 array configurations).
    std::printf("GEMM 512 x 4096 x 4096 on the MANT array:\n");
    for (const int wb : {8, 4, 2}) {
        GemmShape g;
        g.m = 512;
        g.k = 4096;
        g.n = 4096;
        g.actBits = 8;
        g.weightBits = wb;
        g.groupSize = 64;
        g.mantWeights = wb == 4;
        char label[48];
        std::snprintf(label, sizeof(label), "INT8 x INT%d (%lldx32)",
                      wb, static_cast<long long>(mant.arrayRows(8, wb)));
        printStats(label, mant, simulateGemm(mant, g));
    }

    // --- 2. Decode GEMV: the memory-bound regime.
    std::printf("\nDecode GEMV 1 x 4096 x 4096 (weights stream from "
                "DRAM):\n");
    for (const int wb : {16, 8, 4}) {
        GemmShape g;
        g.m = 1;
        g.k = 4096;
        g.n = 4096;
        g.actBits = wb == 16 ? 16 : 8;
        g.weightBits = wb;
        g.groupSize = wb == 4 ? 64 : 0;
        g.mantWeights = wb == 4;
        char label[48];
        std::snprintf(label, sizeof(label), "W%d", wb);
        printStats(label, mant, simulateGemm(mant, g));
    }

    // --- 3. All five accelerators on one llama-7b layer (prefill).
    std::printf("\nOne llama-1-7b layer, prefill seq 2048, "
                "PPL-aligned precision:\n");
    const ModelProfile &profile = modelProfile("llama-1-7b");
    PolicyConfig pcfg;
    pcfg.sampleRows = 48;
    pcfg.sampleCols = 256;
    const double budget = mantErrorBudget(profile, pcfg);

    for (const ArchConfig &arch : allArchs()) {
        WalkSpec spec;
        spec.dims = profile.archDims;
        spec.dims.nLayers = 1; // just one layer for the demo
        spec.stage = Stage::Prefill;
        spec.seqLen = 2048;
        spec.ffnMats = 3;
        spec.quantizeOutputs = true;

        if (arch.name == "MANT") {
            spec.defaultWeightBits = 4;
            spec.actBits = 8;
            spec.groupSize = 64;
            spec.mantWeights = true;
        } else if (arch.name == "ANT") {
            spec.defaultWeightBits = 8;
            spec.actBits = 8;
            spec.groupSize = 0;
        } else {
            const WeightMethod method =
                arch.name == "OliVe"    ? WeightMethod::Olive
                : arch.name == "Tender" ? WeightMethod::Tender
                                        : WeightMethod::Int;
            ModelProfile one = profile;
            one.archDims.nLayers = 1;
            const std::vector<int> widths =
                arch.name == "BitFusion" ? std::vector<int>{8, 16}
                                         : std::vector<int>{4, 8};
            spec.layerWeightBits =
                alignPrecision(one, method, widths, budget, pcfg)
                    .layerBits;
            spec.actFollowsWeights = true;
            spec.groupSize = 0;
        }
        printStats(arch.name.c_str(), arch,
                   runWork(arch, linearWork(spec)));
    }
    return 0;
}
