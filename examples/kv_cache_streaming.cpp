/**
 * Real-time KV-cache quantization, step by step.
 *
 * Walks the decode loop manually to show the two mechanisms of
 * Sec. V-C: spatial quantization of K vectors (complete on arrival)
 * and the two-phase temporal window for V (INT8 residency, then
 * 4-bit MANT when the window fills) — printing the cache state as it
 * evolves, like Fig. 8.
 *
 * Build & run:  ./build/examples/kv_cache_streaming
 */

#include <cstdio>

#include "core/kv_quant.h"
#include "tensor/distribution.h"
#include "tensor/stats.h"

using namespace mant;

int
main()
{
    constexpr int64_t kHeadDim = 64;
    constexpr int64_t kWindow = 16; // small so phase changes are visible
    Rng rng(2025);

    // Calibrate the variance -> coefficient table on K/V-like data.
    DistProfile calib_stats;
    const Tensor calib = genWeightMatrix(rng, 64, 256, calib_stats);
    const VarianceSelector selector =
        VarianceSelector::calibrate(calib, kWindow);
    std::printf("variance->a table (%zu entries):\n",
                selector.table().size());
    for (const auto &e : selector.table()) {
        std::printf("  var >= %-8.4f -> %s\n", e.varLo,
                    e.sel.isInt ? "int4"
                                : ("a=" + std::to_string(e.sel.a))
                                      .c_str());
    }

    // --- K cache: one vector per decode step, quantized on arrival.
    std::printf("\nK cache (spatial): each arriving vector quantized "
                "immediately\n");
    std::vector<float> khat(kHeadDim);
    for (int step = 0; step < 3; ++step) {
        std::vector<float> k(kHeadDim);
        for (auto &v : k)
            v = static_cast<float>(rng.gaussian(0.0, 0.5 + step));
        const auto sels =
            spatialQuantizeRow(k, kWindow, selector, khat);
        std::printf("  step %d: %zu groups ->", step, sels.size());
        for (const auto &s : sels) {
            if (s.isInt)
                std::printf(" int4");
            else
                std::printf(" a=%d", s.a);
        }
        StreamingStats err;
        for (size_t i = 0; i < k.size(); ++i)
            err.add(k[i] - khat[i]);
        std::printf("   (rms err %.4f)\n", std::sqrt(err.variance()));
    }

    // --- V cache: two-phase temporal window.
    std::printf("\nV cache (temporal, window G=%lld):\n",
                static_cast<long long>(kWindow));
    TemporalVQuantizer vq(kHeadDim, kWindow, selector);

    // Prefill 24 rows: one full window finalizes, 8 rows stay pending.
    Tensor prefill(Shape{24, kHeadDim});
    for (int64_t i = 0; i < prefill.numel(); ++i)
        prefill[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
    vq.pushPrefill(prefill);
    std::printf("  after prefill(24 rows): finalized=%lld (4-bit MANT) "
                "pending=%lld (INT8)\n",
                static_cast<long long>(vq.finalizedRows()),
                static_cast<long long>(vq.pendingRows()));

    // Decode steps: watch the window fill and flush.
    for (int step = 1; step <= 10; ++step) {
        std::vector<float> v(kHeadDim);
        for (auto &x : v)
            x = static_cast<float>(rng.gaussian(0.0, 1.0));
        vq.pushDecode(v);
        if (step % 4 == 0 || vq.pendingRows() == 0) {
            std::printf("  decode step %2d: finalized=%lld pending=%lld"
                        "  (8-bit share %.0f%%)\n",
                        step,
                        static_cast<long long>(vq.finalizedRows()),
                        static_cast<long long>(vq.pendingRows()),
                        100.0 * vq.pendingFraction());
        }
    }

    std::printf("\n%zu channel-group finalizations so far; last few "
                "selections:",
                vq.selectionHistory().size());
    const auto &hist = vq.selectionHistory();
    for (size_t i = hist.size() - 4; i < hist.size(); ++i) {
        if (hist[i].isInt)
            std::printf(" int4");
        else
            std::printf(" a=%d", hist[i].a);
    }

    const Tensor recon = vq.reconstruct();
    std::printf("\nreconstructed cache: %lld rows x %lld channels\n",
                static_cast<long long>(recon.shape().dim(0)),
                static_cast<long long>(recon.shape().dim(1)));
    return 0;
}
