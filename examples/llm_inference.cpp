/**
 * End-to-end quantized LLM inference.
 *
 * Generates a synthetic LLaMA-2-7B-like model, evaluates the
 * perplexity proxy for FP16 vs MANT W4A8 (+ 4-bit MANT KV cache),
 * greedy-generates text under both, and estimates the speedup the
 * MANT accelerator would deliver on the real model dimensions.
 *
 * Build & run:  ./build/examples/llm_inference
 */

#include <cstdio>

#include "model/evaluator.h"
#include "model/generation.h"
#include "model/model_profiles.h"
#include "sim/accelerators.h"
#include "sim/layer_walker.h"

using namespace mant;

int
main()
{
    const ModelProfile &profile = modelProfile("llama-2-7b");
    std::printf("model: %s  (sim dims: %lld layers, d=%lld; arch dims: "
                "%lld layers, d=%lld)\n",
                profile.name.c_str(),
                static_cast<long long>(profile.simDims.nLayers),
                static_cast<long long>(profile.simDims.dModel),
                static_cast<long long>(profile.archDims.nLayers),
                static_cast<long long>(profile.archDims.dModel));

    const ModelWeights weights = ModelWeights::generate(profile, 512);

    // --- Accuracy: proxy perplexity, FP16 vs quantized.
    EvalConfig ecfg;
    ecfg.contexts = 2;
    ecfg.seqLen = 64;
    const PplEvaluator eval(weights, ecfg);
    std::printf("\nFP16 proxy perplexity: %.2f (calibrated to the "
                "paper's %.2f)\n",
                eval.referencePerplexity(), profile.fp16Ppl);

    // Calibrate the KV variance selector from the model's own caches.
    const auto samples = Transformer::collectKvSamples(
        weights, eval.corpus()[0]);
    const VarianceSelector kv_sel =
        VarianceSelector::calibrateMulti(samples, 64);
    const ModelCalibration calib =
        ModelCalibration::collect(weights, eval.corpus()[0]);

    const double ppl_w =
        eval.perplexityOf(mantW4A8Setup(64), nullptr, &calib);
    const double ppl_full =
        eval.perplexityOf(mantFullSetup(64), &kv_sel, &calib);
    std::printf("MANT W4A8 (linear only):    %.2f\n", ppl_w);
    std::printf("MANT W4A8 + 4-bit MANT KV:  %.2f\n", ppl_full);

    // --- Generation under quantization.
    std::vector<int32_t> prompt;
    for (int i = 0; i < 24; ++i)
        prompt.push_back((i * 37 + 11) % 1024);

    Transformer ref(weights, fp16Setup());
    ref.setLogitScale(eval.logitScale());
    Transformer quant(weights, mantFullSetup(64), &kv_sel, &calib);
    quant.setLogitScale(eval.logitScale());

    const auto g_ref = greedyGenerate(ref, prompt, 24);
    const auto g_quant = greedyGenerate(quant, prompt, 24);
    std::printf("\ngreedy generation agreement (24 tokens): %.1f%%\n",
                100.0 * generationSimilarity(g_ref, g_quant));

    // --- Performance on the *real* dimensions via the simulator.
    WalkSpec spec;
    spec.dims = profile.archDims;
    spec.stage = Stage::Decode;
    spec.seqLen = 8192;
    spec.ffnMats = 3;
    spec.defaultWeightBits = 4;
    spec.actBits = 8;
    spec.groupSize = 64;
    spec.mantWeights = true;
    spec.attnActBits = 8;
    spec.kvBits = 4;
    spec.attnGroupSize = 64;
    spec.mantKv = true;
    spec.quantizeOutputs = true;

    const ArchConfig arch = mantArch();
    GemmStats total = runWork(arch, linearWork(spec));
    total.add(runWork(arch, attentionWork(spec)));

    WalkSpec fp16_spec = spec;
    fp16_spec.defaultWeightBits = 16;
    fp16_spec.actBits = 16;
    fp16_spec.groupSize = 0;
    fp16_spec.mantWeights = false;
    fp16_spec.attnActBits = 16;
    fp16_spec.kvBits = 16;
    fp16_spec.attnGroupSize = 0;
    fp16_spec.mantKv = false;
    fp16_spec.quantizeOutputs = false;
    GemmStats fp16_total = runWork(arch, linearWork(fp16_spec));
    fp16_total.add(runWork(arch, attentionWork(fp16_spec)));

    std::printf("\ndecode step @ 8K context on the MANT accelerator "
                "(full llama-2-7b dims):\n");
    std::printf("  FP16 pipeline: %.2f ms/token, MANT W4A8+KV4: %.2f "
                "ms/token  ->  %.2fx\n",
                fp16_total.timeUs(arch) / 1e3,
                total.timeUs(arch) / 1e3,
                fp16_total.cycles / total.cycles);
    std::printf("  memory-bound: %s, DRAM bytes/token: %.1f MB vs "
                "%.1f MB\n",
                total.memoryBound ? "yes" : "no",
                total.dramBytes / 1e6, fp16_total.dramBytes / 1e6);
    return 0;
}
