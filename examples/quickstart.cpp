/**
 * Quickstart: the MANT public API in ~80 lines.
 *
 *  1. Build a MANT grid and look at how the coefficient shapes it.
 *  2. Group-quantize a weight matrix with the full adaptive search.
 *  3. Run the fused integer GEMM (Eq. 5) and verify it matches the
 *     dequantize-then-float reference.
 *
 * Build & run:  cmake --build build && ./build/examples/quickstart
 */

#include <cstdio>

#include "core/fused_gemm.h"
#include "core/mant_grid.h"
#include "tensor/distribution.h"
#include "tensor/stats.h"

using namespace mant;

int
main()
{
    // --- 1. The MANT numeric type: Value = ±(a*|i| + 2^|i|).
    std::printf("MANT grids (positive side):\n");
    for (int a : {0, 17, 60}) {
        std::printf("  a=%3d:", a);
        for (int i = 0; i < kMantMagnitudes; ++i)
            std::printf(" %4d", mantGridValue(a, i));
        std::printf("%s\n", a == 0 ? "   <- power-of-two" : "");
    }

    // --- 2. Quantize a realistic weight matrix, one coefficient per
    // 64-element group, chosen by the MSE search of Sec. V-A.
    Rng rng(1234);
    DistProfile stats; // LLM-like: per-channel spread + outliers
    const Tensor w = genWeightMatrix(rng, /*rows=*/128, /*cols=*/512,
                                     stats);
    const MantQuantizedMatrix qw = MantQuantizedMatrix::quantize(w, 64);

    const Tensor w_hat = qw.dequantize();
    std::printf("\nquantized %lld weights at %.3f bits/element, "
                "NMSE %.2e\n",
                static_cast<long long>(w.numel()), qw.bitsPerElement(),
                nmse(w.span(), w_hat.span()));

    std::printf("selection histogram (groups per data type):\n ");
    for (const auto &[bucket, count] : qw.selectionHistogram()) {
        if (bucket < 0)
            std::printf(" int4:%lld", static_cast<long long>(count));
        else
            std::printf(" a=%d:%lld", bucket,
                        static_cast<long long>(count));
    }
    std::printf("\n");

    // --- 3. Fused integer GEMM: activations in group-wise INT8,
    // weights decoded inside the MAC+SAC datapath (no dequant pass).
    const Tensor x = genActivationMatrix(rng, /*tokens=*/8, 512,
                                         ActProfile{});
    const auto qx = Int8QuantizedActivations::quantize(x, 64);

    const Tensor fused = fusedGemm(qx, qw);            // all-integer
    const Tensor ref = dequantGemmReference(qx, qw);    // float path
    std::printf("\nfused integer GEMM vs float reference: max |diff| "
                "= %.2e (FP rounding only)\n",
                maxAbsDiff(fused.span(), ref.span()));

    // The two psum lanes of Eq. 5, explicitly:
    std::vector<int32_t> xrow(64);
    std::vector<MantCode> codes(64);
    for (int i = 0; i < 64; ++i) {
        xrow[static_cast<size_t>(i)] = qx.rowCodes(0)[i];
        codes[static_cast<size_t>(i)] =
            static_cast<MantCode>(qw.rowCodes(0)[i]);
    }
    const MantPsums p = fusedDot(xrow, codes);
    const MantGroupMeta &meta = qw.meta(0, 0);
    std::printf("group 0: psum1(MAC)=%lld psum2(SAC)=%lld a=%d -> "
                "value %.4f\n",
                static_cast<long long>(p.psum1),
                static_cast<long long>(p.psum2), meta.a,
                combinePsums(p, meta.a, qx.scale(0, 0), meta.scale));
    return 0;
}
