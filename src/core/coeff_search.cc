#include "core/coeff_search.h"

#include <algorithm>
#include <cmath>

#include "quant/fixed_formats.h"
#include "tensor/fp16.h"

namespace mant {

double
groupError(std::span<const float> group, const NumericFormat &fmt,
           std::span<const double> weights, bool fp16Scale, float *scaleOut)
{
    float absmax = 0.0f;
    for (float x : group)
        absmax = std::max(absmax, std::fabs(x));
    float scale = fmt.scaleFor(absmax);
    if (fp16Scale)
        scale = fp16Round(scale);
    if (scale == 0.0f)
        scale = 1.0f;
    if (scaleOut)
        *scaleOut = scale;

    double err = 0.0;
    for (size_t i = 0; i < group.size(); ++i) {
        const double d =
            static_cast<double>(group[i]) - fmt.quantizeValue(group[i], scale);
        const double w = weights.empty() ? 1.0 : weights[i];
        err += w * d * d;
    }
    return err;
}

MantSelection
searchCoefficient(std::span<const float> group, std::span<const int> candidates,
                  std::span<const double> weights, bool fp16Scale)
{
    if (candidates.empty())
        candidates = mantCoefficientSet();

    MantSelection best;
    best.err = INFINITY;

    for (int a : candidates) {
        float scale = 0.0f;
        const double err =
            groupError(group, mantFormat(a), weights, fp16Scale, &scale);
        if (err < best.err) {
            best = MantSelection{false, a, err, scale};
        }
    }
    {
        float scale = 0.0f;
        const double err =
            groupError(group, int4Format(), weights, fp16Scale, &scale);
        if (err < best.err)
            best = MantSelection{true, 0, err, scale};
    }
    return best;
}

float
applySelection(std::span<const float> group, const MantSelection &sel,
               std::span<float> out, bool fp16Scale)
{
    const NumericFormat &fmt =
        sel.isInt ? static_cast<const NumericFormat &>(int4Format())
                  : mantFormat(sel.a);
    float absmax = 0.0f;
    for (float x : group)
        absmax = std::max(absmax, std::fabs(x));
    float scale = fmt.scaleFor(absmax);
    if (fp16Scale)
        scale = fp16Round(scale);
    if (scale == 0.0f)
        scale = 1.0f;
    for (size_t i = 0; i < group.size(); ++i)
        out[i] = fmt.quantizeValue(group[i], scale);
    return scale;
}

} // namespace mant
