#include "core/coeff_search.h"

#include <algorithm>
#include <cmath>

#include "core/simd.h"
#include "quant/fixed_formats.h"

namespace mant {

namespace {

double
groupErrorWithAbsMax(const SimdOps &ops, std::span<const float> group,
                     const NumericFormat &fmt, float absmax,
                     std::span<const double> weights, bool fp16Scale,
                     float *scaleOut)
{
    const float scale = fmt.storedScaleFor(absmax, fp16Scale);
    if (scaleOut)
        *scaleOut = scale;
    const auto levels = fmt.levels();
    return ops.unitError(group.data(), std::ssize(group),
                         levels.data(),
                         static_cast<int>(levels.size()), scale,
                         weights.empty() ? nullptr : weights.data());
}

} // namespace

double
groupError(const SimdOps &ops, std::span<const float> group,
           const NumericFormat &fmt, std::span<const double> weights,
           bool fp16Scale, float *scaleOut)
{
    return groupErrorWithAbsMax(
        ops, group, fmt, ops.absMax(group.data(), std::ssize(group)),
        weights, fp16Scale, scaleOut);
}

double
groupError(std::span<const float> group, const NumericFormat &fmt,
           std::span<const double> weights, bool fp16Scale, float *scaleOut)
{
    return groupError(simdOps(), group, fmt, weights, fp16Scale,
                      scaleOut);
}

MantSelection
searchCoefficient(const SimdOps &ops, std::span<const float> group,
                  std::span<const int> candidates,
                  std::span<const double> weights, bool fp16Scale)
{
    if (candidates.empty())
        candidates = mantCoefficientSet();

    const float absmax = ops.absMax(group.data(), std::ssize(group));

    MantSelection best;
    best.err = INFINITY;

    for (int a : candidates) {
        float scale = 0.0f;
        const double err =
            groupErrorWithAbsMax(ops, group, mantFormat(a), absmax,
                                 weights, fp16Scale, &scale);
        if (err < best.err) {
            best = MantSelection{false, a, err, scale};
        }
    }
    {
        float scale = 0.0f;
        const double err =
            groupErrorWithAbsMax(ops, group, int4Format(), absmax,
                                 weights, fp16Scale, &scale);
        if (err < best.err)
            best = MantSelection{true, 0, err, scale};
    }
    return best;
}

MantSelection
searchCoefficient(std::span<const float> group, std::span<const int> candidates,
                  std::span<const double> weights, bool fp16Scale)
{
    return searchCoefficient(simdOps(), group, candidates, weights,
                             fp16Scale);
}

float
applySelection(const SimdOps &ops, std::span<const float> group,
               const MantSelection &sel, std::span<float> out,
               bool fp16Scale)
{
    const NumericFormat &fmt =
        sel.isInt ? static_cast<const NumericFormat &>(int4Format())
                  : mantFormat(sel.a);
    const float scale = fmt.storedScaleFor(
        ops.absMax(group.data(), std::ssize(group)), fp16Scale);
    const auto levels = fmt.levels();
    ops.quantizeUnit(group.data(), out.data(), std::ssize(group),
                     levels.data(), static_cast<int>(levels.size()),
                     scale);
    return scale;
}

float
applySelection(std::span<const float> group, const MantSelection &sel,
               std::span<float> out, bool fp16Scale)
{
    return applySelection(simdOps(), group, sel, out, fp16Scale);
}

} // namespace mant
