/**
 * @file
 * Coefficient search for MANT weight quantization (Sec. V-A).
 *
 * For each group the framework picks one of the 16 selectable types
 * (15 MANT coefficients + plain INT4) by minimizing either the plain
 * quantization MSE of the group, or — per Eq. 6 — an output-weighted
 * MSE, argmin_a ||X Ŵ_a − X W||², approximated per element position by
 * weighting squared weight error with the calibration activations'
 * second moment E[x_k²].
 */

#ifndef MANT_CORE_COEFF_SEARCH_H_
#define MANT_CORE_COEFF_SEARCH_H_

#include <span>

#include "core/mant_grid.h"
#include "core/simd.h"

namespace mant {

/** The selected data type for one group: a MANT coefficient or INT4. */
struct MantSelection
{
    bool isInt = false; ///< true when the plain-INT4 option won
    int a = 0;          ///< the coefficient (valid when !isInt)
    double err = 0.0;   ///< the search objective value achieved
    float scale = 0.0f; ///< the (FP16-rounded) scale used

    /** Label for histograms: "int" or the coefficient value. */
    int
    histogramBucket() const
    {
        return isInt ? -1 : a;
    }
};

/**
 * Quantize-dequantize a group with one candidate and return the
 * weighted squared error. `weights` may be empty (plain MSE).
 *
 * The SimdOps overloads let hot loops resolve the kernel backend once
 * per engine call instead of once per group (simdOps() re-reads the
 * MANT_SIMD environment); the short forms forward to simdOps().
 */
double groupError(const SimdOps &ops, std::span<const float> group,
                  const NumericFormat &fmt,
                  std::span<const double> weights, bool fp16Scale,
                  float *scaleOut);
double groupError(std::span<const float> group, const NumericFormat &fmt,
                  std::span<const double> weights, bool fp16Scale,
                  float *scaleOut);

/**
 * Exhaustive MSE search over the candidate coefficients plus INT4.
 *
 * @param group      The values of one quantization group.
 * @param candidates MANT coefficients to try (empty -> full paper set).
 * @param weights    Optional per-position weights (E[x²] calibration);
 *                   empty means plain MSE.
 * @param fp16Scale  Round scales through FP16 storage.
 */
MantSelection searchCoefficient(const SimdOps &ops,
                                std::span<const float> group,
                                std::span<const int> candidates = {},
                                std::span<const double> weights = {},
                                bool fp16Scale = true);
MantSelection searchCoefficient(std::span<const float> group,
                                std::span<const int> candidates = {},
                                std::span<const double> weights = {},
                                bool fp16Scale = true);

/**
 * Quantize-dequantize one group with an already-chosen selection;
 * returns the scale used (FP16-rounded if requested).
 */
float applySelection(const SimdOps &ops, std::span<const float> group,
                     const MantSelection &sel, std::span<float> out,
                     bool fp16Scale = true);
float applySelection(std::span<const float> group, const MantSelection &sel,
                     std::span<float> out, bool fp16Scale = true);

} // namespace mant

#endif // MANT_CORE_COEFF_SEARCH_H_
