#include "core/fused_attention.h"

#include <algorithm>
#include <stdexcept>

#include "core/mant_grid.h"
#include "tensor/fp16.h"

namespace mant {

namespace {

/**
 * Per-group combine, the exact fusedGemm expression: INT groups use
 * the MAC lane alone (the sign-magnitude nibble of an INT code v has
 * magnitude |v|, so the MAC lane is sum x*v already); MANT groups
 * combine both lanes with the coefficient. Shared verbatim by the
 * fused and reference paths, so equality reduces to equality of the
 * integer partial sums — which are exact in any order.
 */
inline double
combineGroup(int64_t mac, int64_t sac, bool isInt, int a, float sx,
             float sw)
{
    const double p =
        isInt ? static_cast<double>(mac)
              : static_cast<double>(a) * static_cast<double>(mac) +
                    static_cast<double>(sac);
    return p * static_cast<double>(sx) * static_cast<double>(sw);
}

/** The shared INT8 activation idiom: fp16Round(absMax/127), all-zero
 *  segment gets scale 1, round-half-away clamp to ±127. */
float
quantizeSegment(const SimdOps &ops, const float *x, int64_t n,
                int8_t *codes)
{
    float scale = fp16Round(ops.absMax(x, n) / 127.0f);
    if (scale == 0.0f)
        scale = 1.0f;
    ops.quantizeRoundClamp(x, codes, n, scale, 127);
    return scale;
}

/** Scalar MAC/SAC lanes of one flat-code segment (reference twin of
 *  fusedTilePanel's per-column sums; integer, so trivially equal). */
inline void
referencePsums(const int8_t *act, const int8_t *codes, int64_t stride,
               int64_t len, bool isInt, int64_t &mac, int64_t &sac)
{
    mac = 0;
    sac = 0;
    if (isInt) {
        for (int64_t i = 0; i < len; ++i)
            mac += static_cast<int64_t>(act[i]) * codes[i * stride];
        return;
    }
    for (int64_t i = 0; i < len; ++i) {
        const MantCode c = static_cast<MantCode>(
            static_cast<uint8_t>(codes[i * stride]) & 0xf);
        const int sign = mantSign(c);
        const int mag = mantMagnitude(c);
        mac += static_cast<int64_t>(act[i]) * (sign * mag);
        sac += sign * sacShift(act[i], mag);
    }
}

/** Pending-tail P·V term, identical in both paths: an exact integer
 *  INT8×INT8 dot per channel against the pending-window codes. */
void
accumulatePending(const TemporalVQuantizer &vq,
                  std::span<const int8_t> pCodes, int64_t finRows,
                  int64_t pendRows, float sx, std::span<double> acc)
{
    const int64_t channels = vq.channels();
    const std::span<const int8_t> pend = vq.pendingCodes();
    const std::span<const float> cs = vq.channelScales();
    for (int64_t ch = 0; ch < channels; ++ch) {
        int64_t dot = 0;
        for (int64_t r = 0; r < pendRows; ++r)
            dot += static_cast<int64_t>(
                       pCodes[static_cast<size_t>(finRows + r)]) *
                   pend[static_cast<size_t>(r * channels + ch)];
        acc[static_cast<size_t>(ch)] +=
            static_cast<double>(dot) * static_cast<double>(sx) *
            static_cast<double>(cs[static_cast<size_t>(ch)]);
    }
}

} // namespace

void
quantizeQRow(const SimdOps &ops, std::span<const float> q,
             int64_t groupSize, AttnScratch &scratch)
{
    const int64_t n = static_cast<int64_t>(q.size());
    const int64_t gsize = effectiveGroupSize(n, groupSize);
    const int64_t groups = groupsPerRowFor(n, groupSize);
    scratch.qCodes.resize(static_cast<size_t>(n));
    scratch.qScales.resize(static_cast<size_t>(groups));
    for (int64_t g = 0; g < groups; ++g) {
        const int64_t k0 = g * gsize;
        const int64_t len = std::min(gsize, n - k0);
        scratch.qScales[static_cast<size_t>(g)] = quantizeSegment(
            ops, q.data() + k0, len, scratch.qCodes.data() + k0);
    }
}

int64_t
quantizePRow(const SimdOps &ops, std::span<const float> probs,
             int64_t window, int64_t finalizedRows,
             AttnScratch &scratch)
{
    const int64_t visible = static_cast<int64_t>(probs.size());
    const int64_t finRows = std::min(visible, finalizedRows);
    const int64_t pendRows = visible - finRows;
    const int64_t nw = window > 0 ? (finRows + window - 1) / window : 0;
    scratch.pCodes.resize(static_cast<size_t>(visible));
    scratch.pScales.resize(
        static_cast<size_t>(nw + (pendRows > 0 ? 1 : 0)));
    for (int64_t w = 0; w < nw; ++w) {
        const int64_t w0 = w * window;
        const int64_t len = std::min(window, finRows - w0);
        scratch.pScales[static_cast<size_t>(w)] = quantizeSegment(
            ops, probs.data() + w0, len, scratch.pCodes.data() + w0);
    }
    if (pendRows > 0)
        scratch.pScales[static_cast<size_t>(nw)] =
            quantizeSegment(ops, probs.data() + finRows, pendRows,
                            scratch.pCodes.data() + finRows);
    return nw;
}

void
attnScoresFused(const SimdOps &ops, const KPanelStore &kPanels,
                std::span<const int8_t> qCodes,
                std::span<const float> qScales, int64_t visible,
                float invSqrtDh, float slope, std::span<float> scores)
{
    if (visible > kPanels.rows())
        throw std::invalid_argument(
            "attnScoresFused: visible exceeds cached rows");
    const int64_t gsize = kPanels.groupSize();
    for (int64_t p0 = 0; p0 < visible; p0 += kTilePanelCols) {
        const int64_t panel = p0 / kTilePanelCols;
        const int64_t valid =
            std::min<int64_t>(kTilePanelCols, visible - p0);
        double acc8[kTilePanelCols] = {};
        for (int64_t g = 0; g < kPanels.groupsPerRow(); ++g) {
            const int64_t k0 = g * gsize;
            const int64_t len = std::min(gsize, kPanels.headDim() - k0);
            int64_t mac[kTilePanelCols] = {};
            int64_t sac[kTilePanelCols] = {};
            ops.fusedTilePanel(qCodes.data() + k0, 0, 1,
                               kPanels.tileCodes(panel, g), len, mac,
                               sac);
            const std::span<const float> sw = kPanels.tileScales(panel, g);
            const std::span<const uint8_t> aa =
                kPanels.tileCoeffs(panel, g);
            const std::span<const uint8_t> ii =
                kPanels.tileIsInt(panel, g);
            const float sx = qScales[static_cast<size_t>(g)];
            for (int64_t c = 0; c < valid; ++c)
                acc8[c] += combineGroup(
                    mac[c], sac[c], ii[static_cast<size_t>(c)] != 0,
                    aa[static_cast<size_t>(c)], sx,
                    sw[static_cast<size_t>(c)]);
        }
        for (int64_t c = 0; c < valid; ++c) {
            const int64_t p = p0 + c;
            scores[static_cast<size_t>(p)] =
                static_cast<float>(acc8[c]) * invSqrtDh -
                slope * static_cast<float>(visible - 1 - p);
        }
    }
}

void
attnScoresReference(const KPanelStore &kPanels,
                    std::span<const int8_t> qCodes,
                    std::span<const float> qScales, int64_t visible,
                    float invSqrtDh, float slope,
                    std::span<float> scores)
{
    if (visible > kPanels.rows())
        throw std::invalid_argument(
            "attnScoresReference: visible exceeds cached rows");
    const int64_t gsize = kPanels.groupSize();
    for (int64_t p = 0; p < visible; ++p) {
        const std::span<const int8_t> row = kPanels.rowCodes(p);
        double acc = 0.0;
        for (int64_t g = 0; g < kPanels.groupsPerRow(); ++g) {
            const int64_t k0 = g * gsize;
            const int64_t len = std::min(gsize, kPanels.headDim() - k0);
            const MantGroupMeta meta = kPanels.metaAt(p, g);
            int64_t mac = 0, sac = 0;
            referencePsums(qCodes.data() + k0, row.data() + k0, 1, len,
                           meta.isInt, mac, sac);
            acc += combineGroup(mac, sac, meta.isInt, meta.a,
                                qScales[static_cast<size_t>(g)],
                                meta.scale);
        }
        scores[static_cast<size_t>(p)] =
            static_cast<float>(acc) * invSqrtDh -
            slope * static_cast<float>(visible - 1 - p);
    }
}

void
attnPvFused(const SimdOps &ops, const TemporalVQuantizer &vq,
            std::span<const float> probs, AttnScratch &scratch,
            std::span<float> out)
{
    const int64_t channels = vq.channels();
    const int64_t window = vq.window();
    const int64_t visible = static_cast<int64_t>(probs.size());
    if (visible > vq.rows())
        throw std::invalid_argument(
            "attnPvFused: probs length exceeds cached rows");
    const VPanelStore &vp = vq.codePanels();
    const int64_t finRows = std::min(visible, vq.finalizedRows());
    const int64_t nw =
        quantizePRow(ops, probs, window, vq.finalizedRows(), scratch);
    scratch.acc.assign(static_cast<size_t>(channels), 0.0);

    for (int64_t w = 0; w < nw; ++w) {
        const int64_t w0 = w * window;
        const int64_t len = std::min(window, finRows - w0);
        const float sx = scratch.pScales[static_cast<size_t>(w)];
        for (int64_t pn = 0; pn < vp.panels(); ++pn) {
            int64_t mac[kTilePanelCols] = {};
            int64_t sac[kTilePanelCols] = {};
            ops.fusedTilePanel(scratch.pCodes.data() + w0, 0, 1,
                               vp.tileCodes(w, pn), len, mac, sac);
            const std::span<const float> sw = vp.tileScales(w, pn);
            const std::span<const uint8_t> aa = vp.tileCoeffs(w, pn);
            const std::span<const uint8_t> ii = vp.tileIsInt(w, pn);
            const int64_t cMax = std::min<int64_t>(
                kTilePanelCols, channels - pn * kTilePanelCols);
            for (int64_t c = 0; c < cMax; ++c)
                scratch.acc[static_cast<size_t>(
                    pn * kTilePanelCols + c)] +=
                    combineGroup(mac[c], sac[c],
                                 ii[static_cast<size_t>(c)] != 0,
                                 aa[static_cast<size_t>(c)], sx,
                                 sw[static_cast<size_t>(c)]);
        }
    }
    if (visible > finRows)
        accumulatePending(vq, scratch.pCodes, finRows,
                          visible - finRows,
                          scratch.pScales[static_cast<size_t>(nw)],
                          scratch.acc);
    for (int64_t ch = 0; ch < channels; ++ch)
        out[static_cast<size_t>(ch)] =
            static_cast<float>(scratch.acc[static_cast<size_t>(ch)]);
}

void
attnPvReference(const SimdOps &ops, const TemporalVQuantizer &vq,
                std::span<const float> probs, AttnScratch &scratch,
                std::span<float> out)
{
    const int64_t channels = vq.channels();
    const int64_t window = vq.window();
    const int64_t visible = static_cast<int64_t>(probs.size());
    if (visible > vq.rows())
        throw std::invalid_argument(
            "attnPvReference: probs length exceeds cached rows");
    const VPanelStore &vp = vq.codePanels();
    const int64_t finRows = std::min(visible, vq.finalizedRows());
    const int64_t nw =
        quantizePRow(ops, probs, window, vq.finalizedRows(), scratch);
    scratch.acc.assign(static_cast<size_t>(channels), 0.0);

    for (int64_t w = 0; w < nw; ++w) {
        const int64_t w0 = w * window;
        const int64_t len = std::min(window, finRows - w0);
        const float sx = scratch.pScales[static_cast<size_t>(w)];
        for (int64_t ch = 0; ch < channels; ++ch) {
            const MantGroupMeta meta = vp.metaAt(w, ch);
            int64_t mac = 0, sac = 0;
            // Flat V codes are row-major (position, channel): walk
            // the window's rows at a channel stride.
            referencePsums(scratch.pCodes.data() + w0,
                           vp.rowCodes(w0).data() + ch, channels, len,
                           meta.isInt, mac, sac);
            scratch.acc[static_cast<size_t>(ch)] += combineGroup(
                mac, sac, meta.isInt, meta.a, sx, meta.scale);
        }
    }
    if (visible > finRows)
        accumulatePending(vq, scratch.pCodes, finRows,
                          visible - finRows,
                          scratch.pScales[static_cast<size_t>(nw)],
                          scratch.acc);
    for (int64_t ch = 0; ch < channels; ++ch)
        out[static_cast<size_t>(ch)] =
            static_cast<float>(scratch.acc[static_cast<size_t>(ch)]);
}

} // namespace mant
