/**
 * @file
 * Fused integer attention on quantized KV-cache codes.
 *
 * Both attention GEMMs run directly on the stored 4-bit codes, never
 * touching the dequantized cache:
 *
 *  - QK^T: the query row is INT8-quantized per K quantization group
 *    (the reduction runs along headDim, so K's spatial groups are the
 *    natural activation groups), then each panel of 8 cached positions
 *    is one fusedTilePanel call per group — integer MAC/SAC lanes,
 *    per-group combine into a per-position double accumulator, floats
 *    appearing only at the combine. Scores leave as float for softmax.
 *
 *  - P·V: the probability row is INT8-quantized per temporal process
 *    window (the reduction runs along the sequence, so V's temporal
 *    groups are the activation groups; the last finalized window a row
 *    can see may be a partial prefix, and the not-yet-finalized tail
 *    is a final INT8×INT8 segment against the pending-window codes).
 *    Each finalized window is one fusedTilePanel call per panel of 8
 *    channels, accumulated per channel in double, windows ascending
 *    then the pending segment, exactly one float() per channel at the
 *    end.
 *
 * Every function here has a pure-scalar reference twin that walks the
 * flat one-code-per-byte views with the same combine expressions in
 * the same order — the bit-exactness oracle (integer partial sums are
 * exact, so lane geometry cannot change the result; the double
 * accumulation order is fixed by construction). tests/test_attention.cc
 * asserts byte equality fused-vs-reference across every SIMD backend
 * and thread count.
 */

#ifndef MANT_CORE_FUSED_ATTENTION_H_
#define MANT_CORE_FUSED_ATTENTION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/kv_panels.h"
#include "core/kv_quant.h"
#include "core/simd.h"

namespace mant {

/**
 * Reusable per-call scratch: activation codes/scales for both GEMMs
 * plus the P·V channel accumulators. Vector capacity persists across
 * calls, so a decode loop allocates only while shapes still grow.
 */
struct AttnScratch
{
    std::vector<int8_t> qCodes; ///< query row, INT8 per K group
    std::vector<float> qScales; ///< one scale per K group
    std::vector<int8_t> pCodes; ///< prob row, INT8 per V segment
    std::vector<float> pScales; ///< per finalized window (+ pending)
    std::vector<double> acc;    ///< per-channel P·V accumulators
};

/**
 * INT8-quantize one query row per K quantization group (the shared
 * activation idiom: scale = fp16Round(absMax/127), all-zero group
 * gets scale 1; round-half-away, clamp to ±127). Fills
 * scratch.qCodes / scratch.qScales.
 */
void quantizeQRow(const SimdOps &ops, std::span<const float> q,
                  int64_t groupSize, AttnScratch &scratch);

/**
 * INT8-quantize one probability row into per-segment codes: one
 * segment per finalized process window a `probs.size()`-long row can
 * see (the last may be a partial prefix), plus one segment for the
 * pending tail when present. Fills scratch.pCodes / scratch.pScales.
 *
 * @return Number of window segments (the pending segment's scale, if
 *         any, sits at scratch.pScales[returned]).
 */
int64_t quantizePRow(const SimdOps &ops, std::span<const float> probs,
                     int64_t window, int64_t finalizedRows,
                     AttnScratch &scratch);

/**
 * Fused QK^T row: scores[p] for p in [0, visible) from the packed K
 * panels and a quantizeQRow'd query. `scores[p] = float(acc_p) *
 * invSqrtDh - slope * float(visible - 1 - p)` (ALiBi; pass slope 0
 * for none). Requires visible <= kPanels.rows().
 */
void attnScoresFused(const SimdOps &ops, const KPanelStore &kPanels,
                     std::span<const int8_t> qCodes,
                     std::span<const float> qScales, int64_t visible,
                     float invSqrtDh, float slope,
                     std::span<float> scores);

/**
 * Scalar reference twin of attnScoresFused over the flat code view.
 * Bit-identical to the fused path on every backend, by construction.
 */
void attnScoresReference(const KPanelStore &kPanels,
                         std::span<const int8_t> qCodes,
                         std::span<const float> qScales, int64_t visible,
                         float invSqrtDh, float slope,
                         std::span<float> scores);

/**
 * Fused P·V row: out[c] for c in [0, vq.channels()) from the V code
 * panels, the pending-window INT8 codes, and a probability row of
 * length visible (<= vq.rows()). Quantizes the row itself (shared
 * quantizePRow). Requires vq.capturesCodes().
 */
void attnPvFused(const SimdOps &ops, const TemporalVQuantizer &vq,
                 std::span<const float> probs, AttnScratch &scratch,
                 std::span<float> out);

/**
 * Scalar reference twin of attnPvFused over the flat code view.
 * Uses `ops` only for the shared probability quantization.
 */
void attnPvReference(const SimdOps &ops, const TemporalVQuantizer &vq,
                     std::span<const float> probs, AttnScratch &scratch,
                     std::span<float> out);

} // namespace mant

#endif // MANT_CORE_FUSED_ATTENTION_H_
