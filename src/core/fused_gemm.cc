#include "core/fused_gemm.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <stdexcept>

#include "core/parallel.h"
#include "core/simd.h"
#include "quant/fixed_formats.h"
#include "tensor/fp16.h"

namespace mant {

const int8_t *
mantIndexToCodeLut()
{
    static const std::array<int8_t, 2 * kMantMagnitudes> lut = [] {
        std::array<int8_t, 2 * kMantMagnitudes> t{};
        for (int i = 0; i < 2 * kMantMagnitudes; ++i)
            t[static_cast<size_t>(i)] =
                static_cast<int8_t>(MantFormat::indexToCode(i));
        return t;
    }();
    return lut.data();
}

void
mantValueLut(int a, float lut[16])
{
    for (int c = 0; c < 16; ++c)
        lut[c] = static_cast<float>(
            mantCodeValue(a, static_cast<MantCode>(c)));
}

MantPsums
fusedDot(std::span<const int32_t> x, std::span<const MantCode> codes)
{
    if (x.size() != codes.size())
        throw std::invalid_argument("fusedDot: length mismatch");
    MantPsums p;
    for (size_t i = 0; i < x.size(); ++i) {
        const MantCode c = codes[i];
        const int mag = mantMagnitude(c);
        const int sign = mantSign(c);
        const int64_t xv = x[i];
        p.psum1 += xv * (sign * mag);          // MAC lane
        p.psum2 += sign * sacShift(xv, mag);   // SAC lane
    }
    return p;
}

MantQuantizedMatrix
MantQuantizedMatrix::quantize(const Tensor &w, int64_t groupSize,
                              Search mode,
                              std::span<const double> calibPower,
                              bool fp16Scale)
{
    if (w.shape().rank() != 2)
        throw std::invalid_argument("MantQuantizedMatrix: rank-2 required");
    if (mode == Search::OutputMse &&
        static_cast<int64_t>(calibPower.size()) != w.shape().dim(1)) {
        throw std::invalid_argument(
            "MantQuantizedMatrix: OutputMse needs per-column calibPower");
    }

    MantQuantizedMatrix q;
    q.rows_ = w.shape().dim(0);
    q.cols_ = w.shape().dim(1);
    q.groupSize_ = effectiveGroupSize(q.cols_, groupSize);
    q.groupsPerRow_ = groupsPerRowFor(q.cols_, groupSize);
    q.codes_.resize(static_cast<size_t>(q.rows_ * q.cols_));
    q.meta_.resize(static_cast<size_t>(q.rows_ * q.groupsPerRow_));

    // Rows are independent: each writes its own code/meta stripe, and
    // the per-group coefficient search is a pure function of the group,
    // so the encode is bit-identical at any thread count.
    const SimdOps &ops = simdOps();
    parallelFor(0, q.rows_, 1, [&](int64_t rb, int64_t re, int64_t) {
        for (int64_t r = rb; r < re; ++r) {
            const float *row = w.data() + r * q.cols_;
            for (int64_t g = 0; g < q.groupsPerRow_; ++g) {
                const int64_t k0 = g * q.groupSize_;
                const int64_t len = std::min(q.groupSize_, q.cols_ - k0);
                std::span<const float> group(row + k0,
                                             static_cast<size_t>(len));
                std::span<const double> weights =
                    mode == Search::OutputMse
                        ? calibPower.subspan(static_cast<size_t>(k0),
                                             static_cast<size_t>(len))
                        : std::span<const double>{};

                const MantSelection sel = searchCoefficient(
                    ops, group, {}, weights, fp16Scale);
                MantGroupMeta &meta =
                    q.meta_[static_cast<size_t>(r * q.groupsPerRow_ + g)];
                meta.scale = sel.scale;
                meta.isInt = sel.isInt;
                meta.a = static_cast<uint8_t>(sel.isInt ? 0 : sel.a);

                int8_t *codes = q.codes_.data() + r * q.cols_ + k0;
                if (sel.isInt) {
                    ops.quantizeRoundClamp(group.data(), codes, len,
                                           meta.scale, 7);
                } else {
                    const auto levels = mantFormat(sel.a).levels();
                    ops.encodeCodes(group.data(), codes, len,
                                    levels.data(),
                                    static_cast<int>(levels.size()),
                                    mantIndexToCodeLut(), meta.scale);
                }
            }
        }
    });
    return q;
}

MantQuantizedMatrix
MantQuantizedMatrix::fromParts(int64_t rows, int64_t cols,
                               int64_t groupSize,
                               std::vector<int8_t> codes,
                               std::vector<MantGroupMeta> meta)
{
    MantQuantizedMatrix q;
    q.rows_ = rows;
    q.cols_ = cols;
    q.groupSize_ = effectiveGroupSize(cols, groupSize);
    q.groupsPerRow_ = groupsPerRowFor(cols, groupSize);
    if (static_cast<int64_t>(codes.size()) != rows * cols)
        throw std::invalid_argument("fromParts: code size mismatch");
    if (static_cast<int64_t>(meta.size()) != rows * q.groupsPerRow_)
        throw std::invalid_argument("fromParts: meta size mismatch");
    q.codes_ = std::move(codes);
    q.meta_ = std::move(meta);
    return q;
}

Tensor
MantQuantizedMatrix::dequantize() const
{
    Tensor out(Shape{rows_, cols_});
    const SimdOps &ops = simdOps();
    // One nibble->value table per possible coefficient, built once up
    // front instead of once per group — groups are as short as 16
    // codes, so a per-group rebuild would cost a quarter of the
    // decode itself. Sized for the full uint8 field, not just the
    // 7-bit wire-format range: fromParts() accepts arbitrary meta, so
    // a hostile a > 127 must stay an in-bounds lookup (decoding to
    // the same arithmetic values the pre-LUT code produced).
    std::vector<std::array<float, 16>> luts(256);
    for (int a = 0; a < 256; ++a)
        mantValueLut(a, luts[static_cast<size_t>(a)].data());
    parallelFor(0, rows_, 4, [&](int64_t rb, int64_t re, int64_t) {
        for (int64_t r = rb; r < re; ++r) {
            const int8_t *codes = codes_.data() + r * cols_;
            float *orow = out.data() + r * cols_;
            for (int64_t g = 0; g < groupsPerRow_; ++g) {
                const MantGroupMeta &m =
                    meta_[static_cast<size_t>(r * groupsPerRow_ + g)];
                const int64_t k0 = g * groupSize_;
                const int64_t len = std::min(groupSize_, cols_ - k0);
                if (m.isInt) {
                    // INT groups store sign-extended int8 codes.
                    ops.dequantInt8(codes + k0, orow + k0, len,
                                    m.scale);
                } else {
                    // MANT groups decode through the 16-entry grid
                    // of this group's coefficient (low nibble only,
                    // matching mantMagnitude/mantSign).
                    ops.dequantLut16(codes + k0, orow + k0, len,
                                     luts[m.a].data(), m.scale);
                }
            }
        }
    });
    return out;
}

std::vector<std::pair<int, int64_t>>
MantQuantizedMatrix::selectionHistogram() const
{
    std::map<int, int64_t> hist;
    for (const MantGroupMeta &m : meta_)
        ++hist[m.isInt ? -1 : static_cast<int>(m.a)];
    return {hist.begin(), hist.end()};
}

double
MantQuantizedMatrix::bitsPerElement() const
{
    // 4-bit codes + per-group 16-bit scale + 8-bit coefficient/type id.
    const double groups = static_cast<double>(meta_.size());
    const double elems = static_cast<double>(codes_.size());
    return 4.0 + (16.0 + 8.0) * groups / elems;
}

Int8QuantizedActivations
Int8QuantizedActivations::quantize(const Tensor &x, int64_t groupSize,
                                   bool fp16Scale)
{
    Int8QuantizedActivations q;
    q.assign(x, groupSize, fp16Scale);
    return q;
}

void
Int8QuantizedActivations::assign(const Tensor &x, int64_t groupSize,
                                 bool fp16Scale)
{
    if (x.shape().rank() != 2)
        throw std::invalid_argument(
            "Int8QuantizedActivations: rank-2 required");
    rows_ = x.shape().dim(0);
    cols_ = x.shape().dim(1);
    groupSize_ = effectiveGroupSize(cols_, groupSize);
    groupsPerRow_ = groupsPerRowFor(cols_, groupSize);
    codes_.resize(static_cast<size_t>(rows_ * cols_));
    scales_.resize(static_cast<size_t>(rows_ * groupsPerRow_));

    const SimdOps &ops = simdOps();
    parallelFor(0, rows_, 4, [&](int64_t rb, int64_t re, int64_t) {
        for (int64_t r = rb; r < re; ++r) {
            const float *row = x.data() + r * cols_;
            int8_t *codes = codes_.data() + r * cols_;
            for (int64_t g = 0; g < groupsPerRow_; ++g) {
                const int64_t k0 = g * groupSize_;
                const int64_t len = std::min(groupSize_, cols_ - k0);
                float scale = ops.absMax(row + k0, len) / 127.0f;
                if (fp16Scale)
                    scale = fp16Round(scale);
                if (scale == 0.0f)
                    scale = 1.0f;
                scales_[static_cast<size_t>(r * groupsPerRow_ + g)] =
                    scale;
                ops.quantizeRoundClamp(row + k0, codes + k0, len,
                                       scale, 127);
            }
        }
    });
}

Tensor
Int8QuantizedActivations::dequantize() const
{
    Tensor out(Shape{rows_, cols_});
    const SimdOps &ops = simdOps();
    parallelFor(0, rows_, 4, [&](int64_t rb, int64_t re, int64_t) {
        for (int64_t r = rb; r < re; ++r) {
            const int8_t *codes = codes_.data() + r * cols_;
            float *orow = out.data() + r * cols_;
            for (int64_t g = 0; g < groupsPerRow_; ++g) {
                const float s =
                    scales_[static_cast<size_t>(r * groupsPerRow_ + g)];
                const int64_t k0 = g * groupSize_;
                const int64_t len = std::min(groupSize_, cols_ - k0);
                ops.dequantInt8(codes + k0, orow + k0, len, s);
            }
        }
    });
    return out;
}

Tensor
fusedGemm(const Int8QuantizedActivations &x, const MantQuantizedMatrix &w)
{
    if (x.cols() != w.cols())
        throw std::invalid_argument("fusedGemm: reduction dims differ");
    if (x.groupsPerRow() != w.groupsPerRow())
        throw std::invalid_argument("fusedGemm: group layout mismatch");

    const int64_t m_dim = x.rows();
    const int64_t n_dim = w.rows();
    const int64_t k_dim = x.cols();
    const int64_t gsize = w.groupSize();
    const int64_t groups = w.groupsPerRow();

    // Every output cell is an independent reduction whose inner
    // accumulation order is fixed, so partitioning the flattened
    // (m, n) index space is bit-identical at any thread count — and,
    // unlike row partitioning, it still scales for single-token decode
    // (m_dim == 1) against a wide weight matrix.
    Tensor out(Shape{m_dim, n_dim});
    const SimdOps &ops = simdOps();
    parallelFor(
        0, m_dim * n_dim, 8, [&](int64_t cb, int64_t ce, int64_t) {
            for (int64_t cell = cb; cell < ce; ++cell) {
                const int64_t m = cell / n_dim;
                const int64_t n = cell % n_dim;
                const int8_t *xrow = x.rowCodes(m).data();
                const int8_t *wrow = w.rowCodes(n).data();
                double acc = 0.0;
                for (int64_t g = 0; g < groups; ++g) {
                    const int64_t k0 = g * gsize;
                    const int64_t len = std::min(gsize, k_dim - k0);
                    const MantGroupMeta &meta = w.meta(n, g);
                    const float sx = x.scale(m, g);

                    if (meta.isInt) {
                        // Plain INT4 group: MAC lane only.
                        const int64_t psum =
                            ops.dotInt8(xrow + k0, wrow + k0, len);
                        acc += static_cast<double>(psum) *
                               static_cast<double>(sx) *
                               static_cast<double>(meta.scale);
                    } else {
                        // Fused MANT group: MAC + SAC lanes (Eq. 5).
                        const SimdPsums p = ops.fusedDotMant(
                            xrow + k0, wrow + k0, len);
                        acc += (static_cast<double>(meta.a) *
                                    static_cast<double>(p.mac) +
                                static_cast<double>(p.sac)) *
                               static_cast<double>(sx) *
                               static_cast<double>(meta.scale);
                    }
                }
                out.at(m, n) = static_cast<float>(acc);
            }
        });
    return out;
}

Tensor
dequantGemmReference(const Int8QuantizedActivations &x,
                     const MantQuantizedMatrix &w)
{
    const Tensor xf = x.dequantize();
    const Tensor wf = w.dequantize();
    // out = xf (M,K) * wf^T (K,N); wf is (N,K).
    const int64_t m_dim = xf.shape().dim(0);
    const int64_t k_dim = xf.shape().dim(1);
    const int64_t n_dim = wf.shape().dim(0);
    Tensor out(Shape{m_dim, n_dim});
    for (int64_t m = 0; m < m_dim; ++m) {
        for (int64_t n = 0; n < n_dim; ++n) {
            double acc = 0.0;
            const float *xr = xf.data() + m * k_dim;
            const float *wr = wf.data() + n * k_dim;
            for (int64_t k = 0; k < k_dim; ++k)
                acc += static_cast<double>(xr[k]) * wr[k];
            out.at(m, n) = static_cast<float>(acc);
        }
    }
    return out;
}

} // namespace mant
