/**
 * @file
 * Decode-compute fusion (Sec. IV-C, Eq. 5) and the quantized-operand
 * containers it runs on.
 *
 * The key identity: with activations in INT8 (X = Xint * sX) and MANT
 * weights (W = ±(a*m + 2^m) * sW),
 *
 *   X * W = [Xint * Wint] * a * sX*sW  +  [Xint * 2^Wint] * sX*sW
 *           \____psum1____/              \_____psum2_____/
 *
 * so the whole group dot product is one integer multiply-accumulate
 * stream (psum1, the PE's MAC lane) plus one shift-accumulate stream
 * (psum2, the SAC lane), with the scales and the coefficient applied
 * once per group. Groups that selected the plain-INT4 option use only
 * the MAC lane. The functions here are the bit-exact software model of
 * that datapath; tests assert equality against dequantize-then-FP.
 */

#ifndef MANT_CORE_FUSED_GEMM_H_
#define MANT_CORE_FUSED_GEMM_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "core/coeff_search.h"
#include "core/mant_grid.h"
#include "tensor/tensor.h"

namespace mant {

/** Integer partial sums produced by one group dot product. */
struct MantPsums
{
    int64_t psum1 = 0; ///< MAC lane: sum of x * (sign * magnitude)
    int64_t psum2 = 0; ///< SAC lane: sum of sign * (x << magnitude)
};

/**
 * SAC-lane shift: x * 2^magnitude, UBSan-clean for negative x and for
 * any magnitude the 4-bit grid (0..7) — or a corrupted code — can
 * present. The shift runs in uint64 (defined for the full clamped
 * range [0, 63]) and converts back with C++20 wraparound semantics,
 * so hostile magnitudes wrap instead of invoking UB; every magnitude
 * real codes emit is exact.
 *
 * Invariant (asserted in debug builds): the clamp is the sole guard
 * between `magnitude` and the `<<` operator — the shift count that
 * reaches the shift MUST lie in [0, 63], the entire domain on which
 * a uint64 shift is defined. Real codes only produce [0, 7] (see
 * mantMagnitude's 3-bit mask); anything larger is a hostile or
 * corrupted input that the clamp deliberately wraps rather than
 * rejects, so callers never need to pre-validate.
 */
inline int64_t
sacShift(int64_t x, int magnitude)
{
    const unsigned m =
        static_cast<unsigned>(std::clamp(magnitude, 0, 63));
    assert(m <= 63 && "sacShift: clamped shift must stay defined");
    return static_cast<int64_t>(static_cast<uint64_t>(x) << m);
}

/**
 * Fused group dot product: MANT codes against INT8 activations.
 *
 * @param x     INT8 activation values (as int32 for convenience).
 * @param codes Sign-magnitude MANT codes, same length.
 */
MantPsums fusedDot(std::span<const int32_t> x,
                   std::span<const MantCode> codes);

/** Sorted-level-index -> sign-magnitude code map for encodeCodes
 *  (MantFormat::indexToCode as a flat table; shared by the weight
 *  encode and the KV-cache code capture). */
const int8_t *mantIndexToCodeLut();

/** Fill a 16-entry nibble -> value table of one MANT coefficient's
 *  grid (mantCodeValue over the low nibble). */
void mantValueLut(int a, float lut[16]);

/** Combine psums into the real value: (a*psum1 + psum2) * sX * sW. */
inline double
combinePsums(const MantPsums &p, int a, float sx, float sw)
{
    return (static_cast<double>(a) * static_cast<double>(p.psum1) +
            static_cast<double>(p.psum2)) *
           static_cast<double>(sx) * static_cast<double>(sw);
}

/** Effective group length: groupSize clamped to cols, cols when <= 0. */
inline int64_t
effectiveGroupSize(int64_t cols, int64_t groupSize)
{
    return groupSize > 0 ? std::min(groupSize, cols) : cols;
}

/**
 * Number of quantization groups along a row of `cols` elements
 * (0 for an empty row — never divides by zero).
 */
inline int64_t
groupsPerRowFor(int64_t cols, int64_t groupSize)
{
    const int64_t gsize = effectiveGroupSize(cols, groupSize);
    return gsize > 0 ? (cols + gsize - 1) / gsize : 0;
}

/** Per-group metadata of a MANT-quantized matrix. */
struct MantGroupMeta
{
    float scale = 1.0f; ///< sW, FP16-rounded
    uint8_t a = 0;      ///< coefficient (8-bit field, Sec. IV-A)
    bool isInt = false; ///< group selected the plain-INT4 option
};

/**
 * A MANT-quantized weight matrix, stored (rows = output features,
 * cols = input features), quantization groups along the input (inner)
 * dimension so a GEMM walks contiguous codes.
 *
 * Code storage is one byte per weight: sign-magnitude MANT codes for
 * MANT groups, signed two's-complement INT4 values for INT groups.
 */
class MantQuantizedMatrix
{
  public:
    /** How the per-group coefficient is chosen. */
    enum class Search
    {
        WeightMse,  ///< argmin of plain group MSE
        OutputMse,  ///< Eq. 6: MSE weighted by calibration E[x^2]
    };

    /**
     * Quantize a weight matrix.
     *
     * @param w          Weights, shape (outFeatures, inFeatures).
     * @param groupSize  Group length along the inner dimension.
     * @param mode       Coefficient search objective.
     * @param calibPower Per-input-feature E[x^2] from calibration
     *                   (required for OutputMse, ignored otherwise).
     */
    static MantQuantizedMatrix quantize(
        const Tensor &w, int64_t groupSize,
        Search mode = Search::WeightMse,
        std::span<const double> calibPower = {}, bool fp16Scale = true);

    int64_t rows() const { return rows_; }
    int64_t cols() const { return cols_; }
    int64_t groupSize() const { return groupSize_; }
    int64_t groupsPerRow() const { return groupsPerRow_; }

    const MantGroupMeta &
    meta(int64_t row, int64_t group) const
    {
        return meta_[static_cast<size_t>(row * groupsPerRow_ + group)];
    }

    std::span<const int8_t>
    rowCodes(int64_t row) const
    {
        return {codes_.data() + row * cols_, static_cast<size_t>(cols_)};
    }

    /**
     * Reassemble from raw parts (deserialization path). `codes` is
     * row-major one code per byte; `meta` is row-major per group.
     */
    static MantQuantizedMatrix fromParts(int64_t rows, int64_t cols,
                                         int64_t groupSize,
                                         std::vector<int8_t> codes,
                                         std::vector<MantGroupMeta> meta);

    /** Dequantize back to float (the PE-external reference path). */
    Tensor dequantize() const;

    /** Histogram of selections: bucket -1 = INT, else coefficient a. */
    std::vector<std::pair<int, int64_t>> selectionHistogram() const;

    /** Effective stored bits per element including metadata. */
    double bitsPerElement() const;

  private:
    int64_t rows_ = 0, cols_ = 0, groupSize_ = 0, groupsPerRow_ = 0;
    std::vector<int8_t> codes_;
    std::vector<MantGroupMeta> meta_;
};

/**
 * Group-wise INT8-quantized activations, groups along the inner
 * (reduction) dimension, matching the weight group boundaries.
 */
class Int8QuantizedActivations
{
  public:
    static Int8QuantizedActivations quantize(const Tensor &x,
                                             int64_t groupSize,
                                             bool fp16Scale = true);

    /**
     * In-place requantize reusing this object's storage: vector
     * capacity persists across calls, so a decode loop that feeds the
     * same shapes repeatedly allocates exactly once (the scratch-pool
     * path of QuantizedLinear). Results are identical to quantize().
     */
    void assign(const Tensor &x, int64_t groupSize,
                bool fp16Scale = true);

    int64_t rows() const { return rows_; }
    int64_t cols() const { return cols_; }
    int64_t groupsPerRow() const { return groupsPerRow_; }

    std::span<const int8_t>
    rowCodes(int64_t row) const
    {
        return {codes_.data() + row * cols_, static_cast<size_t>(cols_)};
    }

    float
    scale(int64_t row, int64_t group) const
    {
        return scales_[static_cast<size_t>(row * groupsPerRow_ + group)];
    }

    Tensor dequantize() const;

  private:
    int64_t rows_ = 0, cols_ = 0, groupSize_ = 0, groupsPerRow_ = 0;
    std::vector<int8_t> codes_;
    std::vector<float> scales_;
};

/**
 * Fully fused integer GEMM: out[m, n] = sum over groups of
 * (a*psum1 + psum2) * sX[m,g] * sW[n,g]. This is the software model of
 * the MANT systolic array; all inner arithmetic is integer.
 *
 * @param x Quantized activations (M, K).
 * @param w Quantized weights (N, K) — note the transposed layout.
 * @return  Float output (M, N).
 */
Tensor fusedGemm(const Int8QuantizedActivations &x,
                 const MantQuantizedMatrix &w);

/**
 * Reference path: dequantize both operands and multiply in float.
 * fusedGemm must match this to FP rounding; tests assert it.
 */
Tensor dequantGemmReference(const Int8QuantizedActivations &x,
                            const MantQuantizedMatrix &w);

} // namespace mant

#endif // MANT_CORE_FUSED_GEMM_H_
