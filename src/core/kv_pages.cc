#include "core/kv_pages.h"

#include <cassert>
#include <string>

namespace mant {

KvPageAllocator::KvPageAllocator(int64_t pageBytes, int64_t maxPages)
    : pageBytes_(pageBytes), maxPages_(maxPages)
{
    if (pageBytes_ <= 0)
        throw std::invalid_argument(
            "KvPageAllocator: pageBytes must be positive");
    if (maxPages_ < 0)
        throw std::invalid_argument(
            "KvPageAllocator: maxPages must be non-negative");
}

std::optional<KvPageId>
KvPageAllocator::claimFree()
{
    KvPageId id;
    if (!freeList_.empty()) {
        id = freeList_.back();
        freeList_.pop_back();
    } else {
        if (maxPages_ != 0 &&
            static_cast<int64_t>(pages_.size()) >= maxPages_)
            return std::nullopt;
        id = static_cast<KvPageId>(pages_.size());
        // new[] of a char array is suitably aligned for any object
        // that fits, so float-typed block fields at 4-byte offsets
        // within a page are safe.
        pages_.push_back(std::make_unique<uint8_t[]>(
            static_cast<size_t>(pageBytes_)));
        allocated_.push_back(0);
    }
    allocated_[static_cast<size_t>(id)] = 1;
    ++inUse_;
    peakInUse_ = std::max(peakInUse_, inUse_);
    return id;
}

bool
KvPageAllocator::faultThisAttempt()
{
    ++attempts_;
    const bool fault =
        plan_.failAll ||
        (plan_.failAtAttempt > 0 && attempts_ == plan_.failAtAttempt);
    if (fault)
        ++injectedFaults_;
    return fault;
}

std::optional<KvPageId>
KvPageAllocator::tryAlloc()
{
    if (faultThisAttempt())
        return std::nullopt;
    return claimFree();
}

KvPageId
KvPageAllocator::alloc()
{
    if (faultThisAttempt()) {
        throw KvFaultInjected(
            "KvPageAllocator: injected fault on allocation attempt " +
            std::to_string(attempts_));
    }
    const std::optional<KvPageId> id = claimFree();
    if (!id) {
        throw KvPoolExhausted(
            "KvPageAllocator: page pool exhausted (cap " +
            std::to_string(maxPages_) + " pages of " +
            std::to_string(pageBytes_) + " bytes)");
    }
    return *id;
}

void
KvPageAllocator::free(KvPageId id)
{
    const bool known =
        id >= 0 && id < static_cast<int64_t>(pages_.size());
    assert(known && "KvPageAllocator::free: id outside this pool");
    if (!known)
        throw std::logic_error(
            "KvPageAllocator::free: page id " + std::to_string(id) +
            " was never allocated by this pool");
    uint8_t &flag = allocated_[static_cast<size_t>(id)];
    assert(flag != 0 && "KvPageAllocator::free: double free");
    if (flag == 0)
        throw std::logic_error(
            "KvPageAllocator::free: double free of page " +
            std::to_string(id));
    flag = 0;
    --inUse_;
    freeList_.push_back(id);
}

} // namespace mant
