/**
 * @file
 * Fixed-size page allocator for KV-cache storage — the memory half of
 * paged serving (vLLM-style block pooling over the panel stores).
 *
 * The panel stores (core/kv_panels.h) grow append-only in whole panel
 * blocks; a monolithic per-stream vector ties each stream's peak KV
 * footprint up for the stream's whole lifetime. KvPageAllocator breaks
 * that coupling: storage is a pool of fixed-size pages, each sized (by
 * the store) to hold a whole number of panel blocks, handed out from a
 * LIFO free list and returned when a stream resets or retires. Appends
 * stay placement-only — a block, once claimed, never moves — so every
 * pointer the fused attention kernels stream remains stable for the
 * block's lifetime.
 *
 * Contracts (enforced, never UB):
 *  - tryAlloc() reports exhaustion as std::nullopt; alloc() as a typed
 *    KvPoolExhausted exception. Neither ever returns a bad page.
 *  - free() of an id that is out of range or not currently allocated
 *    is a caller bug: debug builds abort on the assert, release builds
 *    throw std::logic_error. A page is never handed out twice without
 *    an intervening free().
 *  - Recycled pages keep their previous bytes; claimants must
 *    re-initialize whatever they use (the panel stores do).
 *  - Reuse is LIFO-deterministic: free(a); free(b); alloc() == b —
 *    identical request sequences see identical page placement, which
 *    the serving determinism contract leans on.
 *
 * Single-threaded by design, like the serving scheduler that owns the
 * shared pool (parallelism lives inside the kernels).
 */

#ifndef MANT_CORE_KV_PAGES_H_
#define MANT_CORE_KV_PAGES_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

namespace mant {

/** Handle to one pool page (dense, starting at 0). */
using KvPageId = int64_t;

/** Typed allocation failure: the pool's page cap is exhausted. */
class KvPoolExhausted : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Allocation failure manufactured by an armed KvFaultPlan. Derived
 *  from KvPoolExhausted so every exhaustion-handling path covers it,
 *  yet catchable separately: an injected fault says nothing about real
 *  pool pressure (the page the claim wanted is still free), so a
 *  scheduler may always retry it, where a genuine KvPoolExhausted with
 *  nothing left to evict is terminal for the request. */
class KvFaultInjected : public KvPoolExhausted
{
  public:
    using KvPoolExhausted::KvPoolExhausted;
};

/**
 * Deterministic allocation-fault plan. Faults are counter-seeded: they
 * key off the allocator's monotone attempt counter (and whatever
 * schedule the owner arms per scheduler round), never off time or
 * randomness, so a faulting run replays byte-identically. A fired
 * fault consumes the attempt (the counter advances) but leaves the
 * pool's state — free list, in-use count, created pages — untouched.
 */
struct KvFaultPlan
{
    /** Fail allocation attempt #N (1-based, counted across the
     *  allocator's lifetime by allocAttempts()); fires exactly once.
     *  0 disables. */
    int64_t failAtAttempt = 0;

    /** Fail every attempt while set (the owner arms/disarms this per
     *  scheduler-round window for storm injection). */
    bool failAll = false;

    bool armed() const { return failAtAttempt > 0 || failAll; }
};

/**
 * Free-list pool of fixed-size pages. Pages materialize lazily (the
 * cap is a ceiling, not an up-front reservation) and are never
 * returned to the OS until the allocator dies — a freed page parks on
 * the free list for the next claimant.
 */
class KvPageAllocator
{
  public:
    /**
     * @param pageBytes Size of every page; must be positive.
     * @param maxPages  Pool ceiling; 0 means unbounded.
     */
    explicit KvPageAllocator(int64_t pageBytes, int64_t maxPages = 0);

    /** Stores hold pointers to their allocator; pinning the object
     *  keeps those pointers valid for the stores' lifetime. */
    KvPageAllocator(const KvPageAllocator &) = delete;
    KvPageAllocator &operator=(const KvPageAllocator &) = delete;

    /** Claim a page, or std::nullopt when the cap is exhausted — or
     *  when the armed fault plan fails this attempt. */
    std::optional<KvPageId> tryAlloc();

    /** Claim a page; throws KvPoolExhausted when the cap is hit, or
     *  KvFaultInjected when the armed fault plan fails this attempt
     *  (the pool itself is unchanged in both cases). */
    KvPageId alloc();

    /** Arm (or, with a default-constructed plan, disarm) deterministic
     *  fault injection. The attempt counter is NOT reset — failAtAttempt
     *  is measured against the allocator-lifetime count. */
    void setFaultPlan(const KvFaultPlan &plan) { plan_ = plan; }
    const KvFaultPlan &faultPlan() const { return plan_; }

    /** Allocation attempts over the allocator's lifetime, successful
     *  or not (monotone; the fault plan's counter space). */
    int64_t allocAttempts() const { return attempts_; }

    /** Attempts failed by the fault plan (never by real exhaustion). */
    int64_t injectedFaults() const { return injectedFaults_; }

    /**
     * Return a page to the free list. Contract: `id` must be a
     * currently-allocated page of this pool — double frees and
     * foreign/out-of-range ids assert in debug builds and throw
     * std::logic_error in release builds.
     */
    void free(KvPageId id);

    /** Byte storage of an allocated page (stable until free()). */
    uint8_t *
    data(KvPageId id)
    {
        return pages_[static_cast<size_t>(id)].get();
    }
    const uint8_t *
    data(KvPageId id) const
    {
        return pages_[static_cast<size_t>(id)].get();
    }

    int64_t pageBytes() const { return pageBytes_; }
    /** Pool ceiling (0 = unbounded). */
    int64_t maxPages() const { return maxPages_; }
    /** Distinct pages ever materialized (monotone). */
    int64_t
    createdPages() const
    {
        return static_cast<int64_t>(pages_.size());
    }
    int64_t inUsePages() const { return inUse_; }
    /** High-water mark of inUsePages() over the pool's lifetime. */
    int64_t peakInUsePages() const { return peakInUse_; }
    /** Pages still claimable: parked free pages plus unmaterialized
     *  headroom under the cap (saturates for unbounded pools). */
    int64_t
    freePages() const
    {
        if (maxPages_ == 0)
            return std::numeric_limits<int64_t>::max();
        return maxPages_ - inUse_;
    }

  private:
    /** Pop the free list / materialize under the cap (no fault check;
     *  the shared tail of tryAlloc() and alloc()). */
    std::optional<KvPageId> claimFree();
    /** Count one attempt and report whether the plan fails it. */
    bool faultThisAttempt();

    int64_t pageBytes_;
    int64_t maxPages_;
    int64_t inUse_ = 0;
    int64_t peakInUse_ = 0;
    int64_t attempts_ = 0;
    int64_t injectedFaults_ = 0;
    KvFaultPlan plan_;
    std::vector<std::unique_ptr<uint8_t[]>> pages_;
    /** LIFO free list: back() is the next page handed out. */
    std::vector<KvPageId> freeList_;
    /** One flag per created page (double-free detection). */
    std::vector<uint8_t> allocated_;
};

} // namespace mant

#endif // MANT_CORE_KV_PAGES_H_
