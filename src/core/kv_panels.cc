#include "core/kv_panels.h"

#include <algorithm>
#include <stdexcept>

namespace mant {

namespace {

/** Sign-magnitude nibble of one stored code (the MantPackedTiles
 *  re-encode rule: INT two's-complement folds into the same nibble
 *  decode the MANT microkernel already does). */
uint8_t
codeNibble(int8_t code, bool isInt)
{
    if (!isInt)
        return static_cast<uint8_t>(code) & 0xf;
    if (code < -7 || code > 7)
        throw std::invalid_argument(
            "kv panel store: INT code outside the [-7, 7] INT4 range");
    return code < 0 ? static_cast<uint8_t>(0x8 | -code)
                    : static_cast<uint8_t>(code);
}

/** Write element i of panel column c into a k-pair-major tile. */
void
writeNibble(uint8_t *dst, int64_t i, int c, uint8_t nib)
{
    uint8_t &b = dst[(i / 2) * kTilePanelCols + c];
    b = (i % 2 == 0) ? static_cast<uint8_t>((b & 0xf0) | nib)
                     : static_cast<uint8_t>((b & 0x0f) | (nib << 4));
}

MantGroupMeta
metaFrom(std::span<const float> scales, std::span<const uint8_t> coeff,
         std::span<const uint8_t> isInt, size_t c)
{
    MantGroupMeta m;
    m.scale = scales[c];
    m.a = coeff[c];
    m.isInt = isInt[c] != 0;
    return m;
}

} // namespace

KPanelStore::KPanelStore(int64_t headDim, int64_t groupSize)
    : headDim_(headDim),
      groupSize_(effectiveGroupSize(headDim, groupSize)),
      groupsPerRow_(groupsPerRowFor(headDim, groupSize))
{
    if (headDim <= 0)
        throw std::invalid_argument(
            "KPanelStore: headDim must be positive");
    groupByteOff_.resize(static_cast<size_t>(groupsPerRow_) + 1, 0);
    for (int64_t g = 0; g < groupsPerRow_; ++g) {
        const int64_t k0 = g * groupSize_;
        const int64_t len = std::min(groupSize_, headDim_ - k0);
        groupByteOff_[static_cast<size_t>(g) + 1] =
            groupByteOff_[static_cast<size_t>(g)] +
            (len + 1) / 2 * kTilePanelCols;
    }
    panelBytes_ = groupByteOff_[static_cast<size_t>(groupsPerRow_)];
}

void
KPanelStore::appendRow(std::span<const int8_t> codes,
                       std::span<const MantSelection> sels)
{
    if (static_cast<int64_t>(codes.size()) != headDim_ ||
        static_cast<int64_t>(sels.size()) != groupsPerRow_)
        throw std::invalid_argument("KPanelStore: append size mismatch");

    const int c = static_cast<int>(rows_ % kTilePanelCols);
    if (c == 0) {
        // First column of a new panel: allocate its byte and meta
        // blocks. Not-yet-appended columns read as INT / scale 0.
        codes_.resize(codes_.size() + static_cast<size_t>(panelBytes_),
                      0);
        const size_t metaGrow =
            static_cast<size_t>(groupsPerRow_ * kTilePanelCols);
        scales_.resize(scales_.size() + metaGrow, 0.0f);
        coeff_.resize(coeff_.size() + metaGrow, 0);
        isInt_.resize(isInt_.size() + metaGrow, 1);
    }
    const int64_t panel = rows_ / kTilePanelCols;
    for (int64_t g = 0; g < groupsPerRow_; ++g) {
        const MantSelection &sel = sels[static_cast<size_t>(g)];
        const size_t mi =
            tileMetaIndex(panel, g) + static_cast<size_t>(c);
        scales_[mi] = sel.scale;
        coeff_[mi] = static_cast<uint8_t>(sel.isInt ? 0 : sel.a);
        isInt_[mi] = sel.isInt ? 1 : 0;

        const int64_t k0 = g * groupSize_;
        const int64_t len = std::min(groupSize_, headDim_ - k0);
        uint8_t *dst = codes_.data() + panel * panelBytes_ +
                       groupByteOff_[static_cast<size_t>(g)];
        for (int64_t i = 0; i < len; ++i)
            writeNibble(dst, i, c,
                        codeNibble(codes[static_cast<size_t>(k0 + i)],
                                   sel.isInt));
    }
    flat_.insert(flat_.end(), codes.begin(), codes.end());
    ++rows_;
}

MantGroupMeta
KPanelStore::metaAt(int64_t row, int64_t group) const
{
    const int64_t p = row / kTilePanelCols;
    const size_t c = static_cast<size_t>(row % kTilePanelCols);
    return metaFrom(tileScales(p, group), tileCoeffs(p, group),
                    tileIsInt(p, group), c);
}

void
KPanelStore::reset()
{
    rows_ = 0;
    codes_.clear();
    scales_.clear();
    coeff_.clear();
    isInt_.clear();
    flat_.clear();
}

VPanelStore::VPanelStore(int64_t channels, int64_t window)
    : channels_(channels), window_(window),
      panels_((channels + kTilePanelCols - 1) / kTilePanelCols),
      tileBytes_((window + 1) / 2 * kTilePanelCols)
{
    if (channels <= 0 || window <= 0)
        throw std::invalid_argument(
            "VPanelStore: channels/window must be positive");
}

void
VPanelStore::appendWindow(std::span<const int8_t> colCodes,
                          std::span<const MantSelection> sels)
{
    if (static_cast<int64_t>(colCodes.size()) != channels_ * window_ ||
        static_cast<int64_t>(sels.size()) != channels_)
        throw std::invalid_argument(
            "VPanelStore: append size mismatch");

    const size_t codeBase = codes_.size();
    codes_.resize(codeBase +
                      static_cast<size_t>(panels_ * tileBytes_),
                  0);
    const size_t metaGrow =
        static_cast<size_t>(panels_ * kTilePanelCols);
    // Padded channel columns stay INT / scale 0.
    scales_.resize(scales_.size() + metaGrow, 0.0f);
    coeff_.resize(coeff_.size() + metaGrow, 0);
    isInt_.resize(isInt_.size() + metaGrow, 1);

    const int64_t w = windows_;
    for (int64_t ch = 0; ch < channels_; ++ch) {
        const MantSelection &sel = sels[static_cast<size_t>(ch)];
        const int64_t panel = ch / kTilePanelCols;
        const int c = static_cast<int>(ch % kTilePanelCols);
        const size_t mi =
            tileMetaIndex(w, panel) + static_cast<size_t>(c);
        scales_[mi] = sel.scale;
        coeff_[mi] = static_cast<uint8_t>(sel.isInt ? 0 : sel.a);
        isInt_[mi] = sel.isInt ? 1 : 0;

        const int8_t *col = colCodes.data() + ch * window_;
        uint8_t *dst =
            codes_.data() + (w * panels_ + panel) * tileBytes_;
        for (int64_t i = 0; i < window_; ++i)
            writeNibble(dst, i, c, codeNibble(col[i], sel.isInt));
    }

    // Flat view is row-major (position, channel), matching
    // reconstruct(): transpose the channel-major input.
    const size_t flatBase = flat_.size();
    flat_.resize(flatBase + static_cast<size_t>(window_ * channels_));
    for (int64_t r = 0; r < window_; ++r)
        for (int64_t ch = 0; ch < channels_; ++ch)
            flat_[flatBase + static_cast<size_t>(r * channels_ + ch)] =
                colCodes[static_cast<size_t>(ch * window_ + r)];
    ++windows_;
}

MantGroupMeta
VPanelStore::metaAt(int64_t window, int64_t channel) const
{
    const int64_t p = channel / kTilePanelCols;
    const size_t c = static_cast<size_t>(channel % kTilePanelCols);
    return metaFrom(tileScales(window, p), tileCoeffs(window, p),
                    tileIsInt(window, p), c);
}

void
VPanelStore::reset()
{
    windows_ = 0;
    codes_.clear();
    scales_.clear();
    coeff_.clear();
    isInt_.clear();
    flat_.clear();
}

} // namespace mant
