#include "core/kv_panels.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <string>

namespace mant {

namespace {

/** Sign-magnitude nibble of one stored code (the MantPackedTiles
 *  re-encode rule: INT two's-complement folds into the same nibble
 *  decode the MANT microkernel already does). */
uint8_t
codeNibble(int8_t code, bool isInt)
{
    if (!isInt)
        return static_cast<uint8_t>(code) & 0xf;
    if (code < -7 || code > 7)
        throw std::invalid_argument(
            "kv panel store: INT code outside the [-7, 7] INT4 range");
    return code < 0 ? static_cast<uint8_t>(0x8 | -code)
                    : static_cast<uint8_t>(code);
}

/** Write element i of panel column c into a k-pair-major tile. */
void
writeNibble(uint8_t *dst, int64_t i, int c, uint8_t nib)
{
    uint8_t &b = dst[(i / 2) * kTilePanelCols + c];
    b = (i % 2 == 0) ? static_cast<uint8_t>((b & 0xf0) | nib)
                     : static_cast<uint8_t>((b & 0x0f) | (nib << 4));
}

MantGroupMeta
metaFrom(std::span<const float> scales, std::span<const uint8_t> coeff,
         std::span<const uint8_t> isInt, size_t c)
{
    MantGroupMeta m;
    m.scale = scales[c];
    m.a = coeff[c];
    m.isInt = isInt[c] != 0;
    return m;
}

/** Round a block size up so every block starts float-aligned (the
 *  scales region sits at block offset 0). */
int64_t
roundUp4(int64_t bytes)
{
    return (bytes + 3) / 4 * 4;
}

int64_t
kPanelCodeBytes(int64_t headDim, int64_t groupSize)
{
    const int64_t gs = effectiveGroupSize(headDim, groupSize);
    const int64_t groups = groupsPerRowFor(headDim, groupSize);
    int64_t bytes = 0;
    for (int64_t g = 0; g < groups; ++g) {
        const int64_t len = std::min(gs, headDim - g * gs);
        bytes += (len + 1) / 2 * kTilePanelCols;
    }
    return bytes;
}

} // namespace

namespace detail {

void
PagedBlockList::configure(int64_t blockBytes, KvPageAllocator *alloc)
{
    blockBytes_ = blockBytes;
    if (alloc == nullptr) {
        owned_ = std::make_unique<KvPageAllocator>(blockBytes, 0);
        alloc_ = owned_.get();
        blocksPerPage_ = 1;
        return;
    }
    owned_.reset();
    alloc_ = alloc;
    blocksPerPage_ = alloc->pageBytes() / blockBytes;
    if (blocksPerPage_ < 1)
        throw std::invalid_argument(
            "paged panel store: pool page (" +
            std::to_string(alloc->pageBytes()) +
            " bytes) cannot hold one panel block (" +
            std::to_string(blockBytes) + " bytes)");
}

PagedBlockList::PagedBlockList(PagedBlockList &&other) noexcept
    : blockBytes_(other.blockBytes_),
      blocksPerPage_(other.blocksPerPage_), blocks_(other.blocks_),
      alloc_(other.alloc_), owned_(std::move(other.owned_)),
      pageIds_(std::move(other.pageIds_))
{
    other.blocks_ = 0;
    other.alloc_ = nullptr;
    other.pageIds_.clear();
}

PagedBlockList &
PagedBlockList::operator=(PagedBlockList &&other) noexcept
{
    if (this != &other) {
        releasePages();
        blockBytes_ = other.blockBytes_;
        blocksPerPage_ = other.blocksPerPage_;
        blocks_ = other.blocks_;
        alloc_ = other.alloc_;
        owned_ = std::move(other.owned_);
        pageIds_ = std::move(other.pageIds_);
        other.blocks_ = 0;
        other.alloc_ = nullptr;
        other.pageIds_.clear();
    }
    return *this;
}

uint8_t *
PagedBlockList::claimBlock()
{
    assert(alloc_ != nullptr &&
           "PagedBlockList: claimBlock on an unconfigured list");
    if (blocks_ % blocksPerPage_ == 0)
        pageIds_.push_back(alloc_->alloc());
    uint8_t *blk = blockPtr(blocks_);
    std::memset(blk, 0, static_cast<size_t>(blockBytes_));
    ++blocks_;
    return blk;
}

void
PagedBlockList::releasePages()
{
    for (size_t i = pageIds_.size(); i > 0; --i)
        alloc_->free(pageIds_[i - 1]);
    pageIds_.clear();
    blocks_ = 0;
}

} // namespace detail

KPanelStore::KPanelStore(int64_t headDim, int64_t groupSize,
                         KvPageAllocator *alloc)
    : headDim_(headDim),
      groupSize_(effectiveGroupSize(headDim, groupSize)),
      groupsPerRow_(groupsPerRowFor(headDim, groupSize))
{
    if (headDim <= 0)
        throw std::invalid_argument(
            "KPanelStore: headDim must be positive");
    groupByteOff_.resize(static_cast<size_t>(groupsPerRow_) + 1, 0);
    for (int64_t g = 0; g < groupsPerRow_; ++g) {
        const int64_t k0 = g * groupSize_;
        const int64_t len = std::min(groupSize_, headDim_ - k0);
        groupByteOff_[static_cast<size_t>(g) + 1] =
            groupByteOff_[static_cast<size_t>(g)] +
            (len + 1) / 2 * kTilePanelCols;
    }
    panelBytes_ = groupByteOff_[static_cast<size_t>(groupsPerRow_)];

    const int64_t metaCount = groupsPerRow_ * kTilePanelCols;
    coeffOff_ = metaCount * static_cast<int64_t>(sizeof(float));
    isIntOff_ = coeffOff_ + metaCount;
    codesOff_ = isIntOff_ + metaCount;
    flatOff_ = codesOff_ + panelBytes_;
    blocks_.configure(roundUp4(flatOff_ + kTilePanelCols * headDim_),
                      alloc);
}

int64_t
KPanelStore::blockBytesFor(int64_t headDim, int64_t groupSize)
{
    if (headDim <= 0)
        throw std::invalid_argument(
            "KPanelStore: headDim must be positive");
    const int64_t metaCount =
        groupsPerRowFor(headDim, groupSize) * kTilePanelCols;
    return roundUp4(metaCount *
                        (static_cast<int64_t>(sizeof(float)) + 2) +
                    kPanelCodeBytes(headDim, groupSize) +
                    kTilePanelCols * headDim);
}

void
KPanelStore::appendRow(std::span<const int8_t> codes,
                       std::span<const MantSelection> sels)
{
    if (static_cast<int64_t>(codes.size()) != headDim_ ||
        static_cast<int64_t>(sels.size()) != groupsPerRow_)
        throw std::invalid_argument("KPanelStore: append size mismatch");

    const int c = static_cast<int>(rows_ % kTilePanelCols);
    uint8_t *blk;
    if (c == 0) {
        // First column of a new panel: claim its block. claimBlock()
        // zero-fills; isInt defaults to 1 so not-yet-appended columns
        // read as INT / scale 0.
        blk = blocks_.claimBlock();
        std::memset(blk + isIntOff_, 1,
                    static_cast<size_t>(groupsPerRow_ * kTilePanelCols));
    } else {
        blk = blocks_.blockPtr(rows_ / kTilePanelCols);
    }

    float *scales = reinterpret_cast<float *>(blk);
    for (int64_t g = 0; g < groupsPerRow_; ++g) {
        const MantSelection &sel = sels[static_cast<size_t>(g)];
        const int64_t mi = g * kTilePanelCols + c;
        scales[mi] = sel.scale;
        blk[coeffOff_ + mi] =
            static_cast<uint8_t>(sel.isInt ? 0 : sel.a);
        blk[isIntOff_ + mi] = sel.isInt ? 1 : 0;

        const int64_t k0 = g * groupSize_;
        const int64_t len = std::min(groupSize_, headDim_ - k0);
        uint8_t *dst = blk + codesOff_ +
                       groupByteOff_[static_cast<size_t>(g)];
        for (int64_t i = 0; i < len; ++i)
            writeNibble(dst, i, c,
                        codeNibble(codes[static_cast<size_t>(k0 + i)],
                                   sel.isInt));
    }
    std::memcpy(blk + flatOff_ + c * headDim_, codes.data(),
                static_cast<size_t>(headDim_));
    ++rows_;
}

MantGroupMeta
KPanelStore::metaAt(int64_t row, int64_t group) const
{
    const int64_t p = row / kTilePanelCols;
    const size_t c = static_cast<size_t>(row % kTilePanelCols);
    return metaFrom(tileScales(p, group), tileCoeffs(p, group),
                    tileIsInt(p, group), c);
}

void
KPanelStore::reset()
{
    rows_ = 0;
    blocks_.releasePages();
}

VPanelStore::VPanelStore(int64_t channels, int64_t window,
                         KvPageAllocator *alloc)
    : channels_(channels), window_(window),
      panels_((channels + kTilePanelCols - 1) / kTilePanelCols),
      tileBytes_((window + 1) / 2 * kTilePanelCols)
{
    if (channels <= 0 || window <= 0)
        throw std::invalid_argument(
            "VPanelStore: channels/window must be positive");
    const int64_t metaCount = panels_ * kTilePanelCols;
    coeffOff_ = metaCount * static_cast<int64_t>(sizeof(float));
    isIntOff_ = coeffOff_ + metaCount;
    codesOff_ = isIntOff_ + metaCount;
    flatOff_ = codesOff_ + panels_ * tileBytes_;
    blocks_.configure(roundUp4(flatOff_ + window_ * channels_), alloc);
}

int64_t
VPanelStore::blockBytesFor(int64_t channels, int64_t window)
{
    if (channels <= 0 || window <= 0)
        throw std::invalid_argument(
            "VPanelStore: channels/window must be positive");
    const int64_t panels =
        (channels + kTilePanelCols - 1) / kTilePanelCols;
    const int64_t metaCount = panels * kTilePanelCols;
    return roundUp4(metaCount *
                        (static_cast<int64_t>(sizeof(float)) + 2) +
                    panels * ((window + 1) / 2 * kTilePanelCols) +
                    window * channels);
}

void
VPanelStore::appendWindow(std::span<const int8_t> colCodes,
                          std::span<const MantSelection> sels)
{
    if (static_cast<int64_t>(colCodes.size()) != channels_ * window_ ||
        static_cast<int64_t>(sels.size()) != channels_)
        throw std::invalid_argument(
            "VPanelStore: append size mismatch");

    // One block per finalized window. claimBlock() zero-fills; isInt
    // defaults to 1 so padded channel columns read as INT / scale 0.
    uint8_t *blk = blocks_.claimBlock();
    std::memset(blk + isIntOff_, 1,
                static_cast<size_t>(panels_ * kTilePanelCols));

    float *scales = reinterpret_cast<float *>(blk);
    for (int64_t ch = 0; ch < channels_; ++ch) {
        const MantSelection &sel = sels[static_cast<size_t>(ch)];
        const int64_t panel = ch / kTilePanelCols;
        const int c = static_cast<int>(ch % kTilePanelCols);
        const int64_t mi = panel * kTilePanelCols + c;
        scales[mi] = sel.scale;
        blk[coeffOff_ + mi] =
            static_cast<uint8_t>(sel.isInt ? 0 : sel.a);
        blk[isIntOff_ + mi] = sel.isInt ? 1 : 0;

        const int8_t *col = colCodes.data() + ch * window_;
        uint8_t *dst = blk + codesOff_ + panel * tileBytes_;
        for (int64_t i = 0; i < window_; ++i)
            writeNibble(dst, i, c, codeNibble(col[i], sel.isInt));
    }

    // Flat view is row-major (position, channel), matching
    // reconstruct(): transpose the channel-major input.
    int8_t *flat = reinterpret_cast<int8_t *>(blk + flatOff_);
    for (int64_t r = 0; r < window_; ++r)
        for (int64_t ch = 0; ch < channels_; ++ch)
            flat[r * channels_ + ch] =
                colCodes[static_cast<size_t>(ch * window_ + r)];
    ++windows_;
}

MantGroupMeta
VPanelStore::metaAt(int64_t window, int64_t channel) const
{
    const int64_t p = channel / kTilePanelCols;
    const size_t c = static_cast<size_t>(channel % kTilePanelCols);
    return metaFrom(tileScales(window, p), tileCoeffs(window, p),
                    tileIsInt(window, p), c);
}

void
VPanelStore::reset()
{
    windows_ = 0;
    blocks_.releasePages();
}

} // namespace mant
