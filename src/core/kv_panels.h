/**
 * @file
 * Append-only panel stores for quantized KV-cache codes — the storage
 * half of the fused integer attention path — backed by fixed-size
 * pages from a KvPageAllocator (core/kv_pages.h).
 *
 * MantPackedTiles repacks a finished weight matrix once; a KV cache
 * grows one position per decode step, so its packed layout must accept
 * appends without ever rewriting what is already stored. Both stores
 * here keep the exact tile geometry the fusedTilePanel microkernel
 * streams (two 4-bit codes per byte, k-pair-major × panel-column-minor
 * within a group, SoA per-tile meta — see docs/FORMAT.md), but grow it
 * along the axis the cache grows:
 *
 *  - KPanelStore (K cache, spatial groups along headDim): panel
 *    columns are sequence positions. Appending position r touches only
 *    column r % 8 of panel r / 8 — a new panel's block is claimed when
 *    its first column arrives, and existing bytes hold other columns'
 *    nibbles, never this one's. QK^T over positions p..p+7 is then one
 *    microkernel call per headDim group.
 *
 *  - VPanelStore (V cache, temporal groups along the sequence): panel
 *    columns are channels, so the panel count is fixed at construction
 *    and every finalized process window claims one complete block (all
 *    panels × one group). P·V over one window is one microkernel call
 *    per 8 channels.
 *
 * Storage is paged, not monolithic: the unit of growth is a fixed-size
 * *panel block* holding everything one panel (K) or one window (V)
 * needs — tile meta, packed codes, and the flat one-code-per-byte row
 * view the reference oracle reads:
 *
 *     [ scales f32 ×(meta) | coeff u8 ×(meta) | isInt u8 ×(meta)
 *       | packed codes | flat row codes ]      (size rounded up to 4)
 *
 * Blocks are claimed from a KvPageAllocator whose page size is a whole
 * multiple of the block size; with no allocator supplied the store
 * spins up a private unbounded one-block-per-page pool, so there is a
 * single code path. Claimed blocks never move (appends stay
 * placement-only, pointers handed to the kernels stay stable) and a
 * recycled page's stale bytes are re-initialized on claim: codes and
 * scales to 0, isInt to 1, so not-yet-appended K columns and padded V
 * channels combine to exactly zero in the fused kernels. reset() gives
 * every page back to the pool in reverse claim order, so a reset +
 * identical refill re-claims identical pages (LIFO free list) —
 * byte-stable placement, which keeps pooled-slot reuse deterministic.
 *
 * Neither store is the model-facing value storage — the dequantized
 * floats stay where they were (HeadKvCache / the temporal quantizer);
 * these are the integer twins the fused path consumes.
 */

#ifndef MANT_CORE_KV_PANELS_H_
#define MANT_CORE_KV_PANELS_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/coeff_search.h"
#include "core/fused_gemm.h"
#include "core/kv_pages.h"
#include "core/simd.h"

namespace mant {

namespace detail {

/**
 * Page-backed list of fixed-size blocks: the growth engine shared by
 * both panel stores. Owns the page ids it claims (never the allocator
 * itself unless self-pooled) and returns them on reset / destruction /
 * move-assignment-over — pages cannot leak by construction.
 */
class PagedBlockList
{
  public:
    PagedBlockList() = default;

    /** Bind geometry + pool. With alloc == nullptr a private unbounded
     *  one-block-per-page allocator is created. Throws
     *  std::invalid_argument when a shared pool's page cannot hold at
     *  least one block. */
    void configure(int64_t blockBytes, KvPageAllocator *alloc);

    ~PagedBlockList() { releasePages(); }
    PagedBlockList(PagedBlockList &&other) noexcept;
    PagedBlockList &operator=(PagedBlockList &&other) noexcept;
    PagedBlockList(const PagedBlockList &) = delete;
    PagedBlockList &operator=(const PagedBlockList &) = delete;

    /** Claim the next block (zero-filled). Throws KvPoolExhausted when
     *  the shared pool's cap is hit; the list is unchanged then. */
    uint8_t *claimBlock();

    uint8_t *
    blockPtr(int64_t block)
    {
        return alloc_->data(
                   pageIds_[static_cast<size_t>(block / blocksPerPage_)]) +
               (block % blocksPerPage_) * blockBytes_;
    }
    const uint8_t *
    blockPtr(int64_t block) const
    {
        return alloc_->data(
                   pageIds_[static_cast<size_t>(block / blocksPerPage_)]) +
               (block % blocksPerPage_) * blockBytes_;
    }

    int64_t blocks() const { return blocks_; }
    int64_t pagesHeld() const
    {
        return static_cast<int64_t>(pageIds_.size());
    }

    /** Pool pages growing to `totalBlocks` blocks would claim beyond
     *  the pages already held — exact, because claimBlock() claims a
     *  page precisely when the block count crosses a page boundary.
     *  A scheduler can therefore reserve (or make) headroom BEFORE
     *  appending, keeping exhaustion out of the growth path. */
    int64_t
    pagesNeededFor(int64_t totalBlocks) const
    {
        const int64_t pagesAfter =
            (totalBlocks + blocksPerPage_ - 1) / blocksPerPage_;
        return std::max<int64_t>(0, pagesAfter - pagesHeld());
    }

    /** Free every claimed page (reverse claim order → a LIFO pool
     *  hands the same pages back on an identical refill). */
    void releasePages();

  private:
    int64_t blockBytes_ = 0;
    int64_t blocksPerPage_ = 1;
    int64_t blocks_ = 0;
    KvPageAllocator *alloc_ = nullptr;
    /** Private pool when none was supplied; on the heap so blockPtr()
     *  results survive moves of this list. */
    std::unique_ptr<KvPageAllocator> owned_;
    std::vector<KvPageId> pageIds_;
};

} // namespace detail

/**
 * Panel store of K-cache codes: positions are panel columns, groups
 * run along the head dimension. Append-only — one appendRow() per
 * cached position, no repacking of earlier positions ever.
 */
class KPanelStore
{
  public:
    KPanelStore() = default;

    /**
     * @param headDim   Elements per K row.
     * @param groupSize Quantization group size along headDim
     *                  (non-positive means one whole-row group).
     * @param alloc     Shared page pool (must outlive the store), or
     *                  nullptr for a private unbounded pool.
     */
    KPanelStore(int64_t headDim, int64_t groupSize,
                KvPageAllocator *alloc = nullptr);

    /** Bytes of one panel block for this geometry — what a shared
     *  pool's page size must be a multiple of. */
    static int64_t blockBytesFor(int64_t headDim, int64_t groupSize);

    /**
     * Append one position's codes (flat, headDim bytes, rowCodes()
     * convention) with its per-group selections. Throws
     * std::invalid_argument on length mismatch or an INT code outside
     * [-7, 7] (sign-magnitude nibbles cannot represent -8), and
     * KvPoolExhausted when a new panel block is due but the shared
     * pool is out of pages (the store is unchanged then).
     */
    void appendRow(std::span<const int8_t> codes,
                   std::span<const MantSelection> sels);

    int64_t rows() const { return rows_; }
    int64_t headDim() const { return headDim_; }
    int64_t groupSize() const { return groupSize_; }
    int64_t groupsPerRow() const { return groupsPerRow_; }

    /** Panels currently allocated: ceil(rows / kTilePanelCols). */
    int64_t panels() const
    {
        return (rows_ + kTilePanelCols - 1) / kTilePanelCols;
    }

    /** Pool pages this store currently holds. */
    int64_t pagesHeld() const { return blocks_.pagesHeld(); }

    /** Exact pool pages the next `rows` appendRow() calls will claim
     *  (a panel block per kTilePanelCols positions). */
    int64_t
    poolPagesForRows(int64_t rows) const
    {
        return blocks_.pagesNeededFor(
            (rows_ + rows + kTilePanelCols - 1) / kTilePanelCols);
    }

    /** Packed code block of one (panel, group) tile. */
    const uint8_t *
    tileCodes(int64_t panel, int64_t group) const
    {
        return blocks_.blockPtr(panel) + codesOff_ +
               groupByteOff_[static_cast<size_t>(group)];
    }

    /** Per-tile metadata, kTilePanelCols entries each. Columns not yet
     *  appended read as INT with scale 0, so the combine loop zeroes
     *  them out without branching. */
    std::span<const float>
    tileScales(int64_t panel, int64_t group) const
    {
        return {reinterpret_cast<const float *>(blocks_.blockPtr(panel)) +
                    group * kTilePanelCols,
                static_cast<size_t>(kTilePanelCols)};
    }
    std::span<const uint8_t>
    tileCoeffs(int64_t panel, int64_t group) const
    {
        return {blocks_.blockPtr(panel) + coeffOff_ +
                    group * kTilePanelCols,
                static_cast<size_t>(kTilePanelCols)};
    }
    std::span<const uint8_t>
    tileIsInt(int64_t panel, int64_t group) const
    {
        return {blocks_.blockPtr(panel) + isIntOff_ +
                    group * kTilePanelCols,
                static_cast<size_t>(kTilePanelCols)};
    }

    /** Flat codes of one appended position (reference-oracle view). */
    std::span<const int8_t>
    rowCodes(int64_t row) const
    {
        return {reinterpret_cast<const int8_t *>(
                    blocks_.blockPtr(row / kTilePanelCols)) +
                    flatOff_ + (row % kTilePanelCols) * headDim_,
                static_cast<size_t>(headDim_)};
    }

    /** Metadata of one (row, group), as stored in the tile meta. */
    MantGroupMeta metaAt(int64_t row, int64_t group) const;

    /** Drop all rows and give every page back to the pool. */
    void reset();

  private:
    int64_t headDim_ = 0, groupSize_ = 0, groupsPerRow_ = 0;
    int64_t panelBytes_ = 0;
    /** Block-internal byte offsets (scales sit at offset 0). */
    int64_t coeffOff_ = 0, isIntOff_ = 0, codesOff_ = 0, flatOff_ = 0;
    int64_t rows_ = 0;
    detail::PagedBlockList blocks_;
    /** Byte offset of each group's code block within the panel code
     *  region. */
    std::vector<int64_t> groupByteOff_;
};

/**
 * Panel store of finalized V-cache codes: channels are panel columns,
 * groups are the temporal process windows. One appendWindow() per
 * finalizeWindow() — the window's codes arrive complete, so the block
 * is written once and never touched again.
 */
class VPanelStore
{
  public:
    VPanelStore() = default;

    /**
     * @param channels Head dimension (panel columns; fixed).
     * @param window   Process window size (elements per group).
     * @param alloc    Shared page pool (must outlive the store), or
     *                 nullptr for a private unbounded pool.
     */
    VPanelStore(int64_t channels, int64_t window,
                KvPageAllocator *alloc = nullptr);

    /** Bytes of one window block for this geometry. */
    static int64_t blockBytesFor(int64_t channels, int64_t window);

    /**
     * Append one finalized window. `colCodes` is channel-major:
     * channel c's window-length code column starts at c * window
     * (rowCodes() convention per column). `sels` is one selection per
     * channel. Throws std::invalid_argument on size mismatch or an
     * INT code outside [-7, 7], and KvPoolExhausted when the shared
     * pool is out of pages (the store is unchanged then).
     */
    void appendWindow(std::span<const int8_t> colCodes,
                      std::span<const MantSelection> sels);

    int64_t channels() const { return channels_; }
    int64_t window() const { return window_; }
    int64_t windows() const { return windows_; }

    /** Channel panels: ceil(channels / kTilePanelCols), fixed. */
    int64_t panels() const { return panels_; }

    /** Pool pages this store currently holds. */
    int64_t pagesHeld() const { return blocks_.pagesHeld(); }

    /** Exact pool pages growing to `totalWindows` finalized windows
     *  will claim (one block per window). */
    int64_t
    poolPagesForWindows(int64_t totalWindows) const
    {
        return blocks_.pagesNeededFor(totalWindows);
    }

    /** Packed code block of one (window, panel) tile. */
    const uint8_t *
    tileCodes(int64_t window, int64_t panel) const
    {
        return blocks_.blockPtr(window) + codesOff_ + panel * tileBytes_;
    }

    /** Per-tile metadata, kTilePanelCols entries each. Padded channel
     *  columns (channel >= channels()) read as INT with scale 0. */
    std::span<const float>
    tileScales(int64_t window, int64_t panel) const
    {
        return {reinterpret_cast<const float *>(
                    blocks_.blockPtr(window)) +
                    panel * kTilePanelCols,
                static_cast<size_t>(kTilePanelCols)};
    }
    std::span<const uint8_t>
    tileCoeffs(int64_t window, int64_t panel) const
    {
        return {blocks_.blockPtr(window) + coeffOff_ +
                    panel * kTilePanelCols,
                static_cast<size_t>(kTilePanelCols)};
    }
    std::span<const uint8_t>
    tileIsInt(int64_t window, int64_t panel) const
    {
        return {blocks_.blockPtr(window) + isIntOff_ +
                    panel * kTilePanelCols,
                static_cast<size_t>(kTilePanelCols)};
    }

    /** Flat codes of one finalized row (position), across channels —
     *  the reference-oracle view, row-major like reconstruct(). A
     *  window's rows are contiguous within its block, so striding
     *  from rowCodes(w * window()) by channels() stays valid for the
     *  whole window. */
    std::span<const int8_t>
    rowCodes(int64_t row) const
    {
        return {reinterpret_cast<const int8_t *>(
                    blocks_.blockPtr(row / window_)) +
                    flatOff_ + (row % window_) * channels_,
                static_cast<size_t>(channels_)};
    }

    /** Metadata of (window, channel), as stored in the tile meta. */
    MantGroupMeta metaAt(int64_t window, int64_t channel) const;

    /** Drop all windows and give every page back to the pool. */
    void reset();

  private:
    int64_t channels_ = 0, window_ = 0, panels_ = 0;
    int64_t tileBytes_ = 0;
    /** Block-internal byte offsets (scales sit at offset 0). */
    int64_t coeffOff_ = 0, isIntOff_ = 0, codesOff_ = 0, flatOff_ = 0;
    int64_t windows_ = 0;
    detail::PagedBlockList blocks_;
};

} // namespace mant

#endif // MANT_CORE_KV_PANELS_H_
