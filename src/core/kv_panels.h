/**
 * @file
 * Append-only panel stores for quantized KV-cache codes — the storage
 * half of the fused integer attention path.
 *
 * MantPackedTiles repacks a finished weight matrix once; a KV cache
 * grows one position per decode step, so its packed layout must accept
 * appends without ever rewriting what is already stored. Both stores
 * here keep the exact tile geometry the fusedTilePanel microkernel
 * streams (two 4-bit codes per byte, k-pair-major × panel-column-minor
 * within a group, SoA per-tile meta — see docs/FORMAT.md), but grow it
 * along the axis the cache grows:
 *
 *  - KPanelStore (K cache, spatial groups along headDim): panel
 *    columns are sequence positions. Appending position r touches only
 *    column r % 8 of panel r / 8 — a new panel's byte/meta block is
 *    allocated when its first column arrives, and existing bytes hold
 *    other columns' nibbles, never this one's. QK^T over positions
 *    p..p+7 is then one microkernel call per headDim group.
 *
 *  - VPanelStore (V cache, temporal groups along the sequence): panel
 *    columns are channels, so the panel count is fixed at construction
 *    and every finalized process window appends one complete group
 *    block (all panels × one group) at the end of the code vector.
 *    P·V over one window is one microkernel call per 8 channels.
 *
 * Each store also keeps the flat one-code-per-byte row view (MANT
 * groups as sign-magnitude codes, INT groups as two's-complement int8,
 * the MantQuantizedMatrix::rowCodes() convention): the packed panels
 * feed the fused kernels, the flat codes feed the attentionReference
 * oracle, and round-trip tests pin the two representations to each
 * other. Neither store is the model-facing value storage — the
 * dequantized floats stay where they were (HeadKvCache / the temporal
 * quantizer); these are the integer twins the fused path consumes.
 */

#ifndef MANT_CORE_KV_PANELS_H_
#define MANT_CORE_KV_PANELS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/coeff_search.h"
#include "core/fused_gemm.h"
#include "core/simd.h"

namespace mant {

/**
 * Panel store of K-cache codes: positions are panel columns, groups
 * run along the head dimension. Append-only — one appendRow() per
 * cached position, no repacking of earlier positions ever.
 */
class KPanelStore
{
  public:
    KPanelStore() = default;

    /**
     * @param headDim   Elements per K row.
     * @param groupSize Quantization group size along headDim
     *                  (non-positive means one whole-row group).
     */
    KPanelStore(int64_t headDim, int64_t groupSize);

    /**
     * Append one position's codes (flat, headDim bytes, rowCodes()
     * convention) with its per-group selections. Throws
     * std::invalid_argument on length mismatch or an INT code outside
     * [-7, 7] (sign-magnitude nibbles cannot represent -8).
     */
    void appendRow(std::span<const int8_t> codes,
                   std::span<const MantSelection> sels);

    int64_t rows() const { return rows_; }
    int64_t headDim() const { return headDim_; }
    int64_t groupSize() const { return groupSize_; }
    int64_t groupsPerRow() const { return groupsPerRow_; }

    /** Panels currently allocated: ceil(rows / kTilePanelCols). */
    int64_t panels() const
    {
        return (rows_ + kTilePanelCols - 1) / kTilePanelCols;
    }

    /** Packed code block of one (panel, group) tile. */
    const uint8_t *
    tileCodes(int64_t panel, int64_t group) const
    {
        return codes_.data() + panel * panelBytes_ +
               groupByteOff_[static_cast<size_t>(group)];
    }

    /** Per-tile metadata, kTilePanelCols entries each. Columns not yet
     *  appended read as INT with scale 0, so the combine loop zeroes
     *  them out without branching. */
    std::span<const float>
    tileScales(int64_t panel, int64_t group) const
    {
        return {scales_.data() + tileMetaIndex(panel, group),
                static_cast<size_t>(kTilePanelCols)};
    }
    std::span<const uint8_t>
    tileCoeffs(int64_t panel, int64_t group) const
    {
        return {coeff_.data() + tileMetaIndex(panel, group),
                static_cast<size_t>(kTilePanelCols)};
    }
    std::span<const uint8_t>
    tileIsInt(int64_t panel, int64_t group) const
    {
        return {isInt_.data() + tileMetaIndex(panel, group),
                static_cast<size_t>(kTilePanelCols)};
    }

    /** Flat codes of one appended position (reference-oracle view). */
    std::span<const int8_t>
    rowCodes(int64_t row) const
    {
        return {flat_.data() + row * headDim_,
                static_cast<size_t>(headDim_)};
    }

    /** Metadata of one (row, group), as stored in the tile meta. */
    MantGroupMeta metaAt(int64_t row, int64_t group) const;

    /** Drop all rows, keeping storage capacity (pooled-slot reuse). */
    void reset();

  private:
    size_t
    tileMetaIndex(int64_t panel, int64_t group) const
    {
        return static_cast<size_t>(
            (panel * groupsPerRow_ + group) * kTilePanelCols);
    }

    int64_t headDim_ = 0, groupSize_ = 0, groupsPerRow_ = 0;
    int64_t panelBytes_ = 0;
    int64_t rows_ = 0;
    std::vector<uint8_t> codes_;
    std::vector<float> scales_;
    std::vector<uint8_t> coeff_;
    std::vector<uint8_t> isInt_;
    std::vector<int8_t> flat_;
    /** Byte offset of each group's code block within a panel. */
    std::vector<int64_t> groupByteOff_;
};

/**
 * Panel store of finalized V-cache codes: channels are panel columns,
 * groups are the temporal process windows. One appendWindow() per
 * finalizeWindow() — the window's codes arrive complete, so the group
 * block is written once and never touched again.
 */
class VPanelStore
{
  public:
    VPanelStore() = default;

    /**
     * @param channels Head dimension (panel columns; fixed).
     * @param window   Process window size (elements per group).
     */
    VPanelStore(int64_t channels, int64_t window);

    /**
     * Append one finalized window. `colCodes` is channel-major:
     * channel c's window-length code column starts at c * window
     * (rowCodes() convention per column). `sels` is one selection per
     * channel. Throws std::invalid_argument on size mismatch or an
     * INT code outside [-7, 7].
     */
    void appendWindow(std::span<const int8_t> colCodes,
                      std::span<const MantSelection> sels);

    int64_t channels() const { return channels_; }
    int64_t window() const { return window_; }
    int64_t windows() const { return windows_; }

    /** Channel panels: ceil(channels / kTilePanelCols), fixed. */
    int64_t panels() const { return panels_; }

    /** Packed code block of one (window, panel) tile. */
    const uint8_t *
    tileCodes(int64_t window, int64_t panel) const
    {
        return codes_.data() +
               (window * panels_ + panel) * tileBytes_;
    }

    /** Per-tile metadata, kTilePanelCols entries each. Padded channel
     *  columns (channel >= channels()) read as INT with scale 0. */
    std::span<const float>
    tileScales(int64_t window, int64_t panel) const
    {
        return {scales_.data() + tileMetaIndex(window, panel),
                static_cast<size_t>(kTilePanelCols)};
    }
    std::span<const uint8_t>
    tileCoeffs(int64_t window, int64_t panel) const
    {
        return {coeff_.data() + tileMetaIndex(window, panel),
                static_cast<size_t>(kTilePanelCols)};
    }
    std::span<const uint8_t>
    tileIsInt(int64_t window, int64_t panel) const
    {
        return {isInt_.data() + tileMetaIndex(window, panel),
                static_cast<size_t>(kTilePanelCols)};
    }

    /** Flat codes of one finalized row (position), across channels —
     *  the reference-oracle view, row-major like reconstruct(). */
    std::span<const int8_t>
    rowCodes(int64_t row) const
    {
        return {flat_.data() + row * channels_,
                static_cast<size_t>(channels_)};
    }

    /** Metadata of (window, channel), as stored in the tile meta. */
    MantGroupMeta metaAt(int64_t window, int64_t channel) const;

    /** Drop all windows, keeping storage capacity. */
    void reset();

  private:
    size_t
    tileMetaIndex(int64_t window, int64_t panel) const
    {
        return static_cast<size_t>(
            (window * panels_ + panel) * kTilePanelCols);
    }

    int64_t channels_ = 0, window_ = 0, panels_ = 0;
    int64_t tileBytes_ = 0;
    int64_t windows_ = 0;
    std::vector<uint8_t> codes_;
    std::vector<float> scales_;
    std::vector<uint8_t> coeff_;
    std::vector<uint8_t> isInt_;
    std::vector<int8_t> flat_;
};

} // namespace mant

#endif // MANT_CORE_KV_PANELS_H_
