#include "core/kv_quant.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/simd.h"
#include "quant/fixed_formats.h"
#include "tensor/fp16.h"

namespace mant {

namespace {

/** Shared body of the two spatialQuantizeRow overloads; `codes` may
 *  be null (no capture). */
std::vector<MantSelection>
spatialQuantizeRowImpl(std::span<const float> values, int64_t groupSize,
                       const VarianceSelector &selector,
                       std::span<float> out, int8_t *codes,
                       bool fp16Scale)
{
    if (values.size() != out.size())
        throw std::invalid_argument("spatialQuantizeRow: size mismatch");
    const int64_t n = static_cast<int64_t>(values.size());
    const int64_t g = groupSize > 0 ? groupSize : n;

    std::vector<MantSelection> selections;
    selections.reserve(static_cast<size_t>((n + g - 1) / g));

    // Resolve the kernel backend once per row, not once per group.
    const SimdOps &ops = simdOps();
    for (int64_t g0 = 0; g0 < n; g0 += g) {
        const int64_t len = std::min(g, n - g0);
        std::span<const float> group(values.data() + g0,
                                     static_cast<size_t>(len));
        StreamingStats st;
        st.addAll(group);
        MantSelection sel = selector.selectFromStats(st);
        sel.scale = applySelection(
            ops, group, sel,
            std::span<float>(out.data() + g0, static_cast<size_t>(len)),
            fp16Scale);
        if (codes != nullptr)
            encodeSelectedCodes(
                ops, group, sel,
                std::span<int8_t>(codes + g0,
                                  static_cast<size_t>(len)));
        selections.push_back(sel);
    }
    return selections;
}

} // namespace

std::vector<MantSelection>
spatialQuantizeRow(std::span<const float> values, int64_t groupSize,
                   const VarianceSelector &selector, std::span<float> out,
                   bool fp16Scale)
{
    return spatialQuantizeRowImpl(values, groupSize, selector, out,
                                  nullptr, fp16Scale);
}

std::vector<MantSelection>
spatialQuantizeRow(std::span<const float> values, int64_t groupSize,
                   const VarianceSelector &selector, std::span<float> out,
                   std::span<int8_t> codes, bool fp16Scale)
{
    if (codes.size() != values.size())
        throw std::invalid_argument(
            "spatialQuantizeRow: codes size mismatch");
    return spatialQuantizeRowImpl(values, groupSize, selector, out,
                                  codes.data(), fp16Scale);
}

void
encodeSelectedCodes(const SimdOps &ops, std::span<const float> group,
                    const MantSelection &sel, std::span<int8_t> codes)
{
    if (codes.size() != group.size())
        throw std::invalid_argument(
            "encodeSelectedCodes: size mismatch");
    const int64_t n = static_cast<int64_t>(group.size());
    if (sel.isInt) {
        // Encode through the INT4 level table (not round-half-away):
        // nearestLevel ties resolve to the lower level, exactly like
        // the quantizeUnit call inside applySelection, so a captured
        // code always decodes to the stored float — including exact
        // grid midpoints, where the two rounding rules differ.
        static constexpr int8_t kIdentityLut[15] = {
            -7, -6, -5, -4, -3, -2, -1, 0, 1, 2, 3, 4, 5, 6, 7};
        const std::span<const float> levels = int4Format().levels();
        ops.encodeCodes(group.data(), codes.data(), n, levels.data(),
                        static_cast<int>(levels.size()), kIdentityLut,
                        sel.scale);
    } else {
        const std::span<const float> levels =
            mantFormat(sel.a).levels();
        ops.encodeCodes(group.data(), codes.data(), n, levels.data(),
                        static_cast<int>(levels.size()),
                        mantIndexToCodeLut(), sel.scale);
    }
}

TemporalVQuantizer::TemporalVQuantizer(int64_t channels, int64_t window,
                                       const VarianceSelector &selector,
                                       bool fp16Scale, bool captureCodes,
                                       KvPageAllocator *pageAlloc)
    : channels_(channels), window_(window), selector_(selector),
      fp16Scale_(fp16Scale),
      channelScales_(static_cast<size_t>(channels), 1.0f),
      pending_(static_cast<size_t>(window * channels), 0),
      stats_(static_cast<size_t>(channels)),
      captureCodes_(captureCodes)
{
    if (channels <= 0 || window <= 0)
        throw std::invalid_argument(
            "TemporalVQuantizer: channels/window must be positive");
    if (captureCodes_) {
        panels_ = VPanelStore(channels, window, pageAlloc);
        colCodes_.resize(static_cast<size_t>(window * channels), 0);
    }
}

const VPanelStore &
TemporalVQuantizer::codePanels() const
{
    if (!captureCodes_)
        throw std::logic_error(
            "TemporalVQuantizer: codePanels() requires captureCodes");
    return panels_;
}

void
TemporalVQuantizer::deriveChannelScales(const Tensor &v)
{
    const int64_t rows = v.shape().dim(0);
    for (int64_t c = 0; c < channels_; ++c) {
        float m = 0.0f;
        for (int64_t r = 0; r < rows; ++r)
            m = std::max(m, std::fabs(v.at(r, c)));
        float s = m / 127.0f;
        if (fp16Scale_)
            s = fp16Round(s);
        if (s == 0.0f)
            s = 1.0f;
        channelScales_[static_cast<size_t>(c)] = s;
    }
    scalesDerived_ = true;
}

void
TemporalVQuantizer::pushPrefill(const Tensor &v)
{
    if (v.shape().rank() != 2 || v.shape().dim(1) != channels_)
        throw std::invalid_argument("pushPrefill: bad V shape");
    const int64_t rows = v.shape().dim(0);
    deriveChannelScales(v);

    // Full windows are spatially available: quantize straight to MANT
    // from the FP values (the prefill path of Sec. V-C).
    const int64_t full = (rows / window_) * window_;
    std::vector<float> column(static_cast<size_t>(window_));
    std::vector<float> column_out(static_cast<size_t>(window_));
    // Resolve the kernel backend once per prefill, not per column.
    const SimdOps &ops = simdOps();
    for (int64_t w0 = 0; w0 < full; w0 += window_) {
        const size_t base = finalized_.size();
        finalized_.resize(base +
                          static_cast<size_t>(window_ * channels_));
        for (int64_t c = 0; c < channels_; ++c) {
            StreamingStats st;
            for (int64_t r = 0; r < window_; ++r) {
                column[static_cast<size_t>(r)] = v.at(w0 + r, c);
                st.add(column[static_cast<size_t>(r)]);
            }
            MantSelection sel = selector_.selectFromStats(st);
            sel.scale = applySelection(ops, column, sel, column_out,
                                       fp16Scale_);
            if (captureCodes_)
                encodeSelectedCodes(
                    ops, column, sel,
                    std::span<int8_t>(colCodes_.data() + c * window_,
                                      static_cast<size_t>(window_)));
            selections_.push_back(sel);
            for (int64_t r = 0; r < window_; ++r) {
                finalized_[base +
                           static_cast<size_t>(r * channels_ + c)] =
                    column_out[static_cast<size_t>(r)];
            }
        }
        if (captureCodes_)
            panels_.appendWindow(
                colCodes_,
                std::span<const MantSelection>(
                    selections_.data() + selections_.size() -
                        static_cast<size_t>(channels_),
                    static_cast<size_t>(channels_)));
        finalizedRows_ += window_;
    }

    // Remainder rows seed the pending INT8 window.
    for (int64_t r = full; r < rows; ++r)
        pushDecode(v.row(r));
}

void
TemporalVQuantizer::pushDecode(std::span<const float> v)
{
    if (static_cast<int64_t>(v.size()) != channels_)
        throw std::invalid_argument("pushDecode: bad vector length");

    if (!scalesDerived_) {
        // First row ever pushed seeds the channel scales — the same
        // absmax/127 rule deriveChannelScales applies, restricted to
        // the rows seen so far (exactly this one). Keeps row-by-row
        // prompt folding free of look-ahead.
        for (int64_t c = 0; c < channels_; ++c) {
            float s = std::fabs(v[static_cast<size_t>(c)]) / 127.0f;
            if (fp16Scale_)
                s = fp16Round(s);
            if (s == 0.0f)
                s = 1.0f;
            channelScales_[static_cast<size_t>(c)] = s;
        }
        scalesDerived_ = true;
    }

    int8_t *row = pending_.data() +
                  static_cast<int64_t>(pendingFill_) * channels_;
    for (int64_t c = 0; c < channels_; ++c) {
        const float s = channelScales_[static_cast<size_t>(c)];
        const float q = std::round(v[static_cast<size_t>(c)] / s);
        const int8_t code = static_cast<int8_t>(
            std::clamp(q, -127.0f, 127.0f));
        row[c] = code;
        // The RQU accumulates statistics of the INT8-visible values.
        stats_[static_cast<size_t>(c)].add(static_cast<float>(code) * s);
    }
    ++pendingFill_;
    if (static_cast<int64_t>(pendingFill_) == window_)
        finalizeWindow();
}

void
TemporalVQuantizer::finalizeWindow()
{
    std::vector<float> column(static_cast<size_t>(window_));
    std::vector<float> column_out(static_cast<size_t>(window_));
    const size_t base = finalized_.size();
    finalized_.resize(base + static_cast<size_t>(window_ * channels_));
    // Resolve the kernel backend once per window, not per channel.
    const SimdOps &ops = simdOps();

    for (int64_t c = 0; c < channels_; ++c) {
        const float s = channelScales_[static_cast<size_t>(c)];
        for (int64_t r = 0; r < window_; ++r) {
            column[static_cast<size_t>(r)] =
                static_cast<float>(pending_[static_cast<size_t>(
                    r * channels_ + c)]) * s;
        }
        // Variance from the streamed Σv, Σv² (Eq. 7) picks the type.
        MantSelection sel =
            selector_.selectFromStats(stats_[static_cast<size_t>(c)]);
        sel.scale = applySelection(ops, column, sel, column_out,
                                   fp16Scale_);
        if (captureCodes_)
            encodeSelectedCodes(
                ops, column, sel,
                std::span<int8_t>(colCodes_.data() + c * window_,
                                  static_cast<size_t>(window_)));
        selections_.push_back(sel);
        for (int64_t r = 0; r < window_; ++r) {
            finalized_[base + static_cast<size_t>(r * channels_ + c)] =
                column_out[static_cast<size_t>(r)];
        }
        stats_[static_cast<size_t>(c)].reset();
    }
    if (captureCodes_)
        panels_.appendWindow(
            colCodes_,
            std::span<const MantSelection>(
                selections_.data() + selections_.size() -
                    static_cast<size_t>(channels_),
                static_cast<size_t>(channels_)));
    finalizedRows_ += window_;
    pendingFill_ = 0;
}

Tensor
TemporalVQuantizer::reconstruct() const
{
    Tensor out(Shape{rows(), channels_});
    float *op = out.data();
    std::copy(finalized_.begin(), finalized_.end(), op);
    op += finalized_.size();
    for (size_t r = 0; r < pendingFill_; ++r) {
        const int8_t *row = pending_.data() +
                            static_cast<int64_t>(r) * channels_;
        for (int64_t c = 0; c < channels_; ++c)
            *op++ = static_cast<float>(row[c]) *
                    channelScales_[static_cast<size_t>(c)];
    }
    return out;
}

double
TemporalVQuantizer::pendingFraction() const
{
    const double total = static_cast<double>(rows()) *
                         static_cast<double>(channels_);
    if (total == 0.0)
        return 0.0;
    return static_cast<double>(pendingFill_) *
           static_cast<double>(channels_) / total;
}

} // namespace mant
