/**
 * @file
 * Real-time KV-cache quantization (Sec. V-C, Fig. 8).
 *
 * K cache ("spatial"): a full K vector arrives per decode step and its
 * groups lie along the arriving vector, so each group is complete
 * immediately — quantize on arrival using the variance selector.
 *
 * V cache ("temporal"): groups run along the *sequence* axis, so each
 * decode step contributes one element to every group. The two-phase
 * scheme buffers a process window of G steps in INT8 (channel scales
 * from prefill), streams Σv, Σv² and max per channel, and when the
 * window fills, selects a per channel from the variance and re-encodes
 * the window to 4-bit MANT.
 */

#ifndef MANT_CORE_KV_QUANT_H_
#define MANT_CORE_KV_QUANT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/fused_gemm.h"
#include "core/kv_panels.h"
#include "core/variance_selector.h"
#include "tensor/stats.h"

namespace mant {

/**
 * Quantize one spatially-complete vector (a K row or prefill rows) to
 * 4-bit MANT groups, selecting the coefficient per group through the
 * variance selector, and write the dequantized result to `out`.
 *
 * @return The selections made, one per group.
 */
std::vector<MantSelection> spatialQuantizeRow(
    std::span<const float> values, int64_t groupSize,
    const VarianceSelector &selector, std::span<float> out,
    bool fp16Scale = true);

/**
 * Code-capturing overload: additionally writes the raw 4-bit codes
 * (one int8 per element, the MantQuantizedMatrix::rowCodes()
 * convention — sign-magnitude for MANT groups, two's-complement for
 * INT groups). Decoding a captured code through its group's grid and
 * scale reproduces the corresponding `out` float bit-for-bit; the
 * fused attention path leans on exactly this invariant.
 */
std::vector<MantSelection> spatialQuantizeRow(
    std::span<const float> values, int64_t groupSize,
    const VarianceSelector &selector, std::span<float> out,
    std::span<int8_t> codes, bool fp16Scale = true);

/**
 * Encode one group's codes for an already-applied selection, using
 * the same scale and nearest-level rule as applySelection(): the
 * captured codes decode to applySelection's quantize-dequantize
 * output bit-for-bit (INT groups encode through the INT4 level table
 * rather than round-half-away, so exact grid-midpoint inputs resolve
 * to the same level in both representations).
 */
void encodeSelectedCodes(const SimdOps &ops,
                         std::span<const float> group,
                         const MantSelection &sel,
                         std::span<int8_t> codes);

/**
 * Two-phase temporal quantizer for one head's V cache.
 *
 * Usage: construct with the channel count and window size, feed prefill
 * rows via pushPrefill() (which also derives the channel-wise INT8
 * scales), then push one decode vector per step with pushDecode().
 * Reads see finalized 4-bit MANT rows plus the pending INT8 window.
 *
 * Alternatively feed *every* row through pushDecode(): the first row
 * then seeds the channel scales (absmax of that row / 127, the same
 * rule pushPrefill applies to its whole matrix). This is the
 * chunked-prefill path — a prompt folded row-by-row takes decisions
 * that depend only on rows already seen, so any chunking of the same
 * rows produces bit-identical state.
 */
class TemporalVQuantizer
{
  public:
    /**
     * @param channels     Head dimension (elements per V vector).
     * @param window       Process window size G (the group size).
     * @param selector     Calibrated variance -> coefficient table.
     * @param fp16Scale    Round stored scales through FP16.
     * @param captureCodes Additionally keep the raw 4-bit codes of
     *                     every finalized window in a VPanelStore
     *                     (the fused-attention operand). The
     *                     dequantized floats are kept either way.
     * @param pageAlloc    Shared page pool for the captured panel
     *                     store (must outlive the quantizer), or
     *                     nullptr for a private unbounded pool.
     *                     Ignored without captureCodes.
     */
    TemporalVQuantizer(int64_t channels, int64_t window,
                       const VarianceSelector &selector,
                       bool fp16Scale = true,
                       bool captureCodes = false,
                       KvPageAllocator *pageAlloc = nullptr);

    /**
     * Ingest the prefill V matrix (rows = positions). Full groups of
     * `window` rows are MANT-quantized immediately (the sequence is
     * spatially available in prefill); the remainder seeds the pending
     * window. Channel INT8 scales are derived from these rows.
     */
    void pushPrefill(const Tensor &v);

    /** Ingest one decode-step V vector (length = channels). When no
     *  prefill (or earlier decode row) has seeded the channel scales
     *  yet, this row derives them first — see the class comment. */
    void pushDecode(std::span<const float> v);

    /** Total rows visible (finalized + pending). */
    int64_t rows() const
    {
        return finalizedRows_ + static_cast<int64_t>(pendingFill_);
    }

    int64_t finalizedRows() const { return finalizedRows_; }
    int64_t pendingRows() const
    {
        return static_cast<int64_t>(pendingFill_);
    }
    int64_t channels() const { return channels_; }
    int64_t window() const { return window_; }

    /**
     * Reconstruct the effective (dequantized) V cache into a tensor of
     * shape (rows(), channels): finalized rows decode from 4-bit MANT,
     * pending rows decode from INT8.
     */
    Tensor reconstruct() const;

    /** Per-finalize selection history (one entry per channel-group). */
    const std::vector<MantSelection> &
    selectionHistory() const
    {
        return selections_;
    }

    /** Channel-wise INT8 scales in use (derived from prefill). */
    std::span<const float> channelScales() const { return channelScales_; }

    /** Fraction of stored elements currently held at 8 bits. */
    double pendingFraction() const;

    /** True when constructed with captureCodes. */
    bool capturesCodes() const { return captureCodes_; }

    /**
     * Panel store of the finalized windows' codes (one group per
     * finalizeWindow). Throws std::logic_error unless constructed
     * with captureCodes.
     */
    const VPanelStore &codePanels() const;

    /**
     * Raw INT8 codes of the pending window, row-major
     * (pendingRows(), channels). Valid regardless of captureCodes —
     * the pending window is stored as codes either way.
     */
    std::span<const int8_t>
    pendingCodes() const
    {
        return {pending_.data(),
                pendingFill_ * static_cast<size_t>(channels_)};
    }

  private:
    void deriveChannelScales(const Tensor &v);
    void finalizeWindow();

    int64_t channels_;
    int64_t window_;
    const VarianceSelector &selector_;
    bool fp16Scale_;

    /** Channel-wise INT8 scales ("scales" in Fig. 8), derived from
     *  prefill or from the first decode row. */
    std::vector<float> channelScales_;
    bool scalesDerived_ = false;

    /** Pending window: row-major (window, channels) INT8 codes. */
    std::vector<int8_t> pending_;
    size_t pendingFill_ = 0;

    /** Streaming Σv, Σv², max per channel over the pending window. */
    std::vector<StreamingStats> stats_;

    /** Finalized storage: dequantized values (model-facing) ... */
    std::vector<float> finalized_;
    int64_t finalizedRows_ = 0;
    /** ... plus the raw codes/metadata per finalized channel-group. */
    std::vector<MantSelection> selections_;

    /** Code capture (fused attention): packed panels of every
     *  finalized window, plus the per-finalize encode scratch. */
    bool captureCodes_ = false;
    VPanelStore panels_;
    std::vector<int8_t> colCodes_;
};

} // namespace mant

#endif // MANT_CORE_KV_QUANT_H_
