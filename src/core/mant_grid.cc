#include "core/mant_grid.h"

#include <map>
#include <mutex>
#include <stdexcept>

namespace mant {

MantFormat::MantFormat(int a) : a_(a)
{
    if (a < 0 || a > kMantMaxCoefficient)
        throw std::invalid_argument("MantFormat: a must be in [0, 127]");
    name_ = "mant-a" + std::to_string(a);
    for (int i = 0; i < 2 * kMantMagnitudes; ++i)
        levels_[static_cast<size_t>(i)] =
            static_cast<float>(mantCodeValue(a, indexToCode(i)));
}

std::span<const int>
mantCoefficientSet()
{
    // Sec. V-A: {0,5,10,17,20,30,40,50,60,70,80,90,100,110,120}.
    static const int set[] = {0,  5,  10, 17, 20,  30,  40, 50,
                              60, 70, 80, 90, 100, 110, 120};
    return {set, std::size(set)};
}

const MantFormat &
mantFormat(int a)
{
    static std::map<int, MantFormat> cache;
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(a);
    if (it == cache.end())
        it = cache.emplace(a, MantFormat(a)).first;
    return it->second;
}

double
mantNormalizedValue(int a, int i)
{
    return static_cast<double>(mantGridValue(a, i)) /
           static_cast<double>(mantGridMax(a));
}

} // namespace mant
