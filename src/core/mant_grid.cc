#include "core/mant_grid.h"

#include <atomic>
#include <mutex>
#include <stdexcept>

namespace mant {

MantFormat::MantFormat(int a) : a_(a)
{
    if (a < 0 || a > kMantMaxCoefficient)
        throw std::invalid_argument("MantFormat: a must be in [0, 127]");
    name_ = "mant-a" + std::to_string(a);
    for (int i = 0; i < 2 * kMantMagnitudes; ++i)
        levels_[static_cast<size_t>(i)] =
            static_cast<float>(mantCodeValue(a, indexToCode(i)));
}

std::span<const int>
mantCoefficientSet()
{
    // Sec. V-A: {0,5,10,17,20,30,40,50,60,70,80,90,100,110,120}.
    static const int set[] = {0,  5,  10, 17, 20,  30,  40, 50,
                              60, 70, 80, 90, 100, 110, 120};
    return {set, std::size(set)};
}

const MantFormat &
mantFormat(int a)
{
    if (a < 0 || a > kMantMaxCoefficient)
        throw std::invalid_argument("mantFormat: a must be in [0, 127]");
    // Lock-free fast path: the parallel encode engines hit this once
    // per coefficient candidate per group, so a shared mutex on reads
    // would serialize them. Slots are immortal once published.
    static std::atomic<const MantFormat *>
        slots[kMantMaxCoefficient + 1] = {};
    static std::mutex mutex;
    std::atomic<const MantFormat *> &slot =
        slots[static_cast<size_t>(a)];
    if (const MantFormat *fmt = slot.load(std::memory_order_acquire))
        return *fmt;
    std::lock_guard<std::mutex> lock(mutex);
    if (const MantFormat *fmt = slot.load(std::memory_order_relaxed))
        return *fmt;
    const MantFormat *fmt = new MantFormat(a);
    slot.store(fmt, std::memory_order_release);
    return *fmt;
}

double
mantNormalizedValue(int a, int i)
{
    return static_cast<double>(mantGridValue(a, i)) /
           static_cast<double>(mantGridMax(a));
}

} // namespace mant
