/**
 * @file
 * The MANT numeric type (Sec. IV-A of the paper).
 *
 * A MANT grid is defined by an 8-bit group-wise coefficient `a`:
 *
 *     Value_grid = ±(a * |INT| + 2^|INT|),  |INT| in [0, 7]
 *
 * in sign-magnitude INT4. Both ±0 codes map to ±1 (there is no zero on
 * the grid; with a = 17 the positive side is {1, 19, 38, 59, 84, 117,
 * 166, 247}, exactly Fig. 7). Varying `a` smoothly morphs the grid from
 * power-of-two (a = 0) through float-like (a ≈ 17) and NF-like
 * (a ≈ 25) toward INT-like (large a), which is what gives MANT its
 * "mathematically infinite" adaptivity.
 */

#ifndef MANT_CORE_MANT_GRID_H_
#define MANT_CORE_MANT_GRID_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "quant/format.h"

namespace mant {

/** Number of magnitude codes in sign-magnitude INT4 (0..7). */
inline constexpr int kMantMagnitudes = 8;

/** Coefficient a is encoded in 8 bits and constrained below 128. */
inline constexpr int kMantMaxCoefficient = 127;

/**
 * A MANT code is sign-magnitude: bit 3 = sign (1 = negative),
 * bits 2..0 = magnitude. Stored one code per byte here; a packed
 * variant would hold two codes per byte.
 */
using MantCode = uint8_t;

inline constexpr MantCode
makeMantCode(bool negative, int magnitude)
{
    return static_cast<MantCode>((negative ? 0x8 : 0x0) |
                                 (magnitude & 0x7));
}

inline constexpr int mantMagnitude(MantCode c) { return c & 0x7; }
inline constexpr bool mantNegative(MantCode c) { return (c & 0x8) != 0; }
inline constexpr int mantSign(MantCode c) { return mantNegative(c) ? -1 : 1; }

/** Integer grid value of a magnitude under coefficient a: a*m + 2^m. */
inline constexpr int32_t
mantGridValue(int a, int magnitude)
{
    return a * magnitude + (1 << magnitude);
}

/** Signed integer value of a code under coefficient a. */
inline constexpr int32_t
mantCodeValue(int a, MantCode c)
{
    return mantSign(c) * mantGridValue(a, mantMagnitude(c));
}

/** Largest grid magnitude: a*7 + 128. */
inline constexpr int32_t
mantGridMax(int a)
{
    return mantGridValue(a, kMantMagnitudes - 1);
}

/**
 * MANT as a NumericFormat: 16 sorted levels for one coefficient.
 * The sorted-index <-> sign-magnitude mapping is fixed: indices 0..7
 * are the negative magnitudes 7..0, indices 8..15 are positive 0..7.
 */
class MantFormat : public NumericFormat
{
  public:
    explicit MantFormat(int a);

    std::string_view name() const override { return name_; }
    int bits() const override { return 4; }
    std::span<const float> levels() const override
    {
        return {levels_.data(), levels_.size()};
    }

    int coefficient() const { return a_; }

    /** Sorted level index -> sign-magnitude code. */
    static MantCode
    indexToCode(int index)
    {
        return index < kMantMagnitudes
                   ? makeMantCode(true, kMantMagnitudes - 1 - index)
                   : makeMantCode(false, index - kMantMagnitudes);
    }

    /** Sign-magnitude code -> sorted level index. */
    static int
    codeToIndex(MantCode c)
    {
        return mantNegative(c) ? kMantMagnitudes - 1 - mantMagnitude(c)
                               : kMantMagnitudes + mantMagnitude(c);
    }

    /** Encode a real value directly to a sign-magnitude code. */
    MantCode
    encodeToCode(float value, float scale) const
    {
        return indexToCode(encode(value, scale));
    }

    /** Decode a sign-magnitude code. */
    float
    decodeCode(MantCode c, float scale) const
    {
        return static_cast<float>(mantCodeValue(a_, c)) * scale;
    }

  private:
    int a_;
    std::string name_;
    std::array<float, 2 * kMantMagnitudes> levels_;
};

/**
 * The paper's weight-quantization coefficient set (Sec. V-A): 15 MANT
 * coefficients; together with the plain-INT option this makes the 16
 * selectable data types.
 */
std::span<const int> mantCoefficientSet();

/**
 * Shared immutable MantFormat instance for a coefficient, built on
 * first use and cached for the life of the process.
 *
 * Concurrency contract (relied on by the parallel encode engines,
 * which call this once per candidate per group from many threads):
 *
 *  - the read path is lock-free — one acquire load per call; a mutex
 *    here would serialize the whole coefficient search;
 *  - slots are immortal: once a MantFormat pointer is published
 *    (release store) it is never replaced or freed, so a reader can
 *    hold the reference indefinitely without synchronization;
 *  - construction races are resolved by a single builder mutex
 *    (double-checked), so each coefficient is constructed exactly
 *    once.
 *
 * Throws std::invalid_argument for a outside [0, kMantMaxCoefficient].
 */
const MantFormat &mantFormat(int a);

/**
 * Normalized positive grid point y(i) = (a*i + 2^i) / (7a + 128) — the
 * quantity plotted in Fig. 5 / Fig. 6.
 */
double mantNormalizedValue(int a, int i);

} // namespace mant

#endif // MANT_CORE_MANT_GRID_H_
