#include "core/packed.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <new>
#include <ostream>
#include <stdexcept>
#include <string>

#include "tensor/fp16.h"

namespace mant {

PackedFormatError::PackedFormatError(const std::string &what,
                                     uint64_t offset)
    : std::runtime_error(what + " (at offset " +
                         std::to_string(offset) + ")"),
      offset_(offset)
{
}

namespace {

constexpr char kMagic[4] = {'M', 'A', 'N', 'T'};
constexpr uint32_t kVersion1 = 1;
constexpr uint32_t kVersion2 = 2;

/** v2 alignment quantum: headers are one 64-byte line, and every
 *  payload array (and container section) starts 64-byte aligned, so
 *  mmap'd code/scale arrays are cache-line and SIMD aligned. */
constexpr uint64_t kAlign = 64;

constexpr char kModelMagic[8] = {'M', 'A', 'N', 'T',
                                 'M', 'D', 'L', '\0'};
constexpr uint32_t kModelVersion = 1;
constexpr uint32_t kMaxSections = 1u << 16;
constexpr size_t kSectionNameBytes = 40;
constexpr uint64_t kTocEntryBytes = 64;

/** Element-count cap: keeps every rows/cols product overflow-free. */
constexpr int64_t kMaxElems = int64_t{1} << 40;

/** True when rows x cols is non-negative and within kMaxElems. */
bool
plausibleDims(int64_t rows, int64_t cols)
{
    return rows >= 0 && cols >= 0 &&
           (rows == 0 || cols <= kMaxElems / rows);
}

uint64_t
align64(uint64_t n)
{
    return (n + (kAlign - 1)) & ~(kAlign - 1);
}

template <typename T>
void
writeScalar(std::ostream &os, T value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

/** Read one little-endian scalar; `offset` tracks the stream position
 *  so failures report where the bytes ran out. */
template <typename T>
T
readScalar(std::istream &is, uint64_t &offset)
{
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof(value));
    if (!is)
        throw PackedFormatError("readPacked: truncated stream", offset);
    offset += sizeof(value);
    return value;
}

/**
 * Read `count` elements into `v` in bounded chunks, so memory growth
 * tracks bytes actually received: a hostile header on a non-seekable
 * stream cannot force a terabyte zero-filled resize. On truncation
 * the error reports the array's start offset.
 */
template <typename T>
void
readVector(std::istream &is, std::vector<T> &v, uint64_t count,
           uint64_t &offset)
{
    constexpr uint64_t kChunkBytes = uint64_t{1} << 20;
    const uint64_t chunk = std::max<uint64_t>(1, kChunkBytes / sizeof(T));
    v.clear();
    uint64_t got = 0;
    while (got < count) {
        const uint64_t step = std::min(chunk, count - got);
        v.resize(static_cast<size_t>(got + step));
        is.read(reinterpret_cast<char *>(v.data() + got),
                static_cast<std::streamsize>(step * sizeof(T)));
        if (!is)
            throw PackedFormatError("readPacked: truncated payload",
                                    offset);
        got += step;
    }
    offset += count * sizeof(T);
}

/** Skip `count` padding bytes (works on non-seekable streams). */
void
skipBytes(std::istream &is, uint64_t count, uint64_t &offset)
{
    if (count == 0)
        return;
    is.ignore(static_cast<std::streamsize>(count));
    if (!is || static_cast<uint64_t>(is.gcount()) != count)
        throw PackedFormatError("readPacked: truncated payload", offset);
    offset += count;
}

void
writeZeros(std::ostream &os, uint64_t count)
{
    static constexpr char kZeros[256] = {};
    while (count > 0) {
        const uint64_t step =
            std::min<uint64_t>(count, sizeof(kZeros));
        os.write(kZeros, static_cast<std::streamsize>(step));
        count -= step;
    }
}

/** The 64-byte v2 tile-section header, as stored (little-endian). */
struct TileSectionHeader
{
    int64_t rows = 0;
    int64_t cols = 0;
    int64_t groupSize = 0;
    int64_t panels = 0;
    int64_t panelBytes = 0;
    uint64_t codesBytes = 0;
    uint64_t metaCount = 0;
    uint64_t reserved = 0;
};
static_assert(sizeof(TileSectionHeader) == kAlign,
              "tile section header must be exactly one aligned line");

/** Section-relative layout of a v2 tile section: header at 0, then
 *  codes / scales / coeff / isInt, each 64-byte aligned. */
struct TileSectionLayout
{
    int64_t panels = 0;
    int64_t panelBytes = 0;
    uint64_t codesBytes = 0;
    uint64_t metaCount = 0;
    uint64_t codesOff = kAlign;
    uint64_t scalesOff = 0;
    uint64_t coeffOff = 0;
    uint64_t isIntOff = 0;
    uint64_t size = 0;
};

TileSectionLayout
tileLayoutFor(int64_t rows, int64_t cols, int64_t groupSize)
{
    const MantTilesView geo =
        MantTilesView::geometry(rows, cols, groupSize);
    TileSectionLayout l;
    l.panels = geo.panels();
    l.panelBytes = geo.panelBytes();
    l.codesBytes = static_cast<uint64_t>(geo.codesBytes());
    l.metaCount = static_cast<uint64_t>(geo.metaCount());
    l.scalesOff = align64(l.codesOff + l.codesBytes);
    l.coeffOff =
        align64(l.scalesOff + l.metaCount * sizeof(float));
    l.isIntOff = align64(l.coeffOff + l.metaCount);
    l.size = l.isIntOff + l.metaCount;
    return l;
}

/**
 * Validate a v2 tile-section header: dimensions plausible, group size
 * normalized (streams store effectiveGroupSize, so group code-block
 * offsets stay affine), and every derived field equal to the geometry
 * recomputed from (rows, cols, groupSize) — a header cannot name
 * counts its own shape does not imply. `base` is the section's
 * absolute offset; `who` prefixes messages ("readPacked" for streams,
 * "mapTileSection" for mapped files).
 */
TileSectionLayout
validateTileHeader(const TileSectionHeader &h, uint64_t base,
                   const char *who)
{
    const std::string p(who);
    if (!plausibleDims(h.rows, h.cols))
        throw PackedFormatError(p + ": implausible tile geometry",
                                base);
    if (h.groupSize != effectiveGroupSize(h.cols, h.groupSize))
        throw PackedFormatError(p + ": unnormalized group size",
                                base + 16);
    const TileSectionLayout l =
        tileLayoutFor(h.rows, h.cols, h.groupSize);
    if (h.panels != l.panels)
        throw PackedFormatError(p + ": panel count mismatch",
                                base + 24);
    if (h.panelBytes != l.panelBytes)
        throw PackedFormatError(p + ": panel byte count mismatch",
                                base + 32);
    if (h.codesBytes != l.codesBytes)
        throw PackedFormatError(p + ": code byte count mismatch",
                                base + 40);
    if (h.metaCount != l.metaCount)
        throw PackedFormatError(p + ": tile meta count mismatch",
                                base + 48);
    if (h.reserved != 0)
        throw PackedFormatError(p + ": nonzero reserved field",
                                base + 56);
    return l;
}

/** v1 body: fields after magic + version (offset = 8 on entry). */
PackedMantMatrix
readPackedV1Body(std::istream &is, uint64_t &offset)
{
    PackedMantMatrix p;
    const uint64_t dims_off = offset;
    p.rows = readScalar<int64_t>(is, offset);
    p.cols = readScalar<int64_t>(is, offset);
    p.groupSize = readScalar<int64_t>(is, offset);
    if (!plausibleDims(p.rows, p.cols) || p.groupSize < 0)
        throw PackedFormatError("readPacked: implausible header",
                                dims_off);
    const uint64_t nibbles_off = offset;
    const uint64_t n_nibbles = readScalar<uint64_t>(is, offset);
    const uint64_t groups_off = offset;
    const uint64_t n_groups = readScalar<uint64_t>(is, offset);
    if (n_nibbles !=
        static_cast<uint64_t>((p.rows * p.cols + 1) / 2)) {
        throw PackedFormatError("readPacked: nibble count mismatch",
                                nibbles_off);
    }
    // unpack() indexes metadata as rows * groupsPerRow; a stream whose
    // group count disagrees with its own geometry would read out of
    // bounds there, so reject it at the header.
    const int64_t groups_per_row =
        groupsPerRowFor(p.cols, p.groupSize);
    if (n_groups != static_cast<uint64_t>(p.rows * groups_per_row)) {
        throw PackedFormatError("readPacked: group count mismatch",
                                groups_off);
    }
    // A self-consistent hostile header can still name buffer sizes in
    // the terabytes; when the stream is seekable, require the payload
    // to actually be present before allocating anything.
    const std::streampos here = is.tellg();
    if (here != std::streampos(-1)) {
        is.seekg(0, std::ios::end);
        const std::streampos end = is.tellg();
        is.clear();
        is.seekg(here);
        const uint64_t avail =
            end > here ? static_cast<uint64_t>(end - here) : 0;
        if (avail < n_nibbles + n_groups * 3)
            throw PackedFormatError("readPacked: truncated payload",
                                    offset);
    }
    try {
        readVector(is, p.nibbles, n_nibbles, offset);
        readVector(is, p.scaleBits, n_groups, offset);
        readVector(is, p.typeBytes, n_groups, offset);
    } catch (const std::bad_alloc &) {
        throw PackedFormatError(
            "readPacked: header demands implausible allocation",
            offset);
    } catch (const std::length_error &) {
        throw PackedFormatError(
            "readPacked: header demands implausible allocation",
            offset);
    }
    return p;
}

/** v2 tile section body (offset = section base on entry): validate
 *  the header, then copy the arrays off the stream into owning
 *  vectors (zero-copy loading is the mapTileSection path). */
MantPackedTiles
readTileSectionStream(std::istream &is, uint64_t &offset)
{
    const uint64_t base = offset;
    TileSectionHeader h;
    h.rows = readScalar<int64_t>(is, offset);
    h.cols = readScalar<int64_t>(is, offset);
    h.groupSize = readScalar<int64_t>(is, offset);
    h.panels = readScalar<int64_t>(is, offset);
    h.panelBytes = readScalar<int64_t>(is, offset);
    h.codesBytes = readScalar<uint64_t>(is, offset);
    h.metaCount = readScalar<uint64_t>(is, offset);
    h.reserved = readScalar<uint64_t>(is, offset);
    const TileSectionLayout l =
        validateTileHeader(h, base, "readPacked");

    const std::streampos here = is.tellg();
    if (here != std::streampos(-1)) {
        is.seekg(0, std::ios::end);
        const std::streampos end = is.tellg();
        is.clear();
        is.seekg(here);
        const uint64_t avail =
            end > here ? static_cast<uint64_t>(end - here) : 0;
        if (avail < l.size - l.codesOff)
            throw PackedFormatError("readPacked: truncated payload",
                                    offset);
    }
    std::vector<uint8_t> codes;
    std::vector<float> scales;
    std::vector<uint8_t> coeff;
    std::vector<uint8_t> isInt;
    try {
        readVector(is, codes, l.codesBytes, offset);
        skipBytes(is, l.scalesOff - (l.codesOff + l.codesBytes),
                  offset);
        readVector(is, scales, l.metaCount, offset);
        skipBytes(is,
                  l.coeffOff -
                      (l.scalesOff + l.metaCount * sizeof(float)),
                  offset);
        readVector(is, coeff, l.metaCount, offset);
        skipBytes(is, l.isIntOff - (l.coeffOff + l.metaCount),
                  offset);
        readVector(is, isInt, l.metaCount, offset);
    } catch (const std::bad_alloc &) {
        throw PackedFormatError(
            "readPacked: header demands implausible allocation",
            offset);
    } catch (const std::length_error &) {
        throw PackedFormatError(
            "readPacked: header demands implausible allocation",
            offset);
    }
    return MantPackedTiles::fromParts(
        h.rows, h.cols, h.groupSize, std::move(codes),
        std::move(scales), std::move(coeff), std::move(isInt));
}

/** Flatten owning tiles back into the v1 representation (the
 *  readPacked() v2 compatibility path). */
PackedMantMatrix
packFromTiles(const MantPackedTiles &tiles)
{
    std::vector<int8_t> codes;
    codes.reserve(static_cast<size_t>(tiles.rows() * tiles.cols()));
    std::vector<MantGroupMeta> meta;
    meta.reserve(
        static_cast<size_t>(tiles.rows() * tiles.groupsPerRow()));
    for (int64_t r = 0; r < tiles.rows(); ++r) {
        const std::vector<int8_t> rc = tiles.unpackRowCodes(r);
        codes.insert(codes.end(), rc.begin(), rc.end());
        for (int64_t g = 0; g < tiles.groupsPerRow(); ++g)
            meta.push_back(tiles.metaAt(r, g));
    }
    return pack(MantQuantizedMatrix::fromParts(
        tiles.rows(), tiles.cols(), tiles.groupSize(),
        std::move(codes), std::move(meta)));
}

uint32_t
loadU32(const uint8_t *p)
{
    uint32_t v = 0;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

uint64_t
loadU64(const uint8_t *p)
{
    uint64_t v = 0;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

} // namespace

int64_t
PackedMantMatrix::storageBytes() const
{
    return static_cast<int64_t>(nibbles.size()) +
           static_cast<int64_t>(scaleBits.size()) * 2 +
           static_cast<int64_t>(typeBytes.size());
}

double
PackedMantMatrix::bitsPerElement() const
{
    const double elems = static_cast<double>(rows) *
                         static_cast<double>(cols);
    return elems > 0.0 ? 8.0 * static_cast<double>(storageBytes()) /
                             elems
                       : 0.0;
}

int64_t
PackedMantMatrix::tiledStorageBytes() const
{
    return MantTilesView::geometry(rows, cols, groupSize)
        .storageBytes();
}

double
PackedMantMatrix::tiledBitsPerElement() const
{
    return MantTilesView::geometry(rows, cols, groupSize)
        .bitsPerElement();
}

PackedMantMatrix
pack(const MantQuantizedMatrix &matrix)
{
    PackedMantMatrix p;
    p.rows = matrix.rows();
    p.cols = matrix.cols();
    p.groupSize = matrix.groupSize();

    const int64_t total = p.rows * p.cols;
    p.nibbles.assign(static_cast<size_t>((total + 1) / 2), 0);
    for (int64_t r = 0; r < p.rows; ++r) {
        const auto codes = matrix.rowCodes(r);
        for (int64_t c = 0; c < p.cols; ++c) {
            const int64_t flat = r * p.cols + c;
            // Codes occupy 4 bits in both representations: MANT codes
            // are sign-magnitude nibbles; INT-group codes are 4-bit
            // two's complement.
            const uint8_t nib =
                static_cast<uint8_t>(codes[static_cast<size_t>(c)]) &
                0x0f;
            auto &byte = p.nibbles[static_cast<size_t>(flat / 2)];
            byte = (flat % 2 == 0)
                       ? static_cast<uint8_t>((byte & 0xf0) | nib)
                       : static_cast<uint8_t>((byte & 0x0f) |
                                              (nib << 4));
        }
    }

    const int64_t groups = p.rows * matrix.groupsPerRow();
    p.scaleBits.reserve(static_cast<size_t>(groups));
    p.typeBytes.reserve(static_cast<size_t>(groups));
    for (int64_t r = 0; r < p.rows; ++r) {
        for (int64_t g = 0; g < matrix.groupsPerRow(); ++g) {
            const MantGroupMeta &m = matrix.meta(r, g);
            p.scaleBits.push_back(floatToHalfBits(m.scale));
            p.typeBytes.push_back(static_cast<uint8_t>(
                (m.isInt ? 0x80 : 0x00) | (m.a & 0x7f)));
        }
    }
    return p;
}

MantQuantizedMatrix
unpack(const PackedMantMatrix &packed)
{
    // Validate before the sign-extend loop below indexes metadata by
    // geometry; unpack is public and must not read out of bounds (or
    // overflow rows * cols) for any caller, not just readPacked.
    if (!plausibleDims(packed.rows, packed.cols)) {
        throw std::invalid_argument(
            "unpack: inconsistent PackedMantMatrix");
    }
    const int64_t total = packed.rows * packed.cols;
    if (static_cast<int64_t>(packed.nibbles.size()) !=
            (total + 1) / 2 ||
        static_cast<int64_t>(packed.scaleBits.size()) !=
            packed.rows * groupsPerRowFor(packed.cols,
                                          packed.groupSize) ||
        packed.typeBytes.size() != packed.scaleBits.size()) {
        throw std::invalid_argument(
            "unpack: inconsistent PackedMantMatrix");
    }
    std::vector<int8_t> codes(static_cast<size_t>(total));
    for (int64_t flat = 0; flat < total; ++flat) {
        const uint8_t byte =
            packed.nibbles[static_cast<size_t>(flat / 2)];
        uint8_t nib = (flat % 2 == 0) ? (byte & 0x0f) : (byte >> 4);
        // INT-group codes sign-extend from 4 bits at decode; MANT
        // codes are used as nibbles either way, so sign-extension is
        // applied per group below once metadata is known.
        codes[static_cast<size_t>(flat)] = static_cast<int8_t>(nib);
    }

    const int64_t gsize =
        effectiveGroupSize(packed.cols, packed.groupSize);
    const int64_t groups_per_row =
        groupsPerRowFor(packed.cols, packed.groupSize);
    std::vector<MantGroupMeta> meta;
    meta.reserve(packed.scaleBits.size());
    for (size_t i = 0; i < packed.scaleBits.size(); ++i) {
        MantGroupMeta m;
        m.scale = halfBitsToFloat(packed.scaleBits[i]);
        m.isInt = (packed.typeBytes[i] & 0x80) != 0;
        m.a = static_cast<uint8_t>(packed.typeBytes[i] & 0x7f);
        meta.push_back(m);
    }

    // Sign-extend INT-group nibbles back to int8 two's complement.
    for (int64_t r = 0; r < packed.rows; ++r) {
        for (int64_t g = 0; g < groups_per_row; ++g) {
            const MantGroupMeta &m =
                meta[static_cast<size_t>(r * groups_per_row + g)];
            if (!m.isInt)
                continue;
            const int64_t k0 = g * gsize;
            const int64_t len = std::min(gsize, packed.cols - k0);
            for (int64_t i = 0; i < len; ++i) {
                int8_t &code =
                    codes[static_cast<size_t>(r * packed.cols + k0 +
                                              i)];
                if (code & 0x08)
                    code = static_cast<int8_t>(code | 0xf0);
            }
        }
    }
    return MantQuantizedMatrix::fromParts(packed.rows, packed.cols,
                                          packed.groupSize,
                                          std::move(codes),
                                          std::move(meta));
}

void
writePacked(std::ostream &os, const PackedMantMatrix &packed)
{
    os.write(kMagic, sizeof(kMagic));
    writeScalar(os, kVersion1);
    writeScalar(os, packed.rows);
    writeScalar(os, packed.cols);
    writeScalar(os, packed.groupSize);
    writeScalar(os, static_cast<uint64_t>(packed.nibbles.size()));
    writeScalar(os, static_cast<uint64_t>(packed.scaleBits.size()));
    os.write(reinterpret_cast<const char *>(packed.nibbles.data()),
             static_cast<std::streamsize>(packed.nibbles.size()));
    os.write(reinterpret_cast<const char *>(packed.scaleBits.data()),
             static_cast<std::streamsize>(packed.scaleBits.size() * 2));
    os.write(reinterpret_cast<const char *>(packed.typeBytes.data()),
             static_cast<std::streamsize>(packed.typeBytes.size()));
    if (!os)
        throw std::runtime_error("writePacked: stream failure");
}

PackedMantMatrix
readPacked(std::istream &is)
{
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw PackedFormatError("readPacked: bad magic", 0);
    uint64_t offset = sizeof(kMagic);
    const uint32_t version_off = static_cast<uint32_t>(offset);
    const uint32_t version = readScalar<uint32_t>(is, offset);
    if (version == kVersion1)
        return readPackedV1Body(is, offset);
    if (version == kVersion2) {
        skipBytes(is, kAlign - offset, offset);
        return packFromTiles(readTileSectionStream(is, offset));
    }
    throw PackedFormatError("readPacked: unsupported version",
                            version_off);
}

void
writeTileSection(std::ostream &os, const MantTilesView &tiles)
{
    const TileSectionLayout l = tileLayoutFor(
        tiles.rows(), tiles.cols(), tiles.groupSize());
    writeScalar(os, tiles.rows());
    writeScalar(os, tiles.cols());
    writeScalar(os, tiles.groupSize());
    writeScalar(os, l.panels);
    writeScalar(os, l.panelBytes);
    writeScalar(os, l.codesBytes);
    writeScalar(os, l.metaCount);
    writeScalar(os, uint64_t{0});
    if (l.codesBytes > 0) {
        os.write(reinterpret_cast<const char *>(tiles.codesData()),
                 static_cast<std::streamsize>(l.codesBytes));
    }
    writeZeros(os, l.scalesOff - (l.codesOff + l.codesBytes));
    if (l.metaCount > 0) {
        os.write(reinterpret_cast<const char *>(tiles.scalesData()),
                 static_cast<std::streamsize>(l.metaCount *
                                              sizeof(float)));
    }
    writeZeros(os, l.coeffOff -
                       (l.scalesOff + l.metaCount * sizeof(float)));
    if (l.metaCount > 0) {
        os.write(reinterpret_cast<const char *>(tiles.coeffData()),
                 static_cast<std::streamsize>(l.metaCount));
    }
    writeZeros(os, l.isIntOff - (l.coeffOff + l.metaCount));
    if (l.metaCount > 0) {
        os.write(reinterpret_cast<const char *>(tiles.isIntData()),
                 static_cast<std::streamsize>(l.metaCount));
    }
    if (!os)
        throw std::runtime_error("writeTileSection: stream failure");
}

void
writePackedTiles(std::ostream &os, const MantTilesView &tiles)
{
    os.write(kMagic, sizeof(kMagic));
    writeScalar(os, kVersion2);
    writeZeros(os, kAlign - sizeof(kMagic) - sizeof(kVersion2));
    writeTileSection(os, tiles);
    if (!os)
        throw std::runtime_error("writePackedTiles: stream failure");
}

void
writePackedTiles(std::ostream &os, const MantPackedTiles &tiles)
{
    writePackedTiles(os, tiles.view());
}

MantPackedTiles
readPackedTiles(std::istream &is)
{
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw PackedFormatError("readPacked: bad magic", 0);
    uint64_t offset = sizeof(kMagic);
    const uint32_t version_off = static_cast<uint32_t>(offset);
    const uint32_t version = readScalar<uint32_t>(is, offset);
    if (version == kVersion2) {
        skipBytes(is, kAlign - offset, offset);
        return readTileSectionStream(is, offset);
    }
    if (version == kVersion1)
        return MantPackedTiles::pack(
            unpack(readPackedV1Body(is, offset)));
    throw PackedFormatError("readPacked: unsupported version",
                            version_off);
}

uint64_t
tileSectionSize(int64_t rows, int64_t cols, int64_t groupSize)
{
    return tileLayoutFor(rows, cols, groupSize).size;
}

MantTilesView
mapTileSection(const void *data, size_t size, uint64_t baseOffset)
{
    if (data == nullptr)
        throw std::invalid_argument("mapTileSection: null mapping");
    if (reinterpret_cast<uintptr_t>(data) % kAlign != 0) {
        throw PackedFormatError(
            "mapTileSection: section base not 64-byte aligned",
            baseOffset);
    }
    if (size < sizeof(TileSectionHeader)) {
        throw PackedFormatError(
            "mapTileSection: truncated section header", baseOffset);
    }
    const uint8_t *base = static_cast<const uint8_t *>(data);
    TileSectionHeader h;
    std::memcpy(&h, base, sizeof(h));
    const TileSectionLayout l =
        validateTileHeader(h, baseOffset, "mapTileSection");
    if (size < l.size) {
        throw PackedFormatError(
            "mapTileSection: section payload out of bounds",
            baseOffset + l.codesOff);
    }
    return MantTilesView::fromParts(
        h.rows, h.cols, h.groupSize, base + l.codesOff,
        reinterpret_cast<const float *>(base + l.scalesOff),
        base + l.coeffOff, base + l.isIntOff);
}

std::vector<ModelSection>
parseModelContainer(const void *data, size_t size)
{
    if (data == nullptr)
        throw std::invalid_argument(
            "parseModelContainer: null mapping");
    const uint8_t *base = static_cast<const uint8_t *>(data);
    if (size < kAlign)
        throw PackedFormatError("model container: truncated header",
                                0);
    if (std::memcmp(base, kModelMagic, sizeof(kModelMagic)) != 0)
        throw PackedFormatError("model container: bad magic", 0);
    if (loadU32(base + 8) != kModelVersion)
        throw PackedFormatError(
            "model container: unsupported version", 8);
    const uint32_t count = loadU32(base + 12);
    if (count > kMaxSections)
        throw PackedFormatError(
            "model container: implausible section count", 12);
    for (size_t i = 16; i < kAlign; ++i) {
        if (base[i] != 0)
            throw PackedFormatError(
                "model container: nonzero reserved header bytes", 16);
    }
    const uint64_t toc_end =
        kAlign + uint64_t{count} * kTocEntryBytes;
    if (toc_end > size)
        throw PackedFormatError("model container: truncated TOC",
                                kAlign);

    std::vector<ModelSection> sections;
    sections.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        const uint64_t entry_off =
            kAlign + uint64_t{i} * kTocEntryBytes;
        const uint8_t *e = base + entry_off;
        size_t name_len = 0;
        while (name_len < kSectionNameBytes && e[name_len] != 0)
            ++name_len;
        if (name_len == kSectionNameBytes)
            throw PackedFormatError(
                "model container: unterminated section name",
                entry_off);
        if (name_len == 0)
            throw PackedFormatError(
                "model container: empty section name", entry_off);
        for (size_t j = name_len; j < kSectionNameBytes; ++j) {
            if (e[j] != 0)
                throw PackedFormatError(
                    "model container: garbage after section name",
                    entry_off);
        }
        ModelSection s;
        s.name.assign(reinterpret_cast<const char *>(e), name_len);
        const uint32_t kind = loadU32(e + 40);
        if (kind < 1 || kind > 3)
            throw PackedFormatError(
                "model container: unknown section kind",
                entry_off + 40);
        s.kind = static_cast<ModelSectionKind>(kind);
        if (loadU32(e + 44) != 0)
            throw PackedFormatError(
                "model container: nonzero reserved entry field",
                entry_off + 44);
        s.offset = loadU64(e + 48);
        s.size = loadU64(e + 56);
        if (s.offset % kAlign != 0)
            throw PackedFormatError(
                "model container: misaligned section offset",
                entry_off + 48);
        if (s.offset < toc_end)
            throw PackedFormatError(
                "model container: section overlaps TOC",
                entry_off + 48);
        // Overflow-safe bounds: offset <= size first, then the
        // remaining room bounds the payload.
        if (s.offset > size || s.size > size - s.offset)
            throw PackedFormatError(
                "model container: section out of bounds",
                entry_off + 48);
        sections.push_back(std::move(s));
    }

    // Duplicate names and pairwise overlap, via sorted index views so
    // hostile 64k-entry TOCs stay O(n log n), not O(n^2).
    std::vector<uint32_t> order(sections.size());
    for (uint32_t i = 0; i < sections.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](uint32_t a, uint32_t b) {
                  return sections[a].name < sections[b].name;
              });
    for (size_t i = 1; i < order.size(); ++i) {
        if (sections[order[i - 1]].name == sections[order[i]].name) {
            const uint32_t later =
                std::max(order[i - 1], order[i]);
            throw PackedFormatError(
                "model container: duplicate section name",
                kAlign + uint64_t{later} * kTocEntryBytes);
        }
    }
    std::sort(order.begin(), order.end(),
              [&](uint32_t a, uint32_t b) {
                  return sections[a].offset < sections[b].offset;
              });
    for (size_t i = 1; i < order.size(); ++i) {
        const ModelSection &prev = sections[order[i - 1]];
        const ModelSection &next = sections[order[i]];
        if (prev.offset + prev.size > next.offset)
            throw PackedFormatError(
                "model container: overlapping sections",
                kAlign + uint64_t{order[i]} * kTocEntryBytes + 48);
    }
    return sections;
}

void
ModelContainerWriter::add(std::string name, ModelSectionKind kind,
                          uint64_t size, EmitFn emit)
{
    if (name.empty() || name.size() >= kSectionNameBytes ||
        name.find('\0') != std::string::npos) {
        throw std::invalid_argument(
            "ModelContainerWriter: invalid section name");
    }
    const uint32_t k = static_cast<uint32_t>(kind);
    if (k < 1 || k > 3)
        throw std::invalid_argument(
            "ModelContainerWriter: unknown section kind");
    if (!emit)
        throw std::invalid_argument(
            "ModelContainerWriter: missing emit callback");
    for (const Pending &p : sections_) {
        if (p.section.name == name)
            throw std::invalid_argument(
                "ModelContainerWriter: duplicate section name");
    }
    Pending p;
    p.section.name = std::move(name);
    p.section.kind = kind;
    p.section.size = size;
    p.emit = std::move(emit);
    sections_.push_back(std::move(p));
}

void
ModelContainerWriter::write(std::ostream &os) const
{
    if (sections_.size() > kMaxSections)
        throw std::runtime_error(
            "ModelContainerWriter: too many sections");
    const uint32_t count = static_cast<uint32_t>(sections_.size());
    const uint64_t toc_end =
        kAlign + uint64_t{count} * kTocEntryBytes;
    std::vector<uint64_t> offsets(count);
    uint64_t pos = align64(toc_end);
    for (uint32_t i = 0; i < count; ++i) {
        offsets[i] = pos;
        pos = align64(pos + sections_[i].section.size);
    }

    os.write(kModelMagic, sizeof(kModelMagic));
    writeScalar(os, kModelVersion);
    writeScalar(os, count);
    writeZeros(os, kAlign - 16);
    for (uint32_t i = 0; i < count; ++i) {
        const ModelSection &s = sections_[i].section;
        char name[kSectionNameBytes] = {};
        std::memcpy(name, s.name.data(), s.name.size());
        os.write(name, sizeof(name));
        writeScalar(os, static_cast<uint32_t>(s.kind));
        writeScalar(os, uint32_t{0});
        writeScalar(os, offsets[i]);
        writeScalar(os, s.size);
    }
    uint64_t written = toc_end;
    for (uint32_t i = 0; i < count; ++i) {
        writeZeros(os, offsets[i] - written);
        const std::streampos before = os.tellp();
        sections_[i].emit(os);
        const std::streampos after = os.tellp();
        if (before != std::streampos(-1) &&
            after != std::streampos(-1) &&
            static_cast<uint64_t>(after - before) !=
                sections_[i].section.size) {
            throw std::runtime_error(
                "ModelContainerWriter: section '" +
                sections_[i].section.name + "' wrote " +
                std::to_string(static_cast<int64_t>(after - before)) +
                " bytes, declared " +
                std::to_string(sections_[i].section.size));
        }
        written = offsets[i] + sections_[i].section.size;
    }
    if (!os)
        throw std::runtime_error(
            "ModelContainerWriter: stream failure");
}

} // namespace mant
