#include "core/packed.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <new>
#include <ostream>
#include <stdexcept>

#include "tensor/fp16.h"

namespace mant {

namespace {

constexpr char kMagic[4] = {'M', 'A', 'N', 'T'};
constexpr uint32_t kVersion = 1;

/** Element-count cap: keeps every rows/cols product overflow-free. */
constexpr int64_t kMaxElems = int64_t{1} << 40;

/** True when rows x cols is non-negative and within kMaxElems. */
bool
plausibleDims(int64_t rows, int64_t cols)
{
    return rows >= 0 && cols >= 0 &&
           (rows == 0 || cols <= kMaxElems / rows);
}

template <typename T>
void
writeScalar(std::ostream &os, T value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

template <typename T>
T
readScalar(std::istream &is)
{
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof(value));
    if (!is)
        throw std::runtime_error("readPacked: truncated stream");
    return value;
}

/**
 * Read `count` elements into `v` in bounded chunks, so memory growth
 * tracks bytes actually received: a 48-byte hostile header on a
 * non-seekable stream cannot force a terabyte zero-filled resize.
 */
template <typename T>
void
readVector(std::istream &is, std::vector<T> &v, uint64_t count)
{
    constexpr uint64_t kChunkBytes = uint64_t{1} << 20;
    const uint64_t chunk = std::max<uint64_t>(1, kChunkBytes / sizeof(T));
    v.clear();
    uint64_t got = 0;
    while (got < count) {
        const uint64_t step = std::min(chunk, count - got);
        v.resize(static_cast<size_t>(got + step));
        is.read(reinterpret_cast<char *>(v.data() + got),
                static_cast<std::streamsize>(step * sizeof(T)));
        if (!is)
            throw std::runtime_error("readPacked: truncated payload");
        got += step;
    }
}

} // namespace

int64_t
PackedMantMatrix::storageBytes() const
{
    return static_cast<int64_t>(nibbles.size()) +
           static_cast<int64_t>(scaleBits.size()) * 2 +
           static_cast<int64_t>(typeBytes.size());
}

double
PackedMantMatrix::bitsPerElement() const
{
    const double elems = static_cast<double>(rows) *
                         static_cast<double>(cols);
    return elems > 0.0 ? 8.0 * static_cast<double>(storageBytes()) /
                             elems
                       : 0.0;
}

PackedMantMatrix
pack(const MantQuantizedMatrix &matrix)
{
    PackedMantMatrix p;
    p.rows = matrix.rows();
    p.cols = matrix.cols();
    p.groupSize = matrix.groupSize();

    const int64_t total = p.rows * p.cols;
    p.nibbles.assign(static_cast<size_t>((total + 1) / 2), 0);
    for (int64_t r = 0; r < p.rows; ++r) {
        const auto codes = matrix.rowCodes(r);
        for (int64_t c = 0; c < p.cols; ++c) {
            const int64_t flat = r * p.cols + c;
            // Codes occupy 4 bits in both representations: MANT codes
            // are sign-magnitude nibbles; INT-group codes are 4-bit
            // two's complement.
            const uint8_t nib =
                static_cast<uint8_t>(codes[static_cast<size_t>(c)]) &
                0x0f;
            auto &byte = p.nibbles[static_cast<size_t>(flat / 2)];
            byte = (flat % 2 == 0)
                       ? static_cast<uint8_t>((byte & 0xf0) | nib)
                       : static_cast<uint8_t>((byte & 0x0f) |
                                              (nib << 4));
        }
    }

    const int64_t groups = p.rows * matrix.groupsPerRow();
    p.scaleBits.reserve(static_cast<size_t>(groups));
    p.typeBytes.reserve(static_cast<size_t>(groups));
    for (int64_t r = 0; r < p.rows; ++r) {
        for (int64_t g = 0; g < matrix.groupsPerRow(); ++g) {
            const MantGroupMeta &m = matrix.meta(r, g);
            p.scaleBits.push_back(floatToHalfBits(m.scale));
            p.typeBytes.push_back(static_cast<uint8_t>(
                (m.isInt ? 0x80 : 0x00) | (m.a & 0x7f)));
        }
    }
    return p;
}

MantQuantizedMatrix
unpack(const PackedMantMatrix &packed)
{
    // Validate before the sign-extend loop below indexes metadata by
    // geometry; unpack is public and must not read out of bounds (or
    // overflow rows * cols) for any caller, not just readPacked.
    if (!plausibleDims(packed.rows, packed.cols)) {
        throw std::invalid_argument(
            "unpack: inconsistent PackedMantMatrix");
    }
    const int64_t total = packed.rows * packed.cols;
    if (static_cast<int64_t>(packed.nibbles.size()) !=
            (total + 1) / 2 ||
        static_cast<int64_t>(packed.scaleBits.size()) !=
            packed.rows * groupsPerRowFor(packed.cols,
                                          packed.groupSize) ||
        packed.typeBytes.size() != packed.scaleBits.size()) {
        throw std::invalid_argument(
            "unpack: inconsistent PackedMantMatrix");
    }
    std::vector<int8_t> codes(static_cast<size_t>(total));
    for (int64_t flat = 0; flat < total; ++flat) {
        const uint8_t byte =
            packed.nibbles[static_cast<size_t>(flat / 2)];
        uint8_t nib = (flat % 2 == 0) ? (byte & 0x0f) : (byte >> 4);
        // INT-group codes sign-extend from 4 bits at decode; MANT
        // codes are used as nibbles either way, so sign-extension is
        // applied per group below once metadata is known.
        codes[static_cast<size_t>(flat)] = static_cast<int8_t>(nib);
    }

    const int64_t gsize =
        effectiveGroupSize(packed.cols, packed.groupSize);
    const int64_t groups_per_row =
        groupsPerRowFor(packed.cols, packed.groupSize);
    std::vector<MantGroupMeta> meta;
    meta.reserve(packed.scaleBits.size());
    for (size_t i = 0; i < packed.scaleBits.size(); ++i) {
        MantGroupMeta m;
        m.scale = halfBitsToFloat(packed.scaleBits[i]);
        m.isInt = (packed.typeBytes[i] & 0x80) != 0;
        m.a = static_cast<uint8_t>(packed.typeBytes[i] & 0x7f);
        meta.push_back(m);
    }

    // Sign-extend INT-group nibbles back to int8 two's complement.
    for (int64_t r = 0; r < packed.rows; ++r) {
        for (int64_t g = 0; g < groups_per_row; ++g) {
            const MantGroupMeta &m =
                meta[static_cast<size_t>(r * groups_per_row + g)];
            if (!m.isInt)
                continue;
            const int64_t k0 = g * gsize;
            const int64_t len = std::min(gsize, packed.cols - k0);
            for (int64_t i = 0; i < len; ++i) {
                int8_t &code =
                    codes[static_cast<size_t>(r * packed.cols + k0 +
                                              i)];
                if (code & 0x08)
                    code = static_cast<int8_t>(code | 0xf0);
            }
        }
    }
    return MantQuantizedMatrix::fromParts(packed.rows, packed.cols,
                                          packed.groupSize,
                                          std::move(codes),
                                          std::move(meta));
}

void
writePacked(std::ostream &os, const PackedMantMatrix &packed)
{
    os.write(kMagic, sizeof(kMagic));
    writeScalar(os, kVersion);
    writeScalar(os, packed.rows);
    writeScalar(os, packed.cols);
    writeScalar(os, packed.groupSize);
    writeScalar(os, static_cast<uint64_t>(packed.nibbles.size()));
    writeScalar(os, static_cast<uint64_t>(packed.scaleBits.size()));
    os.write(reinterpret_cast<const char *>(packed.nibbles.data()),
             static_cast<std::streamsize>(packed.nibbles.size()));
    os.write(reinterpret_cast<const char *>(packed.scaleBits.data()),
             static_cast<std::streamsize>(packed.scaleBits.size() * 2));
    os.write(reinterpret_cast<const char *>(packed.typeBytes.data()),
             static_cast<std::streamsize>(packed.typeBytes.size()));
    if (!os)
        throw std::runtime_error("writePacked: stream failure");
}

PackedMantMatrix
readPacked(std::istream &is)
{
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw std::runtime_error("readPacked: bad magic");
    const uint32_t version = readScalar<uint32_t>(is);
    if (version != kVersion)
        throw std::runtime_error("readPacked: unsupported version");

    PackedMantMatrix p;
    p.rows = readScalar<int64_t>(is);
    p.cols = readScalar<int64_t>(is);
    p.groupSize = readScalar<int64_t>(is);
    if (!plausibleDims(p.rows, p.cols) || p.groupSize < 0)
        throw std::runtime_error("readPacked: implausible header");
    const uint64_t n_nibbles = readScalar<uint64_t>(is);
    const uint64_t n_groups = readScalar<uint64_t>(is);
    if (n_nibbles !=
        static_cast<uint64_t>((p.rows * p.cols + 1) / 2)) {
        throw std::runtime_error("readPacked: nibble count mismatch");
    }
    // unpack() indexes metadata as rows * groupsPerRow; a stream whose
    // group count disagrees with its own geometry would read out of
    // bounds there, so reject it at the header.
    const int64_t groups_per_row =
        groupsPerRowFor(p.cols, p.groupSize);
    if (n_groups != static_cast<uint64_t>(p.rows * groups_per_row)) {
        throw std::runtime_error("readPacked: group count mismatch");
    }
    // A self-consistent hostile header can still name buffer sizes in
    // the terabytes; when the stream is seekable, require the payload
    // to actually be present before allocating anything.
    const std::streampos here = is.tellg();
    if (here != std::streampos(-1)) {
        is.seekg(0, std::ios::end);
        const std::streampos end = is.tellg();
        is.clear();
        is.seekg(here);
        const uint64_t avail =
            end > here ? static_cast<uint64_t>(end - here) : 0;
        if (avail < n_nibbles + n_groups * 3)
            throw std::runtime_error("readPacked: truncated payload");
    }
    try {
        readVector(is, p.nibbles, n_nibbles);
        readVector(is, p.scaleBits, n_groups);
        readVector(is, p.typeBytes, n_groups);
    } catch (const std::bad_alloc &) {
        throw std::runtime_error(
            "readPacked: header demands implausible allocation");
    } catch (const std::length_error &) {
        throw std::runtime_error(
            "readPacked: header demands implausible allocation");
    }
    return p;
}

} // namespace mant
