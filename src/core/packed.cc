#include "core/packed.h"

#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "tensor/fp16.h"

namespace mant {

namespace {

constexpr char kMagic[4] = {'M', 'A', 'N', 'T'};
constexpr uint32_t kVersion = 1;

template <typename T>
void
writeScalar(std::ostream &os, T value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

template <typename T>
T
readScalar(std::istream &is)
{
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof(value));
    if (!is)
        throw std::runtime_error("readPacked: truncated stream");
    return value;
}

} // namespace

int64_t
PackedMantMatrix::storageBytes() const
{
    return static_cast<int64_t>(nibbles.size()) +
           static_cast<int64_t>(scaleBits.size()) * 2 +
           static_cast<int64_t>(typeBytes.size());
}

double
PackedMantMatrix::bitsPerElement() const
{
    const double elems = static_cast<double>(rows) *
                         static_cast<double>(cols);
    return elems > 0.0 ? 8.0 * static_cast<double>(storageBytes()) /
                             elems
                       : 0.0;
}

PackedMantMatrix
pack(const MantQuantizedMatrix &matrix)
{
    PackedMantMatrix p;
    p.rows = matrix.rows();
    p.cols = matrix.cols();
    p.groupSize = matrix.groupSize();

    const int64_t total = p.rows * p.cols;
    p.nibbles.assign(static_cast<size_t>((total + 1) / 2), 0);
    for (int64_t r = 0; r < p.rows; ++r) {
        const auto codes = matrix.rowCodes(r);
        for (int64_t c = 0; c < p.cols; ++c) {
            const int64_t flat = r * p.cols + c;
            // Codes occupy 4 bits in both representations: MANT codes
            // are sign-magnitude nibbles; INT-group codes are 4-bit
            // two's complement.
            const uint8_t nib =
                static_cast<uint8_t>(codes[static_cast<size_t>(c)]) &
                0x0f;
            auto &byte = p.nibbles[static_cast<size_t>(flat / 2)];
            byte = (flat % 2 == 0)
                       ? static_cast<uint8_t>((byte & 0xf0) | nib)
                       : static_cast<uint8_t>((byte & 0x0f) |
                                              (nib << 4));
        }
    }

    const int64_t groups = p.rows * matrix.groupsPerRow();
    p.scaleBits.reserve(static_cast<size_t>(groups));
    p.typeBytes.reserve(static_cast<size_t>(groups));
    for (int64_t r = 0; r < p.rows; ++r) {
        for (int64_t g = 0; g < matrix.groupsPerRow(); ++g) {
            const MantGroupMeta &m = matrix.meta(r, g);
            p.scaleBits.push_back(floatToHalfBits(m.scale));
            p.typeBytes.push_back(static_cast<uint8_t>(
                (m.isInt ? 0x80 : 0x00) | (m.a & 0x7f)));
        }
    }
    return p;
}

MantQuantizedMatrix
unpack(const PackedMantMatrix &packed)
{
    const int64_t total = packed.rows * packed.cols;
    std::vector<int8_t> codes(static_cast<size_t>(total));
    for (int64_t flat = 0; flat < total; ++flat) {
        const uint8_t byte =
            packed.nibbles[static_cast<size_t>(flat / 2)];
        uint8_t nib = (flat % 2 == 0) ? (byte & 0x0f) : (byte >> 4);
        // INT-group codes sign-extend from 4 bits at decode; MANT
        // codes are used as nibbles either way, so sign-extension is
        // applied per group below once metadata is known.
        codes[static_cast<size_t>(flat)] = static_cast<int8_t>(nib);
    }

    const int64_t gsize = packed.groupSize > 0
                              ? std::min(packed.groupSize, packed.cols)
                              : packed.cols;
    const int64_t groups_per_row = (packed.cols + gsize - 1) / gsize;
    std::vector<MantGroupMeta> meta;
    meta.reserve(packed.scaleBits.size());
    for (size_t i = 0; i < packed.scaleBits.size(); ++i) {
        MantGroupMeta m;
        m.scale = halfBitsToFloat(packed.scaleBits[i]);
        m.isInt = (packed.typeBytes[i] & 0x80) != 0;
        m.a = static_cast<uint8_t>(packed.typeBytes[i] & 0x7f);
        meta.push_back(m);
    }

    // Sign-extend INT-group nibbles back to int8 two's complement.
    for (int64_t r = 0; r < packed.rows; ++r) {
        for (int64_t g = 0; g < groups_per_row; ++g) {
            const MantGroupMeta &m =
                meta[static_cast<size_t>(r * groups_per_row + g)];
            if (!m.isInt)
                continue;
            const int64_t k0 = g * gsize;
            const int64_t len = std::min(gsize, packed.cols - k0);
            for (int64_t i = 0; i < len; ++i) {
                int8_t &code =
                    codes[static_cast<size_t>(r * packed.cols + k0 +
                                              i)];
                if (code & 0x08)
                    code = static_cast<int8_t>(code | 0xf0);
            }
        }
    }
    return MantQuantizedMatrix::fromParts(packed.rows, packed.cols,
                                          packed.groupSize,
                                          std::move(codes),
                                          std::move(meta));
}

void
writePacked(std::ostream &os, const PackedMantMatrix &packed)
{
    os.write(kMagic, sizeof(kMagic));
    writeScalar(os, kVersion);
    writeScalar(os, packed.rows);
    writeScalar(os, packed.cols);
    writeScalar(os, packed.groupSize);
    writeScalar(os, static_cast<uint64_t>(packed.nibbles.size()));
    writeScalar(os, static_cast<uint64_t>(packed.scaleBits.size()));
    os.write(reinterpret_cast<const char *>(packed.nibbles.data()),
             static_cast<std::streamsize>(packed.nibbles.size()));
    os.write(reinterpret_cast<const char *>(packed.scaleBits.data()),
             static_cast<std::streamsize>(packed.scaleBits.size() * 2));
    os.write(reinterpret_cast<const char *>(packed.typeBytes.data()),
             static_cast<std::streamsize>(packed.typeBytes.size()));
    if (!os)
        throw std::runtime_error("writePacked: stream failure");
}

PackedMantMatrix
readPacked(std::istream &is)
{
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw std::runtime_error("readPacked: bad magic");
    const uint32_t version = readScalar<uint32_t>(is);
    if (version != kVersion)
        throw std::runtime_error("readPacked: unsupported version");

    PackedMantMatrix p;
    p.rows = readScalar<int64_t>(is);
    p.cols = readScalar<int64_t>(is);
    p.groupSize = readScalar<int64_t>(is);
    if (p.rows < 0 || p.cols < 0 || p.groupSize < 0 ||
        p.rows * p.cols > (int64_t{1} << 40)) {
        throw std::runtime_error("readPacked: implausible header");
    }
    const uint64_t n_nibbles = readScalar<uint64_t>(is);
    const uint64_t n_groups = readScalar<uint64_t>(is);
    if (n_nibbles !=
        static_cast<uint64_t>((p.rows * p.cols + 1) / 2)) {
        throw std::runtime_error("readPacked: nibble count mismatch");
    }
    p.nibbles.resize(n_nibbles);
    p.scaleBits.resize(n_groups);
    p.typeBytes.resize(n_groups);
    is.read(reinterpret_cast<char *>(p.nibbles.data()),
            static_cast<std::streamsize>(n_nibbles));
    is.read(reinterpret_cast<char *>(p.scaleBits.data()),
            static_cast<std::streamsize>(n_groups * 2));
    is.read(reinterpret_cast<char *>(p.typeBytes.data()),
            static_cast<std::streamsize>(n_groups));
    if (!is)
        throw std::runtime_error("readPacked: truncated payload");
    return p;
}

} // namespace mant
