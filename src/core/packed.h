/**
 * @file
 * Packed storage and binary serialization for MANT-quantized matrices,
 * plus the v2 tile-panel wire format and the multi-tensor model
 * container (byte-by-byte spec: docs/FORMAT.md).
 *
 * v1 ("MANT" version 1): flat row-major nibbles + per-group FP16
 * scale / type byte — the exact memory layout the paper's DRAM-traffic
 * accounting assumes (4 bits/element + 24 bits/group). v2 ("MANT"
 * version 2) replaces the flat nibbles with a tile-panel section in
 * the exact layout the fusedTilePanel microkernel streams
 * (core/packed_tiles.h), so the bytes on disk are the bytes the GEMM
 * consumes: a 64-byte-aligned section can be mmap'd and wrapped in a
 * MantTilesView with zero copies. The model container bundles one
 * tile section per weight matrix plus float arrays and model metadata
 * behind a named TOC, so a whole transformer loads from one file.
 */

#ifndef MANT_CORE_PACKED_H_
#define MANT_CORE_PACKED_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/fused_gemm.h"
#include "core/packed_tiles.h"

namespace mant {

/**
 * Typed error for malformed packed streams, tile sections and model
 * containers. offset() is the byte offset — within the stream, the
 * section, or the mapped file, as documented per thrower — at which
 * validation failed; the message carries it too ("... (at offset N)").
 */
class PackedFormatError : public std::runtime_error
{
  public:
    PackedFormatError(const std::string &what, uint64_t offset);

    uint64_t offset() const { return offset_; }

  private:
    uint64_t offset_;
};

/**
 * A serialized MANT weight blob: packed nibbles plus group metadata
 * (the v1 flat layout).
 */
struct PackedMantMatrix
{
    int64_t rows = 0;
    int64_t cols = 0;
    int64_t groupSize = 0;

    /** Two 4-bit codes per byte, row-major, low nibble first. */
    std::vector<uint8_t> nibbles;

    /** Per-group: FP16 scale bits. */
    std::vector<uint16_t> scaleBits;

    /** Per-group: coefficient a in bits 6..0, INT-option flag bit 7. */
    std::vector<uint8_t> typeBytes;

    /** Stored bytes (codes + metadata) of the v1 flat layout, the
     *  DRAM footprint of a v1 stream. */
    int64_t storageBytes() const;

    /** Effective bits per weight element in the v1 flat layout. */
    double bitsPerElement() const;

    /**
     * Stored bytes of the same matrix in the v2 tile-panel layout
     * (packed tile codes + SoA f32/u8/u8 metadata, panel padding
     * included). A stream holds either the flat nibbles (v1) or the
     * tile section (v2), never both — so footprint reporting picks
     * one of storageBytes()/tiledStorageBytes(), and nothing is ever
     * double-counted. Throws std::invalid_argument on implausible
     * geometry (hostile hand-assembled structs).
     */
    int64_t tiledStorageBytes() const;

    /** Effective bits per weight element in the v2 tile layout. */
    double tiledBitsPerElement() const;
};

/** Pack a quantized matrix into the 4-bit wire format. */
PackedMantMatrix pack(const MantQuantizedMatrix &matrix);

/** Unpack back to the kernel-friendly one-code-per-byte form. */
MantQuantizedMatrix unpack(const PackedMantMatrix &packed);

/**
 * Serialize to a binary stream in the v1 flat layout ("MANT" magic +
 * version 1 + little-endian fields). Throws std::runtime_error on
 * stream failure.
 */
void writePacked(std::ostream &os, const PackedMantMatrix &packed);

/**
 * Deserialize a v1 or v2 stream; v2 tile sections are unpacked into
 * the flat representation. Throws PackedFormatError (a
 * std::runtime_error) on malformed input: bad magic, unsupported
 * version, truncated header or payload, or a header whose counts
 * disagree with its own geometry. Error messages and
 * PackedFormatError::offset() carry the stream offset at which
 * validation failed.
 */
PackedMantMatrix readPacked(std::istream &is);

/**
 * Serialize tiles to a v2 binary stream: "MANT" magic + version 2,
 * zero-padded to byte 64, then the tile-panel section (so a v2 file
 * on disk can also be mmap'd directly: its section base is 64-byte
 * aligned). Throws std::runtime_error on stream failure.
 */
void writePackedTiles(std::ostream &os, const MantTilesView &tiles);
void writePackedTiles(std::ostream &os, const MantPackedTiles &tiles);

/**
 * Deserialize a stream into owning tile storage: v2 streams read the
 * tile section directly (bytes land in the exact layout the GEMM
 * streams); v1 streams are unpacked and re-tiled. Same error contract
 * as readPacked().
 */
MantPackedTiles readPackedTiles(std::istream &is);

/**
 * Size in bytes of the v2 tile-panel section for a (rows, cols,
 * groupSize) matrix — header + aligned code/metadata arrays. Throws
 * std::invalid_argument on implausible dimensions.
 */
uint64_t tileSectionSize(int64_t rows, int64_t cols,
                         int64_t groupSize);

/**
 * Write one bare tile-panel section (no magic/version prefix) —
 * exactly tileSectionSize() bytes. The exporter calls this once per
 * weight matrix; writePackedTiles() wraps it for standalone files.
 */
void writeTileSection(std::ostream &os, const MantTilesView &tiles);

/**
 * Validate an in-memory v2 tile-panel section and return a zero-copy
 * view into it. `data` must stay alive (and unmodified) for the
 * lifetime of the view — this is the mmap load path, where pack-time
 * validation becomes load-time validation. Requires `data` 64-byte
 * aligned (container sections and mmap bases always are). Throws
 * PackedFormatError on truncation, misalignment, unnormalized group
 * size, or any header field that disagrees with the geometry derived
 * from (rows, cols, groupSize); offsets in the error are relative to
 * `data` plus `baseOffset` (pass the section's file offset to get
 * file-absolute positions).
 */
MantTilesView mapTileSection(const void *data, size_t size,
                             uint64_t baseOffset = 0);

/** Section kinds in a MANT model container. */
enum class ModelSectionKind : uint32_t
{
    TilePack = 1, ///< v2 tile-panel section (one weight matrix)
    F32 = 2,      ///< raw little-endian f32 array
    Meta = 3,     ///< model metadata blob (model/model_file.cc)
};

/** One parsed TOC entry of a model container. */
struct ModelSection
{
    std::string name;
    ModelSectionKind kind = ModelSectionKind::F32;
    uint64_t offset = 0; ///< absolute file offset, 64-byte aligned
    uint64_t size = 0;   ///< payload bytes
};

/**
 * Parse and validate a model container's header and TOC against the
 * mapping bounds: magic/version, section count cap, per-entry name
 * well-formedness, known kind, zeroed reserved fields, 64-byte offset
 * alignment, bounds (offset + size inside the mapping,
 * overflow-checked), no duplicate names, and no overlap between
 * sections or with the TOC itself. Section *payloads* are not
 * interpreted here. Throws PackedFormatError with file-absolute
 * offsets. Returns the entries in file order.
 */
std::vector<ModelSection> parseModelContainer(const void *data,
                                              size_t size);

/**
 * Stream-writer for the model container: declare every section up
 * front (name, kind, exact payload size, and an emit callback), then
 * write() lays out the header, TOC and 64-byte-aligned payloads in
 * one forward pass — no seeking, so it works on any ostream. Throws
 * std::invalid_argument for invalid names/sizes at add() time and
 * std::runtime_error if an emit callback writes a different byte
 * count than declared or the stream fails.
 */
class ModelContainerWriter
{
  public:
    using EmitFn = std::function<void(std::ostream &)>;

    /** Section names: 1..39 bytes, no NUL; duplicates rejected. */
    void add(std::string name, ModelSectionKind kind, uint64_t size,
             EmitFn emit);

    void write(std::ostream &os) const;

  private:
    struct Pending
    {
        ModelSection section;
        EmitFn emit;
    };
    std::vector<Pending> sections_;
};

} // namespace mant

#endif // MANT_CORE_PACKED_H_
