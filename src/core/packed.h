/**
 * @file
 * Packed storage and binary serialization for MANT-quantized matrices.
 *
 * MantQuantizedMatrix keeps one code per byte for fast kernels; for
 * storage and transport the codes pack two-per-byte (true 4-bit
 * footprint) with the per-group metadata (FP16 scale + 8-bit
 * coefficient/type) alongside — the exact memory layout the paper's
 * DRAM-traffic accounting assumes (4 bits/element + 24 bits/group).
 */

#ifndef MANT_CORE_PACKED_H_
#define MANT_CORE_PACKED_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/fused_gemm.h"

namespace mant {

/**
 * A serialized MANT weight blob: packed nibbles plus group metadata.
 */
struct PackedMantMatrix
{
    int64_t rows = 0;
    int64_t cols = 0;
    int64_t groupSize = 0;

    /** Two 4-bit codes per byte, row-major, low nibble first. */
    std::vector<uint8_t> nibbles;

    /** Per-group: FP16 scale bits. */
    std::vector<uint16_t> scaleBits;

    /** Per-group: coefficient a in bits 6..0, INT-option flag bit 7. */
    std::vector<uint8_t> typeBytes;

    /** Stored bytes (codes + metadata), the DRAM footprint. */
    int64_t storageBytes() const;

    /** Effective bits per weight element. */
    double bitsPerElement() const;
};

/** Pack a quantized matrix into the 4-bit wire format. */
PackedMantMatrix pack(const MantQuantizedMatrix &matrix);

/** Unpack back to the kernel-friendly one-code-per-byte form. */
MantQuantizedMatrix unpack(const PackedMantMatrix &packed);

/**
 * Serialize to a binary stream ("MANT" magic + version + little-endian
 * fields). Throws std::runtime_error on stream failure.
 */
void writePacked(std::ostream &os, const PackedMantMatrix &packed);

/**
 * Deserialize; throws std::runtime_error on malformed input: bad
 * magic, unsupported version, truncated header or payload, or a
 * header whose nibble/group counts disagree with its own geometry
 * (rows x cols and rows x groupsPerRow respectively).
 */
PackedMantMatrix readPacked(std::istream &is);

} // namespace mant

#endif // MANT_CORE_PACKED_H_
