#include "core/packed_tiles.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "core/parallel.h"

namespace mant {

namespace {

/** Cache-block geometry of fusedGemmTiled. The K block is expressed
 *  in elements and snapped to whole groups so every group contributes
 *  exactly one (mac, sac) pair per cell — the bit-exactness condition
 *  against the unblocked reference. */
constexpr int64_t kTileMC = 64;      ///< activation rows per L2 block
constexpr int64_t kTileNCPanels = 4; ///< panels per task (32 columns)
constexpr int64_t kTileKC = 4096;    ///< reduction elements per block

/** Element-count cap shared with the packed stream readers: keeps
 *  every rows/cols product (and the derived byte counts) overflow-free
 *  in int64 arithmetic. */
constexpr int64_t kMaxTileElems = int64_t{1} << 40;

/** Sign-magnitude nibble of one stored code. */
uint8_t
codeNibble(int8_t code, bool isInt)
{
    if (!isInt)
        return static_cast<uint8_t>(code) & 0xf;
    if (code < -7 || code > 7)
        throw std::invalid_argument(
            "MantPackedTiles: INT code outside the [-7, 7] INT4 range");
    return code < 0 ? static_cast<uint8_t>(0x8 | -code)
                    : static_cast<uint8_t>(code);
}

} // namespace

MantTilesView
MantTilesView::geometry(int64_t rows, int64_t cols, int64_t groupSize)
{
    if (rows < 0 || cols < 0 ||
        (rows > 0 && cols > kMaxTileElems / rows))
        throw std::invalid_argument(
            "MantTilesView: implausible dimensions");
    MantTilesView v;
    v.rows_ = rows;
    v.cols_ = cols;
    v.groupSize_ = effectiveGroupSize(cols, groupSize);
    v.groupsPerRow_ = groupsPerRowFor(cols, groupSize);
    v.panels_ = (rows + kTilePanelCols - 1) / kTilePanelCols;
    v.fullTileBytes_ = (v.groupSize_ + 1) / 2 * kTilePanelCols;
    // All groups but the last are full-length (group sizes are
    // normalized by effectiveGroupSize), so per-panel offsets are
    // affine: the last group's possibly-shorter block ends the panel.
    const int64_t last_len =
        v.groupsPerRow_ > 0
            ? cols - (v.groupsPerRow_ - 1) * v.groupSize_
            : 0;
    v.panelBytes_ =
        v.groupsPerRow_ > 0
            ? (v.groupsPerRow_ - 1) * v.fullTileBytes_ +
                  (last_len + 1) / 2 * kTilePanelCols
            : 0;
    return v;
}

MantTilesView
MantTilesView::fromParts(int64_t rows, int64_t cols, int64_t groupSize,
                         const uint8_t *codes, const float *scales,
                         const uint8_t *coeff, const uint8_t *isInt)
{
    MantTilesView v = geometry(rows, cols, groupSize);
    if ((!codes && v.codesBytes() > 0) ||
        ((!scales || !coeff || !isInt) && v.metaCount() > 0))
        throw std::invalid_argument(
            "MantTilesView: null storage for non-empty geometry");
    v.codes_ = codes;
    v.scales_ = scales;
    v.coeff_ = coeff;
    v.isInt_ = isInt;
    return v;
}

std::vector<int8_t>
MantTilesView::unpackRowCodes(int64_t row) const
{
    std::vector<int8_t> out(static_cast<size_t>(cols_), 0);
    const int64_t p = row / kTilePanelCols;
    const int c = static_cast<int>(row % kTilePanelCols);
    for (int64_t g = 0; g < groupsPerRow_; ++g) {
        const int64_t k0 = g * groupSize_;
        const int64_t len = std::min(groupSize_, cols_ - k0);
        const uint8_t *src = tileCodes(p, g);
        const bool isInt = tileIsInt(p, g)[static_cast<size_t>(c)] != 0;
        for (int64_t i = 0; i < len; ++i) {
            const uint8_t b = src[(i / 2) * kTilePanelCols + c];
            const uint8_t nib = (i % 2 == 0) ? (b & 0xf)
                                             : ((b >> 4) & 0xf);
            out[static_cast<size_t>(k0 + i)] =
                isInt ? static_cast<int8_t>(
                            (nib & 0x8) ? -(nib & 0x7) : (nib & 0x7))
                      : static_cast<int8_t>(nib);
        }
    }
    return out;
}

MantGroupMeta
MantTilesView::metaAt(int64_t row, int64_t group) const
{
    const int64_t p = row / kTilePanelCols;
    const size_t c = static_cast<size_t>(row % kTilePanelCols);
    MantGroupMeta m;
    m.scale = tileScales(p, group)[c];
    m.a = tileCoeffs(p, group)[c];
    m.isInt = tileIsInt(p, group)[c] != 0;
    return m;
}

MantPackedTiles
MantPackedTiles::pack(const MantQuantizedMatrix &w)
{
    // Derive the geometry through the view validator so pack() and
    // the load path can never disagree about layout.
    const MantTilesView geom =
        MantTilesView::geometry(w.rows(), w.cols(), w.groupSize());

    MantPackedTiles t;
    t.rows_ = geom.rows_;
    t.cols_ = geom.cols_;
    t.groupSize_ = geom.groupSize_;
    t.groupsPerRow_ = geom.groupsPerRow_;
    t.panels_ = geom.panels_;
    t.panelBytes_ = geom.panelBytes_;
    t.fullTileBytes_ = geom.fullTileBytes_;

    const size_t metaCount = static_cast<size_t>(geom.metaCount());
    t.codes_.assign(static_cast<size_t>(geom.codesBytes()), 0);
    t.scales_.assign(metaCount, 0.0f);
    t.coeff_.assign(metaCount, 0);
    // Padded panel columns default to INT with scale 0: the kernel
    // computes their (zero) lanes branch-free and the combine
    // multiplies them away; they are never written to the output.
    t.isInt_.assign(metaCount, 1);

    // Panels are independent: each writes its own code/meta stripe,
    // so the repack is bit-identical at any thread count.
    parallelFor(0, t.panels_, 1, [&](int64_t pb, int64_t pe, int64_t) {
        for (int64_t p = pb; p < pe; ++p) {
            const int cols_here = static_cast<int>(std::min<int64_t>(
                kTilePanelCols, t.rows_ - p * kTilePanelCols));
            for (int c = 0; c < cols_here; ++c) {
                const int64_t row = p * kTilePanelCols + c;
                const int8_t *src = w.rowCodes(row).data();
                for (int64_t g = 0; g < t.groupsPerRow_; ++g) {
                    const MantGroupMeta &m = w.meta(row, g);
                    const size_t mi =
                        t.tileMetaIndex(p, g) + static_cast<size_t>(c);
                    t.scales_[mi] = m.scale;
                    t.coeff_[mi] = m.a;
                    t.isInt_[mi] = m.isInt ? 1 : 0;

                    const int64_t k0 = g * t.groupSize_;
                    const int64_t len =
                        std::min(t.groupSize_, t.cols_ - k0);
                    uint8_t *dst = t.codes_.data() +
                                   p * t.panelBytes_ +
                                   g * t.fullTileBytes_;
                    for (int64_t i = 0; i < len; ++i) {
                        const uint8_t nib =
                            codeNibble(src[k0 + i], m.isInt);
                        uint8_t &b =
                            dst[(i / 2) * kTilePanelCols + c];
                        b = (i % 2 == 0)
                                ? static_cast<uint8_t>(
                                      (b & 0xf0) | nib)
                                : static_cast<uint8_t>(
                                      (b & 0x0f) | (nib << 4));
                    }
                }
            }
        }
    });
    return t;
}

MantPackedTiles
MantPackedTiles::fromParts(int64_t rows, int64_t cols,
                           int64_t groupSize,
                           std::vector<uint8_t> codes,
                           std::vector<float> scales,
                           std::vector<uint8_t> coeff,
                           std::vector<uint8_t> isInt)
{
    const MantTilesView geom =
        MantTilesView::geometry(rows, cols, groupSize);
    if (static_cast<int64_t>(codes.size()) != geom.codesBytes() ||
        static_cast<int64_t>(scales.size()) != geom.metaCount() ||
        static_cast<int64_t>(coeff.size()) != geom.metaCount() ||
        static_cast<int64_t>(isInt.size()) != geom.metaCount())
        throw std::invalid_argument(
            "MantPackedTiles::fromParts: array sizes disagree with "
            "the tile geometry");
    MantPackedTiles t;
    t.rows_ = geom.rows_;
    t.cols_ = geom.cols_;
    t.groupSize_ = geom.groupSize_;
    t.groupsPerRow_ = geom.groupsPerRow_;
    t.panels_ = geom.panels_;
    t.panelBytes_ = geom.panelBytes_;
    t.fullTileBytes_ = geom.fullTileBytes_;
    t.codes_ = std::move(codes);
    t.scales_ = std::move(scales);
    t.coeff_ = std::move(coeff);
    t.isInt_ = std::move(isInt);
    return t;
}

void
fusedGemmTiledInto(const Int8QuantizedActivations &x,
                   const MantTilesView &w, Tensor &out)
{
    if (x.cols() != w.cols())
        throw std::invalid_argument(
            "fusedGemmTiled: reduction dims differ");
    if (x.groupsPerRow() != w.groupsPerRow())
        throw std::invalid_argument(
            "fusedGemmTiled: group layout mismatch");

    const int64_t m_dim = x.rows();
    const int64_t n_dim = w.rows();
    const int64_t k_dim = x.cols();
    const int64_t gsize = w.groupSize();
    const int64_t groups = w.groupsPerRow();
    const int64_t panels = w.panels();

    const Shape shape{m_dim, n_dim};
    if (!(out.shape() == shape))
        out = Tensor(shape);
    if (m_dim == 0 || n_dim == 0)
        return;

    // K blocks snapped to whole groups: a group split across blocks
    // would emit two partial double contributions per cell and break
    // bit-parity with the unblocked reference.
    const int64_t groupsPerKb =
        std::max<int64_t>(1, gsize > 0 ? kTileKC / gsize : 1);
    const int64_t numKb =
        groups > 0 ? (groups + groupsPerKb - 1) / groupsPerKb : 0;
    const int64_t numMb = (m_dim + kTileMC - 1) / kTileMC;
    // Small batches (the batched-serving decode shape, M well under
    // one MC block) leave numMb == 1, making panel blocks the only
    // source of parallel tasks; shrink the panel block to one so the
    // thread pool still fills on narrow matrices. Per-cell group
    // accumulation order is unaffected by the task grid, so bit-parity
    // with the reference holds at any block size.
    const int64_t ncPanels =
        m_dim <= kTileMC / 2 ? 1 : kTileNCPanels;
    const int64_t numNc = (panels + ncPanels - 1) / ncPanels;

    // Task = (M block, panel block). Every output cell belongs to
    // exactly one task and accumulates its groups in ascending order
    // inside it, so the result is bit-identical at any thread count.
    const SimdOps &ops = simdOps();
    parallelFor(
        0, numMb * numNc, 1, [&](int64_t tb, int64_t te, int64_t) {
            for (int64_t task = tb; task < te; ++task) {
                const int64_t mb = task / numNc;
                const int64_t nc = task % numNc;
                const int64_t m0 = mb * kTileMC;
                const int64_t m1 = std::min(m_dim, m0 + kTileMC);
                const int64_t p0 = nc * ncPanels;
                const int64_t p1 =
                    std::min(panels, p0 + ncPanels);
                for (int64_t p = p0; p < p1; ++p) {
                    double acc[kTileMC][kTilePanelCols];
                    for (int64_t m = m0; m < m1; ++m)
                        std::memset(acc[m - m0], 0, sizeof(acc[0]));
                    for (int64_t kb = 0; kb < numKb; ++kb) {
                        const int64_t g0 = kb * groupsPerKb;
                        const int64_t g1 =
                            std::min(groups, g0 + groupsPerKb);
                        for (int64_t mt = m0; mt < m1;
                             mt += kTileMaxRows) {
                            const int mr = static_cast<int>(
                                std::min<int64_t>(kTileMaxRows,
                                                  m1 - mt));
                            const int8_t *xrows =
                                x.rowCodes(mt).data();
                            for (int64_t g = g0; g < g1; ++g) {
                                const int64_t k0 = g * gsize;
                                const int64_t len =
                                    std::min(gsize, k_dim - k0);
                                int64_t mac[kTileMaxRows *
                                            kTilePanelCols] = {};
                                int64_t sac[kTileMaxRows *
                                            kTilePanelCols] = {};
                                ops.fusedTilePanel(
                                    xrows + k0, k_dim, mr,
                                    w.tileCodes(p, g), len, mac,
                                    sac);
                                const float *sw =
                                    w.tileScales(p, g).data();
                                const uint8_t *ac =
                                    w.tileCoeffs(p, g).data();
                                const uint8_t *ii =
                                    w.tileIsInt(p, g).data();
                                for (int a = 0; a < mr; ++a) {
                                    const double sx = static_cast<
                                        double>(x.scale(mt + a, g));
                                    double *arow = acc[mt - m0 + a];
                                    const int64_t *am =
                                        mac + a * kTilePanelCols;
                                    const int64_t *as =
                                        sac + a * kTilePanelCols;
                                    for (int c = 0;
                                         c < kTilePanelCols; ++c) {
                                        // Same rounding sequence as
                                        // fusedGemm's combine.
                                        if (ii[c]) {
                                            arow[c] +=
                                                static_cast<double>(
                                                    am[c]) *
                                                sx *
                                                static_cast<double>(
                                                    sw[c]);
                                        } else {
                                            arow[c] +=
                                                (static_cast<double>(
                                                     ac[c]) *
                                                     static_cast<
                                                         double>(
                                                         am[c]) +
                                                 static_cast<double>(
                                                     as[c])) *
                                                sx *
                                                static_cast<double>(
                                                    sw[c]);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    const int64_t n0 = p * kTilePanelCols;
                    const int64_t nCols = std::min<int64_t>(
                        kTilePanelCols, n_dim - n0);
                    for (int64_t m = m0; m < m1; ++m)
                        for (int64_t c = 0; c < nCols; ++c)
                            out.at(m, n0 + c) = static_cast<float>(
                                acc[m - m0][c]);
                }
            }
        });
}

Tensor
fusedGemmTiled(const Int8QuantizedActivations &x,
               const MantTilesView &w)
{
    Tensor out;
    fusedGemmTiledInto(x, w, out);
    return out;
}

} // namespace mant
