/**
 * @file
 * Prepacked tile representation of a MANT-quantized weight matrix and
 * the cache-blocked fused GEMM that consumes it.
 *
 * The reference fusedGemm() stores one 4-bit code per byte and chases
 * `meta(row, group)` strides inside its inner loop; the ANT
 * accelerator line (Guo et al., MICRO '22) shows the custom-type win
 * only materializes when the packed layout is what the compute kernel
 * consumes. The tile layout the fusedTilePanel SIMD microkernel
 * streams:
 *
 *  - weight rows (output features) are grouped into panels of
 *    kTilePanelCols = 8 columns;
 *  - within a panel, each quantization group's codes are stored two
 *    4-bit codes per byte, k-pair-major and panel-column-minor, so
 *    one 8/16-byte load feeds all 8 panel columns at once;
 *  - per-tile metadata (scale, coefficient, INT flag) for the 8 panel
 *    columns of each group is laid out contiguously, so the combine
 *    loop walks flat arrays instead of strided meta lookups;
 *  - plain-INT4 groups are re-encoded from two's complement to
 *    sign-magnitude nibbles at pack time, which makes the microkernel
 *    uniform: the MAC lane of the sign-magnitude decode *is* the
 *    integer dot product for INT groups (the SAC lane is simply
 *    ignored at combine time).
 *
 * Ownership splits in two (the v2 wire-format refactor):
 *
 *  - MantTilesView is a non-owning view over externally owned, const
 *    tile storage — four raw arrays (codes, scales, coefficients, INT
 *    flags) plus geometry. It is what the GEMM consumes, and it can
 *    point directly into an mmap'd model file (core/packed.h's
 *    mapTileSection / model/model_file.h), so the bytes on disk are
 *    the bytes the microkernel streams — no repack, no copy.
 *  - MantPackedTiles owns the same four arrays in vectors; pack()
 *    builds them from a MantQuantizedMatrix (the offline encode), and
 *    view() exposes the owning storage through the same view type.
 *
 * fusedGemmTiled() adds MC/NC/KC cache blocking (K blocks aligned to
 * group boundaries) and multi-row microkernel calls on top. It is
 * bit-identical to fusedGemm() at every thread count and SIMD backend:
 * the integer partial sums are exact, and the per-cell double combine
 * applies groups in the same ascending order with the same rounding
 * sequence (see the determinism contract in docs/ARCHITECTURE.md).
 */

#ifndef MANT_CORE_PACKED_TILES_H_
#define MANT_CORE_PACKED_TILES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/fused_gemm.h"
#include "core/simd.h"

namespace mant {

/**
 * Non-owning view of tile-packed MANT weights: geometry plus four
 * const arrays the caller keeps alive (an mmap'd file section, or a
 * MantPackedTiles' vectors). Trivially copyable, allocation-free —
 * group code-block offsets are affine because quantization group
 * sizes are normalized (every group but the last is full-length), so
 * the view carries no offset table.
 */
class MantTilesView
{
  public:
    MantTilesView() = default;

    /**
     * Assemble a view over externally owned tile storage and validate
     * the geometry (the load-time twin of pack-time validation).
     * `codes` must hold panels * panelBytes bytes; `scales`, `coeff`
     * and `isInt` must hold metaCount() entries each. Throws
     * std::invalid_argument on negative/overflowing dimensions or a
     * null array whose derived length is non-zero. Code and metadata
     * *content* needs no validation: every nibble and meta byte
     * decodes in-bounds (hostile values change results, never memory
     * safety).
     */
    static MantTilesView fromParts(int64_t rows, int64_t cols,
                                   int64_t groupSize,
                                   const uint8_t *codes,
                                   const float *scales,
                                   const uint8_t *coeff,
                                   const uint8_t *isInt);

    /** True once fromParts() (or MantPackedTiles::view()) built it. */
    bool valid() const { return scales_ != nullptr; }

    int64_t rows() const { return rows_; }
    int64_t cols() const { return cols_; }
    int64_t groupSize() const { return groupSize_; }
    int64_t groupsPerRow() const { return groupsPerRow_; }

    /** Number of 8-column panels: ceil(rows / kTilePanelCols). */
    int64_t panels() const { return panels_; }

    /** Packed bytes of one panel (all groups). */
    int64_t panelBytes() const { return panelBytes_; }

    /** Total packed code bytes: panels * panelBytes. */
    int64_t codesBytes() const { return panels_ * panelBytes_; }

    /** Per-tile metadata entries: panels * groupsPerRow * 8. */
    int64_t
    metaCount() const
    {
        return panels_ * groupsPerRow_ * kTilePanelCols;
    }

    /** Packed code block of one (panel, group) tile:
     *  ceil(len / 2) * kTilePanelCols bytes, k-pair-major. */
    const uint8_t *
    tileCodes(int64_t panel, int64_t group) const
    {
        return codes_ + panel * panelBytes_ + group * fullTileBytes_;
    }

    /** Per-tile metadata, kTilePanelCols entries each, contiguous.
     *  Padded panel columns (row >= rows()) read as INT with scale 0
     *  so the microkernel and combine loop never branch on them. */
    std::span<const float>
    tileScales(int64_t panel, int64_t group) const
    {
        return {scales_ + tileMetaIndex(panel, group),
                static_cast<size_t>(kTilePanelCols)};
    }
    std::span<const uint8_t>
    tileCoeffs(int64_t panel, int64_t group) const
    {
        return {coeff_ + tileMetaIndex(panel, group),
                static_cast<size_t>(kTilePanelCols)};
    }
    std::span<const uint8_t>
    tileIsInt(int64_t panel, int64_t group) const
    {
        return {isInt_ + tileMetaIndex(panel, group),
                static_cast<size_t>(kTilePanelCols)};
    }

    /** Raw array bases, for serialization and the zero-copy tests
     *  (asserting a loaded view points into the mapped file). */
    const uint8_t *codesData() const { return codes_; }
    const float *scalesData() const { return scales_; }
    const uint8_t *coeffData() const { return coeff_; }
    const uint8_t *isIntData() const { return isInt_; }

    /**
     * Reverse the repack for one row: one code per byte, MANT groups
     * as sign-magnitude codes, INT groups as two's-complement int8 —
     * byte-identical to MantQuantizedMatrix::rowCodes() of the packed
     * source (round-trip tested).
     */
    std::vector<int8_t> unpackRowCodes(int64_t row) const;

    /** Metadata of one (row, group), identical to the source meta(). */
    MantGroupMeta metaAt(int64_t row, int64_t group) const;

    /**
     * Stored bytes of the v2 tile section this view describes: packed
     * codes plus SoA metadata (f32 scale + coefficient byte + INT
     * flag byte per tile column, padded panel columns included). The
     * tile layout *replaces* the v1 flat layout on the wire — a v2
     * stream carries no flat nibbles, so this is the whole DRAM
     * footprint, never added to PackedMantMatrix::storageBytes().
     */
    int64_t
    storageBytes() const
    {
        return codesBytes() + metaCount() * 6;
    }

    /** Effective bits per weight element in the v2 tile layout. */
    double
    bitsPerElement() const
    {
        const double elems = static_cast<double>(rows_) *
                             static_cast<double>(cols_);
        return elems > 0.0
                   ? 8.0 * static_cast<double>(storageBytes()) / elems
                   : 0.0;
    }

    /** Geometry-only derivation (no storage attached, valid() stays
     *  false): the shared layout calculator behind fromParts(),
     *  pack() and the stream readers — panels/panelBytes/codesBytes/
     *  metaCount of a (rows, cols, groupSize) matrix. Throws
     *  std::invalid_argument on negative/overflowing dimensions. */
    static MantTilesView geometry(int64_t rows, int64_t cols,
                                  int64_t groupSize);

  private:
    friend class MantPackedTiles;

    size_t
    tileMetaIndex(int64_t panel, int64_t group) const
    {
        return static_cast<size_t>(
            (panel * groupsPerRow_ + group) * kTilePanelCols);
    }

    int64_t rows_ = 0, cols_ = 0, groupSize_ = 0, groupsPerRow_ = 0;
    int64_t panels_ = 0, panelBytes_ = 0;
    /** Code bytes of one full-length group's tile:
     *  ceil(groupSize / 2) * kTilePanelCols. Group g's block starts
     *  at g * fullTileBytes_ within its panel (the last group may be
     *  shorter; its block simply ends the panel). */
    int64_t fullTileBytes_ = 0;
    const uint8_t *codes_ = nullptr;
    const float *scales_ = nullptr;
    const uint8_t *coeff_ = nullptr;
    const uint8_t *isInt_ = nullptr;
};

/**
 * Owning tile storage. Immutable after pack()/fromParts(); cheap to
 * move, safe to share across threads. view() is the read interface —
 * the owning accessors below forward to it so code written against
 * either type behaves identically.
 */
class MantPackedTiles
{
  public:
    MantPackedTiles() = default;

    /**
     * Repack a quantized matrix. Throws std::invalid_argument when an
     * INT group carries a code outside the nominal [-7, 7] INT4 range
     * (sign-magnitude nibbles cannot represent -8; real encodes never
     * produce it, only hand-assembled fromParts() inputs can).
     */
    static MantPackedTiles pack(const MantQuantizedMatrix &w);

    /**
     * Adopt already-tile-packed storage (the istream read path of the
     * v2 wire format — bytes are copied off the stream into these
     * vectors). Throws std::invalid_argument when the array lengths
     * disagree with the geometry.
     */
    static MantPackedTiles fromParts(int64_t rows, int64_t cols,
                                     int64_t groupSize,
                                     std::vector<uint8_t> codes,
                                     std::vector<float> scales,
                                     std::vector<uint8_t> coeff,
                                     std::vector<uint8_t> isInt);

    /** Non-owning view of this storage. Valid while *this is alive
     *  and unmoved; rebuilt on demand, so moves stay safe. */
    MantTilesView
    view() const
    {
        return MantTilesView::fromParts(rows_, cols_, groupSize_,
                                        codes_.data(), scales_.data(),
                                        coeff_.data(), isInt_.data());
    }

    int64_t rows() const { return rows_; }
    int64_t cols() const { return cols_; }
    int64_t groupSize() const { return groupSize_; }
    int64_t groupsPerRow() const { return groupsPerRow_; }

    /** Number of 8-column panels: ceil(rows / kTilePanelCols). */
    int64_t panels() const { return panels_; }

    /** Packed bytes of one panel (all groups). */
    int64_t panelBytes() const { return panelBytes_; }

    /** Packed code block of one (panel, group) tile:
     *  ceil(len / 2) * kTilePanelCols bytes, k-pair-major. */
    const uint8_t *
    tileCodes(int64_t panel, int64_t group) const
    {
        return codes_.data() + panel * panelBytes_ +
               group * fullTileBytes_;
    }

    /** Per-tile metadata, kTilePanelCols entries each, contiguous.
     *  Padded panel columns (row >= rows()) read as INT with scale 0
     *  so the microkernel and combine loop never branch on them. */
    std::span<const float>
    tileScales(int64_t panel, int64_t group) const
    {
        return {scales_.data() + tileMetaIndex(panel, group),
                static_cast<size_t>(kTilePanelCols)};
    }
    std::span<const uint8_t>
    tileCoeffs(int64_t panel, int64_t group) const
    {
        return {coeff_.data() + tileMetaIndex(panel, group),
                static_cast<size_t>(kTilePanelCols)};
    }
    std::span<const uint8_t>
    tileIsInt(int64_t panel, int64_t group) const
    {
        return {isInt_.data() + tileMetaIndex(panel, group),
                static_cast<size_t>(kTilePanelCols)};
    }

    /** See MantTilesView::unpackRowCodes(). */
    std::vector<int8_t>
    unpackRowCodes(int64_t row) const
    {
        return view().unpackRowCodes(row);
    }

    /** Metadata of one (row, group), identical to the source meta(). */
    MantGroupMeta
    metaAt(int64_t row, int64_t group) const
    {
        return view().metaAt(row, group);
    }

    /** See MantTilesView::storageBytes()/bitsPerElement(). */
    int64_t storageBytes() const { return view().storageBytes(); }
    double bitsPerElement() const { return view().bitsPerElement(); }

  private:
    size_t
    tileMetaIndex(int64_t panel, int64_t group) const
    {
        return static_cast<size_t>(
            (panel * groupsPerRow_ + group) * kTilePanelCols);
    }

    int64_t rows_ = 0, cols_ = 0, groupSize_ = 0, groupsPerRow_ = 0;
    int64_t panels_ = 0, panelBytes_ = 0, fullTileBytes_ = 0;
    std::vector<uint8_t> codes_;
    std::vector<float> scales_;
    std::vector<uint8_t> coeff_;
    std::vector<uint8_t> isInt_;
};

/**
 * Cache-blocked fused integer GEMM over prepacked tiles: the tiled
 * twin of fusedGemm(), bit-identical to it (and therefore matching
 * dequantGemmReference() to FP rounding) at every MANT_THREADS and
 * MANT_SIMD setting. The view overloads are the primary interface
 * (the mmap'd-weights serving path hands views straight from the
 * model file); the MantPackedTiles overloads forward through view().
 *
 * @param x Quantized activations (M, K), groups matching `w`.
 * @param w Prepacked weight tiles (N, K).
 * @return  Float output (M, N).
 */
Tensor fusedGemmTiled(const Int8QuantizedActivations &x,
                      const MantTilesView &w);

/**
 * Scratch-friendly variant: writes into `out`, reusing its storage
 * when the shape already matches (the decode-loop path — no per-call
 * allocation). `out` is reshaped/reallocated otherwise.
 */
void fusedGemmTiledInto(const Int8QuantizedActivations &x,
                        const MantTilesView &w, Tensor &out);

inline Tensor
fusedGemmTiled(const Int8QuantizedActivations &x,
               const MantPackedTiles &w)
{
    return fusedGemmTiled(x, w.view());
}

inline void
fusedGemmTiledInto(const Int8QuantizedActivations &x,
                   const MantPackedTiles &w, Tensor &out)
{
    fusedGemmTiledInto(x, w.view(), out);
}

} // namespace mant

#endif // MANT_CORE_PACKED_TILES_H_
