/**
 * @file
 * Prepacked tile representation of a MANT-quantized weight matrix and
 * the cache-blocked fused GEMM that consumes it.
 *
 * The reference fusedGemm() stores one 4-bit code per byte and chases
 * `meta(row, group)` strides inside its inner loop; the ANT
 * accelerator line (Guo et al., MICRO '22) shows the custom-type win
 * only materializes when the packed layout is what the compute kernel
 * consumes. MantPackedTiles repacks a MantQuantizedMatrix once —
 * typically at QuantizedLinear setup time — into the exact layout the
 * fusedTilePanel SIMD microkernel streams:
 *
 *  - weight rows (output features) are grouped into panels of
 *    kTilePanelCols = 8 columns;
 *  - within a panel, each quantization group's codes are stored two
 *    4-bit codes per byte, k-pair-major and panel-column-minor, so
 *    one 8/16-byte load feeds all 8 panel columns at once;
 *  - per-tile metadata (scale, coefficient, INT flag) for the 8 panel
 *    columns of each group is laid out contiguously, so the combine
 *    loop walks flat arrays instead of strided meta lookups;
 *  - plain-INT4 groups are re-encoded from two's complement to
 *    sign-magnitude nibbles at pack time, which makes the microkernel
 *    uniform: the MAC lane of the sign-magnitude decode *is* the
 *    integer dot product for INT groups (the SAC lane is simply
 *    ignored at combine time).
 *
 * fusedGemmTiled() adds MC/NC/KC cache blocking (K blocks aligned to
 * group boundaries) and multi-row microkernel calls on top. It is
 * bit-identical to fusedGemm() at every thread count and SIMD backend:
 * the integer partial sums are exact, and the per-cell double combine
 * applies groups in the same ascending order with the same rounding
 * sequence (see the determinism contract in docs/ARCHITECTURE.md).
 */

#ifndef MANT_CORE_PACKED_TILES_H_
#define MANT_CORE_PACKED_TILES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/fused_gemm.h"
#include "core/simd.h"

namespace mant {

/**
 * Cache-friendly tile repack of a MantQuantizedMatrix. Immutable
 * after pack(); cheap to move, safe to share across threads.
 */
class MantPackedTiles
{
  public:
    MantPackedTiles() = default;

    /**
     * Repack a quantized matrix. Throws std::invalid_argument when an
     * INT group carries a code outside the nominal [-7, 7] INT4 range
     * (sign-magnitude nibbles cannot represent -8; real encodes never
     * produce it, only hand-assembled fromParts() inputs can).
     */
    static MantPackedTiles pack(const MantQuantizedMatrix &w);

    int64_t rows() const { return rows_; }
    int64_t cols() const { return cols_; }
    int64_t groupSize() const { return groupSize_; }
    int64_t groupsPerRow() const { return groupsPerRow_; }

    /** Number of 8-column panels: ceil(rows / kTilePanelCols). */
    int64_t panels() const { return panels_; }

    /** Packed bytes of one panel (all groups). */
    int64_t panelBytes() const { return panelBytes_; }

    /** Packed code block of one (panel, group) tile:
     *  ceil(len / 2) * kTilePanelCols bytes, k-pair-major. */
    const uint8_t *
    tileCodes(int64_t panel, int64_t group) const
    {
        return codes_.data() + panel * panelBytes_ +
               groupByteOff_[static_cast<size_t>(group)];
    }

    /** Per-tile metadata, kTilePanelCols entries each, contiguous.
     *  Padded panel columns (row >= rows()) read as INT with scale 0
     *  so the microkernel and combine loop never branch on them. */
    std::span<const float>
    tileScales(int64_t panel, int64_t group) const
    {
        return {scales_.data() + tileMetaIndex(panel, group),
                static_cast<size_t>(kTilePanelCols)};
    }
    std::span<const uint8_t>
    tileCoeffs(int64_t panel, int64_t group) const
    {
        return {coeff_.data() + tileMetaIndex(panel, group),
                static_cast<size_t>(kTilePanelCols)};
    }
    std::span<const uint8_t>
    tileIsInt(int64_t panel, int64_t group) const
    {
        return {isInt_.data() + tileMetaIndex(panel, group),
                static_cast<size_t>(kTilePanelCols)};
    }

    /**
     * Reverse the repack for one row: one code per byte, MANT groups
     * as sign-magnitude codes, INT groups as two's-complement int8 —
     * byte-identical to MantQuantizedMatrix::rowCodes() of the packed
     * source (round-trip tested).
     */
    std::vector<int8_t> unpackRowCodes(int64_t row) const;

    /** Metadata of one (row, group), identical to the source meta(). */
    MantGroupMeta metaAt(int64_t row, int64_t group) const;

  private:
    size_t
    tileMetaIndex(int64_t panel, int64_t group) const
    {
        return static_cast<size_t>(
            (panel * groupsPerRow_ + group) * kTilePanelCols);
    }

    int64_t rows_ = 0, cols_ = 0, groupSize_ = 0, groupsPerRow_ = 0;
    int64_t panels_ = 0, panelBytes_ = 0;
    std::vector<uint8_t> codes_;
    std::vector<float> scales_;
    std::vector<uint8_t> coeff_;
    std::vector<uint8_t> isInt_;
    /** Byte offset of each group's code block within a panel
     *  (groupsPerRow + 1 entries; identical across panels). */
    std::vector<int64_t> groupByteOff_;
};

/**
 * Cache-blocked fused integer GEMM over prepacked tiles: the tiled
 * twin of fusedGemm(), bit-identical to it (and therefore matching
 * dequantGemmReference() to FP rounding) at every MANT_THREADS and
 * MANT_SIMD setting.
 *
 * @param x Quantized activations (M, K), groups matching `w`.
 * @param w Prepacked weight tiles (N, K).
 * @return  Float output (M, N).
 */
Tensor fusedGemmTiled(const Int8QuantizedActivations &x,
                      const MantPackedTiles &w);

/**
 * Scratch-friendly variant: writes into `out`, reusing its storage
 * when the shape already matches (the decode-loop path — no per-call
 * allocation). `out` is reshaped/reallocated otherwise.
 */
void fusedGemmTiledInto(const Int8QuantizedActivations &x,
                        const MantPackedTiles &w, Tensor &out);

} // namespace mant

#endif // MANT_CORE_PACKED_TILES_H_
