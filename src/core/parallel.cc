#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mant {

namespace {

/** Hard cap so a typo'd MANT_THREADS can't fork-bomb the process. */
constexpr int kThreadCap = 256;

std::atomic<int> gThreadOverride{0};

/**
 * Set while a thread is executing chunk bodies (worker threads
 * permanently, the calling thread for the duration of a parallelFor).
 * Nested parallelFor calls see it and run inline.
 */
thread_local bool tlsInParallelRegion = false;

/** One parallelFor invocation's shared state. */
struct Job
{
    int64_t begin = 0;
    int64_t end = 0;
    int64_t grain = 1;
    int64_t chunks = 0;
    const ParallelChunkFn *fn = nullptr;
    std::atomic<int64_t> nextChunk{0};
    std::atomic<int> slots{0};  ///< helper participation tickets
    std::atomic<int> active{0}; ///< helpers currently running chunks
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex errMu;
};

/** Chunk-stealing loop shared by the caller and the workers. */
void
runChunks(Job &j)
{
    for (;;) {
        const int64_t c =
            j.nextChunk.fetch_add(1, std::memory_order_relaxed);
        if (c >= j.chunks)
            return;
        if (j.failed.load(std::memory_order_relaxed))
            return;
        const int64_t cb = j.begin + c * j.grain;
        const int64_t ce = std::min(j.end, cb + j.grain);
        try {
            (*j.fn)(cb, ce, c);
        } catch (...) {
            std::lock_guard<std::mutex> lk(j.errMu);
            if (!j.error)
                j.error = std::current_exception();
            j.failed.store(true, std::memory_order_relaxed);
        }
    }
}

/**
 * Persistent worker pool. Threads are spawned lazily up to the largest
 * helper count ever requested and sleep between jobs; one job runs at
 * a time (concurrent top-level parallelFor calls from other user
 * threads fall back to inline execution).
 */
class Pool
{
  public:
    static Pool &
    instance()
    {
        static Pool pool;
        return pool;
    }

    void
    run(int64_t begin, int64_t end, int64_t grain, int64_t chunks,
        int helpers, const ParallelChunkFn &fn)
    {
        auto j = std::make_shared<Job>();
        j->begin = begin;
        j->end = end;
        j->grain = grain;
        j->chunks = chunks;
        j->fn = &fn;
        j->slots.store(helpers, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lk(mu_);
            ensureWorkersLocked(helpers);
            job_ = j;
            ++generation_;
        }
        cv_.notify_all();
        runChunks(*j);
        {
            std::unique_lock<std::mutex> lk(mu_);
            doneCv_.wait(lk, [&] {
                return j->active.load(std::memory_order_acquire) == 0;
            });
            job_.reset();
        }
        if (j->error)
            std::rethrow_exception(j->error);
    }

    /** Serializes top-level parallelFor calls across user threads. */
    std::mutex callerMu;

  private:
    Pool() = default;

    ~Pool()
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            shutdown_ = true;
        }
        cv_.notify_all();
        for (std::thread &t : workers_)
            t.join();
    }

    void
    ensureWorkersLocked(int helpers)
    {
        while (static_cast<int>(workers_.size()) < helpers)
            workers_.emplace_back([this] { workerLoop(); });
    }

    void
    workerLoop()
    {
        tlsInParallelRegion = true;
        uint64_t seen = 0;
        std::unique_lock<std::mutex> lk(mu_);
        for (;;) {
            cv_.wait(lk, [&] {
                return shutdown_ || (job_ && generation_ != seen);
            });
            if (shutdown_)
                return;
            seen = generation_;
            std::shared_ptr<Job> j = job_;
            if (!j)
                continue;
            // Tickets cap participation at the job's thread budget even
            // when the pool holds more threads from an earlier job.
            if (j->slots.fetch_sub(1, std::memory_order_acq_rel) <= 0)
                continue;
            j->active.fetch_add(1, std::memory_order_acq_rel);
            lk.unlock();
            runChunks(*j);
            lk.lock();
            if (j->active.fetch_sub(1, std::memory_order_acq_rel) == 1)
                doneCv_.notify_all();
        }
    }

    std::mutex mu_;
    std::condition_variable cv_;
    std::condition_variable doneCv_;
    std::vector<std::thread> workers_;
    std::shared_ptr<Job> job_;
    uint64_t generation_ = 0;
    bool shutdown_ = false;
};

void
runInline(int64_t begin, int64_t end, int64_t grain, int64_t chunks,
          const ParallelChunkFn &fn)
{
    for (int64_t c = 0; c < chunks; ++c) {
        const int64_t cb = begin + c * grain;
        const int64_t ce = std::min(end, cb + grain);
        fn(cb, ce, c);
    }
}

} // namespace

int
hardwareThreads()
{
    static const int n = [] {
        const unsigned hc = std::thread::hardware_concurrency();
        return hc > 0 ? static_cast<int>(hc) : 1;
    }();
    return n;
}

int
maxThreads()
{
    const int override_ = gThreadOverride.load(std::memory_order_relaxed);
    if (override_ > 0)
        return override_;
    // Re-read the environment every call so tests (and long-lived
    // servers) can adjust MANT_THREADS at runtime.
    if (const char *env = std::getenv("MANT_THREADS")) {
        char *endp = nullptr;
        const long v = std::strtol(env, &endp, 10);
        if (endp && endp != env && *endp == '\0' && v > 0)
            return static_cast<int>(std::min<long>(v, kThreadCap));
    }
    return hardwareThreads();
}

void
setMaxThreads(int n)
{
    gThreadOverride.store(n > 0 ? std::min(n, kThreadCap) : 0,
                          std::memory_order_relaxed);
}

int64_t
parallelChunkCount(int64_t begin, int64_t end, int64_t grain)
{
    if (end <= begin)
        return 0;
    const int64_t g = std::max<int64_t>(1, grain);
    return (end - begin + g - 1) / g;
}

void
parallelFor(int64_t begin, int64_t end, int64_t grain,
            const ParallelChunkFn &fn)
{
    if (end <= begin)
        return;
    const int64_t g = std::max<int64_t>(1, grain);
    const int64_t chunks = (end - begin + g - 1) / g;
    const int threads = maxThreads();
    if (chunks <= 1 || threads <= 1 || tlsInParallelRegion) {
        runInline(begin, end, g, chunks, fn);
        return;
    }

    Pool &pool = Pool::instance();
    std::unique_lock<std::mutex> callerLk(pool.callerMu,
                                          std::try_to_lock);
    if (!callerLk.owns_lock()) {
        // Another user thread owns the pool right now; stay correct.
        runInline(begin, end, g, chunks, fn);
        return;
    }

    const int helpers = static_cast<int>(std::min<int64_t>(
        static_cast<int64_t>(threads) - 1, chunks - 1));
    tlsInParallelRegion = true;
    try {
        pool.run(begin, end, g, chunks, helpers, fn);
    } catch (...) {
        tlsInParallelRegion = false;
        throw;
    }
    tlsInParallelRegion = false;
}

} // namespace mant
