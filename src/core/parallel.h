/**
 * @file
 * Parallel execution subsystem: a lazily-initialized persistent thread
 * pool behind one primitive, parallelFor().
 *
 * Determinism contract: the range [begin, end) is split into fixed
 * chunks of `grain` indices (the last chunk may be short). Chunk
 * geometry depends only on (begin, end, grain) — never on the thread
 * count — so a kernel that writes disjoint outputs per index and
 * reduces into per-chunk accumulators merged in chunk order produces
 * bit-identical results at any MANT_THREADS setting, including 1.
 * The tests in tests/test_parallel.cc enforce this for the quantizer
 * engines and the fused GEMM.
 *
 * Thread count resolution, in priority order:
 *  1. setMaxThreads(n) with n > 0 (programmatic override);
 *  2. the MANT_THREADS environment variable, if it parses as a
 *     positive integer (0, negative or garbage values are ignored);
 *  3. std::thread::hardware_concurrency().
 */

#ifndef MANT_CORE_PARALLEL_H_
#define MANT_CORE_PARALLEL_H_

#include <cstdint>
#include <functional>

namespace mant {

/** Cached std::thread::hardware_concurrency(), at least 1. */
int hardwareThreads();

/** Resolved thread budget: override, else MANT_THREADS, else hardware. */
int maxThreads();

/**
 * Programmatic thread-count override. n > 0 pins the budget (capped at
 * 256); n <= 0 clears the override, falling back to MANT_THREADS /
 * hardware_concurrency.
 */
void setMaxThreads(int n);

/**
 * Number of chunks parallelFor() will split [begin, end) into with the
 * given grain — use it to size per-chunk accumulator arrays.
 */
int64_t parallelChunkCount(int64_t begin, int64_t end, int64_t grain);

/**
 * Chunk body: fn(chunkBegin, chunkEnd, chunkIndex) processes indices
 * [chunkBegin, chunkEnd). Chunk indices are dense in [0, chunkCount).
 */
using ParallelChunkFn =
    std::function<void(int64_t, int64_t, int64_t)>;

/**
 * Run fn over [begin, end) in chunks of `grain` (clamped to >= 1),
 * using up to maxThreads() threads (the calling thread participates).
 *
 * Guarantees:
 *  - every chunk is invoked exactly once (unless a chunk throws);
 *  - nested calls (from inside a chunk body) run inline, serially, in
 *    chunk order — safe, never deadlocks;
 *  - if a chunk throws, the first exception is rethrown on the calling
 *    thread once all in-flight chunks finish; remaining chunks may be
 *    skipped, so outputs are unspecified after a throw;
 *  - with maxThreads() == 1, an empty/singleton range, or a single
 *    chunk, everything runs inline on the calling thread.
 */
void parallelFor(int64_t begin, int64_t end, int64_t grain,
                 const ParallelChunkFn &fn);

} // namespace mant

#endif // MANT_CORE_PARALLEL_H_
