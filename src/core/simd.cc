/**
 * @file
 * Runtime SIMD dispatch: CPU capability detection, MANT_SIMD /
 * setSimdPath() resolution, and the backend table registry.
 */

#include "core/simd.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mant {

namespace simd_detail {
extern const SimdOps kScalarOps;
/** Null when the backend is not compiled in (wrong target ISA). */
const SimdOps *avx2Ops();
const SimdOps *neonOps();
} // namespace simd_detail

namespace {

/** Programmatic override; Auto means "no override". */
std::atomic<SimdPath> gSimdOverride{SimdPath::Auto};

bool
pathAvailable(SimdPath path)
{
    switch (path) {
      case SimdPath::Scalar:
        return true;
      case SimdPath::Avx2:
        return simd_detail::avx2Ops() != nullptr;
      case SimdPath::Neon:
        return simd_detail::neonOps() != nullptr;
      case SimdPath::Auto:
      default:
        return false;
    }
}

/**
 * One warning per process per failure kind, so a hot loop resolving
 * the path every call cannot spam stderr.
 */
void
warnOnce(std::atomic<bool> &flag, const char *fmt, const char *arg)
{
    bool expected = false;
    if (flag.compare_exchange_strong(expected, true)) {
        std::fprintf(stderr, fmt, arg);
        std::fflush(stderr);
    }
}

/** Parse a MANT_SIMD-style name; Auto + ok=false on garbage. */
SimdPath
parsePathName(const char *s, bool *ok)
{
    char buf[8] = {};
    size_t n = 0;
    for (; s[n] != '\0' && n < sizeof(buf) - 1; ++n)
        buf[n] = static_cast<char>(
            std::tolower(static_cast<unsigned char>(s[n])));
    *ok = s[n] == '\0';
    if (!*ok)
        return SimdPath::Auto;
    if (std::strcmp(buf, "auto") == 0)
        return SimdPath::Auto;
    if (std::strcmp(buf, "scalar") == 0)
        return SimdPath::Scalar;
    if (std::strcmp(buf, "avx2") == 0)
        return SimdPath::Avx2;
    if (std::strcmp(buf, "neon") == 0)
        return SimdPath::Neon;
    *ok = false;
    return SimdPath::Auto;
}

} // namespace

const char *
simdPathName(SimdPath path)
{
    switch (path) {
      case SimdPath::Scalar:
        return "scalar";
      case SimdPath::Avx2:
        return "avx2";
      case SimdPath::Neon:
        return "neon";
      case SimdPath::Auto:
      default:
        return "auto";
    }
}

SimdPath
bestSimdPath()
{
    static const SimdPath best = [] {
        if (pathAvailable(SimdPath::Avx2))
            return SimdPath::Avx2;
        if (pathAvailable(SimdPath::Neon))
            return SimdPath::Neon;
        return SimdPath::Scalar;
    }();
    return best;
}

SimdPath
activeSimdPath()
{
    static std::atomic<bool> warnedOverride{false};
    static std::atomic<bool> warnedEnvParse{false};
    static std::atomic<bool> warnedEnvAvail{false};

    const SimdPath override_ =
        gSimdOverride.load(std::memory_order_relaxed);
    if (override_ != SimdPath::Auto) {
        if (pathAvailable(override_))
            return override_;
        warnOnce(warnedOverride,
                 "mant: setSimdPath(%s): backend unavailable on this "
                 "CPU, falling back to auto\n",
                 simdPathName(override_));
        return bestSimdPath();
    }
    // Re-read the environment every call so tests (and long-lived
    // servers) can adjust MANT_SIMD at runtime, matching MANT_THREADS.
    if (const char *env = std::getenv("MANT_SIMD")) {
        bool ok = false;
        const SimdPath wanted = parsePathName(env, &ok);
        if (!ok) {
            warnOnce(warnedEnvParse,
                     "mant: MANT_SIMD=%s: expected "
                     "auto|scalar|avx2|neon, falling back to auto\n",
                     env);
        } else if (wanted != SimdPath::Auto) {
            if (pathAvailable(wanted))
                return wanted;
            warnOnce(warnedEnvAvail,
                     "mant: MANT_SIMD=%s: backend unavailable on this "
                     "CPU, falling back to auto\n",
                     env);
        }
    }
    return bestSimdPath();
}

void
setSimdPath(SimdPath path)
{
    gSimdOverride.store(path, std::memory_order_relaxed);
}

const SimdOps &
simdOpsFor(SimdPath path)
{
    switch (path == SimdPath::Auto ? activeSimdPath() : path) {
      case SimdPath::Avx2:
        if (const SimdOps *ops = simd_detail::avx2Ops())
            return *ops;
        break;
      case SimdPath::Neon:
        if (const SimdOps *ops = simd_detail::neonOps())
            return *ops;
        break;
      default:
        break;
    }
    return simd_detail::kScalarOps;
}

const SimdOps &
simdOps()
{
    return simdOpsFor(activeSimdPath());
}

} // namespace mant
