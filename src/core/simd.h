/**
 * @file
 * SIMD kernel layer with runtime ISA dispatch.
 *
 * Every hot inner loop of the library — group quantize/dequantize,
 * the MANT coefficient-search error accumulation, the fused GEMM's
 * MAC/SAC lanes, `linearNT`, and calibration accumulation — funnels
 * through the function-pointer table returned by simdOps(). Three
 * backends implement the table: a portable scalar reference, AVX2+FMA
 * (x86-64), and NEON (aarch64). The backend is chosen at runtime from
 * CPU capabilities, overridable via the MANT_SIMD environment variable
 * or setSimdPath() — mirroring the MANT_THREADS / setMaxThreads pair.
 *
 * # Determinism contract (scalar ≡ SIMD, bit-exact)
 *
 * Every backend must produce bit-identical outputs for every kernel,
 * so packed streams, dequantized tensors, and selection decisions are
 * the same no matter which ISA path ran (tests/test_simd.cc enforces
 * this). The contract rests on three rules:
 *
 *  1. *Integer reductions are free.* The fused GEMM's MAC and SAC
 *     partial sums are exact integer arithmetic; lanes may reduce in
 *     any order provided intermediate widths never overflow.
 *
 *  2. *Float reductions use one canonical lane geometry.* Reductions
 *     that round (squared-error sums, float dot products) accumulate
 *     into kSimdReduceLanes interleaved partial sums — lane j owns the
 *     elements with index ≡ j (mod kSimdReduceLanes) — and merge with
 *     combineReduceLanes(). The scalar backend implements exactly this
 *     geometry, so wide backends match it instead of the other way
 *     around.
 *
 *  3. *Rounding is explicit.* Elementwise ops use IEEE ops with one
 *     rounding each (div, mul, sub behave identically in scalar and
 *     vector form). FMA is used only where the product is exact (a
 *     float×float product widened to double needs ≤ 48 significand
 *     bits), making fused and unfused evaluation bit-equal. Backends
 *     are compiled with -ffp-contract=off so the compiler cannot
 *     introduce contractions the other backends lack.
 */

#ifndef MANT_CORE_SIMD_H_
#define MANT_CORE_SIMD_H_

#include <cstdint>

namespace mant {

/** Selectable kernel backends. Auto means "best available". */
enum class SimdPath
{
    Auto,
    Scalar,
    Avx2,
    Neon,
};

/** Lowercase name: "auto", "scalar", "avx2", "neon". */
const char *simdPathName(SimdPath path);

/** Best backend this CPU can run (never Auto; Scalar if nothing else). */
SimdPath bestSimdPath();

/**
 * Resolved backend, in priority order: setSimdPath() override, then
 * the MANT_SIMD environment variable (auto|scalar|avx2|neon, case
 * insensitive), then bestSimdPath(). A value naming an unavailable
 * backend, or garbage, falls back to auto with a one-time warning on
 * stderr. Never returns Auto.
 */
SimdPath activeSimdPath();

/**
 * Programmatic backend override; beats MANT_SIMD. Pass SimdPath::Auto
 * to clear. Requesting an unavailable backend falls back to auto with
 * a one-time warning, like the environment variable.
 */
void setSimdPath(SimdPath path);

/** Integer partial sums of one fused MANT group dot product. */
struct SimdPsums
{
    int64_t mac = 0; ///< sum of x * (sign * magnitude)
    int64_t sac = 0; ///< sum of sign * (x << magnitude)
};

/** Column count of one packed weight tile panel (MantPackedTiles). */
inline constexpr int kTilePanelCols = 8;

/** Max activation rows one fusedTilePanel call processes. */
inline constexpr int kTileMaxRows = 4;

/**
 * Kernel table. All length parameters are element counts; all pointers
 * must be valid for the stated counts (no alignment requirements).
 * Level tables are sorted ascending; the nearest-level tie rule is the
 * nearestLevel() contract (ties resolve to the lower level).
 */
struct SimdOps
{
    /** Backend name for diagnostics ("scalar", "avx2", "neon"). */
    const char *name;

    /** max_i |x[i]| (0 for n == 0). Exact in any order. */
    float (*absMax)(const float *x, int64_t n);

    /**
     * Quantize-dequantize one unit: out[i] = levels[idx]*scale with
     * idx = nearest level to in[i]/scale. Returns the squared error
     * sum((in[i] - out[i])^2) in canonical lane order.
     * Requires nLevels >= 1; vector paths engage for nLevels <= 16.
     */
    double (*quantizeUnit)(const float *in, float *out, int64_t n,
                           const float *levels, int nLevels,
                           float scale);

    /**
     * Error-only sibling of quantizeUnit (nothing stored): returns
     * sum_i w_i * (in[i] - q(in[i]))^2 with w_i = weights[i], or 1
     * when weights == nullptr. Unweighted results are bit-identical
     * to quantizeUnit's return value.
     */
    double (*unitError)(const float *in, int64_t n, const float *levels,
                        int nLevels, float scale,
                        const double *weights);

    /**
     * Nearest-level encode straight to storage codes:
     * codes[i] = codeLut[idx(in[i]/scale)]. codeLut has nLevels
     * entries (e.g. the MANT sorted-index -> sign-magnitude map).
     */
    void (*encodeCodes)(const float *in, int8_t *codes, int64_t n,
                        const float *levels, int nLevels,
                        const int8_t *codeLut, float scale);

    /**
     * Codebook snap: out[i] = outLevels[nearestLevel(levels, in[i])].
     * levels/outLevels both have nLevels entries (K-means centroids
     * and their storage-rounded values).
     */
    void (*mapNearest)(const float *in, float *out, int64_t n,
                       const float *levels, int nLevels,
                       const float *outLevels);

    /**
     * Integer-grid encode: codes[i] = clamp(round(in[i]/scale),
     * -maxq, maxq) with round-half-away-from-zero (std::round).
     * Requires |in[i]/scale| < 2^23 and 0 < maxq <= 127.
     */
    void (*quantizeRoundClamp)(const float *in, int8_t *codes,
                               int64_t n, float scale, int maxq);

    /**
     * Fused integer-grid quantize-dequantize:
     * out[i] = clamp(round(in[i]/scale), -maxq, maxq) * scale.
     * Same domain requirements as quantizeRoundClamp.
     */
    void (*roundClampDequant)(const float *in, float *out, int64_t n,
                              float scale, float maxq);

    /**
     * 4-bit LUT dequantize: out[i] = lut16[codes[i] & 0xf] * scale.
     * Covers MANT sign-magnitude groups and packed INT4 groups alike
     * (the caller builds the 16-entry value table per group).
     */
    void (*dequantLut16)(const int8_t *codes, float *out, int64_t n,
                         const float *lut16, float scale);

    /** INT8 dequantize: out[i] = (float)codes[i] * scale. */
    void (*dequantInt8)(const int8_t *codes, float *out, int64_t n,
                        float scale);

    /** Exact integer dot product: sum_i x[i] * w[i] (int8 operands). */
    int64_t (*dotInt8)(const int8_t *x, const int8_t *w, int64_t n);

    /**
     * Fused MANT group dot product against INT8 activations. Only the
     * low 4 bits of each wcodes byte participate (bit 3 = sign, bits
     * 2..0 = magnitude), matching mantMagnitude()/mantSign().
     */
    SimdPsums (*fusedDotMant)(const int8_t *x, const int8_t *wcodes,
                              int64_t n);

    /**
     * Tile-panel fused dot: `mr` activation rows (int8 codes,
     * `xStride` elements apart, 1 <= mr <= kTileMaxRows) against one
     * group's packed panel codes. `wtile` holds kTilePanelCols nibble
     * columns interleaved two codes per byte, k-pair-major and
     * panel-column-minor: byte `kp * kTilePanelCols + c` carries
     * column c's codes for elements 2*kp (low nibble) and 2*kp + 1
     * (high nibble) — see MantPackedTiles in core/packed_tiles.h.
     * Nibbles are sign-magnitude (bit 3 = sign, bits 2..0 = the
     * magnitude), the same decode as fusedDotMant. Accumulates the
     * exact integer MAC and SAC partial sums into
     * mac/sac[a * kTilePanelCols + c] for activation row a and panel
     * column c; the caller zeroes the arrays. An odd `len` consumes
     * the final byte's low nibble only (the pad nibble is ignored).
     */
    void (*fusedTilePanel)(const int8_t *x, int64_t xStride, int mr,
                           const uint8_t *wtile, int64_t len,
                           int64_t *mac, int64_t *sac);

    /**
     * Float dot product accumulated in double, canonical lane order.
     * Exact-product FMA allowed (rule 3 above).
     */
    double (*dotF32)(const float *x, const float *w, int64_t n);

    /**
     * Calibration second-moment accumulate: acc[i] += x[i]^2 in
     * double. Lanes are independent columns, so vectorization never
     * reorders any single column's running sum.
     */
    void (*accumulateSq)(const float *x, double *acc, int64_t n);
};

/** Kernel table for activeSimdPath(). Fetch once per engine call. */
const SimdOps &simdOps();

/** Kernel table for a specific backend (Auto = active). Used by the
 *  parity tests and benches to pin a path per call site. */
const SimdOps &simdOpsFor(SimdPath path);

} // namespace mant

#endif // MANT_CORE_SIMD_H_
