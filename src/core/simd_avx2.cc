/**
 * @file
 * AVX2 + FMA backend. Compiled with -mavx2 -mfma -ffp-contract=off on
 * x86-64 (see src/CMakeLists.txt); on other targets the translation
 * unit collapses to a null registration and dispatch never offers the
 * path.
 *
 * Bit-exactness with the scalar backend (the contract in simd.h):
 *  - nearest-level encode evaluates idx = sum_k [(x - L[k]) > (L[k+1]
 *    - x)] with vsubps/vcmpps — the same IEEE subtractions the scalar
 *    tie-break performs, and every non-boundary term is decided by the
 *    sign of an exact comparison (see simd_common.h);
 *  - rounding reductions keep the canonical 8-lane geometry: two
 *    4-double accumulators hold lanes 0..3 / 4..7, merged by
 *    combineReduceLanes(); squared-error terms use mul+add (two
 *    roundings) exactly like the scalar code; FMA appears only where
 *    the product is exact (float×float widened to double);
 *  - integer lanes (MAC/SAC, INT8 dot) accumulate in int32 with
 *    periodic widening to int64 well inside overflow bounds, so the
 *    result equals the scalar int64 sum exactly;
 *  - loop tails call the canonical scalar helpers with the lane
 *    accumulators already in flight, so a 13-element unit follows the
 *    identical code path mix on every backend.
 */

#include "core/simd_common.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace mant {
namespace simd_detail {

namespace {

/** Widen one int32 accumulator vector into a scalar int64 (exact). */
int64_t
hsumEpi32ToI64(__m256i v)
{
    const __m128i lo = _mm256_castsi256_si128(v);
    const __m128i hi = _mm256_extracti128_si256(v, 1);
    const __m256i lo64 = _mm256_cvtepi32_epi64(lo);
    const __m256i hi64 = _mm256_cvtepi32_epi64(hi);
    const __m256i s = _mm256_add_epi64(lo64, hi64);
    alignas(32) int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), s);
    return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

/**
 * Nearest-level indices for 8 normalized values. `levels` must be the
 * caller's 16-entry padded copy; indices land in [0, nLevels - 1].
 */
__m256i
nearestIdx8(__m256 norm, const float *levels, int nLevels)
{
    __m256i idx = _mm256_setzero_si256();
    for (int k = 0; k + 1 < nLevels; ++k) {
        const __m256 lo = _mm256_set1_ps(levels[k]);
        const __m256 hi = _mm256_set1_ps(levels[k + 1]);
        const __m256 lhs = _mm256_sub_ps(norm, lo);
        const __m256 rhs = _mm256_sub_ps(hi, norm);
        const __m256 gt = _mm256_cmp_ps(lhs, rhs, _CMP_GT_OQ);
        // Mask is all-ones where true: subtracting adds 1.
        idx = _mm256_sub_epi32(idx, _mm256_castps_si256(gt));
    }
    return idx;
}

/** Gather lut[idx] for 8 indices in [0, 15] from a 16-float table. */
__m256
gatherLut16(__m256 lutLo, __m256 lutHi, __m256i idx)
{
    // permutevar8x32 uses the low 3 bits of each lane; bit 3 selects
    // the table half.
    const __m256 lo = _mm256_permutevar8x32_ps(lutLo, idx);
    const __m256 hi = _mm256_permutevar8x32_ps(lutHi, idx);
    const __m256i inHi = _mm256_cmpgt_epi32(idx, _mm256_set1_epi32(7));
    return _mm256_blendv_ps(lo, hi, _mm256_castsi256_ps(inHi));
}

/** Copy a level table into a 16-entry buffer, padding with the last
 *  level so the vector gather never reads past the real entries. */
void
padLevels(const float *levels, int nLevels, float out[16])
{
    for (int i = 0; i < 16; ++i)
        out[i] = levels[i < nLevels ? i : nLevels - 1];
}

float
avx2AbsMax(const float *x, int64_t n)
{
    const __m256 absMask =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
    __m256 m8 = _mm256_setzero_ps();
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 v =
            _mm256_and_ps(_mm256_loadu_ps(x + i), absMask);
        // Operand order matters: maxps returns the SECOND operand on
        // an unordered compare, so (v, m8) keeps the running maximum
        // when v is NaN — matching std::max(m, fabs(x)), which
        // ignores a NaN candidate. (m8, v) would let one NaN lane
        // discard everything seen so far and break backend parity.
        m8 = _mm256_max_ps(v, m8);
    }
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, m8);
    float m = 0.0f;
    for (int j = 0; j < 8; ++j)
        m = std::max(m, lanes[j]);
    for (; i < n; ++i)
        m = std::max(m, std::fabs(x[i]));
    return m;
}

/**
 * Vector body shared by quantizeUnit and unitError: encode, decode,
 * optional store, squared-error accumulation into the canonical lane
 * accumulators. Returns the first unprocessed index.
 */
int64_t
quantizeBlocks(const float *in, float *out, int64_t n,
               const float *levels16, int nLevels, float scale,
               const double *weights, __m256d &acc03, __m256d &acc47)
{
    const __m256 scale8 = _mm256_set1_ps(scale);
    const __m256 lutLo = _mm256_loadu_ps(levels16);
    const __m256 lutHi = _mm256_loadu_ps(levels16 + 8);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 xv = _mm256_loadu_ps(in + i);
        const __m256 norm = _mm256_div_ps(xv, scale8);
        const __m256i idx = nearestIdx8(norm, levels16, nLevels);
        const __m256 q =
            _mm256_mul_ps(gatherLut16(lutLo, lutHi, idx), scale8);
        if (out)
            _mm256_storeu_ps(out + i, q);
        const __m128 xlo = _mm256_castps256_ps128(xv);
        const __m128 xhi = _mm256_extractf128_ps(xv, 1);
        const __m128 qlo = _mm256_castps256_ps128(q);
        const __m128 qhi = _mm256_extractf128_ps(q, 1);
        const __m256d d03 =
            _mm256_sub_pd(_mm256_cvtps_pd(xlo), _mm256_cvtps_pd(qlo));
        const __m256d d47 =
            _mm256_sub_pd(_mm256_cvtps_pd(xhi), _mm256_cvtps_pd(qhi));
        __m256d c03, c47;
        if (weights) {
            // (w * d) * d: same three roundings as the scalar loop.
            c03 = _mm256_mul_pd(
                _mm256_mul_pd(_mm256_loadu_pd(weights + i), d03), d03);
            c47 = _mm256_mul_pd(
                _mm256_mul_pd(_mm256_loadu_pd(weights + i + 4), d47),
                d47);
        } else {
            c03 = _mm256_mul_pd(d03, d03);
            c47 = _mm256_mul_pd(d47, d47);
        }
        // add (not fmadd): d*d is inexact, the contract is mul+add.
        acc03 = _mm256_add_pd(acc03, c03);
        acc47 = _mm256_add_pd(acc47, c47);
    }
    return i;
}

double
quantizeImpl(const float *in, float *out, int64_t n,
             const float *levels, int nLevels, float scale,
             const double *weights)
{
    alignas(32) float levels16[16];
    padLevels(levels, nLevels, levels16);
    __m256d acc03 = _mm256_setzero_pd();
    __m256d acc47 = _mm256_setzero_pd();
    const int64_t done = quantizeBlocks(in, out, n, levels16, nLevels,
                                        scale, weights, acc03, acc47);
    alignas(32) double lanes[kSimdReduceLanes];
    _mm256_store_pd(lanes, acc03);
    _mm256_store_pd(lanes + 4, acc47);
    scalarQuantizeRange(in, out, done, n, levels, nLevels, scale,
                        weights, lanes);
    return combineReduceLanes(lanes);
}

double
avx2QuantizeUnit(const float *in, float *out, int64_t n,
                 const float *levels, int nLevels, float scale)
{
    if (nLevels < 1 || nLevels > kMaxVectorLevels)
        return scalarQuantizeUnit(in, out, n, levels, nLevels, scale);
    return quantizeImpl(in, out, n, levels, nLevels, scale, nullptr);
}

double
avx2UnitError(const float *in, int64_t n, const float *levels,
              int nLevels, float scale, const double *weights)
{
    if (nLevels < 1 || nLevels > kMaxVectorLevels)
        return scalarUnitError(in, n, levels, nLevels, scale, weights);
    return quantizeImpl(in, nullptr, n, levels, nLevels, scale,
                        weights);
}

void
avx2EncodeCodes(const float *in, int8_t *codes, int64_t n,
                const float *levels, int nLevels, const int8_t *codeLut,
                float scale)
{
    if (nLevels < 1 || nLevels > kMaxVectorLevels) {
        scalarEncodeCodes(in, codes, n, levels, nLevels, codeLut,
                          scale);
        return;
    }
    alignas(32) float levels16[16];
    padLevels(levels, nLevels, levels16);
    const __m256 scale8 = _mm256_set1_ps(scale);
    int64_t i = 0;
    alignas(32) int32_t idxBuf[8];
    for (; i + 8 <= n; i += 8) {
        const __m256 norm =
            _mm256_div_ps(_mm256_loadu_ps(in + i), scale8);
        const __m256i idx = nearestIdx8(norm, levels16, nLevels);
        _mm256_store_si256(reinterpret_cast<__m256i *>(idxBuf), idx);
        for (int j = 0; j < 8; ++j)
            codes[i + j] = codeLut[idxBuf[j]];
    }
    scalarEncodeCodes(in + i, codes + i, n - i, levels, nLevels,
                      codeLut, scale);
}

void
avx2MapNearest(const float *in, float *out, int64_t n,
               const float *levels, int nLevels, const float *outLevels)
{
    if (nLevels < 1 || nLevels > kMaxVectorLevels) {
        scalarMapNearest(in, out, n, levels, nLevels, outLevels);
        return;
    }
    alignas(32) float levels16[16];
    alignas(32) float outLevels16[16];
    padLevels(levels, nLevels, levels16);
    padLevels(outLevels, nLevels, outLevels16);
    const __m256 lutLo = _mm256_loadu_ps(outLevels16);
    const __m256 lutHi = _mm256_loadu_ps(outLevels16 + 8);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 xv = _mm256_loadu_ps(in + i);
        const __m256i idx = nearestIdx8(xv, levels16, nLevels);
        _mm256_storeu_ps(out + i, gatherLut16(lutLo, lutHi, idx));
    }
    scalarMapNearest(in + i, out + i, n - i, levels, nLevels,
                     outLevels);
}

/** round-half-away-from-zero, the vector twin of roundHalfAway(). */
__m256
roundHalfAway8(__m256 x)
{
    const __m256 t =
        _mm256_round_ps(x, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
    const __m256 f = _mm256_sub_ps(x, t);
    const __m256 absMask =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
    const __m256 half = _mm256_cmp_ps(_mm256_and_ps(f, absMask),
                                      _mm256_set1_ps(0.5f),
                                      _CMP_GE_OQ);
    const __m256 signBit = _mm256_set1_ps(-0.0f);
    const __m256 one = _mm256_or_ps(_mm256_and_ps(signBit, x),
                                    _mm256_set1_ps(1.0f));
    // Blend, don't add a masked zero: t + 0.0f would turn the -0.0f
    // that trunc produces for small negative x into +0.0f, silently
    // breaking bit-parity with the scalar std::round semantics.
    return _mm256_blendv_ps(t, _mm256_add_ps(t, one), half);
}

__m256
roundClamp8(__m256 xv, __m256 scale8, __m256 lo8, __m256 hi8)
{
    const __m256 q = roundHalfAway8(_mm256_div_ps(xv, scale8));
    return _mm256_min_ps(_mm256_max_ps(q, lo8), hi8);
}

void
avx2QuantizeRoundClamp(const float *in, int8_t *codes, int64_t n,
                       float scale, int maxq)
{
    const __m256 scale8 = _mm256_set1_ps(scale);
    const __m256 hi8 = _mm256_set1_ps(static_cast<float>(maxq));
    const __m256 lo8 = _mm256_set1_ps(-static_cast<float>(maxq));
    int64_t i = 0;
    alignas(32) int32_t qBuf[8];
    for (; i + 8 <= n; i += 8) {
        const __m256 r =
            roundClamp8(_mm256_loadu_ps(in + i), scale8, lo8, hi8);
        // r is integral in [-127, 127]; the convert is exact.
        _mm256_store_si256(reinterpret_cast<__m256i *>(qBuf),
                           _mm256_cvtps_epi32(r));
        for (int j = 0; j < 8; ++j)
            codes[i + j] = static_cast<int8_t>(qBuf[j]);
    }
    scalarQuantizeRoundClamp(in + i, codes + i, n - i, scale, maxq);
}

void
avx2RoundClampDequant(const float *in, float *out, int64_t n,
                      float scale, float maxq)
{
    const __m256 scale8 = _mm256_set1_ps(scale);
    const __m256 hi8 = _mm256_set1_ps(maxq);
    const __m256 lo8 = _mm256_set1_ps(-maxq);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 r =
            roundClamp8(_mm256_loadu_ps(in + i), scale8, lo8, hi8);
        _mm256_storeu_ps(out + i, _mm256_mul_ps(r, scale8));
    }
    scalarRoundClampDequant(in + i, out + i, n - i, scale, maxq);
}

void
avx2DequantLut16(const int8_t *codes, float *out, int64_t n,
                 const float *lut16, float scale)
{
    const __m256 scale8 = _mm256_set1_ps(scale);
    const __m256 lutLo = _mm256_loadu_ps(lut16);
    const __m256 lutHi = _mm256_loadu_ps(lut16 + 8);
    const __m256i nibMask = _mm256_set1_epi32(0xf);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i raw = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(codes + i));
        const __m256i idx =
            _mm256_and_si256(_mm256_cvtepi8_epi32(raw), nibMask);
        const __m256 v = gatherLut16(lutLo, lutHi, idx);
        _mm256_storeu_ps(out + i, _mm256_mul_ps(v, scale8));
    }
    scalarDequantLut16(codes + i, out + i, n - i, lut16, scale);
}

void
avx2DequantInt8(const int8_t *codes, float *out, int64_t n, float scale)
{
    const __m256 scale8 = _mm256_set1_ps(scale);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i raw = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(codes + i));
        const __m256 v =
            _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw));
        _mm256_storeu_ps(out + i, _mm256_mul_ps(v, scale8));
    }
    scalarDequantInt8(codes + i, out + i, n - i, scale);
}

/**
 * int32 lanes widen to int64 at least every kWidenBlock elements:
 * the largest per-iteration madd lane magnitude is 2 * 127 * 128 =
 * 32512, so (kWidenBlock / 16) iterations stay below 2^27 * ~16 —
 * comfortably inside int32.
 */
constexpr int64_t kWidenBlock = 1 << 16;

int64_t
avx2DotInt8(const int8_t *x, const int8_t *w, int64_t n)
{
    int64_t total = 0;
    int64_t i = 0;
    while (i + 16 <= n) {
        const int64_t blockEnd = std::min(n, i + kWidenBlock);
        __m256i acc = _mm256_setzero_si256();
        for (; i + 16 <= blockEnd; i += 16) {
            const __m128i xb = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(x + i));
            const __m128i wb = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(w + i));
            const __m256i x16 = _mm256_cvtepi8_epi16(xb);
            const __m256i w16 = _mm256_cvtepi8_epi16(wb);
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(x16, w16));
        }
        total += hsumEpi32ToI64(acc);
    }
    total += scalarDotInt8(x + i, w + i, n - i);
    return total;
}

SimdPsums
avx2FusedDotMant(const int8_t *x, const int8_t *wcodes, int64_t n)
{
    // nibble -> sign * magnitude, as int8.
    const __m128i tblMac = _mm_setr_epi8(0, 1, 2, 3, 4, 5, 6, 7, //
                                         0, -1, -2, -3, -4, -5, -6,
                                         -7);
    // nibble -> 2^magnitude, as *unsigned* bytes (128 = 0x80).
    const __m128i tblPow = _mm_setr_epi8(
        1, 2, 4, 8, 16, 32, 64, static_cast<char>(0x80), //
        1, 2, 4, 8, 16, 32, 64, static_cast<char>(0x80));
    const __m128i nibMask = _mm_set1_epi8(0xf);
    const __m128i signBit = _mm_set1_epi8(0x8);

    SimdPsums p;
    int64_t i = 0;
    while (i + 16 <= n) {
        const int64_t blockEnd = std::min(n, i + kWidenBlock);
        __m256i accMac = _mm256_setzero_si256();
        __m256i accSac = _mm256_setzero_si256();
        for (; i + 16 <= blockEnd; i += 16) {
            const __m128i xb = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(x + i));
            const __m128i wb = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(wcodes + i));
            const __m128i nib = _mm_and_si128(wb, nibMask);
            const __m256i x16 = _mm256_cvtepi8_epi16(xb);

            const __m256i mac16 = _mm256_cvtepi8_epi16(
                _mm_shuffle_epi8(tblMac, nib));
            accMac = _mm256_add_epi32(accMac,
                                      _mm256_madd_epi16(x16, mac16));

            const __m256i pow16 = _mm256_cvtepu8_epi16(
                _mm_shuffle_epi8(tblPow, nib));
            const __m256i neg16 = _mm256_cvtepi8_epi16(_mm_cmpeq_epi8(
                _mm_and_si128(nib, signBit), signBit));
            // Conditional negate: (pow ^ mask) - mask.
            const __m256i sac16 = _mm256_sub_epi16(
                _mm256_xor_si256(pow16, neg16), neg16);
            accSac = _mm256_add_epi32(accSac,
                                      _mm256_madd_epi16(x16, sac16));
        }
        p.mac += hsumEpi32ToI64(accMac);
        p.sac += hsumEpi32ToI64(accSac);
    }
    const SimdPsums tail = scalarFusedDotMant(x + i, wcodes + i, n - i);
    p.mac += tail.mac;
    p.sac += tail.sac;
    return p;
}

/** Sign-extend two int8 activations into a broadcast [x0, x1] pair
 *  vector whose int16 lanes line up with madd's pairwise add. */
inline __m256i
broadcastXPair(const int8_t *x)
{
    const uint32_t pair =
        static_cast<uint16_t>(static_cast<int16_t>(x[0])) |
        (static_cast<uint32_t>(
             static_cast<uint16_t>(static_cast<int16_t>(x[1])))
         << 16);
    return _mm256_set1_epi32(static_cast<int32_t>(pair));
}

/**
 * Tile-panel microkernel, one instantiation per activation-row count
 * so the MAC/SAC accumulators stay in registers. Each 16-byte load
 * covers two k-pairs × 8 panel columns (32 codes); the nibble->value
 * shuffles are shared across the MR activation rows, which is where
 * the panel layout beats per-cell fusedDotMant. Interleaving the
 * even-k and odd-k decoded weights per column makes madd_epi16's
 * pairwise add produce exactly one int32 lane per panel column.
 */
template <int MR>
void
avx2TilePanelImpl(const int8_t *x, int64_t xStride,
                  const uint8_t *wtile, int64_t len, int64_t *mac,
                  int64_t *sac)
{
    // Same nibble tables as avx2FusedDotMant.
    const __m128i tblMac = _mm_setr_epi8(0, 1, 2, 3, 4, 5, 6, 7, //
                                         0, -1, -2, -3, -4, -5, -6,
                                         -7);
    const __m128i tblPow = _mm_setr_epi8(
        1, 2, 4, 8, 16, 32, 64, static_cast<char>(0x80), //
        1, 2, 4, 8, 16, 32, 64, static_cast<char>(0x80));
    const __m128i nibMask = _mm_set1_epi8(0xf);
    const __m128i signBit = _mm_set1_epi8(0x8);

    __m256i accMac[MR], accSac[MR];
    for (int a = 0; a < MR; ++a) {
        accMac[a] = _mm256_setzero_si256();
        accSac[a] = _mm256_setzero_si256();
    }

    int64_t i = 0;
    while (i + 4 <= len) {
        // Each iteration adds two madd lanes (<= 2 * 32512) per int32
        // accumulator for 4 elements, so a kWidenBlock-element block
        // stays below 2^31 exactly like the other integer kernels.
        const int64_t blockEnd = std::min(len, i + kWidenBlock);
        for (; i + 4 <= blockEnd; i += 4) {
            const __m128i wb = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(
                    wtile + (i / 2) * kTilePanelCols));
            const __m128i nibLo = _mm_and_si128(wb, nibMask);
            const __m128i nibHi =
                _mm_and_si128(_mm_srli_epi16(wb, 4), nibMask);

            const __m128i macLo = _mm_shuffle_epi8(tblMac, nibLo);
            const __m128i macHi = _mm_shuffle_epi8(tblMac, nibHi);
            const __m256i mac0 = _mm256_cvtepi8_epi16(
                _mm_unpacklo_epi8(macLo, macHi));
            const __m256i mac1 = _mm256_cvtepi8_epi16(
                _mm_unpackhi_epi8(macLo, macHi));

            // 2^mag reaches 128, so the SAC weights widen unsigned
            // and the conditional negate runs in int16.
            const __m128i powLo = _mm_shuffle_epi8(tblPow, nibLo);
            const __m128i powHi = _mm_shuffle_epi8(tblPow, nibHi);
            const __m128i negLo = _mm_cmpeq_epi8(
                _mm_and_si128(nibLo, signBit), signBit);
            const __m128i negHi = _mm_cmpeq_epi8(
                _mm_and_si128(nibHi, signBit), signBit);
            const __m256i pow0 = _mm256_cvtepu8_epi16(
                _mm_unpacklo_epi8(powLo, powHi));
            const __m256i pow1 = _mm256_cvtepu8_epi16(
                _mm_unpackhi_epi8(powLo, powHi));
            const __m256i neg0 = _mm256_cvtepi8_epi16(
                _mm_unpacklo_epi8(negLo, negHi));
            const __m256i neg1 = _mm256_cvtepi8_epi16(
                _mm_unpackhi_epi8(negLo, negHi));
            // Conditional negate: (pow ^ mask) - mask.
            const __m256i sac0 = _mm256_sub_epi16(
                _mm256_xor_si256(pow0, neg0), neg0);
            const __m256i sac1 = _mm256_sub_epi16(
                _mm256_xor_si256(pow1, neg1), neg1);

            for (int a = 0; a < MR; ++a) {
                const int8_t *xr = x + a * xStride + i;
                const __m256i xp0 = broadcastXPair(xr);
                const __m256i xp1 = broadcastXPair(xr + 2);
                accMac[a] = _mm256_add_epi32(
                    accMac[a], _mm256_madd_epi16(mac0, xp0));
                accMac[a] = _mm256_add_epi32(
                    accMac[a], _mm256_madd_epi16(mac1, xp1));
                accSac[a] = _mm256_add_epi32(
                    accSac[a], _mm256_madd_epi16(sac0, xp0));
                accSac[a] = _mm256_add_epi32(
                    accSac[a], _mm256_madd_epi16(sac1, xp1));
            }
        }
        for (int a = 0; a < MR; ++a) {
            alignas(32) int32_t lanes[8];
            _mm256_store_si256(reinterpret_cast<__m256i *>(lanes),
                               accMac[a]);
            for (int c = 0; c < kTilePanelCols; ++c)
                mac[a * kTilePanelCols + c] += lanes[c];
            _mm256_store_si256(reinterpret_cast<__m256i *>(lanes),
                               accSac[a]);
            for (int c = 0; c < kTilePanelCols; ++c)
                sac[a * kTilePanelCols + c] += lanes[c];
            accMac[a] = _mm256_setzero_si256();
            accSac[a] = _mm256_setzero_si256();
        }
    }
    scalarFusedTilePanelRange(x, xStride, MR, wtile, i, len, mac, sac);
}

void
avx2FusedTilePanel(const int8_t *x, int64_t xStride, int mr,
                   const uint8_t *wtile, int64_t len, int64_t *mac,
                   int64_t *sac)
{
    switch (mr) {
      case 1: avx2TilePanelImpl<1>(x, xStride, wtile, len, mac, sac); break;
      case 2: avx2TilePanelImpl<2>(x, xStride, wtile, len, mac, sac); break;
      case 3: avx2TilePanelImpl<3>(x, xStride, wtile, len, mac, sac); break;
      case 4: avx2TilePanelImpl<4>(x, xStride, wtile, len, mac, sac); break;
      default:
        scalarFusedTilePanel(x, xStride, mr, wtile, len, mac, sac);
        break;
    }
}

double
avx2DotF32(const float *x, const float *w, int64_t n)
{
    __m256d acc03 = _mm256_setzero_pd();
    __m256d acc47 = _mm256_setzero_pd();
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 xv = _mm256_loadu_ps(x + i);
        const __m256 wv = _mm256_loadu_ps(w + i);
        // float*float widened to double is exact, so FMA == mul+add.
        acc03 = _mm256_fmadd_pd(
            _mm256_cvtps_pd(_mm256_castps256_ps128(xv)),
            _mm256_cvtps_pd(_mm256_castps256_ps128(wv)), acc03);
        acc47 = _mm256_fmadd_pd(
            _mm256_cvtps_pd(_mm256_extractf128_ps(xv, 1)),
            _mm256_cvtps_pd(_mm256_extractf128_ps(wv, 1)), acc47);
    }
    alignas(32) double lanes[kSimdReduceLanes];
    _mm256_store_pd(lanes, acc03);
    _mm256_store_pd(lanes + 4, acc47);
    scalarDotF32Range(x, w, i, n, lanes);
    return combineReduceLanes(lanes);
}

void
avx2AccumulateSq(const float *x, double *acc, int64_t n)
{
    int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d xd = _mm256_cvtps_pd(_mm_loadu_ps(x + i));
        const __m256d a = _mm256_loadu_pd(acc + i);
        // Exact product: FMA == mul+add (each lane is one column).
        _mm256_storeu_pd(acc + i, _mm256_fmadd_pd(xd, xd, a));
    }
    scalarAccumulateSq(x + i, acc + i, n - i);
}

const SimdOps kAvx2Ops = {
    "avx2",
    &avx2AbsMax,
    &avx2QuantizeUnit,
    &avx2UnitError,
    &avx2EncodeCodes,
    &avx2MapNearest,
    &avx2QuantizeRoundClamp,
    &avx2RoundClampDequant,
    &avx2DequantLut16,
    &avx2DequantInt8,
    &avx2DotInt8,
    &avx2FusedDotMant,
    &avx2FusedTilePanel,
    &avx2DotF32,
    &avx2AccumulateSq,
};

} // namespace

const SimdOps *
avx2Ops()
{
#if defined(__x86_64__) || defined(_M_X64)
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
        return &kAvx2Ops;
#endif
    return nullptr;
}

} // namespace simd_detail
} // namespace mant

#else // !(__AVX2__ && __FMA__)

namespace mant {
namespace simd_detail {

const SimdOps *
avx2Ops()
{
    return nullptr;
}

} // namespace simd_detail
} // namespace mant

#endif
