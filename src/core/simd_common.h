/**
 * @file
 * Canonical (scalar) kernel implementations shared by every SIMD
 * backend. The scalar backend registers these directly; the wide
 * backends call them for loop tails and for fallback cases (e.g.
 * level tables wider than 16 entries), so every backend computes the
 * exact same function by construction.
 *
 * Translation units including this header must be compiled with
 * -ffp-contract=off: several loops rely on "multiply then add" being
 * two IEEE roundings, and a compiler-fused FMA here would silently
 * diverge from the backends that keep them separate.
 *
 * # Canonical reduction geometry
 *
 * Rounding float reductions accumulate into kSimdReduceLanes = 8
 * interleaved partial sums: lane j owns indices i with i % 8 == j.
 * A 256-bit backend holds lanes 0..3 and 4..7 in two double vectors;
 * a 128-bit backend holds four pairs; the scalar code below keeps a
 * plain array. combineReduceLanes() merges them in one fixed order:
 *
 *     c_j = lane[j] + lane[j + 4]   (j = 0..3)
 *     total = ((c0 + c1) + c2) + c3
 *
 * which is exactly the cheapest in-register merge for the wide
 * backends, so nobody pays extra for determinism.
 */

#ifndef MANT_CORE_SIMD_COMMON_H_
#define MANT_CORE_SIMD_COMMON_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "core/simd.h"

namespace mant {
namespace simd_detail {

/** Lane count of the canonical float-reduction geometry. */
inline constexpr int kSimdReduceLanes = 8;

/** Level tables wider than this fall back to scalar binary search. */
inline constexpr int kMaxVectorLevels = 16;

/** Merge the canonical 8 partial sums in the fixed order. */
inline double
combineReduceLanes(const double lanes[kSimdReduceLanes])
{
    const double c0 = lanes[0] + lanes[4];
    const double c1 = lanes[1] + lanes[5];
    const double c2 = lanes[2] + lanes[6];
    const double c3 = lanes[3] + lanes[7];
    return ((c0 + c1) + c2) + c3;
}

/**
 * Index of the level nearest to x, ties to the lower level — the
 * nearestLevel() contract restated here so backends need not link
 * quant/format.cc. Branchless vector backends compute the same index
 * as sum_k [ (x - levels[k]) > (levels[k+1] - x) ]: the predicate is
 * monotone non-increasing in k, every term except the boundary one is
 * decided by exact sign comparison, and the boundary term is the very
 * float expression evaluated below.
 */
inline int
nearestLevelIndex(const float *levels, int nLevels, float x)
{
    int lo = 0, hi = nLevels;
    while (lo < hi) {
        const int mid = (lo + hi) / 2;
        if (levels[mid] < x)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo == 0)
        return 0;
    if (lo == nLevels)
        return nLevels - 1;
    const int below = lo - 1;
    return (x - levels[below]) <= (levels[lo] - x) ? below : lo;
}

inline float
scalarAbsMax(const float *x, int64_t n)
{
    float m = 0.0f;
    for (int64_t i = 0; i < n; ++i)
        m = std::max(m, std::fabs(x[i]));
    return m;
}

/**
 * Shared body of quantizeUnit/unitError. `out` may be null (error
 * only); `weights` may be null (unweighted). `i0` biases the lane
 * assignment so wide backends can run this for a tail starting at a
 * non-zero index with the accumulators they already hold.
 */
inline void
scalarQuantizeRange(const float *in, float *out, int64_t i0, int64_t n,
                    const float *levels, int nLevels, float scale,
                    const double *weights,
                    double lanes[kSimdReduceLanes])
{
    for (int64_t i = i0; i < n; ++i) {
        const float norm = in[i] / scale;
        const int idx = nearestLevelIndex(levels, nLevels, norm);
        const float q = levels[idx] * scale;
        if (out)
            out[i] = q;
        const double d =
            static_cast<double>(in[i]) - static_cast<double>(q);
        double contrib = d * d;
        if (weights)
            contrib = (weights[i] * d) * d;
        lanes[i % kSimdReduceLanes] += contrib;
    }
}

inline double
scalarQuantizeUnit(const float *in, float *out, int64_t n,
                   const float *levels, int nLevels, float scale)
{
    double lanes[kSimdReduceLanes] = {};
    scalarQuantizeRange(in, out, 0, n, levels, nLevels, scale, nullptr,
                        lanes);
    return combineReduceLanes(lanes);
}

inline double
scalarUnitError(const float *in, int64_t n, const float *levels,
                int nLevels, float scale, const double *weights)
{
    double lanes[kSimdReduceLanes] = {};
    scalarQuantizeRange(in, nullptr, 0, n, levels, nLevels, scale,
                        weights, lanes);
    return combineReduceLanes(lanes);
}

inline void
scalarEncodeCodes(const float *in, int8_t *codes, int64_t n,
                  const float *levels, int nLevels,
                  const int8_t *codeLut, float scale)
{
    for (int64_t i = 0; i < n; ++i) {
        const int idx =
            nearestLevelIndex(levels, nLevels, in[i] / scale);
        codes[i] = codeLut[idx];
    }
}

inline void
scalarMapNearest(const float *in, float *out, int64_t n,
                 const float *levels, int nLevels,
                 const float *outLevels)
{
    for (int64_t i = 0; i < n; ++i)
        out[i] = outLevels[nearestLevelIndex(levels, nLevels, in[i])];
}

/**
 * round-half-away-from-zero, the std::round contract, written in the
 * trunc/fraction form every backend can reproduce exactly:
 * t = trunc(x) and f = x - t are both exact for |x| < 2^23, so the
 * half test and the ±1 adjustment match std::round bit-for-bit.
 */
inline float
roundHalfAway(float x)
{
    const float t = std::trunc(x);
    const float f = x - t;
    if (std::fabs(f) >= 0.5f)
        return t + std::copysign(1.0f, x);
    return t;
}

/**
 * Clamp with the x86 maxps/minps select semantics — "a > b ? a : b"
 * returns the SECOND operand on an unordered compare — so a NaN
 * input collapses to lo on every backend instead of diverging
 * (std::clamp would propagate the NaN here, and casting that NaN to
 * int8 would be undefined). Identical to std::clamp for all ordered
 * inputs.
 */
inline float
clampSelect(float q, float lo, float hi)
{
    const float a = q > lo ? q : lo;
    return a < hi ? a : hi;
}

inline void
scalarQuantizeRoundClamp(const float *in, int8_t *codes, int64_t n,
                         float scale, int maxq)
{
    const float lo = -static_cast<float>(maxq);
    const float hi = static_cast<float>(maxq);
    for (int64_t i = 0; i < n; ++i) {
        const float q = roundHalfAway(in[i] / scale);
        codes[i] = static_cast<int8_t>(clampSelect(q, lo, hi));
    }
}

inline void
scalarRoundClampDequant(const float *in, float *out, int64_t n,
                        float scale, float maxq)
{
    for (int64_t i = 0; i < n; ++i) {
        const float q = roundHalfAway(in[i] / scale);
        out[i] = clampSelect(q, -maxq, maxq) * scale;
    }
}

inline void
scalarDequantLut16(const int8_t *codes, float *out, int64_t n,
                   const float *lut16, float scale)
{
    for (int64_t i = 0; i < n; ++i)
        out[i] = lut16[static_cast<uint8_t>(codes[i]) & 0xf] * scale;
}

inline void
scalarDequantInt8(const int8_t *codes, float *out, int64_t n,
                  float scale)
{
    for (int64_t i = 0; i < n; ++i)
        out[i] = static_cast<float>(codes[i]) * scale;
}

inline int64_t
scalarDotInt8(const int8_t *x, const int8_t *w, int64_t n)
{
    int64_t acc = 0;
    for (int64_t i = 0; i < n; ++i)
        acc += static_cast<int64_t>(x[i]) * w[i];
    return acc;
}

inline SimdPsums
scalarFusedDotMant(const int8_t *x, const int8_t *wcodes, int64_t n)
{
    SimdPsums p;
    for (int64_t i = 0; i < n; ++i) {
        const uint8_t c = static_cast<uint8_t>(wcodes[i]);
        const int mag = c & 0x7;
        const int sign = (c & 0x8) ? -1 : 1;
        const int64_t xv = x[i];
        p.mac += xv * (sign * mag);
        p.sac += sign * static_cast<int64_t>(
                            static_cast<uint64_t>(xv) << mag);
    }
    return p;
}

/**
 * Tail/partial tile-panel fused dot starting at element `i0` (must be
 * even — nibble pairs never split across calls). Wide backends call
 * this for the ragged end of a group with the int64 accumulators they
 * already hold; the full-range scalar kernel is the i0 == 0 case.
 */
inline void
scalarFusedTilePanelRange(const int8_t *x, int64_t xStride, int mr,
                          const uint8_t *wtile, int64_t i0, int64_t len,
                          int64_t *mac, int64_t *sac)
{
    for (int64_t i = i0; i < len; i += 2) {
        const uint8_t *bytes = wtile + (i / 2) * kTilePanelCols;
        const bool hasOdd = i + 1 < len;
        for (int c = 0; c < kTilePanelCols; ++c) {
            const uint8_t b = bytes[c];
            const int magLo = b & 0x7;
            const int signLo = (b & 0x8) ? -1 : 1;
            const int magHi = (b >> 4) & 0x7;
            const int signHi = (b & 0x80) ? -1 : 1;
            for (int a = 0; a < mr; ++a) {
                int64_t &m = mac[a * kTilePanelCols + c];
                int64_t &s = sac[a * kTilePanelCols + c];
                const int64_t xLo = x[a * xStride + i];
                m += xLo * (signLo * magLo);
                s += signLo *
                     static_cast<int64_t>(static_cast<uint64_t>(xLo)
                                          << magLo);
                if (hasOdd) {
                    const int64_t xHi = x[a * xStride + i + 1];
                    m += xHi * (signHi * magHi);
                    s += signHi *
                         static_cast<int64_t>(
                             static_cast<uint64_t>(xHi) << magHi);
                }
            }
        }
    }
}

inline void
scalarFusedTilePanel(const int8_t *x, int64_t xStride, int mr,
                     const uint8_t *wtile, int64_t len, int64_t *mac,
                     int64_t *sac)
{
    scalarFusedTilePanelRange(x, xStride, mr, wtile, 0, len, mac, sac);
}

/** Tail/partial f32 dot: lanes biased by i0 like scalarQuantizeRange.
 *  The float×float product is exact in double, so += here equals the
 *  wide backends' FMA. */
inline void
scalarDotF32Range(const float *x, const float *w, int64_t i0, int64_t n,
                  double lanes[kSimdReduceLanes])
{
    for (int64_t i = i0; i < n; ++i) {
        lanes[i % kSimdReduceLanes] +=
            static_cast<double>(x[i]) * static_cast<double>(w[i]);
    }
}

inline double
scalarDotF32(const float *x, const float *w, int64_t n)
{
    double lanes[kSimdReduceLanes] = {};
    scalarDotF32Range(x, w, 0, n, lanes);
    return combineReduceLanes(lanes);
}

inline void
scalarAccumulateSq(const float *x, double *acc, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        acc[i] += static_cast<double>(x[i]) * static_cast<double>(x[i]);
}

} // namespace simd_detail
} // namespace mant

#endif // MANT_CORE_SIMD_COMMON_H_
