/**
 * @file
 * NEON (aarch64 ASIMD) backend. ARMv8 mandates ASIMD, so no runtime
 * CPU check is needed — availability is a compile-target question.
 * On non-aarch64 targets the translation unit collapses to a null
 * registration.
 *
 * The same bit-exactness rules as the AVX2 backend apply (see
 * simd.h / simd_avx2.cc): canonical 8-lane reduction geometry held in
 * four 2-double vectors, mul+add (never FMA) for inexact products,
 * exact-product FMA for float×float-in-double, integer lanes widened
 * to int64 inside overflow bounds, scalar-helper tails. Gathers
 * (level decode, LUT dequant) run scalar; the vector win here is the
 * branchless nearest-level compare ladder and the wide arithmetic.
 */

#include "core/simd_common.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace mant {
namespace simd_detail {

namespace {

/** Merge four 2-lane accumulators exactly like combineReduceLanes. */
double
combineAcc(float64x2_t a01, float64x2_t a23, float64x2_t a45,
           float64x2_t a67, double lanes[kSimdReduceLanes])
{
    vst1q_f64(lanes, a01);
    vst1q_f64(lanes + 2, a23);
    vst1q_f64(lanes + 4, a45);
    vst1q_f64(lanes + 6, a67);
    return combineReduceLanes(lanes);
}

float
neonAbsMax(const float *x, int64_t n)
{
    float32x4_t m4 = vdupq_n_f32(0.0f);
    int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float32x4_t av = vabsq_f32(vld1q_f32(x + i));
        // vmaxq propagates NaN; std::max(m, fabs(x)) ignores a NaN
        // candidate. Select explicitly so a NaN lane keeps the
        // running maximum, preserving backend parity.
        m4 = vbslq_f32(vcgtq_f32(av, m4), av, m4);
    }
    float m = vmaxvq_f32(m4);
    for (; i < n; ++i)
        m = std::max(m, std::fabs(x[i]));
    return m;
}

/** Nearest-level indices for 4 normalized values (see nearestIdx8). */
uint32x4_t
nearestIdx4(float32x4_t norm, const float *levels, int nLevels)
{
    uint32x4_t idx = vdupq_n_u32(0);
    for (int k = 0; k + 1 < nLevels; ++k) {
        const float32x4_t lhs =
            vsubq_f32(norm, vdupq_n_f32(levels[k]));
        const float32x4_t rhs =
            vsubq_f32(vdupq_n_f32(levels[k + 1]), norm);
        // All-ones where true: subtracting adds 1.
        idx = vsubq_u32(idx, vcgtq_f32(lhs, rhs));
    }
    return idx;
}

/** Encode 4 values and gather their dequantized levels via buffer. */
void
encodeGather4(const float *in, const float *levels, int nLevels,
              float scale, float q[4], int32_t idxOut[4])
{
    const float32x4_t norm =
        vdivq_f32(vld1q_f32(in), vdupq_n_f32(scale));
    uint32x4_t idx = nearestIdx4(norm, levels, nLevels);
    uint32_t buf[4];
    vst1q_u32(buf, idx);
    for (int j = 0; j < 4; ++j) {
        idxOut[j] = static_cast<int32_t>(buf[j]);
        q[j] = levels[buf[j]] * scale;
    }
}

double
quantizeImpl(const float *in, float *out, int64_t n,
             const float *levels, int nLevels, float scale,
             const double *weights)
{
    float64x2_t a01 = vdupq_n_f64(0.0), a23 = vdupq_n_f64(0.0);
    float64x2_t a45 = vdupq_n_f64(0.0), a67 = vdupq_n_f64(0.0);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        float q[8];
        int32_t idx[8];
        encodeGather4(in + i, levels, nLevels, scale, q, idx);
        encodeGather4(in + i + 4, levels, nLevels, scale, q + 4,
                      idx + 4);
        const float32x4_t q0 = vld1q_f32(q);
        const float32x4_t q1 = vld1q_f32(q + 4);
        if (out) {
            vst1q_f32(out + i, q0);
            vst1q_f32(out + i + 4, q1);
        }
        const float32x4_t x0 = vld1q_f32(in + i);
        const float32x4_t x1 = vld1q_f32(in + i + 4);
        float64x2_t d01 = vsubq_f64(vcvt_f64_f32(vget_low_f32(x0)),
                                    vcvt_f64_f32(vget_low_f32(q0)));
        float64x2_t d23 = vsubq_f64(vcvt_high_f64_f32(x0),
                                    vcvt_high_f64_f32(q0));
        float64x2_t d45 = vsubq_f64(vcvt_f64_f32(vget_low_f32(x1)),
                                    vcvt_f64_f32(vget_low_f32(q1)));
        float64x2_t d67 = vsubq_f64(vcvt_high_f64_f32(x1),
                                    vcvt_high_f64_f32(q1));
        float64x2_t c01 = vmulq_f64(d01, d01);
        float64x2_t c23 = vmulq_f64(d23, d23);
        float64x2_t c45 = vmulq_f64(d45, d45);
        float64x2_t c67 = vmulq_f64(d67, d67);
        if (weights) {
            // (w * d) * d, three roundings like the scalar loop.
            c01 = vmulq_f64(vmulq_f64(vld1q_f64(weights + i), d01),
                            d01);
            c23 = vmulq_f64(vmulq_f64(vld1q_f64(weights + i + 2), d23),
                            d23);
            c45 = vmulq_f64(vmulq_f64(vld1q_f64(weights + i + 4), d45),
                            d45);
            c67 = vmulq_f64(vmulq_f64(vld1q_f64(weights + i + 6), d67),
                            d67);
        }
        // add (not FMA): d*d is inexact, the contract is mul+add.
        a01 = vaddq_f64(a01, c01);
        a23 = vaddq_f64(a23, c23);
        a45 = vaddq_f64(a45, c45);
        a67 = vaddq_f64(a67, c67);
    }
    alignas(16) double lanes[kSimdReduceLanes];
    combineAcc(a01, a23, a45, a67, lanes);
    scalarQuantizeRange(in, out, i, n, levels, nLevels, scale, weights,
                        lanes);
    return combineReduceLanes(lanes);
}

double
neonQuantizeUnit(const float *in, float *out, int64_t n,
                 const float *levels, int nLevels, float scale)
{
    if (nLevels < 1 || nLevels > kMaxVectorLevels)
        return scalarQuantizeUnit(in, out, n, levels, nLevels, scale);
    return quantizeImpl(in, out, n, levels, nLevels, scale, nullptr);
}

double
neonUnitError(const float *in, int64_t n, const float *levels,
              int nLevels, float scale, const double *weights)
{
    if (nLevels < 1 || nLevels > kMaxVectorLevels)
        return scalarUnitError(in, n, levels, nLevels, scale, weights);
    return quantizeImpl(in, nullptr, n, levels, nLevels, scale,
                        weights);
}

void
neonEncodeCodes(const float *in, int8_t *codes, int64_t n,
                const float *levels, int nLevels, const int8_t *codeLut,
                float scale)
{
    if (nLevels < 1 || nLevels > kMaxVectorLevels) {
        scalarEncodeCodes(in, codes, n, levels, nLevels, codeLut,
                          scale);
        return;
    }
    const float32x4_t scale4 = vdupq_n_f32(scale);
    int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float32x4_t norm =
            vdivq_f32(vld1q_f32(in + i), scale4);
        uint32_t idx[4];
        vst1q_u32(idx, nearestIdx4(norm, levels, nLevels));
        for (int j = 0; j < 4; ++j)
            codes[i + j] = codeLut[idx[j]];
    }
    scalarEncodeCodes(in + i, codes + i, n - i, levels, nLevels,
                      codeLut, scale);
}

void
neonMapNearest(const float *in, float *out, int64_t n,
               const float *levels, int nLevels, const float *outLevels)
{
    if (nLevels < 1 || nLevels > kMaxVectorLevels) {
        scalarMapNearest(in, out, n, levels, nLevels, outLevels);
        return;
    }
    int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        uint32_t idx[4];
        vst1q_u32(idx,
                  nearestIdx4(vld1q_f32(in + i), levels, nLevels));
        for (int j = 0; j < 4; ++j)
            out[i + j] = outLevels[idx[j]];
    }
    scalarMapNearest(in + i, out + i, n - i, levels, nLevels,
                     outLevels);
}

/** round-half-away-from-zero, the vector twin of roundHalfAway(). */
float32x4_t
roundHalfAway4(float32x4_t x)
{
    const float32x4_t t = vrndq_f32(x); // toward zero (frintz)
    const float32x4_t f = vsubq_f32(x, t);
    const uint32x4_t half =
        vcgeq_f32(vabsq_f32(f), vdupq_n_f32(0.5f));
    const uint32x4_t sign = vandq_u32(vreinterpretq_u32_f32(x),
                                      vdupq_n_u32(0x80000000u));
    const float32x4_t one = vreinterpretq_f32_u32(vorrq_u32(
        sign, vreinterpretq_u32_f32(vdupq_n_f32(1.0f))));
    // Select, don't add a masked zero: t + 0.0f would turn the -0.0f
    // that trunc produces for small negative x into +0.0f, silently
    // breaking bit-parity with the scalar std::round semantics.
    return vbslq_f32(half, vaddq_f32(t, one), t);
}

float32x4_t
roundClamp4(float32x4_t xv, float32x4_t scale4, float32x4_t lo4,
            float32x4_t hi4)
{
    const float32x4_t q = roundHalfAway4(vdivq_f32(xv, scale4));
    // Explicit selects, not vmin/vmax (which propagate NaN on ARM):
    // clampSelect's "a > b ? a : b" form collapses a NaN lane to lo,
    // matching the scalar backend and x86 maxps/minps exactly.
    const float32x4_t a = vbslq_f32(vcgtq_f32(q, lo4), q, lo4);
    return vbslq_f32(vcltq_f32(a, hi4), a, hi4);
}

void
neonQuantizeRoundClamp(const float *in, int8_t *codes, int64_t n,
                       float scale, int maxq)
{
    const float32x4_t scale4 = vdupq_n_f32(scale);
    const float32x4_t hi4 = vdupq_n_f32(static_cast<float>(maxq));
    const float32x4_t lo4 = vdupq_n_f32(-static_cast<float>(maxq));
    int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float32x4_t r =
            roundClamp4(vld1q_f32(in + i), scale4, lo4, hi4);
        // r is integral in [-127, 127]; the convert is exact.
        int32_t q[4];
        vst1q_s32(q, vcvtq_s32_f32(r));
        for (int j = 0; j < 4; ++j)
            codes[i + j] = static_cast<int8_t>(q[j]);
    }
    scalarQuantizeRoundClamp(in + i, codes + i, n - i, scale, maxq);
}

void
neonRoundClampDequant(const float *in, float *out, int64_t n,
                      float scale, float maxq)
{
    const float32x4_t scale4 = vdupq_n_f32(scale);
    const float32x4_t hi4 = vdupq_n_f32(maxq);
    const float32x4_t lo4 = vdupq_n_f32(-maxq);
    int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float32x4_t r =
            roundClamp4(vld1q_f32(in + i), scale4, lo4, hi4);
        vst1q_f32(out + i, vmulq_f32(r, scale4));
    }
    scalarRoundClampDequant(in + i, out + i, n - i, scale, maxq);
}

void
neonDequantLut16(const int8_t *codes, float *out, int64_t n,
                 const float *lut16, float scale)
{
    const float32x4_t scale4 = vdupq_n_f32(scale);
    int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        float v[4];
        for (int j = 0; j < 4; ++j)
            v[j] = lut16[static_cast<uint8_t>(codes[i + j]) & 0xf];
        vst1q_f32(out + i, vmulq_f32(vld1q_f32(v), scale4));
    }
    scalarDequantLut16(codes + i, out + i, n - i, lut16, scale);
}

void
neonDequantInt8(const int8_t *codes, float *out, int64_t n, float scale)
{
    const float32x4_t scale4 = vdupq_n_f32(scale);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const int16x8_t w = vmovl_s8(vld1_s8(codes + i));
        const float32x4_t v0 =
            vcvtq_f32_s32(vmovl_s16(vget_low_s16(w)));
        const float32x4_t v1 =
            vcvtq_f32_s32(vmovl_s16(vget_high_s16(w)));
        vst1q_f32(out + i, vmulq_f32(v0, scale4));
        vst1q_f32(out + i + 4, vmulq_f32(v1, scale4));
    }
    scalarDequantInt8(codes + i, out + i, n - i, scale);
}

/** Same widening bound rationale as the AVX2 backend. */
constexpr int64_t kWidenBlock = 1 << 16;

int64_t
neonDotInt8(const int8_t *x, const int8_t *w, int64_t n)
{
    int64_t total = 0;
    int64_t i = 0;
    while (i + 16 <= n) {
        const int64_t blockEnd = std::min(n, i + kWidenBlock);
        int32x4_t acc = vdupq_n_s32(0);
        for (; i + 16 <= blockEnd; i += 16) {
            const int8x16_t xv = vld1q_s8(x + i);
            const int8x16_t wv = vld1q_s8(w + i);
            acc = vpadalq_s16(
                acc, vmull_s8(vget_low_s8(xv), vget_low_s8(wv)));
            acc = vpadalq_s16(
                acc, vmull_s8(vget_high_s8(xv), vget_high_s8(wv)));
        }
        total += vaddlvq_s32(acc);
    }
    total += scalarDotInt8(x + i, w + i, n - i);
    return total;
}

SimdPsums
neonFusedDotMant(const int8_t *x, const int8_t *wcodes, int64_t n)
{
    // nibble -> sign * magnitude, as int8.
    const int8x16_t tblMac = {0, 1, 2, 3, 4, 5, 6, 7, //
                              0, -1, -2, -3, -4, -5, -6, -7};
    // nibble -> 2^magnitude, as unsigned bytes (128 = 0x80).
    const uint8x16_t tblPow = {1, 2, 4, 8, 16, 32, 64, 128, //
                               1, 2, 4, 8, 16, 32, 64, 128};
    const uint8x16_t nibMask = vdupq_n_u8(0xf);
    const uint8x16_t signBit = vdupq_n_u8(0x8);

    SimdPsums p;
    int64_t i = 0;
    while (i + 16 <= n) {
        const int64_t blockEnd = std::min(n, i + kWidenBlock);
        int32x4_t accMac = vdupq_n_s32(0);
        int32x4_t accSac = vdupq_n_s32(0);
        for (; i + 16 <= blockEnd; i += 16) {
            const int8x16_t xv = vld1q_s8(x + i);
            const uint8x16_t nib = vandq_u8(
                vreinterpretq_u8_s8(vld1q_s8(wcodes + i)), nibMask);

            const int8x16_t mac8 =
                vqtbl1q_s8(tblMac, nib); // |values| <= 7
            accMac = vpadalq_s16(
                accMac,
                vmull_s8(vget_low_s8(xv), vget_low_s8(mac8)));
            accMac = vpadalq_s16(
                accMac,
                vmull_s8(vget_high_s8(xv), vget_high_s8(mac8)));

            // 2^mag reaches 128, so the SAC weights live in int16.
            const uint8x16_t pow8 = vqtbl1q_u8(tblPow, nib);
            const uint8x16_t neg8 =
                vceqq_u8(vandq_u8(nib, signBit), signBit);
            const int16x8_t powLo = vreinterpretq_s16_u16(
                vmovl_u8(vget_low_u8(pow8)));
            const int16x8_t powHi = vreinterpretq_s16_u16(
                vmovl_u8(vget_high_u8(pow8)));
            const int16x8_t negLo =
                vmovl_s8(vget_low_s8(vreinterpretq_s8_u8(neg8)));
            const int16x8_t negHi =
                vmovl_s8(vget_high_s8(vreinterpretq_s8_u8(neg8)));
            // Conditional negate: (pow ^ mask) - mask.
            const int16x8_t sacLo =
                vsubq_s16(veorq_s16(powLo, negLo), negLo);
            const int16x8_t sacHi =
                vsubq_s16(veorq_s16(powHi, negHi), negHi);
            const int16x8_t x16Lo = vmovl_s8(vget_low_s8(xv));
            const int16x8_t x16Hi = vmovl_s8(vget_high_s8(xv));
            accSac = vmlal_s16(accSac, vget_low_s16(x16Lo),
                               vget_low_s16(sacLo));
            accSac = vmlal_s16(accSac, vget_high_s16(x16Lo),
                               vget_high_s16(sacLo));
            accSac = vmlal_s16(accSac, vget_low_s16(x16Hi),
                               vget_low_s16(sacHi));
            accSac = vmlal_s16(accSac, vget_high_s16(x16Hi),
                               vget_high_s16(sacHi));
        }
        p.mac += vaddlvq_s32(accMac);
        p.sac += vaddlvq_s32(accSac);
    }
    const SimdPsums tail = scalarFusedDotMant(x + i, wcodes + i, n - i);
    p.mac += tail.mac;
    p.sac += tail.sac;
    return p;
}

/**
 * Tile-panel microkernel, one instantiation per activation-row count
 * so the MAC/SAC accumulators stay in registers. Each 8-byte load
 * covers one k-pair × 8 panel columns (16 codes); the nibble->value
 * table lookups are shared across the MR activation rows. Per panel
 * column the accumulator lane layout is fixed: columns 0..3 in the
 * Lo int32x4, columns 4..7 in the Hi int32x4.
 */
template <int MR>
void
neonTilePanelImpl(const int8_t *x, int64_t xStride,
                  const uint8_t *wtile, int64_t len, int64_t *mac,
                  int64_t *sac)
{
    // Same nibble tables as neonFusedDotMant.
    const int8x16_t tblMac = {0, 1, 2, 3, 4, 5, 6, 7, //
                              0, -1, -2, -3, -4, -5, -6, -7};
    const uint8x16_t tblPow = {1, 2, 4, 8, 16, 32, 64, 128, //
                               1, 2, 4, 8, 16, 32, 64, 128};
    const uint8x8_t nibMask = vdup_n_u8(0xf);
    const uint8x16_t signBit = vdupq_n_u8(0x8);

    int32x4_t accMacLo[MR], accMacHi[MR], accSacLo[MR], accSacHi[MR];
    for (int a = 0; a < MR; ++a) {
        accMacLo[a] = vdupq_n_s32(0);
        accMacHi[a] = vdupq_n_s32(0);
        accSacLo[a] = vdupq_n_s32(0);
        accSacHi[a] = vdupq_n_s32(0);
    }

    int64_t i = 0;
    while (i + 2 <= len) {
        // Each iteration adds two products (<= 2 * 16256) per int32
        // lane for 2 elements, so a kWidenBlock-element block stays
        // below 2^31 exactly like the other integer kernels.
        const int64_t blockEnd = std::min(len, i + kWidenBlock);
        for (; i + 2 <= blockEnd; i += 2) {
            const uint8x8_t wb = vld1_u8(wtile + (i / 2) * 8);
            // Low 8 lanes of `nib`: even-k codes; high 8: odd-k.
            const uint8x16_t nib = vcombine_u8(
                vand_u8(wb, nibMask), vshr_n_u8(wb, 4));
            const int8x16_t mac8 = vqtbl1q_s8(tblMac, nib);
            const int16x8_t macEven = vmovl_s8(vget_low_s8(mac8));
            const int16x8_t macOdd = vmovl_s8(vget_high_s8(mac8));

            // 2^mag reaches 128, so the SAC weights widen unsigned
            // and the conditional negate runs in int16.
            const uint8x16_t pow8 = vqtbl1q_u8(tblPow, nib);
            const uint8x16_t neg8 =
                vceqq_u8(vandq_u8(nib, signBit), signBit);
            const int16x8_t powEven = vreinterpretq_s16_u16(
                vmovl_u8(vget_low_u8(pow8)));
            const int16x8_t powOdd = vreinterpretq_s16_u16(
                vmovl_u8(vget_high_u8(pow8)));
            const int16x8_t negEven =
                vmovl_s8(vget_low_s8(vreinterpretq_s8_u8(neg8)));
            const int16x8_t negOdd =
                vmovl_s8(vget_high_s8(vreinterpretq_s8_u8(neg8)));
            // Conditional negate: (pow ^ mask) - mask.
            const int16x8_t sacEven =
                vsubq_s16(veorq_s16(powEven, negEven), negEven);
            const int16x8_t sacOdd =
                vsubq_s16(veorq_s16(powOdd, negOdd), negOdd);

            for (int a = 0; a < MR; ++a) {
                const int16_t xk =
                    static_cast<int16_t>(x[a * xStride + i]);
                const int16_t xk1 =
                    static_cast<int16_t>(x[a * xStride + i + 1]);
                accMacLo[a] = vmlal_n_s16(
                    accMacLo[a], vget_low_s16(macEven), xk);
                accMacHi[a] = vmlal_n_s16(
                    accMacHi[a], vget_high_s16(macEven), xk);
                accMacLo[a] = vmlal_n_s16(
                    accMacLo[a], vget_low_s16(macOdd), xk1);
                accMacHi[a] = vmlal_n_s16(
                    accMacHi[a], vget_high_s16(macOdd), xk1);
                accSacLo[a] = vmlal_n_s16(
                    accSacLo[a], vget_low_s16(sacEven), xk);
                accSacHi[a] = vmlal_n_s16(
                    accSacHi[a], vget_high_s16(sacEven), xk);
                accSacLo[a] = vmlal_n_s16(
                    accSacLo[a], vget_low_s16(sacOdd), xk1);
                accSacHi[a] = vmlal_n_s16(
                    accSacHi[a], vget_high_s16(sacOdd), xk1);
            }
        }
        for (int a = 0; a < MR; ++a) {
            int32_t lanes[8];
            vst1q_s32(lanes, accMacLo[a]);
            vst1q_s32(lanes + 4, accMacHi[a]);
            for (int c = 0; c < kTilePanelCols; ++c)
                mac[a * kTilePanelCols + c] += lanes[c];
            vst1q_s32(lanes, accSacLo[a]);
            vst1q_s32(lanes + 4, accSacHi[a]);
            for (int c = 0; c < kTilePanelCols; ++c)
                sac[a * kTilePanelCols + c] += lanes[c];
            accMacLo[a] = vdupq_n_s32(0);
            accMacHi[a] = vdupq_n_s32(0);
            accSacLo[a] = vdupq_n_s32(0);
            accSacHi[a] = vdupq_n_s32(0);
        }
    }
    scalarFusedTilePanelRange(x, xStride, MR, wtile, i, len, mac, sac);
}

void
neonFusedTilePanel(const int8_t *x, int64_t xStride, int mr,
                   const uint8_t *wtile, int64_t len, int64_t *mac,
                   int64_t *sac)
{
    switch (mr) {
      case 1: neonTilePanelImpl<1>(x, xStride, wtile, len, mac, sac); break;
      case 2: neonTilePanelImpl<2>(x, xStride, wtile, len, mac, sac); break;
      case 3: neonTilePanelImpl<3>(x, xStride, wtile, len, mac, sac); break;
      case 4: neonTilePanelImpl<4>(x, xStride, wtile, len, mac, sac); break;
      default:
        scalarFusedTilePanel(x, xStride, mr, wtile, len, mac, sac);
        break;
    }
}

double
neonDotF32(const float *x, const float *w, int64_t n)
{
    float64x2_t a01 = vdupq_n_f64(0.0), a23 = vdupq_n_f64(0.0);
    float64x2_t a45 = vdupq_n_f64(0.0), a67 = vdupq_n_f64(0.0);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const float32x4_t x0 = vld1q_f32(x + i);
        const float32x4_t x1 = vld1q_f32(x + i + 4);
        const float32x4_t w0 = vld1q_f32(w + i);
        const float32x4_t w1 = vld1q_f32(w + i + 4);
        // float*float widened to double is exact, so FMA == mul+add.
        a01 = vfmaq_f64(a01, vcvt_f64_f32(vget_low_f32(x0)),
                        vcvt_f64_f32(vget_low_f32(w0)));
        a23 = vfmaq_f64(a23, vcvt_high_f64_f32(x0),
                        vcvt_high_f64_f32(w0));
        a45 = vfmaq_f64(a45, vcvt_f64_f32(vget_low_f32(x1)),
                        vcvt_f64_f32(vget_low_f32(w1)));
        a67 = vfmaq_f64(a67, vcvt_high_f64_f32(x1),
                        vcvt_high_f64_f32(w1));
    }
    alignas(16) double lanes[kSimdReduceLanes];
    combineAcc(a01, a23, a45, a67, lanes);
    scalarDotF32Range(x, w, i, n, lanes);
    return combineReduceLanes(lanes);
}

void
neonAccumulateSq(const float *x, double *acc, int64_t n)
{
    int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float32x4_t xv = vld1q_f32(x + i);
        const float64x2_t x01 = vcvt_f64_f32(vget_low_f32(xv));
        const float64x2_t x23 = vcvt_high_f64_f32(xv);
        // Exact product: FMA == mul+add (each lane is one column).
        vst1q_f64(acc + i,
                  vfmaq_f64(vld1q_f64(acc + i), x01, x01));
        vst1q_f64(acc + i + 2,
                  vfmaq_f64(vld1q_f64(acc + i + 2), x23, x23));
    }
    scalarAccumulateSq(x + i, acc + i, n - i);
}

const SimdOps kNeonOps = {
    "neon",
    &neonAbsMax,
    &neonQuantizeUnit,
    &neonUnitError,
    &neonEncodeCodes,
    &neonMapNearest,
    &neonQuantizeRoundClamp,
    &neonRoundClampDequant,
    &neonDequantLut16,
    &neonDequantInt8,
    &neonDotInt8,
    &neonFusedDotMant,
    &neonFusedTilePanel,
    &neonDotF32,
    &neonAccumulateSq,
};

} // namespace

const SimdOps *
neonOps()
{
    return &kNeonOps;
}

} // namespace simd_detail
} // namespace mant

#else // !__aarch64__

namespace mant {
namespace simd_detail {

const SimdOps *
neonOps()
{
    return nullptr;
}

} // namespace simd_detail
} // namespace mant

#endif
