/**
 * @file
 * Scalar SIMD backend: registers the canonical implementations from
 * simd_common.h verbatim. This backend *defines* the semantics the
 * wide backends must reproduce bit-for-bit; it is also the runtime
 * fallback for CPUs without AVX2/NEON and the MANT_SIMD=scalar path.
 *
 * Compiled with -ffp-contract=off (see src/CMakeLists.txt) so the
 * compiler cannot fuse the multiply-then-add sequences the contract
 * keeps separate.
 */

#include "core/simd_common.h"

namespace mant {
namespace simd_detail {

extern const SimdOps kScalarOps;
const SimdOps kScalarOps = {
    "scalar",
    &scalarAbsMax,
    &scalarQuantizeUnit,
    &scalarUnitError,
    &scalarEncodeCodes,
    &scalarMapNearest,
    &scalarQuantizeRoundClamp,
    &scalarRoundClampDequant,
    &scalarDequantLut16,
    &scalarDequantInt8,
    &scalarDotInt8,
    &scalarFusedDotMant,
    &scalarFusedTilePanel,
    &scalarDotF32,
    &scalarAccumulateSq,
};

} // namespace simd_detail
} // namespace mant
