#include "core/variance_selector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "quant/fixed_formats.h"

namespace mant {

namespace {

/** Variance of a grid's normalized levels under equal occupancy. */
double
gridVariance(const NumericFormat &fmt)
{
    const auto lv = fmt.levels();
    const double maxabs = fmt.maxAbsLevel();
    if (maxabs == 0.0 || lv.empty())
        return 0.0;
    double sum = 0.0, sum_sq = 0.0;
    for (float v : lv) {
        const double y = v / maxabs;
        sum += y;
        sum_sq += y * y;
    }
    const double n = static_cast<double>(lv.size());
    const double mean = sum / n;
    return sum_sq / n - mean * mean;
}

} // namespace

VarianceSelector
VarianceSelector::fromPoints(std::vector<Entry> entries)
{
    if (entries.empty())
        throw std::invalid_argument("VarianceSelector: empty table");
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.meanVariance < b.meanVariance;
              });
    for (size_t i = 0; i < entries.size(); ++i) {
        entries[i].varLo =
            i == 0 ? -std::numeric_limits<double>::infinity()
                   : 0.5 * (entries[i - 1].meanVariance +
                            entries[i].meanVariance);
        entries[i].varHi =
            i + 1 == entries.size()
                ? std::numeric_limits<double>::infinity()
                : 0.5 * (entries[i].meanVariance +
                         entries[i + 1].meanVariance);
    }
    VarianceSelector sel;
    sel.table_ = std::move(entries);
    return sel;
}

namespace {

/** One calibration group's variance plus its error under every type. */
struct CalibGroup
{
    double variance;
    std::vector<double> errors; ///< candidates..., then INT last
};

void
accumulateCalibration(const Tensor &calib, int64_t groupSize,
                      std::span<const int> candidates, bool fp16Scale,
                      std::vector<CalibGroup> &groups)
{
    const int64_t inner = calib.shape().innerDim();
    const int64_t outer = calib.shape().outerCount();
    const int64_t g = groupSize > 0 ? groupSize : inner;

    const SimdOps &ops = simdOps();
    for (int64_t r = 0; r < outer; ++r) {
        const float *row = calib.data() + r * inner;
        for (int64_t g0 = 0; g0 < inner; g0 += g) {
            const int64_t len = std::min(g, inner - g0);
            std::span<const float> group(row + g0,
                                         static_cast<size_t>(len));
            CalibGroup cg;
            StreamingStats st;
            st.addAll(group);
            cg.variance = st.normalizedVariance();
            cg.errors.reserve(candidates.size() + 1);
            for (int a : candidates) {
                cg.errors.push_back(groupError(
                    ops, group, mantFormat(a), {}, fp16Scale,
                    nullptr));
            }
            cg.errors.push_back(groupError(ops, group, int4Format(),
                                           {}, fp16Scale, nullptr));
            groups.push_back(std::move(cg));
        }
    }
}

} // namespace

VarianceSelector
VarianceSelector::calibrate(const Tensor &calib, int64_t groupSize,
                            std::span<const int> candidates, bool fp16Scale)
{
    const Tensor tensors[] = {calib};
    return calibrateMulti({tensors, 1}, groupSize, candidates, fp16Scale);
}

VarianceSelector
VarianceSelector::calibrateMulti(std::span<const Tensor> calib,
                                 int64_t groupSize,
                                 std::span<const int> candidates,
                                 bool fp16Scale)
{
    if (candidates.empty())
        candidates = mantCoefficientSet();

    std::vector<CalibGroup> groups;
    for (const Tensor &t : calib)
        accumulateCalibration(t, groupSize, candidates, fp16Scale,
                              groups);
    if (groups.empty())
        return analytic(candidates);

    // Variance-binned error minimization: sort groups by variance,
    // split into (up to) 16 equal-count bins, and give each bin the
    // type that minimizes the bin's total quantization error. Since
    // INT is among the options, the table can never lose to a fixed
    // INT grid on the calibration distribution.
    std::sort(groups.begin(), groups.end(),
              [](const CalibGroup &a, const CalibGroup &b) {
                  return a.variance < b.variance;
              });
    const size_t n_bins =
        std::max<size_t>(1, std::min<size_t>(16, groups.size() / 8 + 1));
    const size_t per_bin = (groups.size() + n_bins - 1) / n_bins;
    const size_t n_types = candidates.size() + 1;

    std::vector<Entry> entries;
    for (size_t b0 = 0; b0 < groups.size(); b0 += per_bin) {
        const size_t b1 = std::min(groups.size(), b0 + per_bin);
        std::vector<double> total(n_types, 0.0);
        double var_sum = 0.0;
        for (size_t i = b0; i < b1; ++i) {
            for (size_t t = 0; t < n_types; ++t)
                total[t] += groups[i].errors[t];
            var_sum += groups[i].variance;
        }
        size_t best = 0;
        for (size_t t = 1; t < n_types; ++t) {
            if (total[t] < total[best])
                best = t;
        }
        Entry e;
        e.meanVariance = var_sum / static_cast<double>(b1 - b0);
        e.winners = static_cast<int64_t>(b1 - b0);
        e.sel.isInt = best == candidates.size();
        e.sel.a = e.sel.isInt ? 0 : candidates[best];
        // Bin boundaries come from the data, not midpoints of means.
        e.varLo = b0 == 0 ? -std::numeric_limits<double>::infinity()
                          : 0.5 * (groups[b0 - 1].variance +
                                   groups[b0].variance);
        e.varHi = b1 == groups.size()
                      ? std::numeric_limits<double>::infinity()
                      : 0.5 * (groups[b1 - 1].variance +
                               groups[b1].variance);
        entries.push_back(e);
    }

    // Merge adjacent bins that chose the same type.
    std::vector<Entry> merged;
    for (const Entry &e : entries) {
        if (!merged.empty() &&
            merged.back().sel.isInt == e.sel.isInt &&
            merged.back().sel.a == e.sel.a) {
            merged.back().varHi = e.varHi;
            merged.back().winners += e.winners;
            merged.back().meanVariance =
                0.5 * (merged.back().meanVariance + e.meanVariance);
        } else {
            merged.push_back(e);
        }
    }
    VarianceSelector sel;
    sel.table_ = std::move(merged);
    return sel;
}

VarianceSelector
VarianceSelector::analytic(std::span<const int> candidates)
{
    if (candidates.empty())
        candidates = mantCoefficientSet();
    std::vector<Entry> entries;
    for (int a : candidates) {
        Entry e;
        e.meanVariance = gridVariance(mantFormat(a));
        e.winners = 0;
        e.sel.isInt = false;
        e.sel.a = a;
        entries.push_back(e);
    }
    Entry int_entry;
    int_entry.meanVariance = gridVariance(int4Format());
    int_entry.winners = 0;
    int_entry.sel.isInt = true;
    entries.push_back(int_entry);
    return fromPoints(std::move(entries));
}

VarianceSelector
VarianceSelector::fixed(const MantSelection &sel)
{
    Entry e;
    e.meanVariance = 0.0;
    e.winners = 0;
    e.sel = sel;
    return fromPoints({e});
}

const MantSelection &
VarianceSelector::select(double normalizedVariance) const
{
    // Binary search over the contiguous ranges.
    size_t lo = 0, hi = table_.size() - 1;
    while (lo < hi) {
        const size_t mid = (lo + hi) / 2;
        if (normalizedVariance < table_[mid].varHi)
            hi = mid;
        else
            lo = mid + 1;
    }
    return table_[lo].sel;
}

} // namespace mant
