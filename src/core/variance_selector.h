/**
 * @file
 * Variance-based real-time data type selection (Sec. V-C).
 *
 * The MSE search used for weights is too slow for the dynamically
 * generated KV cache, so the paper maps the streaming-computable
 * normalized variance of a group to a coefficient: calibration groups
 * are labelled with their MSE-optimal type, the mean normalized
 * variance per type defines a point, and midpoints between adjacent
 * points define the selection ranges (the paper's example: a = 35 ->
 * 0.104, a = 45 -> 0.118, so a = 40 owns [0.104, 0.118]).
 */

#ifndef MANT_CORE_VARIANCE_SELECTOR_H_
#define MANT_CORE_VARIANCE_SELECTOR_H_

#include <span>
#include <vector>

#include "core/coeff_search.h"
#include "tensor/stats.h"
#include "tensor/tensor.h"

namespace mant {

/**
 * The calibrated variance -> data type lookup table.
 */
class VarianceSelector
{
  public:
    /** One calibrated table row. */
    struct Entry
    {
        double meanVariance; ///< mean normalized variance of winners
        double varLo;        ///< owned range [varLo, varHi)
        double varHi;
        MantSelection sel;   ///< the data type this range selects
        int64_t winners;     ///< calibration groups that chose it
    };

    /**
     * Calibrate from sample data: split into groups of `groupSize`,
     * label each group by MSE search, aggregate normalized variance
     * per winning type, and build the range table.
     *
     * @param calib      Calibration tensor (e.g. sampled K or V data).
     * @param groupSize  Quantization group size.
     * @param candidates MANT coefficients (empty -> paper set).
     */
    static VarianceSelector calibrate(const Tensor &calib, int64_t groupSize,
                                      std::span<const int> candidates = {},
                                      bool fp16Scale = true);

    /** Calibrate over several sample tensors (e.g. K and V caches of
     *  every layer/head, which have different shapes). */
    static VarianceSelector calibrateMulti(
        std::span<const Tensor> calib, int64_t groupSize,
        std::span<const int> candidates = {}, bool fp16Scale = true);

    /**
     * Analytic fallback: uses the variance of each grid itself (equal
     * level occupancy) so selection is total even without calibration.
     */
    static VarianceSelector analytic(std::span<const int> candidates = {});

    /**
     * Degenerate single-entry selector that always returns `sel` —
     * used to force a baseline type (e.g. plain INT4 KV cache) through
     * the same real-time quantization machinery.
     */
    static VarianceSelector fixed(const MantSelection &sel);

    /** Select by precomputed normalized variance. */
    const MantSelection &select(double normalizedVariance) const;

    /** Select from streaming statistics (the RQU datapath). */
    const MantSelection &
    selectFromStats(const StreamingStats &stats) const
    {
        return select(stats.normalizedVariance());
    }

    std::span<const Entry> table() const { return table_; }

  private:
    static VarianceSelector fromPoints(std::vector<Entry> entries);

    std::vector<Entry> table_; ///< sorted by meanVariance ascending
};

} // namespace mant

#endif // MANT_CORE_VARIANCE_SELECTOR_H_
