#include "model/calibration.h"

#include <stdexcept>

#include "core/parallel.h"
#include "core/simd.h"
#include "model/quant_setup.h"
#include "model/transformer.h"

namespace mant {

void
ModelCalibration::accumulate(int64_t layer, LinearSlot slot,
                             const Tensor &x)
{
    const size_t k = key(layer, slot);
    if (slots_.size() <= k)
        slots_.resize(k + 1);
    Accum &acc = slots_[k];
    const int64_t rows = x.shape().dim(0);
    const int64_t cols = x.shape().dim(1);
    if (acc.sumSq.empty())
        acc.sumSq.assign(static_cast<size_t>(cols), 0.0);
    else if (static_cast<int64_t>(acc.sumSq.size()) != cols)
        throw std::invalid_argument(
            "ModelCalibration::accumulate: column count changed for slot");
    // Partition by column: each worker owns a disjoint column stripe
    // and walks the rows in order, so every per-column running sum
    // accumulates in exactly the serial order — bit-identical results
    // at any thread count, and every vector lane is one column, so
    // SIMD never reorders a column's sum either.
    const SimdOps &ops = simdOps();
    parallelFor(0, cols, 256, [&](int64_t cb, int64_t ce, int64_t) {
        for (int64_t r = 0; r < rows; ++r) {
            ops.accumulateSq(x.data() + r * cols + cb,
                             acc.sumSq.data() + cb, ce - cb);
        }
    });
    acc.samples += rows;
}

void
ModelCalibration::finalize()
{
    for (Accum &acc : slots_) {
        if (!acc.samples)
            continue;
        for (double &v : acc.sumSq)
            v /= static_cast<double>(acc.samples);
        acc.samples = 1;
    }
}

std::span<const double>
ModelCalibration::power(int64_t layer, LinearSlot slot) const
{
    const size_t k = key(layer, slot);
    if (k >= slots_.size())
        return {};
    return slots_[k].sumSq;
}

ModelCalibration
ModelCalibration::collect(const ModelWeights &weights,
                          std::span<const int32_t> tokens)
{
    ModelCalibration calib;
    Transformer ref(weights, fp16Setup());
    ref.setCalibrationSink(&calib);
    ref.prefill(tokens);
    ref.setCalibrationSink(nullptr);
    calib.finalize();
    return calib;
}

} // namespace mant
