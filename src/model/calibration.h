/**
 * @file
 * Activation calibration for the Eq. 6 coefficient search.
 *
 * MANT selects each weight group's coefficient by minimizing
 * ||X Ŵ_a − X W||² on a calibration dataset (Sec. V-A). The factored
 * per-position statistic is E[x_k²] for every input feature of every
 * linear layer; ModelCalibration collects those second moments from an
 * FP16 forward pass over calibration tokens.
 */

#ifndef MANT_MODEL_CALIBRATION_H_
#define MANT_MODEL_CALIBRATION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "model/weights.h"

namespace mant {

/** Which linear input a calibration vector describes. */
enum class LinearSlot
{
    AttnIn = 0, ///< input of wq / wk / wv (post-norm hidden state)
    OProj = 1,  ///< input of wo (attention output)
    FfnIn = 2,  ///< input of wGate / wUp (post-norm hidden state)
    FfnDown = 3, ///< input of wDown (FFN inner activation)
};

/**
 * Per-layer, per-slot mean-square input activations.
 */
class ModelCalibration
{
  public:
    ModelCalibration() = default;

    /**
     * Run the FP16 model over calibration tokens and collect E[x²]
     * for every linear input (the calibration pass of Sec. V-A).
     */
    static ModelCalibration collect(const ModelWeights &weights,
                                    std::span<const int32_t> tokens);

    /** Column-power vector for a (layer, slot); empty if absent. */
    std::span<const double> power(int64_t layer, LinearSlot slot) const;

    bool empty() const { return slots_.empty(); }

    /** Internal: accumulate one activation matrix's column power. */
    void accumulate(int64_t layer, LinearSlot slot, const Tensor &x);

    /** Internal: divide sums by sample counts. */
    void finalize();

  private:
    struct Accum
    {
        std::vector<double> sumSq;
        int64_t samples = 0;
    };

    static size_t
    key(int64_t layer, LinearSlot slot)
    {
        return static_cast<size_t>(layer) * 4 +
               static_cast<size_t>(slot);
    }

    std::vector<Accum> slots_;
};

} // namespace mant

#endif // MANT_MODEL_CALIBRATION_H_
