/**
 * @file
 * Model architecture + synthetic-statistics configuration.
 *
 * Each paper model (LLaMA-1 7B..65B, LLaMA-2, LLaMA-3, OPT, BLOOM) is
 * described twice:
 *  - archDims: the true published dimensions, used by the accelerator
 *    simulator (performance is analytic, so full size is free);
 *  - simDims: a reduced configuration used for accuracy runs (forward
 *    passes are real compute), scaled so experiments finish in seconds
 *    while the quantization phenomena are preserved.
 */

#ifndef MANT_MODEL_CONFIG_H_
#define MANT_MODEL_CONFIG_H_

#include <cstdint>
#include <string>

#include "tensor/distribution.h"

namespace mant {

/** Transformer family: drives norm type, FFN type, position encoding. */
enum class ModelFamily
{
    Llama, ///< RMSNorm, RoPE, SwiGLU FFN
    Opt,   ///< LayerNorm, learned positions, GELU FFN
    Bloom, ///< LayerNorm, ALiBi-style bias, GELU FFN
};

/** Pure architecture dimensions. */
struct ArchDims
{
    int64_t nLayers = 0;
    int64_t dModel = 0;
    int64_t nHeads = 0;
    int64_t dFfn = 0;   ///< FFN inner width (per branch for SwiGLU)
    int64_t vocab = 0;

    int64_t headDim() const { return dModel / nHeads; }

    /** Weight parameter count of all linear layers (no embeddings). */
    int64_t
    linearParams() const
    {
        const int64_t attn = 4 * dModel * dModel;
        const int64_t ffn = 3 * dModel * dFfn; // SwiGLU-style upper bound
        return nLayers * (attn + ffn);
    }
};

/** Full model profile: identity, dims, and synthetic statistics. */
struct ModelProfile
{
    std::string name;
    ModelFamily family = ModelFamily::Llama;

    ArchDims archDims; ///< true dims (accelerator simulator)
    ArchDims simDims;  ///< reduced dims (accuracy experiments)

    /** Weight statistics; index 0 applies to layer 0, which real LLMs
     *  show to be spikier (Fig. 15's a=0 dominance). */
    DistProfile weightStats;
    DistProfile firstLayerStats;
    ActProfile actStats;

    /** FP16 baseline perplexity from Tbl. II; the evaluator calibrates
     *  the logit scale so the FP16 row reproduces this value. */
    double fp16Ppl = 5.0;

    uint64_t seed = 1; ///< base seed for weight generation
};

} // namespace mant

#endif // MANT_MODEL_CONFIG_H_
