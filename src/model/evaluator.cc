#include "model/evaluator.h"

#include <algorithm>
#include <cmath>

#include "model/layers.h"
#include "tensor/rng.h"

namespace mant {

PplEvaluator::PplEvaluator(const ModelWeights &weights, EvalConfig cfg)
    : weights_(weights), cfg_(cfg)
{
    // Fixed random corpus.
    Rng rng(cfg_.seed);
    const int64_t vocab = weights_.profile.simDims.vocab;
    contexts_.resize(static_cast<size_t>(cfg_.contexts));
    for (auto &ctx : contexts_) {
        ctx.resize(static_cast<size_t>(cfg_.seqLen));
        for (auto &tok : ctx)
            tok = static_cast<int32_t>(rng.uniformInt(
                static_cast<uint64_t>(vocab)));
    }

    // One reference pass at temperature 1; logits stored raw.
    Transformer ref(weights_, fp16Setup());
    ref.setLogitScale(1.0f);
    refLogits_.reserve(contexts_.size());
    for (const auto &ctx : contexts_)
        refLogits_.push_back(ref.prefill(ctx));

    calibrateScale();
}

double
PplEvaluator::meanEntropyAt(double scale) const
{
    double total = 0.0;
    int64_t count = 0;
    std::vector<float> probs;
    for (const Tensor &logits : refLogits_) {
        const int64_t t_dim = logits.shape().dim(0);
        for (int64_t t = cfg_.skip; t < t_dim; ++t) {
            const auto row = logits.row(t);
            probs.assign(row.begin(), row.end());
            softmaxRowScaled(probs, static_cast<float>(scale));
            total += rowEntropy(probs);
            ++count;
        }
    }
    return count ? total / static_cast<double>(count) : 0.0;
}

void
PplEvaluator::calibrateScale()
{
    // Entropy decreases monotonically with scale; bisect for
    // exp(H) == target, i.e. H == log(target).
    const double target = std::log(weights_.profile.fp16Ppl);
    double lo = 1e-3, hi = 256.0;
    // Ensure the bracket actually contains the target.
    for (int i = 0; i < 8 && meanEntropyAt(hi) > target; ++i)
        hi *= 2.0;
    for (int it = 0; it < 48; ++it) {
        const double mid = 0.5 * (lo + hi);
        if (meanEntropyAt(mid) > target)
            lo = mid;
        else
            hi = mid;
    }
    scale_ = static_cast<float>(0.5 * (lo + hi));
    refPpl_ = std::exp(meanEntropyAt(scale_));
}

double
PplEvaluator::perplexity(Transformer &model) const
{
    model.setLogitScale(scale_);
    double total = 0.0;
    int64_t count = 0;
    std::vector<float> pref, pq;

    for (size_t c = 0; c < contexts_.size(); ++c) {
        const Tensor qlogits = model.prefill(contexts_[c]);
        const Tensor &rlogits = refLogits_[c];
        const int64_t t_dim = rlogits.shape().dim(0);
        for (int64_t t = cfg_.skip; t < t_dim; ++t) {
            const auto rrow = rlogits.row(t);
            pref.assign(rrow.begin(), rrow.end());
            softmaxRowScaled(pref, scale_);

            const auto qrow = qlogits.row(t);
            pq.assign(qrow.begin(), qrow.end());
            softmaxRow(pq); // model logits already carry the scale

            total += rowCrossEntropy(pref, pq);
            ++count;
        }
    }
    return std::exp(count ? total / static_cast<double>(count) : 0.0);
}

double
PplEvaluator::perplexityOf(const QuantSetup &setup,
                           const VarianceSelector *kvSelector,
                           const ModelCalibration *calibration) const
{
    Transformer model(weights_, setup, kvSelector, calibration);
    return perplexity(model);
}

} // namespace mant
