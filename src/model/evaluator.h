/**
 * @file
 * Perplexity-proxy evaluation (DESIGN.md §2, substitution 2).
 *
 * The "language" is the FP32 reference model's own output distribution
 * over fixed random contexts. The evaluator:
 *   1. runs the reference model once and stores its raw logits;
 *   2. calibrates a logit temperature so the reference perplexity
 *      exp(E[entropy]) equals the paper's FP16 baseline for the model;
 *   3. scores any quantized variant as exp(E[CE(P_ref, P_quant)]).
 * The reference scores exactly the FP16 target; every quantized number
 * then emerges from running the real quantization + kernels.
 */

#ifndef MANT_MODEL_EVALUATOR_H_
#define MANT_MODEL_EVALUATOR_H_

#include <vector>

#include "model/calibration.h"
#include "model/transformer.h"

namespace mant {

/** Evaluation corpus / calibration settings. */
struct EvalConfig
{
    int64_t contexts = 3;   ///< number of token sequences
    int64_t seqLen = 96;    ///< tokens per sequence
    int64_t skip = 8;       ///< warm-up positions excluded from scoring
    uint64_t seed = 4242;   ///< corpus seed
};

/**
 * Perplexity-proxy evaluator bound to one base model.
 */
class PplEvaluator
{
  public:
    PplEvaluator(const ModelWeights &weights, EvalConfig cfg = {});

    /** The calibrated logit temperature (apply to evaluated models). */
    float logitScale() const { return scale_; }

    /** Reference (FP16-baseline) perplexity — matches profile.fp16Ppl. */
    double referencePerplexity() const { return refPpl_; }

    /**
     * Evaluate a quantized model: run it over the corpus and return
     * exp(mean cross-entropy against the reference distribution).
     * The evaluator sets the model's logit scale.
     */
    double perplexity(Transformer &model) const;

    /** Convenience: build a Transformer for `setup` and evaluate it. */
    double perplexityOf(const QuantSetup &setup,
                        const VarianceSelector *kvSelector = nullptr,
                        const ModelCalibration *calibration
                        = nullptr) const;

    std::span<const std::vector<int32_t>> corpus() const
    {
        return {contexts_.data(), contexts_.size()};
    }

    const ModelWeights &weights() const { return weights_; }

  private:
    double meanEntropyAt(double scale) const;
    void calibrateScale();

    const ModelWeights &weights_;
    EvalConfig cfg_;
    std::vector<std::vector<int32_t>> contexts_;
    std::vector<Tensor> refLogits_; ///< raw (temperature-1) logits
    float scale_ = 1.0f;
    double refPpl_ = 0.0;
};

} // namespace mant

#endif // MANT_MODEL_EVALUATOR_H_
