#include "model/generation.h"

#include <algorithm>
#include <cmath>

#include "model/layers.h"

namespace mant {

std::vector<int32_t>
greedyGenerate(Transformer &model, std::span<const int32_t> prompt,
               int64_t numTokens)
{
    std::vector<int32_t> generated;
    generated.reserve(static_cast<size_t>(numTokens));

    const Tensor logits = model.prefill(prompt);
    const auto last = logits.row(logits.shape().dim(0) - 1);
    int32_t next = static_cast<int32_t>(
        std::max_element(last.begin(), last.end()) - last.begin());
    generated.push_back(next);

    for (int64_t t = 1; t < numTokens; ++t) {
        const std::vector<float> row = model.decodeStep(next);
        next = static_cast<int32_t>(
            std::max_element(row.begin(), row.end()) - row.begin());
        generated.push_back(next);
    }
    return generated;
}

double
generationSimilarity(std::span<const int32_t> reference,
                     std::span<const int32_t> candidate)
{
    const size_t n = std::min(reference.size(), candidate.size());
    if (n == 0)
        return 1.0;

    double score = 0.0, weight_total = 0.0;
    bool diverged = false;
    double weight = 1.0;
    for (size_t i = 0; i < n; ++i) {
        weight_total += weight;
        if (reference[i] == candidate[i]) {
            score += weight;
        } else if (!diverged) {
            diverged = true;
            weight = 0.5; // post-divergence tokens count half
        }
    }
    return weight_total > 0.0 ? score / weight_total : 1.0;
}

double
scaledGenerationScore(double similarity, double fp16Score)
{
    return fp16Score * similarity;
}

double
forcedLikelihood(Transformer &model, std::span<const int32_t> prompt,
                 std::span<const int32_t> reference)
{
    if (reference.empty())
        return 1.0;

    const Tensor logits = model.prefill(prompt);
    std::vector<float> probs;
    const auto first = logits.row(logits.shape().dim(0) - 1);
    probs.assign(first.begin(), first.end());
    softmaxRow(probs);

    double log_sum = 0.0;
    for (size_t t = 0; t < reference.size(); ++t) {
        const double p = std::max(
            1e-12, static_cast<double>(
                       probs[static_cast<size_t>(reference[t])]));
        log_sum += std::log(p);
        if (t + 1 == reference.size())
            break;
        const std::vector<float> row = model.decodeStep(reference[t]);
        probs.assign(row.begin(), row.end());
        softmaxRow(probs);
    }
    return std::exp(log_sum / static_cast<double>(reference.size()));
}

double
forcedDecodingAgreement(Transformer &model,
                        std::span<const int32_t> prompt,
                        std::span<const int32_t> reference)
{
    if (reference.empty())
        return 1.0;

    const Tensor logits = model.prefill(prompt);
    const auto last = logits.row(logits.shape().dim(0) - 1);
    int32_t pick = static_cast<int32_t>(
        std::max_element(last.begin(), last.end()) - last.begin());

    int64_t agree = 0;
    for (size_t t = 0; t < reference.size(); ++t) {
        agree += pick == reference[t];
        if (t + 1 == reference.size())
            break;
        // Teacher forcing: feed the reference token regardless.
        const std::vector<float> row = model.decodeStep(reference[t]);
        pick = static_cast<int32_t>(
            std::max_element(row.begin(), row.end()) - row.begin());
    }
    return static_cast<double>(agree) /
           static_cast<double>(reference.size());
}

} // namespace mant
