#include "model/generation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "model/layers.h"
#include "serve/serving_engine.h"

namespace mant {

namespace {

/**
 * Reject reference token ids the decode path cannot take: a negative
 * or >= vocab id would index the logits row (forcedLikelihood) or the
 * embedding table (teacher forcing) out of bounds — UB, not a soft
 * error. Shared by both forced-decoding evaluators.
 */
void
validateReferenceTokens(std::span<const int32_t> reference,
                        int64_t vocab, const char *fn)
{
    for (size_t t = 0; t < reference.size(); ++t) {
        if (reference[t] < 0 ||
            static_cast<int64_t>(reference[t]) >= vocab) {
            throw std::out_of_range(
                std::string(fn) + ": reference token " +
                std::to_string(reference[t]) + " at position " +
                std::to_string(t) + " outside vocab [0, " +
                std::to_string(vocab) + ")");
        }
    }
}

} // namespace

std::vector<int32_t>
greedyGenerate(Transformer &model, std::span<const int32_t> prompt,
               int64_t numTokens)
{
    // Clamp degenerate counts: a negative numTokens used to underflow
    // the size_t reserve() into a huge allocation, and numTokens == 0
    // still emitted the prefill argmax. Empty output for both (and for
    // an empty prompt, which has no last logits row to seed from).
    if (numTokens <= 0 || prompt.empty())
        return {};

    // One single-slot serving engine run: identical tokens to the old
    // hand-rolled prefill + decodeStep loop (the engine's determinism
    // contract), with the model's own default-stream state untouched.
    ServingConfig cfg;
    cfg.maxStreams = 1;
    ServingEngine engine(model, cfg);
    GenRequest req;
    req.prompt.assign(prompt.begin(), prompt.end());
    req.maxNewTokens = numTokens;
    const RequestId id = engine.submit(std::move(req));
    engine.run();
    return engine.output(id);
}

double
generationSimilarity(std::span<const int32_t> reference,
                     std::span<const int32_t> candidate)
{
    const size_t n = std::min(reference.size(), candidate.size());
    if (n == 0)
        return 1.0;

    double score = 0.0, weight_total = 0.0;
    bool diverged = false;
    double weight = 1.0;
    for (size_t i = 0; i < n; ++i) {
        weight_total += weight;
        if (reference[i] == candidate[i]) {
            score += weight;
        } else if (!diverged) {
            diverged = true;
            weight = 0.5; // post-divergence tokens count half
        }
    }
    return weight_total > 0.0 ? score / weight_total : 1.0;
}

double
scaledGenerationScore(double similarity, double fp16Score)
{
    return fp16Score * similarity;
}

double
forcedLikelihood(Transformer &model, std::span<const int32_t> prompt,
                 std::span<const int32_t> reference)
{
    if (reference.empty())
        return 1.0;
    validateReferenceTokens(
        reference, model.weights().embedding.shape().dim(0),
        "forcedLikelihood");

    const Tensor logits = model.prefill(prompt);
    std::vector<float> probs;
    const auto first = logits.row(logits.shape().dim(0) - 1);
    probs.assign(first.begin(), first.end());
    softmaxRow(probs);

    double log_sum = 0.0;
    for (size_t t = 0; t < reference.size(); ++t) {
        const double p = std::max(
            1e-12, static_cast<double>(
                       probs[static_cast<size_t>(reference[t])]));
        log_sum += std::log(p);
        if (t + 1 == reference.size())
            break;
        const std::vector<float> row = model.decodeStep(reference[t]);
        probs.assign(row.begin(), row.end());
        softmaxRow(probs);
    }
    return std::exp(log_sum / static_cast<double>(reference.size()));
}

double
forcedDecodingAgreement(Transformer &model,
                        std::span<const int32_t> prompt,
                        std::span<const int32_t> reference)
{
    if (reference.empty())
        return 1.0;
    validateReferenceTokens(
        reference, model.weights().embedding.shape().dim(0),
        "forcedDecodingAgreement");

    const Tensor logits = model.prefill(prompt);
    const auto last = logits.row(logits.shape().dim(0) - 1);
    int32_t pick = static_cast<int32_t>(
        std::max_element(last.begin(), last.end()) - last.begin());

    int64_t agree = 0;
    for (size_t t = 0; t < reference.size(); ++t) {
        agree += pick == reference[t];
        if (t + 1 == reference.size())
            break;
        // Teacher forcing: feed the reference token regardless.
        const std::vector<float> row = model.decodeStep(reference[t]);
        pick = static_cast<int32_t>(
            std::max_element(row.begin(), row.end()) - row.begin());
    }
    return static_cast<double>(agree) /
           static_cast<double>(reference.size());
}

} // namespace mant
