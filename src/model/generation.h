/**
 * @file
 * Generation-task evaluation (Tbl. III substitution, DESIGN.md §2):
 * greedy decode under a quantized model vs the FP16 reference, scored
 * by a length-normalized token-overlap similarity. This exercises the
 * full decode-stage path: KV cache growth, spatial K quantization and
 * the two-phase temporal V window, token by token.
 */

#ifndef MANT_MODEL_GENERATION_H_
#define MANT_MODEL_GENERATION_H_

#include <cstdint>
#include <vector>

#include "model/transformer.h"

namespace mant {

/**
 * Greedy generation: prefill the prompt, then decode `numTokens`
 * tokens, feeding each argmax back in. Runs on a single-slot
 * ServingEngine stream (src/serve/), leaving the model's own
 * default-stream state untouched. Non-positive `numTokens` and empty
 * prompts return an empty vector; prompt tokens outside the model
 * vocabulary throw std::invalid_argument.
 */
std::vector<int32_t> greedyGenerate(Transformer &model,
                                    std::span<const int32_t> prompt,
                                    int64_t numTokens);

/**
 * Position-weighted token agreement between two generations: exact
 * matches count 1, with a mild positional decay after the first
 * divergence (once streams diverge, later tokens differ for cascade
 * reasons rather than quantization quality alone). Returns [0, 1].
 */
double generationSimilarity(std::span<const int32_t> reference,
                            std::span<const int32_t> candidate);

/**
 * Tbl. III-style score: similarity relative to the FP16 generation,
 * rescaled to the paper's FP16 task score (e.g. BLEU 27.88 for
 * TruthfulQA means fp16Score = 27.88; an identical generation scores
 * 27.88, a diverged one proportionally less).
 */
double scaledGenerationScore(double similarity, double fp16Score);

/**
 * Teacher-forced decoding agreement: walk the reference generation
 * feeding the *reference* tokens, and count the steps where the model
 * under test would have picked the same token. Unlike free-running
 * similarity this does not cascade after the first divergence, so it
 * resolves small quality differences (e.g. KV INT4 vs KV MANT4).
 * Reference token ids outside [0, vocab) throw std::out_of_range
 * before any model work runs (they would otherwise index the
 * embedding table out of bounds under teacher forcing).
 */
double forcedDecodingAgreement(Transformer &model,
                               std::span<const int32_t> prompt,
                               std::span<const int32_t> reference);

/**
 * Forced-decoding likelihood: the geometric-mean probability the model
 * assigns to the reference generation under teacher forcing. A
 * continuous generation-quality measure: 1-for-1 with the reference
 * model on its own output, strictly below it for any perturbation —
 * resolving differences (KV INT4 vs MANT4) that argmax metrics hide.
 * Reference token ids outside [0, vocab) throw std::out_of_range
 * before any model work runs (they would otherwise index the logits
 * row out of bounds).
 */
double forcedLikelihood(Transformer &model,
                        std::span<const int32_t> prompt,
                        std::span<const int32_t> reference);

} // namespace mant

#endif // MANT_MODEL_GENERATION_H_
