#include "model/kv_cache.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "tensor/fp16.h"

namespace mant {

HeadKvCache::HeadKvCache(KvMethod method, int64_t headDim, int64_t groupSize,
                         const VarianceSelector *selector,
                         bool captureCodes, KvPageAllocator *pageAlloc)
    : method_(method), headDim_(headDim), groupSize_(groupSize),
      selector_(selector), captureCodes_(captureCodes),
      pageAlloc_(pageAlloc)
{
    if (method_ == KvMethod::Int4) {
        MantSelection int_sel;
        int_sel.isInt = true;
        intSelector_ =
            std::make_unique<VarianceSelector>(
                VarianceSelector::fixed(int_sel));
        selector_ = intSelector_.get();
    }
    if (method_ == KvMethod::Mant4 && !selector_)
        throw std::invalid_argument(
            "HeadKvCache: Mant4 requires a variance selector");
    if (captureCodes_ && method_ == KvMethod::Fp16)
        throw std::invalid_argument(
            "HeadKvCache: captureCodes requires a quantized KV method");
    if (method_ != KvMethod::Fp16) {
        vQuant_ = std::make_unique<TemporalVQuantizer>(
            headDim_, vWindow(), *selector_, /*fp16Scale=*/true,
            captureCodes_, pageAlloc_);
    }
    if (captureCodes_) {
        kPanels_ = KPanelStore(headDim_, groupSize_, pageAlloc_);
        kCodes_.resize(static_cast<size_t>(headDim_), 0);
    }
}

const KPanelStore &
HeadKvCache::kPanels() const
{
    if (!captureCodes_)
        throw std::logic_error(
            "HeadKvCache: kPanels() requires captureCodes");
    return kPanels_;
}

const TemporalVQuantizer &
HeadKvCache::vQuant() const
{
    if (!vQuant_)
        throw std::logic_error(
            "HeadKvCache: vQuant() is unavailable for FP16 caches");
    return *vQuant_;
}

void
HeadKvCache::appendK(std::span<const float> k)
{
    assert(!retired_ && "HeadKvCache::appendK: cache is retired");
    if (retired_)
        throw std::logic_error("HeadKvCache::appendK: cache is retired");
    if (static_cast<int64_t>(k.size()) != headDim_)
        throw std::invalid_argument("appendK: bad vector length");
    const size_t base = kData_.size();
    kData_.resize(base + k.size());
    std::span<float> out(kData_.data() + base, k.size());

    if (method_ == KvMethod::Fp16) {
        for (size_t i = 0; i < k.size(); ++i)
            out[i] = fp16Round(k[i]);
    } else if (captureCodes_) {
        auto sels = spatialQuantizeRow(k, groupSize_, *selector_, out,
                                       kCodes_);
        kPanels_.appendRow(kCodes_, sels);
        kSelections_.insert(kSelections_.end(), sels.begin(), sels.end());
    } else {
        auto sels = spatialQuantizeRow(k, groupSize_, *selector_, out);
        kSelections_.insert(kSelections_.end(), sels.begin(), sels.end());
    }
    ++kRows_;
}

void
HeadKvCache::prefillV(const Tensor &v)
{
    assert(!retired_ && "HeadKvCache::prefillV: cache is retired");
    if (retired_)
        throw std::logic_error(
            "HeadKvCache::prefillV: cache is retired");
    if (v.shape().rank() != 2 || v.shape().dim(1) != headDim_)
        throw std::invalid_argument("prefillV: bad V shape");
    if (method_ == KvMethod::Fp16) {
        const size_t base = vRaw_.size();
        vRaw_.resize(base + static_cast<size_t>(v.numel()));
        for (int64_t i = 0; i < v.numel(); ++i)
            vRaw_[base + static_cast<size_t>(i)] = fp16Round(v[i]);
        vRows_ += static_cast<size_t>(v.shape().dim(0));
        return;
    }
    vQuant_->pushPrefill(v);
}

void
HeadKvCache::appendV(std::span<const float> v)
{
    assert(!retired_ && "HeadKvCache::appendV: cache is retired");
    if (retired_)
        throw std::logic_error("HeadKvCache::appendV: cache is retired");
    if (static_cast<int64_t>(v.size()) != headDim_)
        throw std::invalid_argument("appendV: bad vector length");
    if (method_ == KvMethod::Fp16) {
        const size_t base = vRaw_.size();
        vRaw_.resize(base + v.size());
        for (size_t i = 0; i < v.size(); ++i)
            vRaw_[base + i] = fp16Round(v[i]);
        ++vRows_;
        return;
    }
    vQuant_->pushDecode(v);
}

std::span<const float>
HeadKvCache::kRow(int64_t pos) const
{
    assert(pos >= 0 && pos < static_cast<int64_t>(kRows_) &&
           "HeadKvCache::kRow: position outside [0, size())");
    return {kData_.data() + pos * headDim_,
            static_cast<size_t>(headDim_)};
}

Tensor
HeadKvCache::vMatrix() const
{
    if (method_ == KvMethod::Fp16) {
        Tensor out(Shape{static_cast<int64_t>(vRows_), headDim_});
        std::copy(vRaw_.begin(), vRaw_.end(), out.data());
        return out;
    }
    return vQuant_->reconstruct();
}

void
HeadKvCache::reset()
{
    kData_.clear();
    kRows_ = 0;
    kSelections_.clear();
    vRaw_.clear();
    vRows_ = 0;
    kPanels_.reset();
    if (method_ != KvMethod::Fp16) {
        vQuant_ = std::make_unique<TemporalVQuantizer>(
            headDim_, vWindow(), *selector_, /*fp16Scale=*/true,
            captureCodes_, pageAlloc_);
    }
    retired_ = false;
}

void
HeadKvCache::retire()
{
    // reset() already returns every panel-store page to the pool (the
    // recreated V quantizer holds no pages until its first window
    // finalizes); retirement just flips the cache read-only-dead until
    // the slot is recycled.
    reset();
    retired_ = true;
}

int64_t
HeadKvCache::pagesHeld() const
{
    int64_t pages = kPanels_.pagesHeld();
    if (vQuant_ && captureCodes_)
        pages += vQuant_->codePanels().pagesHeld();
    return pages;
}

int64_t
HeadKvCache::poolPagesForRows(int64_t rows) const
{
    if (!captureCodes_ || rows <= 0)
        return 0;
    int64_t pages = kPanels_.poolPagesForRows(rows);
    if (vQuant_) {
        // A V window block is claimed when its window-th row finalizes
        // it; `rows` more appends complete (rows() + rows) / window
        // windows in total.
        const int64_t windowsAfter =
            (vQuant_->rows() + rows) / vWindow();
        pages +=
            vQuant_->codePanels().poolPagesForWindows(windowsAfter);
    }
    return pages;
}

} // namespace mant
