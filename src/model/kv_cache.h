/**
 * @file
 * Per-head KV cache with pluggable quantization.
 *
 * K rows are quantized spatially on arrival (groups along the head
 * dimension, the inner dimension of Q*K^T). V is quantized temporally
 * (groups along the sequence axis, the inner dimension of P*V) through
 * the two-phase window scheme — or stored raw for the FP16 baseline.
 */

#ifndef MANT_MODEL_KV_CACHE_H_
#define MANT_MODEL_KV_CACHE_H_

#include <memory>
#include <vector>

#include "core/kv_quant.h"
#include "model/quant_setup.h"

namespace mant {

/**
 * One attention head's cache.
 */
class HeadKvCache
{
  public:
    /**
     * @param method       KV quantization method.
     * @param headDim      Elements per K/V vector.
     * @param groupSize    Quantization group / process-window size
     *                     (non-positive: one whole-row K group and a
     *                     V process window of headDim rows).
     * @param selector     Variance selector (MANT); may be null for
     *                     FP16.
     * @param captureCodes Additionally keep the raw quantized codes in
     *                     panel layout (KPanelStore / VPanelStore) —
     *                     the operands of the fused integer attention
     *                     path. Throws std::invalid_argument for FP16
     *                     (there are no codes to capture).
     * @param pageAlloc    Shared page pool backing the captured panel
     *                     stores (must outlive the cache), or nullptr
     *                     for private unbounded pools. Ignored without
     *                     captureCodes.
     */
    HeadKvCache(KvMethod method, int64_t headDim, int64_t groupSize,
                const VarianceSelector *selector,
                bool captureCodes = false,
                KvPageAllocator *pageAlloc = nullptr);

    /**
     * Append one K vector (quantized per method, spatial dataflow).
     *
     * Contract: the cache must not be retired. Appending to a retired
     * cache is a caller bug (its pages are back in the shared pool) —
     * debug builds abort on the assert, release builds throw
     * std::logic_error. Same contract for prefillV() and appendV().
     */
    void appendK(std::span<const float> k);

    /** Bulk-ingest the prefill V matrix (rows = positions). */
    void prefillV(const Tensor &v);

    /** Append one decode-step V vector (temporal dataflow). */
    void appendV(std::span<const float> v);

    int64_t size() const { return static_cast<int64_t>(kRows_); }

    /**
     * Dequantized K row at a position.
     *
     * Contract: `pos` must lie in [0, size()). Out-of-range positions
     * are a caller bug — debug builds abort on the assert; release
     * builds make no promise about the returned span (it may point
     * outside the cache's storage). The attention walk guarantees this
     * by construction: it only reads positions below the visible
     * horizon, which never exceeds the appended row count.
     */
    std::span<const float> kRow(int64_t pos) const;

    /** Dequantized V cache as (positions, headDim). */
    Tensor vMatrix() const;

    /** Selection histories (for diagnostics / the ablation benches). */
    const std::vector<MantSelection> &kSelections() const
    {
        return kSelections_;
    }

    /** Construction parameters (diagnostics and tests; ownership of
     *  pooled streams is tracked by the Transformer epoch, not by
     *  re-deriving compatibility from these). */
    KvMethod method() const { return method_; }
    int64_t headDim() const { return headDim_; }
    int64_t groupSize() const { return groupSize_; }

    /** True when constructed with captureCodes. */
    bool capturesCodes() const { return captureCodes_; }

    /** Panel store of the K codes (fused QK^T operand). Throws
     *  std::logic_error unless constructed with captureCodes. */
    const KPanelStore &kPanels() const;

    /** The temporal V quantizer (fused P·V reads its code panels and
     *  pending window). Throws std::logic_error for FP16 caches. */
    const TemporalVQuantizer &vQuant() const;

    /**
     * Drop all cached rows and selection history, keeping the K-row
     * storage allocation: a reset cache re-fills up to its previous
     * length without reallocating, which is what lets a serving layer
     * pool and recycle stream slots. Subsequent appends behave exactly
     * as on a freshly constructed cache (no stale selections or rows).
     * Every panel-store page goes back to its pool, and a retired
     * cache is revived for reuse.
     */
    void reset();

    /**
     * Retire the cache: drop all rows, return every panel-store page
     * to the shared pool, and reject further appends (assert in debug,
     * std::logic_error in release) until reset() revives it. The
     * serving layer calls this when a stream finishes so its pages are
     * claimable before the slot is next recycled.
     */
    void retire();

    /** True between retire() and the next reset(). */
    bool retired() const { return retired_; }

    /** Pool pages currently held by the captured panel stores. */
    int64_t pagesHeld() const;

    /** Exact pool pages appending `rows` more positions (one appendK +
     *  one appendV each) will claim from the panel stores: new K
     *  panel blocks plus newly-finalized V window blocks, minus the
     *  headroom of pages already held. 0 for caches that capture no
     *  codes (their KV lives in plain per-stream buffers). The serving
     *  scheduler reserves against this BEFORE running a chunk, so pool
     *  exhaustion surfaces as a scheduling decision (evict a victim),
     *  not as an exception out of a half-advanced forward pass. */
    int64_t poolPagesForRows(int64_t rows) const;

  private:
    KvMethod method_;
    int64_t headDim_;
    int64_t groupSize_;
    const VarianceSelector *selector_;
    /** Forced-INT selector for the Int4 baseline. */
    std::unique_ptr<VarianceSelector> intSelector_;

    /** Dequantized K storage, row-major (positions, headDim). */
    std::vector<float> kData_;
    size_t kRows_ = 0;
    std::vector<MantSelection> kSelections_;

    /** V storage: raw rows for FP16, temporal quantizer otherwise. */
    std::vector<float> vRaw_;
    size_t vRows_ = 0;
    std::unique_ptr<TemporalVQuantizer> vQuant_;

    /** Code capture (fused attention): packed K panels plus the
     *  per-append encode scratch. */
    bool captureCodes_ = false;
    KPanelStore kPanels_;
    std::vector<int8_t> kCodes_;

    /** Shared page pool for the panel stores (nullptr = private). */
    KvPageAllocator *pageAlloc_ = nullptr;
    bool retired_ = false;

    /** V process window: groupSize, or headDim when non-positive. */
    int64_t vWindow() const
    {
        return groupSize_ > 0 ? groupSize_ : headDim_;
    }
};

} // namespace mant

#endif // MANT_MODEL_KV_CACHE_H_
