#include "model/layers.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mant {

void
rmsNormRow(std::span<float> row, std::span<const float> gain, float eps)
{
    double acc = 0.0;
    for (float v : row)
        acc += static_cast<double>(v) * v;
    const float inv = 1.0f / std::sqrt(
        static_cast<float>(acc / static_cast<double>(row.size())) + eps);
    for (size_t i = 0; i < row.size(); ++i)
        row[i] = row[i] * inv * gain[i];
}

void
layerNormRow(std::span<float> row, std::span<const float> gain,
             std::span<const float> bias, float eps)
{
    double sum = 0.0, sum_sq = 0.0;
    for (float v : row) {
        sum += v;
        sum_sq += static_cast<double>(v) * v;
    }
    const double n = static_cast<double>(row.size());
    const double mean = sum / n;
    const double var = std::max(0.0, sum_sq / n - mean * mean);
    const float inv = 1.0f / std::sqrt(static_cast<float>(var) + eps);
    for (size_t i = 0; i < row.size(); ++i) {
        row[i] = (row[i] - static_cast<float>(mean)) * inv * gain[i] +
                 bias[i];
    }
}

void
softmaxRow(std::span<float> row)
{
    softmaxRowScaled(row, 1.0f);
}

void
softmaxRowScaled(std::span<float> row, float scale)
{
    float maxv = -INFINITY;
    for (float v : row)
        maxv = std::max(maxv, v * scale);
    double sum = 0.0;
    for (float &v : row) {
        v = std::exp(v * scale - maxv);
        sum += v;
    }
    const float inv = sum > 0.0 ? static_cast<float>(1.0 / sum) : 0.0f;
    for (float &v : row)
        v *= inv;
}

void
siluInPlace(std::span<float> xs)
{
    for (float &x : xs)
        x = x / (1.0f + std::exp(-x));
}

void
geluInPlace(std::span<float> xs)
{
    constexpr float kC = 0.7978845608f; // sqrt(2/pi)
    for (float &x : xs) {
        const float inner = kC * (x + 0.044715f * x * x * x);
        x = 0.5f * x * (1.0f + std::tanh(inner));
    }
}

void
applyRope(std::span<float> headVec, int64_t position, float base)
{
    const size_t d = headVec.size();
    if (d % 2 != 0)
        throw std::invalid_argument("applyRope: head dim must be even");
    for (size_t i = 0; i < d; i += 2) {
        const float freq = std::pow(
            base, -static_cast<float>(i) / static_cast<float>(d));
        const float theta = static_cast<float>(position) * freq;
        const float c = std::cos(theta);
        const float s = std::sin(theta);
        const float x0 = headVec[i];
        const float x1 = headVec[i + 1];
        headVec[i] = x0 * c - x1 * s;
        headVec[i + 1] = x0 * s + x1 * c;
    }
}

double
rowEntropy(std::span<const float> probs)
{
    double h = 0.0;
    for (float p : probs) {
        if (p > 0.0f)
            h -= static_cast<double>(p) * std::log(static_cast<double>(p));
    }
    return h;
}

double
rowCrossEntropy(std::span<const float> p, std::span<const float> q)
{
    if (p.size() != q.size())
        throw std::invalid_argument("rowCrossEntropy: size mismatch");
    constexpr double kFloor = 1e-12;
    double ce = 0.0;
    for (size_t i = 0; i < p.size(); ++i) {
        if (p[i] > 0.0f) {
            ce -= static_cast<double>(p[i]) *
                  std::log(std::max(kFloor, static_cast<double>(q[i])));
        }
    }
    return ce;
}

} // namespace mant
