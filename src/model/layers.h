/**
 * @file
 * Transformer layer primitives: normalization, activations, softmax,
 * and rotary position embedding. All are the straightforward reference
 * implementations; the quantization machinery wraps around them.
 */

#ifndef MANT_MODEL_LAYERS_H_
#define MANT_MODEL_LAYERS_H_

#include <span>

#include "tensor/tensor.h"

namespace mant {

/** RMSNorm: x * gain / sqrt(mean(x^2) + eps), row-wise. */
void rmsNormRow(std::span<float> row, std::span<const float> gain,
                float eps = 1e-5f);

/** LayerNorm: (x - mean) * gain / sqrt(var + eps) + bias, row-wise. */
void layerNormRow(std::span<float> row, std::span<const float> gain,
                  std::span<const float> bias, float eps = 1e-5f);

/** Numerically stable in-place softmax over a row. */
void softmaxRow(std::span<float> row);

/** Softmax with temperature scaling: softmax(scale * row). */
void softmaxRowScaled(std::span<float> row, float scale);

/** SiLU (swish) activation x * sigmoid(x), in place. */
void siluInPlace(std::span<float> xs);

/** tanh-approximation GELU, in place. */
void geluInPlace(std::span<float> xs);

/**
 * Apply rotary position embedding to one head vector at `position`.
 * Pairs (2i, 2i+1) are rotated by theta = position / base^(2i/d).
 */
void applyRope(std::span<float> headVec, int64_t position,
               float base = 10000.0f);

/** Entropy of a probability row (natural log). */
double rowEntropy(std::span<const float> probs);

/** Cross entropy -sum p*log(q) with clamping for q -> 0. */
double rowCrossEntropy(std::span<const float> p, std::span<const float> q);

} // namespace mant

#endif // MANT_MODEL_LAYERS_H_
