#include "model/model_file.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <new>
#include <stdexcept>

#include "core/fused_gemm.h"
#include "core/packed.h"
#include "core/parallel.h"
#include "model/calibration.h"
#include "model/quantized_linear.h"

#if defined(__unix__) || defined(__APPLE__)
#define MANT_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define MANT_HAVE_MMAP 0
#endif

namespace mant {

namespace {

constexpr uint32_t kMetaVersion = 1;
constexpr uint32_t kMaxMetaString = 4096;
/** Dimension sanity cap for loaded metadata: generous for any real
 *  model while keeping hostile dims from driving huge allocations. */
constexpr int64_t kMaxDim = int64_t{1} << 24;

constexpr size_t kTocStart = 64;
constexpr size_t kTocEntryBytes = 64;

// ---------------------------------------------------------------------
// Meta section serialization. The blob is a fixed little-endian field
// sequence followed by two length-prefixed strings; docs/FORMAT.md
// documents every field. Reader and writer must stay mirror images.

template <typename T>
void
putScalar(std::string &buf, T v)
{
    char b[sizeof(T)];
    std::memcpy(b, &v, sizeof(T));
    buf.append(b, sizeof(T));
}

void
putString(std::string &buf, const std::string &s)
{
    if (s.size() > kMaxMetaString)
        throw std::invalid_argument(
            "exportModel: metadata string too long");
    putScalar(buf, static_cast<uint32_t>(s.size()));
    buf.append(s);
}

std::string
buildMetaBlob(const ModelWeights &weights, const QuantSetup &setup,
              float logitScale)
{
    const ArchDims &d = weights.profile.simDims;
    std::string b;
    putScalar(b, kMetaVersion);
    putScalar(b, static_cast<uint32_t>(weights.profile.family));
    putScalar(b, d.nLayers);
    putScalar(b, d.dModel);
    putScalar(b, d.nHeads);
    putScalar(b, d.dFfn);
    putScalar(b, d.vocab);
    putScalar(b, weights.maxSeq);
    putScalar(b, weights.profile.seed);
    putScalar(b, weights.profile.fp16Ppl);
    putScalar(b, logitScale);
    putScalar(b, static_cast<uint32_t>(setup.weight));
    putScalar(b, static_cast<int32_t>(setup.weightBits));
    putScalar(b, static_cast<uint32_t>(setup.weightGran));
    putScalar(b, setup.weightGroup);
    putScalar(b, static_cast<uint32_t>(setup.act));
    putScalar(b, static_cast<int32_t>(setup.actBits));
    putScalar(b, static_cast<uint32_t>(setup.actGran));
    putScalar(b, setup.actGroup);
    putScalar(b, static_cast<uint32_t>(setup.kv));
    putScalar(b, setup.kvGroup);
    putScalar(b, static_cast<uint8_t>(setup.quantizeAttention ? 1 : 0));
    putScalar(b, static_cast<uint8_t>(setup.fusedInference ? 1 : 0));
    putScalar(b, static_cast<uint8_t>(setup.fusedAttention ? 1 : 0));
    putScalar(b, static_cast<uint8_t>(0)); // reserved
    putString(b, weights.profile.name);
    putString(b, setup.label);
    return b;
}

/** Cursor over the mapped meta section; every failure reports the
 *  absolute file offset of the field that broke. */
struct MetaReader
{
    const uint8_t *p;
    size_t size;
    uint64_t base; ///< file offset of the section start
    size_t pos = 0;

    uint64_t at() const { return base + pos; }

    template <typename T>
    T
    get()
    {
        if (size - pos < sizeof(T))
            throw PackedFormatError(
                "model file: truncated meta section", base + pos);
        T v;
        std::memcpy(&v, p + pos, sizeof(T));
        pos += sizeof(T);
        return v;
    }

    std::string
    getString()
    {
        const uint64_t lenAt = at();
        const uint32_t n = get<uint32_t>();
        if (n > kMaxMetaString)
            throw PackedFormatError(
                "model file: implausible meta string length", lenAt);
        if (size - pos < n)
            throw PackedFormatError(
                "model file: truncated meta section", base + pos);
        std::string s(reinterpret_cast<const char *>(p + pos), n);
        pos += n;
        return s;
    }
};

/** Everything the loader learns from the meta section. */
struct ParsedMeta
{
    ModelProfile profile;
    int64_t maxSeq = 0;
    QuantSetup setup;
    float logitScale = 1.0f;
};

ParsedMeta
parseMetaBlob(const uint8_t *p, size_t size, uint64_t base)
{
    MetaReader r{p, size, base};
    ParsedMeta m;

    uint64_t at = r.at();
    if (r.get<uint32_t>() != kMetaVersion)
        throw PackedFormatError(
            "model file: unsupported meta version", at);

    at = r.at();
    const uint32_t family = r.get<uint32_t>();
    if (family > static_cast<uint32_t>(ModelFamily::Bloom))
        throw PackedFormatError("model file: invalid model family", at);
    m.profile.family = static_cast<ModelFamily>(family);

    const uint64_t dimsAt = r.at();
    ArchDims &d = m.profile.simDims;
    d.nLayers = r.get<int64_t>();
    d.dModel = r.get<int64_t>();
    d.nHeads = r.get<int64_t>();
    d.dFfn = r.get<int64_t>();
    d.vocab = r.get<int64_t>();
    m.maxSeq = r.get<int64_t>();
    const bool dimsOk =
        d.nLayers > 0 && d.nLayers <= kMaxDim && d.dModel > 0 &&
        d.dModel <= kMaxDim && d.nHeads > 0 && d.nHeads <= kMaxDim &&
        d.dFfn > 0 && d.dFfn <= kMaxDim && d.vocab > 0 &&
        d.vocab <= kMaxDim && m.maxSeq > 0 && m.maxSeq <= kMaxDim &&
        d.dModel % d.nHeads == 0;
    if (!dimsOk)
        throw PackedFormatError(
            "model file: implausible model dimensions", dimsAt);

    m.profile.seed = r.get<uint64_t>();
    m.profile.fp16Ppl = r.get<double>();
    m.logitScale = r.get<float>();

    QuantSetup &s = m.setup;
    at = r.at();
    const uint32_t weight = r.get<uint32_t>();
    if (weight > static_cast<uint32_t>(WeightMethod::Mxfp4))
        throw PackedFormatError(
            "model file: invalid weight method", at);
    s.weight = static_cast<WeightMethod>(weight);
    s.weightBits = r.get<int32_t>();
    at = r.at();
    const uint32_t wgran = r.get<uint32_t>();
    if (wgran > static_cast<uint32_t>(Granularity::PerGroup))
        throw PackedFormatError(
            "model file: invalid weight granularity", at);
    s.weightGran = static_cast<Granularity>(wgran);
    s.weightGroup = r.get<int64_t>();

    at = r.at();
    const uint32_t act = r.get<uint32_t>();
    if (act > static_cast<uint32_t>(ActMethod::Tender))
        throw PackedFormatError(
            "model file: invalid activation method", at);
    s.act = static_cast<ActMethod>(act);
    s.actBits = r.get<int32_t>();
    at = r.at();
    const uint32_t agran = r.get<uint32_t>();
    if (agran > static_cast<uint32_t>(Granularity::PerGroup))
        throw PackedFormatError(
            "model file: invalid activation granularity", at);
    s.actGran = static_cast<Granularity>(agran);
    s.actGroup = r.get<int64_t>();

    at = r.at();
    const uint32_t kv = r.get<uint32_t>();
    if (kv > static_cast<uint32_t>(KvMethod::Mant4))
        throw PackedFormatError("model file: invalid KV method", at);
    s.kv = static_cast<KvMethod>(kv);
    s.kvGroup = r.get<int64_t>();

    const auto getFlag = [&r](const char *what) {
        const uint64_t flagAt = r.at();
        const uint8_t v = r.get<uint8_t>();
        if (v > 1)
            throw PackedFormatError(
                std::string("model file: invalid ") + what + " flag",
                flagAt);
        return v != 0;
    };
    s.quantizeAttention = getFlag("quantizeAttention");
    s.fusedInference = getFlag("fusedInference");
    s.fusedAttention = getFlag("fusedAttention");
    at = r.at();
    if (r.get<uint8_t>() != 0)
        throw PackedFormatError(
            "model file: nonzero reserved meta field", at);

    m.profile.name = r.getString();
    s.label = r.getString();
    if (r.pos != r.size)
        throw PackedFormatError(
            "model file: garbage after meta fields", r.at());

    // Only fused 4-bit MANT models are exportable (the file stores
    // tile codes, not float weights), so anything else in a meta
    // section is a forgery or corruption.
    if (!(s.fusedInference && s.weight == WeightMethod::Mant &&
          s.weightBits < 8))
        throw PackedFormatError(
            "model file: setup is not fused 4-bit MANT", base);
    return m;
}

} // namespace

// ---------------------------------------------------------------------
// MappedFile

void
MappedFile::release() noexcept
{
    if (data_ == nullptr) {
        size_ = 0;
        mapped_ = false;
        return;
    }
#if MANT_HAVE_MMAP
    if (mapped_) {
        ::munmap(
            const_cast<void *>(static_cast<const void *>(data_)),
            size_);
        data_ = nullptr;
        size_ = 0;
        mapped_ = false;
        return;
    }
#endif
    ::operator delete(
        const_cast<void *>(static_cast<const void *>(data_)),
        std::align_val_t{64});
    data_ = nullptr;
    size_ = 0;
    mapped_ = false;
}

MappedFile::~MappedFile() { release(); }

MappedFile::MappedFile(MappedFile &&other) noexcept
    : data_(other.data_), size_(other.size_), mapped_(other.mapped_)
{
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
}

MappedFile &
MappedFile::operator=(MappedFile &&other) noexcept
{
    if (this != &other) {
        release();
        data_ = other.data_;
        size_ = other.size_;
        mapped_ = other.mapped_;
        other.data_ = nullptr;
        other.size_ = 0;
        other.mapped_ = false;
    }
    return *this;
}

MappedFile
MappedFile::read(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error(
            "MappedFile: cannot open '" + path + "'");
    is.seekg(0, std::ios::end);
    const std::streamoff end = is.tellg();
    if (end < 0)
        throw std::runtime_error(
            "MappedFile: cannot size '" + path + "'");
    is.seekg(0, std::ios::beg);

    const size_t n = static_cast<size_t>(end);
    MappedFile f;
    // A non-null pointer even for n == 0, so an empty file reaches the
    // container parser (typed "truncated header") instead of the null
    // check.
    f.data_ = static_cast<const uint8_t *>(
        ::operator new(n, std::align_val_t{64}));
    f.size_ = n;
    f.mapped_ = false;
    if (n > 0 &&
        !is.read(
            reinterpret_cast<char *>(const_cast<uint8_t *>(f.data_)),
            static_cast<std::streamsize>(n)))
        throw std::runtime_error(
            "MappedFile: short read on '" + path + "'");
    return f;
}

MappedFile
MappedFile::open(const std::string &path)
{
#if MANT_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        throw std::runtime_error(
            "MappedFile: cannot open '" + path + "'");
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        throw std::runtime_error(
            "MappedFile: cannot stat '" + path + "'");
    }
    const size_t n = static_cast<size_t>(st.st_size);
    if (n == 0) {
        // mmap rejects zero-length mappings; fall back to the heap
        // stub so the parser reports a typed truncation.
        ::close(fd);
        return read(path);
    }
    void *p = ::mmap(nullptr, n, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (p == MAP_FAILED)
        throw std::runtime_error(
            "MappedFile: mmap failed for '" + path + "'");
    MappedFile f;
    f.data_ = static_cast<const uint8_t *>(p);
    f.size_ = n;
    f.mapped_ = true;
    return f;
#else
    return read(path);
#endif
}

// ---------------------------------------------------------------------
// Export

void
exportModel(std::ostream &os, const ModelWeights &weights,
            const QuantSetup &setup, const ModelExportOptions &opts)
{
    if (!(setup.fusedInference && setup.weight == WeightMethod::Mant &&
          setup.weightBits < 8))
        throw std::invalid_argument(
            "exportModel: requires a fused 4-bit MANT setup (the "
            "container stores tile codes, not float weights)");
    const ArchDims &d = weights.profile.simDims;
    if (static_cast<int64_t>(weights.layers.size()) != d.nLayers ||
        weights.embedding.numel() != d.vocab * d.dModel ||
        weights.maxSeq <= 0)
        throw std::invalid_argument(
            "exportModel: weights disagree with their profile");

    // The offline encode: quantize every linear exactly as the
    // Transformer constructor would (same codes, same tiles), one
    // work item per matrix.
    struct ExportItem
    {
        const Tensor *w;
        LinearSlot slot;
        int64_t layer;
        const char *name;
        QuantizedLinear lin;
    };
    std::vector<ExportItem> items;
    items.reserve(weights.layers.size() * 7);
    for (size_t l = 0; l < weights.layers.size(); ++l) {
        const LayerWeights &lw = weights.layers[l];
        const int64_t li = static_cast<int64_t>(l);
        items.push_back({&lw.wq, LinearSlot::AttnIn, li, "wq", {}});
        items.push_back({&lw.wk, LinearSlot::AttnIn, li, "wk", {}});
        items.push_back({&lw.wv, LinearSlot::AttnIn, li, "wv", {}});
        items.push_back({&lw.wo, LinearSlot::OProj, li, "wo", {}});
        items.push_back(
            {&lw.wGate, LinearSlot::FfnIn, li, "wgate", {}});
        if (lw.wUp.numel() > 0)
            items.push_back(
                {&lw.wUp, LinearSlot::FfnIn, li, "wup", {}});
        items.push_back(
            {&lw.wDown, LinearSlot::FfnDown, li, "wdown", {}});
    }
    const auto calibPower =
        [&](int64_t layer, LinearSlot slot) -> std::span<const double> {
        if (!opts.calibration)
            return {};
        return opts.calibration->power(layer, slot);
    };
    parallelFor(
        0, static_cast<int64_t>(items.size()), 1,
        [&](int64_t ib, int64_t ie, int64_t) {
            for (int64_t i = ib; i < ie; ++i) {
                ExportItem &item = items[static_cast<size_t>(i)];
                item.lin = QuantizedLinear(
                    *item.w, setup, calibPower(item.layer, item.slot),
                    /*retainFused=*/true);
            }
        });

    const std::string meta =
        buildMetaBlob(weights, setup, opts.logitScale);

    ModelContainerWriter writer;
    writer.add("meta", ModelSectionKind::Meta, meta.size(),
               [&meta](std::ostream &o) {
                   o.write(meta.data(),
                           static_cast<std::streamsize>(meta.size()));
               });

    const auto addF32 = [&writer](const std::string &name,
                                  const float *p, int64_t count) {
        if (count <= 0)
            return;
        writer.add(
            name, ModelSectionKind::F32,
            static_cast<uint64_t>(count) * sizeof(float),
            [p, count](std::ostream &o) {
                o.write(reinterpret_cast<const char *>(p),
                        static_cast<std::streamsize>(count * 4));
            });
    };
    addF32("embedding", weights.embedding.data(),
           weights.embedding.numel());
    addF32("pos_embedding", weights.posEmbedding.data(),
           weights.posEmbedding.numel());
    addF32("final_norm_gain", weights.finalNormGain.data(),
           static_cast<int64_t>(weights.finalNormGain.size()));
    addF32("final_norm_bias", weights.finalNormBias.data(),
           static_cast<int64_t>(weights.finalNormBias.size()));
    for (size_t l = 0; l < weights.layers.size(); ++l) {
        const LayerWeights &lw = weights.layers[l];
        const std::string prefix = "layer" + std::to_string(l) + "/";
        const auto addVec = [&](const char *nm,
                                const std::vector<float> &v) {
            addF32(prefix + nm, v.data(),
                   static_cast<int64_t>(v.size()));
        };
        addVec("norm_gain1", lw.normGain1);
        addVec("norm_bias1", lw.normBias1);
        addVec("norm_gain2", lw.normGain2);
        addVec("norm_bias2", lw.normBias2);
    }
    for (const ExportItem &item : items) {
        const MantTilesView *v = &item.lin.tilesView();
        writer.add(
            "layer" + std::to_string(item.layer) + "/" + item.name,
            ModelSectionKind::TilePack,
            tileSectionSize(v->rows(), v->cols(), v->groupSize()),
            [v](std::ostream &o) { writeTileSection(o, *v); });
    }
    writer.write(os);
}

void
exportModelToFile(const std::string &path, const ModelWeights &weights,
                  const QuantSetup &setup,
                  const ModelExportOptions &opts)
{
    std::ofstream os(path,
                     std::ios::binary | std::ios::trunc);
    if (!os)
        throw std::runtime_error(
            "exportModelToFile: cannot open '" + path + "'");
    exportModel(os, weights, setup, opts);
    os.flush();
    if (!os)
        throw std::runtime_error(
            "exportModelToFile: write failed for '" + path + "'");
}

// ---------------------------------------------------------------------
// Load

std::unique_ptr<LoadedModel>
LoadedModel::load(const std::string &path, bool forceRead)
{
    std::unique_ptr<LoadedModel> m(new LoadedModel());
    m->file_ = forceRead ? MappedFile::read(path)
                         : MappedFile::open(path);
    const uint8_t *base = m->file_.data();
    const std::vector<ModelSection> sections =
        parseModelContainer(base, m->file_.size());

    const auto tocOffset = [](size_t i) {
        return static_cast<uint64_t>(kTocStart + i * kTocEntryBytes);
    };
    const auto findSection =
        [&sections](const std::string &name) -> ptrdiff_t {
        for (size_t i = 0; i < sections.size(); ++i)
            if (sections[i].name == name)
                return static_cast<ptrdiff_t>(i);
        return -1;
    };
    const auto require = [&](const std::string &name,
                             ModelSectionKind kind) -> size_t {
        const ptrdiff_t i = findSection(name);
        if (i < 0)
            throw PackedFormatError(
                "model file: missing section '" + name + "'",
                kTocStart);
        const ModelSection &s = sections[static_cast<size_t>(i)];
        if (s.kind != kind)
            throw PackedFormatError("model file: section '" + name +
                                        "' has the wrong kind",
                                    tocOffset(i) + 40);
        return static_cast<size_t>(i);
    };
    const auto readF32s = [&](size_t idx,
                              int64_t count) -> std::vector<float> {
        const ModelSection &s = sections[idx];
        if (s.size != static_cast<uint64_t>(count) * sizeof(float))
            throw PackedFormatError("model file: section '" + s.name +
                                        "' has the wrong size",
                                    tocOffset(idx) + 48);
        std::vector<float> v(static_cast<size_t>(count));
        std::memcpy(v.data(), base + s.offset, s.size);
        return v;
    };
    const auto readTensor = [&](size_t idx, int64_t rows,
                                int64_t cols) -> Tensor {
        const ModelSection &s = sections[idx];
        const uint64_t want = static_cast<uint64_t>(rows) *
                              static_cast<uint64_t>(cols) *
                              sizeof(float);
        if (s.size != want)
            throw PackedFormatError("model file: section '" + s.name +
                                        "' has the wrong size",
                                    tocOffset(idx) + 48);
        Tensor t(Shape{rows, cols});
        std::memcpy(t.data(), base + s.offset, s.size);
        return t;
    };

    const size_t metaIdx = require("meta", ModelSectionKind::Meta);
    ParsedMeta meta = parseMetaBlob(
        base + sections[metaIdx].offset,
        static_cast<size_t>(sections[metaIdx].size),
        sections[metaIdx].offset);
    const ArchDims &d = meta.profile.simDims;
    m->setup_ = meta.setup;

    m->weights_ = std::make_unique<ModelWeights>();
    ModelWeights &w = *m->weights_;
    w.profile = meta.profile;
    w.maxSeq = meta.maxSeq;
    w.embedding = readTensor(
        require("embedding", ModelSectionKind::F32), d.vocab,
        d.dModel);
    if (const ptrdiff_t pi = findSection("pos_embedding"); pi >= 0)
        w.posEmbedding = readTensor(
            require("pos_embedding", ModelSectionKind::F32),
            meta.maxSeq, d.dModel);
    w.finalNormGain = readF32s(
        require("final_norm_gain", ModelSectionKind::F32), d.dModel);
    w.finalNormBias = readF32s(
        require("final_norm_bias", ModelSectionKind::F32), d.dModel);

    w.layers.resize(static_cast<size_t>(d.nLayers));
    m->tiles_.resize(static_cast<size_t>(d.nLayers));
    const bool hasUp = meta.profile.family == ModelFamily::Llama;
    for (int64_t l = 0; l < d.nLayers; ++l) {
        LayerWeights &lw = w.layers[static_cast<size_t>(l)];
        LayerTileViews &tv = m->tiles_[static_cast<size_t>(l)];
        const std::string prefix = "layer" + std::to_string(l) + "/";
        const auto readVec = [&](const char *nm) {
            return readF32s(
                require(prefix + nm, ModelSectionKind::F32), d.dModel);
        };
        lw.normGain1 = readVec("norm_gain1");
        lw.normBias1 = readVec("norm_bias1");
        lw.normGain2 = readVec("norm_gain2");
        lw.normBias2 = readVec("norm_bias2");
        const auto tile = [&](const char *nm, int64_t rows,
                              int64_t cols) -> MantTilesView {
            const size_t i =
                require(prefix + nm, ModelSectionKind::TilePack);
            const ModelSection &s = sections[i];
            MantTilesView view = mapTileSection(
                base + s.offset, static_cast<size_t>(s.size),
                s.offset);
            if (view.rows() != rows || view.cols() != cols ||
                view.groupSize() !=
                    effectiveGroupSize(cols, meta.setup.weightGroup))
                throw PackedFormatError(
                    "model file: tile section '" + s.name +
                        "' disagrees with the model profile",
                    tocOffset(i));
            return view;
        };
        tv.wq = tile("wq", d.dModel, d.dModel);
        tv.wk = tile("wk", d.dModel, d.dModel);
        tv.wv = tile("wv", d.dModel, d.dModel);
        tv.wo = tile("wo", d.dModel, d.dModel);
        tv.wGate = tile("wgate", d.dFfn, d.dModel);
        if (hasUp)
            tv.wUp = tile("wup", d.dFfn, d.dModel);
        tv.wDown = tile("wdown", d.dModel, d.dFfn);
    }

    m->model_ = std::make_unique<Transformer>(
        w, m->setup_,
        std::span<const LayerTileViews>(m->tiles_.data(),
                                        m->tiles_.size()));
    m->model_->setLogitScale(meta.logitScale);
    return m;
}

} // namespace mant
