/**
 * @file
 * Zero-copy model files: export a quantized transformer once (the
 * offline encode) into the v2 model container, and boot inference
 * straight off an mmap of that file.
 *
 * The paper's DRAM-traffic argument only pays off end-to-end when the
 * stored layout is the layout the compute consumes. exportModel()
 * serializes every linear's tile-panel section (core/packed.h) plus
 * the float-domain leftovers (embedding, norms) and model metadata
 * behind a named TOC; LoadedModel::load() maps the file read-only and
 * wraps each tile section in a MantTilesView pointing INTO the
 * mapping — no repack, no per-layer code-byte copy, and N processes
 * serving the same file share one set of physical pages through the
 * page cache. Load-time validation (mapTileSection + the metadata
 * checks here) replaces pack-time validation; every malformed-file
 * path throws PackedFormatError with the file offset that failed.
 *
 * Determinism: loading is pure byte interpretation — no clocks, no
 * RNG, no thread-count dependence — and a loaded model's forward
 * passes are bit-identical to quantize-then-pack at every MANT_SIMD ×
 * MANT_THREADS because the tiles are the same bytes
 * (tests/test_model_file.cc asserts this).
 */

#ifndef MANT_MODEL_MODEL_FILE_H_
#define MANT_MODEL_MODEL_FILE_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "model/transformer.h"
#include "model/weights.h"

namespace mant {

class ModelCalibration;

/**
 * Read-only file bytes with RAII ownership: an mmap on POSIX (the
 * zero-copy path), or a 64-byte-aligned heap buffer read conventionally
 * where mmap is unavailable. Either way data() is 64-byte aligned, so
 * container sections keep their alignment guarantees. Move-only.
 */
class MappedFile
{
  public:
    MappedFile() = default;
    ~MappedFile();
    MappedFile(MappedFile &&other) noexcept;
    MappedFile &operator=(MappedFile &&other) noexcept;
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /** Map `path` read-only; falls back to read() off-POSIX. Throws
     *  std::runtime_error when the file cannot be opened or mapped. */
    static MappedFile open(const std::string &path);

    /** Read `path` into an aligned heap buffer (the portable
     *  fallback; also useful to force the no-mmap path in tests). */
    static MappedFile read(const std::string &path);

    const uint8_t *data() const { return data_; }
    size_t size() const { return size_; }

    /** True when data() is an mmap (pages shared via the page cache),
     *  false for the heap-buffer fallback. */
    bool mapped() const { return mapped_; }

  private:
    void release() noexcept;

    const uint8_t *data_ = nullptr;
    size_t size_ = 0;
    bool mapped_ = false;
};

/** Knobs for exportModel beyond the quantization setup itself. */
struct ModelExportOptions
{
    /** Logit temperature baked into the file (the evaluator's
     *  calibrated value); applied to the loaded Transformer. */
    float logitScale = 1.0f;

    /** Optional activation calibration: when present the MANT
     *  coefficient search uses the Eq. 6 output-MSE objective, same
     *  as constructing a Transformer with it. */
    const ModelCalibration *calibration = nullptr;
};

/**
 * Quantize `weights` per `setup` (the same per-matrix encode a
 * Transformer construction performs — same codes, same tiles) and
 * serialize the model into the container format: a "meta" section
 * (profile, dims, quant setup), f32 sections for the embedding /
 * positional embedding / norm parameters, and one tile-panel section
 * per linear. Requires a fused 4-bit MANT setup (the file stores only
 * tile codes for the linears; there is no float fallback to
 * serialize) — std::invalid_argument otherwise. Stream errors throw
 * std::runtime_error.
 */
void exportModel(std::ostream &os, const ModelWeights &weights,
                 const QuantSetup &setup,
                 const ModelExportOptions &opts = {});

/** exportModel to a filesystem path (truncates). */
void exportModelToFile(const std::string &path,
                       const ModelWeights &weights,
                       const QuantSetup &setup,
                       const ModelExportOptions &opts = {});

/**
 * A model booted from a v2 model file: the mapping, the rehydrated
 * ModelWeights (embedding + norms copied out, linear tensors left
 * empty), the per-layer tile views pointing into the mapping, and a
 * view-constructed Transformer over them. Destruction order keeps the
 * mapping alive until the Transformer is gone. Non-movable (the
 * Transformer pins its weights reference); hold behind unique_ptr.
 */
class LoadedModel
{
  public:
    /**
     * Load and validate a model file. `forceRead` skips mmap and uses
     * the portable read path (bytes then live on the heap — same
     * validation, same results, no page sharing). Throws
     * PackedFormatError (with the failing file offset) for any
     * malformed container/section/metadata, std::runtime_error for
     * I/O failures.
     */
    static std::unique_ptr<LoadedModel> load(const std::string &path,
                                             bool forceRead = false);

    LoadedModel(const LoadedModel &) = delete;
    LoadedModel &operator=(const LoadedModel &) = delete;

    const ModelWeights &weights() const { return *weights_; }
    const QuantSetup &setup() const { return setup_; }
    Transformer &transformer() { return *model_; }
    const Transformer &transformer() const { return *model_; }

    /** The underlying file bytes (for zero-copy assertions: every
     *  layer's tile pointers land inside [data, data + size)). */
    const MappedFile &file() const { return file_; }

    /** Per-layer tile views, pointing into file(). */
    std::span<const LayerTileViews> tileViews() const
    {
        return tiles_;
    }

  private:
    LoadedModel() = default;

    // Declaration order is lifetime order: views point into file_,
    // the Transformer points at weights_ and the views' storage.
    MappedFile file_;
    std::unique_ptr<ModelWeights> weights_;
    std::vector<LayerTileViews> tiles_;
    QuantSetup setup_;
    std::unique_ptr<Transformer> model_;
};

} // namespace mant

#endif // MANT_MODEL_MODEL_FILE_H_
