#include "model/model_profiles.h"

#include <stdexcept>
#include <vector>

namespace mant {

namespace {

/** Reduced dims shared by all accuracy runs (see DESIGN.md §2).
 *  headDim = 64 matches the quantization group size, so one K vector
 *  group is exactly one head row, as in the full-size models. */
ArchDims
simDims()
{
    ArchDims d;
    d.nLayers = 4;
    d.dModel = 256;
    d.nHeads = 4;
    d.dFfn = 640;
    d.vocab = 1024;
    return d;
}

DistProfile
llamaWeights()
{
    DistProfile p;
    p.sigmaMu = -3.9;
    p.sigmaSpread = 0.30;
    p.groupDrift = 0.25;
    p.outlierRate = 0.0004;
    p.outlierScale = 7.0;
    p.laplaceMix = 0.25;
    p.uniformMix = 0.05;
    return p;
}

DistProfile
optWeights()
{
    DistProfile p;
    p.sigmaMu = -3.7;
    p.sigmaSpread = 0.40;
    p.groupDrift = 0.30;
    p.outlierRate = 0.0012;
    p.outlierScale = 15.0;
    p.laplaceMix = 0.30;
    p.uniformMix = 0.05;
    return p;
}

/** Layer-0 weights are spikier in real LLMs (Fig. 15: the selection
 *  shifts strongly toward the PoT end). Heavy Laplace plus a slice of
 *  multi-octave log-uniform groups reproduces that shift. In-group
 *  weight outliers large enough to force a=0 on *most* groups (as the
 *  paper's layer-0 bars show) destabilize a 4-layer random residual
 *  stream, so the reproduction targets the low-coefficient shift
 *  rather than the full a=0 dominance — see EXPERIMENTS.md. */
DistProfile
spikyFirstLayer(DistProfile base)
{
    base.laplaceMix = 0.70;
    base.uniformMix = 0.0;
    base.logUniformMix = 0.15;
    base.groupDrift = 0.15;
    base.outlierRate *= 2.0;
    return base;
}

ActProfile
llamaActs()
{
    // Rare but hot systematic channels: tensor-wise A4 collapses on
    // the layers that contain one, tensor-wise A8 survives with mild
    // loss, group-wise quantization isolates the damage.
    ActProfile p;
    p.sigma = 1.0;
    p.channelSpread = 0.5;
    p.outlierChannelRate = 0.002; // -> 1 hot channel at sim dims
    p.outlierChannelScale = 15.0;
    p.tokenOutlierRate = 0.0003;
    p.tokenOutlierScale = 6.0;
    return p;
}

ActProfile
optActs()
{
    // OPT's activation pathology is stronger (more and hotter
    // channels), which is what makes every W4A4 baseline catastrophic
    // on OPT in Tbl. II.
    ActProfile p;
    p.sigma = 1.0;
    p.channelSpread = 0.6;
    p.outlierChannelRate = 0.008; // -> 2 hot channels at sim dims
    p.outlierChannelScale = 30.0;
    p.tokenOutlierRate = 0.0005;
    p.tokenOutlierScale = 10.0;
    return p;
}

ModelProfile
make(std::string name, ModelFamily family, ArchDims arch, double fp16Ppl,
     DistProfile weights, ActProfile acts, uint64_t seed)
{
    ModelProfile p;
    p.name = std::move(name);
    p.family = family;
    p.archDims = arch;
    p.simDims = simDims();
    p.weightStats = weights;
    p.firstLayerStats = spikyFirstLayer(weights);
    p.actStats = acts;
    p.fp16Ppl = fp16Ppl;
    p.seed = seed;
    return p;
}

ArchDims
dims(int64_t layers, int64_t d, int64_t heads, int64_t ffn, int64_t vocab)
{
    ArchDims a;
    a.nLayers = layers;
    a.dModel = d;
    a.nHeads = heads;
    a.dFfn = ffn;
    a.vocab = vocab;
    return a;
}

std::vector<ModelProfile>
buildProfiles()
{
    std::vector<ModelProfile> v;
    // FP16 perplexities are the Tbl. II baselines.
    v.push_back(make("llama-1-7b", ModelFamily::Llama,
                     dims(32, 4096, 32, 11008, 32000), 5.68,
                     llamaWeights(), llamaActs(), 101));
    v.push_back(make("llama-1-13b", ModelFamily::Llama,
                     dims(40, 5120, 40, 13824, 32000), 5.09,
                     llamaWeights(), llamaActs(), 102));
    v.push_back(make("llama-1-30b", ModelFamily::Llama,
                     dims(60, 6656, 52, 17920, 32000), 4.10,
                     llamaWeights(), llamaActs(), 103));
    v.push_back(make("llama-1-65b", ModelFamily::Llama,
                     dims(80, 8192, 64, 22016, 32000), 3.53,
                     llamaWeights(), llamaActs(), 104));
    v.push_back(make("llama-2-7b", ModelFamily::Llama,
                     dims(32, 4096, 32, 11008, 32000), 5.47,
                     llamaWeights(), llamaActs(), 105));
    v.push_back(make("llama-2-13b", ModelFamily::Llama,
                     dims(40, 5120, 40, 13824, 32000), 4.88,
                     llamaWeights(), llamaActs(), 106));
    v.push_back(make("opt-6.7b", ModelFamily::Opt,
                     dims(32, 4096, 32, 16384, 50272), 10.86,
                     optWeights(), optActs(), 107));
    v.push_back(make("opt-13b", ModelFamily::Opt,
                     dims(40, 5120, 40, 20480, 50272), 10.13,
                     optWeights(), optActs(), 108));
    // Fig. 15 extras (not in Tbl. II).
    v.push_back(make("llama-3-8b", ModelFamily::Llama,
                     dims(32, 4096, 32, 14336, 128256), 6.10,
                     llamaWeights(), llamaActs(), 109));
    v.push_back(make("bloom-7.1b", ModelFamily::Bloom,
                     dims(30, 4096, 32, 16384, 250880), 8.00,
                     optWeights(), llamaActs(), 110));
    return v;
}

const std::vector<ModelProfile> &
profiles()
{
    static const std::vector<ModelProfile> p = buildProfiles();
    return p;
}

} // namespace

const ModelProfile &
modelProfile(std::string_view name)
{
    for (const ModelProfile &p : profiles()) {
        if (p.name == name)
            return p;
    }
    throw std::invalid_argument("modelProfile: unknown model " +
                                std::string(name));
}

std::span<const ModelProfile>
allModelProfiles()
{
    return {profiles().data(), profiles().size()};
}

} // namespace mant
