/**
 * @file
 * The catalogue of synthetic model profiles used across the benches:
 * every model the paper evaluates (Tbl. II, Fig. 12/13/15) plus the
 * extra Fig. 15 models (LLaMA-3-8B, BLOOM-7.1B).
 */

#ifndef MANT_MODEL_MODEL_PROFILES_H_
#define MANT_MODEL_MODEL_PROFILES_H_

#include <span>

#include "model/config.h"

namespace mant {

/** Look up a profile by name; throws on unknown names. Known names:
 *  llama-1-7b, llama-1-13b, llama-1-30b, llama-1-65b, llama-2-7b,
 *  llama-2-13b, llama-3-8b, opt-6.7b, opt-13b, bloom-7.1b. */
const ModelProfile &modelProfile(std::string_view name);

/** All profiles, in Tbl. II column order first. */
std::span<const ModelProfile> allModelProfiles();

} // namespace mant

#endif // MANT_MODEL_MODEL_PROFILES_H_
