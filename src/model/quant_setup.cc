#include "model/quant_setup.h"

namespace mant {

namespace {

const char *
weightName(WeightMethod wm)
{
    switch (wm) {
      case WeightMethod::Fp16: return "FP16";
      case WeightMethod::Int: return "INT";
      case WeightMethod::Ant: return "ANT";
      case WeightMethod::Olive: return "OliVe";
      case WeightMethod::Tender: return "Tender";
      case WeightMethod::Mant: return "MANT";
      case WeightMethod::KMeans: return "KMeans";
      case WeightMethod::Nf4: return "NF4";
      case WeightMethod::Mxfp4: return "MXFP4";
    }
    return "?";
}

} // namespace

QuantSetup
fp16Setup()
{
    QuantSetup s;
    s.label = "FP16";
    return s;
}

QuantSetup
w4a4Setup(WeightMethod wm, ActMethod am, Granularity gran, int64_t group)
{
    QuantSetup s;
    s.weight = wm;
    s.weightBits = 4;
    s.weightGran = gran;
    s.weightGroup = group;
    s.act = am;
    s.actBits = 4;
    s.actGran = gran;
    s.actGroup = group;
    s.label = std::string(weightName(wm)) + " W4A4";
    return s;
}

QuantSetup
w8a8Setup(WeightMethod wm, ActMethod am, Granularity gran, int64_t group)
{
    QuantSetup s;
    s.weight = wm;
    s.weightBits = 8;
    s.weightGran = gran;
    s.weightGroup = group;
    s.act = am;
    s.actBits = 8;
    s.actGran = gran;
    s.actGroup = group;
    s.label = std::string(weightName(wm)) + " W8A8";
    return s;
}

QuantSetup
mantW4A8Setup(int64_t group)
{
    QuantSetup s;
    s.weight = WeightMethod::Mant;
    s.weightBits = 4;
    s.weightGran = Granularity::PerGroup;
    s.weightGroup = group;
    s.act = ActMethod::Int;
    s.actBits = 8;
    s.actGran = Granularity::PerGroup;
    s.actGroup = group;
    s.label = "MANT W4A8";
    return s;
}

QuantSetup
mantFusedSetup(int64_t group)
{
    QuantSetup s = mantW4A8Setup(group);
    s.fusedInference = true;
    s.label = "MANT W4A8 fused";
    return s;
}

QuantSetup
mantFullSetup(int64_t group)
{
    QuantSetup s = mantW4A8Setup(group);
    s.kv = KvMethod::Mant4;
    s.kvGroup = group;
    s.quantizeAttention = true;
    s.label = "MANT W4A8 KV4";
    return s;
}

QuantSetup
mantFusedAttentionSetup(int64_t group)
{
    QuantSetup s = mantFullSetup(group);
    s.fusedInference = true;
    s.fusedAttention = true;
    s.label = "MANT W4A8 KV4 fused-attn";
    return s;
}

} // namespace mant
