/**
 * @file
 * One struct describing a complete quantization configuration of a
 * model — the rows of Tbl. II / Tbl. V are instances of QuantSetup.
 */

#ifndef MANT_MODEL_QUANT_SETUP_H_
#define MANT_MODEL_QUANT_SETUP_H_

#include <cstdint>
#include <string>

#include "quant/granularity.h"

namespace mant {

/** Weight quantization method. */
enum class WeightMethod
{
    Fp16,   ///< no quantization (FP16 storage rounding only)
    Int,    ///< symmetric INT
    Ant,    ///< ANT adaptive {int4, flint4, pot4} (8-bit falls back to INT)
    Olive,  ///< outlier-victim pairs
    Tender, ///< channel-chunk power-of-two decomposition
    Mant,   ///< this paper: per-group coefficient search
    KMeans, ///< per-group clustering ("Ideal")
    Nf4,    ///< QLoRA NormalFloat-4
    Mxfp4,  ///< MXFP4 with E8M0 shared scale
};

/** Activation quantization method (applied to linear-layer inputs). */
enum class ActMethod
{
    None,   ///< FP16 activations
    Int,    ///< symmetric INT (MANT's choice: group-wise INT8)
    Ant,    ///< ANT adaptive (tensor-wise, as in the paper's baselines)
    Olive,  ///< outlier-victim pairs
    Tender, ///< channel-chunk decomposition
};

/** KV-cache quantization method. */
enum class KvMethod
{
    Fp16,  ///< unquantized cache (the baselines' configuration)
    Int4,  ///< group-wise INT4 through the real-time machinery
    Mant4, ///< 4-bit MANT: spatial K + two-phase temporal V
};

/** Full quantization configuration for one experiment row. */
struct QuantSetup
{
    WeightMethod weight = WeightMethod::Fp16;
    int weightBits = 4;
    Granularity weightGran = Granularity::PerGroup;
    int64_t weightGroup = 64;

    ActMethod act = ActMethod::None;
    int actBits = 8;
    Granularity actGran = Granularity::PerGroup;
    int64_t actGroup = 64;

    KvMethod kv = KvMethod::Fp16;
    int64_t kvGroup = 64;

    /** Quantize Q and softmax outputs to INT8 (the attention-layer
     *  activation quantization of the final Tbl. II row). */
    bool quantizeAttention = false;

    /**
     * Route linear layers through the prepacked-tile fused integer
     * GEMM (the Eq. 5 MAC+SAC datapath over MantPackedTiles) instead
     * of float linearNT on dequantized weights. Only takes effect for
     * 4-bit MANT weights; the activation quantization then happens
     * inside the fused kernel (group-wise INT8 at the weight group
     * size), modelling the accelerator datapath end to end.
     */
    bool fusedInference = false;

    /**
     * Run both attention GEMMs directly on the stored KV codes (the
     * fused integer attention of core/fused_attention.h): Q is INT8-
     * quantized per K group, softmax outputs per V process window,
     * and QK^T / P·V accumulate in integer MAC+SAC lanes. Requires a
     * quantized KV method (the Transformer constructor rejects Fp16).
     * Supersedes quantizeAttention on the attention GEMMs themselves
     * — the quantization happens inside the fused kernels.
     */
    bool fusedAttention = false;

    /** Human-readable label, e.g. "MANT W4A8 KV4". */
    std::string label = "fp16";
};

/** Convenience constructors for the standard paper rows. */
QuantSetup fp16Setup();
QuantSetup w4a4Setup(WeightMethod wm, ActMethod am, Granularity gran,
                     int64_t group);
QuantSetup w8a8Setup(WeightMethod wm, ActMethod am, Granularity gran,
                     int64_t group);
/** MANT W4A8 (linear only). */
QuantSetup mantW4A8Setup(int64_t group = 64);
/** MANT W4A8 running the fused integer GEMM over prepacked tiles. */
QuantSetup mantFusedSetup(int64_t group = 64);
/** MANT W4A8 + INT8 attention activations + 4-bit MANT KV cache. */
QuantSetup mantFullSetup(int64_t group = 64);
/** mantFullSetup + fused linears + fused integer attention on the
 *  stored KV codes (the full accelerator datapath). */
QuantSetup mantFusedAttentionSetup(int64_t group = 64);

} // namespace mant

#endif // MANT_MODEL_QUANT_SETUP_H_
