#include "model/quantized_linear.h"

#include <stdexcept>

#include "core/parallel.h"
#include "core/simd.h"
#include "quant/fixed_formats.h"
#include "quant/group_quantizer.h"
#include "quant/olive.h"
#include "quant/tender.h"

namespace mant {

namespace {

QuantConfig
weightConfig(const QuantSetup &setup)
{
    QuantConfig cfg;
    cfg.gran = setup.weightGran;
    cfg.groupSize = setup.weightGroup;
    return cfg;
}

QuantConfig
actConfig(const QuantSetup &setup)
{
    QuantConfig cfg;
    cfg.gran = setup.actGran;
    cfg.groupSize = setup.actGroup;
    return cfg;
}

} // namespace

Tensor
quantizeWeightMatrix(const Tensor &w, const QuantSetup &setup,
                     std::optional<MantQuantizedMatrix> *qOut,
                     std::span<const double> calibPower)
{
    const QuantConfig cfg = weightConfig(setup);
    switch (setup.weight) {
      case WeightMethod::Fp16: {
        Tensor out = w;
        out.roundToFp16();
        return out;
      }
      case WeightMethod::Int:
        return quantDequantFixed(
            w, setup.weightBits >= 8 ? int8Format() : int4Format(), cfg);
      case WeightMethod::Ant:
        if (setup.weightBits >= 8) {
            // "The 8-bit ANT does not adaptively select the data type
            // and only uses INT" (Sec. VII-A).
            return quantDequantFixed(w, int8Format(), cfg);
        }
        return quantDequantAdaptive(w, antTypeSet(), cfg);
      case WeightMethod::Olive: {
        OliveConfig ocfg;
        ocfg.bits = setup.weightBits;
        return quantDequantOlive(w, ocfg, cfg);
      }
      case WeightMethod::Tender: {
        TenderConfig tcfg;
        tcfg.bits = setup.weightBits;
        return quantDequantTender(w, tcfg, cfg.fp16Scale);
      }
      case WeightMethod::Mant: {
        if (setup.weightBits >= 8)
            return quantDequantFixed(w, int8Format(), cfg);
        const bool use_output_mse =
            static_cast<int64_t>(calibPower.size()) == w.shape().dim(1);
        MantQuantizedMatrix q = MantQuantizedMatrix::quantize(
            w, setup.weightGroup,
            use_output_mse ? MantQuantizedMatrix::Search::OutputMse
                           : MantQuantizedMatrix::Search::WeightMse,
            use_output_mse ? calibPower : std::span<const double>{});
        Tensor out = q.dequantize();
        if (qOut)
            *qOut = std::move(q);
        return out;
      }
      case WeightMethod::KMeans:
        return quantDequantKMeans(w, 1 << setup.weightBits, cfg);
      case WeightMethod::Nf4:
        return quantDequantFixed(w, nf4Format(), cfg);
      case WeightMethod::Mxfp4:
        return quantDequantFixed(w, mxfp4Format(), cfg);
    }
    throw std::logic_error("quantizeWeightMatrix: unhandled method");
}

Tensor
quantizeActivations(const Tensor &x, const QuantSetup &setup)
{
    const QuantConfig cfg = actConfig(setup);
    switch (setup.act) {
      case ActMethod::None:
        return x;
      case ActMethod::Int:
        return quantDequantFixed(
            x, setup.actBits >= 8 ? int8Format() : int4Format(), cfg);
      case ActMethod::Ant:
        if (setup.actBits >= 8)
            return quantDequantFixed(x, int8Format(), cfg);
        return quantDequantAdaptive(x, antTypeSet(), cfg);
      case ActMethod::Olive: {
        OliveConfig ocfg;
        ocfg.bits = setup.actBits;
        return quantDequantOlive(x, ocfg, cfg);
      }
      case ActMethod::Tender: {
        // Tender decomposes activation channels = feature columns.
        TenderConfig tcfg;
        tcfg.bits = setup.actBits;
        Tensor xt = transpose(x);
        Tensor qt = quantDequantTender(xt, tcfg, cfg.fp16Scale);
        return transpose(qt);
      }
    }
    throw std::logic_error("quantizeActivations: unhandled method");
}

Tensor
linearNT(const Tensor &x, const Tensor &w)
{
    const int64_t t_dim = x.shape().dim(0);
    const int64_t k_dim = x.shape().dim(1);
    const int64_t n_dim = w.shape().dim(0);
    if (w.shape().dim(1) != k_dim)
        throw std::invalid_argument("linearNT: inner dims differ");

    // Flattened (t, n) partition: every output cell is an independent
    // reduction with a fixed accumulation order, so the result is
    // bit-identical at any thread count and single-token decode
    // (t_dim == 1) still parallelizes across output features.
    Tensor out(Shape{t_dim, n_dim});
    const float *xp = x.data();
    const float *wp = w.data();
    float *op = out.data();
    const SimdOps &ops = simdOps();
    parallelFor(
        0, t_dim * n_dim, 16, [&](int64_t cb, int64_t ce, int64_t) {
            for (int64_t cell = cb; cell < ce; ++cell) {
                const int64_t t = cell / n_dim;
                const int64_t n = cell % n_dim;
                op[t * n_dim + n] = static_cast<float>(ops.dotF32(
                    xp + t * k_dim, wp + n * k_dim, k_dim));
            }
        });
    return out;
}

QuantizedLinear::QuantizedLinear(const Tensor &w, const QuantSetup &setup,
                                 std::span<const double> calibPower,
                                 bool retainFused)
    : actGroup_(setup.actGroup)
{
    std::optional<MantQuantizedMatrix> q;
    effective_ = quantizeWeightMatrix(w, setup, retainFused ? &q : nullptr,
                                      calibPower);
    quantized_ = std::move(q);
    if (quantized_) {
        tiles_ = MantPackedTiles::pack(*quantized_);
        view_ = tiles_->view();
        scratch_ = std::make_unique<ActScratchPool>();
    }
}

QuantizedLinear
QuantizedLinear::fromView(const MantTilesView &view)
{
    if (!view.valid())
        throw std::invalid_argument(
            "QuantizedLinear::fromView: invalid tile view");
    QuantizedLinear lin;
    lin.view_ = view;
    lin.actGroup_ = view.groupSize();
    lin.scratch_ = std::make_unique<ActScratchPool>();
    return lin;
}

Tensor
QuantizedLinear::forward(const Tensor &x) const
{
    if (view_.valid() && effective_.numel() == 0)
        throw std::logic_error(
            "QuantizedLinear::forward: view-backed layer is "
            "fused-only (no effective float weights)");
    return linearNT(x, effective_);
}

Tensor
QuantizedLinear::forwardFused(const Tensor &x) const
{
    Tensor out;
    forwardFusedInto(x, out);
    return out;
}

void
QuantizedLinear::forwardFusedInto(const Tensor &x, Tensor &out) const
{
    if (!view_.valid())
        throw std::logic_error(
            "QuantizedLinear::forwardFused: no MANT tiles present");
    // Activation groups must share the weight group boundaries so each
    // group contributes one (psum1, psum2) pair.
    auto qx = scratch_->acquire();
    qx->assign(x, view_.groupSize());
    fusedGemmTiledInto(*qx, view_, out);
    scratch_->release(std::move(qx));
}

void
QuantizedLinear::forwardFusedInto(const Int8QuantizedActivations &qx,
                                  Tensor &out) const
{
    if (!view_.valid())
        throw std::logic_error(
            "QuantizedLinear::forwardFused: no MANT tiles present");
    fusedGemmTiledInto(qx, view_, out);
}

Tensor
QuantizedLinear::forwardFusedReference(const Tensor &x) const
{
    if (!quantized_)
        throw std::logic_error(
            "QuantizedLinear::forwardFused: no MANT codes present");
    const Int8QuantizedActivations qx =
        Int8QuantizedActivations::quantize(x, quantized_->groupSize());
    return fusedGemm(qx, *quantized_);
}

} // namespace mant
