/**
 * @file
 * Method dispatch: apply any of the paper's quantization methods to a
 * weight matrix or an activation tensor, returning the dequantized
 * ("effective") tensor the float-domain model computes with. The MANT
 * path also exposes the underlying MantQuantizedMatrix so integration
 * tests and examples can run the bit-exact fused integer GEMM.
 */

#ifndef MANT_MODEL_QUANTIZED_LINEAR_H_
#define MANT_MODEL_QUANTIZED_LINEAR_H_

#include <optional>

#include "core/fused_gemm.h"
#include "model/quant_setup.h"
#include "tensor/tensor.h"

namespace mant {

/**
 * Quantize-dequantize one weight matrix per the setup's weight method.
 *
 * @param w          Weights (outFeatures, inFeatures).
 * @param setup      Method, bits and granularity.
 * @param qOut       Optional: receives the MANT code container when
 *                   the method is Mant at 4 bits (for the fused path).
 * @param calibPower Optional per-input-feature E[x²]: when non-empty
 *                   and the method is Mant, the coefficient search
 *                   uses the Eq. 6 output-MSE objective.
 */
Tensor quantizeWeightMatrix(const Tensor &w, const QuantSetup &setup,
                            std::optional<MantQuantizedMatrix> *qOut
                            = nullptr,
                            std::span<const double> calibPower = {});

/**
 * Quantize-dequantize an activation tensor per the setup's activation
 * method. Shape (tokens, features); Tender decomposes along features.
 */
Tensor quantizeActivations(const Tensor &x, const QuantSetup &setup);

/**
 * Linear layer y = x * W^T with x (T, K) and w (N, K); the reference
 * float path used by the model after error injection.
 */
Tensor linearNT(const Tensor &x, const Tensor &w);

/**
 * A linear layer holding both the effective float weights and (for
 * MANT) the quantized codes, able to run either the float path or the
 * fused integer path. Used by examples and integration tests.
 */
class QuantizedLinear
{
  public:
    QuantizedLinear(const Tensor &w, const QuantSetup &setup);

    /** Float path: y = x * Weff^T. */
    Tensor forward(const Tensor &x) const;

    /**
     * Fused integer path (MANT weights only): group-quantize x to
     * INT8 and run the MAC+SAC datapath of Eq. 5.
     */
    Tensor forwardFused(const Tensor &x) const;

    bool hasFusedPath() const { return quantized_.has_value(); }
    const Tensor &effectiveWeights() const { return effective_; }
    const MantQuantizedMatrix &codes() const { return *quantized_; }

  private:
    Tensor effective_;
    std::optional<MantQuantizedMatrix> quantized_;
    int64_t actGroup_;
};

} // namespace mant

#endif // MANT_MODEL_QUANTIZED_LINEAR_H_
