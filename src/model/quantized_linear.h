/**
 * @file
 * Method dispatch: apply any of the paper's quantization methods to a
 * weight matrix or an activation tensor, returning the dequantized
 * ("effective") tensor the float-domain model computes with. The MANT
 * path also exposes the underlying MantQuantizedMatrix so integration
 * tests and examples can run the bit-exact fused integer GEMM.
 */

#ifndef MANT_MODEL_QUANTIZED_LINEAR_H_
#define MANT_MODEL_QUANTIZED_LINEAR_H_

#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/fused_gemm.h"
#include "core/packed_tiles.h"
#include "model/quant_setup.h"
#include "tensor/tensor.h"

namespace mant {

/**
 * Quantize-dequantize one weight matrix per the setup's weight method.
 *
 * @param w          Weights (outFeatures, inFeatures).
 * @param setup      Method, bits and granularity.
 * @param qOut       Optional: receives the MANT code container when
 *                   the method is Mant at 4 bits (for the fused path).
 * @param calibPower Optional per-input-feature E[x²]: when non-empty
 *                   and the method is Mant, the coefficient search
 *                   uses the Eq. 6 output-MSE objective.
 */
Tensor quantizeWeightMatrix(const Tensor &w, const QuantSetup &setup,
                            std::optional<MantQuantizedMatrix> *qOut
                            = nullptr,
                            std::span<const double> calibPower = {});

/**
 * Quantize-dequantize an activation tensor per the setup's activation
 * method. Shape (tokens, features); Tender decomposes along features.
 */
Tensor quantizeActivations(const Tensor &x, const QuantSetup &setup);

/**
 * Linear layer y = x * W^T with x (T, K) and w (N, K); the reference
 * float path used by the model after error injection.
 */
Tensor linearNT(const Tensor &x, const Tensor &w);

/**
 * Thread-safe pool of activation-quantization scratch buffers: a
 * forward call checks one out, requantizes in place (reusing vector
 * capacity), and returns it — so a steady-state decode loop performs
 * no per-call allocation, and concurrent forward calls each get their
 * own buffer instead of racing on a shared member.
 */
class ActScratchPool
{
  public:
    std::unique_ptr<Int8QuantizedActivations>
    acquire()
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (free_.empty())
            return std::make_unique<Int8QuantizedActivations>();
        auto buf = std::move(free_.back());
        free_.pop_back();
        return buf;
    }

    void
    release(std::unique_ptr<Int8QuantizedActivations> buf)
    {
        std::lock_guard<std::mutex> lock(mu_);
        free_.push_back(std::move(buf));
    }

  private:
    std::mutex mu_;
    std::vector<std::unique_ptr<Int8QuantizedActivations>> free_;
};

/**
 * A linear layer holding the effective float weights and (for MANT)
 * the quantized codes plus their prepacked tile form, able to run
 * either the float path or the fused integer path. The tiles are
 * packed once at construction (the offline encode), so every
 * forwardFused call streams the cache-blocked layout directly.
 *
 * Two build paths produce bit-identical fused results:
 *  - the quantizing constructor (quantize → pack, owning storage);
 *  - fromView(), wrapping an externally owned tile section (an mmap'd
 *    model file) without copying a single code byte. A view-backed
 *    layer is fused-only: it has no effective float weights and no
 *    MANT code container, just the tile bytes the GEMM streams.
 */
class QuantizedLinear
{
  public:
    QuantizedLinear() = default;

    /**
     * Quantize a weight matrix per the setup. `calibPower` (per-input-
     * feature E[x²]) switches the MANT coefficient search to the Eq. 6
     * output-MSE objective when its length matches the columns.
     * `retainFused = false` drops the MANT codes and skips the tile
     * prepack (no fused path, ~40% less weight memory) — for callers
     * that only ever run the float path, e.g. a Transformer without
     * `fusedInference`.
     */
    QuantizedLinear(const Tensor &w, const QuantSetup &setup,
                    std::span<const double> calibPower = {},
                    bool retainFused = true);

    /**
     * Wrap an externally owned tile section (zero-copy model load).
     * The caller keeps the view's storage alive for the layer's
     * lifetime — model/model_file.h ties it to the file mapping. Only
     * the fused path is available; forward()/forwardFusedReference()
     * throw std::logic_error. Throws std::invalid_argument when the
     * view is invalid.
     */
    static QuantizedLinear fromView(const MantTilesView &view);

    /** Float path: y = x * Weff^T. */
    Tensor forward(const Tensor &x) const;

    /**
     * Fused integer path (MANT weights only): group-quantize x to
     * INT8 and run the MAC+SAC datapath of Eq. 5 over the prepacked
     * tiles. Bit-identical to forwardFusedReference().
     */
    Tensor forwardFused(const Tensor &x) const;

    /**
     * Scratch-friendly fused path: activation quantization reuses a
     * pooled buffer and `out`'s storage is reused when the shape
     * matches — zero steady-state allocation in a decode loop.
     */
    void forwardFusedInto(const Tensor &x, Tensor &out) const;

    /** Fused path over already-quantized activations (shared across
     *  several linears consuming the same input, e.g. Q/K/V). */
    void forwardFusedInto(const Int8QuantizedActivations &qx,
                          Tensor &out) const;

    /** The PR 3 unblocked fused path, kept as the bit-exactness
     *  oracle for the tiled kernels (tests assert equality). */
    Tensor forwardFusedReference(const Tensor &x) const;

    bool hasFusedPath() const { return view_.valid(); }
    const Tensor &effectiveWeights() const { return effective_; }
    const MantQuantizedMatrix &codes() const { return *quantized_; }
    const MantPackedTiles &tiles() const { return *tiles_; }

    /** The tile storage the fused path streams: owning tiles' view,
     *  or the external (mmap'd) section for fromView() layers. Lets
     *  tests assert the zero-copy property (pointers inside the
     *  mapping) without widening the class interface. */
    const MantTilesView &tilesView() const { return view_; }

  private:
    Tensor effective_;
    std::optional<MantQuantizedMatrix> quantized_;
    std::optional<MantPackedTiles> tiles_;
    /** Fused-path dispatch target; points at tiles_'s vectors (heap
     *  buffers are move-stable) or at externally owned memory. */
    MantTilesView view_;
    int64_t actGroup_ = 64;
    /** unique_ptr keeps the class movable despite the pool's mutex. */
    std::unique_ptr<ActScratchPool> scratch_;
};

} // namespace mant

#endif // MANT_MODEL_QUANTIZED_LINEAR_H_
