#include "model/transformer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/parallel.h"
#include "model/calibration.h"
#include "model/layers.h"
#include "model/quantized_linear.h"
#include "tensor/fp16.h"

#include <atomic>

namespace mant {

namespace {

/** Monotonic instance ids for the StreamContext ownership check. */
uint64_t
nextStreamEpoch()
{
    static std::atomic<uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/** Symmetric INT8 quantize-dequantize of a span in groups. */
void
int8RoundSpan(std::span<float> xs, int64_t groupSize)
{
    const int64_t n = static_cast<int64_t>(xs.size());
    const int64_t g = groupSize > 0 ? std::min(groupSize, n) : n;
    for (int64_t g0 = 0; g0 < n; g0 += g) {
        const int64_t len = std::min(g, n - g0);
        float absmax = 0.0f;
        for (int64_t i = 0; i < len; ++i)
            absmax = std::max(absmax,
                              std::fabs(xs[static_cast<size_t>(g0 + i)]));
        float scale = fp16Round(absmax / 127.0f);
        if (scale == 0.0f)
            continue;
        for (int64_t i = 0; i < len; ++i) {
            float &v = xs[static_cast<size_t>(g0 + i)];
            v = std::clamp(std::round(v / scale), -127.0f, 127.0f) * scale;
        }
    }
}

/** ALiBi slope for a head (BLOOM-style): 2^(-8*(h+1)/H). */
float
alibiSlope(int64_t head, int64_t nHeads)
{
    return std::pow(2.0f, -8.0f * static_cast<float>(head + 1) /
                              static_cast<float>(nHeads));
}

} // namespace

Transformer::Transformer(const ModelWeights &weights, QuantSetup setup,
                         const VarianceSelector *kvSelector,
                         const ModelCalibration *calibration)
    : base_(weights), setup_(std::move(setup)),
      streamEpoch_(nextStreamEpoch()), kvSelector_(kvSelector)
{
    if (setup_.fusedAttention && setup_.kv == KvMethod::Fp16)
        throw std::invalid_argument(
            "Transformer: fusedAttention requires a quantized KV "
            "method (there are no codes to fuse over)");
    if (setup_.kv == KvMethod::Mant4 && !kvSelector_) {
        ownedSelector_ = std::make_unique<VarianceSelector>(
            VarianceSelector::analytic());
        kvSelector_ = ownedSelector_.get();
    }

    // Quantize the weights once (the offline encode of Sec. IV-B).
    // With calibration present the MANT coefficient search uses the
    // Eq. 6 output-MSE objective per linear input slot.
    auto calib_power = [&](int64_t layer,
                           LinearSlot slot) -> std::span<const double> {
        if (!calibration)
            return {};
        return calibration->power(layer, slot);
    };
    // Every (layer, matrix) pair quantizes independently (a pure
    // function of its own weights), so the offline encode flattens
    // to one work item per matrix — finer than per-layer partitioning,
    // which would cap the speedup at the layer count for shallow
    // models. Each item writes only its own eff_ slot.
    struct EncodeItem
    {
        const Tensor *w;
        QuantizedLinear *out;
        LinearSlot slot;
        int64_t layer;
    };
    eff_.resize(base_.layers.size());
    std::vector<EncodeItem> items;
    items.reserve(base_.layers.size() * 7);
    for (size_t l = 0; l < base_.layers.size(); ++l) {
        const LayerWeights &lw = base_.layers[l];
        EffLayer &e = eff_[l];
        const int64_t li = static_cast<int64_t>(l);
        items.push_back({&lw.wq, &e.wq, LinearSlot::AttnIn, li});
        items.push_back({&lw.wk, &e.wk, LinearSlot::AttnIn, li});
        items.push_back({&lw.wv, &e.wv, LinearSlot::AttnIn, li});
        items.push_back({&lw.wo, &e.wo, LinearSlot::OProj, li});
        items.push_back({&lw.wGate, &e.wGate, LinearSlot::FfnIn, li});
        if (lw.wUp.numel() > 0)
            items.push_back({&lw.wUp, &e.wUp, LinearSlot::FfnIn, li});
        items.push_back({&lw.wDown, &e.wDown, LinearSlot::FfnDown, li});
    }
    parallelFor(
        0, static_cast<int64_t>(items.size()), 1,
        [&](int64_t ib, int64_t ie, int64_t) {
            for (int64_t i = ib; i < ie; ++i) {
                const EncodeItem &item =
                    items[static_cast<size_t>(i)];
                // Codes and tiles are only retained when the fused
                // path will actually run them; float-path setups
                // keep exactly the pre-PR 4 memory footprint.
                *item.out = QuantizedLinear(
                    *item.w, setup_,
                    calib_power(item.layer, item.slot),
                    setup_.fusedInference);
            }
        });
    fusedLinears_ = setup_.fusedInference &&
                    setup_.weight == WeightMethod::Mant &&
                    setup_.weightBits < 8;
    reset();
}

Transformer::Transformer(const ModelWeights &weights, QuantSetup setup,
                         std::span<const LayerTileViews> layerTiles,
                         const VarianceSelector *kvSelector)
    : base_(weights), setup_(std::move(setup)),
      streamEpoch_(nextStreamEpoch()), kvSelector_(kvSelector)
{
    if (!(setup_.fusedInference &&
          setup_.weight == WeightMethod::Mant &&
          setup_.weightBits < 8)) {
        throw std::invalid_argument(
            "Transformer: tile-view construction requires a fused "
            "4-bit MANT setup (the views carry only tile codes)");
    }
    if (setup_.fusedAttention && setup_.kv == KvMethod::Fp16)
        throw std::invalid_argument(
            "Transformer: fusedAttention requires a quantized KV "
            "method (there are no codes to fuse over)");
    if (setup_.kv == KvMethod::Mant4 && !kvSelector_) {
        ownedSelector_ = std::make_unique<VarianceSelector>(
            VarianceSelector::analytic());
        kvSelector_ = ownedSelector_.get();
    }

    const ArchDims &d = base_.profile.simDims;
    if (layerTiles.size() != static_cast<size_t>(d.nLayers) ||
        base_.layers.size() != static_cast<size_t>(d.nLayers)) {
        throw std::invalid_argument(
            "Transformer: layer tile views disagree with the profile");
    }
    // Every view must describe exactly the matrix its slot computes
    // with — shape from the profile, group size from the setup — or a
    // GEMM downstream would read tile geometry that isn't there.
    auto check = [&](const MantTilesView &v, int64_t rows,
                     int64_t cols, const char *name) {
        if (!v.valid() || v.rows() != rows || v.cols() != cols ||
            v.groupSize() !=
                effectiveGroupSize(cols, setup_.weightGroup)) {
            throw std::invalid_argument(
                std::string("Transformer: tile view '") + name +
                "' disagrees with the model profile or quant setup");
        }
    };
    const bool has_up = base_.profile.family == ModelFamily::Llama;
    eff_.resize(layerTiles.size());
    for (size_t l = 0; l < layerTiles.size(); ++l) {
        const LayerTileViews &lt = layerTiles[l];
        check(lt.wq, d.dModel, d.dModel, "wq");
        check(lt.wk, d.dModel, d.dModel, "wk");
        check(lt.wv, d.dModel, d.dModel, "wv");
        check(lt.wo, d.dModel, d.dModel, "wo");
        check(lt.wGate, d.dFfn, d.dModel, "wGate");
        if (has_up)
            check(lt.wUp, d.dFfn, d.dModel, "wUp");
        else if (lt.wUp.valid())
            throw std::invalid_argument(
                "Transformer: unexpected wUp tile view for a family "
                "without a SwiGLU up projection");
        check(lt.wDown, d.dModel, d.dFfn, "wDown");
        EffLayer &e = eff_[l];
        e.wq = QuantizedLinear::fromView(lt.wq);
        e.wk = QuantizedLinear::fromView(lt.wk);
        e.wv = QuantizedLinear::fromView(lt.wv);
        e.wo = QuantizedLinear::fromView(lt.wo);
        e.wGate = QuantizedLinear::fromView(lt.wGate);
        if (has_up)
            e.wUp = QuantizedLinear::fromView(lt.wUp);
        e.wDown = QuantizedLinear::fromView(lt.wDown);
    }
    fusedLinears_ = true;
    reset();
}

void
Transformer::reset()
{
    initStream(self_);
}

void
Transformer::initStream(StreamContext &s) const
{
    initStreamImpl(s, s.pageAlloc_);
}

void
Transformer::initStream(StreamContext &s, KvPageAllocator *pages) const
{
    initStreamImpl(s, pages);
}

void
Transformer::initStreamImpl(StreamContext &s,
                            KvPageAllocator *pages) const
{
    const ArchDims &d = base_.profile.simDims;
    const size_t n_layers = static_cast<size_t>(d.nLayers);
    if (ownsStream(s) && s.caches_.size() == n_layers &&
        s.pageAlloc_ == pages) {
        // Same model, same geometry, same pool: reset every head
        // cache in place. Cache storage capacity survives, so a
        // pooled stream slot re-enters service without reallocating
        // (see HeadKvCache::reset()'s contract).
        for (auto &layer : s.caches_)
            for (auto &c : layer)
                c.reset();
    } else {
        s.caches_.clear();
        s.caches_.resize(n_layers);
        for (auto &layer : s.caches_) {
            layer.reserve(static_cast<size_t>(d.nHeads));
            for (int64_t h = 0; h < d.nHeads; ++h) {
                layer.emplace_back(setup_.kv, d.headDim(),
                                   setup_.kvGroup, kvSelector_,
                                   setup_.fusedAttention, pages);
            }
        }
        s.owner_ = this;
        s.ownerEpoch_ = streamEpoch_;
        s.pageAlloc_ = pages;
    }
    s.pos_ = 0;
}

void
Transformer::retireStream(StreamContext &s) const
{
    if (!ownsStream(s))
        throw std::invalid_argument(
            "retireStream: stream not initialized for this model");
    for (auto &layer : s.caches_)
        for (auto &c : layer)
            c.retire();
}

int64_t
Transformer::pagesNeededForRows(const StreamContext &s,
                                int64_t rows) const
{
    if (!ownsStream(s))
        throw std::invalid_argument(
            "pagesNeededForRows: stream not initialized for this "
            "model");
    int64_t pages = 0;
    for (const auto &layer : s.caches_)
        for (const auto &c : layer)
            pages += c.poolPagesForRows(rows);
    return pages;
}

Tensor
Transformer::embed(std::span<const int32_t> tokens,
                   std::span<const int64_t> rowPos) const
{
    const ArchDims &d = base_.profile.simDims;
    Tensor x(Shape{static_cast<int64_t>(tokens.size()), d.dModel});
    const int64_t vocab = base_.embedding.shape().dim(0);
    for (size_t t = 0; t < tokens.size(); ++t) {
        // Euclidean wrap: C++ % yields a negative remainder for
        // negative ids, which would index before the table. Negative
        // and >= vocab ids wrap identically instead of being UB
        // (ServingEngine::submit rejects them outright).
        int64_t tok = tokens[t] % vocab;
        if (tok < 0)
            tok += vocab;
        const auto row = base_.embedding.row(tok);
        float *xr = x.data() + static_cast<int64_t>(t) * d.dModel;
        std::copy(row.begin(), row.end(), xr);
        if (base_.profile.family == ModelFamily::Opt &&
            base_.posEmbedding.numel() > 0) {
            const int64_t p =
                std::min<int64_t>(rowPos[t],
                                  base_.posEmbedding.shape().dim(0) - 1);
            const auto prow = base_.posEmbedding.row(p);
            for (int64_t i = 0; i < d.dModel; ++i)
                xr[i] += prow[static_cast<size_t>(i)];
        }
    }
    return x;
}

void
Transformer::normRows(Tensor &x, std::span<const float> gain,
                      std::span<const float> bias) const
{
    const int64_t rows = x.shape().dim(0);
    for (int64_t r = 0; r < rows; ++r) {
        if (base_.profile.family == ModelFamily::Llama)
            rmsNormRow(x.row(r), gain);
        else
            layerNormRow(x.row(r), gain, bias);
    }
}

void
Transformer::attentionBlock(int64_t layer, Tensor &x,
                            std::span<StreamContext *const> rowStream,
                            std::span<const int64_t> rowPos)
{
    const ArchDims &d = base_.profile.simDims;
    const int64_t t_dim = x.shape().dim(0);
    if (t_dim == 0)
        return; // empty prefill: nothing to attend or cache
    const int64_t dh = d.headDim();
    const LayerWeights &lw = base_.layers[static_cast<size_t>(layer)];
    const EffLayer &e = eff_[static_cast<size_t>(layer)];
    // All rows one stream (the prefill / single-stream decode shape)?
    // Then per-head work that walks the cache hoists out of the row
    // loop, exactly as the pre-batching code did.
    bool same_stream = true;
    for (size_t r = 1; r < rowStream.size(); ++r)
        same_stream = same_stream && rowStream[r] == rowStream[0];

    Tensor h = x;
    normRows(h, lw.normGain1, lw.normBias1);
    if (calibSink_)
        calibSink_->accumulate(layer, LinearSlot::AttnIn, h);

    // Fused path: the kernel quantizes activations internally (one
    // shared INT8 encode feeds Q, K and V), so the explicit float
    // quantize-dequantize is skipped.
    Tensor qLoc, kLoc, vLoc;
    Tensor &q = fusedLinears_ ? linQ_ : qLoc;
    Tensor &k = fusedLinears_ ? linK_ : kLoc;
    Tensor &v = fusedLinears_ ? linV_ : vLoc;
    if (fusedLinears_) {
        actScratch_.assign(h, setup_.weightGroup);
        e.wq.forwardFusedInto(actScratch_, linQ_);
        e.wk.forwardFusedInto(actScratch_, linK_);
        e.wv.forwardFusedInto(actScratch_, linV_);
    } else {
        if (setup_.act != ActMethod::None)
            h = quantizeActivations(h, setup_);
        qLoc = e.wq.forward(h);
        kLoc = e.wk.forward(h);
        vLoc = e.wv.forward(h);
    }

    // RoPE on Q and K, per head, at each row's absolute position.
    if (base_.profile.family == ModelFamily::Llama) {
        for (int64_t t = 0; t < t_dim; ++t) {
            for (int64_t head = 0; head < d.nHeads; ++head) {
                std::span<float> qseg(q.data() + t * d.dModel + head * dh,
                                      static_cast<size_t>(dh));
                std::span<float> kseg(k.data() + t * d.dModel + head * dh,
                                      static_cast<size_t>(dh));
                applyRope(qseg, rowPos[static_cast<size_t>(t)]);
                applyRope(kseg, rowPos[static_cast<size_t>(t)]);
            }
        }
    }

    // Feed the K caches: rows are spatially complete and immutable
    // once appended, and every attention read below is masked to its
    // row's visible horizon, so bulk-appending a whole chunk is
    // bit-identical to appending row-by-row. V is different: the
    // temporal quantizer's state for rows <= t depends on how many
    // rows it has ingested (pending INT8 vs finalized windows), so
    // quantized V folds inside the attention loop — append row t,
    // then attend row t. FP16 V rows are immutable like K, so the
    // FP16 float path keeps the bulk ingest (and its hoisted
    // reconstruction below).
    const bool fp16Kv = setup_.kv == KvMethod::Fp16;
    for (int64_t head = 0; head < d.nHeads; ++head) {
        for (int64_t t = 0; t < t_dim; ++t) {
            HeadKvCache &cache =
                rowStream[static_cast<size_t>(t)]
                    ->caches_[static_cast<size_t>(layer)]
                             [static_cast<size_t>(head)];
            std::span<const float> kseg(
                k.data() + t * d.dModel + head * dh,
                static_cast<size_t>(dh));
            cache.appendK(kseg);
            if (fp16Kv) {
                std::span<const float> vseg(
                    v.data() + t * d.dModel + head * dh,
                    static_cast<size_t>(dh));
                cache.appendV(vseg);
            }
        }
    }

    // Attention proper. Q (and later the probabilities) are quantized
    // to INT8 when the attention layer is quantized (final Tbl. II row).
    const float inv_sqrt_dh =
        1.0f / std::sqrt(static_cast<float>(dh));
    Tensor attn_out(Shape{t_dim, d.dModel});

    if (setup_.fusedAttention) {
        // Fused integer attention: both GEMMs run on the stored KV
        // codes (panel microkernels, or the scalar flat-code oracle
        // when the Reference kernel is selected). Q and the softmax
        // outputs are INT8-quantized inside the kernels, so the
        // explicit quantizeAttention rounding is skipped here.
        const SimdOps &ops = simdOps();
        const bool fused = attnKernel_ == AttentionKernel::Fused;
        std::vector<float> probs;
        for (int64_t head = 0; head < d.nHeads; ++head) {
            const float slope =
                base_.profile.family == ModelFamily::Bloom
                    ? alibiSlope(head, d.nHeads)
                    : 0.0f;
            for (int64_t t = 0; t < t_dim; ++t) {
                HeadKvCache &cache =
                    rowStream[static_cast<size_t>(t)]
                        ->caches_[static_cast<size_t>(layer)]
                                 [static_cast<size_t>(head)];
                // Per-row V fold: row t's P·V reads the quantizer
                // state of exactly rows 0..t (see the cache-feed
                // comment above).
                cache.appendV(std::span<const float>(
                    v.data() + t * d.dModel + head * dh,
                    static_cast<size_t>(dh)));
                std::span<const float> qseg(
                    q.data() + t * d.dModel + head * dh,
                    static_cast<size_t>(dh));
                const int64_t visible =
                    rowPos[static_cast<size_t>(t)] + 1;
                quantizeQRow(ops, qseg, setup_.kvGroup, attnScratch_);
                probs.resize(static_cast<size_t>(visible));
                if (fused)
                    attnScoresFused(ops, cache.kPanels(),
                                    attnScratch_.qCodes,
                                    attnScratch_.qScales, visible,
                                    inv_sqrt_dh, slope, probs);
                else
                    attnScoresReference(cache.kPanels(),
                                        attnScratch_.qCodes,
                                        attnScratch_.qScales, visible,
                                        inv_sqrt_dh, slope, probs);
                softmaxRow(probs);
                std::span<float> orow(
                    attn_out.data() + t * d.dModel + head * dh,
                    static_cast<size_t>(dh));
                if (fused)
                    attnPvFused(ops, cache.vQuant(), probs,
                                attnScratch_, orow);
                else
                    attnPvReference(ops, cache.vQuant(), probs,
                                    attnScratch_, orow);
            }
        }
    } else {
    for (int64_t head = 0; head < d.nHeads; ++head) {
        const float slope =
            base_.profile.family == ModelFamily::Bloom
                ? alibiSlope(head, d.nHeads)
                : 0.0f;
        // FP16 V rows are immutable, so one reconstruction per head
        // serves every row when all rows share a stream. Quantized V
        // folds per row — append row t, reconstruct rows 0..t — so
        // the read always reflects exactly the rows this row may see.
        Tensor vhat;
        if (fp16Kv && same_stream) {
            vhat = rowStream[0]
                       ->caches_[static_cast<size_t>(layer)]
                                [static_cast<size_t>(head)]
                       .vMatrix();
        }

        std::vector<float> probs;
        for (int64_t t = 0; t < t_dim; ++t) {
            HeadKvCache &cache =
                rowStream[static_cast<size_t>(t)]
                    ->caches_[static_cast<size_t>(layer)]
                             [static_cast<size_t>(head)];
            if (!fp16Kv) {
                cache.appendV(std::span<const float>(
                    v.data() + t * d.dModel + head * dh,
                    static_cast<size_t>(dh)));
                vhat = cache.vMatrix();
            } else if (!same_stream) {
                vhat = cache.vMatrix();
            }
            std::span<float> qseg(q.data() + t * d.dModel + head * dh,
                                  static_cast<size_t>(dh));
            if (setup_.quantizeAttention)
                int8RoundSpan(qseg, setup_.kvGroup);

            const int64_t visible = rowPos[static_cast<size_t>(t)] + 1;
            probs.assign(static_cast<size_t>(visible), 0.0f);
            for (int64_t p = 0; p < visible; ++p) {
                const auto krow = cache.kRow(p);
                double acc = 0.0;
                for (int64_t i = 0; i < dh; ++i)
                    acc += static_cast<double>(qseg[static_cast<size_t>(i)]) *
                           krow[static_cast<size_t>(i)];
                float score = static_cast<float>(acc) * inv_sqrt_dh;
                if (slope != 0.0f)
                    score -= slope * static_cast<float>(visible - 1 - p);
                probs[static_cast<size_t>(p)] = score;
            }
            softmaxRow(probs);
            if (setup_.quantizeAttention)
                int8RoundSpan(probs, setup_.kvGroup);

            float *orow = attn_out.data() + t * d.dModel + head * dh;
            std::fill_n(orow, dh, 0.0f);
            for (int64_t p = 0; p < visible; ++p) {
                const float pr = probs[static_cast<size_t>(p)];
                if (pr == 0.0f)
                    continue;
                const float *vrow = vhat.data() + p * dh;
                for (int64_t i = 0; i < dh; ++i)
                    orow[i] += pr * vrow[i];
            }
        }
    }
    } // !fusedAttention

    if (calibSink_)
        calibSink_->accumulate(layer, LinearSlot::OProj, attn_out);
    Tensor oLoc;
    const Tensor *o;
    if (fusedLinears_) {
        actScratch_.assign(attn_out, setup_.weightGroup);
        e.wo.forwardFusedInto(actScratch_, linO_);
        o = &linO_;
    } else {
        if (setup_.act != ActMethod::None)
            attn_out = quantizeActivations(attn_out, setup_);
        oLoc = e.wo.forward(attn_out);
        o = &oLoc;
    }
    for (int64_t i = 0; i < x.numel(); ++i)
        x[i] += (*o)[i];
}

void
Transformer::ffnBlock(int64_t layer, Tensor &x)
{
    const LayerWeights &lw = base_.layers[static_cast<size_t>(layer)];
    const EffLayer &e = eff_[static_cast<size_t>(layer)];

    Tensor h = x;
    normRows(h, lw.normGain2, lw.normBias2);
    if (calibSink_)
        calibSink_->accumulate(layer, LinearSlot::FfnIn, h);

    Tensor midLoc;
    Tensor &mid = fusedLinears_ ? linGate_ : midLoc;
    if (fusedLinears_) {
        actScratch_.assign(h, setup_.weightGroup);
        if (base_.profile.family == ModelFamily::Llama) {
            e.wGate.forwardFusedInto(actScratch_, linGate_);
            e.wUp.forwardFusedInto(actScratch_, linUp_);
            siluInPlace(linGate_.span());
            for (int64_t i = 0; i < linGate_.numel(); ++i)
                linGate_[i] *= linUp_[i];
        } else {
            e.wGate.forwardFusedInto(actScratch_, linGate_);
            geluInPlace(linGate_.span());
        }
    } else {
        if (setup_.act != ActMethod::None)
            h = quantizeActivations(h, setup_);
        if (base_.profile.family == ModelFamily::Llama) {
            Tensor gate = e.wGate.forward(h);
            const Tensor up = e.wUp.forward(h);
            siluInPlace(gate.span());
            for (int64_t i = 0; i < gate.numel(); ++i)
                gate[i] *= up[i];
            midLoc = std::move(gate);
        } else {
            midLoc = e.wGate.forward(h);
            geluInPlace(midLoc.span());
        }
    }
    if (calibSink_)
        calibSink_->accumulate(layer, LinearSlot::FfnDown, mid);
    Tensor downLoc;
    const Tensor *down;
    if (fusedLinears_) {
        actScratch_.assign(mid, setup_.weightGroup);
        e.wDown.forwardFusedInto(actScratch_, linDown_);
        down = &linDown_;
    } else {
        if (setup_.act != ActMethod::None)
            mid = quantizeActivations(mid, setup_);
        downLoc = e.wDown.forward(mid);
        down = &downLoc;
    }
    for (int64_t i = 0; i < x.numel(); ++i)
        x[i] += (*down)[i];
}

Tensor
Transformer::logitsFrom(Tensor x) const
{
    Tensor h = std::move(x);
    const int64_t rows = h.shape().dim(0);
    for (int64_t r = 0; r < rows; ++r) {
        if (base_.profile.family == ModelFamily::Llama)
            rmsNormRow(h.row(r), base_.finalNormGain);
        else
            layerNormRow(h.row(r), base_.finalNormGain,
                         base_.finalNormBias);
    }
    Tensor logits = linearNT(h, base_.embedding);
    logits.scaleInPlace(logitScale_);
    return logits;
}

Tensor
Transformer::forwardRows(std::span<const int32_t> tokens,
                         std::span<StreamContext *const> rowStream,
                         std::span<const int64_t> rowPos)
{
    Tensor x = embed(tokens, rowPos);
    const int64_t n_layers = base_.profile.simDims.nLayers;
    for (int64_t l = 0; l < n_layers; ++l) {
        attentionBlock(l, x, rowStream, rowPos);
        ffnBlock(l, x);
    }
    return logitsFrom(std::move(x));
}

Tensor
Transformer::forwardInternal(StreamContext &s,
                             std::span<const int32_t> tokens,
                             int64_t startPos)
{
    std::vector<StreamContext *> streams(tokens.size(), &s);
    std::vector<int64_t> positions(tokens.size());
    for (size_t t = 0; t < tokens.size(); ++t)
        positions[t] = startPos + static_cast<int64_t>(t);
    return forwardRows(tokens, streams, positions);
}

Tensor
Transformer::prefill(std::span<const int32_t> tokens)
{
    return prefill(self_, tokens);
}

Tensor
Transformer::prefill(StreamContext &s, std::span<const int32_t> tokens)
{
    initStream(s);
    return prefillChunk(s, tokens);
}

Tensor
Transformer::prefillChunk(StreamContext &s,
                          std::span<const int32_t> tokens)
{
    if (!s.initialized())
        initStream(s);
    else if (!ownsStream(s))
        throw std::invalid_argument(
            "prefillChunk: stream belongs to a different model");
    Tensor logits = forwardInternal(s, tokens, s.pos_);
    s.pos_ += static_cast<int64_t>(tokens.size());
    return logits;
}

std::vector<float>
Transformer::decodeStep(int32_t token)
{
    return decodeStep(self_, token);
}

std::vector<float>
Transformer::decodeStep(StreamContext &s, int32_t token)
{
    // A fresh context auto-initializes (matching the default stream,
    // which is usable straight after construction); a context owned
    // by a *different* model is a caller bug — silently wiping it
    // would decode against an empty cache and return garbage.
    if (!s.initialized())
        initStream(s);
    else if (!ownsStream(s))
        throw std::invalid_argument(
            "decodeStep: stream belongs to a different model");
    const int32_t toks[1] = {token};
    Tensor logits = forwardInternal(s, std::span<const int32_t>(toks, 1),
                                    s.pos_);
    ++s.pos_;
    const auto row = logits.row(0);
    return {row.begin(), row.end()};
}

Tensor
Transformer::decodeBatch(std::span<const int32_t> tokens,
                         std::span<StreamContext *const> streams)
{
    if (tokens.size() != streams.size())
        throw std::invalid_argument(
            "decodeBatch: one stream required per token");
    if (tokens.empty())
        throw std::invalid_argument("decodeBatch: empty batch");
    std::vector<int64_t> positions(tokens.size());
    for (size_t r = 0; r < streams.size(); ++r) {
        if (!streams[r] || !ownsStream(*streams[r]))
            throw std::invalid_argument(
                "decodeBatch: stream not initialized for this model "
                "(call initStream()/prefill() first)");
        for (size_t q = 0; q < r; ++q) {
            if (streams[q] == streams[r])
                throw std::invalid_argument(
                    "decodeBatch: duplicate stream in batch");
        }
        positions[r] = streams[r]->pos_;
    }
    Tensor logits = forwardRows(tokens, streams, positions);
    for (StreamContext *s : streams)
        ++s->pos_;
    return logits;
}

std::vector<Tensor>
Transformer::collectKvSamples(const ModelWeights &weights,
                              std::span<const int32_t> tokens)
{
    Transformer ref(weights, fp16Setup());
    ref.prefill(tokens);

    const ArchDims &d = weights.profile.simDims;
    std::vector<Tensor> samples;
    for (int64_t l = 0; l < d.nLayers; ++l) {
        for (int64_t h = 0; h < d.nHeads; ++h) {
            const HeadKvCache &cache = ref.cache(l, h);
            const int64_t rows = cache.size();
            // K sample: (positions, headDim) — groups along headDim.
            Tensor ks(Shape{rows, d.headDim()});
            for (int64_t p = 0; p < rows; ++p) {
                const auto kr = cache.kRow(p);
                std::copy(kr.begin(), kr.end(),
                          ks.data() + p * d.headDim());
            }
            samples.push_back(std::move(ks));
            // V sample transposed: (headDim, positions) — groups along
            // the sequence, V's quantization direction.
            samples.push_back(transpose(cache.vMatrix()));
        }
    }
    return samples;
}

} // namespace mant
