/**
 * @file
 * The transformer inference engine with pluggable quantization: weight
 * methods applied at construction, activation methods applied at each
 * linear input, KV-cache methods applied through the real-time
 * machinery (spatial K, two-phase temporal V). Supports prefill over a
 * full sequence and one-token decode steps — the two LLM stages the
 * paper's framework distinguishes.
 */

#ifndef MANT_MODEL_TRANSFORMER_H_
#define MANT_MODEL_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "core/variance_selector.h"
#include "model/kv_cache.h"
#include "model/quant_setup.h"
#include "model/quantized_linear.h"
#include "model/weights.h"

namespace mant {

class ModelCalibration;

/**
 * A quantization-aware transformer instance over shared base weights.
 */
class Transformer
{
  public:
    /**
     * @param weights     The generated base model (kept by reference;
     *                    must outlive the Transformer).
     * @param setup       Quantization configuration.
     * @param kvSelector  Calibrated variance selector for Mant4 KV; a
     *                    default analytic selector is built when null.
     * @param calibration Optional activation calibration: when present
     *                    and the weight method is MANT, coefficients
     *                    are chosen by the Eq. 6 output-MSE search.
     */
    Transformer(const ModelWeights &weights, QuantSetup setup,
                const VarianceSelector *kvSelector = nullptr,
                const ModelCalibration *calibration = nullptr);

    /** Attach a calibration collector (FP16 instances only): every
     *  linear-layer input's column power is accumulated into it. */
    void setCalibrationSink(ModelCalibration *sink)
    {
        calibSink_ = sink;
    }

    /** Logit temperature (set by the evaluator's calibration). */
    void setLogitScale(float s) { logitScale_ = s; }
    float logitScale() const { return logitScale_; }

    /**
     * Reset caches and run the prefill stage over a token sequence.
     * @return Logits, shape (tokens, vocab).
     */
    Tensor prefill(std::span<const int32_t> tokens);

    /** Decode one token; returns the next-token logits row. */
    std::vector<float> decodeStep(int32_t token);

    /** Current sequence position (tokens consumed). */
    int64_t position() const { return pos_; }

    void reset();

    const QuantSetup &setup() const { return setup_; }
    const ModelWeights &weights() const { return base_; }

    /** Cache access for diagnostics and the ablation benches. */
    const HeadKvCache &
    cache(int64_t layer, int64_t head) const
    {
        return caches_[static_cast<size_t>(layer)]
                      [static_cast<size_t>(head)];
    }

    /**
     * Collect K-cache and V-cache sample tensors from a prefill run of
     * an FP16-KV model over the given tokens — the "calibration
     * dataset" pass of Sec. V-C. Returned tensors have quantization
     * groups along their inner dims (K: head dim; V: sequence).
     */
    static std::vector<Tensor> collectKvSamples(
        const ModelWeights &weights, std::span<const int32_t> tokens);

  private:
    /**
     * One layer's quantized linears. Each holds the effective float
     * weights (the float path computes with these, exactly as before)
     * and, for 4-bit MANT, the codes plus prepacked tiles the fused
     * inference path streams.
     */
    struct EffLayer
    {
        QuantizedLinear wq, wk, wv, wo, wGate, wUp, wDown;
    };

    Tensor embed(std::span<const int32_t> tokens, int64_t startPos) const;
    void normRows(Tensor &x, std::span<const float> gain,
                  std::span<const float> bias) const;
    void attentionBlock(int64_t layer, Tensor &x, int64_t startPos);
    void ffnBlock(int64_t layer, Tensor &x);
    Tensor forwardInternal(std::span<const int32_t> tokens,
                           int64_t startPos);
    Tensor logitsFrom(Tensor x) const;

    const ModelWeights &base_;
    QuantSetup setup_;
    std::vector<EffLayer> eff_;
    std::vector<std::vector<HeadKvCache>> caches_;
    std::unique_ptr<VarianceSelector> ownedSelector_;
    const VarianceSelector *kvSelector_ = nullptr;
    ModelCalibration *calibSink_ = nullptr;
    int64_t pos_ = 0;
    float logitScale_ = 1.0f;

    /** True when linears route through the prepacked fused path. */
    bool fusedLinears_ = false;
    /** Decode-loop scratch for the fused path: the activation
     *  quantization buffer and per-slot output tensors are reused
     *  across layers and steps (no steady-state allocation). */
    Int8QuantizedActivations actScratch_;
    Tensor linQ_, linK_, linV_, linO_, linGate_, linUp_, linDown_;
};

} // namespace mant

#endif // MANT_MODEL_TRANSFORMER_H_
