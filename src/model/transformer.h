/**
 * @file
 * The transformer inference engine with pluggable quantization: weight
 * methods applied at construction, activation methods applied at each
 * linear input, KV-cache methods applied through the real-time
 * machinery (spatial K, two-phase temporal V). Supports prefill over a
 * full sequence and one-token decode steps — the two LLM stages the
 * paper's framework distinguishes — plus multi-stream batched decode:
 * generation state (KV caches + position) lives in StreamContext
 * handles, so a serving layer can run N independent streams through
 * one batched M=N forward pass per step (see src/serve/).
 */

#ifndef MANT_MODEL_TRANSFORMER_H_
#define MANT_MODEL_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "core/fused_attention.h"
#include "core/variance_selector.h"
#include "model/kv_cache.h"
#include "model/quant_setup.h"
#include "model/quantized_linear.h"
#include "model/weights.h"

namespace mant {

class ModelCalibration;
class Transformer;

/**
 * Which kernel a fused-attention setup runs for both attention GEMMs.
 * Fused is the production path (panel microkernels); Reference is the
 * scalar flat-code oracle — bit-identical by contract, selectable so
 * tests and benches can compare whole-model outputs byte for byte.
 */
enum class AttentionKernel
{
    Fused,
    Reference,
};

/**
 * Per-stream generation state: one KV cache per (layer, head) plus the
 * stream's sequence position. A Transformer owns one default context
 * for the classic single-stream API; a serving layer owns one per
 * concurrent request and passes them to prefill()/decodeBatch().
 * Contexts are cheap to move and reusable: Transformer::initStream()
 * resets an already-sized context in place (cache storage capacity is
 * retained), which is what makes stream-slot pooling allocation-free.
 */
class StreamContext
{
  public:
    StreamContext() = default;

    /** Moves transfer ownership: the moved-from context returns to
     *  the uninitialized state (its empty cache vector must not keep
     *  passing the ownership check, or a later decode would index
     *  into it). Copying is disabled by the cache internals. */
    StreamContext(StreamContext &&other) noexcept
        : caches_(std::move(other.caches_)), pos_(other.pos_),
          owner_(other.owner_), ownerEpoch_(other.ownerEpoch_),
          pageAlloc_(other.pageAlloc_)
    {
        other.disown();
    }
    StreamContext &
    operator=(StreamContext &&other) noexcept
    {
        caches_ = std::move(other.caches_);
        pos_ = other.pos_;
        owner_ = other.owner_;
        ownerEpoch_ = other.ownerEpoch_;
        pageAlloc_ = other.pageAlloc_;
        other.disown();
        return *this;
    }

    /** Tokens this stream has consumed. */
    int64_t position() const { return pos_; }

    /** True once initStream()/prefill() has sized the caches. */
    bool initialized() const { return owner_ != nullptr; }

    /** Cache access for diagnostics and tests. */
    const HeadKvCache &
    cache(int64_t layer, int64_t head) const
    {
        return caches_[static_cast<size_t>(layer)]
                      [static_cast<size_t>(head)];
    }

  private:
    friend class Transformer;

    void
    disown()
    {
        caches_.clear();
        pos_ = 0;
        owner_ = nullptr;
        ownerEpoch_ = 0;
        pageAlloc_ = nullptr;
    }

    std::vector<std::vector<HeadKvCache>> caches_;
    int64_t pos_ = 0;
    /** Transformer whose setup sized the caches; a different owner
     *  forces a rebuild instead of an in-place reset. The epoch
     *  disambiguates a new Transformer allocated at a recycled
     *  address (ABA): pointer equality alone would let a stale
     *  context smuggle another setup's caches — and their dangling
     *  selector pointers — into the new model. */
    const Transformer *owner_ = nullptr;
    uint64_t ownerEpoch_ = 0;
    /** Page pool backing this stream's panel stores (nullptr =
     *  private per-store pools). Bound by initStream(); a rebind
     *  forces a cache rebuild. */
    KvPageAllocator *pageAlloc_ = nullptr;
};

/**
 * One layer's prepacked weight tiles for view-based construction: the
 * seven linear slots as non-owning views over externally owned tile
 * storage (an mmap'd model file). `wUp` stays default-invalid for
 * families without a SwiGLU up projection.
 */
struct LayerTileViews
{
    MantTilesView wq, wk, wv, wo, wGate, wUp, wDown;
};

/**
 * A quantization-aware transformer instance over shared base weights.
 */
class Transformer
{
  public:
    /**
     * @param weights     The generated base model (kept by reference;
     *                    must outlive the Transformer).
     * @param setup       Quantization configuration.
     * @param kvSelector  Calibrated variance selector for Mant4 KV; a
     *                    default analytic selector is built when null.
     * @param calibration Optional activation calibration: when present
     *                    and the weight method is MANT, coefficients
     *                    are chosen by the Eq. 6 output-MSE search.
     */
    Transformer(const ModelWeights &weights, QuantSetup setup,
                const VarianceSelector *kvSelector = nullptr,
                const ModelCalibration *calibration = nullptr);

    /**
     * View-based construction (the zero-copy model load path): linear
     * layers wrap the given tile views instead of quantizing weights —
     * no coefficient search, no repack, no code-byte copies. `weights`
     * supplies everything else inference reads (profile, embedding,
     * positional embedding, norm parameters); its per-layer linear
     * Tensors may be empty. Both `weights` and the storage behind
     * every view must outlive the Transformer (model/model_file.h ties
     * them to one file mapping). Requires a fused 4-bit MANT setup;
     * forward passes are bit-identical to a Transformer quantized from
     * the original float weights with the same setup, because the
     * tiles are the same bytes. Throws std::invalid_argument when the
     * setup is not fused MANT or any view disagrees with the profile
     * geometry or the setup's weight group.
     */
    Transformer(const ModelWeights &weights, QuantSetup setup,
                std::span<const LayerTileViews> layerTiles,
                const VarianceSelector *kvSelector = nullptr);

    /** Non-copyable, non-movable: stream contexts (including the
     *  default one) record the owning instance's address, so a moved
     *  Transformer would disown every stream initialized before the
     *  move. Hold Transformers in place (or behind unique_ptr). */
    Transformer(const Transformer &) = delete;
    Transformer &operator=(const Transformer &) = delete;

    /** Attach a calibration collector (FP16 instances only): every
     *  linear-layer input's column power is accumulated into it. */
    void setCalibrationSink(ModelCalibration *sink)
    {
        calibSink_ = sink;
    }

    /** Logit temperature (set by the evaluator's calibration). */
    void setLogitScale(float s) { logitScale_ = s; }
    float logitScale() const { return logitScale_; }

    /** Select the attention kernel (fused-attention setups only; a
     *  no-op knob otherwise). Defaults to AttentionKernel::Fused. */
    void setAttentionKernel(AttentionKernel k) { attnKernel_ = k; }
    AttentionKernel attentionKernel() const { return attnKernel_; }

    /**
     * Reset caches and run the prefill stage over a token sequence.
     * @return Logits, shape (tokens, vocab).
     */
    Tensor prefill(std::span<const int32_t> tokens);

    /** Decode one token; returns the next-token logits row. */
    std::vector<float> decodeStep(int32_t token);

    /**
     * (Re)initialize a stream context for this model: caches sized per
     * the setup, position zero. An already-matching context is reset in
     * place, reusing its cache storage (the serving engine's stream
     * pool relies on this being allocation-light). The context keeps
     * whatever page-pool binding it already has (a fresh context uses
     * private per-store pools).
     */
    void initStream(StreamContext &s) const;

    /**
     * As above, but additionally bind the stream's panel stores to a
     * shared KV page pool (nullptr unbinds back to private pools).
     * Rebinding to a different pool rebuilds the caches; matching
     * pool + geometry resets in place like the one-argument form.
     * The pool must outlive every stream bound to it.
     */
    void initStream(StreamContext &s, KvPageAllocator *pages) const;

    /**
     * Retire a stream: every head cache returns its pool pages and
     * rejects appends until the next initStream() revives the slot.
     * The serving engine calls this the moment a stream finishes, so
     * the freed pages count toward the admission watermark before the
     * next admission decision. Throws std::invalid_argument for a
     * stream this model does not own.
     */
    void retireStream(StreamContext &s) const;

    /**
     * Exact shared-pool pages that advancing `s` by `rows` positions
     * (prefillChunk rows or decode steps) will claim, summed over
     * every head cache (HeadKvCache::poolPagesForRows). 0 for streams
     * whose caches capture no panel codes. The serving scheduler calls
     * this before running a stream so a too-small pool becomes an
     * eviction decision up front instead of a KvPoolExhausted escaping
     * a half-advanced forward pass. Throws std::invalid_argument for a
     * stream this model does not own.
     */
    int64_t pagesNeededForRows(const StreamContext &s,
                               int64_t rows) const;

    /** Prefill into an explicit stream context (initStream'd first).
     *  The Transformer's own default-stream state is untouched. */
    Tensor prefill(StreamContext &s, std::span<const int32_t> tokens);

    /**
     * Prefill continuation: fold `tokens` into the stream at its
     * current position WITHOUT resetting it first. Splitting a prompt
     * into chunks of any sizes and folding them in order is
     * bit-identical to one prefill() of the whole prompt — and to a
     * token-by-token decodeStep() chain — because every per-row kernel
     * computes rows independently and the temporal V quantizer folds
     * row-by-row with no look-ahead (first row seeds the channel
     * scales, windows finalize on their G-th row regardless of chunk
     * boundaries). Setups whose activation method quantizes across
     * rows (ActMethod::Tender, tensor-wise granularities) fall outside
     * this guarantee, exactly like decodeBatch(). Returns logits for
     * the chunk's rows, shape (tokens, vocab).
     */
    Tensor prefillChunk(StreamContext &s,
                        std::span<const int32_t> tokens);

    /** Decode one token on an explicit stream context. */
    std::vector<float> decodeStep(StreamContext &s, int32_t token);

    /**
     * Batched multi-stream decode: one token per stream, executed as a
     * single M = streams.size() pass through every linear (one shared
     * activation quantization per batch on the fused path). Row r
     * attends to streams[r]'s cache at streams[r]->position(); each
     * stream's position advances by one. Returns logits (M, vocab).
     *
     * Determinism contract: row r of the result is bit-identical to
     * the logits of a decodeStep(streams[r], token[r]) run serially —
     * every per-row kernel (INT8 activation encode, fused tiled GEMM,
     * linearNT, KV quantization, attention) computes each row/cell
     * independently with a fixed accumulation order, so batch
     * composition cannot perturb any stream (tests/test_serving.cc
     * asserts byte equality across MANT_SIMD × MANT_THREADS). Setups
     * whose activation method quantizes across rows (ActMethod::Tender
     * and the tensor-wise granularities) fall outside this guarantee.
     */
    Tensor decodeBatch(std::span<const int32_t> tokens,
                       std::span<StreamContext *const> streams);

    /** Current sequence position of the default stream. */
    int64_t position() const { return self_.pos_; }

    void reset();

    const QuantSetup &setup() const { return setup_; }
    const ModelWeights &weights() const { return base_; }

    /** Default-stream cache access for diagnostics and benches. */
    const HeadKvCache &
    cache(int64_t layer, int64_t head) const
    {
        return self_.cache(layer, head);
    }

    /**
     * Collect K-cache and V-cache sample tensors from a prefill run of
     * an FP16-KV model over the given tokens — the "calibration
     * dataset" pass of Sec. V-C. Returned tensors have quantization
     * groups along their inner dims (K: head dim; V: sequence).
     */
    static std::vector<Tensor> collectKvSamples(
        const ModelWeights &weights, std::span<const int32_t> tokens);

  private:
    /**
     * One layer's quantized linears. Each holds the effective float
     * weights (the float path computes with these, exactly as before)
     * and, for 4-bit MANT, the codes plus prepacked tiles the fused
     * inference path streams.
     */
    struct EffLayer
    {
        QuantizedLinear wq, wk, wv, wo, wGate, wUp, wDown;
    };

    Tensor embed(std::span<const int32_t> tokens,
                 std::span<const int64_t> rowPos) const;
    void normRows(Tensor &x, std::span<const float> gain,
                  std::span<const float> bias) const;
    /**
     * One attention block over rows with per-row stream state: row r
     * appends its K/V to rowStream[r]'s caches and attends at position
     * rowPos[r]. The single-stream prefill/decode path passes the same
     * stream for every row (rows causal within the batch by their
     * ascending positions); the batched decode path passes one stream
     * per row. K rows append in bulk (appended rows are immutable and
     * reads are masked to the visible horizon); quantized V folds
     * row-by-row interleaved with each row's attention, so row t reads
     * the V state of exactly rows 0..t — the invariant that makes any
     * chunking of a prompt bit-identical to the serial fold.
     */
    void attentionBlock(int64_t layer, Tensor &x,
                        std::span<StreamContext *const> rowStream,
                        std::span<const int64_t> rowPos);
    void ffnBlock(int64_t layer, Tensor &x);
    /** Shared forward core: embed rows, walk the layers, project
     *  logits. Positions/caches are per row; no position is advanced
     *  here (callers own that). */
    Tensor forwardRows(std::span<const int32_t> tokens,
                       std::span<StreamContext *const> rowStream,
                       std::span<const int64_t> rowPos);
    Tensor forwardInternal(StreamContext &s,
                           std::span<const int32_t> tokens,
                           int64_t startPos);
    Tensor logitsFrom(Tensor x) const;
    void initStreamImpl(StreamContext &s, KvPageAllocator *pages) const;

    /** True when `s` was initialized by this Transformer instance
     *  (not merely one that reused this address). */
    bool ownsStream(const StreamContext &s) const
    {
        return s.owner_ == this && s.ownerEpoch_ == streamEpoch_;
    }

    const ModelWeights &base_;
    QuantSetup setup_;
    std::vector<EffLayer> eff_;
    /** Process-unique instance id (see StreamContext::ownerEpoch_). */
    const uint64_t streamEpoch_;
    StreamContext self_;
    std::unique_ptr<VarianceSelector> ownedSelector_;
    const VarianceSelector *kvSelector_ = nullptr;
    ModelCalibration *calibSink_ = nullptr;
    float logitScale_ = 1.0f;

    /** True when linears route through the prepacked fused path. */
    bool fusedLinears_ = false;
    /** Decode-loop scratch for the fused path: the activation
     *  quantization buffer and per-slot output tensors are reused
     *  across layers and steps (no steady-state allocation). */
    Int8QuantizedActivations actScratch_;
    Tensor linQ_, linK_, linV_, linO_, linGate_, linUp_, linDown_;

    /** Fused-attention kernel selection and its per-call scratch. */
    AttentionKernel attnKernel_ = AttentionKernel::Fused;
    AttnScratch attnScratch_;
};

} // namespace mant

#endif // MANT_MODEL_TRANSFORMER_H_
