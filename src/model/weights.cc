#include "model/weights.h"

#include <cmath>

namespace mant {

namespace {

std::vector<float>
genNormGain(Rng &rng, int64_t n, const ActProfile &acts,
            std::span<const int64_t> hotChannels)
{
    std::vector<float> gain(static_cast<size_t>(n));
    for (auto &g : gain)
        g = static_cast<float>(rng.gaussian(1.0, 0.1));
    // Hot channels: boosted norm gains are the mechanism that produces
    // systematic activation outliers downstream. Real LLMs' outlier
    // channels are consistent across layers, so the positions are
    // chosen once per model and reused for every norm.
    for (int64_t c : hotChannels) {
        gain[static_cast<size_t>(c)] *= static_cast<float>(
            rng.uniform(0.6, 1.0) * acts.outlierChannelScale);
    }
    return gain;
}

std::vector<float>
genNormBias(Rng &rng, int64_t n)
{
    std::vector<float> bias(static_cast<size_t>(n));
    for (auto &b : bias)
        b = static_cast<float>(rng.gaussian(0.0, 0.02));
    return bias;
}

} // namespace

ModelWeights
ModelWeights::generate(const ModelProfile &profile, int64_t maxSeq)
{
    ModelWeights mw;
    mw.profile = profile;
    mw.maxSeq = maxSeq;
    const ArchDims &d = profile.simDims;
    Rng root(profile.seed);

    // Embedding rows at unit-ish scale; the logit temperature is
    // calibrated separately by the evaluator.
    {
        Rng rng = root.fork(1);
        mw.embedding = Tensor(Shape{d.vocab, d.dModel});
        const float sigma =
            1.0f / std::sqrt(static_cast<float>(d.dModel));
        for (int64_t i = 0; i < mw.embedding.numel(); ++i)
            mw.embedding[i] =
                static_cast<float>(rng.gaussian(0.0, sigma));
    }
    if (profile.family != ModelFamily::Llama) {
        Rng rng = root.fork(2);
        mw.posEmbedding = Tensor(Shape{maxSeq, d.dModel});
        const float sigma =
            0.5f / std::sqrt(static_cast<float>(d.dModel));
        for (int64_t i = 0; i < mw.posEmbedding.numel(); ++i)
            mw.posEmbedding[i] =
                static_cast<float>(rng.gaussian(0.0, sigma));
    }

    // Model-wide hot activation channels: count follows the profile
    // rate (at least one), positions fixed for the whole model.
    std::vector<int64_t> hot_channels;
    {
        Rng rng = root.fork(4);
        const int64_t count = std::max<int64_t>(
            1, static_cast<int64_t>(
                   profile.actStats.outlierChannelRate *
                   static_cast<double>(d.dModel) + 0.5));
        for (int64_t i = 0; i < count; ++i) {
            hot_channels.push_back(static_cast<int64_t>(
                rng.uniformInt(static_cast<uint64_t>(d.dModel))));
        }
    }

    mw.layers.reserve(static_cast<size_t>(d.nLayers));
    for (int64_t l = 0; l < d.nLayers; ++l) {
        Rng rng = root.fork(100 + static_cast<uint64_t>(l));
        const DistProfile &stats =
            l == 0 ? profile.firstLayerStats : profile.weightStats;

        LayerWeights lw;
        lw.wq = genWeightMatrix(rng, d.dModel, d.dModel, stats);
        lw.wk = genWeightMatrix(rng, d.dModel, d.dModel, stats);
        lw.wv = genWeightMatrix(rng, d.dModel, d.dModel, stats);
        lw.wo = genWeightMatrix(rng, d.dModel, d.dModel, stats);
        lw.wGate = genWeightMatrix(rng, d.dFfn, d.dModel, stats);
        if (profile.family == ModelFamily::Llama)
            lw.wUp = genWeightMatrix(rng, d.dFfn, d.dModel, stats);
        lw.wDown = genWeightMatrix(rng, d.dModel, d.dFfn, stats);

        lw.normGain1 =
            genNormGain(rng, d.dModel, profile.actStats, hot_channels);
        lw.normBias1 = genNormBias(rng, d.dModel);
        lw.normGain2 =
            genNormGain(rng, d.dModel, profile.actStats, hot_channels);
        lw.normBias2 = genNormBias(rng, d.dModel);
        mw.layers.push_back(std::move(lw));
    }

    {
        Rng rng = root.fork(3);
        mw.finalNormGain.assign(static_cast<size_t>(d.dModel), 1.0f);
        for (auto &g : mw.finalNormGain)
            g = static_cast<float>(rng.gaussian(1.0, 0.05));
        mw.finalNormBias = genNormBias(rng, d.dModel);
    }
    return mw;
}

std::vector<ModelWeights::NamedTensor>
ModelWeights::namedLinearWeights() const
{
    std::vector<NamedTensor> out;
    for (size_t l = 0; l < layers.size(); ++l) {
        const int64_t li = static_cast<int64_t>(l);
        const LayerWeights &lw = layers[l];
        out.push_back({"q", li, &lw.wq});
        out.push_back({"k", li, &lw.wk});
        out.push_back({"v", li, &lw.wv});
        out.push_back({"o", li, &lw.wo});
        out.push_back({profile.family == ModelFamily::Llama ? "gate"
                                                            : "fc1",
                       li, &lw.wGate});
        if (lw.wUp.numel() > 0)
            out.push_back({"up", li, &lw.wUp});
        out.push_back({profile.family == ModelFamily::Llama ? "down"
                                                            : "fc2",
                       li, &lw.wDown});
    }
    return out;
}

} // namespace mant
