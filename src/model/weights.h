/**
 * @file
 * Model weight containers and the synthetic generator.
 *
 * Weight matrices are stored (outFeatures, inFeatures) so quantization
 * groups run along the inner (reduction) dimension contiguously and the
 * linear layers compute y = x * W^T.
 */

#ifndef MANT_MODEL_WEIGHTS_H_
#define MANT_MODEL_WEIGHTS_H_

#include <vector>

#include "model/config.h"
#include "tensor/tensor.h"

namespace mant {

/** One transformer layer's parameters. */
struct LayerWeights
{
    Tensor wq, wk, wv, wo; ///< attention projections, (dModel, dModel)
    Tensor wGate;          ///< SwiGLU gate / OPT fc1, (dFfn, dModel)
    Tensor wUp;            ///< SwiGLU up, (dFfn, dModel); empty for OPT
    Tensor wDown;          ///< down / fc2, (dModel, dFfn)

    std::vector<float> normGain1, normBias1; ///< pre-attention norm
    std::vector<float> normGain2, normBias2; ///< pre-FFN norm
};

/** A full synthetic model instance (always built from simDims). */
struct ModelWeights
{
    ModelProfile profile;
    Tensor embedding;     ///< (vocab, dModel), also the tied LM head
    Tensor posEmbedding;  ///< (maxSeq, dModel); OPT/BLOOM only
    std::vector<LayerWeights> layers;
    std::vector<float> finalNormGain, finalNormBias;

    int64_t maxSeq = 0;

    /**
     * Generate a model from a profile. Layer 0 uses the spiky
     * first-layer statistics; a sparse set of norm-gain channels is
     * boosted to create the systematic activation outliers real LLMs
     * exhibit (the mechanism behind the W4A4 baseline failures).
     */
    static ModelWeights generate(const ModelProfile &profile,
                                 int64_t maxSeq = 512);

    /** All linear weight matrices with names, for sweep experiments:
     *  ("q"|"k"|"v"|"o"|"gate"|"up"|"down", layer index, tensor). */
    struct NamedTensor
    {
        const char *kind;
        int64_t layer;
        const Tensor *tensor;
    };
    std::vector<NamedTensor> namedLinearWeights() const;
};

} // namespace mant

#endif // MANT_MODEL_WEIGHTS_H_
