#include "quant/fixed_formats.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace mant {

IntFormat::IntFormat(int bits) : bits_(bits)
{
    if (bits < 2 || bits > 16)
        throw std::invalid_argument("IntFormat: bits must be in [2, 16]");
    name_ = "int" + std::to_string(bits);
    const int maxv = (1 << (bits - 1)) - 1;
    for (int v = -maxv; v <= maxv; ++v)
        levels_.push_back(static_cast<float>(v));
}

PotFormat::PotFormat()
{
    levels_.push_back(0.0f);
    for (int e = 0; e <= 6; ++e) {
        const float v = static_cast<float>(1 << e);
        levels_.push_back(v);
        levels_.push_back(-v);
    }
    std::sort(levels_.begin(), levels_.end());
}

FlintFormat::FlintFormat()
{
    const std::array<float, 7> mags = {1, 2, 3, 4, 6, 8, 12};
    levels_.push_back(0.0f);
    for (float m : mags) {
        levels_.push_back(m);
        levels_.push_back(-m);
    }
    std::sort(levels_.begin(), levels_.end());
}

Nf4Format::Nf4Format()
{
    // Exact NF4 constants from the QLoRA reference implementation
    // (bitsandbytes); equal-probability Gaussian quantiles in [-1, 1].
    levels_ = {
        -1.0f, -0.6961928009986877f, -0.5250730514526367f,
        -0.39491748809814453f, -0.28444138169288635f,
        -0.18477343022823334f, -0.09105003625154495f, 0.0f,
        0.07958029955625534f, 0.16093020141124725f, 0.24611230194568634f,
        0.33791524171829224f, 0.44070982933044434f, 0.5626170039176941f,
        0.7229568362236023f, 1.0f,
    };
}

Mxfp4Format::Mxfp4Format()
{
    const std::array<float, 7> mags = {0.5f, 1.0f, 1.5f, 2.0f, 3.0f,
                                       4.0f, 6.0f};
    levels_.push_back(0.0f);
    for (float m : mags) {
        levels_.push_back(m);
        levels_.push_back(-m);
    }
    std::sort(levels_.begin(), levels_.end());
}

float
Mxfp4Format::scaleFor(float absmax) const
{
    if (absmax <= 0.0f)
        return 1.0f;
    // Smallest power of two s with absmax / s <= maxAbsLevel (6.0).
    const float ideal = absmax / maxAbsLevel();
    const float e = std::ceil(std::log2(ideal));
    return std::ldexp(1.0f, static_cast<int>(e));
}

const IntFormat &
int4Format()
{
    static const IntFormat f(4);
    return f;
}

const IntFormat &
int8Format()
{
    static const IntFormat f(8);
    return f;
}

const PotFormat &
pot4Format()
{
    static const PotFormat f;
    return f;
}

const FlintFormat &
flint4Format()
{
    static const FlintFormat f;
    return f;
}

const Nf4Format &
nf4Format()
{
    static const Nf4Format f;
    return f;
}

const Mxfp4Format &
mxfp4Format()
{
    static const Mxfp4Format f;
    return f;
}

std::span<const NumericFormat *const>
antTypeSet()
{
    static const std::array<const NumericFormat *, 3> set = {
        &int4Format(), &flint4Format(), &pot4Format()};
    return {set.data(), set.size()};
}

} // namespace mant
