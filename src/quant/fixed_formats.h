/**
 * @file
 * The fixed (non-MANT) numeric formats the paper compares against:
 * symmetric INT, PoT (power-of-two), ANT flint, QLoRA NF4, and MXFP4
 * elements with an E8M0 power-of-two shared scale.
 */

#ifndef MANT_QUANT_FIXED_FORMATS_H_
#define MANT_QUANT_FIXED_FORMATS_H_

#include <string>
#include <vector>

#include "quant/format.h"

namespace mant {

/**
 * Symmetric integer grid: levels -(2^(b-1)-1) .. (2^(b-1)-1).
 * INT4 covers [-7, 7], INT8 covers [-127, 127].
 */
class IntFormat : public NumericFormat
{
  public:
    explicit IntFormat(int bits);

    std::string_view name() const override { return name_; }
    int bits() const override { return bits_; }
    std::span<const float> levels() const override { return levels_; }

  private:
    int bits_;
    std::string name_;
    std::vector<float> levels_;
};

/**
 * Power-of-two grid (4-bit): {0, ±2^0 .. ±2^6}. One sign-magnitude
 * code is spent on zero, leaving exponents 0..6 — the Laplace-friendly
 * member of ANT's type set.
 */
class PotFormat : public NumericFormat
{
  public:
    PotFormat();

    std::string_view name() const override { return "pot4"; }
    int bits() const override { return 4; }
    std::span<const float> levels() const override { return levels_; }

  private:
    std::vector<float> levels_;
};

/**
 * ANT's flint4: a float-int hybrid whose grid is integer-dense near
 * zero and exponential in the tail — {0, ±1, ±2, ±3, ±4, ±6, ±8, ±12}.
 * (Gaussian-friendly member of ANT's type set.)
 */
class FlintFormat : public NumericFormat
{
  public:
    FlintFormat();

    std::string_view name() const override { return "flint4"; }
    int bits() const override { return 4; }
    std::span<const float> levels() const override { return levels_; }

  private:
    std::vector<float> levels_;
};

/**
 * QLoRA NormalFloat-4: the 16 levels are equal-probability quantiles of
 * a standard Gaussian, normalized to [-1, 1] (exact constants from the
 * QLoRA reference implementation). Note NF4 is asymmetric and includes
 * an exact zero.
 */
class Nf4Format : public NumericFormat
{
  public:
    Nf4Format();

    std::string_view name() const override { return "nf4"; }
    int bits() const override { return 4; }
    std::span<const float> levels() const override { return levels_; }

  private:
    std::vector<float> levels_;
};

/**
 * MXFP4 element grid (FP4 E2M1: {0, ±0.5, ±1, ±1.5, ±2, ±3, ±4, ±6})
 * with the OCP MX restriction that the shared scale is a power of two
 * (E8M0, exponent-only). scaleFor() returns the smallest power of two
 * that avoids clipping the group maximum.
 */
class Mxfp4Format : public NumericFormat
{
  public:
    Mxfp4Format();

    std::string_view name() const override { return "mxfp4"; }
    int bits() const override { return 4; }
    std::span<const float> levels() const override { return levels_; }
    float scaleFor(float absmax) const override;

  private:
    std::vector<float> levels_;
};

/** Shared singleton instances (formats are immutable). */
const IntFormat &int4Format();
const IntFormat &int8Format();
const PotFormat &pot4Format();
const FlintFormat &flint4Format();
const Nf4Format &nf4Format();
const Mxfp4Format &mxfp4Format();

/** ANT's adaptive type set: {int4, flint4, pot4}. */
std::span<const NumericFormat *const> antTypeSet();

} // namespace mant

#endif // MANT_QUANT_FIXED_FORMATS_H_
