#include "quant/format.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/fp16.h"

namespace mant {

int
nearestLevel(std::span<const float> sortedLevels, float x)
{
    if (sortedLevels.empty())
        throw std::invalid_argument("nearestLevel: empty level table");
    const auto it =
        std::lower_bound(sortedLevels.begin(), sortedLevels.end(), x);
    if (it == sortedLevels.begin())
        return 0;
    if (it == sortedLevels.end())
        return static_cast<int>(sortedLevels.size()) - 1;
    const int hi = static_cast<int>(it - sortedLevels.begin());
    const int lo = hi - 1;
    // Ties resolve to the lower level, matching round-half-down argmin.
    return (x - sortedLevels[lo]) <= (sortedLevels[hi] - x) ? lo : hi;
}

float
NumericFormat::scaleFor(float absmax) const
{
    const float ml = maxAbsLevel();
    if (absmax <= 0.0f || ml <= 0.0f)
        return 1.0f;
    return absmax / ml;
}

float
NumericFormat::storedScaleFor(float absmax, bool fp16Scale) const
{
    float scale = scaleFor(absmax);
    if (fp16Scale)
        scale = fp16Round(scale);
    if (scale == 0.0f)
        scale = 1.0f;
    return scale;
}

float
NumericFormat::maxAbsLevel() const
{
    float m = 0.0f;
    for (float v : levels())
        m = std::max(m, std::fabs(v));
    return m;
}

int
NumericFormat::encode(float value, float scale) const
{
    const float normalized = scale != 0.0f ? value / scale : 0.0f;
    return nearestLevel(levels(), normalized);
}

float
NumericFormat::decode(int code, float scale) const
{
    const auto lv = levels();
    if (code < 0 || code >= static_cast<int>(lv.size()))
        throw std::out_of_range("NumericFormat::decode: bad code");
    return lv[static_cast<size_t>(code)] * scale;
}

} // namespace mant
