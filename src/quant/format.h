/**
 * @file
 * Numeric format abstraction for quantization grids.
 *
 * Every fixed data type in the paper's comparison space (INT4/8, PoT,
 * ANT flint, QLoRA NF4, MXFP4 elements, OliVe abfloat, and the MANT
 * family itself) is a finite, symmetric-or-not set of representable
 * levels. A NumericFormat exposes the sorted level set plus the scale
 * rule; encode is nearest-level search, decode is a table lookup.
 */

#ifndef MANT_QUANT_FORMAT_H_
#define MANT_QUANT_FORMAT_H_

#include <span>
#include <string_view>
#include <vector>

namespace mant {

/**
 * A finite quantization grid ("data type").
 *
 * Levels are in *natural* units (e.g. INT4 levels are -7..7); the scale
 * maps real values onto the grid: encode(x) = nearest level to x/scale,
 * decode(c) = levels[c] * scale.
 */
class NumericFormat
{
  public:
    virtual ~NumericFormat() = default;

    /** Human-readable type name, e.g. "int4", "flint4", "mant-a17". */
    virtual std::string_view name() const = 0;

    /** Storage bits per element (the code width, including sign). */
    virtual int bits() const = 0;

    /** Sorted (ascending) representable levels in natural units. */
    virtual std::span<const float> levels() const = 0;

    /**
     * Scale for a group with the given max-abs value. The default is
     * the symmetric rule absmax / maxAbsLevel; formats with restricted
     * scales (MXFP's power-of-two E8M0 scale) override this.
     */
    virtual float scaleFor(float absmax) const;

    /**
     * The scale as the engines store and use it: scaleFor(absmax),
     * rounded through FP16 storage when requested, with all-zero
     * units quantizing against scale 1. This rule is
     * determinism-critical — the adaptive engine and the MANT
     * coefficient search must agree on it bit-for-bit, which is why
     * it lives here and not in each engine.
     */
    float storedScaleFor(float absmax, bool fp16Scale) const;

    /** Largest |level| on the grid. */
    float maxAbsLevel() const;

    /** Index of the level nearest to value/scale (ties to the lower). */
    int encode(float value, float scale) const;

    /** levels()[code] * scale. */
    float decode(int code, float scale) const;

    /** Round-trip a single value through the grid. */
    float
    quantizeValue(float value, float scale) const
    {
        return decode(encode(value, scale), scale);
    }
};

/**
 * Nearest index into a sorted level table — shared helper used by both
 * NumericFormat::encode and the per-group K-means codebooks.
 */
int nearestLevel(std::span<const float> sortedLevels, float x);

} // namespace mant

#endif // MANT_QUANT_FORMAT_H_
