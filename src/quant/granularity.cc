#include "quant/granularity.h"

namespace mant {

int64_t
quantUnitCount(const Tensor &t, const QuantConfig &cfg)
{
    if (t.numel() == 0)
        return 0;
    switch (cfg.gran) {
      case Granularity::PerTensor:
        return 1;
      case Granularity::PerChannel:
        return t.shape().outerCount();
      case Granularity::PerGroup:
      default: {
        const int64_t inner = t.shape().innerDim();
        const int64_t g = cfg.groupSize > 0 ? cfg.groupSize : inner;
        const int64_t per_row = (inner + g - 1) / g;
        return t.shape().outerCount() * per_row;
      }
    }
}

double
metaBitsPerElement(const Tensor &t, const QuantConfig &cfg,
                   int extraBitsPerUnit)
{
    const int64_t units = quantUnitCount(t, cfg);
    const double bits_per_unit = 16.0 + extraBitsPerUnit;
    return bits_per_unit * static_cast<double>(units) /
           static_cast<double>(t.numel());
}

} // namespace mant
