/**
 * @file
 * Quantization granularity machinery.
 *
 * A quantization *unit* is the set of elements that share one scale
 * (and, for adaptive methods, one data type): the whole tensor, one
 * channel (row), or one group of `groupSize` contiguous elements along
 * the inner dimension — the paper's standard configuration.
 */

#ifndef MANT_QUANT_GRANULARITY_H_
#define MANT_QUANT_GRANULARITY_H_

#include <cstdint>
#include <span>

#include "core/parallel.h"
#include "tensor/tensor.h"

namespace mant {

/** Scale-sharing granularity. */
enum class Granularity
{
    PerTensor,
    PerChannel,
    PerGroup,
};

/** Quantization configuration shared by all methods. */
struct QuantConfig
{
    Granularity gran = Granularity::PerGroup;

    /** Group size (contiguous inner-dim elements); used for PerGroup. */
    int64_t groupSize = 64;

    /** Round stored scales through FP16 (models 16-bit metadata). */
    bool fp16Scale = true;
};

/**
 * Metadata overhead in bits per element for a configuration: a 16-bit
 * scale per unit, plus optional extra per-unit bits (e.g. MANT's 8-bit
 * coefficient, a clustering codebook, ...).
 */
double metaBitsPerElement(const Tensor &t, const QuantConfig &cfg,
                          int extraBitsPerUnit);

/** Number of quantization units for a tensor under a configuration. */
int64_t quantUnitCount(const Tensor &t, const QuantConfig &cfg);

/** Storage extent of one quantization unit (row-major contiguous). */
struct QuantUnitRange
{
    int64_t base = 0; ///< offset of the first element
    int64_t len = 0;  ///< number of elements
};

/**
 * Geometry of unit `u` (0 <= u < quantUnitCount). Units are contiguous
 * in row-major storage for all three granularities and are indexed
 * row-major themselves (all groups of row 0, then row 1, ...), so the
 * unit walk is random-access — the parallel engines partition the unit
 * index space and each worker writes a disjoint output range.
 */
inline QuantUnitRange
quantUnitAt(const Tensor &t, const QuantConfig &cfg, int64_t u)
{
    switch (cfg.gran) {
      case Granularity::PerTensor:
        return {0, t.numel()};
      case Granularity::PerChannel: {
        const int64_t inner = t.shape().innerDim();
        return {u * inner, inner};
      }
      case Granularity::PerGroup:
      default: {
        const int64_t inner = t.shape().innerDim();
        // Groups never straddle a channel boundary; groupSize <= 0
        // means one group per row (matching quantUnitCount).
        const int64_t g =
            cfg.groupSize > 0 ? std::min(cfg.groupSize, inner) : inner;
        const int64_t per_row = g > 0 ? (inner + g - 1) / g : 0;
        if (per_row == 0)
            return {0, 0};
        const int64_t r = u / per_row;
        const int64_t g0 = (u % per_row) * g;
        return {r * inner + g0, std::min(g, inner - g0)};
      }
    }
}

/**
 * Invoke fn(std::span<const float> in, std::span<float> out) once per
 * quantization unit, in unit-index order.
 */
template <typename Fn>
void
forEachQuantUnit(const Tensor &in, Tensor &out, const QuantConfig &cfg,
                 Fn &&fn)
{
    const int64_t units = quantUnitCount(in, cfg);
    const float *ip = in.data();
    float *op = out.data();
    for (int64_t u = 0; u < units; ++u) {
        const QuantUnitRange r = quantUnitAt(in, cfg, u);
        fn(std::span<const float>(ip + r.base,
                                  static_cast<size_t>(r.len)),
           std::span<float>(op + r.base, static_cast<size_t>(r.len)));
    }
}

/**
 * Units handed to one parallelForEachQuantUnit chunk. Units are small
 * (typically one 64-element group), so batch enough of them that the
 * scheduling cost disappears; the value is part of the deterministic
 * chunk geometry and must not depend on the thread count.
 */
inline constexpr int64_t kQuantUnitGrain = 32;

/**
 * Parallel sibling of forEachQuantUnit: invoke
 * fn(int64_t chunk, std::span<const float> in, std::span<float> out)
 * once per unit, partitioned into fixed chunks of kQuantUnitGrain
 * units. Each unit writes a disjoint output range; chunk indices are
 * dense in [0, quantUnitChunkCount) so callers can reduce into
 * per-chunk accumulators and merge them in chunk order — bit-identical
 * results at any thread count.
 */
template <typename Fn>
void
parallelForEachQuantUnit(const Tensor &in, Tensor &out,
                         const QuantConfig &cfg, Fn &&fn)
{
    const int64_t units = quantUnitCount(in, cfg);
    const float *ip = in.data();
    float *op = out.data();
    parallelFor(
        0, units, kQuantUnitGrain,
        [&](int64_t ub, int64_t ue, int64_t chunk) {
            for (int64_t u = ub; u < ue; ++u) {
                const QuantUnitRange r = quantUnitAt(in, cfg, u);
                fn(chunk,
                   std::span<const float>(ip + r.base,
                                          static_cast<size_t>(r.len)),
                   std::span<float>(op + r.base,
                                    static_cast<size_t>(r.len)));
            }
        });
}

/** Number of chunks parallelForEachQuantUnit uses for a tensor. */
inline int64_t
quantUnitChunkCount(const Tensor &t, const QuantConfig &cfg)
{
    return parallelChunkCount(0, quantUnitCount(t, cfg),
                              kQuantUnitGrain);
}

} // namespace mant

#endif // MANT_QUANT_GRANULARITY_H_
