/**
 * @file
 * Quantization granularity machinery.
 *
 * A quantization *unit* is the set of elements that share one scale
 * (and, for adaptive methods, one data type): the whole tensor, one
 * channel (row), or one group of `groupSize` contiguous elements along
 * the inner dimension — the paper's standard configuration.
 */

#ifndef MANT_QUANT_GRANULARITY_H_
#define MANT_QUANT_GRANULARITY_H_

#include <cstdint>
#include <span>

#include "tensor/tensor.h"

namespace mant {

/** Scale-sharing granularity. */
enum class Granularity
{
    PerTensor,
    PerChannel,
    PerGroup,
};

/** Quantization configuration shared by all methods. */
struct QuantConfig
{
    Granularity gran = Granularity::PerGroup;

    /** Group size (contiguous inner-dim elements); used for PerGroup. */
    int64_t groupSize = 64;

    /** Round stored scales through FP16 (models 16-bit metadata). */
    bool fp16Scale = true;
};

/**
 * Metadata overhead in bits per element for a configuration: a 16-bit
 * scale per unit, plus optional extra per-unit bits (e.g. MANT's 8-bit
 * coefficient, a clustering codebook, ...).
 */
double metaBitsPerElement(const Tensor &t, const QuantConfig &cfg,
                          int extraBitsPerUnit);

/**
 * Invoke fn(std::span<const float> in, std::span<float> out) once per
 * quantization unit. Units are contiguous in row-major storage for all
 * three granularities, so this is a simple strided walk.
 */
template <typename Fn>
void
forEachQuantUnit(const Tensor &in, Tensor &out, const QuantConfig &cfg,
                 Fn &&fn)
{
    const int64_t total = in.numel();
    const float *ip = in.data();
    float *op = out.data();

    int64_t unit;
    switch (cfg.gran) {
      case Granularity::PerTensor:
        unit = total;
        break;
      case Granularity::PerChannel:
        unit = in.shape().innerDim();
        break;
      case Granularity::PerGroup:
      default:
        unit = cfg.groupSize;
        break;
    }
    if (unit <= 0)
        unit = total;

    if (cfg.gran == Granularity::PerGroup) {
        // Groups never straddle a channel boundary: walk row by row.
        const int64_t inner = in.shape().innerDim();
        const int64_t outer = in.shape().outerCount();
        for (int64_t r = 0; r < outer; ++r) {
            for (int64_t g0 = 0; g0 < inner; g0 += unit) {
                const int64_t len = std::min(unit, inner - g0);
                const int64_t base = r * inner + g0;
                fn(std::span<const float>(ip + base,
                                          static_cast<size_t>(len)),
                   std::span<float>(op + base, static_cast<size_t>(len)));
            }
        }
        return;
    }
    for (int64_t base = 0; base < total; base += unit) {
        const int64_t len = std::min(unit, total - base);
        fn(std::span<const float>(ip + base, static_cast<size_t>(len)),
           std::span<float>(op + base, static_cast<size_t>(len)));
    }
}

/** Number of quantization units for a tensor under a configuration. */
int64_t quantUnitCount(const Tensor &t, const QuantConfig &cfg);

} // namespace mant

#endif // MANT_QUANT_GRANULARITY_H_
