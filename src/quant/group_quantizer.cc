#include "quant/group_quantizer.h"

#include <algorithm>
#include <cmath>

#include "core/simd.h"
#include "tensor/fp16.h"
#include "tensor/stats.h"

namespace mant {

namespace {

/** Quantize one unit with one grid; returns the squared error. */
double
roundUnit(const SimdOps &ops, std::span<const float> in,
          std::span<float> out, const NumericFormat &fmt,
          bool fp16_scale)
{
    const float scale = fmt.storedScaleFor(
        ops.absMax(in.data(), std::ssize(in)), fp16_scale);
    const auto levels = fmt.levels();
    return ops.quantizeUnit(in.data(), out.data(), std::ssize(in),
                            levels.data(),
                            static_cast<int>(levels.size()), scale);
}

} // namespace

void
fillErrorStats(const Tensor &input, const Tensor &output, QuantStats *stats)
{
    if (!stats)
        return;
    stats->mse = mse(input.span(), output.span());
    stats->nmse = nmse(input.span(), output.span());
}

Tensor
quantDequantFixed(const Tensor &input, const NumericFormat &format,
                  const QuantConfig &cfg, QuantStats *stats)
{
    Tensor out(input.shape());
    const SimdOps &ops = simdOps();
    parallelForEachQuantUnit(
        input, out, cfg,
        [&](int64_t, std::span<const float> in, std::span<float> o) {
            roundUnit(ops, in, o, format, cfg.fp16Scale);
        });
    if (stats) {
        stats->unitCount = quantUnitCount(input, cfg);
        stats->metaBits = metaBitsPerElement(input, cfg, 0);
        fillErrorStats(input, out, stats);
    }
    return out;
}

Tensor
quantDequantAdaptive(const Tensor &input,
                     std::span<const NumericFormat *const> formats,
                     const QuantConfig &cfg, QuantStats *stats)
{
    Tensor out(input.shape());

    // When stats are requested, each chunk tallies grid selections
    // into its own row of one flat counter slab; rows are merged in
    // chunk-index order below, so the result is bit-identical at any
    // thread count. Without stats the tally is skipped entirely.
    const size_t n_formats = formats.size();
    std::vector<int64_t> chunk_counts;
    if (stats) {
        chunk_counts.assign(
            static_cast<size_t>(quantUnitChunkCount(input, cfg)) *
                n_formats,
            0);
    }

    const SimdOps &ops = simdOps();
    parallelForEachQuantUnit(
        input, out, cfg,
        [&](int64_t chunk, std::span<const float> in,
            std::span<float> o) {
            // One absmax serves every candidate; unitError returns
            // the same bits quantizeUnit would, so the selection is
            // identical to trial-quantizing into a scratch buffer.
            const float absmax =
                ops.absMax(in.data(), std::ssize(in));
            double best_err = INFINITY;
            int best = 0;
            for (size_t f = 0; f < n_formats; ++f) {
                const auto levels = formats[f]->levels();
                const double err = ops.unitError(
                    in.data(), std::ssize(in), levels.data(),
                    static_cast<int>(levels.size()),
                    formats[f]->storedScaleFor(absmax, cfg.fp16Scale),
                    nullptr);
                if (err < best_err) {
                    best_err = err;
                    best = static_cast<int>(f);
                }
            }
            const NumericFormat &fmt =
                *formats[static_cast<size_t>(best)];
            const auto levels = fmt.levels();
            ops.quantizeUnit(in.data(), o.data(), std::ssize(in),
                             levels.data(),
                             static_cast<int>(levels.size()),
                             fmt.storedScaleFor(absmax,
                                                cfg.fp16Scale));
            if (stats) {
                ++chunk_counts[static_cast<size_t>(chunk) * n_formats +
                               static_cast<size_t>(best)];
            }
        });

    if (stats) {
        std::vector<int64_t> counts(n_formats, 0);
        for (size_t c = 0; c * n_formats < chunk_counts.size(); ++c) {
            for (size_t f = 0; f < n_formats; ++f)
                counts[f] += chunk_counts[c * n_formats + f];
        }
        stats->unitCount = quantUnitCount(input, cfg);
        // ANT-style type selector costs ceil(log2(#types)) bits per unit.
        int sel_bits = 0;
        while ((1 << sel_bits) < static_cast<int>(formats.size()))
            ++sel_bits;
        stats->metaBits = metaBitsPerElement(input, cfg, sel_bits);
        stats->formatCounts = std::move(counts);
        fillErrorStats(input, out, stats);
    }
    return out;
}

namespace {

/**
 * Exact 1-D k-means via interval dynamic programming (clusters of a
 * sorted sequence are contiguous intervals). O(k n^2) — fine for the
 * group sizes in play (n <= 256). Returns sorted centroids.
 */
std::vector<float>
kmeans1dExact(std::span<const float> sorted, int k)
{
    const int n = static_cast<int>(sorted.size());
    const int kk = std::min(k, n);

    // Prefix sums for O(1) interval cost.
    std::vector<double> s(static_cast<size_t>(n) + 1, 0.0);
    std::vector<double> s2(static_cast<size_t>(n) + 1, 0.0);
    for (int i = 0; i < n; ++i) {
        s[static_cast<size_t>(i) + 1] = s[static_cast<size_t>(i)] +
                                        sorted[static_cast<size_t>(i)];
        s2[static_cast<size_t>(i) + 1] =
            s2[static_cast<size_t>(i)] +
            static_cast<double>(sorted[static_cast<size_t>(i)]) *
                sorted[static_cast<size_t>(i)];
    }
    // Within-cluster squared error of sorted[i..j] inclusive.
    auto cost = [&](int i, int j) {
        const double cnt = j - i + 1;
        const double sum = s[static_cast<size_t>(j) + 1] -
                           s[static_cast<size_t>(i)];
        const double sq = s2[static_cast<size_t>(j) + 1] -
                          s2[static_cast<size_t>(i)];
        return sq - sum * sum / cnt;
    };

    constexpr double kInf = 1e300;
    // dp[c][j]: best cost of first j items in c clusters.
    std::vector<std::vector<double>> dp(
        static_cast<size_t>(kk) + 1,
        std::vector<double>(static_cast<size_t>(n) + 1, kInf));
    std::vector<std::vector<int>> split(
        static_cast<size_t>(kk) + 1,
        std::vector<int>(static_cast<size_t>(n) + 1, 0));
    dp[0][0] = 0.0;
    for (int c = 1; c <= kk; ++c) {
        for (int j = c; j <= n; ++j) {
            for (int i = c; i <= j; ++i) {
                const double cand =
                    dp[static_cast<size_t>(c) - 1]
                      [static_cast<size_t>(i) - 1] +
                    cost(i - 1, j - 1);
                if (cand < dp[static_cast<size_t>(c)]
                               [static_cast<size_t>(j)]) {
                    dp[static_cast<size_t>(c)][static_cast<size_t>(j)] =
                        cand;
                    split[static_cast<size_t>(c)]
                         [static_cast<size_t>(j)] = i;
                }
            }
        }
    }
    // Backtrack interval means.
    std::vector<float> centroids(static_cast<size_t>(kk));
    int j = n;
    for (int c = kk; c >= 1; --c) {
        const int i = split[static_cast<size_t>(c)]
                           [static_cast<size_t>(j)];
        const double cnt = j - i + 1;
        const double sum = s[static_cast<size_t>(j)] -
                           s[static_cast<size_t>(i) - 1];
        centroids[static_cast<size_t>(c) - 1] =
            static_cast<float>(sum / cnt);
        j = i - 1;
    }
    return centroids;
}

/** Lloyd's algorithm fallback for large units, quantile init. */
std::vector<float>
kmeans1dLloyd(std::span<const float> sorted, int k, int iters)
{
    const size_t n = sorted.size();
    const int kk = std::min<int>(k, static_cast<int>(n));
    std::vector<float> centroids(static_cast<size_t>(kk));
    for (int c = 0; c < kk; ++c) {
        const size_t idx = static_cast<size_t>(
            (static_cast<double>(c) + 0.5) * static_cast<double>(n) /
            kk);
        centroids[static_cast<size_t>(c)] =
            sorted[std::min(idx, n - 1)];
    }
    std::vector<double> sum(static_cast<size_t>(kk));
    std::vector<int64_t> cnt(static_cast<size_t>(kk));
    for (int it = 0; it < iters; ++it) {
        std::fill(sum.begin(), sum.end(), 0.0);
        std::fill(cnt.begin(), cnt.end(), 0);
        for (float x : sorted) {
            const int c =
                nearestLevel(std::span<const float>(centroids), x);
            sum[static_cast<size_t>(c)] += x;
            ++cnt[static_cast<size_t>(c)];
        }
        bool moved = false;
        for (int c = 0; c < kk; ++c) {
            if (!cnt[static_cast<size_t>(c)])
                continue;
            const float next = static_cast<float>(
                sum[static_cast<size_t>(c)] /
                cnt[static_cast<size_t>(c)]);
            if (next != centroids[static_cast<size_t>(c)]) {
                centroids[static_cast<size_t>(c)] = next;
                moved = true;
            }
        }
        std::sort(centroids.begin(), centroids.end());
        if (!moved)
            break;
    }
    return centroids;
}

} // namespace

Tensor
quantDequantKMeans(const Tensor &input, int k, const QuantConfig &cfg,
                   QuantStats *stats, int lloydIters)
{
    Tensor out(input.shape());
    const SimdOps &ops = simdOps();
    parallelForEachQuantUnit(
        input, out, cfg,
        [&](int64_t, std::span<const float> in, std::span<float> o) {
            // Reused across units on the same thread; fully rewritten
            // per unit, so determinism is unaffected.
            thread_local std::vector<float> sorted;
            const size_t n = in.size();
            sorted.assign(in.begin(), in.end());
            std::sort(sorted.begin(), sorted.end());

            // Exact interval DP for group-sized units; Lloyd's for
            // channel/tensor units where O(k n^2) would be too slow.
            const std::vector<float> centroids =
                n <= 256 ? kmeans1dExact(sorted, k)
                         : kmeans1dLloyd(sorted, k, lloydIters);

            // Snap each value to the nearest centroid; codebook
            // entries are stored in FP16, so the emitted value table
            // is rounded once up front (identical to rounding per
            // element — the assignment still uses the raw centroids).
            thread_local std::vector<float> emitted;
            emitted.assign(centroids.begin(), centroids.end());
            if (cfg.fp16Scale) {
                for (float &v : emitted)
                    v = fp16Round(v);
            }
            ops.mapNearest(in.data(), o.data(),
                           static_cast<int64_t>(n), centroids.data(),
                           static_cast<int>(centroids.size()),
                           emitted.data());
        });

    if (stats) {
        stats->unitCount = quantUnitCount(input, cfg);
        // Codebook overhead: k FP16 entries per unit, minus the scale
        // the other methods also store (the codebook subsumes it).
        stats->metaBits =
            metaBitsPerElement(input, cfg, 16 * (k - 1));
        fillErrorStats(input, out, stats);
    }
    return out;
}

} // namespace mant
