/**
 * @file
 * Quantize-dequantize engines for the accuracy experiments.
 *
 * Three families, matching the paper's taxonomy (Sec. III):
 *  - fixed data type (INT / PoT / flint / NF4 / MXFP4): one grid for
 *    every unit;
 *  - data-type-based adaptive (ANT): per-unit grid chosen from a small
 *    set by quantization MSE;
 *  - clustering-based adaptive ("Ideal", GOBO/Mokey-style): per-unit
 *    K-means codebook — the accuracy-optimal reference of Fig. 2.
 */

#ifndef MANT_QUANT_GROUP_QUANTIZER_H_
#define MANT_QUANT_GROUP_QUANTIZER_H_

#include <vector>

#include "quant/format.h"
#include "quant/granularity.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace mant {

/** Diagnostics returned by the quantize-dequantize engines. */
struct QuantStats
{
    double mse = 0.0;          ///< elementwise MSE vs the input
    double nmse = 0.0;         ///< MSE normalized by input power
    int64_t unitCount = 0;     ///< number of quantization units
    double metaBits = 0.0;     ///< metadata bits per element
    /** For adaptive methods: how often each candidate grid was chosen. */
    std::vector<int64_t> formatCounts;
};

/** Quantize-dequantize with a single fixed grid. */
Tensor quantDequantFixed(const Tensor &input, const NumericFormat &format,
                         const QuantConfig &cfg, QuantStats *stats = nullptr);

/**
 * ANT-style adaptive quantize-dequantize: per unit, pick the grid in
 * `formats` with the smallest quantization MSE, then use it.
 */
Tensor quantDequantAdaptive(const Tensor &input,
                            std::span<const NumericFormat *const> formats,
                            const QuantConfig &cfg,
                            QuantStats *stats = nullptr);

/**
 * Clustering-based ("Ideal") quantize-dequantize: per unit, fit k
 * centroids with Lloyd's algorithm (quantile init) and snap each value
 * to its nearest centroid. Metadata cost is the per-unit codebook,
 * which is what makes this ideal-but-impractical (Sec. III-A).
 *
 * @param k           Number of centroids (16 for 4-bit).
 * @param lloydIters  Lloyd iterations (converges fast from quantiles).
 */
Tensor quantDequantKMeans(const Tensor &input, int k, const QuantConfig &cfg,
                          QuantStats *stats = nullptr, int lloydIters = 10);

/** Fill stats->mse/nmse from the input/output pair. */
void fillErrorStats(const Tensor &input, const Tensor &output,
                    QuantStats *stats);

} // namespace mant

#endif // MANT_QUANT_GROUP_QUANTIZER_H_
