#include "quant/mixed_precision.h"

#include <algorithm>

namespace mant {

double
aggregateNmse(std::span<const LayerError> layers, std::span<const int> bits)
{
    double err = 0.0, weight = 0.0;
    for (size_t i = 0; i < layers.size(); ++i) {
        const double w = static_cast<double>(layers[i].weightCount);
        err += w * (bits[i] >= 8 ? layers[i].nmse8 : layers[i].nmse4);
        weight += w;
    }
    return weight > 0.0 ? err / weight : 0.0;
}

BitAssignment
assignBits(std::span<const LayerError> layers, double budget)
{
    BitAssignment result;
    result.bits.assign(layers.size(), 4);

    double agg = aggregateNmse(layers, result.bits);
    while (agg > budget) {
        // Pick the 4-bit layer with the largest weighted error drop.
        int best = -1;
        double best_gain = 0.0;
        for (size_t i = 0; i < layers.size(); ++i) {
            if (result.bits[i] >= 8)
                continue;
            const double gain =
                static_cast<double>(layers[i].weightCount) *
                (layers[i].nmse4 - layers[i].nmse8);
            if (gain > best_gain) {
                best_gain = gain;
                best = static_cast<int>(i);
            }
        }
        if (best < 0)
            break; // nothing left to promote
        result.bits[static_cast<size_t>(best)] = 8;
        agg = aggregateNmse(layers, result.bits);
    }

    result.aggregateNmse = agg;
    double bit_sum = 0.0, weight = 0.0;
    for (size_t i = 0; i < layers.size(); ++i) {
        const double w = static_cast<double>(layers[i].weightCount);
        bit_sum += w * result.bits[i];
        weight += w;
        if (result.bits[i] >= 8)
            ++result.layersAt8;
    }
    result.avgBits = weight > 0.0 ? bit_sum / weight : 0.0;
    return result;
}

TieredAssignment
assignBitsTiered(std::span<const TieredLayerError> layers, double budget)
{
    TieredAssignment result;
    result.tier.assign(layers.size(), 0);

    auto aggregate = [&]() {
        double err = 0.0, weight = 0.0;
        for (size_t i = 0; i < layers.size(); ++i) {
            const double w =
                static_cast<double>(layers[i].weightCount);
            err += w * layers[i].nmse[static_cast<size_t>(
                result.tier[i])];
            weight += w;
        }
        return weight > 0.0 ? err / weight : 0.0;
    };

    double agg = aggregate();
    while (agg > budget) {
        int best = -1;
        double best_gain = 0.0;
        for (size_t i = 0; i < layers.size(); ++i) {
            const size_t t = static_cast<size_t>(result.tier[i]);
            if (t + 1 >= layers[i].nmse.size())
                continue;
            const double gain =
                static_cast<double>(layers[i].weightCount) *
                (layers[i].nmse[t] - layers[i].nmse[t + 1]);
            if (gain > best_gain) {
                best_gain = gain;
                best = static_cast<int>(i);
            }
        }
        if (best < 0)
            break;
        ++result.tier[static_cast<size_t>(best)];
        agg = aggregate();
    }

    result.aggregateNmse = agg;
    result.bits.resize(layers.size());
    double bit_sum = 0.0, weight = 0.0;
    for (size_t i = 0; i < layers.size(); ++i) {
        result.bits[i] =
            layers[i].bits[static_cast<size_t>(result.tier[i])];
        const double w = static_cast<double>(layers[i].weightCount);
        bit_sum += w * result.bits[i];
        weight += w;
    }
    result.avgBits = weight > 0.0 ? bit_sum / weight : 0.0;
    return result;
}

} // namespace mant
