/**
 * @file
 * Error-budget mixed-precision layer assignment.
 *
 * The paper aligns baseline accelerators' perplexity with MANT by
 * running part of each baseline's layers at 8-bit ("OliVe and Tender
 * utilized 4-8 mixed precision", Sec. VII-A). We reproduce that
 * methodology honestly: given each layer's measured 4-bit and 8-bit
 * quantization error under a method, promote the worst layers to 8-bit
 * until the size-weighted aggregate error meets the target budget
 * (which the benches set to MANT's own aggregate error).
 */

#ifndef MANT_QUANT_MIXED_PRECISION_H_
#define MANT_QUANT_MIXED_PRECISION_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mant {

/** Per-layer quantization error measurements for one method. */
struct LayerError
{
    std::string name;
    double nmse4 = 0.0;  ///< NMSE when the layer runs at 4-bit
    double nmse8 = 0.0;  ///< NMSE when the layer runs at 8-bit
    int64_t weightCount = 0; ///< layer size (weights), for weighting
};

/** Result of the assignment: chosen bit width per layer. */
struct BitAssignment
{
    std::vector<int> bits;   ///< 4 or 8, parallel to the input layers
    double aggregateNmse = 0.0; ///< size-weighted NMSE achieved
    double avgBits = 0.0;    ///< size-weighted average bit width
    int layersAt8 = 0;
};

/** Size-weighted aggregate NMSE for a given bit vector. */
double aggregateNmse(std::span<const LayerError> layers,
                     std::span<const int> bits);

/**
 * Greedy promotion: all layers start at 4-bit; repeatedly promote the
 * layer whose promotion removes the most size-weighted error until the
 * aggregate meets `budget` (or every layer is at 8-bit).
 */
BitAssignment assignBits(std::span<const LayerError> layers, double budget);

/**
 * Multi-tier variant: per-layer NMSE measured at several bit widths
 * (e.g. {4, 8, 16} for BitFusion, which the paper runs in 8- and
 * 16-bit). Promotion moves one layer one tier up per step.
 */
struct TieredLayerError
{
    std::string name;
    std::vector<int> bits;     ///< ascending bit widths
    std::vector<double> nmse;  ///< NMSE at each width (same length)
    int64_t weightCount = 0;
};

struct TieredAssignment
{
    std::vector<int> tier;     ///< chosen tier index per layer
    std::vector<int> bits;     ///< chosen bit width per layer
    double aggregateNmse = 0.0;
    double avgBits = 0.0;
};

TieredAssignment assignBitsTiered(std::span<const TieredLayerError> layers,
                                  double budget);

} // namespace mant

#endif // MANT_QUANT_MIXED_PRECISION_H_
