#include "quant/olive.h"

#include <algorithm>
#include <cmath>

#include "quant/fixed_formats.h"
#include "quant/group_quantizer.h"
#include "tensor/fp16.h"
#include "tensor/stats.h"

namespace mant {

namespace {

/**
 * abfloat magnitudes: E2M1 with a per-unit bias — the grid
 * {1, 1.5, 2, 3, 4, 6, 8, 12} * 2^bias, which keeps outliers within
 * ~±17% relative error while spending only 4 bits.
 */
constexpr float kAbfloatMags[] = {1.0f, 1.5f, 2.0f, 3.0f,
                                  4.0f, 6.0f, 8.0f, 12.0f};

/** Quantize an outlier to the biased E2M1 grid. */
float
abfloatQuantize(float x, int bias)
{
    if (x == 0.0f)
        return 0.0f;
    const float mag = std::fabs(x) * std::ldexp(1.0f, -bias);
    float best = kAbfloatMags[0];
    float best_err = std::fabs(mag - best);
    for (float m : kAbfloatMags) {
        const float err = std::fabs(mag - m);
        if (err < best_err) {
            best_err = err;
            best = m;
        }
    }
    return std::copysign(std::ldexp(best, bias), x);
}

} // namespace

Tensor
quantDequantOlive(const Tensor &input, const OliveConfig &ocfg,
                  const QuantConfig &cfg, QuantStats *stats)
{
    Tensor out(input.shape());
    const int maxq = (1 << (ocfg.bits - 1)) - 1;

    // At 8 bits the integer grid's dynamic range (127:1) covers LLM
    // outlier magnitudes without clipping, so the outlier-victim
    // mechanism is only engaged at narrow widths — consistent with
    // OliVe's near-lossless 8-bit results.
    if (ocfg.bits >= 8) {
        Tensor out8 = quantDequantFixed(input, int8Format(), cfg, stats);
        if (stats)
            stats->metaBits = metaBitsPerElement(input, cfg, 8);
        return out8;
    }

    // Units are independent (the outlier-victim pairing never crosses
    // a unit boundary), so the baseline threads through the same
    // deterministic unit walk as the main engines — benchmark
    // comparisons against MANT stay apples-to-apples.
    parallelForEachQuantUnit(
        input, out, cfg,
        [&](int64_t, std::span<const float> in, std::span<float> o) {
            const size_t n = in.size();

            // Sigma over the unit decides the outlier threshold.
            double sum = 0.0, sum_sq = 0.0;
            float absmax = 0.0f;
            for (float x : in) {
                sum += x;
                sum_sq += static_cast<double>(x) * x;
                absmax = std::max(absmax, std::fabs(x));
            }
            const double mean = sum / static_cast<double>(n);
            const double var =
                std::max(0.0, sum_sq / static_cast<double>(n) - mean * mean);
            const float thresh = static_cast<float>(
                ocfg.outlierSigma * std::sqrt(var));

            // Normal-value scale from the non-outlier max.
            float normal_max = 0.0f;
            for (float x : in) {
                const float a = std::fabs(x);
                if (thresh <= 0.0f || a <= thresh)
                    normal_max = std::max(normal_max, a);
            }
            if (normal_max == 0.0f)
                normal_max = absmax;
            float scale = normal_max / static_cast<float>(maxq);
            if (cfg.fp16Scale)
                scale = fp16Round(scale);
            if (scale == 0.0f)
                scale = 1.0f;

            // abfloat bias: position the grid top (12 * 2^bias) at or
            // above the unit max so no outlier clips.
            int bias = 0;
            if (absmax > 0.0f)
                bias = static_cast<int>(
                    std::ceil(std::log2(absmax / 12.0f)));

            // First pass: integer-quantize everything.
            for (size_t i = 0; i < n; ++i) {
                const float q = std::round(in[i] / scale);
                o[i] = std::clamp(q, static_cast<float>(-maxq),
                                  static_cast<float>(maxq)) * scale;
            }

            // Second pass: outlier-victim pairs. Even/odd neighbours
            // form a pair; one outlier per pair may steal the slot.
            for (size_t p = 0; p + 1 < n + 1; p += 2) {
                const size_t a = p;
                const size_t b = std::min(p + 1, n - 1);
                const bool a_out =
                    thresh > 0.0f && std::fabs(in[a]) > thresh;
                const bool b_out = b != a && thresh > 0.0f &&
                                   std::fabs(in[b]) > thresh;
                if (a_out && b_out) {
                    // Both outliers: protect the larger, the smaller
                    // stays at the clipped integer value.
                    if (std::fabs(in[a]) >= std::fabs(in[b]))
                        o[a] = abfloatQuantize(in[a], bias);
                    else
                        o[b] = abfloatQuantize(in[b], bias);
                } else if (a_out) {
                    o[a] = abfloatQuantize(in[a], bias);
                    if (b != a)
                        o[b] = 0.0f; // victim
                } else if (b_out) {
                    o[b] = abfloatQuantize(in[b], bias);
                    o[a] = 0.0f; // victim
                }
            }
        });

    if (stats) {
        stats->unitCount = quantUnitCount(input, cfg);
        // Scale plus the per-unit abfloat bias byte.
        stats->metaBits = metaBitsPerElement(input, cfg, 8);
        fillErrorStats(input, out, stats);
    }
    return out;
}

} // namespace mant
