/**
 * @file
 * OliVe-style outlier-victim-pair quantization (Guo et al., ISCA'23).
 *
 * OliVe observes that outliers matter but are sparse, and that the
 * value *adjacent* to an outlier (the "victim") can be sacrificed to
 * give the outlier a wider encoding without disturbing the memory
 * layout. Normal values use symmetric INT; an outlier steals its
 * neighbour's slot and is encoded in "abfloat" — here modelled as a
 * sign + 3-bit power-of-two with a per-unit bias that positions the
 * 8-exponent window over the outlier range.
 *
 * Substitution note (DESIGN.md §2): the original abfloat is an adaptive
 * biased float with mantissa; the E3M0+bias model keeps the property
 * that matters for the paper's comparison — outliers survive with
 * coarse relative precision while victims are zeroed — and its failure
 * mode at small group sizes (victim loss outweighs outlier protection,
 * Tbl. V) emerges naturally.
 */

#ifndef MANT_QUANT_OLIVE_H_
#define MANT_QUANT_OLIVE_H_

#include "quant/granularity.h"
#include "quant/group_quantizer.h"
#include "tensor/tensor.h"

namespace mant {

/** OliVe quantization parameters. */
struct OliveConfig
{
    int bits = 4;            ///< normal-value integer width
    double outlierSigma = 4.0; ///< |x| > k*sigma marks an outlier
};

/**
 * Outlier-victim pair quantize-dequantize.
 *
 * Within each quantization unit: normal values are INT-quantized with a
 * scale derived from the non-outlier max; each outlier zeroes its pair
 * partner and is encoded as sign * 2^(bias + e), e in 0..7, with bias
 * chosen per unit to cover the unit's absolute maximum.
 */
Tensor quantDequantOlive(const Tensor &input, const OliveConfig &ocfg,
                         const QuantConfig &cfg, QuantStats *stats = nullptr);

} // namespace mant

#endif // MANT_QUANT_OLIVE_H_
