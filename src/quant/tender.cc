#include "quant/tender.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/parallel.h"
#include "core/simd.h"
#include "tensor/fp16.h"
#include "tensor/stats.h"

namespace mant {

Tensor
quantDequantTender(const Tensor &input, const TenderConfig &tcfg,
                   bool fp16Scale, QuantStats *stats)
{
    const int64_t rows = input.shape().outerCount();
    const int64_t cols = input.shape().innerDim();
    const int maxq = (1 << (tcfg.bits - 1)) - 1;
    Tensor out(input.shape());

    // Per-channel absolute maxima. Channels are independent, so the
    // row partition is deterministic at any thread count.
    const SimdOps &ops = simdOps();
    std::vector<float> chan_max(static_cast<size_t>(rows), 0.0f);
    parallelFor(0, rows, 16, [&](int64_t rb, int64_t re, int64_t) {
        for (int64_t r = rb; r < re; ++r) {
            chan_max[static_cast<size_t>(r)] =
                ops.absMax(input.data() + r * cols, cols);
        }
    });

    // Sort channels by magnitude and split into chunks of equal count —
    // Tender's decomposition step.
    std::vector<int64_t> order(static_cast<size_t>(rows));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
        return chan_max[static_cast<size_t>(a)] <
               chan_max[static_cast<size_t>(b)];
    });

    const int chunks = std::max(1, std::min<int>(tcfg.numChunks,
                                                 static_cast<int>(rows)));
    const int64_t per_chunk = (rows + chunks - 1) / chunks;

    for (int ch = 0; ch < chunks; ++ch) {
        const int64_t c0 = static_cast<int64_t>(ch) * per_chunk;
        const int64_t c1 = std::min<int64_t>(rows, c0 + per_chunk);
        if (c0 >= c1)
            break;

        // Chunk base scale from the chunk's largest channel.
        float chunk_max = 0.0f;
        for (int64_t i = c0; i < c1; ++i)
            chunk_max = std::max(
                chunk_max, chan_max[static_cast<size_t>(
                               order[static_cast<size_t>(i)])]);
        float base = chunk_max / static_cast<float>(maxq);
        if (fp16Scale)
            base = fp16Round(base);
        if (base == 0.0f)
            base = 1.0f;

        // Channels within a chunk share only the (already computed)
        // base scale and write disjoint rows: deterministic at any
        // thread count.
        parallelFor(c0, c1, 4, [&](int64_t ib, int64_t ie, int64_t) {
            for (int64_t i = ib; i < ie; ++i) {
                const int64_t r = order[static_cast<size_t>(i)];
                const float cm = chan_max[static_cast<size_t>(r)];
                // Per-channel shift: how many halvings of the base
                // scale still avoid clipping this channel.
                int shift = 0;
                if (cm > 0.0f) {
                    shift = static_cast<int>(std::floor(
                        std::log2(chunk_max / cm)));
                    shift = std::clamp(shift, 0, tcfg.maxShift);
                }
                const float scale = std::ldexp(base, -shift);
                ops.roundClampDequant(input.data() + r * cols,
                                      out.data() + r * cols, cols,
                                      scale,
                                      static_cast<float>(maxq));
            }
        });
    }

    if (stats) {
        stats->unitCount = chunks;
        // One FP16 base per chunk plus a 3-bit shift per channel.
        stats->metaBits =
            (16.0 * chunks + 3.0 * static_cast<double>(rows)) /
            static_cast<double>(input.numel());
        fillErrorStats(input, out, stats);
    }
    return out;
}

} // namespace mant
