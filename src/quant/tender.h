/**
 * @file
 * Tender-style channel-decomposition quantization (Lee et al., ISCA'24).
 *
 * Tender splits channels into chunks by magnitude, and within a chunk
 * assigns each channel a scale that is the chunk base scale divided by
 * a power of two, so dequantization across channels reduces to shifts
 * folded into accumulation. Outlier channels land in their own chunk
 * with a large base scale, while quiet channels keep fine resolution.
 */

#ifndef MANT_QUANT_TENDER_H_
#define MANT_QUANT_TENDER_H_

#include "quant/granularity.h"
#include "quant/group_quantizer.h"
#include "tensor/tensor.h"

namespace mant {

/** Tender quantization parameters. */
struct TenderConfig
{
    int bits = 4;      ///< integer width
    int numChunks = 8; ///< channel chunks per tensor
    int maxShift = 7;  ///< largest per-channel power-of-two shift
};

/**
 * Tender quantize-dequantize over a rank-2 tensor (rows = channels).
 * Channel granularity is inherent to the method, so there is no
 * QuantConfig: each channel gets scale = chunkBase / 2^shift.
 */
Tensor quantDequantTender(const Tensor &input, const TenderConfig &tcfg,
                          bool fp16Scale = true,
                          QuantStats *stats = nullptr);

} // namespace mant

#endif // MANT_QUANT_TENDER_H_
