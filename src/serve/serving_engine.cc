#include "serve/serving_engine.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mant {

namespace {

/** Greedy pick: first index of the row maximum — the same tie rule as
 *  the single-stream greedyGenerate path, so outputs stay
 *  byte-identical. */
int32_t
argmaxToken(std::span<const float> row)
{
    return static_cast<int32_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
}

} // namespace

ServingEngine::ServingEngine(Transformer &model, ServingConfig cfg)
    : model_(model), cfg_(cfg)
{
    if (cfg_.maxStreams < 1)
        throw std::invalid_argument(
            "ServingEngine: maxStreams must be >= 1");
    // The engine's whole value is the batched-equals-serial
    // determinism contract; activation methods whose statistics span
    // batch rows (Tender's channel decomposition, tensor-wise scales)
    // would make a stream's tokens depend on who shares its batch.
    // Reject them up front rather than serve silently-divergent
    // output. A single-slot engine is exempt: its decode passes are
    // always M = 1, so no foreign rows ever enter the statistics
    // (this keeps greedyGenerate working for the Tender/per-tensor
    // baselines). (The fused path encodes activations per row inside
    // the kernel; ActMethod::None has nothing to quantize.)
    const QuantSetup &setup = model_.setup();
    if (cfg_.maxStreams > 1 && setup.act != ActMethod::None &&
        (setup.act == ActMethod::Tender ||
         setup.actGran == Granularity::PerTensor)) {
        throw std::invalid_argument(
            "ServingEngine: activation setup quantizes across batch "
            "rows; batched decode cannot match serial output "
            "bit-for-bit (see the determinism contract)");
    }
}

RequestId
ServingEngine::submit(GenRequest req)
{
    const int64_t vocab = model_.weights().embedding.shape().dim(0);
    for (const int32_t tok : req.prompt) {
        if (tok < 0 || static_cast<int64_t>(tok) >= vocab) {
            throw std::invalid_argument(
                "ServingEngine::submit: prompt token " +
                std::to_string(tok) + " outside vocab [0, " +
                std::to_string(vocab) + ")");
        }
    }

    const RequestId id = static_cast<RequestId>(requests_.size());
    Request r;
    r.req = std::move(req);
    if (r.req.prompt.empty() || r.req.maxNewTokens <= 0) {
        // Degenerate request: nothing to generate. Completing here
        // keeps the scheduler free of zero-token streams (and mirrors
        // greedyGenerate's clamp of non-positive counts).
        r.state = RequestState::Done;
        requests_.push_back(std::move(r));
        return id;
    }
    requests_.push_back(std::move(r));
    queue_.push_back(id);
    return id;
}

const ServingEngine::Request &
ServingEngine::checkedRequest(RequestId id) const
{
    if (id < 0 || static_cast<size_t>(id) >= requests_.size())
        throw std::out_of_range("ServingEngine: unknown request id " +
                                std::to_string(id));
    return requests_[static_cast<size_t>(id)];
}

RequestState
ServingEngine::state(RequestId id) const
{
    return checkedRequest(id).state;
}

const std::vector<int32_t> &
ServingEngine::output(RequestId id) const
{
    return checkedRequest(id).out;
}

bool
ServingEngine::requestFinished(const Request &r) const
{
    if (static_cast<int64_t>(r.out.size()) >= r.req.maxNewTokens)
        return true;
    return r.req.stopToken >= 0 && !r.out.empty() &&
           r.out.back() == r.req.stopToken;
}

std::unique_ptr<StreamContext>
ServingEngine::acquireContext()
{
    if (pool_.empty())
        return std::make_unique<StreamContext>();
    auto ctx = std::move(pool_.back());
    pool_.pop_back();
    return ctx;
}

void
ServingEngine::recycleContext(std::unique_ptr<StreamContext> ctx)
{
    // Drop the cached rows now so a parked slot holds no stale
    // generation state; capacity stays with the context (initStream
    // resets matching contexts in place).
    model_.initStream(*ctx);
    pool_.push_back(std::move(ctx));
}

bool
ServingEngine::admit(RequestId id)
{
    Request &r = requests_[static_cast<size_t>(id)];
    auto ctx = acquireContext();
    const Tensor logits = model_.prefill(*ctx, r.req.prompt);
    ++stats_.prefills;
    stats_.prefillTokens +=
        static_cast<int64_t>(r.req.prompt.size());

    const int32_t first =
        argmaxToken(logits.row(logits.shape().dim(0) - 1));
    r.out.push_back(first);
    if (requestFinished(r)) {
        r.state = RequestState::Done;
        recycleContext(std::move(ctx));
        return false;
    }
    r.state = RequestState::Active;
    active_.push_back({id, std::move(ctx), first});
    return true;
}

bool
ServingEngine::step()
{
    // Admission: fill free decode slots in submission order. Each
    // admission runs the request's prefill (a single M = promptLen
    // pass on its own stream) and emits the first greedy token.
    while (!queue_.empty() &&
           static_cast<int64_t>(active_.size()) < cfg_.maxStreams) {
        const RequestId id = queue_.front();
        queue_.pop_front();
        admit(id);
    }
    if (active_.empty())
        return !idle();
    ++stats_.steps;

    // One batched decode pass over every active stream: each stream's
    // last token goes in as one batch row, sharing a single activation
    // quantization and the model's pooled scratch.
    std::vector<int32_t> tokens;
    std::vector<StreamContext *> streams;
    tokens.reserve(active_.size());
    streams.reserve(active_.size());
    for (const ActiveStream &a : active_) {
        tokens.push_back(a.lastToken);
        streams.push_back(a.ctx.get());
    }
    const Tensor logits = model_.decodeBatch(tokens, streams);
    ++stats_.decodeBatches;
    stats_.decodedTokens += static_cast<int64_t>(active_.size());
    stats_.peakBatch = std::max(
        stats_.peakBatch, static_cast<int64_t>(active_.size()));

    for (size_t r = 0; r < active_.size(); ++r) {
        const int32_t next =
            argmaxToken(logits.row(static_cast<int64_t>(r)));
        active_[r].lastToken = next;
        requests_[static_cast<size_t>(active_[r].id)].out.push_back(
            next);
    }

    // Retire finished streams (order-stable so the surviving batch
    // composition is reproducible run to run).
    size_t w = 0;
    for (size_t r = 0; r < active_.size(); ++r) {
        Request &req = requests_[static_cast<size_t>(active_[r].id)];
        if (requestFinished(req)) {
            req.state = RequestState::Done;
            recycleContext(std::move(active_[r].ctx));
        } else {
            if (w != r)
                active_[w] = std::move(active_[r]);
            ++w;
        }
    }
    active_.resize(w);
    return !idle();
}

void
ServingEngine::run()
{
    while (step()) {
    }
}

} // namespace mant
