#include "serve/serving_engine.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/kv_panels.h"
#include "model/config.h"
#include "model/model_file.h"

namespace mant {

namespace {

/** Greedy pick: first index of the row maximum — the same tie rule as
 *  the single-stream greedyGenerate path, so outputs stay
 *  byte-identical. */
int32_t
argmaxToken(std::span<const float> row)
{
    return static_cast<int32_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
}

} // namespace

ServingEngine::ServingEngine(Transformer &model, ServingConfig cfg)
    : model_(model), cfg_(cfg)
{
    if (cfg_.maxStreams < 1)
        throw std::invalid_argument(
            "ServingEngine: maxStreams must be >= 1");
    if (cfg_.prefillChunkTokens < 0 || cfg_.pagePoolPages < 0 ||
        cfg_.pageBytes < 0 || cfg_.freePageWatermark < 0 ||
        cfg_.agingSteps < 0)
        throw std::invalid_argument(
            "ServingEngine: negative scheduler/pool parameter");
    const FaultInjectionConfig &f = cfg_.faults;
    if (f.failNthAlloc < 0 || f.failRoundsBegin < 0 ||
        f.failRoundsEnd < 0 || f.failPeriod < 0 || f.failLen < 0)
        throw std::invalid_argument(
            "ServingEngine: negative fault-injection parameter");
    if (f.failLen > 0 && f.failPeriod == 0)
        throw std::invalid_argument(
            "ServingEngine: faults.failLen requires failPeriod");
    if (f.failPeriod > 0 && f.failLen >= f.failPeriod)
        throw std::invalid_argument(
            "ServingEngine: faults.failLen must leave fault-free "
            "rounds in each period (failLen < failPeriod)");
    // The engine's whole value is the batched-equals-serial
    // determinism contract; activation methods whose statistics span
    // batch rows (Tender's channel decomposition, tensor-wise scales)
    // would make a stream's tokens depend on who shares its batch.
    // Reject them up front rather than serve silently-divergent
    // output. A single-slot engine is exempt: its decode passes are
    // always M = 1, so no foreign rows ever enter the statistics
    // (this keeps greedyGenerate working for the Tender/per-tensor
    // baselines). (The fused path encodes activations per row inside
    // the kernel; ActMethod::None has nothing to quantize.)
    const QuantSetup &setup = model_.setup();
    if (cfg_.maxStreams > 1 && setup.act != ActMethod::None &&
        (setup.act == ActMethod::Tender ||
         setup.actGran == Granularity::PerTensor)) {
        throw std::invalid_argument(
            "ServingEngine: activation setup quantizes across batch "
            "rows; batched decode cannot match serial output "
            "bit-for-bit (see the determinism contract)");
    }

    // Fused-attention models keep their KV codes in panel blocks, so
    // every stream's storage can come from one shared page pool. A
    // page is sized to hold a whole number of K panels AND of V
    // windows (auto: the larger of the two block sizes — the smaller
    // store then packs several blocks per page).
    if (setup.fusedAttention) {
        const ArchDims &d = model_.weights().profile.simDims;
        const int64_t vWindow =
            setup.kvGroup > 0 ? setup.kvGroup : d.headDim();
        const int64_t blockBytes = std::max(
            KPanelStore::blockBytesFor(d.headDim(), setup.kvGroup),
            VPanelStore::blockBytesFor(d.headDim(), vWindow));
        int64_t pageBytes = cfg_.pageBytes;
        if (pageBytes == 0) {
            pageBytes = blockBytes;
        } else if (pageBytes < blockBytes) {
            throw std::invalid_argument(
                "ServingEngine: pageBytes " +
                std::to_string(pageBytes) +
                " smaller than the largest KV panel block (" +
                std::to_string(blockBytes) + " bytes)");
        }
        pagePool_ =
            std::make_unique<KvPageAllocator>(pageBytes,
                                              cfg_.pagePoolPages);
    }
}

namespace {

Transformer &
requireModel(const std::shared_ptr<LoadedModel> &m)
{
    if (!m)
        throw std::invalid_argument(
            "ServingEngine: null loaded model");
    return m->transformer();
}

} // namespace

ServingEngine::ServingEngine(std::shared_ptr<LoadedModel> model,
                             ServingConfig cfg)
    : ServingEngine(requireModel(model), cfg)
{
    ownedModel_ = std::move(model);
}

RequestId
ServingEngine::submit(GenRequest req)
{
    const int64_t vocab = model_.weights().embedding.shape().dim(0);
    for (const int32_t tok : req.prompt) {
        if (tok < 0 || static_cast<int64_t>(tok) >= vocab) {
            throw std::invalid_argument(
                "ServingEngine::submit: prompt token " +
                std::to_string(tok) + " outside vocab [0, " +
                std::to_string(vocab) + ")");
        }
    }
    const int64_t promptLen = static_cast<int64_t>(req.prompt.size());
    if (req.tokenBudget < 0)
        throw std::invalid_argument(
            "ServingEngine::submit: negative token budget");
    if (req.deadlineSteps < 0)
        throw std::invalid_argument(
            "ServingEngine::submit: negative deadlineSteps");
    if (req.tokenBudget > 0 && promptLen > req.tokenBudget) {
        // Contract violation, not backpressure: the prompt alone can
        // never fit, so no amount of waiting makes this admissible.
        throw std::invalid_argument(
            "ServingEngine::submit: prompt length " +
            std::to_string(promptLen) + " exceeds token budget " +
            std::to_string(req.tokenBudget));
    }

    const RequestId id = static_cast<RequestId>(requests_.size());
    Request r;
    r.req = std::move(req);
    r.effMaxNew = r.req.maxNewTokens;
    if (r.req.tokenBudget > 0)
        r.effMaxNew =
            std::min(r.effMaxNew, r.req.tokenBudget - promptLen);
    r.enqueueRound = rounds_;
    if (r.req.deadlineSteps > 0)
        r.deadlineRound = rounds_ + r.req.deadlineSteps;
    if (r.req.prompt.empty() || r.effMaxNew <= 0) {
        // Degenerate request: nothing to generate. Completing here
        // keeps the scheduler free of zero-token streams (and mirrors
        // greedyGenerate's clamp of non-positive counts).
        r.state = RequestState::Done;
        requests_.push_back(std::move(r));
        return id;
    }
    requests_.push_back(std::move(r));
    queue_.push_back(id);
    return id;
}

const ServingEngine::Request &
ServingEngine::checkedRequest(RequestId id) const
{
    if (id < 0 || static_cast<size_t>(id) >= requests_.size())
        throw std::out_of_range("ServingEngine: unknown request id " +
                                std::to_string(id));
    return requests_[static_cast<size_t>(id)];
}

RequestState
ServingEngine::state(RequestId id) const
{
    return checkedRequest(id).state;
}

const RequestError &
ServingEngine::error(RequestId id) const
{
    return checkedRequest(id).error;
}

const std::vector<int32_t> &
ServingEngine::output(RequestId id) const
{
    return checkedRequest(id).out;
}

bool
ServingEngine::cancel(RequestId id)
{
    checkedRequest(id);
    Request &r = requests_[static_cast<size_t>(id)];
    if (isTerminal(r.state))
        return false;
    if (r.state == RequestState::Active) {
        for (size_t i = 0; i < active_.size(); ++i) {
            if (live(active_[i]) && active_[i].id == id) {
                recycleContext(std::move(active_[i].ctx));
                active_.erase(active_.begin() +
                              static_cast<int64_t>(i));
                break;
            }
        }
    } else {
        // Queued or Preempted: just leave the queue.
        const auto it = std::find(queue_.begin(), queue_.end(), id);
        if (it != queue_.end())
            queue_.erase(it);
    }
    r.state = RequestState::Cancelled;
    ++stats_.cancelled;
    return true;
}

bool
ServingEngine::requestFinished(const Request &r) const
{
    if (static_cast<int64_t>(r.out.size()) >= r.effMaxNew)
        return true;
    return r.req.stopToken >= 0 && !r.out.empty() &&
           r.out.back() == r.req.stopToken;
}

int64_t
ServingEngine::liveSlots() const
{
    int64_t n = 0;
    for (const ActiveStream &a : active_)
        if (live(a))
            ++n;
    return n;
}

std::unique_ptr<StreamContext>
ServingEngine::acquireContext()
{
    std::unique_ptr<StreamContext> ctx;
    if (pool_.empty()) {
        ctx = std::make_unique<StreamContext>();
    } else {
        ctx = std::move(pool_.back());
        pool_.pop_back();
    }
    // Bind to the shared page pool (revives a retired parked slot;
    // matching geometry resets in place without reallocating).
    model_.initStream(*ctx, pagePool_.get());
    return ctx;
}

void
ServingEngine::recycleContext(std::unique_ptr<StreamContext> ctx)
{
    // Retire rather than reset: every page goes back to the pool the
    // moment the stream finishes — before the next round's watermark
    // check — and a parked slot's caches reject stray appends until
    // acquireContext() revives them. Retirement is also how faulted
    // streams are cleaned up: a KvPoolExhausted mid-forward leaves
    // caches partially advanced, and retire() discards that partial
    // state wholesale (the replay prefill re-derives it exactly).
    model_.retireStream(*ctx);
    pool_.push_back(std::move(ctx));
}

int64_t
ServingEngine::chunkLenFor(const ActiveStream &a) const
{
    const Request &r = requests_[static_cast<size_t>(a.id)];
    const std::vector<int32_t> &feed = feedTokens(r);
    const int64_t total = static_cast<int64_t>(feed.size());
    const int64_t chunk =
        cfg_.prefillChunkTokens > 0 ? cfg_.prefillChunkTokens : total;
    return std::min(chunk, total - a.promptPos);
}

int64_t
ServingEngine::feedChunk(ActiveStream &a)
{
    Request &r = requests_[static_cast<size_t>(a.id)];
    const std::vector<int32_t> &feed = feedTokens(r);
    const int64_t total = static_cast<int64_t>(feed.size());
    const int64_t len = chunkLenFor(a);
    const Tensor logits = model_.prefillChunk(
        *a.ctx, std::span<const int32_t>(feed.data() + a.promptPos,
                                         static_cast<size_t>(len)));
    a.promptPos += len;
    ++stats_.prefillChunks;
    if (a.promptPos == total) {
        a.prefillDone = true;
        if (!r.prefillCounted) {
            // Count each request's prefill once, however many times
            // eviction re-runs it (recomputedTokens carries the
            // replay cost).
            r.prefillCounted = true;
            ++stats_.prefills;
            stats_.prefillTokens += total;
        }
        if (!r.replay.empty()) {
            // Replay complete: the stream's KV state now equals what
            // it held at eviction (determinism contract), so decode
            // resumes from the interrupted token — no new token is
            // emitted, out already ends with resumeToken. The final
            // row's argmax MUST reproduce it; assert the contract.
            assert(argmaxToken(
                       logits.row(logits.shape().dim(0) - 1)) ==
                       r.resumeToken &&
                   "replay diverged from the evicted stream");
            a.lastToken = r.resumeToken;
            r.replay.clear();
            r.replay.shrink_to_fit();
        } else {
            const int32_t first =
                argmaxToken(logits.row(logits.shape().dim(0) - 1));
            a.lastToken = first;
            r.out.push_back(first);
        }
    }
    return len;
}

ServingEngine::AdmitResult
ServingEngine::admit(RequestId id, int64_t &fedTokens)
{
    Request &r = requests_[static_cast<size_t>(id)];
    ActiveStream a;
    a.id = id;
    a.ctx = acquireContext();
    if (pagePool_) {
        const int64_t need =
            model_.pagesNeededForRows(*a.ctx, chunkLenFor(a));
        if (pagePool_->freePages() < need) {
            recycleContext(std::move(a.ctx));
            if (liveSlots() == 0) {
                // Forward progress: nothing is running, so no
                // retirement can ever free a page — the first chunk
                // alone exceeds the whole pool. Infeasible, not
                // backpressure.
                r.state = RequestState::Failed;
                r.error = {RequestError::Kind::PoolExhausted,
                           "first prefill chunk needs " +
                               std::to_string(need) +
                               " pages, more than the whole pool"};
                ++stats_.failed;
                return AdmitResult::Terminal;
            }
            // Admission never evicts running streams on behalf of a
            // queued request; it waits for retirements instead.
            return AdmitResult::Deferred;
        }
    }
    try {
        fedTokens += feedChunk(a);
    } catch (const KvFaultInjected &) {
        // Injected fault mid-admission: the half-fed stream's caches
        // are indeterminate — retire them and leave the request
        // queued; the storm window is round-bounded, so a later
        // round's retry succeeds.
        recycleContext(std::move(a.ctx));
        stats_.recomputedTokens += a.promptPos;
        return AdmitResult::Faulted;
    } catch (const KvPoolExhausted &e) {
        recycleContext(std::move(a.ctx));
        stats_.recomputedTokens += a.promptPos;
        if (liveSlots() == 0) {
            // Genuine exhaustion with nothing evictable: retrying
            // would re-claim the same pages. Fail this request alone.
            r.state = RequestState::Failed;
            r.error = {RequestError::Kind::PoolExhausted, e.what()};
            ++stats_.failed;
            return AdmitResult::Terminal;
        }
        return AdmitResult::Faulted;
    }
    if (a.prefillDone && requestFinished(r)) {
        r.state = RequestState::Done;
        recycleContext(std::move(a.ctx));
        return AdmitResult::Terminal;
    }
    r.state = RequestState::Active;
    active_.push_back(std::move(a));
    return AdmitResult::Admitted;
}

int64_t
ServingEngine::pickQueued() const
{
    if (queue_.empty())
        return -1;
    int64_t best = 0;
    int64_t bestPri = std::numeric_limits<int64_t>::min();
    for (size_t i = 0; i < queue_.size(); ++i) {
        const Request &r = requests_[static_cast<size_t>(queue_[i])];
        int64_t pri = r.req.priority;
        if (cfg_.agingSteps > 0)
            pri += (rounds_ - r.enqueueRound) / cfg_.agingSteps;
        // Strict > keeps FIFO order among equal effective priorities.
        if (pri > bestPri) {
            best = static_cast<int64_t>(i);
            bestPri = pri;
        }
    }
    return best;
}

bool
ServingEngine::deferAdmission() const
{
    if (!pagePool_ || cfg_.freePageWatermark <= 0)
        return false;
    // Forward progress: an engine with nothing running always admits
    // one stream, whatever the pool says — deferring then would
    // livelock (no retirement can ever refill the free list).
    if (active_.empty())
        return false;
    return pagePool_->freePages() < cfg_.freePageWatermark;
}

int64_t
ServingEngine::pickVictim(int64_t protect) const
{
    int64_t best = -1;
    int64_t bestPri = std::numeric_limits<int64_t>::max();
    for (size_t i = 0; i < active_.size(); ++i) {
        if (static_cast<int64_t>(i) == protect || !live(active_[i]))
            continue;
        const Request &r =
            requests_[static_cast<size_t>(active_[i].id)];
        // Never preempt a finished stream: it is about to retire and
        // return its pages anyway, and re-queueing it would replay
        // work whose output is already complete.
        if (active_[i].prefillDone && requestFinished(r))
            continue;
        const int64_t pri = r.req.priority;
        // <= so the scan keeps the LAST (youngest-admitted) stream
        // among equal priorities — active_ is admission-ordered and
        // compaction is order-stable, so "youngest" is deterministic.
        if (pri <= bestPri) {
            best = static_cast<int64_t>(i);
            bestPri = pri;
        }
    }
    return best;
}

void
ServingEngine::evictSlot(size_t slot)
{
    ActiveStream &a = active_[slot];
    const RequestId id = a.id;
    Request &r = requests_[static_cast<size_t>(id)];
    // Everything the cache holds — its consistent position — is what
    // the replay prefill will recompute. (A fault mid-forward never
    // advanced the position, so partial appends are not counted: they
    // are discarded, not recomputed.)
    stats_.recomputedTokens += a.ctx->position();
    const size_t k = r.out.size();
    r.replay.clear();
    if (k > 0) {
        // Replay = prompt ++ out[0..k-2]; out[k-1] was the pending
        // decode input when the eviction hit, so it resumes as
        // lastToken once the replay prefill completes.
        const std::vector<int32_t> &prompt = r.req.prompt;
        r.replay.reserve(prompt.size() + k - 1);
        r.replay.insert(r.replay.end(), prompt.begin(), prompt.end());
        r.replay.insert(r.replay.end(), r.out.begin(),
                        r.out.end() - 1);
        r.resumeToken = r.out.back();
    }
    r.state = RequestState::Preempted;
    recycleContext(std::move(a.ctx));
    // Front of the queue: among equal effective priorities the victim
    // re-admits before later arrivals (it also keeps its original
    // enqueueRound, so aging works in its favor).
    queue_.push_front(id);
    a.id = -1;
    ++stats_.evictions;
}

void
ServingEngine::failSlot(size_t slot, RequestError err)
{
    ActiveStream &a = active_[slot];
    Request &r = requests_[static_cast<size_t>(a.id)];
    r.state = RequestState::Failed;
    r.error = std::move(err);
    ++stats_.failed;
    recycleContext(std::move(a.ctx));
    a.id = -1;
}

bool
ServingEngine::reserveOrEvict(size_t slot, int64_t pages)
{
    if (!pagePool_)
        return true;
    while (pagePool_->freePages() < pages) {
        const int64_t victim =
            pickVictim(static_cast<int64_t>(slot));
        if (victim < 0)
            return false;
        evictSlot(static_cast<size_t>(victim));
    }
    return true;
}

void
ServingEngine::handleStreamFault(size_t slot,
                                 const KvPoolExhausted &e,
                                 bool injected)
{
    if (injected) {
        // Injected faults say nothing about real pressure — always
        // preempt and retry (the fault windows are round-bounded).
        evictSlot(slot);
        return;
    }
    // Genuine exhaustion despite the up-front reservation (defense in
    // depth): retrying helps only while other streams hold
    // reclaimable pages.
    bool othersLive = false;
    for (size_t i = 0; i < active_.size(); ++i) {
        if (i != slot && live(active_[i])) {
            othersLive = true;
            break;
        }
    }
    if (othersLive)
        evictSlot(slot);
    else
        failSlot(slot,
                 {RequestError::Kind::PoolExhausted, e.what()});
}

void
ServingEngine::compactSlots()
{
    size_t w = 0;
    for (size_t i = 0; i < active_.size(); ++i) {
        if (!live(active_[i]))
            continue; // evicted / failed / expired slot
        Request &r = requests_[static_cast<size_t>(active_[i].id)];
        if (active_[i].prefillDone && requestFinished(r)) {
            r.state = RequestState::Done;
            recycleContext(std::move(active_[i].ctx));
            continue;
        }
        if (w != i)
            active_[w] = std::move(active_[i]);
        ++w;
    }
    active_.resize(w);
}

void
ServingEngine::notePoolPressure()
{
    if (pagePool_)
        stats_.peakPagesInUse = pagePool_->peakInUsePages();
}

void
ServingEngine::armFaultPlan()
{
    if (!pagePool_)
        return;
    const FaultInjectionConfig &f = cfg_.faults;
    KvFaultPlan plan;
    plan.failAtAttempt = f.failNthAlloc;
    plan.failAll =
        (rounds_ >= f.failRoundsBegin && rounds_ < f.failRoundsEnd) ||
        (f.failPeriod > 0 && rounds_ % f.failPeriod < f.failLen);
    pagePool_->setFaultPlan(plan);
}

void
ServingEngine::expireOverdue()
{
    for (auto it = queue_.begin(); it != queue_.end();) {
        Request &r = requests_[static_cast<size_t>(*it)];
        if (r.deadlineRound > 0 && rounds_ > r.deadlineRound) {
            r.state = RequestState::Expired;
            ++stats_.expired;
            it = queue_.erase(it);
        } else {
            ++it;
        }
    }
    for (ActiveStream &a : active_) {
        if (!live(a))
            continue;
        Request &r = requests_[static_cast<size_t>(a.id)];
        if (r.deadlineRound > 0 && rounds_ > r.deadlineRound) {
            r.state = RequestState::Expired;
            ++stats_.expired;
            recycleContext(std::move(a.ctx));
            a.id = -1;
        }
    }
}

bool
ServingEngine::step()
{
    ++rounds_;
    armFaultPlan();
    expireOverdue();
    int64_t fedTokens = 0;

    // Phase 1: advance in-flight chunked prefills, one chunk per
    // stream per round, so long prompts interleave with decode instead
    // of stalling it. Each chunk's exact page needs are reserved
    // first — preempting victims to make room — so a bounded pool
    // surfaces as scheduling, not as an exception out of a
    // half-advanced forward pass; the try/catch is the backstop for
    // injected faults (and any reservation-arithmetic bug).
    for (size_t i = 0; i < active_.size(); ++i) {
        ActiveStream &a = active_[i];
        if (!live(a) || a.prefillDone)
            continue;
        if (pagePool_) {
            const int64_t need =
                model_.pagesNeededForRows(*a.ctx, chunkLenFor(a));
            if (!reserveOrEvict(i, need)) {
                failSlot(i,
                         {RequestError::Kind::PoolExhausted,
                          "prefill chunk needs " +
                              std::to_string(need) +
                              " pages, more than the whole pool"});
                continue;
            }
        }
        try {
            fedTokens += feedChunk(a);
        } catch (const KvFaultInjected &e) {
            handleStreamFault(i, e, /*injected=*/true);
        } catch (const KvPoolExhausted &e) {
            handleStreamFault(i, e, /*injected=*/false);
        }
    }
    // Retire streams whose prompt completion finished them (stop-token
    // first token, 1-token caps) and drop evicted/failed slots, so
    // their pages are reusable before admission.
    compactSlots();

    // Phase 2: admission. Highest effective priority first (FIFO
    // among equals, aged per agingSteps); deferred wholesale when the
    // pool's free pages sit below the watermark or cannot cover the
    // candidate's first chunk. A fault-stormed admission stops trying
    // for the round (retrying within the storm window cannot
    // succeed).
    while (!queue_.empty() &&
           static_cast<int64_t>(active_.size()) < cfg_.maxStreams) {
        if (deferAdmission()) {
            ++stats_.admissionDeferrals;
            break;
        }
        const int64_t pick = pickQueued();
        const RequestId id = queue_[static_cast<size_t>(pick)];
        const AdmitResult res = admit(id, fedTokens);
        if (res == AdmitResult::Deferred) {
            ++stats_.admissionDeferrals;
            break;
        }
        if (res == AdmitResult::Faulted)
            break;
        queue_.erase(queue_.begin() + pick);
    }
    stats_.maxPrefillTokensPerStep =
        std::max(stats_.maxPrefillTokensPerStep, fedTokens);

    // Phase 3: one batched decode pass over every fully-prefilled
    // stream. First reserve the batch's page needs as a whole (every
    // row may claim mid-pass); while they do not fit, shed load —
    // lowest-priority victim first, whether it is in the batch or
    // still prefilling. A lone stream whose own decode claim exceeds
    // the pool can never run: fail it, keep the engine alive.
    if (pagePool_) {
        while (true) {
            int64_t need = 0;
            for (const ActiveStream &a : active_)
                if (live(a) && a.prefillDone)
                    need += model_.pagesNeededForRows(*a.ctx, 1);
            if (need == 0 || pagePool_->freePages() >= need)
                break;
            if (liveSlots() <= 1) {
                for (size_t i = 0; i < active_.size(); ++i) {
                    if (live(active_[i])) {
                        failSlot(
                            i,
                            {RequestError::Kind::PoolExhausted,
                             "decode step needs more pages than the "
                             "whole pool"});
                        break;
                    }
                }
                break;
            }
            evictSlot(static_cast<size_t>(pickVictim(-1)));
        }
    }

    std::vector<int32_t> tokens;
    std::vector<StreamContext *> streams;
    std::vector<size_t> rowSlot;
    tokens.reserve(active_.size());
    streams.reserve(active_.size());
    rowSlot.reserve(active_.size());
    for (size_t i = 0; i < active_.size(); ++i) {
        if (!live(active_[i]) || !active_[i].prefillDone)
            continue;
        tokens.push_back(active_[i].lastToken);
        streams.push_back(active_[i].ctx.get());
        rowSlot.push_back(i);
    }
    if (tokens.empty()) {
        compactSlots();
        notePoolPressure();
        return !idle();
    }
    ++stats_.steps;
    std::optional<Tensor> logits;
    try {
        logits = model_.decodeBatch(tokens, streams);
    } catch (const KvPoolExhausted &) {
        // A claim failure mid-pass leaves EVERY batch row's cache
        // potentially half-advanced (K appended for some layers,
        // position not moved) — preempt the whole batch; each
        // stream's replay re-derives its state byte-identically.
        for (const size_t slot : rowSlot)
            evictSlot(slot);
        compactSlots();
        notePoolPressure();
        return !idle();
    }
    ++stats_.decodeBatches;
    stats_.decodedTokens += static_cast<int64_t>(tokens.size());
    stats_.peakBatch = std::max(stats_.peakBatch,
                                static_cast<int64_t>(tokens.size()));

    for (size_t r = 0; r < rowSlot.size(); ++r) {
        const int32_t next =
            argmaxToken(logits->row(static_cast<int64_t>(r)));
        ActiveStream &a = active_[rowSlot[r]];
        a.lastToken = next;
        requests_[static_cast<size_t>(a.id)].out.push_back(next);
    }

    // Retire finished streams (order-stable so the surviving batch
    // composition is reproducible run to run).
    compactSlots();
    notePoolPressure();
    return !idle();
}

void
ServingEngine::run()
{
    while (step()) {
    }
}

} // namespace mant
