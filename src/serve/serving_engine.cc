#include "serve/serving_engine.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/kv_panels.h"
#include "model/config.h"

namespace mant {

namespace {

/** Greedy pick: first index of the row maximum — the same tie rule as
 *  the single-stream greedyGenerate path, so outputs stay
 *  byte-identical. */
int32_t
argmaxToken(std::span<const float> row)
{
    return static_cast<int32_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
}

} // namespace

ServingEngine::ServingEngine(Transformer &model, ServingConfig cfg)
    : model_(model), cfg_(cfg)
{
    if (cfg_.maxStreams < 1)
        throw std::invalid_argument(
            "ServingEngine: maxStreams must be >= 1");
    if (cfg_.prefillChunkTokens < 0 || cfg_.pagePoolPages < 0 ||
        cfg_.pageBytes < 0 || cfg_.freePageWatermark < 0 ||
        cfg_.agingSteps < 0)
        throw std::invalid_argument(
            "ServingEngine: negative scheduler/pool parameter");
    // The engine's whole value is the batched-equals-serial
    // determinism contract; activation methods whose statistics span
    // batch rows (Tender's channel decomposition, tensor-wise scales)
    // would make a stream's tokens depend on who shares its batch.
    // Reject them up front rather than serve silently-divergent
    // output. A single-slot engine is exempt: its decode passes are
    // always M = 1, so no foreign rows ever enter the statistics
    // (this keeps greedyGenerate working for the Tender/per-tensor
    // baselines). (The fused path encodes activations per row inside
    // the kernel; ActMethod::None has nothing to quantize.)
    const QuantSetup &setup = model_.setup();
    if (cfg_.maxStreams > 1 && setup.act != ActMethod::None &&
        (setup.act == ActMethod::Tender ||
         setup.actGran == Granularity::PerTensor)) {
        throw std::invalid_argument(
            "ServingEngine: activation setup quantizes across batch "
            "rows; batched decode cannot match serial output "
            "bit-for-bit (see the determinism contract)");
    }

    // Fused-attention models keep their KV codes in panel blocks, so
    // every stream's storage can come from one shared page pool. A
    // page is sized to hold a whole number of K panels AND of V
    // windows (auto: the larger of the two block sizes — the smaller
    // store then packs several blocks per page).
    if (setup.fusedAttention) {
        const ArchDims &d = model_.weights().profile.simDims;
        const int64_t vWindow =
            setup.kvGroup > 0 ? setup.kvGroup : d.headDim();
        const int64_t blockBytes = std::max(
            KPanelStore::blockBytesFor(d.headDim(), setup.kvGroup),
            VPanelStore::blockBytesFor(d.headDim(), vWindow));
        int64_t pageBytes = cfg_.pageBytes;
        if (pageBytes == 0) {
            pageBytes = blockBytes;
        } else if (pageBytes < blockBytes) {
            throw std::invalid_argument(
                "ServingEngine: pageBytes " +
                std::to_string(pageBytes) +
                " smaller than the largest KV panel block (" +
                std::to_string(blockBytes) + " bytes)");
        }
        pagePool_ =
            std::make_unique<KvPageAllocator>(pageBytes,
                                              cfg_.pagePoolPages);
    }
}

RequestId
ServingEngine::submit(GenRequest req)
{
    const int64_t vocab = model_.weights().embedding.shape().dim(0);
    for (const int32_t tok : req.prompt) {
        if (tok < 0 || static_cast<int64_t>(tok) >= vocab) {
            throw std::invalid_argument(
                "ServingEngine::submit: prompt token " +
                std::to_string(tok) + " outside vocab [0, " +
                std::to_string(vocab) + ")");
        }
    }
    const int64_t promptLen = static_cast<int64_t>(req.prompt.size());
    if (req.tokenBudget < 0)
        throw std::invalid_argument(
            "ServingEngine::submit: negative token budget");
    if (req.tokenBudget > 0 && promptLen > req.tokenBudget) {
        // Contract violation, not backpressure: the prompt alone can
        // never fit, so no amount of waiting makes this admissible.
        throw std::invalid_argument(
            "ServingEngine::submit: prompt length " +
            std::to_string(promptLen) + " exceeds token budget " +
            std::to_string(req.tokenBudget));
    }

    const RequestId id = static_cast<RequestId>(requests_.size());
    Request r;
    r.req = std::move(req);
    r.effMaxNew = r.req.maxNewTokens;
    if (r.req.tokenBudget > 0)
        r.effMaxNew =
            std::min(r.effMaxNew, r.req.tokenBudget - promptLen);
    r.enqueueRound = rounds_;
    if (r.req.prompt.empty() || r.effMaxNew <= 0) {
        // Degenerate request: nothing to generate. Completing here
        // keeps the scheduler free of zero-token streams (and mirrors
        // greedyGenerate's clamp of non-positive counts).
        r.state = RequestState::Done;
        requests_.push_back(std::move(r));
        return id;
    }
    requests_.push_back(std::move(r));
    queue_.push_back(id);
    return id;
}

const ServingEngine::Request &
ServingEngine::checkedRequest(RequestId id) const
{
    if (id < 0 || static_cast<size_t>(id) >= requests_.size())
        throw std::out_of_range("ServingEngine: unknown request id " +
                                std::to_string(id));
    return requests_[static_cast<size_t>(id)];
}

RequestState
ServingEngine::state(RequestId id) const
{
    return checkedRequest(id).state;
}

const std::vector<int32_t> &
ServingEngine::output(RequestId id) const
{
    return checkedRequest(id).out;
}

bool
ServingEngine::requestFinished(const Request &r) const
{
    if (static_cast<int64_t>(r.out.size()) >= r.effMaxNew)
        return true;
    return r.req.stopToken >= 0 && !r.out.empty() &&
           r.out.back() == r.req.stopToken;
}

std::unique_ptr<StreamContext>
ServingEngine::acquireContext()
{
    std::unique_ptr<StreamContext> ctx;
    if (pool_.empty()) {
        ctx = std::make_unique<StreamContext>();
    } else {
        ctx = std::move(pool_.back());
        pool_.pop_back();
    }
    // Bind to the shared page pool (revives a retired parked slot;
    // matching geometry resets in place without reallocating).
    model_.initStream(*ctx, pagePool_.get());
    return ctx;
}

void
ServingEngine::recycleContext(std::unique_ptr<StreamContext> ctx)
{
    // Retire rather than reset: every page goes back to the pool the
    // moment the stream finishes — before the next round's watermark
    // check — and a parked slot's caches reject stray appends until
    // acquireContext() revives them.
    model_.retireStream(*ctx);
    pool_.push_back(std::move(ctx));
}

int64_t
ServingEngine::feedChunk(ActiveStream &a)
{
    Request &r = requests_[static_cast<size_t>(a.id)];
    const std::vector<int32_t> &prompt = r.req.prompt;
    const int64_t total = static_cast<int64_t>(prompt.size());
    const int64_t chunk =
        cfg_.prefillChunkTokens > 0 ? cfg_.prefillChunkTokens : total;
    const int64_t len = std::min(chunk, total - a.promptPos);
    const Tensor logits = model_.prefillChunk(
        *a.ctx, std::span<const int32_t>(prompt.data() + a.promptPos,
                                         static_cast<size_t>(len)));
    a.promptPos += len;
    ++stats_.prefillChunks;
    if (a.promptPos == total) {
        a.prefillDone = true;
        ++stats_.prefills;
        stats_.prefillTokens += total;
        const int32_t first =
            argmaxToken(logits.row(logits.shape().dim(0) - 1));
        a.lastToken = first;
        r.out.push_back(first);
    }
    return len;
}

bool
ServingEngine::admit(RequestId id, int64_t &fedTokens)
{
    Request &r = requests_[static_cast<size_t>(id)];
    ActiveStream a;
    a.id = id;
    a.ctx = acquireContext();
    fedTokens += feedChunk(a);
    if (a.prefillDone && requestFinished(r)) {
        r.state = RequestState::Done;
        recycleContext(std::move(a.ctx));
        return false;
    }
    r.state = RequestState::Active;
    active_.push_back(std::move(a));
    return true;
}

int64_t
ServingEngine::pickQueued() const
{
    if (queue_.empty())
        return -1;
    int64_t best = 0;
    int64_t bestPri = std::numeric_limits<int64_t>::min();
    for (size_t i = 0; i < queue_.size(); ++i) {
        const Request &r = requests_[static_cast<size_t>(queue_[i])];
        int64_t pri = r.req.priority;
        if (cfg_.agingSteps > 0)
            pri += (rounds_ - r.enqueueRound) / cfg_.agingSteps;
        // Strict > keeps FIFO order among equal effective priorities.
        if (pri > bestPri) {
            best = static_cast<int64_t>(i);
            bestPri = pri;
        }
    }
    return best;
}

bool
ServingEngine::deferAdmission() const
{
    if (!pagePool_ || cfg_.freePageWatermark <= 0)
        return false;
    // Forward progress: an engine with nothing running always admits
    // one stream, whatever the pool says — deferring then would
    // livelock (no retirement can ever refill the free list).
    if (active_.empty())
        return false;
    return pagePool_->freePages() < cfg_.freePageWatermark;
}

void
ServingEngine::compactFinished()
{
    size_t w = 0;
    for (size_t i = 0; i < active_.size(); ++i) {
        Request &r = requests_[static_cast<size_t>(active_[i].id)];
        if (active_[i].prefillDone && requestFinished(r)) {
            r.state = RequestState::Done;
            recycleContext(std::move(active_[i].ctx));
        } else {
            if (w != i)
                active_[w] = std::move(active_[i]);
            ++w;
        }
    }
    active_.resize(w);
}

void
ServingEngine::notePoolPressure()
{
    if (pagePool_)
        stats_.peakPagesInUse = pagePool_->peakInUsePages();
}

bool
ServingEngine::step()
{
    ++rounds_;
    int64_t fedTokens = 0;

    // Phase 1: advance in-flight chunked prefills, one chunk per
    // stream per round, so long prompts interleave with decode instead
    // of stalling it. Streams whose prompt just completed may already
    // be finished (stop-token first token, or a 1-token cap); retire
    // them now so their slots and pages are reusable this round.
    for (ActiveStream &a : active_)
        if (!a.prefillDone)
            fedTokens += feedChunk(a);
    compactFinished();

    // Phase 2: admission. Highest effective priority first (FIFO
    // among equals, aged per agingSteps); deferred wholesale when the
    // pool's free pages sit below the watermark.
    while (!queue_.empty() &&
           static_cast<int64_t>(active_.size()) < cfg_.maxStreams) {
        if (deferAdmission()) {
            ++stats_.admissionDeferrals;
            break;
        }
        const int64_t pick = pickQueued();
        const RequestId id = queue_[static_cast<size_t>(pick)];
        queue_.erase(queue_.begin() + pick);
        admit(id, fedTokens);
    }
    stats_.maxPrefillTokensPerStep =
        std::max(stats_.maxPrefillTokensPerStep, fedTokens);

    // Phase 3: one batched decode pass over every fully-prefilled
    // stream: each stream's last token goes in as one batch row,
    // sharing a single activation quantization and the model's pooled
    // scratch. Streams still prefilling sit this pass out.
    std::vector<int32_t> tokens;
    std::vector<StreamContext *> streams;
    std::vector<size_t> rowSlot;
    tokens.reserve(active_.size());
    streams.reserve(active_.size());
    rowSlot.reserve(active_.size());
    for (size_t i = 0; i < active_.size(); ++i) {
        if (!active_[i].prefillDone)
            continue;
        tokens.push_back(active_[i].lastToken);
        streams.push_back(active_[i].ctx.get());
        rowSlot.push_back(i);
    }
    if (tokens.empty()) {
        notePoolPressure();
        return !idle();
    }
    ++stats_.steps;
    const Tensor logits = model_.decodeBatch(tokens, streams);
    ++stats_.decodeBatches;
    stats_.decodedTokens += static_cast<int64_t>(tokens.size());
    stats_.peakBatch = std::max(stats_.peakBatch,
                                static_cast<int64_t>(tokens.size()));

    for (size_t r = 0; r < rowSlot.size(); ++r) {
        const int32_t next =
            argmaxToken(logits.row(static_cast<int64_t>(r)));
        ActiveStream &a = active_[rowSlot[r]];
        a.lastToken = next;
        requests_[static_cast<size_t>(a.id)].out.push_back(next);
    }

    // Retire finished streams (order-stable so the surviving batch
    // composition is reproducible run to run).
    compactFinished();
    notePoolPressure();
    return !idle();
}

void
ServingEngine::run()
{
    while (step()) {
    }
}

} // namespace mant
