/**
 * @file
 * Batched multi-stream serving engine.
 *
 * The decode stage is where grouped low-bit formats recoup their
 * encode cost — but only when the fused GEMM is fed batch-shaped work.
 * A single generation stream decodes at M = 1, where the prepacked
 * tile kernels barely beat the reference path; N concurrent streams
 * batched into one M = N pass per step land in the M ∈ {4..32} régime
 * where fusedGemmTiled is 2×+ (see BENCH_kernels.baseline.json).
 *
 * ServingEngine owns N stream slots (each a Transformer::StreamContext
 * — per-head KV caches plus position — recycled through a pool on
 * retirement) and a continuous-batching scheduler: every step() first
 * advances in-flight prefills by one chunk each, then admits queued
 * requests into free slots under the admission policy, then executes
 * ONE batched decode pass over all fully-prefilled streams. The batch
 * therefore shrinks and regrows as streams retire and join — no stream
 * ever waits for another to finish.
 *
 * KV memory is paged: for fused-attention models the engine owns a
 * shared KvPageAllocator and binds every stream's panel stores to it,
 * so a stream's KV footprint is whole pages claimed as it grows and
 * returned the step it retires (Transformer::retireStream) — short
 * streams no longer pin worst-case storage. The policy layer sits on
 * top: prompts are admitted in fixed-token chunks interleaved with
 * decode (long prompts stop stalling the decode batch), admission
 * picks the highest-priority queued request (FIFO among equals, with
 * optional aging so low priority cannot starve), defers admission when
 * free pages drop below a watermark (always letting one stream run so
 * the engine cannot livelock), and per-request token budgets cap
 * prompt + generation up front.
 *
 * Determinism contract: each request's token sequence is byte-
 * identical to running it alone through the single-stream
 * prefill()/decodeStep() path, at every MANT_SIMD × MANT_THREADS
 * setting, any batch composition, any prefill chunk size, and any
 * page-pool geometry. This holds because every per-row kernel in the
 * batched pass computes rows/cells independently with a fixed
 * accumulation order, the temporal V quantizer folds prompts row by
 * row with no look-ahead (see Transformer::prefillChunk), and page
 * placement never feeds back into values; the scheduler only decides
 * WHEN a stream's rows run, never what they compute.
 * tests/test_serving.cc and tests/test_soak.cc enforce it.
 *
 * Failure & preemption model (see ARCHITECTURE.md for the full state
 * machine): request-level events can never kill the engine. When a
 * bounded pool cannot cover a stream's next page claims, the
 * scheduler preempts the lowest-priority (tie: youngest) active
 * stream — retires it, returns its pages, and re-queues it in
 * RequestState::Preempted; on re-admission the victim replays
 * `prompt + tokens generated so far` through prefillChunk, which by
 * the determinism contract reproduces its KV state byte-for-byte, so
 * eviction is invisible in the output. Page needs are computed
 * exactly up front (Transformer::pagesNeededForRows), so in steady
 * state exhaustion is a scheduling decision, not an exception; a
 * KvPoolExhausted that does fire anyway (fault injection, or a lone
 * stream larger than the whole pool) is caught inside step(), which
 * preempts or fails ONLY the streams involved and keeps serving —
 * no exception type escapes step() for request-level faults.
 * Requests can also be cancelled (cancel()) or expire after a
 * scheduler-round deadline (GenRequest::deadlineSteps — rounds, never
 * wall-clock; tools/determinism_lint.py forbids clocks in src/), both
 * keeping whatever output was already produced.
 */

#ifndef MANT_SERVE_SERVING_ENGINE_H_
#define MANT_SERVE_SERVING_ENGINE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/kv_pages.h"
#include "model/transformer.h"

namespace mant {

class LoadedModel;

/**
 * Deterministic engine-level fault injection (tests / soak / bench):
 * drives the pool's KvFaultPlan (core/kv_pages.h) on a scheduler-round
 * schedule, so exhaustion storms, eviction cascades, and cancel/
 * deadline races replay byte-identically. Inert for models without a
 * shared page pool. All knobs compose; 0 disables each.
 */
struct FaultInjectionConfig
{
    /** Fail the Nth page-allocation attempt of the engine's pool
     *  (1-based over the pool's lifetime); fires once. */
    int64_t failNthAlloc = 0;

    /** Fail every page allocation during scheduler rounds
     *  [failRoundsBegin, failRoundsEnd) — a one-shot storm window. */
    int64_t failRoundsBegin = 0;
    int64_t failRoundsEnd = 0;

    /** Recurring storms: every `failPeriod` rounds, fail all page
     *  allocations for the first `failLen` rounds of the period
     *  (rounds r with r % failPeriod < failLen). failLen must be
     *  strictly less than failPeriod — every storm must end, or no
     *  request could ever finish and run() would never return. */
    int64_t failPeriod = 0;
    int64_t failLen = 0;
};

/** Engine configuration. */
struct ServingConfig
{
    /** Decode slots = max rows per batched pass. */
    int64_t maxStreams = 8;

    /** Prompt tokens fed per stream per step() while a stream is
     *  prefilling; 0 feeds the whole prompt at admission (the legacy
     *  monolithic behaviour). Chunking never changes any output token
     *  (Transformer::prefillChunk), only when prompt rows run. */
    int64_t prefillChunkTokens = 0;

    /** Capacity of the shared KV page pool, in pages; 0 = unbounded.
     *  Only meaningful for fused-attention models (others keep KV in
     *  plain per-stream buffers). An undersized pool degrades
     *  throughput, never correctness: the scheduler preempts and
     *  later replays victims to fit the active set (see the failure
     *  model above) — only a single request whose own next claim
     *  exceeds the entire cap is Failed. */
    int64_t pagePoolPages = 0;

    /** Bytes per page; 0 sizes a page automatically to the largest
     *  panel block of the model's KV geometry (so every page holds a
     *  whole number of K panels and of V windows). An explicit value
     *  must be at least that large (std::invalid_argument). */
    int64_t pageBytes = 0;

    /** Admission backoff: while the pool's free-page count (capacity
     *  minus pages in use) is below this, queued requests stay queued
     *  — except that an otherwise-idle engine always admits one, so
     *  progress is guaranteed. 0 disables the backoff. */
    int64_t freePageWatermark = 0;

    /** Priority aging: a queued request gains +1 effective priority
     *  per this many scheduler rounds waited, bounding how long any
     *  request can starve behind higher-priority arrivals. 0 disables
     *  aging (strict priority, FIFO among equals). */
    int64_t agingSteps = 0;

    /** Deterministic fault injection (all-zero = disabled). */
    FaultInjectionConfig faults = {};
};

/** Handle returned by ServingEngine::submit(). */
using RequestId = int64_t;

/**
 * Lifecycle of a submitted request.
 *
 *     Queued ──admit──▶ Active ──finish──▶ Done
 *       ▲                 │
 *       │    (as          ├──evict──▶ Preempted ──re-admit──▶ Active
 *       │  Preempted)◀────┘
 *
 * plus, from any non-terminal state: ──cancel()──▶ Cancelled,
 * ──deadline──▶ Expired, ──infeasible──▶ Failed. Done / Cancelled /
 * Expired / Failed are terminal (see isTerminal()); output() keeps
 * whatever tokens were produced before a non-Done exit.
 */
enum class RequestState
{
    Queued,    ///< waiting for a free stream slot
    Active,    ///< holds a slot; produces one token per engine step
    Preempted, ///< evicted under pool pressure; re-queued, its KV
               ///< state replayed byte-identically on re-admission
    Done,      ///< output complete; slot recycled
    Cancelled, ///< cancel() before completion; partial output kept
    Expired,   ///< deadlineSteps elapsed; partial output kept
    Failed,    ///< request-level fault (see RequestError); the engine
               ///< itself keeps serving
};

/** True for states a request can never leave. */
inline bool
isTerminal(RequestState s)
{
    return s == RequestState::Done || s == RequestState::Cancelled ||
           s == RequestState::Expired || s == RequestState::Failed;
}

/** Typed reason a request reached RequestState::Failed. */
struct RequestError
{
    enum class Kind
    {
        None,          ///< not failed
        PoolExhausted, ///< its next page claim exceeds the whole pool
                       ///< even with every other stream evicted
    };
    Kind kind = Kind::None;
    std::string message;
};

/** One generation request (greedy decoding). */
struct GenRequest
{
    /** Prompt token ids, each in [0, vocab). Empty prompts complete
     *  immediately with an empty output. */
    std::vector<int32_t> prompt;

    /** Tokens to generate (prefill's argmax counts as the first).
     *  Non-positive counts complete immediately with empty output. */
    int64_t maxNewTokens = 0;

    /** Retire the stream early when this token is generated (the
     *  token itself is kept in the output); -1 disables. */
    int32_t stopToken = -1;

    /** Scheduling priority; higher admits first (FIFO among equals,
     *  aged per ServingConfig::agingSteps). Never affects tokens. */
    int32_t priority = 0;

    /** Cap on prompt + generated tokens for this request; 0 = no cap.
     *  Submitting a prompt that alone exceeds the budget is a contract
     *  violation (std::invalid_argument); a budget that leaves no room
     *  to generate completes immediately with an empty output. */
    int64_t tokenBudget = 0;

    /** Scheduler-round deadline: the request may be worked on for this
     *  many step() rounds after submission; at the start of the next
     *  round it becomes Expired (partial output kept). Rounds, never
     *  wall-clock — deadlines are deterministic and replayable like
     *  everything else in the engine. 0 disables. */
    int64_t deadlineSteps = 0;
};

/**
 * Greedy multi-stream serving engine over one Transformer. Single-
 * threaded by design (parallelism lives inside the kernels); the
 * engine never touches the model's default-stream state, so it can
 * share a Transformer with single-stream callers between steps.
 */
class ServingEngine
{
  public:
    /** Aggregate throughput counters. */
    struct Stats
    {
        int64_t steps = 0;          ///< rounds that ran a decode pass
        int64_t prefills = 0;       ///< prefills COMPLETED (not begun)
        int64_t prefillTokens = 0;  ///< prompt tokens prefilled
        int64_t prefillChunks = 0;  ///< prefillChunk calls issued
        int64_t decodeBatches = 0;  ///< batched decode passes
        int64_t decodedTokens = 0;  ///< tokens produced by those passes
        int64_t peakBatch = 0;      ///< widest decode batch seen
        int64_t admissionDeferrals = 0; ///< watermark admission stalls
        int64_t peakPagesInUse = 0; ///< pool high-water mark (pages)
        /** Most prompt tokens fed in any single round — the bound on
         *  how much prefill work a decode pass can wait behind. */
        int64_t maxPrefillTokensPerStep = 0;
        int64_t evictions = 0;  ///< streams preempted under pressure
        /** Tokens of already-done work discarded by those evictions —
         *  each victim's cache position at eviction, i.e. exactly what
         *  its replay prefill will recompute. recomputedTokens /
         *  decodedTokens is the recompute overhead of running an
         *  undersized pool. */
        int64_t recomputedTokens = 0;
        int64_t cancelled = 0; ///< requests cancelled via cancel()
        int64_t expired = 0;   ///< requests past their deadlineSteps
        int64_t failed = 0;    ///< requests Failed (see error())
    };

    /**
     * @param model Shared model; must outlive the engine.
     * @throws std::invalid_argument for setups outside the
     *   determinism contract: activation quantization whose
     *   statistics span batch rows (ActMethod::Tender, or tensor-wise
     *   activation granularity) cannot match serial output
     *   bit-for-bit, so the engine refuses to serve them with more
     *   than one stream slot (maxStreams == 1 decodes at M = 1 and is
     *   always in contract).
     */
    explicit ServingEngine(Transformer &model, ServingConfig cfg = {});

    /**
     * Boot straight from a loaded model file (model/model_file.h):
     * serves the model's Transformer and keeps the LoadedModel — the
     * file mapping, the weights, and the view-backed Transformer —
     * alive for the engine's lifetime. shared_ptr so several engines
     * (or engine generations across reconfiguration) can serve one
     * mapping. Same validation as the reference constructor.
     */
    explicit ServingEngine(std::shared_ptr<LoadedModel> model,
                           ServingConfig cfg = {});

    /**
     * Enqueue a request. Prompt token ids are validated against the
     * model vocabulary here (std::invalid_argument on violation) —
     * never fed unchecked into the embedding lookup, as is a negative
     * tokenBudget or a prompt that alone exceeds a positive budget.
     * Degenerate requests (empty prompt, non-positive maxNewTokens,
     * or a budget with no room past the prompt) complete immediately
     * with an empty output.
     */
    RequestId submit(GenRequest req);

    /**
     * One scheduler round: expire overdue requests, feed one prompt
     * chunk to each prefilling stream, admit queued requests into free
     * slots (highest effective priority first, deferred under
     * page-pool pressure), then run one batched decode pass over every
     * fully-prefilled stream and retire the finished ones — returning
     * their pages to the pool before the next round's watermark check.
     *
     * Exception safety: request-level faults never escape. Before a
     * stream runs, its exact page needs are reserved
     * (Transformer::pagesNeededForRows), preempting victims to make
     * room; a KvPoolExhausted raised anyway (fault injection, or a
     * reservation the pool cannot meet at all) is caught here and
     * resolved by preempting or failing only the streams whose caches
     * that forward pass touched — their replay re-derives the state
     * byte-identically, so the engine's own invariants always hold
     * after step() returns. Contract violations (std::logic_error and
     * friends) and resource exhaustion outside the KV pool
     * (std::bad_alloc) still propagate: they are engine-level bugs,
     * not request-level events.
     * @return true while queued or active work remains.
     */
    bool step();

    /** Run step() until every submitted request is terminal. */
    void run();

    /**
     * Cancel a request. Queued / Preempted requests leave the queue;
     * an Active request's stream is retired on the spot (its pages
     * return to the pool before the next step()). In every case the
     * tokens generated so far stay readable via output(). Returns
     * false when the request is already terminal (too late to
     * cancel), true otherwise. Throws std::out_of_range for an
     * unknown id.
     */
    bool cancel(RequestId id);

    RequestState state(RequestId id) const;

    /** Why a request Failed; kind == None unless state(id) ==
     *  RequestState::Failed. Same deque-stable reference guarantee as
     *  output(). */
    const RequestError &error(RequestId id) const;

    /** Generated tokens so far — complete once state(id) == Done, and
     *  a (possibly empty) prefix of the request's would-be output for
     *  the other terminal states: cancellation, expiry, failure, and
     *  eviction-then-completion never corrupt or reorder tokens
     *  already produced (the determinism contract pins each token
     *  independently of scheduling). The reference stays valid for
     *  the engine's lifetime — request records live in a deque, so
     *  later submit() calls never move them. */
    const std::vector<int32_t> &output(RequestId id) const;

    int64_t activeStreams() const
    {
        return static_cast<int64_t>(active_.size());
    }
    int64_t queuedRequests() const
    {
        return static_cast<int64_t>(queue_.size());
    }
    bool idle() const { return active_.empty() && queue_.empty(); }

    const Stats &stats() const { return stats_; }
    const ServingConfig &config() const { return cfg_; }

    /** Shared KV page pool, or nullptr for models whose KV is not
     *  panel-packed (non-fused-attention setups). */
    const KvPageAllocator *pagePool() const { return pagePool_.get(); }

  private:
    struct Request
    {
        GenRequest req;
        RequestState state = RequestState::Queued;
        std::vector<int32_t> out;
        /** maxNewTokens clamped by the token budget (submit()). */
        int64_t effMaxNew = 0;
        /** Scheduler round at submit(); feeds priority aging (and is
         *  kept across preemption, so victims age from their original
         *  arrival — eviction never resets a request's seniority). */
        int64_t enqueueRound = 0;
        /** Absolute round after which the request expires (submit
         *  round + deadlineSteps); 0 = no deadline. */
        int64_t deadlineRound = 0;
        /** Set when the request Failed. */
        RequestError error;
        /** Replay feed for a preempted stream: prompt ++ out[0..k-2]
         *  for the k tokens generated before eviction. Fed through
         *  prefillChunk on re-admission — byte-identical KV state by
         *  the determinism contract — after which decode resumes from
         *  resumeToken (== out[k-1], the token whose decode pass the
         *  eviction interrupted). Empty when the victim had produced
         *  no tokens yet (it just re-feeds its prompt). */
        std::vector<int32_t> replay;
        int32_t resumeToken = 0;
        /** Stats guard: prefills/prefillTokens count each request
         *  once, however many times eviction makes it re-prefill. */
        bool prefillCounted = false;
    };

    /** One occupied decode slot. StreamContexts live behind unique_ptr
     *  so slot shuffles and pool hand-offs never move cache storage. */
    struct ActiveStream
    {
        RequestId id = -1;
        std::unique_ptr<StreamContext> ctx;
        int32_t lastToken = 0;
        /** Prompt tokens fed so far; < prompt.size() while chunked
         *  prefill is still in flight. */
        int64_t promptPos = 0;
        bool prefillDone = false;
    };

    const Request &checkedRequest(RequestId id) const;
    bool requestFinished(const Request &r) const;
    /** The token sequence a stream prefills: the replay buffer for a
     *  resumed victim, the prompt otherwise. */
    const std::vector<int32_t> &feedTokens(const Request &r) const
    {
        return r.replay.empty() ? r.req.prompt : r.replay;
    }
    /** Tokens the next feedChunk() of `a` will feed. */
    int64_t chunkLenFor(const ActiveStream &a) const;
    /** Outcome of trying to admit the picked candidate. */
    enum class AdmitResult
    {
        Admitted, ///< stream occupies a slot now
        Terminal, ///< left the queue as Done (single-chunk prompt
                  ///< that finished at admission) or Failed
                  ///< (infeasible first chunk)
        Deferred, ///< pool headroom too small; left queued
        Faulted,  ///< fault mid-admission; left queued for retry
    };
    /** Admit `id` into a pooled stream slot if its first chunk's page
     *  needs fit the pool's free headroom (first chunk runs
     *  immediately; its tokens are added to `fedTokens`). Never evicts
     *  running streams on behalf of a queued one — admission defers,
     *  eviction is reserved for keeping admitted work alive. */
    AdmitResult admit(RequestId id, int64_t &fedTokens);
    /** Feed the next prompt chunk; on the final chunk, emits the first
     *  generated token (or restores resumeToken for a replay) and
     *  marks the stream prefillDone. Returns the tokens fed. */
    int64_t feedChunk(ActiveStream &a);
    /** Index into queue_ of the admission candidate (highest effective
     *  priority, FIFO among equals), or -1 when the queue is empty. */
    int64_t pickQueued() const;
    /** True when the watermark says new admissions must wait. */
    bool deferAdmission() const;
    /** Retire every fully-prefilled stream whose request finished and
     *  drop slots emptied by eviction/failure, order-stable; pages
     *  return to the pool immediately. */
    void compactSlots();
    void notePoolPressure();
    std::unique_ptr<StreamContext> acquireContext();
    void recycleContext(std::unique_ptr<StreamContext> ctx);

    /** True when the slot still holds a live (non-evicted) stream. */
    static bool live(const ActiveStream &a) { return a.ctx != nullptr; }
    int64_t liveSlots() const;
    /** Arm/disarm the pool's KvFaultPlan for the current round per
     *  cfg_.faults. */
    void armFaultPlan();
    /** Expire every non-terminal request past its deadlineRound. */
    void expireOverdue();
    /** Eviction victim: the live, unfinished slot with the lowest
     *  priority (tie: youngest = highest slot index; active_ is
     *  admission-ordered and compaction is order-stable), excluding
     *  `protect`. -1 when no candidate exists. */
    int64_t pickVictim(int64_t protect) const;
    /** Preempt the stream in `slot`: build its replay, return its
     *  pages, re-queue it front as Preempted. The slot goes dead until
     *  compactSlots(). */
    void evictSlot(size_t slot);
    /** Fail the request in `slot` (typed error), retiring its stream.
     *  The slot goes dead until compactSlots(). */
    void failSlot(size_t slot, RequestError err);
    /** Make the pool's free headroom cover `pages` claims for `slot`,
     *  evicting victims (never `slot` itself) as needed. False when
     *  even an otherwise-empty pool cannot: the caller must fail the
     *  request rather than run it. */
    bool reserveOrEvict(size_t slot, int64_t pages);
    /** Resolve a KvPoolExhausted that escaped `slot`'s forward pass:
     *  preempt it for retry (always, for injected faults and whenever
     *  other streams hold reclaimable pages), or fail it (genuine
     *  exhaustion with nothing left to evict — retry cannot help). */
    void handleStreamFault(size_t slot, const KvPoolExhausted &e,
                           bool injected);

    /** Set by the LoadedModel constructor: pins the file mapping and
     *  the view-backed Transformer that model_ references (empty when
     *  the caller owns the Transformer). Declared before model_ so it
     *  is destroyed after everything that might still touch it. */
    std::shared_ptr<LoadedModel> ownedModel_;
    Transformer &model_;
    ServingConfig cfg_;
    std::unique_ptr<KvPageAllocator> pagePool_;
    /** Deque, not vector: output() hands out references into these
     *  records, and deque growth never relocates existing elements. */
    std::deque<Request> requests_;
    std::deque<RequestId> queue_;
    std::vector<ActiveStream> active_;
    std::vector<std::unique_ptr<StreamContext>> pool_;
    Stats stats_;
    /** Scheduler rounds (every step() call, decode pass or not);
     *  drives priority aging. */
    int64_t rounds_ = 0;
};

} // namespace mant

#endif // MANT_SERVE_SERVING_ENGINE_H_
