/**
 * @file
 * Batched multi-stream serving engine.
 *
 * The decode stage is where grouped low-bit formats recoup their
 * encode cost — but only when the fused GEMM is fed batch-shaped work.
 * A single generation stream decodes at M = 1, where the prepacked
 * tile kernels barely beat the reference path; N concurrent streams
 * batched into one M = N pass per step land in the M ∈ {4..32} régime
 * where fusedGemmTiled is 2×+ (see BENCH_kernels.baseline.json).
 *
 * ServingEngine owns N stream slots (each a Transformer::StreamContext
 * — per-head KV caches plus position — recycled through a pool on
 * retirement) and a continuous-batching scheduler: every step() first
 * advances in-flight prefills by one chunk each, then admits queued
 * requests into free slots under the admission policy, then executes
 * ONE batched decode pass over all fully-prefilled streams. The batch
 * therefore shrinks and regrows as streams retire and join — no stream
 * ever waits for another to finish.
 *
 * KV memory is paged: for fused-attention models the engine owns a
 * shared KvPageAllocator and binds every stream's panel stores to it,
 * so a stream's KV footprint is whole pages claimed as it grows and
 * returned the step it retires (Transformer::retireStream) — short
 * streams no longer pin worst-case storage. The policy layer sits on
 * top: prompts are admitted in fixed-token chunks interleaved with
 * decode (long prompts stop stalling the decode batch), admission
 * picks the highest-priority queued request (FIFO among equals, with
 * optional aging so low priority cannot starve), defers admission when
 * free pages drop below a watermark (always letting one stream run so
 * the engine cannot livelock), and per-request token budgets cap
 * prompt + generation up front.
 *
 * Determinism contract: each request's token sequence is byte-
 * identical to running it alone through the single-stream
 * prefill()/decodeStep() path, at every MANT_SIMD × MANT_THREADS
 * setting, any batch composition, any prefill chunk size, and any
 * page-pool geometry. This holds because every per-row kernel in the
 * batched pass computes rows/cells independently with a fixed
 * accumulation order, the temporal V quantizer folds prompts row by
 * row with no look-ahead (see Transformer::prefillChunk), and page
 * placement never feeds back into values; the scheduler only decides
 * WHEN a stream's rows run, never what they compute.
 * tests/test_serving.cc and tests/test_soak.cc enforce it.
 */

#ifndef MANT_SERVE_SERVING_ENGINE_H_
#define MANT_SERVE_SERVING_ENGINE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/kv_pages.h"
#include "model/transformer.h"

namespace mant {

/** Engine configuration. */
struct ServingConfig
{
    /** Decode slots = max rows per batched pass. */
    int64_t maxStreams = 8;

    /** Prompt tokens fed per stream per step() while a stream is
     *  prefilling; 0 feeds the whole prompt at admission (the legacy
     *  monolithic behaviour). Chunking never changes any output token
     *  (Transformer::prefillChunk), only when prompt rows run. */
    int64_t prefillChunkTokens = 0;

    /** Capacity of the shared KV page pool, in pages; 0 = unbounded.
     *  Only meaningful for fused-attention models (others keep KV in
     *  plain per-stream buffers). When the cap is truly exhausted by
     *  ACTIVE streams, page claims throw KvPoolExhausted — size the
     *  pool so the watermark triggers first. */
    int64_t pagePoolPages = 0;

    /** Bytes per page; 0 sizes a page automatically to the largest
     *  panel block of the model's KV geometry (so every page holds a
     *  whole number of K panels and of V windows). An explicit value
     *  must be at least that large (std::invalid_argument). */
    int64_t pageBytes = 0;

    /** Admission backoff: while the pool's free-page count (capacity
     *  minus pages in use) is below this, queued requests stay queued
     *  — except that an otherwise-idle engine always admits one, so
     *  progress is guaranteed. 0 disables the backoff. */
    int64_t freePageWatermark = 0;

    /** Priority aging: a queued request gains +1 effective priority
     *  per this many scheduler rounds waited, bounding how long any
     *  request can starve behind higher-priority arrivals. 0 disables
     *  aging (strict priority, FIFO among equals). */
    int64_t agingSteps = 0;
};

/** Handle returned by ServingEngine::submit(). */
using RequestId = int64_t;

/** Lifecycle of a submitted request. */
enum class RequestState
{
    Queued, ///< waiting for a free stream slot
    Active, ///< holds a slot; produces one token per engine step
    Done,   ///< output complete; slot recycled
};

/** One generation request (greedy decoding). */
struct GenRequest
{
    /** Prompt token ids, each in [0, vocab). Empty prompts complete
     *  immediately with an empty output. */
    std::vector<int32_t> prompt;

    /** Tokens to generate (prefill's argmax counts as the first).
     *  Non-positive counts complete immediately with empty output. */
    int64_t maxNewTokens = 0;

    /** Retire the stream early when this token is generated (the
     *  token itself is kept in the output); -1 disables. */
    int32_t stopToken = -1;

    /** Scheduling priority; higher admits first (FIFO among equals,
     *  aged per ServingConfig::agingSteps). Never affects tokens. */
    int32_t priority = 0;

    /** Cap on prompt + generated tokens for this request; 0 = no cap.
     *  Submitting a prompt that alone exceeds the budget is a contract
     *  violation (std::invalid_argument); a budget that leaves no room
     *  to generate completes immediately with an empty output. */
    int64_t tokenBudget = 0;
};

/**
 * Greedy multi-stream serving engine over one Transformer. Single-
 * threaded by design (parallelism lives inside the kernels); the
 * engine never touches the model's default-stream state, so it can
 * share a Transformer with single-stream callers between steps.
 */
class ServingEngine
{
  public:
    /** Aggregate throughput counters. */
    struct Stats
    {
        int64_t steps = 0;          ///< rounds that ran a decode pass
        int64_t prefills = 0;       ///< prefills COMPLETED (not begun)
        int64_t prefillTokens = 0;  ///< prompt tokens prefilled
        int64_t prefillChunks = 0;  ///< prefillChunk calls issued
        int64_t decodeBatches = 0;  ///< batched decode passes
        int64_t decodedTokens = 0;  ///< tokens produced by those passes
        int64_t peakBatch = 0;      ///< widest decode batch seen
        int64_t admissionDeferrals = 0; ///< watermark admission stalls
        int64_t peakPagesInUse = 0; ///< pool high-water mark (pages)
        /** Most prompt tokens fed in any single round — the bound on
         *  how much prefill work a decode pass can wait behind. */
        int64_t maxPrefillTokensPerStep = 0;
    };

    /**
     * @param model Shared model; must outlive the engine.
     * @throws std::invalid_argument for setups outside the
     *   determinism contract: activation quantization whose
     *   statistics span batch rows (ActMethod::Tender, or tensor-wise
     *   activation granularity) cannot match serial output
     *   bit-for-bit, so the engine refuses to serve them with more
     *   than one stream slot (maxStreams == 1 decodes at M = 1 and is
     *   always in contract).
     */
    explicit ServingEngine(Transformer &model, ServingConfig cfg = {});

    /**
     * Enqueue a request. Prompt token ids are validated against the
     * model vocabulary here (std::invalid_argument on violation) —
     * never fed unchecked into the embedding lookup, as is a negative
     * tokenBudget or a prompt that alone exceeds a positive budget.
     * Degenerate requests (empty prompt, non-positive maxNewTokens,
     * or a budget with no room past the prompt) complete immediately
     * with an empty output.
     */
    RequestId submit(GenRequest req);

    /**
     * One scheduler round: feed one prompt chunk to each prefilling
     * stream, admit queued requests into free slots (highest effective
     * priority first, deferred under page-pool pressure), then run one
     * batched decode pass over every fully-prefilled stream and retire
     * the finished ones — returning their pages to the pool before the
     * next round's watermark check.
     * @return true while queued or active work remains.
     * @throws KvPoolExhausted if a bounded pool cannot cover the
     *   streams already admitted (the watermark defers admissions, it
     *   cannot shrink live streams).
     */
    bool step();

    /** Run step() until all submitted requests are Done. */
    void run();

    RequestState state(RequestId id) const;

    /** Generated tokens so far (complete once state(id) == Done).
     *  The reference stays valid for the engine's lifetime — request
     *  records live in a deque, so later submit() calls never move
     *  them. */
    const std::vector<int32_t> &output(RequestId id) const;

    int64_t activeStreams() const
    {
        return static_cast<int64_t>(active_.size());
    }
    int64_t queuedRequests() const
    {
        return static_cast<int64_t>(queue_.size());
    }
    bool idle() const { return active_.empty() && queue_.empty(); }

    const Stats &stats() const { return stats_; }
    const ServingConfig &config() const { return cfg_; }

    /** Shared KV page pool, or nullptr for models whose KV is not
     *  panel-packed (non-fused-attention setups). */
    const KvPageAllocator *pagePool() const { return pagePool_.get(); }

  private:
    struct Request
    {
        GenRequest req;
        RequestState state = RequestState::Queued;
        std::vector<int32_t> out;
        /** maxNewTokens clamped by the token budget (submit()). */
        int64_t effMaxNew = 0;
        /** Scheduler round at submit(); feeds priority aging. */
        int64_t enqueueRound = 0;
    };

    /** One occupied decode slot. StreamContexts live behind unique_ptr
     *  so slot shuffles and pool hand-offs never move cache storage. */
    struct ActiveStream
    {
        RequestId id = -1;
        std::unique_ptr<StreamContext> ctx;
        int32_t lastToken = 0;
        /** Prompt tokens fed so far; < prompt.size() while chunked
         *  prefill is still in flight. */
        int64_t promptPos = 0;
        bool prefillDone = false;
    };

    const Request &checkedRequest(RequestId id) const;
    bool requestFinished(const Request &r) const;
    /** Start prefilling `id` in a pooled stream slot (first chunk runs
     *  immediately; its tokens are added to `fedTokens`). Returns
     *  false when the request completed at admission — single-chunk
     *  prompt whose first token finished it — in which case the slot
     *  went straight back to the pool. */
    bool admit(RequestId id, int64_t &fedTokens);
    /** Feed the next prompt chunk; on the final chunk, emits the first
     *  generated token and marks the stream prefillDone. Returns the
     *  tokens fed. */
    int64_t feedChunk(ActiveStream &a);
    /** Index into queue_ of the admission candidate (highest effective
     *  priority, FIFO among equals), or -1 when the queue is empty. */
    int64_t pickQueued() const;
    /** True when the watermark says new admissions must wait. */
    bool deferAdmission() const;
    /** Retire every fully-prefilled stream whose request finished,
     *  order-stable; their pages return to the pool immediately. */
    void compactFinished();
    void notePoolPressure();
    std::unique_ptr<StreamContext> acquireContext();
    void recycleContext(std::unique_ptr<StreamContext> ctx);

    Transformer &model_;
    ServingConfig cfg_;
    std::unique_ptr<KvPageAllocator> pagePool_;
    /** Deque, not vector: output() hands out references into these
     *  records, and deque growth never relocates existing elements. */
    std::deque<Request> requests_;
    std::deque<RequestId> queue_;
    std::vector<ActiveStream> active_;
    std::vector<std::unique_ptr<StreamContext>> pool_;
    Stats stats_;
    /** Scheduler rounds (every step() call, decode pass or not);
     *  drives priority aging. */
    int64_t rounds_ = 0;
};

} // namespace mant

#endif // MANT_SERVE_SERVING_ENGINE_H_
