/**
 * @file
 * Batched multi-stream serving engine.
 *
 * The decode stage is where grouped low-bit formats recoup their
 * encode cost — but only when the fused GEMM is fed batch-shaped work.
 * A single generation stream decodes at M = 1, where the prepacked
 * tile kernels barely beat the reference path; N concurrent streams
 * batched into one M = N pass per step land in the M ∈ {4..32} régime
 * where fusedGemmTiled is 2×+ (see BENCH_kernels.baseline.json).
 *
 * ServingEngine owns N stream slots (each a Transformer::StreamContext
 * — per-head KV caches plus position — recycled through a pool on
 * retirement) and a continuous-batching scheduler: every step() admits
 * queued requests into free slots (running their prefill and emitting
 * the first greedy token), then executes ONE batched decode pass over
 * all active streams. The batch therefore shrinks and regrows as
 * streams retire and join — no stream ever waits for another to
 * finish.
 *
 * Determinism contract: each request's token sequence is byte-
 * identical to running it alone through the single-stream
 * prefill()/decodeStep() path, at every MANT_SIMD × MANT_THREADS
 * setting and any batch composition. This holds because every per-row
 * kernel in the batched pass computes rows/cells independently with a
 * fixed accumulation order (see Transformer::decodeBatch and
 * docs/ARCHITECTURE.md); tests/test_serving.cc enforces it.
 */

#ifndef MANT_SERVE_SERVING_ENGINE_H_
#define MANT_SERVE_SERVING_ENGINE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "model/transformer.h"

namespace mant {

/** Engine configuration. */
struct ServingConfig
{
    /** Decode slots = max rows per batched pass. */
    int64_t maxStreams = 8;
};

/** Handle returned by ServingEngine::submit(). */
using RequestId = int64_t;

/** Lifecycle of a submitted request. */
enum class RequestState
{
    Queued, ///< waiting for a free stream slot
    Active, ///< holds a slot; produces one token per engine step
    Done,   ///< output complete; slot recycled
};

/** One generation request (greedy decoding). */
struct GenRequest
{
    /** Prompt token ids, each in [0, vocab). Empty prompts complete
     *  immediately with an empty output. */
    std::vector<int32_t> prompt;

    /** Tokens to generate (prefill's argmax counts as the first).
     *  Non-positive counts complete immediately with empty output. */
    int64_t maxNewTokens = 0;

    /** Retire the stream early when this token is generated (the
     *  token itself is kept in the output); -1 disables. */
    int32_t stopToken = -1;
};

/**
 * Greedy multi-stream serving engine over one Transformer. Single-
 * threaded by design (parallelism lives inside the kernels); the
 * engine never touches the model's default-stream state, so it can
 * share a Transformer with single-stream callers between steps.
 */
class ServingEngine
{
  public:
    /** Aggregate throughput counters. */
    struct Stats
    {
        int64_t steps = 0;          ///< scheduler rounds executed
        int64_t prefills = 0;       ///< admitted requests
        int64_t prefillTokens = 0;  ///< prompt tokens prefilled
        int64_t decodeBatches = 0;  ///< batched decode passes
        int64_t decodedTokens = 0;  ///< tokens produced by those passes
        int64_t peakBatch = 0;      ///< widest decode batch seen
    };

    /**
     * @param model Shared model; must outlive the engine.
     * @throws std::invalid_argument for setups outside the
     *   determinism contract: activation quantization whose
     *   statistics span batch rows (ActMethod::Tender, or tensor-wise
     *   activation granularity) cannot match serial output
     *   bit-for-bit, so the engine refuses to serve them with more
     *   than one stream slot (maxStreams == 1 decodes at M = 1 and is
     *   always in contract).
     */
    explicit ServingEngine(Transformer &model, ServingConfig cfg = {});

    /**
     * Enqueue a request. Prompt token ids are validated against the
     * model vocabulary here (std::invalid_argument on violation) —
     * never fed unchecked into the embedding lookup. Degenerate
     * requests (empty prompt or non-positive maxNewTokens) complete
     * immediately with an empty output.
     */
    RequestId submit(GenRequest req);

    /**
     * One scheduler round: admit queued requests into free slots
     * (prefill + first token each), then run one batched decode pass
     * over every active stream and retire the finished ones.
     * @return true while queued or active work remains.
     */
    bool step();

    /** Run step() until all submitted requests are Done. */
    void run();

    RequestState state(RequestId id) const;

    /** Generated tokens so far (complete once state(id) == Done).
     *  The reference stays valid for the engine's lifetime — request
     *  records live in a deque, so later submit() calls never move
     *  them. */
    const std::vector<int32_t> &output(RequestId id) const;

    int64_t activeStreams() const
    {
        return static_cast<int64_t>(active_.size());
    }
    int64_t queuedRequests() const
    {
        return static_cast<int64_t>(queue_.size());
    }
    bool idle() const { return active_.empty() && queue_.empty(); }

    const Stats &stats() const { return stats_; }
    const ServingConfig &config() const { return cfg_; }

  private:
    struct Request
    {
        GenRequest req;
        RequestState state = RequestState::Queued;
        std::vector<int32_t> out;
    };

    /** One occupied decode slot. StreamContexts live behind unique_ptr
     *  so slot shuffles and pool hand-offs never move cache storage. */
    struct ActiveStream
    {
        RequestId id = -1;
        std::unique_ptr<StreamContext> ctx;
        int32_t lastToken = 0;
    };

    const Request &checkedRequest(RequestId id) const;
    bool requestFinished(const Request &r) const;
    /** Prefill `id` into a pooled stream slot; emits the first token.
     *  Returns false when the request completed at admission. */
    bool admit(RequestId id);
    std::unique_ptr<StreamContext> acquireContext();
    void recycleContext(std::unique_ptr<StreamContext> ctx);

    Transformer &model_;
    ServingConfig cfg_;
    /** Deque, not vector: output() hands out references into these
     *  records, and deque growth never relocates existing elements. */
    std::deque<Request> requests_;
    std::deque<RequestId> queue_;
    std::vector<ActiveStream> active_;
    std::vector<std::unique_ptr<StreamContext>> pool_;
    Stats stats_;
};

} // namespace mant

#endif // MANT_SERVE_SERVING_ENGINE_H_
