#include "sim/accelerators.h"

#include <vector>

namespace mant {

namespace {

ArchConfig
baseline4bit(const std::string &name)
{
    ArchConfig a;
    a.name = name;
    a.peBits = 4;
    a.numPes = 4096;
    a.arrayCols = 32;
    a.mantFused = false;
    a.hasRqu = false;
    a.groupwiseHw = false;
    a.quantizesAttention = false;
    a.minWeightBits = 4;
    a.totalAreaMm2 = areaReport(name).totalMm2();
    return a;
}

} // namespace

ArchConfig
mantArch()
{
    ArchConfig a;
    a.name = "MANT";
    a.peBits = 8;
    a.numPes = 1024;
    a.arrayCols = 32;
    a.mantFused = true;
    a.hasRqu = true;
    a.groupwiseHw = true;
    a.quantizesAttention = true;
    a.minWeightBits = 2;
    a.totalAreaMm2 = areaReport("MANT").totalMm2();
    return a;
}

ArchConfig
antArch()
{
    return baseline4bit("ANT");
}

ArchConfig
oliveArch()
{
    return baseline4bit("OliVe");
}

ArchConfig
tenderArch()
{
    return baseline4bit("Tender");
}

ArchConfig
bitFusionArch()
{
    ArchConfig a = baseline4bit("BitFusion");
    a.minWeightBits = 4;
    return a;
}

std::span<const ArchConfig>
allArchs()
{
    static const std::vector<ArchConfig> archs = {
        mantArch(), tenderArch(), oliveArch(), antArch(),
        bitFusionArch()};
    return {archs.data(), archs.size()};
}

} // namespace mant
