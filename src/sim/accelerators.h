/**
 * @file
 * Named accelerator configurations (Sec. VII-A): MANT plus the four
 * baselines, area-equalized, sharing bandwidth / buffers / frequency.
 */

#ifndef MANT_SIM_ACCELERATORS_H_
#define MANT_SIM_ACCELERATORS_H_

#include <span>

#include "sim/arch_config.h"
#include "sim/area_model.h"

namespace mant {

/** The MANT accelerator: 1024 8-bit PEs + 32 RQUs, fused decode. */
ArchConfig mantArch();

/** ANT*: 4096 4-bit PEs, adaptive-type decoders, 8-bit INT operation. */
ArchConfig antArch();

/** OliVe: 4096 4-bit PEs + outlier decoders, 4/8 mixed precision. */
ArchConfig oliveArch();

/** Tender: 4096 4-bit PEs, shift-based rescaling, 4/8 mixed. */
ArchConfig tenderArch();

/** BitFusion: 4096 4-bit fusion PEs, INT quantization, 8/16 mixed. */
ArchConfig bitFusionArch();

/** All five, in the figures' order: MANT, Tender, OliVe, ANT*, BitFusion. */
std::span<const ArchConfig> allArchs();

} // namespace mant

#endif // MANT_SIM_ACCELERATORS_H_
