/**
 * @file
 * Accelerator architecture descriptors.
 *
 * All five accelerators share memory bandwidth, buffer size and
 * frequency (Sec. VII-A) and are area-equalized: MANT has 1024 8-bit
 * PEs + 32 RQUs, the baselines 4096 4-bit fusion PEs. Mixed-precision
 * throughput follows BitFusion composition: an (wa x wb) operation
 * occupies wa*wb / peBits² PEs, so lanes = numPes * peBits² / (wa*wb).
 */

#ifndef MANT_SIM_ARCH_CONFIG_H_
#define MANT_SIM_ARCH_CONFIG_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "sim/energy_model.h"

namespace mant {

/** Static description of one accelerator. */
struct ArchConfig
{
    std::string name;

    int peBits = 8;        ///< native PE operand width
    int64_t numPes = 1024; ///< PE count (area-equalized)
    int64_t arrayCols = 32; ///< systolic output columns (N tile)

    double freqGHz = 1.0;
    double dramGBps = 128.0;
    int64_t bufferKB = 512;

    /** Fused MANT decode (MAC+SAC) available in the PEs. */
    bool mantFused = false;
    /** On-chip real-time quantization units present. */
    bool hasRqu = false;
    /** Hardware support for per-group scale handling in accumulation. */
    bool groupwiseHw = false;
    /** Quantizes the attention layer (baselines run it at FP16). */
    bool quantizesAttention = false;

    /** Minimum operand width the datapath supports for weights. */
    int minWeightBits = 2;

    double totalAreaMm2 = 0.0; ///< from the area model

    EnergyParams energy;

    /** Parallel (wa x wb) lanes under BitFusion-style composition. */
    int64_t
    lanes(int wa, int wb) const
    {
        const int64_t pe_cap = static_cast<int64_t>(peBits) * peBits;
        const int64_t need =
            static_cast<int64_t>(std::max(wa, 2)) * std::max(wb, 2);
        // Composition can split a PE (two 8x4 ops per 8-bit PE) or gang
        // PEs (four 4-bit PEs per 8x8 op); both directions are ratios.
        return std::max<int64_t>(1, numPes * pe_cap / need);
    }

    /** Systolic accumulation rows for a precision mode. */
    int64_t
    arrayRows(int wa, int wb) const
    {
        return std::max<int64_t>(1, lanes(wa, wb) / arrayCols);
    }

    /** DRAM bytes transferable per cycle. */
    double
    bytesPerCycle() const
    {
        return dramGBps / freqGHz;
    }

    /** Static power in watts (density x area). */
    double
    staticWatts() const
    {
        return energy.staticMwPerMm2 * totalAreaMm2 * 1e-3;
    }
};

} // namespace mant

#endif // MANT_SIM_ARCH_CONFIG_H_
