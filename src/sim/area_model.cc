#include "sim/area_model.h"

#include <stdexcept>

namespace mant {

double
AreaReport::coreMm2() const
{
    double total = 0.0;
    for (const AreaItem &i : core)
        total += i.totalMm2();
    return total;
}

double
AreaReport::sharedMm2() const
{
    double total = 0.0;
    for (const AreaItem &i : shared)
        total += i.totalMm2();
    return total;
}

double
AreaReport::totalMm2() const
{
    return coreMm2() + sharedMm2();
}

AreaReport
areaReport(const std::string &arch)
{
    AreaReport r;
    r.arch = arch;
    // Shared components are identical across accelerators (Sec. VII-C).
    r.shared = {
        {"buffer-512KB", area::kBufferMm2 * 1e6, 1},
        {"vector-units-x64", area::kVectorUnitsMm2 * 1e6, 1},
        {"accumulation-units-x32", area::kAccumUnitsMm2 * 1e6, 1},
    };

    if (arch == "MANT") {
        r.core = {
            {"8-bit PE", area::kMant8bitPeUm2, 1024},
            {"RQU", area::kRquUm2, 32},
        };
    } else if (arch == "OliVe") {
        r.core = {
            {"4-bit PE", area::kOlive4bitPeUm2, 4096},
            {"4-bit decoder", area::kOlive4bitDecoderUm2, 128},
            {"8-bit decoder", area::kOlive8bitDecoderUm2, 64},
        };
    } else if (arch == "ANT") {
        r.core = {
            {"4-bit PE", area::kAnt4bitPeUm2, 4096},
            {"decoder", area::kAntDecoderUm2, 128},
        };
    } else if (arch == "Tender") {
        r.core = {
            {"4-bit PE", area::kTender4bitPeUm2, 4096},
        };
    } else if (arch == "BitFusion") {
        r.core = {
            {"4-bit PE", area::kBitFusion4bitPeUm2, 4096},
        };
    } else {
        throw std::invalid_argument("areaReport: unknown arch " + arch);
    }
    return r;
}

} // namespace mant
