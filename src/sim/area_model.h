/**
 * @file
 * Area model (Tbl. IV): per-component areas at 28 nm. The per-PE /
 * decoder / RQU figures are the paper's own synthesis results (used
 * here as constants); buffer and vector-unit areas likewise. Totals
 * feed the static-power model and the area-equalization argument
 * (baselines get 4x the 4-bit PEs of MANT's 8-bit PEs).
 */

#ifndef MANT_SIM_AREA_MODEL_H_
#define MANT_SIM_AREA_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mant {

/** One area line item. */
struct AreaItem
{
    std::string component;
    double unitUm2 = 0.0; ///< area per instance, µm²
    int64_t count = 0;

    double
    totalMm2() const
    {
        return unitUm2 * static_cast<double>(count) * 1e-6;
    }
};

/** Area report for one accelerator. */
struct AreaReport
{
    std::string arch;
    std::vector<AreaItem> core;   ///< PEs, decoders, RQUs
    std::vector<AreaItem> shared; ///< buffers, vector units, accumulators

    double coreMm2() const;
    double sharedMm2() const;
    double totalMm2() const;
};

/** Tbl. IV constants (µm², 28 nm). */
namespace area {
inline constexpr double kMant8bitPeUm2 = 281.75;
inline constexpr double kRquUm2 = 416.63;
inline constexpr double kOlive4bitPeUm2 = 79.57;
inline constexpr double kOlive4bitDecoderUm2 = 48.51;
inline constexpr double kOlive8bitDecoderUm2 = 73.25;
inline constexpr double kAnt4bitPeUm2 = 79.57;
inline constexpr double kAntDecoderUm2 = 4.9;
inline constexpr double kTender4bitPeUm2 = 77.28;
/** BitFusion PE modelled like the other 4-bit fusion PEs. */
inline constexpr double kBitFusion4bitPeUm2 = 79.57;
inline constexpr double kBufferMm2 = 4.2;      // 512 KB
inline constexpr double kVectorUnitsMm2 = 0.069; // #64
inline constexpr double kAccumUnitsMm2 = 0.016;  // #32
} // namespace area

/** Build the Tbl. IV report for a named architecture
 *  ("MANT", "ANT", "OliVe", "Tender", "BitFusion"). */
AreaReport areaReport(const std::string &arch);

} // namespace mant

#endif // MANT_SIM_AREA_MODEL_H_
