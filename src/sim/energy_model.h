/**
 * @file
 * Energy model constants and accounting (28 nm).
 *
 * Per DESIGN.md §2 (substitution 4), synthesis/CACTI numbers are
 * replaced by an analytic model. Constants are drawn from published
 * 28-45 nm figures, primarily Horowitz, "Computing's energy problem"
 * (ISSCC 2014), scaled to 28 nm:
 *  - INT8 multiply ≈ 0.2 pJ @45 nm -> ≈ 0.12 pJ @28 nm; multiplier
 *    energy scales roughly with the product of operand widths;
 *  - 32-bit add ≈ 0.1 pJ @45 nm -> ≈ 0.06 pJ;
 *  - large SRAM ≈ 0.08 pJ/bit per access (CACTI-class 512 KB array);
 *  - DRAM ≈ 15 pJ/bit end-to-end (DDR4-class);
 *  - static power density ≈ 30 mW/mm² for always-on logic at 28 nm.
 * Absolute joules are therefore approximate; the benches report values
 * normalized to a baseline, which is what the paper's figures show.
 */

#ifndef MANT_SIM_ENERGY_MODEL_H_
#define MANT_SIM_ENERGY_MODEL_H_

namespace mant {

/** Tunable energy constants (picojoules unless noted). */
struct EnergyParams
{
    /** INT8xINT8 MAC; other widths scale by (wa*wb)/64. */
    double macPj8x8 = 0.12;

    /** Shift-accumulate (the SAC lane): barrel shift + add. */
    double sacPj = 0.04;

    /** Vector-unit op (FP16 multiply for dequant scale products). */
    double vectorPj = 0.4;

    /** RQU element step (FP16 compare + two FP16 accumulates). */
    double rquPj = 0.3;

    /** On-chip buffer access energy per byte. */
    double sramPjPerByte = 0.64; // 0.08 pJ/bit

    /** DRAM access energy per byte. */
    double dramPjPerByte = 120.0; // 15 pJ/bit

    /** Static power density, mW per mm² of accelerator area. */
    double staticMwPerMm2 = 30.0;
};

/** MAC energy for an (wa x wb)-bit multiply-accumulate. */
inline double
macEnergyPj(const EnergyParams &p, int wa, int wb)
{
    return p.macPj8x8 * static_cast<double>(wa) *
           static_cast<double>(wb) / 64.0;
}

/** Energy totals by component (joules). */
struct EnergyBreakdown
{
    double corePj = 0.0;
    double bufferPj = 0.0;
    double dramPj = 0.0;
    double staticPj = 0.0;

    double
    totalPj() const
    {
        return corePj + bufferPj + dramPj + staticPj;
    }

    void
    add(const EnergyBreakdown &o)
    {
        corePj += o.corePj;
        bufferPj += o.bufferPj;
        dramPj += o.dramPj;
        staticPj += o.staticPj;
    }
};

} // namespace mant

#endif // MANT_SIM_ENERGY_MODEL_H_
