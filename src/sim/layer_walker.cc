#include "sim/layer_walker.h"

#include <stdexcept>
#include <vector>

#include "core/parallel.h"

namespace mant {

namespace {

GemmShape
linearShape(const WalkSpec &spec, int64_t k, int64_t n, int weightBits)
{
    GemmShape g;
    g.m = spec.stage == Stage::Prefill ? spec.seqLen : 1;
    g.k = k;
    g.n = n;
    g.actBits = spec.actFollowsWeights ? weightBits : spec.actBits;
    g.weightBits = weightBits;
    g.groupSize = spec.groupSize;
    // The fused MANT path only applies to 4-bit MANT-coded weights;
    // layers promoted to 8-bit run as plain INT8.
    g.mantWeights = spec.mantWeights && weightBits == 4;
    g.outputQuant = spec.quantizeOutputs;
    g.weightsFromDram = true;
    return g;
}

} // namespace

std::vector<WorkItem>
linearWork(const WalkSpec &spec)
{
    const ArchDims &d = spec.dims;
    if (!spec.layerWeightBits.empty() &&
        static_cast<int64_t>(spec.layerWeightBits.size()) != d.nLayers) {
        throw std::invalid_argument(
            "linearWork: layerWeightBits size must equal nLayers");
    }

    std::vector<WorkItem> items;
    for (int64_t l = 0; l < d.nLayers; ++l) {
        const int bits =
            spec.layerWeightBits.empty()
                ? spec.defaultWeightBits
                : spec.layerWeightBits[static_cast<size_t>(l)];
        items.push_back({"qkv+o l" + std::to_string(l),
                         linearShape(spec, d.dModel, d.dModel, bits), 4});
        items.push_back({"ffn-up l" + std::to_string(l),
                         linearShape(spec, d.dModel, d.dFfn, bits),
                         spec.ffnMats - 1});
        items.push_back({"ffn-down l" + std::to_string(l),
                         linearShape(spec, d.dFfn, d.dModel, bits), 1});
    }
    return items;
}

std::vector<WorkItem>
attentionWork(const WalkSpec &spec)
{
    const ArchDims &d = spec.dims;
    const int64_t dh = d.headDim();
    const int64_t m = spec.stage == Stage::Prefill ? spec.seqLen : 1;
    const int64_t ctx = spec.seqLen;

    std::vector<WorkItem> items;

    // Q * K^T: reduction over the head dim; the K cache streams from
    // DRAM as "dynamic weights".
    GemmShape qk;
    qk.m = m;
    qk.k = dh;
    qk.n = ctx;
    qk.actBits = spec.attnActBits;
    qk.weightBits = spec.kvBits;
    qk.groupSize = spec.attnGroupSize;
    qk.mantWeights = spec.mantKv;
    qk.outputQuant = spec.mantKv; // scores requantized for P
    qk.weightsFromDram = true;
    items.push_back({"qk^T", qk, d.nLayers * d.nHeads});

    // P * V: reduction over the sequence.
    GemmShape pv;
    pv.m = m;
    pv.k = ctx;
    pv.n = dh;
    pv.actBits = spec.attnActBits;
    pv.weightBits = spec.kvBits;
    pv.groupSize = spec.attnGroupSize;
    pv.mantWeights = spec.mantKv;
    pv.outputQuant = spec.mantKv;
    pv.weightsFromDram = true;
    items.push_back({"pv", pv, d.nLayers * d.nHeads});

    return items;
}

GemmStats
runWork(const ArchConfig &arch, std::span<const WorkItem> items)
{
    // simulateGemm is a pure function of (arch, shape): simulate the
    // items in parallel, then merge in item order so the aggregate is
    // bit-identical at any thread count — the same walk discipline as
    // the quantizer engines, keeping baseline sims apples-to-apples.
    const int64_t n = static_cast<int64_t>(items.size());
    std::vector<GemmStats> per_item(static_cast<size_t>(n));
    parallelFor(0, n, 1, [&](int64_t b, int64_t e, int64_t) {
        for (int64_t i = b; i < e; ++i) {
            per_item[static_cast<size_t>(i)] =
                simulateGemm(arch, items[static_cast<size_t>(i)].shape);
        }
    });
    GemmStats total;
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t c = 0; c < items[static_cast<size_t>(i)].count;
             ++c)
            total.add(per_item[static_cast<size_t>(i)]);
    }
    return total;
}

} // namespace mant
