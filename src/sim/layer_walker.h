/**
 * @file
 * Transformer -> GEMM decomposition for the accelerator simulator.
 *
 * Walks a model's published (full-size) dimensions and emits the GEMM
 * work list of the linear layers and/or the attention layers, for the
 * prefill stage (M = sequence) or one decode step (M = 1 at a given
 * context length). Per-layer weight bit widths come from the
 * error-budget policy, reproducing the paper's PPL-aligned
 * mixed-precision baselines.
 */

#ifndef MANT_SIM_LAYER_WALKER_H_
#define MANT_SIM_LAYER_WALKER_H_

#include <string>
#include <vector>

#include "model/config.h"
#include "sim/systolic.h"

namespace mant {

/** Inference stage being simulated. */
enum class Stage
{
    Prefill, ///< GEMM over the whole sequence
    Decode,  ///< GEMV for one token at a context length
};

/** One GEMM of the walk, with a repeat count. */
struct WorkItem
{
    std::string what;
    GemmShape shape;
    int64_t count = 1;
};

/** Everything the walker needs to emit work for one accelerator. */
struct WalkSpec
{
    ArchDims dims;
    Stage stage = Stage::Prefill;
    int64_t seqLen = 2048; ///< prefill length / decode context

    /** FFN matrices per layer: 3 for SwiGLU (LLaMA), 2 for OPT/BLOOM. */
    int ffnMats = 3;

    /** Per-layer weight bits (size nLayers); empty = all defaultBits. */
    std::vector<int> layerWeightBits;
    int defaultWeightBits = 4;

    int actBits = 8;
    /** Baselines' PEs couple activation and weight widths (Sec.
     *  VII-B): when set, each layer's activations use its weight
     *  bits instead of actBits. */
    bool actFollowsWeights = false;
    int64_t groupSize = 64; ///< 0 = channel/tensor-wise metadata
    bool mantWeights = false;
    bool quantizeOutputs = false; ///< runtime activation re-quant

    /** Attention configuration (the baselines run it at FP16). */
    int attnActBits = 16;
    int kvBits = 16;
    int64_t attnGroupSize = 0;
    bool mantKv = false;
};

/** GEMMs of all linear (projection + FFN) layers. */
std::vector<WorkItem> linearWork(const WalkSpec &spec);

/** GEMMs of all attention (QK^T and PV) operations. */
std::vector<WorkItem> attentionWork(const WalkSpec &spec);

/** Simulate a work list on an architecture and aggregate the stats. */
GemmStats runWork(const ArchConfig &arch,
                  std::span<const WorkItem> items);

} // namespace mant

#endif // MANT_SIM_LAYER_WALKER_H_
