#include "sim/policy.h"

#include <string>

#include "model/quantized_linear.h"
#include "tensor/stats.h"

namespace mant {

namespace {

/** The activation method each weight method's hardware pairs with. */
ActMethod
pairedActMethod(WeightMethod wm)
{
    switch (wm) {
      case WeightMethod::Ant: return ActMethod::Ant;
      case WeightMethod::Olive: return ActMethod::Olive;
      case WeightMethod::Tender: return ActMethod::Tender;
      case WeightMethod::Mant: return ActMethod::Int;
      default: return ActMethod::Int;
    }
}

/** Sample activation/weight pair for one arch layer. */
struct LayerSample
{
    Tensor x;   ///< (tokens, inner)
    Tensor w;   ///< (rows, inner)
    Tensor ref; ///< x * w^T
};

LayerSample
sampleLayer(const ModelProfile &profile, int64_t layer,
            const PolicyConfig &cfg)
{
    Rng rng(profile.seed * 7919 + static_cast<uint64_t>(layer) * 131);
    const DistProfile &stats =
        layer == 0 ? profile.firstLayerStats : profile.weightStats;
    LayerSample s;
    s.w = genWeightMatrix(rng, cfg.sampleRows, cfg.sampleCols, stats);
    s.x = genActivationMatrix(rng, 64, cfg.sampleCols, profile.actStats);
    s.ref = linearNT(s.x, s.w);
    return s;
}

/**
 * Output NMSE of one layer sample under (method, width): quantize both
 * operands the way the method's hardware would and compare the GEMM
 * output against the FP reference. Width 16 means FP16 storage.
 */
double
layerOutputNmse(const LayerSample &s, WeightMethod method, int width,
                const PolicyConfig &cfg)
{
    QuantSetup setup;
    setup.weightGran = cfg.granularity;
    setup.weightGroup = cfg.groupSize;
    setup.actGran = cfg.granularity == Granularity::PerGroup
                        ? Granularity::PerGroup
                        : Granularity::PerTensor;
    setup.actGroup = cfg.groupSize;

    if (width >= 16) {
        setup.weight = WeightMethod::Fp16;
        setup.act = ActMethod::None;
    } else {
        setup.weight = method;
        setup.weightBits = width;
        setup.act = pairedActMethod(method);
        // MANT's activations are always INT8; the baselines' hardware
        // couples activation and weight widths (Sec. VII-B).
        setup.actBits = method == WeightMethod::Mant ? 8 : width;
    }

    const Tensor weff = quantizeWeightMatrix(s.w, setup);
    const Tensor xeff = setup.act == ActMethod::None
                            ? s.x
                            : quantizeActivations(s.x, setup);
    const Tensor out = linearNT(xeff, weff);
    return nmse(s.ref.span(), out.span());
}

/** Per-layer parameter count of the full-size model. */
int64_t
layerParams(const ArchDims &d, int ffnMats)
{
    return 4 * d.dModel * d.dModel +
           static_cast<int64_t>(ffnMats) * d.dModel * d.dFfn;
}

} // namespace

double
mantErrorBudget(const ModelProfile &profile, const PolicyConfig &cfg)
{
    PolicyConfig mant_cfg = cfg;
    mant_cfg.granularity = Granularity::PerGroup;

    const int64_t n_layers = profile.archDims.nLayers;
    double err = 0.0;
    for (int64_t l = 0; l < n_layers; ++l) {
        const LayerSample s = sampleLayer(profile, l, mant_cfg);
        err += layerOutputNmse(s, WeightMethod::Mant, 4, mant_cfg);
    }
    return err / static_cast<double>(n_layers);
}

PrecisionPlan
alignPrecision(const ModelProfile &profile, WeightMethod method,
               std::span<const int> widths, double budget,
               const PolicyConfig &cfg)
{
    const int64_t n_layers = profile.archDims.nLayers;
    const int ffn_mats =
        profile.family == ModelFamily::Llama ? 3 : 2;
    const int64_t params = layerParams(profile.archDims, ffn_mats);

    std::vector<TieredLayerError> layers;
    layers.reserve(static_cast<size_t>(n_layers));
    for (int64_t l = 0; l < n_layers; ++l) {
        const LayerSample s = sampleLayer(profile, l, cfg);
        TieredLayerError e;
        e.name = "layer" + std::to_string(l);
        e.weightCount = params;
        for (int w : widths) {
            e.bits.push_back(w);
            e.nmse.push_back(layerOutputNmse(s, method, w, cfg));
        }
        layers.push_back(std::move(e));
    }

    const TieredAssignment a = assignBitsTiered(layers, budget);
    PrecisionPlan plan;
    plan.layerBits = a.bits;
    plan.aggregateNmse = a.aggregateNmse;
    plan.avgBits = a.avgBits;
    for (int b : a.bits) {
        if (b > widths.front())
            ++plan.layersAbove4;
    }
    return plan;
}

} // namespace mant
