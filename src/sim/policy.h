/**
 * @file
 * PPL-aligned precision policy (Sec. VII-A methodology).
 *
 * The paper compares accelerators at "nearly equivalent area and PPL":
 * each baseline promotes layers to higher precision until its accuracy
 * matches MANT's. We reproduce this honestly: per arch layer we sample
 * a weight matrix with the model's statistics, measure the method's
 * quantization NMSE at each candidate width, and run the greedy
 * error-budget assignment with MANT's own aggregate error as budget.
 */

#ifndef MANT_SIM_POLICY_H_
#define MANT_SIM_POLICY_H_

#include <vector>

#include "model/model_profiles.h"
#include "model/quant_setup.h"
#include "quant/mixed_precision.h"

namespace mant {

/** Result: the per-layer bit map fed to the layer walker. */
struct PrecisionPlan
{
    std::vector<int> layerBits; ///< one entry per arch layer
    double aggregateNmse = 0.0;
    double avgBits = 0.0;
    int layersAbove4 = 0;
};

/** Options for the policy measurement. */
struct PolicyConfig
{
    int64_t sampleRows = 96;  ///< proxy matrix rows per layer
    int64_t sampleCols = 512; ///< proxy matrix cols (inner dim)
    int64_t groupSize = 64;   ///< group size for group-wise methods
    Granularity granularity = Granularity::PerChannel;
};

/**
 * Measured aggregate NMSE of MANT 4-bit group-wise quantization on the
 * profile — this is the budget the baselines must meet.
 */
double mantErrorBudget(const ModelProfile &profile,
                       const PolicyConfig &cfg = {});

/**
 * Build the PPL-aligned per-layer bit map for a baseline method.
 *
 * @param profile  Model whose layers are sampled.
 * @param method   Baseline weight method.
 * @param widths   Candidate widths ascending (e.g. {4, 8} or {8, 16}).
 * @param budget   Aggregate NMSE budget (use mantErrorBudget()).
 */
PrecisionPlan alignPrecision(const ModelProfile &profile,
                             WeightMethod method,
                             std::span<const int> widths, double budget,
                             const PolicyConfig &cfg = {});

} // namespace mant

#endif // MANT_SIM_POLICY_H_
