#include "sim/report.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace mant {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " | ") << std::left
               << std::setw(static_cast<int>(width[c])) << row[c];
        }
        os << " |\n";
    };
    emit(headers_);
    os << "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
        os << std::string(width[c] + 2, '-') << "|";
    }
    os << "\n";
    for (const auto &row : rows_)
        emit(row);
}

std::string
fmt(double value, int precision)
{
    std::ostringstream ss;
    if (value != 0.0 && (value >= 1e5 || value < 1e-3)) {
        ss << std::scientific << std::setprecision(1) << value;
    } else {
        ss << std::fixed << std::setprecision(precision) << value;
    }
    return ss.str();
}

std::string
fmtX(double value, int precision)
{
    return fmt(value, precision) + "x";
}

void
banner(std::ostream &os, const std::string &title)
{
    os << "\n=== " << title << " ===\n\n";
}

} // namespace mant
