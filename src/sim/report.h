/**
 * @file
 * Table formatting for the bench binaries: fixed-width columns that
 * read like the paper's tables on a terminal.
 */

#ifndef MANT_SIM_REPORT_H_
#define MANT_SIM_REPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace mant {

/** Accumulates rows and prints a fixed-width table. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision. */
std::string fmt(double value, int precision = 2);

/** Format as "x.yz×" (speedup style). */
std::string fmtX(double value, int precision = 2);

/** Section banner for bench output. */
void banner(std::ostream &os, const std::string &title);

} // namespace mant

#endif // MANT_SIM_REPORT_H_
