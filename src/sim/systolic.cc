#include "sim/systolic.h"

#include <algorithm>
#include <cmath>

namespace mant {

void
GemmStats::add(const GemmStats &o)
{
    computeCycles += o.computeCycles;
    memCycles += o.memCycles;
    exposedQuantCycles += o.exposedQuantCycles;
    cycles += o.cycles;
    memoryBound = memoryBound || o.memoryBound;
    macOps += o.macOps;
    sacOps += o.sacOps;
    vectorOps += o.vectorOps;
    rquOps += o.rquOps;
    dramBytes += o.dramBytes;
    bufferBytes += o.bufferBytes;
    energy.add(o.energy);
}

double
exposedDividerCycles(int64_t kTiles, int64_t nTiles)
{
    // The divider pipeline overlaps with the next tile's K-iterations;
    // with >= 12 iterations the 12-cycle latency is fully hidden.
    if (kTiles >= kDividerLatency)
        return 0.0;
    return static_cast<double>(kDividerLatency - kTiles) *
           static_cast<double>(nTiles);
}

double
rquTailCycles(int64_t cols, int64_t groupSize)
{
    // Comparator chain fill plus the final reduction rounds for one
    // group (Fig. 10: 64-element groups over 32 RQUs need 2 rounds).
    const int64_t rounds = (groupSize + cols - 1) / cols;
    return static_cast<double>(cols + rounds);
}

GemmStats
simulateGemm(const ArchConfig &arch, const GemmShape &shape)
{
    GemmStats s;
    const int wa = shape.actBits;
    const int wb = std::max(shape.weightBits, arch.minWeightBits);

    const int64_t cols = arch.arrayCols;
    const int64_t rows = arch.arrayRows(wa, wb);
    const int64_t k_tiles = (shape.k + rows - 1) / rows;
    const int64_t n_tiles = (shape.n + cols - 1) / cols;

    // --- Compute timing. Weight tiles are double-buffered and stream
    // into the array at lane rate, so consecutive tiles (across both K
    // and N) run back to back and the (rows + cols) pipeline fill is a
    // one-time latency. This is what makes the decode-stage GEMV
    // bandwidth-bound rather than fill-bound, matching the paper's
    // characterization of the decode stage.
    s.computeCycles =
        static_cast<double>(k_tiles) * static_cast<double>(n_tiles) *
            static_cast<double>(shape.m) +
        static_cast<double>(rows) + static_cast<double>(cols);

    // --- Output quantization overhead.
    if (shape.outputQuant) {
        if (arch.hasRqu) {
            s.exposedQuantCycles =
                exposedDividerCycles(k_tiles, n_tiles) +
                rquTailCycles(cols, shape.groupSize > 0 ? shape.groupSize
                                                        : cols);
            s.rquOps = 2.0 * static_cast<double>(shape.m) *
                       static_cast<double>(shape.n);
        } else {
            // No RQU: scale search + division run on the vector units,
            // serialized after the GEMM (Sec. VII-D).
            s.exposedQuantCycles =
                static_cast<double>(shape.m) *
                    static_cast<double>(shape.n) / 64.0 +
                static_cast<double>(kDividerLatency) *
                    static_cast<double>(n_tiles);
            s.vectorOps += static_cast<double>(shape.m) *
                           static_cast<double>(shape.n);
        }
    }

    // --- DRAM traffic.
    const double w_elems =
        static_cast<double>(shape.k) * static_cast<double>(shape.n);
    const double a_elems =
        static_cast<double>(shape.m) * static_cast<double>(shape.k);
    const double o_elems =
        static_cast<double>(shape.m) * static_cast<double>(shape.n);

    double w_bytes = w_elems * wb / 8.0;
    double a_bytes = a_elems * wa / 8.0;
    if (shape.groupSize > 0) {
        const double w_groups =
            std::ceil(static_cast<double>(shape.k) /
                      static_cast<double>(shape.groupSize)) *
            static_cast<double>(shape.n);
        const double a_groups =
            std::ceil(static_cast<double>(shape.k) /
                      static_cast<double>(shape.groupSize)) *
            static_cast<double>(shape.m);
        // FP16 scale per group; MANT adds the 8-bit coefficient.
        w_bytes += w_groups * (2.0 + (shape.mantWeights ? 1.0 : 0.0));
        a_bytes += a_groups * 2.0;
    }
    const double o_bytes = o_elems * (shape.outputQuant ? 1.0 : 2.0);

    s.dramBytes = a_bytes + o_bytes +
                  (shape.weightsFromDram ? w_bytes : 0.0);
    s.memCycles = s.dramBytes / arch.bytesPerCycle();

    // Quantization overhead is compute-side: when the GEMM is
    // bandwidth-bound it hides under the DRAM stalls.
    s.memoryBound = s.memCycles > s.computeCycles;
    s.cycles = std::max(s.computeCycles + s.exposedQuantCycles,
                        s.memCycles);

    // --- Operation counts.
    s.macOps = static_cast<double>(shape.m) *
               static_cast<double>(shape.k) *
               static_cast<double>(shape.n);
    s.sacOps = (shape.mantWeights && arch.mantFused) ? s.macOps : 0.0;
    // Deferred dequantization: one scale multiply per output partial
    // per K-tile, pipelined in the accumulators (Sec. VI-E).
    s.vectorOps += o_elems * static_cast<double>(k_tiles);

    // --- Buffer traffic: weights once, activations once per N-tile,
    // outputs write+read once (accumulation lives in the accumulator
    // registers between K-tiles).
    s.bufferBytes = w_bytes +
                    a_bytes * static_cast<double>(n_tiles) +
                    o_elems * 4.0 * 2.0;

    // --- Energy.
    const EnergyParams &e = arch.energy;
    s.energy.corePj = s.macOps * macEnergyPj(e, wa, wb) +
                      s.sacOps * e.sacPj + s.vectorOps * e.vectorPj +
                      s.rquOps * e.rquPj;
    s.energy.bufferPj = s.bufferBytes * e.sramPjPerByte;
    s.energy.dramPj = s.dramBytes * e.dramPjPerByte;
    // staticW * seconds -> J; convert to pJ (1e12), cycles at GHz (1e9).
    s.energy.staticPj =
        arch.staticWatts() * s.cycles / (arch.freqGHz * 1e9) * 1e12;
    return s;
}

} // namespace mant
