/**
 * @file
 * Cycle-level GEMM simulation on the weight-stationary systolic array
 * (Sec. VI-B / VI-E). Tile-granularity accounting, the modelling level
 * of DNNWeaver-class simulators: double-buffered weight tiles (fill and
 * drain paid once per output-column tile, so consecutive K-tiles stream
 * back to back), the deferred group-wise dequantization in the
 * accumulators, RQU overlap for output quantization, the non-pipelined
 * 12-cycle division unit (hidden once a tile accumulates over >= 12
 * K-iterations), and a bandwidth-limited DRAM model; energy by
 * component.
 */

#ifndef MANT_SIM_SYSTOLIC_H_
#define MANT_SIM_SYSTOLIC_H_

#include <cstdint>
#include <string>

#include "sim/arch_config.h"

namespace mant {

/** One GEMM (or GEMV) workload. */
struct GemmShape
{
    int64_t m = 1; ///< output rows (1 in the decode stage)
    int64_t k = 1; ///< reduction dimension
    int64_t n = 1; ///< output columns

    int actBits = 8;
    int weightBits = 4;

    /** Group size of the quantized operands (0 = channel/tensor-wise:
     *  scale handling costs nothing extra per group). */
    int64_t groupSize = 64;

    /** Weight operand is MANT-coded (enables the SAC lane cost). */
    bool mantWeights = false;

    /** Output must be re-quantized in real time (activations / KV). */
    bool outputQuant = false;

    /** The "weight" operand streams from DRAM each time (weights, KV
     *  cache) rather than staying resident. */
    bool weightsFromDram = true;
};

/** Simulation result for one GEMM (all values for a single pass). */
struct GemmStats
{
    double computeCycles = 0.0;
    double memCycles = 0.0;
    double exposedQuantCycles = 0.0;
    double cycles = 0.0; ///< max(compute, mem) + exposed
    bool memoryBound = false;

    double macOps = 0.0;
    double sacOps = 0.0;
    double vectorOps = 0.0;
    double rquOps = 0.0;

    double dramBytes = 0.0;
    double bufferBytes = 0.0;

    EnergyBreakdown energy;

    /** Aggregate another stats record (cycles are additive: the layer
     *  walker serializes GEMMs, as the single systolic array does). */
    void add(const GemmStats &o);

    double
    timeUs(const ArchConfig &arch) const
    {
        return cycles / (arch.freqGHz * 1e3);
    }
};

/** Latency of the division unit used for scale computation. */
inline constexpr int kDividerLatency = 12;

/**
 * Simulate one GEMM on an architecture.
 *
 * @param arch  The accelerator.
 * @param shape The workload.
 */
GemmStats simulateGemm(const ArchConfig &arch, const GemmShape &shape);

/**
 * Exposed (non-hidden) output-quantization cycles for a tile that
 * accumulates over `kTiles` K-iterations: the 12-cycle non-pipelined
 * divider is fully hidden when kTiles >= 12 (Sec. VI-E).
 */
double exposedDividerCycles(int64_t kTiles, int64_t nTiles);

/**
 * RQU pipeline latency for an output tile of (rows x cols): the
 * comparator chain fills in `cols` cycles and then streams one result
 * per cycle, overlapping the array's own drain; the exposed tail is
 * cols + ceil(groupSize/cols) - pipelined against compute when more
 * tiles follow.
 */
double rquTailCycles(int64_t cols, int64_t groupSize);

} // namespace mant

#endif // MANT_SIM_SYSTOLIC_H_
