#include "tensor/distribution.h"

#include <cmath>

namespace mant {

Tensor
genWeightMatrix(Rng &rng, int64_t rows, int64_t cols,
                const DistProfile &profile)
{
    Tensor w(Shape{rows, cols});
    const int64_t gsize = std::max<int64_t>(1, profile.shapeGroup);

    for (int64_t r = 0; r < rows; ++r) {
        // Channel-level scale.
        const double chan_sigma =
            rng.logNormal(profile.sigmaMu, profile.sigmaSpread);
        float *row = w.data() + r * cols;

        for (int64_t g0 = 0; g0 < cols; g0 += gsize) {
            const int64_t g1 = std::min(cols, g0 + gsize);
            // Group-level drift and shape selection: this is what makes
            // groups within one channel genuinely different (Fig. 3).
            const double sigma =
                chan_sigma * rng.logNormal(0.0, profile.groupDrift);
            const double shape_pick = rng.uniform();
            const double lap_hi = profile.laplaceMix;
            const double uni_hi = lap_hi + profile.uniformMix;
            const double logu_hi = uni_hi + profile.logUniformMix;

            for (int64_t c = g0; c < g1; ++c) {
                double v;
                if (shape_pick < lap_hi) {
                    v = rng.laplace(sigma / std::sqrt(2.0));
                } else if (shape_pick < uni_hi) {
                    v = rng.uniform(-sigma * 1.7320508, sigma * 1.7320508);
                } else if (shape_pick < logu_hi) {
                    // Log-uniform magnitudes over several octaves.
                    const double e = rng.uniform(
                        -profile.logUniformOctaves, 0.0);
                    v = (rng.bernoulli(0.5) ? 1.0 : -1.0) * sigma *
                        std::exp2(e + 2.0);
                } else {
                    v = rng.gaussian(0.0, sigma);
                }
                if (rng.bernoulli(profile.outlierRate)) {
                    // Heavy-tail outlier: Student-t(3) scaled up.
                    v = rng.studentT(3.0) * sigma * profile.outlierScale;
                }
                row[c] = static_cast<float>(v);
            }
        }
    }
    return w;
}

Tensor
genActivationMatrix(Rng &rng, int64_t tokens, int64_t features,
                    const ActProfile &profile)
{
    Tensor x(Shape{tokens, features});

    // Systematic hot channels: choose them once so every token shares
    // the same outlier channels, like real LLM activations.
    std::vector<double> chan_scale(static_cast<size_t>(features));
    for (int64_t c = 0; c < features; ++c) {
        double s = profile.sigma * rng.logNormal(0.0, profile.channelSpread);
        if (rng.bernoulli(profile.outlierChannelRate))
            s *= profile.outlierChannelScale;
        chan_scale[static_cast<size_t>(c)] = s;
    }

    for (int64_t t = 0; t < tokens; ++t) {
        float *row = x.data() + t * features;
        for (int64_t c = 0; c < features; ++c) {
            double v = rng.gaussian(0.0, chan_scale[static_cast<size_t>(c)]);
            if (rng.bernoulli(profile.tokenOutlierRate))
                v *= profile.tokenOutlierScale;
            row[c] = static_cast<float>(v);
        }
    }
    return x;
}

} // namespace mant
