/**
 * @file
 * Synthetic weight / activation generators.
 *
 * The paper's accuracy experiments run on pretrained LLaMA/OPT/BLOOM
 * checkpoints, which we do not have. These generators produce tensors
 * with the *statistics that drive quantization behaviour* (see
 * DESIGN.md §2):
 *
 *  - per-channel sigma spread (log-normal across channels), which makes
 *    channel-/tensor-wise quantization lossy and group-wise quantization
 *    much better (Fig. 1);
 *  - per-group sigma and shape drift within a channel, which creates the
 *    group-level distribution diversity of Fig. 3 (Takeaway 1);
 *  - heavy-tailed outlier injection (rate and magnitude), which is what
 *    breaks coarse INT quantization and what OliVe/Tender specialise in;
 *  - a Laplace/Gaussian shape mix, so different groups genuinely prefer
 *    different numeric types (PoT vs float-like vs NF-like vs INT).
 */

#ifndef MANT_TENSOR_DISTRIBUTION_H_
#define MANT_TENSOR_DISTRIBUTION_H_

#include <cstdint>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace mant {

/**
 * Statistical profile of one tensor class (e.g. "LLaMA-7B attention
 * weights" or "OPT activations").
 */
struct DistProfile
{
    /** Mean of log(sigma) across channels. exp(sigmaMu) ~ typical scale. */
    double sigmaMu = -3.9; // exp(-3.9) ~ 0.02, a typical LLM weight sigma

    /** Std-dev of log(sigma) across channels (channel diversity). */
    double sigmaSpread = 0.3;

    /** Std-dev of log(sigma) across groups *within* a channel. */
    double groupDrift = 0.25;

    /** Fraction of elements replaced by heavy-tail outliers. */
    double outlierRate = 0.001;

    /** Outlier magnitude as a multiple of the local sigma. */
    double outlierScale = 12.0;

    /** Fraction of groups drawn from Laplace instead of Gaussian. */
    double laplaceMix = 0.25;

    /** Fraction of groups drawn from a near-uniform distribution. */
    double uniformMix = 0.05;

    /** Fraction of groups with log-uniform magnitudes spanning several
     *  octaves — the PoT-friendly shape that dominates layer 0 of real
     *  LLMs (Fig. 15's a=0 columns). */
    double logUniformMix = 0.0;

    /** Octaves of dynamic range for the log-uniform groups. */
    double logUniformOctaves = 6.0;

    /**
     * Group size used when applying per-group drift / shape mixing.
     * This is a property of the generator, independent of whatever
     * group size the quantizers later use.
     */
    int64_t shapeGroup = 64;
};

/**
 * Generate a weight matrix of shape (rows, cols) where each row is a
 * channel and quantization groups run along the inner (cols) axis.
 *
 * @param rng      Generator (consumed).
 * @param rows     Output channels.
 * @param cols     Input features (inner / accumulation dimension).
 * @param profile  Statistical profile.
 */
Tensor genWeightMatrix(Rng &rng, int64_t rows, int64_t cols,
                       const DistProfile &profile);

/**
 * Profile of activation tensors: like weights but with *systematic*
 * channel outliers — a small set of feature channels is consistently
 * large across all tokens (the well-known LLM activation pathology
 * SmoothQuant/OliVe/Tender target).
 */
struct ActProfile
{
    double sigma = 1.0;            ///< base activation scale
    double channelSpread = 0.5;    ///< log-normal spread across channels
    double outlierChannelRate = 0.01;  ///< fraction of hot channels
    double outlierChannelScale = 20.0; ///< hot channel magnitude multiple
    double tokenOutlierRate = 0.0005;  ///< sporadic single-element spikes
    double tokenOutlierScale = 10.0;
};

/**
 * Generate an activation matrix of shape (tokens, features) with
 * systematic hot channels.
 */
Tensor genActivationMatrix(Rng &rng, int64_t tokens, int64_t features,
                           const ActProfile &profile);

} // namespace mant

#endif // MANT_TENSOR_DISTRIBUTION_H_
