#include "tensor/fp16.h"

#include <cmath>
#include <cstring>

namespace mant {

namespace {

uint32_t
floatBits(float f)
{
    uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

float
bitsFloat(uint32_t u)
{
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

} // namespace

uint16_t
floatToHalfBits(float value)
{
    const uint32_t bits = floatBits(value);
    const uint32_t sign = (bits >> 16) & 0x8000u;
    int32_t exponent = static_cast<int32_t>((bits >> 23) & 0xff) - 127 + 15;
    uint32_t mantissa = bits & 0x7fffffu;

    if (((bits >> 23) & 0xff) == 0xff) {
        // Inf / NaN: keep NaN-ness, saturate exponent.
        return static_cast<uint16_t>(
            sign | 0x7c00u | (mantissa ? 0x200u : 0u));
    }
    if (exponent >= 0x1f) {
        // Overflow to infinity.
        return static_cast<uint16_t>(sign | 0x7c00u);
    }
    if (exponent <= 0) {
        // Subnormal or zero in half precision.
        if (exponent < -10)
            return static_cast<uint16_t>(sign);
        // Add the implicit leading one, then shift into subnormal range.
        mantissa |= 0x800000u;
        const int shift = 14 - exponent;
        uint32_t half_mant = mantissa >> shift;
        // Round to nearest even.
        const uint32_t rem = mantissa & ((1u << shift) - 1u);
        const uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (half_mant & 1u)))
            ++half_mant;
        return static_cast<uint16_t>(sign | half_mant);
    }
    // Normal case: round mantissa from 23 to 10 bits, nearest even.
    uint32_t half_mant = mantissa >> 13;
    const uint32_t rem = mantissa & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (half_mant & 1u))) {
        ++half_mant;
        if (half_mant == 0x400u) { // mantissa overflow -> bump exponent
            half_mant = 0;
            ++exponent;
            if (exponent >= 0x1f)
                return static_cast<uint16_t>(sign | 0x7c00u);
        }
    }
    return static_cast<uint16_t>(
        sign | (static_cast<uint32_t>(exponent) << 10) | half_mant);
}

float
halfBitsToFloat(uint16_t bits)
{
    const uint32_t sign = (static_cast<uint32_t>(bits) & 0x8000u) << 16;
    const uint32_t exponent = (bits >> 10) & 0x1f;
    const uint32_t mantissa = bits & 0x3ffu;

    if (exponent == 0) {
        if (mantissa == 0)
            return bitsFloat(sign); // signed zero
        // Subnormal: normalize.
        int e = -1;
        uint32_t m = mantissa;
        do {
            ++e;
            m <<= 1;
        } while ((m & 0x400u) == 0);
        const uint32_t exp32 = static_cast<uint32_t>(127 - 15 - e);
        return bitsFloat(sign | (exp32 << 23) | ((m & 0x3ffu) << 13));
    }
    if (exponent == 0x1f) {
        // Inf / NaN.
        return bitsFloat(sign | 0x7f800000u | (mantissa << 13));
    }
    const uint32_t exp32 = exponent - 15 + 127;
    return bitsFloat(sign | (exp32 << 23) | (mantissa << 13));
}

} // namespace mant
