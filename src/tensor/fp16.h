/**
 * @file
 * IEEE-754 binary16 (FP16) storage emulation.
 *
 * The paper stores group scaling factors and baseline activations in
 * FP16. We compute in float (binary32) but round values through binary16
 * whenever the hardware would have stored them in 16 bits, so metadata
 * precision costs are modelled faithfully.
 */

#ifndef MANT_TENSOR_FP16_H_
#define MANT_TENSOR_FP16_H_

#include <cstdint>

namespace mant {

/** Convert a float to its IEEE binary16 bit pattern (round-to-nearest-even). */
uint16_t floatToHalfBits(float value);

/** Convert an IEEE binary16 bit pattern back to float. */
float halfBitsToFloat(uint16_t bits);

/** Round a float through FP16 storage (the composition of the above). */
inline float
fp16Round(float value)
{
    return halfBitsToFloat(floatToHalfBits(value));
}

/** Largest finite FP16 value. */
inline constexpr float kFp16Max = 65504.0f;

} // namespace mant

#endif // MANT_TENSOR_FP16_H_
