/**
 * @file
 * Deterministic random number generation for every experiment.
 *
 * All randomness in the repository flows through Rng so that each bench
 * and test is reproducible from an explicit 64-bit seed. The generator
 * is a SplitMix64-seeded xoshiro256** — fast, high quality, and fully
 * specified here (no dependence on libstdc++ distribution internals for
 * the common paths, so results are stable across standard libraries).
 */

#ifndef MANT_TENSOR_RNG_H_
#define MANT_TENSOR_RNG_H_

#include <array>
#include <cstdint>
#include <cmath>

namespace mant {

/**
 * xoshiro256** PRNG with explicit-seed construction and portable
 * Gaussian / uniform / heavy-tail sampling helpers.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed) { reseed(seed); }

    /** Re-initialize the state from a seed via SplitMix64 expansion. */
    void
    reseed(uint64_t seed)
    {
        uint64_t x = seed;
        for (auto &word : state_) {
            // SplitMix64 step.
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
        hasSpare_ = false;
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t
    uniformInt(uint64_t n)
    {
        // Lemire-style rejection-free-enough bounded sampling.
        return static_cast<uint64_t>(uniform() * static_cast<double>(n));
    }

    /** Standard normal via Marsaglia polar method (cached spare). */
    double
    gaussian()
    {
        if (hasSpare_) {
            hasSpare_ = false;
            return spare_;
        }
        double u, v, s;
        do {
            u = 2.0 * uniform() - 1.0;
            v = 2.0 * uniform() - 1.0;
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        const double m = std::sqrt(-2.0 * std::log(s) / s);
        spare_ = v * m;
        hasSpare_ = true;
        return u * m;
    }

    /** Normal with explicit mean and standard deviation. */
    double
    gaussian(double mean, double stddev)
    {
        return mean + stddev * gaussian();
    }

    /** Laplace(0, b) — used for spiky per-layer weight profiles. */
    double
    laplace(double b)
    {
        const double u = uniform() - 0.5;
        return -b * std::copysign(std::log(1.0 - 2.0 * std::fabs(u)), -u);
    }

    /**
     * Student-t with the given degrees of freedom — heavy-tailed
     * samples used for outlier injection.
     */
    double
    studentT(double dof)
    {
        // t = N(0,1) / sqrt(ChiSq(dof)/dof); ChiSq via sum of squares
        // would be slow for large dof, so use the Bailey polar method.
        double u, v, w;
        do {
            u = 2.0 * uniform() - 1.0;
            v = 2.0 * uniform() - 1.0;
            w = u * u + v * v;
        } while (w > 1.0 || w == 0.0);
        const double c = u * std::sqrt(
            dof * (std::pow(w, -2.0 / dof) - 1.0) / w);
        return c;
    }

    /** Log-normal: exp(N(mu, sigma)). */
    double
    logNormal(double mu, double sigma)
    {
        return std::exp(gaussian(mu, sigma));
    }

    /** Bernoulli trial with probability p. */
    bool bernoulli(double p) { return uniform() < p; }

    /**
     * Derive an independent child generator; used to hand each tensor /
     * layer its own stream so insertion order does not perturb others.
     */
    Rng
    fork(uint64_t stream)
    {
        return Rng(next() ^ (stream * 0x9e3779b97f4a7c15ULL));
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<uint64_t, 4> state_{};
    double spare_ = 0.0;
    bool hasSpare_ = false;
};

} // namespace mant

#endif // MANT_TENSOR_RNG_H_
