/**
 * @file
 * Dense row-major tensor shape with stride arithmetic.
 *
 * The shape type is deliberately tiny: the reproduction only needs
 * rank-1..3 dense tensors (weights, activations, KV caches), so we keep
 * a small fixed-capacity dimension vector and expose the handful of
 * index helpers the rest of the library uses.
 */

#ifndef MANT_TENSOR_SHAPE_H_
#define MANT_TENSOR_SHAPE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>

namespace mant {

/**
 * A dense row-major shape of rank 1..4.
 *
 * Invariants: every dimension is >= 1; rank() is in [1, kMaxRank].
 */
class Shape
{
  public:
    static constexpr int kMaxRank = 4;

    Shape() : rank_(1) { dims_[0] = 0; }

    /** Construct from an explicit dimension list, e.g. Shape{rows, cols}. */
    Shape(std::initializer_list<int64_t> dims)
    {
        if (dims.size() == 0 || dims.size() > kMaxRank)
            throw std::invalid_argument("Shape: rank must be in [1, 4]");
        rank_ = static_cast<int>(dims.size());
        int i = 0;
        for (int64_t d : dims) {
            if (d < 0)
                throw std::invalid_argument("Shape: negative dimension");
            dims_[i++] = d;
        }
    }

    int rank() const { return rank_; }

    int64_t
    dim(int axis) const
    {
        checkAxis(axis);
        return dims_[axis];
    }

    /** Total number of elements. */
    int64_t
    numel() const
    {
        int64_t n = 1;
        for (int i = 0; i < rank_; ++i)
            n *= dims_[i];
        return n;
    }

    /** Row-major stride of the given axis (innermost axis has stride 1). */
    int64_t
    stride(int axis) const
    {
        checkAxis(axis);
        int64_t s = 1;
        for (int i = axis + 1; i < rank_; ++i)
            s *= dims_[i];
        return s;
    }

    /** Size of the innermost (fastest-varying) dimension. */
    int64_t innerDim() const { return dims_[rank_ - 1]; }

    /** Number of rows when the shape is viewed as a 2-D matrix. */
    int64_t
    outerCount() const
    {
        int64_t n = 1;
        for (int i = 0; i < rank_ - 1; ++i)
            n *= dims_[i];
        return n;
    }

    bool
    operator==(const Shape &other) const
    {
        if (rank_ != other.rank_)
            return false;
        for (int i = 0; i < rank_; ++i) {
            if (dims_[i] != other.dims_[i])
                return false;
        }
        return true;
    }

    bool operator!=(const Shape &other) const { return !(*this == other); }

    std::string
    toString() const
    {
        std::string s = "[";
        for (int i = 0; i < rank_; ++i) {
            if (i)
                s += ", ";
            s += std::to_string(dims_[i]);
        }
        s += "]";
        return s;
    }

  private:
    void
    checkAxis(int axis) const
    {
        if (axis < 0 || axis >= rank_)
            throw std::out_of_range("Shape: axis out of range");
    }

    std::array<int64_t, kMaxRank> dims_{};
    int rank_;
};

} // namespace mant

#endif // MANT_TENSOR_SHAPE_H_
