#include "tensor/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mant {

double
mse(std::span<const float> a, std::span<const float> b)
{
    if (a.size() != b.size())
        throw std::invalid_argument("mse: size mismatch");
    if (a.empty())
        return 0.0;
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double d = static_cast<double>(a[i]) - b[i];
        acc += d * d;
    }
    return acc / static_cast<double>(a.size());
}

double
nmse(std::span<const float> reference, std::span<const float> approx)
{
    if (reference.size() != approx.size())
        throw std::invalid_argument("nmse: size mismatch");
    if (reference.empty())
        return 0.0;
    double err = 0.0, ref = 0.0;
    for (size_t i = 0; i < reference.size(); ++i) {
        const double d = static_cast<double>(reference[i]) - approx[i];
        err += d * d;
        ref += static_cast<double>(reference[i]) * reference[i];
    }
    if (ref == 0.0)
        return err == 0.0 ? 0.0 : INFINITY;
    return err / ref;
}

double
maxAbsDiff(std::span<const float> a, std::span<const float> b)
{
    if (a.size() != b.size())
        throw std::invalid_argument("maxAbsDiff: size mismatch");
    double m = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::fabs(static_cast<double>(a[i]) - b[i]));
    return m;
}

std::vector<float>
normalizedCdf(std::span<const float> values)
{
    std::vector<float> out(values.begin(), values.end());
    float maxabs = 0.0f;
    for (float v : out)
        maxabs = std::max(maxabs, std::fabs(v));
    if (maxabs > 0.0f) {
        for (float &v : out)
            v /= maxabs;
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<double>
cdfAt(std::span<const float> normalizedSorted, std::span<const double> queries)
{
    std::vector<double> out;
    out.reserve(queries.size());
    const double n = static_cast<double>(normalizedSorted.size());
    for (double q : queries) {
        const auto it = std::upper_bound(
            normalizedSorted.begin(), normalizedSorted.end(),
            static_cast<float>(q));
        out.push_back(
            n > 0 ? static_cast<double>(it - normalizedSorted.begin()) / n
                  : 0.0);
    }
    return out;
}

double
probit(double p)
{
    if (p <= 0.0 || p >= 1.0)
        throw std::invalid_argument("probit: p must be in (0, 1)");

    // Acklam's inverse-normal-CDF rational approximation.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double plow = 0.02425;

    if (p < plow) {
        const double q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                    q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p > 1.0 - plow) {
        const double q = std::sqrt(-2.0 * std::log(1.0 - p));
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                     q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
}

double
cdfDiversity(const std::vector<std::vector<double>> &series)
{
    if (series.empty() || series.front().empty())
        return 0.0;
    const size_t npts = series.front().size();
    double total = 0.0;
    for (size_t p = 0; p < npts; ++p) {
        double lo = 1.0, hi = 0.0;
        for (const auto &s : series) {
            lo = std::min(lo, s[p]);
            hi = std::max(hi, s[p]);
        }
        total += hi - lo;
    }
    return total / static_cast<double>(npts);
}

} // namespace mant
