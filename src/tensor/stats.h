/**
 * @file
 * Statistics utilities: streaming moments (the RQU accumulates Σx, Σx²
 * and max in hardware — StreamingStats is the software model of that
 * datapath), quantization error metrics, and empirical CDF sampling
 * used to reproduce Fig. 3.
 */

#ifndef MANT_TENSOR_STATS_H_
#define MANT_TENSOR_STATS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace mant {

/**
 * Streaming accumulator mirroring the RQU hardware: running sum,
 * squared sum, max-absolute-value, and count. Variance is computed as
 * E[x^2] - E[x]^2, exactly Eq. (7) of the paper.
 */
class StreamingStats
{
  public:
    void
    add(float x)
    {
        sum_ += x;
        sumSq_ += static_cast<double>(x) * x;
        const double a = x < 0 ? -static_cast<double>(x) : x;
        if (a > maxAbs_)
            maxAbs_ = a;
        ++count_;
    }

    void
    addAll(std::span<const float> xs)
    {
        for (float x : xs)
            add(x);
    }

    /** Merge another accumulator (used when combining banks). */
    void
    merge(const StreamingStats &other)
    {
        sum_ += other.sum_;
        sumSq_ += other.sumSq_;
        if (other.maxAbs_ > maxAbs_)
            maxAbs_ = other.maxAbs_;
        count_ += other.count_;
    }

    void
    reset()
    {
        sum_ = sumSq_ = maxAbs_ = 0.0;
        count_ = 0;
    }

    int64_t count() const { return count_; }
    double sum() const { return sum_; }
    double sumSq() const { return sumSq_; }
    double maxAbs() const { return maxAbs_; }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Population variance via Eq. (7): E[x^2] - (E[x])^2, clamped >= 0. */
    double
    variance() const
    {
        if (!count_)
            return 0.0;
        const double m = mean();
        const double v = sumSq_ / count_ - m * m;
        return v > 0.0 ? v : 0.0;
    }

    /**
     * Variance of the max-abs-normalized data, the quantity the paper's
     * variance->a mapping is calibrated on (Sec. V-C).
     */
    double
    normalizedVariance() const
    {
        if (!count_ || maxAbs_ == 0.0)
            return 0.0;
        return variance() / (maxAbs_ * maxAbs_);
    }

  private:
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double maxAbs_ = 0.0;
    int64_t count_ = 0;
};

/** Mean squared error between two equal-length spans. */
double mse(std::span<const float> a, std::span<const float> b);

/**
 * Normalized MSE: mse(a, b) / mean(a^2). Returns 0 for an all-zero
 * reference. This is the per-layer error measure the mixed-precision
 * policy budgets against.
 */
double nmse(std::span<const float> reference, std::span<const float> approx);

/** Maximum absolute elementwise difference. */
double maxAbsDiff(std::span<const float> a, std::span<const float> b);

/**
 * Empirical CDF of the max-abs-normalized values: returns the sorted
 * normalized samples (x-coordinates); the implied y-coordinate of entry
 * i is (i + 1) / n. Used by the Fig. 3 bench.
 */
std::vector<float> normalizedCdf(std::span<const float> values);

/**
 * Evaluate the empirical CDF at fixed query points in [-1, 1]; returns
 * P(x <= q) for each query. Handy for fixed-grid CDF series output.
 */
std::vector<double> cdfAt(std::span<const float> normalizedSorted,
                          std::span<const double> queries);

/**
 * Summary of cross-series CDF diversity: mean over query points of the
 * range (max - min) of the CDF values across the series. Larger means
 * the distributions differ more — this is the quantity that must grow
 * from tensor-level to group-level to reproduce Takeaway 1.
 */
double cdfDiversity(const std::vector<std::vector<double>> &series);

/**
 * Probit function: inverse CDF of the standard normal distribution
 * (Acklam's rational approximation, |relative error| < 1.2e-9). Used to
 * construct NormalFloat reference grids (Eq. 3 of the paper).
 */
double probit(double p);

} // namespace mant

#endif // MANT_TENSOR_STATS_H_
