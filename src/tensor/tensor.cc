#include "tensor/tensor.h"

#include <cmath>
#include <stdexcept>

#include "tensor/fp16.h"

namespace mant {

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(shape), data_(std::move(data))
{
    if (static_cast<int64_t>(data_.size()) != shape_.numel())
        throw std::invalid_argument("Tensor: data size does not match shape");
}

std::span<float>
Tensor::row(int64_t r)
{
    const int64_t inner = shape_.innerDim();
    return {data_.data() + r * inner, static_cast<size_t>(inner)};
}

std::span<const float>
Tensor::row(int64_t r) const
{
    const int64_t inner = shape_.innerDim();
    return {data_.data() + r * inner, static_cast<size_t>(inner)};
}

void
Tensor::roundToFp16()
{
    for (float &v : data_)
        v = fp16Round(v);
}

float
Tensor::maxAbs() const
{
    float m = 0.0f;
    for (float v : data_)
        m = std::max(m, std::fabs(v));
    return m;
}

void
Tensor::scaleInPlace(float factor)
{
    for (float &v : data_)
        v *= factor;
}

Tensor
matmul(const Tensor &x, const Tensor &w)
{
    if (x.shape().rank() != 2 || w.shape().rank() != 2)
        throw std::invalid_argument("matmul: operands must be rank 2");
    const int64_t m = x.shape().dim(0);
    const int64_t k = x.shape().dim(1);
    const int64_t n = w.shape().dim(1);
    if (w.shape().dim(0) != k)
        throw std::invalid_argument("matmul: inner dimensions differ");

    Tensor out(Shape{m, n});
    matmulAccum(x, w, out);
    return out;
}

void
matmulAccum(const Tensor &x, const Tensor &w, Tensor &out)
{
    const int64_t m = x.shape().dim(0);
    const int64_t k = x.shape().dim(1);
    const int64_t n = w.shape().dim(1);
    if (out.shape().dim(0) != m || out.shape().dim(1) != n)
        throw std::invalid_argument("matmulAccum: output shape mismatch");

    const float *xp = x.data();
    const float *wp = w.data();
    float *op = out.data();

    // i-k-j loop order keeps the inner loop streaming over w rows and
    // the output row, which is the cache-friendly order for row-major.
    for (int64_t i = 0; i < m; ++i) {
        float *orow = op + i * n;
        for (int64_t kk = 0; kk < k; ++kk) {
            const float xv = xp[i * k + kk];
            if (xv == 0.0f)
                continue;
            const float *wrow = wp + kk * n;
            for (int64_t j = 0; j < n; ++j)
                orow[j] += xv * wrow[j];
        }
    }
}

Tensor
transpose(const Tensor &t)
{
    if (t.shape().rank() != 2)
        throw std::invalid_argument("transpose: rank-2 only");
    const int64_t r = t.shape().dim(0);
    const int64_t c = t.shape().dim(1);
    Tensor out(Shape{c, r});
    for (int64_t i = 0; i < r; ++i)
        for (int64_t j = 0; j < c; ++j)
            out.at(j, i) = t.at(i, j);
    return out;
}

Tensor
sub(const Tensor &a, const Tensor &b)
{
    if (a.shape() != b.shape())
        throw std::invalid_argument("sub: shape mismatch");
    Tensor out(a.shape());
    for (int64_t i = 0; i < a.numel(); ++i)
        out[i] = a[i] - b[i];
    return out;
}

} // namespace mant
