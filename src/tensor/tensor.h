/**
 * @file
 * Dense row-major float tensor plus the reference linear algebra the
 * reproduction needs (GEMM, transpose, row access).
 *
 * The substrate intentionally computes in binary32. Binary16 storage
 * effects (scale metadata, FP16 baselines) are modelled explicitly by
 * rounding through fp16Round() at the points where the hardware would
 * hold 16-bit values.
 */

#ifndef MANT_TENSOR_TENSOR_H_
#define MANT_TENSOR_TENSOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/shape.h"

namespace mant {

/**
 * Dense row-major float tensor of rank 1..4.
 */
class Tensor
{
  public:
    Tensor() = default;

    /** Allocate a zero-filled tensor with the given shape. */
    explicit Tensor(Shape shape)
        : shape_(shape), data_(static_cast<size_t>(shape.numel()), 0.0f)
    {}

    /** Allocate with an initial fill value. */
    Tensor(Shape shape, float fill)
        : shape_(shape), data_(static_cast<size_t>(shape.numel()), fill)
    {}

    /** Wrap existing data (copied); size must match the shape. */
    Tensor(Shape shape, std::vector<float> data);

    const Shape &shape() const { return shape_; }
    int64_t numel() const { return static_cast<int64_t>(data_.size()); }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    std::span<float> span() { return {data_.data(), data_.size()}; }
    std::span<const float>
    span() const
    {
        return {data_.data(), data_.size()};
    }

    float &operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
    float
    operator[](int64_t i) const
    {
        return data_[static_cast<size_t>(i)];
    }

    /** 2-D element access (requires rank 2). */
    float &
    at(int64_t row, int64_t col)
    {
        return data_[static_cast<size_t>(row * shape_.stride(0) + col)];
    }
    float
    at(int64_t row, int64_t col) const
    {
        return data_[static_cast<size_t>(row * shape_.stride(0) + col)];
    }

    /** Contiguous row view when the tensor is treated as 2-D. */
    std::span<float> row(int64_t r);
    std::span<const float> row(int64_t r) const;

    /** Round every element through FP16 storage, in place. */
    void roundToFp16();

    /** Elementwise utilities used throughout the experiments. */
    float maxAbs() const;
    void scaleInPlace(float factor);

  private:
    Shape shape_{};
    std::vector<float> data_;
};

/**
 * Reference GEMM: out[M,N] = x[M,K] * w[K,N]. Row-major, accumulates in
 * double to serve as the golden model for the integer fused path.
 *
 * @param x Left operand, shape (M, K).
 * @param w Right operand, shape (K, N).
 * @return Product tensor of shape (M, N).
 */
Tensor matmul(const Tensor &x, const Tensor &w);

/** out[M,N] += x[M,K] * w[K,N] into an existing accumulator. */
void matmulAccum(const Tensor &x, const Tensor &w, Tensor &out);

/** Transpose a rank-2 tensor. */
Tensor transpose(const Tensor &t);

/** Elementwise difference a - b (shapes must match). */
Tensor sub(const Tensor &a, const Tensor &b);

} // namespace mant

#endif // MANT_TENSOR_TENSOR_H_
