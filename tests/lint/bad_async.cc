// lint-path: src/serve/bad_async.cc
// lint-expect: thread-primitive
// std::async's launch policy and completion order are scheduler-
// dependent; serving results must stay byte-identical to serial runs.
#include <future>

int scheduled() {
    auto f = std::async([] { return 42; });
    return f.get();
}
