// lint-path: src/core/bad_openmp.cc
// lint-expect: openmp
// OpenMP schedules partition work by thread count, so reductions
// re-associate differently at every OMP_NUM_THREADS.
void scale(float *x, int n) {
#pragma omp parallel for
    for (int i = 0; i < n; ++i)
        x[i] *= 2.0f;
}
