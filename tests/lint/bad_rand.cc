// lint-path: src/quant/bad_rand.cc
// lint-expect: libc-rand
// Implementation-defined RNGs (std::rand, random_device, mt19937
// distributions) are not reproducible across libcs; all randomness
// must flow through the explicit-seed mant::Rng.
#include <cstdlib>
#include <random>

float noisy() {
    std::random_device rd;
    std::mt19937 gen(rd());
    return static_cast<float>(std::rand()) + static_cast<float>(gen());
}
