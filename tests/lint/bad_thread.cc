// lint-path: src/model/bad_thread.cc
// lint-expect: thread-primitive
// A raw std::thread in library code bypasses parallelFor()'s
// thread-count-invariant chunk geometry.
#include <thread>
#include <vector>

void fanOut(std::vector<float> &v) {
    std::thread worker([&v] { v[0] = 1.0f; });
    worker.join();
}
