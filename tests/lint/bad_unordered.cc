// lint-path: src/quant/bad_unordered.cc
// lint-expect: unordered-iteration
// Bucket order of unordered containers is implementation-defined;
// accumulating over it makes the sum depend on the libc++/libstdc++
// hash layout.
#include <unordered_map>

float sumHistogram(const float *vals, int n) {
    std::unordered_map<int, float> hist;
    for (int i = 0; i < n; ++i)
        hist[static_cast<int>(vals[i])] += vals[i];
    float acc = 0.0f;
    for (const auto &kv : hist)
        acc += kv.second;
    return acc;
}
