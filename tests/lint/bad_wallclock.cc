// lint-path: src/core/bad_wallclock.cc
// lint-expect: wall-clock
// Library results must not depend on when they ran: no time(),
// clock(), or std::chrono clocks in src/ (timing belongs in bench/).
#include <chrono>
#include <ctime>

long seedFromWallClock() {
    auto now = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<long>(time(nullptr)) + now.count();
}
