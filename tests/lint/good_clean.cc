// lint-path: src/core/good_clean.cc
// lint-expect: none
// Mentions of forbidden constructs in comments and string literals
// must NOT fire: std::thread, std::rand(), time(NULL), #pragma omp.
#include <string>

/* Block comments are stripped too: std::async, random_device. */
const char *kDoc =
    "forbidden-in-code-only: time(), clock(), std::mt19937";

// Identifiers merely containing forbidden substrings stay legal.
int runtime(int x) { return x; }
int myclock(int x) { return x; }

int useThem(int x) { return runtime(x) + myclock(x); }
