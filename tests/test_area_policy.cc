#include <gtest/gtest.h>

#include "sim/area_model.h"
#include "sim/policy.h"

namespace mant {
namespace {

TEST(AreaModel, MantCoreMatchesTableIV)
{
    const AreaReport r = areaReport("MANT");
    // 1024 * 281.75 µm² + 32 * 416.63 µm² ≈ 0.302 mm².
    EXPECT_NEAR(r.coreMm2(), 0.302, 0.005);
}

TEST(AreaModel, OliveCoreMatchesTableIV)
{
    const AreaReport r = areaReport("OliVe");
    EXPECT_NEAR(r.coreMm2(), 0.337, 0.005);
}

TEST(AreaModel, AntCoreMatchesTableIV)
{
    EXPECT_NEAR(areaReport("ANT").coreMm2(), 0.327, 0.005);
}

TEST(AreaModel, TenderCoreMatchesTableIV)
{
    EXPECT_NEAR(areaReport("Tender").coreMm2(), 0.317, 0.005);
}

TEST(AreaModel, CoresAreaEqualized)
{
    // All five accelerators within ~15% of each other in core area.
    double lo = 1e9, hi = 0.0;
    for (const char *name :
         {"MANT", "ANT", "OliVe", "Tender", "BitFusion"}) {
        const double a = areaReport(name).coreMm2();
        lo = std::min(lo, a);
        hi = std::max(hi, a);
    }
    EXPECT_LT(hi / lo, 1.15);
}

TEST(AreaModel, SharedComponentsIdentical)
{
    const double mant = areaReport("MANT").sharedMm2();
    const double ant = areaReport("ANT").sharedMm2();
    EXPECT_DOUBLE_EQ(mant, ant);
    EXPECT_NEAR(mant, 4.2 + 0.069 + 0.016, 1e-9);
}

TEST(AreaModel, UnknownArchThrows)
{
    EXPECT_THROW(areaReport("TPU"), std::invalid_argument);
}

class PolicyTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        profile_ = new ModelProfile(modelProfile("llama-1-7b"));
        // Shrink the layer count so policy tests stay fast; statistics
        // machinery is identical.
        profile_->archDims.nLayers = 8;
        cfg_.sampleRows = 48;
        cfg_.sampleCols = 256;
        budget_ = mantErrorBudget(*profile_, cfg_);
    }

    static void
    TearDownTestSuite()
    {
        delete profile_;
        profile_ = nullptr;
    }

    static ModelProfile *profile_;
    static PolicyConfig cfg_;
    static double budget_;
};

ModelProfile *PolicyTest::profile_ = nullptr;
PolicyConfig PolicyTest::cfg_;
double PolicyTest::budget_ = 0.0;

TEST_F(PolicyTest, MantBudgetIsSmall)
{
    EXPECT_GT(budget_, 0.0);
    EXPECT_LT(budget_, 0.05);
}

TEST_F(PolicyTest, BaselinesPromoteSomeLayers)
{
    const int widths[] = {4, 8};
    const PrecisionPlan tender = alignPrecision(
        *profile_, WeightMethod::Tender, widths, budget_, cfg_);
    EXPECT_GE(tender.layersAbove4, 1);
    EXPECT_LE(tender.aggregateNmse, budget_ * 1.001 + 1e-9);
}

TEST_F(PolicyTest, BitFusionNeedsHighBits)
{
    const int widths[] = {8, 16};
    const PrecisionPlan bf = alignPrecision(
        *profile_, WeightMethod::Int, widths, budget_, cfg_);
    // Tensor/channel-wise INT8 cannot match MANT everywhere: some
    // layers must escalate to 16-bit.
    EXPECT_GE(bf.avgBits, 8.0);
}

TEST_F(PolicyTest, LooserBudgetFewerPromotions)
{
    const int widths[] = {4, 8};
    const PrecisionPlan tight = alignPrecision(
        *profile_, WeightMethod::Olive, widths, budget_, cfg_);
    const PrecisionPlan loose = alignPrecision(
        *profile_, WeightMethod::Olive, widths, budget_ * 20.0, cfg_);
    EXPECT_LE(loose.layersAbove4, tight.layersAbove4);
}

TEST_F(PolicyTest, PlanCoversAllLayers)
{
    const int widths[] = {4, 8};
    const PrecisionPlan p = alignPrecision(
        *profile_, WeightMethod::Tender, widths, budget_, cfg_);
    EXPECT_EQ(p.layerBits.size(), 8u);
    for (int b : p.layerBits)
        EXPECT_TRUE(b == 4 || b == 8);
}

} // namespace
} // namespace mant
