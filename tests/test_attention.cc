/**
 * @file
 * Fused integer attention: exhaustive parity against the scalar
 * flat-code reference oracle, panel-store round-trips, edge shapes,
 * and whole-model byte equality across SIMD backends, thread counts,
 * and batched-vs-serial decode.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/fused_attention.h"
#include "core/kv_panels.h"
#include "core/kv_quant.h"
#include "model/kv_cache.h"
#include "model/transformer.h"
#include "test_util.h"

namespace mant {
namespace {

const VarianceSelector &
analyticSelector()
{
    static const VarianceSelector sel = VarianceSelector::analytic();
    return sel;
}

/** The SIMD × thread configurations the determinism contract spans. */
struct PathCfg
{
    SimdPath path;
    int threads;
};

std::vector<PathCfg>
parityConfigs()
{
    std::vector<PathCfg> cfgs = {{SimdPath::Scalar, 1},
                                 {SimdPath::Scalar, 8}};
    if (bestSimdPath() != SimdPath::Scalar) {
        cfgs.push_back({bestSimdPath(), 1});
        cfgs.push_back({bestSimdPath(), 8});
    }
    return cfgs;
}

HeadKvCache
makeKCache(KvMethod method, int64_t dh, int64_t group, int64_t rows,
           uint64_t seed)
{
    HeadKvCache cache(method, dh, group, &analyticSelector(),
                      /*captureCodes=*/true);
    Rng rng(seed);
    std::vector<float> k(static_cast<size_t>(dh));
    for (int64_t r = 0; r < rows; ++r) {
        for (auto &x : k)
            x = static_cast<float>(rng.gaussian());
        cache.appendK(k);
    }
    return cache;
}

std::vector<float>
randomRow(int64_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(static_cast<size_t>(n));
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian());
    return v;
}

/** Positive, softmax-like probability row (sums to 1). */
std::vector<float>
probRow(int64_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> p(static_cast<size_t>(n));
    float sum = 0.0f;
    for (auto &x : p) {
        x = static_cast<float>(rng.uniform()) + 1e-3f;
        sum += x;
    }
    for (auto &x : p)
        x /= sum;
    return p;
}

/**
 * Assert fused == reference scores, byte for byte, for every visible
 * horizon in [1, rows], across the full SIMD × thread matrix — and
 * that every configuration produces the same bytes as the first.
 */
void
expectScoreParity(KvMethod method, int64_t dh, int64_t group,
                  int64_t rows, float slope = 0.0f)
{
    const HeadKvCache cache =
        makeKCache(method, dh, group, rows, 17 * rows + dh);
    const std::vector<float> q = randomRow(dh, 999);
    const float inv = 1.0f / std::sqrt(static_cast<float>(dh));

    std::vector<std::vector<float>> perCfg;
    for (const PathCfg &cfg : parityConfigs()) {
        auto scores = test::withPath(cfg.path, cfg.threads, [&] {
            const SimdOps &ops = simdOps();
            AttnScratch scratch;
            quantizeQRow(ops, q, group, scratch);
            std::vector<float> all;
            for (int64_t visible = 1; visible <= rows; ++visible) {
                std::vector<float> fused(static_cast<size_t>(visible));
                std::vector<float> ref(static_cast<size_t>(visible));
                attnScoresFused(ops, cache.kPanels(), scratch.qCodes,
                                scratch.qScales, visible, inv, slope,
                                fused);
                attnScoresReference(cache.kPanels(), scratch.qCodes,
                                    scratch.qScales, visible, inv,
                                    slope, ref);
                EXPECT_TRUE(test::bytesEqual(fused, ref))
                    << "dh=" << dh << " group=" << group
                    << " visible=" << visible;
                all.insert(all.end(), fused.begin(), fused.end());
            }
            return all;
        });
        perCfg.push_back(std::move(scores));
    }
    for (size_t i = 1; i < perCfg.size(); ++i)
        EXPECT_TRUE(test::bytesEqual(perCfg[0], perCfg[i]))
            << "backend/thread configuration " << i
            << " diverged (dh=" << dh << " group=" << group << ")";
}

/** Same contract for P·V over a prefill+decode-populated quantizer. */
void
expectPvParity(int64_t channels, int64_t window, int64_t prefillRows,
               int64_t decodeRows)
{
    TemporalVQuantizer vq(channels, window, analyticSelector(),
                          /*fp16Scale=*/true, /*captureCodes=*/true);
    if (prefillRows > 0) {
        Tensor v = test::gaussianTensor(Shape{prefillRows, channels},
                                        41 * channels + window);
        vq.pushPrefill(v);
    }
    Rng rng(7u * static_cast<uint64_t>(channels + decodeRows));
    std::vector<float> row(static_cast<size_t>(channels));
    for (int64_t r = 0; r < decodeRows; ++r) {
        for (auto &x : row)
            x = static_cast<float>(rng.gaussian());
        vq.pushDecode(row);
    }

    const int64_t rows = vq.rows();
    std::vector<std::vector<float>> perCfg;
    for (const PathCfg &cfg : parityConfigs()) {
        auto outs = test::withPath(cfg.path, cfg.threads, [&] {
            const SimdOps &ops = simdOps();
            AttnScratch scratch;
            std::vector<float> all;
            for (int64_t visible = 1; visible <= rows; ++visible) {
                const std::vector<float> probs =
                    probRow(visible, 1000 + visible);
                std::vector<float> fused(static_cast<size_t>(channels));
                std::vector<float> ref(static_cast<size_t>(channels));
                attnPvFused(ops, vq, probs, scratch, fused);
                attnPvReference(ops, vq, probs, scratch, ref);
                EXPECT_TRUE(test::bytesEqual(fused, ref))
                    << "channels=" << channels << " window=" << window
                    << " visible=" << visible;
                all.insert(all.end(), fused.begin(), fused.end());
            }
            return all;
        });
        perCfg.push_back(std::move(outs));
    }
    for (size_t i = 1; i < perCfg.size(); ++i)
        EXPECT_TRUE(test::bytesEqual(perCfg[0], perCfg[i]))
            << "backend/thread configuration " << i
            << " diverged (channels=" << channels << ")";
}

// ---------------------------------------------------------------------
// Panel-store round-trips
// ---------------------------------------------------------------------

TEST(KPanelStore, FlatAndMetaRoundTripAcrossPanelBoundaries)
{
    // 19 rows crosses two panel boundaries (8, 16).
    const int64_t dh = 12, group = 5, rows = 19;
    const HeadKvCache cache =
        makeKCache(KvMethod::Mant4, dh, group, rows, 3);
    const KPanelStore &kp = cache.kPanels();
    EXPECT_EQ(kp.rows(), rows);
    EXPECT_EQ(kp.panels(), 3);
    EXPECT_EQ(kp.groupsPerRow(), 3); // ceil(12 / 5)

    // Decoding every flat code through its group meta reproduces the
    // dequantized K row bit for bit (the encodeSelectedCodes
    // invariant the fused path rests on).
    for (int64_t r = 0; r < rows; ++r) {
        const auto codes = kp.rowCodes(r);
        const auto krow = cache.kRow(r);
        for (int64_t g = 0; g < kp.groupsPerRow(); ++g) {
            const MantGroupMeta meta = kp.metaAt(r, g);
            const int64_t k0 = g * kp.groupSize();
            const int64_t len = std::min(kp.groupSize(), dh - k0);
            for (int64_t i = 0; i < len; ++i) {
                const int8_t c = codes[static_cast<size_t>(k0 + i)];
                const float decoded =
                    meta.isInt
                        ? static_cast<float>(c) * meta.scale
                        : static_cast<float>(mantCodeValue(
                              meta.a,
                              static_cast<MantCode>(
                                  static_cast<uint8_t>(c) & 0xf))) *
                              meta.scale;
                EXPECT_EQ(decoded, krow[static_cast<size_t>(k0 + i)])
                    << "row " << r << " group " << g << " elem " << i;
            }
        }
    }
}

TEST(KPanelStore, UnappendedPanelColumnsReadIntScaleZero)
{
    const HeadKvCache cache = makeKCache(KvMethod::Mant4, 8, 4, 9, 5);
    const KPanelStore &kp = cache.kPanels();
    // Rows 9..15 of panel 1 never arrived: their meta must be the
    // neutral INT/scale-0 that zeroes them out of any combine.
    for (int64_t g = 0; g < kp.groupsPerRow(); ++g) {
        const auto scales = kp.tileScales(1, g);
        const auto isInt = kp.tileIsInt(1, g);
        for (int c = 1; c < kTilePanelCols; ++c) {
            EXPECT_EQ(scales[static_cast<size_t>(c)], 0.0f);
            EXPECT_NE(isInt[static_cast<size_t>(c)], 0);
        }
    }
}

TEST(VPanelStore, FlatViewMatchesReconstructAndMetaDecodes)
{
    const int64_t channels = 10, window = 6;
    TemporalVQuantizer vq(channels, window, analyticSelector(), true,
                          true);
    Tensor v = test::gaussianTensor(Shape{2 * window, channels}, 11);
    vq.pushPrefill(v);
    const VPanelStore &vp = vq.codePanels();
    EXPECT_EQ(vp.windows(), 2);
    EXPECT_EQ(vp.panels(), 2); // ceil(10 / 8)

    const Tensor rec = vq.reconstruct();
    for (int64_t r = 0; r < vp.windows() * window; ++r) {
        const auto codes = vp.rowCodes(r);
        const int64_t w = r / window;
        for (int64_t ch = 0; ch < channels; ++ch) {
            const MantGroupMeta meta = vp.metaAt(w, ch);
            const int8_t c = codes[static_cast<size_t>(ch)];
            const float decoded =
                meta.isInt
                    ? static_cast<float>(c) * meta.scale
                    : static_cast<float>(mantCodeValue(
                          meta.a, static_cast<MantCode>(
                                      static_cast<uint8_t>(c) & 0xf))) *
                          meta.scale;
            EXPECT_EQ(decoded, rec.at(r, ch))
                << "row " << r << " channel " << ch;
        }
    }
}

TEST(KPanelStore, RejectsBadAppends)
{
    KPanelStore kp(8, 4);
    std::vector<int8_t> codes(8, 0);
    std::vector<MantSelection> sels(1); // needs 2 groups
    EXPECT_THROW(kp.appendRow(codes, sels), std::invalid_argument);
    sels.resize(2);
    sels[0].isInt = true;
    codes[0] = -8; // unrepresentable in sign-magnitude INT4
    EXPECT_THROW(kp.appendRow(codes, sels), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Score parity: edge shapes × SIMD × threads
// ---------------------------------------------------------------------

TEST(FusedAttnScores, SingleRowCache) // seqLen = 1
{
    expectScoreParity(KvMethod::Mant4, 32, 8, 1);
}

TEST(FusedAttnScores, GrowthAcrossPanelBoundaries)
{
    for (int64_t rows : {7, 8, 9, 16, 17, 25})
        expectScoreParity(KvMethod::Mant4, 16, 8, rows);
}

TEST(FusedAttnScores, HeadDimNotMultipleOfEight)
{
    expectScoreParity(KvMethod::Mant4, 20, 8, 11); // ragged last group
    expectScoreParity(KvMethod::Mant4, 13, 5, 9);
}

TEST(FusedAttnScores, GroupSizeEdges)
{
    expectScoreParity(KvMethod::Mant4, 24, -1, 10); // whole-row group
    expectScoreParity(KvMethod::Mant4, 24, 1, 10);  // per-element
    expectScoreParity(KvMethod::Mant4, 24, 40, 10); // > headDim
}

TEST(FusedAttnScores, Int4CacheAndAlibiSlope)
{
    expectScoreParity(KvMethod::Int4, 16, 8, 12, 0.25f);
}

// ---------------------------------------------------------------------
// P·V parity: finalized windows, partial prefix, pending tail
// ---------------------------------------------------------------------

TEST(FusedAttnPv, PureFinalizedAndPendingMix)
{
    // 2 full prefill windows + 3 pending decode rows; every visible
    // horizon exercises full windows, a partial window prefix, and
    // the pending INT8 tail.
    expectPvParity(16, 8, 16, 3);
}

TEST(FusedAttnPv, RaggedChannelsAndWindowOne)
{
    expectPvParity(10, 8, 9, 4); // channels % 8 != 0, partial prefill
    expectPvParity(12, 1, 3, 2); // window = 1: every row finalizes
}

TEST(FusedAttnPv, PendingOnly)
{
    expectPvParity(8, 16, 0, 5); // nothing finalized yet
}

TEST(FusedAttnPv, SingleChannel)
{
    expectPvParity(1, 4, 6, 2);
}

// ---------------------------------------------------------------------
// Whole-model parity
// ---------------------------------------------------------------------

std::vector<int32_t>
tokenSeq(int n, uint64_t seed, int vocab)
{
    Rng rng(seed);
    std::vector<int32_t> t(static_cast<size_t>(n));
    for (auto &x : t)
        x = static_cast<int32_t>(
            rng.uniformInt(static_cast<uint64_t>(vocab)));
    return t;
}

class FusedAttentionModel : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        profile_ = test::tinyProfile();
        weights_ = ModelWeights::generate(profile_, 128);
        toks_ = tokenSeq(13, 500, 128);
    }

    /** Prefill + a few decode steps; returns all logits flattened. */
    std::vector<float>
    runModel(Transformer &m)
    {
        std::vector<float> all;
        const Tensor pre = m.prefill(toks_);
        all.insert(all.end(), pre.span().begin(), pre.span().end());
        for (int32_t tok : {3, 17, 42}) {
            const std::vector<float> row = m.decodeStep(tok);
            all.insert(all.end(), row.begin(), row.end());
        }
        return all;
    }

    ModelProfile profile_;
    ModelWeights weights_;
    std::vector<int32_t> toks_;
};

TEST_F(FusedAttentionModel, FusedKernelMatchesReferenceKernelBytes)
{
    std::vector<std::vector<float>> outs;
    for (const PathCfg &cfg : parityConfigs()) {
        auto pair = test::withPath(cfg.path, cfg.threads, [&] {
            Transformer m(weights_, mantFusedAttentionSetup(8));
            EXPECT_EQ(m.attentionKernel(), AttentionKernel::Fused);
            std::vector<float> fused = runModel(m);
            m.setAttentionKernel(AttentionKernel::Reference);
            std::vector<float> ref = runModel(m);
            return std::make_pair(std::move(fused), std::move(ref));
        });
        EXPECT_TRUE(test::bytesEqual(pair.first, pair.second))
            << "fused vs reference kernel diverged";
        outs.push_back(std::move(pair.first));
    }
    for (size_t i = 1; i < outs.size(); ++i)
        EXPECT_TRUE(test::bytesEqual(outs[0], outs[i]))
            << "backend/thread configuration " << i << " diverged";
}

TEST_F(FusedAttentionModel, BatchedDecodeMatchesSerialBytes)
{
    Transformer m(weights_, mantFusedAttentionSetup(8));
    const auto promptA = tokenSeq(9, 61, 128);
    const auto promptB = tokenSeq(5, 62, 128);

    // Serial: each stream decodes alone.
    StreamContext sa, sb;
    m.prefill(sa, promptA);
    m.prefill(sb, promptB);
    const std::vector<float> ra = m.decodeStep(sa, 7);
    const std::vector<float> rb = m.decodeStep(sb, 9);

    // Batched: both streams in one decodeBatch call.
    StreamContext ba, bb;
    m.prefill(ba, promptA);
    m.prefill(bb, promptB);
    StreamContext *streams[] = {&ba, &bb};
    const int32_t toks[] = {7, 9};
    const Tensor batched = m.decodeBatch(toks, streams);

    EXPECT_TRUE(test::bytesEqual(ra, batched.row(0)));
    EXPECT_TRUE(test::bytesEqual(rb, batched.row(1)));
}

TEST_F(FusedAttentionModel, SingleHeadProfile)
{
    ModelProfile p = test::tinyProfile();
    p.simDims.nHeads = 1; // dh = dModel = 64
    p.archDims = p.simDims;
    ModelWeights w = ModelWeights::generate(p, 128);
    Transformer m(w, mantFusedAttentionSetup(8));
    std::vector<float> fused = runModel(m);
    m.setAttentionKernel(AttentionKernel::Reference);
    std::vector<float> ref = runModel(m);
    EXPECT_TRUE(test::bytesEqual(fused, ref));
}

TEST_F(FusedAttentionModel, Fp16KvRejected)
{
    QuantSetup s = mantFusedAttentionSetup(8);
    s.kv = KvMethod::Fp16;
    EXPECT_THROW(Transformer m(weights_, s), std::invalid_argument);
}

TEST_F(FusedAttentionModel, WholeRowKvGroup)
{
    QuantSetup s = mantFusedAttentionSetup(8);
    s.kvGroup = -1;
    Transformer m(weights_, s);
    std::vector<float> fused = runModel(m);
    m.setAttentionKernel(AttentionKernel::Reference);
    std::vector<float> ref = runModel(m);
    EXPECT_TRUE(test::bytesEqual(fused, ref));
}

} // namespace
} // namespace mant
