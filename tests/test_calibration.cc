#include <cmath>

#include <gtest/gtest.h>

#include "model/calibration.h"
#include "model/evaluator.h"
#include "model/transformer.h"
#include "tensor/stats.h"
#include "test_util.h"

namespace mant {
namespace {

std::vector<int32_t>
tokens(int n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<int32_t> t(static_cast<size_t>(n));
    for (auto &x : t)
        x = static_cast<int32_t>(rng.uniformInt(128));
    return t;
}

class CalibrationTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        profile_ = test::tinyProfile();
        weights_ = ModelWeights::generate(profile_, 128);
        toks_ = tokens(24, 77);
    }

    ModelProfile profile_;
    ModelWeights weights_;
    std::vector<int32_t> toks_;
};

TEST_F(CalibrationTest, CollectsAllSlots)
{
    const ModelCalibration calib =
        ModelCalibration::collect(weights_, toks_);
    EXPECT_FALSE(calib.empty());
    const ArchDims &d = profile_.simDims;
    for (int64_t l = 0; l < d.nLayers; ++l) {
        EXPECT_EQ(calib.power(l, LinearSlot::AttnIn).size(),
                  static_cast<size_t>(d.dModel));
        EXPECT_EQ(calib.power(l, LinearSlot::OProj).size(),
                  static_cast<size_t>(d.dModel));
        EXPECT_EQ(calib.power(l, LinearSlot::FfnIn).size(),
                  static_cast<size_t>(d.dModel));
        EXPECT_EQ(calib.power(l, LinearSlot::FfnDown).size(),
                  static_cast<size_t>(d.dFfn));
    }
}

TEST_F(CalibrationTest, PowersArePositive)
{
    const ModelCalibration calib =
        ModelCalibration::collect(weights_, toks_);
    for (double p : calib.power(0, LinearSlot::AttnIn)) {
        EXPECT_GE(p, 0.0);
        EXPECT_TRUE(std::isfinite(p));
    }
}

TEST_F(CalibrationTest, HotChannelHasHighPower)
{
    // The model-wide hot activation channel must show up as a spike in
    // the attention-input power vector — that is what Eq. 6 exploits.
    const ModelCalibration calib =
        ModelCalibration::collect(weights_, toks_);
    const auto power = calib.power(0, LinearSlot::AttnIn);
    double max_p = 0.0, sum = 0.0;
    for (double p : power) {
        max_p = std::max(max_p, p);
        sum += p;
    }
    const double mean = sum / static_cast<double>(power.size());
    EXPECT_GT(max_p, 5.0 * mean);
}

TEST_F(CalibrationTest, DeterministicAcrossRuns)
{
    const ModelCalibration a = ModelCalibration::collect(weights_, toks_);
    const ModelCalibration b = ModelCalibration::collect(weights_, toks_);
    const auto pa = a.power(1, LinearSlot::FfnIn);
    const auto pb = b.power(1, LinearSlot::FfnIn);
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i)
        EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

TEST_F(CalibrationTest, MissingSlotReturnsEmpty)
{
    ModelCalibration calib;
    EXPECT_TRUE(calib.empty());
    EXPECT_TRUE(calib.power(0, LinearSlot::AttnIn).empty());
}

TEST_F(CalibrationTest, Eq6ImprovesOrMatchesWeightMse)
{
    // End-to-end: the output-MSE search should not be worse than the
    // plain weight-MSE search on the model it was calibrated for.
    ModelProfile p = profile_;
    p.fp16Ppl = 9.0;
    const ModelWeights w = ModelWeights::generate(p, 128);
    EvalConfig cfg;
    cfg.contexts = 2;
    cfg.seqLen = 32;
    cfg.skip = 4;
    const PplEvaluator eval(w, cfg);
    const ModelCalibration calib =
        ModelCalibration::collect(w, eval.corpus()[0]);

    QuantSetup setup = mantW4A8Setup(16);
    setup.act = ActMethod::None; // isolate the weight search
    const double ppl_plain = eval.perplexityOf(setup);
    const double ppl_eq6 = eval.perplexityOf(setup, nullptr, &calib);
    EXPECT_LT(ppl_eq6, ppl_plain * 1.1);
}

TEST_F(CalibrationTest, AccumulateAveragesOverRows)
{
    ModelCalibration calib;
    Tensor x(Shape{2, 3}, {1, 2, 3, 3, 2, 1});
    calib.accumulate(0, LinearSlot::AttnIn, x);
    calib.finalize();
    const auto p = calib.power(0, LinearSlot::AttnIn);
    ASSERT_EQ(p.size(), 3u);
    EXPECT_DOUBLE_EQ(p[0], (1.0 + 9.0) / 2.0);
    EXPECT_DOUBLE_EQ(p[1], 4.0);
    EXPECT_DOUBLE_EQ(p[2], (9.0 + 1.0) / 2.0);
}

} // namespace
} // namespace mant
