#include <cmath>

#include <gtest/gtest.h>

#include "core/coeff_search.h"
#include "quant/fixed_formats.h"
#include "tensor/fp16.h"
#include "tensor/rng.h"
#include "test_util.h"

namespace mant {
namespace {

std::vector<float>
gaussianGroup(uint64_t seed, size_t n = 64, double sigma = 1.0)
{
    Rng rng(seed);
    std::vector<float> g(n);
    for (auto &v : g)
        v = static_cast<float>(rng.gaussian(0.0, sigma));
    return g;
}

TEST(CoeffSearch, MatchesBruteForce)
{
    const auto group = gaussianGroup(51);
    const MantSelection best = searchCoefficient(group);

    // Recompute by hand: search error must equal the minimum over all
    // candidates plus INT.
    double min_err = INFINITY;
    for (int a : mantCoefficientSet()) {
        min_err = std::min(min_err, groupError(group, mantFormat(a), {},
                                               true, nullptr));
    }
    min_err = std::min(min_err,
                       groupError(group, int4Format(), {}, true, nullptr));
    EXPECT_DOUBLE_EQ(best.err, min_err);
}

TEST(CoeffSearch, PotDataSelectsSmallA)
{
    // Exact powers of two: the a = 0 grid represents them losslessly.
    std::vector<float> group;
    for (int i = 0; i < 64; ++i) {
        const int e = i % 8;
        group.push_back(((i % 2) ? 1.0f : -1.0f) *
                        static_cast<float>(1 << e));
    }
    const MantSelection sel = searchCoefficient(group);
    EXPECT_FALSE(sel.isInt);
    EXPECT_EQ(sel.a, 0);
    EXPECT_NEAR(sel.err, 0.0, 1e-6);
}

TEST(CoeffSearch, UniformDataSelectsIntOrLargeA)
{
    Rng rng(52);
    std::vector<float> group(64);
    for (auto &v : group)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    const MantSelection sel = searchCoefficient(group);
    EXPECT_TRUE(sel.isInt || sel.a >= 60) << "a=" << sel.a;
}

TEST(CoeffSearch, LaplaceDataPrefersSmallerAThanUniform)
{
    Rng rng(53);
    std::vector<float> laplace(64), uniform(64);
    for (auto &v : laplace)
        v = static_cast<float>(rng.laplace(0.2));
    for (auto &v : uniform)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));

    const MantSelection sl = searchCoefficient(laplace);
    const MantSelection su = searchCoefficient(uniform);
    const int al = sl.isInt ? 999 : sl.a;
    const int au = su.isInt ? 999 : su.a;
    EXPECT_LT(al, au);
}

TEST(CoeffSearch, SelectionErrorNotWorseThanInt)
{
    for (uint64_t seed = 60; seed < 75; ++seed) {
        const auto group = gaussianGroup(seed);
        const MantSelection sel = searchCoefficient(group);
        const double int_err =
            groupError(group, int4Format(), {}, true, nullptr);
        EXPECT_LE(sel.err, int_err + 1e-9) << "seed " << seed;
    }
}

TEST(CoeffSearch, WeightedSearchRespectsWeights)
{
    // Two-element toy: huge weight on position 0 forces the search to
    // represent position 0 well.
    std::vector<float> group = {1.0f, 0.013f};
    std::vector<double> weights = {1000.0, 0.001};
    const MantSelection sel =
        searchCoefficient(group, {}, weights, false);

    std::vector<float> out(2);
    applySelection(group, sel, out, false);
    EXPECT_NEAR(out[0], 1.0f, 0.02f);
}

TEST(CoeffSearch, ApplySelectionMatchesSearchError)
{
    const auto group = gaussianGroup(54);
    const MantSelection sel = searchCoefficient(group);
    std::vector<float> out(group.size());
    applySelection(group, sel, out, true);
    double err = 0.0;
    for (size_t i = 0; i < group.size(); ++i) {
        const double d = static_cast<double>(group[i]) - out[i];
        err += d * d;
    }
    EXPECT_NEAR(err, sel.err, 1e-6 * (1.0 + sel.err));
}

TEST(CoeffSearch, RestrictedCandidateSet)
{
    const auto group = gaussianGroup(55);
    const int only17[] = {17};
    const MantSelection sel = searchCoefficient(group, only17);
    EXPECT_TRUE(sel.isInt || sel.a == 17);
}

TEST(CoeffSearch, HistogramBucket)
{
    MantSelection s;
    s.isInt = true;
    EXPECT_EQ(s.histogramBucket(), -1);
    s.isInt = false;
    s.a = 40;
    EXPECT_EQ(s.histogramBucket(), 40);
}

TEST(CoeffSearch, ScaleIsFp16Rounded)
{
    const auto group = gaussianGroup(56);
    const MantSelection sel = searchCoefficient(group, {}, {}, true);
    EXPECT_GT(sel.scale, 0.0f);
    // FP16-rounded: surviving another rounding must be a no-op.
    EXPECT_EQ(fp16Round(sel.scale), sel.scale);
}

/** Parameterized: different sigmas all produce valid selections. */
class CoeffSearchSweep : public ::testing::TestWithParam<double>
{};

TEST_P(CoeffSearchSweep, ValidSelection)
{
    const auto group = gaussianGroup(57, 64, GetParam());
    const MantSelection sel = searchCoefficient(group);
    EXPECT_GT(sel.scale, 0.0f);
    if (!sel.isInt) {
        EXPECT_GE(sel.a, 0);
        EXPECT_LE(sel.a, 120);
    }
    EXPECT_TRUE(std::isfinite(sel.err));
}

INSTANTIATE_TEST_SUITE_P(Sigmas, CoeffSearchSweep,
                         ::testing::Values(1e-4, 0.01, 1.0, 100.0));

} // namespace
} // namespace mant
