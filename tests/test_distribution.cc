#include <cmath>

#include <gtest/gtest.h>

#include "tensor/distribution.h"
#include "tensor/stats.h"

namespace mant {
namespace {

TEST(WeightGen, Deterministic)
{
    DistProfile p;
    Rng a(5), b(5);
    const Tensor w1 = genWeightMatrix(a, 8, 64, p);
    const Tensor w2 = genWeightMatrix(b, 8, 64, p);
    for (int64_t i = 0; i < w1.numel(); ++i)
        EXPECT_EQ(w1[i], w2[i]);
}

TEST(WeightGen, ShapeAndScale)
{
    DistProfile p;
    Rng rng(6);
    const Tensor w = genWeightMatrix(rng, 16, 128, p);
    EXPECT_EQ(w.shape(), Shape({16, 128}));
    // Typical scale ~ exp(sigmaMu): values should be small.
    StreamingStats s;
    s.addAll(w.span());
    EXPECT_LT(std::sqrt(s.variance()), 0.5);
    EXPECT_GT(std::sqrt(s.variance()), 0.001);
}

TEST(WeightGen, ChannelSigmaSpreadCreatesDiversity)
{
    DistProfile p;
    p.sigmaSpread = 0.6;
    p.outlierRate = 0.0;
    Rng rng(7);
    const Tensor w = genWeightMatrix(rng, 64, 256, p);
    // Per-channel standard deviations must differ substantially.
    double lo = 1e9, hi = 0.0;
    for (int64_t r = 0; r < 64; ++r) {
        StreamingStats s;
        s.addAll(w.row(r));
        const double sd = std::sqrt(s.variance());
        lo = std::min(lo, sd);
        hi = std::max(hi, sd);
    }
    EXPECT_GT(hi / lo, 2.0);
}

TEST(WeightGen, OutliersPresentAtRequestedRate)
{
    DistProfile p;
    p.outlierRate = 0.01;
    p.outlierScale = 30.0;
    Rng rng(8);
    const Tensor w = genWeightMatrix(rng, 32, 512, p);
    // Count elements beyond 6 sigma of their own channel.
    int64_t outliers = 0;
    for (int64_t r = 0; r < 32; ++r) {
        StreamingStats s;
        s.addAll(w.row(r));
        const double sd = std::sqrt(s.variance());
        for (float v : w.row(r))
            outliers += std::fabs(v) > 6.0 * sd;
    }
    EXPECT_GT(outliers, 10); // ~160 expected at 1%
}

TEST(WeightGen, GroupDriftCreatesGroupDiversity)
{
    // The Fig. 3 phenomenon: group-level CDFs diverge more than
    // tensor-level CDFs.
    DistProfile p;
    p.groupDrift = 0.5;
    p.shapeGroup = 64;
    Rng rng(9);
    const Tensor w = genWeightMatrix(rng, 8, 512, p);

    const double queries[] = {-0.5, -0.25, -0.1, 0.1, 0.25, 0.5};
    std::vector<std::vector<double>> group_series;
    const float *base = w.data();
    for (int g = 0; g < 16; ++g) {
        std::span<const float> grp(base + g * 64, 64);
        group_series.push_back(cdfAt(normalizedCdf(grp), queries));
    }
    std::vector<std::vector<double>> tensor_series;
    for (int t = 0; t < 2; ++t) {
        Rng r2(100 + static_cast<uint64_t>(t));
        const Tensor w2 = genWeightMatrix(r2, 8, 512, p);
        tensor_series.push_back(
            cdfAt(normalizedCdf(w2.span()), queries));
    }
    EXPECT_GT(cdfDiversity(group_series),
              cdfDiversity(tensor_series) * 1.5);
}

TEST(ActGen, HotChannelsAreSystematic)
{
    ActProfile p;
    p.outlierChannelRate = 0.05;
    p.outlierChannelScale = 30.0;
    Rng rng(10);
    const Tensor x = genActivationMatrix(rng, 64, 256, p);

    // Per-channel mean |x| should show a small set of hot channels.
    std::vector<double> mag(256, 0.0);
    for (int64_t t = 0; t < 64; ++t)
        for (int64_t c = 0; c < 256; ++c)
            mag[static_cast<size_t>(c)] += std::fabs(x.at(t, c));
    double total = 0.0, peak = 0.0;
    for (double m : mag) {
        total += m;
        peak = std::max(peak, m);
    }
    const double mean = total / 256.0;
    EXPECT_GT(peak, 8.0 * mean);
}

TEST(ActGen, Deterministic)
{
    ActProfile p;
    Rng a(11), b(11);
    const Tensor x1 = genActivationMatrix(a, 8, 32, p);
    const Tensor x2 = genActivationMatrix(b, 8, 32, p);
    for (int64_t i = 0; i < x1.numel(); ++i)
        EXPECT_EQ(x1[i], x2[i]);
}

TEST(ActGen, Shape)
{
    ActProfile p;
    Rng rng(12);
    EXPECT_EQ(genActivationMatrix(rng, 5, 9, p).shape(), Shape({5, 9}));
}

} // namespace
} // namespace mant
