#include <gtest/gtest.h>

#include "sim/accelerators.h"
#include "sim/energy_model.h"

namespace mant {
namespace {

TEST(EnergyModel, MacScalesWithWidthProduct)
{
    const EnergyParams p;
    EXPECT_DOUBLE_EQ(macEnergyPj(p, 8, 8), p.macPj8x8);
    EXPECT_DOUBLE_EQ(macEnergyPj(p, 8, 4), p.macPj8x8 / 2.0);
    EXPECT_DOUBLE_EQ(macEnergyPj(p, 16, 16), p.macPj8x8 * 4.0);
    EXPECT_DOUBLE_EQ(macEnergyPj(p, 4, 4), p.macPj8x8 / 4.0);
}

TEST(EnergyModel, SacCheaperThanAnyMac)
{
    const EnergyParams p;
    EXPECT_LT(p.sacPj, macEnergyPj(p, 8, 4));
}

TEST(EnergyModel, BreakdownArithmetic)
{
    EnergyBreakdown e;
    e.corePj = 1.0;
    e.bufferPj = 2.0;
    e.dramPj = 3.0;
    e.staticPj = 4.0;
    EXPECT_DOUBLE_EQ(e.totalPj(), 10.0);

    EnergyBreakdown f = e;
    f.add(e);
    EXPECT_DOUBLE_EQ(f.totalPj(), 20.0);
    EXPECT_DOUBLE_EQ(f.dramPj, 6.0);
}

TEST(EnergyModel, StaticPowerProportionalToArea)
{
    ArchConfig a = mantArch();
    const double base = a.staticWatts();
    a.totalAreaMm2 *= 2.0;
    EXPECT_NEAR(a.staticWatts(), 2.0 * base, 1e-12);
}

TEST(EnergyModel, DramDominatesPerByte)
{
    // DRAM must cost far more per byte than SRAM — the premise of the
    // paper's bit-width savings translating into energy.
    const EnergyParams p;
    EXPECT_GT(p.dramPjPerByte, 20.0 * p.sramPjPerByte);
}

TEST(EnergyModel, ArchsShareEnergyConstants)
{
    // Fair comparison: all five accelerators use identical constants.
    const auto archs = allArchs();
    for (const ArchConfig &a : archs) {
        EXPECT_DOUBLE_EQ(a.energy.macPj8x8,
                         archs[0].energy.macPj8x8);
        EXPECT_DOUBLE_EQ(a.energy.dramPjPerByte,
                         archs[0].energy.dramPjPerByte);
    }
}

} // namespace
} // namespace mant
