#include <cmath>

#include <gtest/gtest.h>

#include "model/evaluator.h"
#include "model/generation.h"
#include "test_util.h"

namespace mant {
namespace {

class EvaluatorTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        profile_ = new ModelProfile(test::tinyProfile());
        profile_->fp16Ppl = 9.0;
        weights_ = new ModelWeights(ModelWeights::generate(*profile_, 128));
        EvalConfig cfg;
        cfg.contexts = 2;
        cfg.seqLen = 32;
        cfg.skip = 4;
        eval_ = new PplEvaluator(*weights_, cfg);
    }

    static void
    TearDownTestSuite()
    {
        delete eval_;
        delete weights_;
        delete profile_;
        eval_ = nullptr;
        weights_ = nullptr;
        profile_ = nullptr;
    }

    static ModelProfile *profile_;
    static ModelWeights *weights_;
    static PplEvaluator *eval_;
};

ModelProfile *EvaluatorTest::profile_ = nullptr;
ModelWeights *EvaluatorTest::weights_ = nullptr;
PplEvaluator *EvaluatorTest::eval_ = nullptr;

TEST_F(EvaluatorTest, CalibrationHitsTargetPerplexity)
{
    EXPECT_NEAR(eval_->referencePerplexity(), 9.0, 0.05);
    EXPECT_GT(eval_->logitScale(), 0.0f);
}

TEST_F(EvaluatorTest, ReferenceModelScoresReference)
{
    Transformer ref(*weights_, fp16Setup());
    const double ppl = eval_->perplexity(ref);
    EXPECT_NEAR(ppl, eval_->referencePerplexity(), 0.05);
}

TEST_F(EvaluatorTest, QuantizationRaisesPerplexity)
{
    const double ref = eval_->referencePerplexity();
    const double mant = eval_->perplexityOf(mantW4A8Setup(16));
    EXPECT_GE(mant, ref - 0.05);
}

TEST_F(EvaluatorTest, MantBeatsPlainInt4)
{
    QuantSetup int4 = w4a4Setup(WeightMethod::Int, ActMethod::Int,
                                Granularity::PerGroup, 16);
    int4.act = ActMethod::None; // isolate the weight effect
    QuantSetup mant = mantW4A8Setup(16);
    mant.act = ActMethod::None;

    const double int_ppl = eval_->perplexityOf(int4);
    const double mant_ppl = eval_->perplexityOf(mant);
    EXPECT_LE(mant_ppl, int_ppl * 1.05);
}

TEST_F(EvaluatorTest, CoarseChannelwiseWorseThanGroupwise)
{
    QuantSetup group = w4a4Setup(WeightMethod::Int, ActMethod::Int,
                                 Granularity::PerGroup, 16);
    group.act = ActMethod::None;
    QuantSetup chan = group;
    chan.weightGran = Granularity::PerChannel;

    const double g = eval_->perplexityOf(group);
    const double c = eval_->perplexityOf(chan);
    EXPECT_LE(g, c * 1.02);
}

TEST_F(EvaluatorTest, CorpusIsDeterministic)
{
    EvalConfig cfg;
    cfg.contexts = 2;
    cfg.seqLen = 32;
    cfg.skip = 4;
    PplEvaluator other(*weights_, cfg);
    EXPECT_EQ(other.corpus()[0], eval_->corpus()[0]);
    EXPECT_FLOAT_EQ(other.logitScale(), eval_->logitScale());
}

TEST(Generation, GreedyIsDeterministic)
{
    const ModelProfile p = test::tinyProfile();
    const ModelWeights w = ModelWeights::generate(p, 128);
    Transformer m(w, fp16Setup());
    const std::vector<int32_t> prompt = {1, 2, 3, 4, 5, 6, 7, 8};
    const auto a = greedyGenerate(m, prompt, 12);
    const auto b = greedyGenerate(m, prompt, 12);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 12u);
}

TEST(Generation, SimilarityIdentical)
{
    const std::vector<int32_t> a = {1, 2, 3, 4};
    EXPECT_EQ(generationSimilarity(a, a), 1.0);
}

TEST(Generation, SimilarityDisjoint)
{
    const std::vector<int32_t> a = {1, 2, 3, 4};
    const std::vector<int32_t> b = {5, 6, 7, 8};
    EXPECT_EQ(generationSimilarity(a, b), 0.0);
}

TEST(Generation, LateDivergenceScoresHigher)
{
    const std::vector<int32_t> ref = {1, 2, 3, 4, 5, 6};
    const std::vector<int32_t> early = {9, 2, 3, 4, 5, 6};
    const std::vector<int32_t> late = {1, 2, 3, 4, 5, 9};
    EXPECT_GT(generationSimilarity(ref, late),
              generationSimilarity(ref, early));
}

TEST(Generation, ScaledScore)
{
    EXPECT_DOUBLE_EQ(scaledGenerationScore(1.0, 27.88), 27.88);
    EXPECT_DOUBLE_EQ(scaledGenerationScore(0.5, 27.88), 13.94);
}

TEST(Generation, ForcedAgreementSelfIsOne)
{
    const ModelProfile p = test::tinyProfile();
    const ModelWeights w = ModelWeights::generate(p, 128);
    Transformer m(w, fp16Setup());
    const std::vector<int32_t> prompt = {2, 4, 6, 8, 10, 12};
    const auto gen = greedyGenerate(m, prompt, 10);
    // The model that produced the greedy reference must agree with it
    // perfectly under teacher forcing.
    EXPECT_DOUBLE_EQ(forcedDecodingAgreement(m, prompt, gen), 1.0);
}

TEST(Generation, ForcedAgreementDetectsQuantization)
{
    const ModelProfile p = test::tinyProfile();
    const ModelWeights w = ModelWeights::generate(p, 128);
    Transformer ref(w, fp16Setup());
    const std::vector<int32_t> prompt = {2, 4, 6, 8, 10, 12};
    const auto gen = greedyGenerate(ref, prompt, 16);

    QuantSetup harsh = w4a4Setup(WeightMethod::Int, ActMethod::Int,
                                 Granularity::PerTensor, 0);
    Transformer q(w, harsh);
    const double agreement = forcedDecodingAgreement(q, prompt, gen);
    EXPECT_GE(agreement, 0.0);
    EXPECT_LE(agreement, 1.0);
    // The continuous likelihood measure must detect the perturbation
    // even when the argmax survives it. (On a single short sequence
    // the direction is not guaranteed — a perturbed model can assign
    // the reference *higher* probability by chance — so assert
    // detection, not direction.)
    const double lik_ref = forcedLikelihood(ref, prompt, gen);
    const double lik_q = forcedLikelihood(q, prompt, gen);
    EXPECT_GT(std::fabs(std::log(lik_q / lik_ref)), 1e-6);
}

TEST(Generation, QuantizedModelTracksReference)
{
    const ModelProfile p = test::tinyProfile();
    const ModelWeights w = ModelWeights::generate(p, 128);
    Transformer ref(w, fp16Setup());
    Transformer mant(w, mantW4A8Setup(16));
    const std::vector<int32_t> prompt = {3, 1, 4, 1, 5, 9, 2, 6};
    const auto g_ref = greedyGenerate(ref, prompt, 16);
    const auto g_mant = greedyGenerate(mant, prompt, 16);
    // W4A8 should track greedy decoding reasonably well.
    EXPECT_GT(generationSimilarity(g_ref, g_mant), 0.3);
}

} // namespace
} // namespace mant
