#include <cmath>

#include <gtest/gtest.h>

#include "quant/fixed_formats.h"

namespace mant {
namespace {

TEST(IntFormat, LevelsSymmetricDense)
{
    const auto &f = int4Format();
    EXPECT_EQ(f.bits(), 4);
    ASSERT_EQ(f.levels().size(), 15u);
    EXPECT_EQ(f.levels().front(), -7.0f);
    EXPECT_EQ(f.levels().back(), 7.0f);
    EXPECT_EQ(f.maxAbsLevel(), 7.0f);
}

TEST(IntFormat, Int8Range)
{
    const auto &f = int8Format();
    EXPECT_EQ(f.levels().size(), 255u);
    EXPECT_EQ(f.maxAbsLevel(), 127.0f);
}

TEST(IntFormat, RejectsBadBits)
{
    EXPECT_THROW(IntFormat(1), std::invalid_argument);
    EXPECT_THROW(IntFormat(20), std::invalid_argument);
}

TEST(PotFormat, PowersOfTwoWithZero)
{
    const auto &f = pot4Format();
    ASSERT_EQ(f.levels().size(), 15u);
    EXPECT_EQ(f.maxAbsLevel(), 64.0f);
    // Zero present exactly once.
    int zeros = 0;
    for (float v : f.levels())
        zeros += v == 0.0f;
    EXPECT_EQ(zeros, 1);
}

TEST(FlintFormat, GridShape)
{
    const auto &f = flint4Format();
    ASSERT_EQ(f.levels().size(), 15u);
    EXPECT_EQ(f.maxAbsLevel(), 12.0f);
}

TEST(Nf4Format, SixteenAsymmetricLevels)
{
    const auto &f = nf4Format();
    ASSERT_EQ(f.levels().size(), 16u);
    EXPECT_EQ(f.levels().front(), -1.0f);
    EXPECT_EQ(f.levels().back(), 1.0f);
    // Includes exact zero, and is asymmetric (QLoRA property).
    bool has_zero = false;
    for (float v : f.levels())
        has_zero |= v == 0.0f;
    EXPECT_TRUE(has_zero);
    EXPECT_NE(-f.levels()[1], f.levels()[14]);
}

TEST(Mxfp4Format, E2M1Grid)
{
    const auto &f = mxfp4Format();
    ASSERT_EQ(f.levels().size(), 15u);
    EXPECT_EQ(f.maxAbsLevel(), 6.0f);
}

TEST(Mxfp4Format, ScaleIsPowerOfTwo)
{
    const auto &f = mxfp4Format();
    for (float absmax : {0.013f, 1.0f, 5.9f, 6.0f, 6.1f, 300.0f}) {
        const float s = f.scaleFor(absmax);
        const float l2 = std::log2(s);
        EXPECT_EQ(l2, std::round(l2)) << absmax;
        // No clipping: max value representable.
        EXPECT_GE(s * f.maxAbsLevel(), absmax * 0.999f);
    }
}

TEST(NearestLevel, PicksClosest)
{
    const float levels[] = {-4.0f, -1.0f, 0.0f, 2.0f, 8.0f};
    EXPECT_EQ(nearestLevel(levels, -10.0f), 0);
    EXPECT_EQ(nearestLevel(levels, -2.4f), 1);
    EXPECT_EQ(nearestLevel(levels, 0.9f), 2);
    EXPECT_EQ(nearestLevel(levels, 1.1f), 3);
    EXPECT_EQ(nearestLevel(levels, 100.0f), 4);
}

TEST(NearestLevel, TieGoesLower)
{
    const float levels[] = {0.0f, 2.0f};
    EXPECT_EQ(nearestLevel(levels, 1.0f), 0);
}

TEST(AntTypeSet, ContainsThreeTypes)
{
    const auto set = antTypeSet();
    ASSERT_EQ(set.size(), 3u);
    EXPECT_EQ(set[0]->name(), "int4");
    EXPECT_EQ(set[1]->name(), "flint4");
    EXPECT_EQ(set[2]->name(), "pot4");
}

/** Property: encode/decode round-trips to the nearest level for every
 *  format in the catalogue. */
class FormatPropertyTest
    : public ::testing::TestWithParam<const NumericFormat *>
{};

TEST_P(FormatPropertyTest, LevelsSortedAscending)
{
    const auto lv = GetParam()->levels();
    for (size_t i = 1; i < lv.size(); ++i)
        EXPECT_LT(lv[i - 1], lv[i]);
}

TEST_P(FormatPropertyTest, DecodeOfEncodeIsNearest)
{
    const NumericFormat &f = *GetParam();
    const float scale = f.scaleFor(3.7f);
    for (int i = -50; i <= 50; ++i) {
        const float x = 0.074f * static_cast<float>(i);
        const float q = f.quantizeValue(x, scale);
        // No level may be strictly closer than the chosen one.
        for (float lvl : f.levels()) {
            EXPECT_LE(std::fabs(q - x),
                      std::fabs(lvl * scale - x) + 1e-6f)
                << f.name() << " x=" << x;
        }
    }
}

TEST_P(FormatPropertyTest, QuantizationIdempotent)
{
    const NumericFormat &f = *GetParam();
    const float scale = f.scaleFor(2.0f);
    for (int i = -20; i <= 20; ++i) {
        const float x = 0.1f * static_cast<float>(i);
        const float once = f.quantizeValue(x, scale);
        EXPECT_FLOAT_EQ(f.quantizeValue(once, scale), once);
    }
}

TEST_P(FormatPropertyTest, SymmetricScaleCoversMax)
{
    const NumericFormat &f = *GetParam();
    const float absmax = 5.0f;
    const float scale = f.scaleFor(absmax);
    EXPECT_GE(scale * f.maxAbsLevel(), absmax * 0.999f);
}

TEST_P(FormatPropertyTest, EncodeRangeValid)
{
    const NumericFormat &f = *GetParam();
    const float scale = f.scaleFor(1.0f);
    for (float x : {-100.0f, -1.0f, 0.0f, 0.3f, 1.0f, 100.0f}) {
        const int c = f.encode(x, scale);
        EXPECT_GE(c, 0);
        EXPECT_LT(c, static_cast<int>(f.levels().size()));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, FormatPropertyTest,
    ::testing::Values(&int4Format(), &int8Format(), &pot4Format(),
                      &flint4Format(), &nf4Format(), &mxfp4Format()),
    [](const ::testing::TestParamInfo<const NumericFormat *> &info) {
        std::string n(info.param->name());
        for (char &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

} // namespace
} // namespace mant
