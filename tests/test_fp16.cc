#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "tensor/fp16.h"

namespace mant {
namespace {

TEST(Fp16, ExactSmallIntegers)
{
    for (int i = -2048; i <= 2048; ++i) {
        const float f = static_cast<float>(i);
        EXPECT_EQ(fp16Round(f), f) << "integer " << i;
    }
}

TEST(Fp16, ExactPowersOfTwo)
{
    for (int e = -14; e <= 15; ++e) {
        const float f = std::ldexp(1.0f, e);
        EXPECT_EQ(fp16Round(f), f) << "2^" << e;
    }
}

TEST(Fp16, SignPreserved)
{
    EXPECT_EQ(fp16Round(-1.5f), -1.5f);
    EXPECT_EQ(fp16Round(1.5f), 1.5f);
    EXPECT_TRUE(std::signbit(fp16Round(-0.0f)));
    EXPECT_FALSE(std::signbit(fp16Round(0.0f)));
}

TEST(Fp16, RoundingIsNearest)
{
    // 1 + 2^-11 is exactly halfway between 1 and 1 + 2^-10; RNE keeps 1.
    const float halfway = 1.0f + std::ldexp(1.0f, -11);
    EXPECT_EQ(fp16Round(halfway), 1.0f);
    // Slightly above halfway rounds up.
    const float above = 1.0f + std::ldexp(1.0f, -11) * 1.5f;
    EXPECT_EQ(fp16Round(above), 1.0f + std::ldexp(1.0f, -10));
}

TEST(Fp16, OverflowToInfinity)
{
    EXPECT_TRUE(std::isinf(fp16Round(1e6f)));
    EXPECT_TRUE(std::isinf(fp16Round(-1e6f)));
    EXPECT_EQ(fp16Round(kFp16Max), kFp16Max);
}

TEST(Fp16, SubnormalsRepresented)
{
    // Smallest positive subnormal: 2^-24.
    const float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(fp16Round(tiny), tiny);
    // Below half of that flushes to zero.
    EXPECT_EQ(fp16Round(std::ldexp(1.0f, -26)), 0.0f);
}

TEST(Fp16, NanPreserved)
{
    EXPECT_TRUE(std::isnan(
        fp16Round(std::numeric_limits<float>::quiet_NaN())));
}

TEST(Fp16, RelativeErrorBounded)
{
    // For normal values the relative error of one rounding is <= 2^-11.
    for (int i = 1; i < 5000; ++i) {
        const float f = 0.001f * static_cast<float>(i) * 3.3f;
        const float r = fp16Round(f);
        EXPECT_NEAR(r, f, std::fabs(f) * 0x1.0p-10) << f;
    }
}

TEST(Fp16, Idempotent)
{
    for (int i = 1; i < 1000; ++i) {
        const float f = fp16Round(0.37f * static_cast<float>(i));
        EXPECT_EQ(fp16Round(f), f);
    }
}

TEST(Fp16, BitsRoundTrip)
{
    // Every finite half bit pattern survives half->float->half exactly.
    for (uint32_t bits = 0; bits < 0x10000u; ++bits) {
        const uint16_t h = static_cast<uint16_t>(bits);
        if (((h >> 10) & 0x1f) == 0x1f)
            continue; // skip inf/nan patterns
        const float f = halfBitsToFloat(h);
        EXPECT_EQ(floatToHalfBits(f), h) << "pattern " << bits;
    }
}

} // namespace
} // namespace mant
