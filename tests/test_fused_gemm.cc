#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/fused_gemm.h"
#include "tensor/distribution.h"
#include "tensor/stats.h"
#include "test_util.h"

namespace mant {
namespace {

TEST(FusedDot, Eq5IdentityExactIntegers)
{
    // For integer activations and grid values, (a*psum1 + psum2) must
    // equal the direct integer dot product exactly.
    const int a = 17;
    std::vector<int32_t> x = {5, -3, 127, 0, -127, 64, 1, -1};
    std::vector<MantCode> codes;
    for (int i = 0; i < 8; ++i)
        codes.push_back(makeMantCode(i % 3 == 0, i % 8));

    const MantPsums p = fusedDot(x, codes);
    int64_t direct = 0;
    for (size_t i = 0; i < x.size(); ++i)
        direct += static_cast<int64_t>(x[i]) * mantCodeValue(a, codes[i]);
    EXPECT_EQ(static_cast<int64_t>(a) * p.psum1 + p.psum2, direct);
}

TEST(FusedDot, IdentityHoldsForEveryCoefficient)
{
    // psum1/psum2 are coefficient-independent; the identity must hold
    // for every a with the same psums — that is the whole trick.
    std::vector<int32_t> x = {17, -100, 3, 99, -64, 2, -2, 50};
    std::vector<MantCode> codes;
    for (int i = 0; i < 8; ++i)
        codes.push_back(makeMantCode(i % 2 == 1, (7 - i) % 8));
    const MantPsums p = fusedDot(x, codes);

    for (int a : mantCoefficientSet()) {
        int64_t direct = 0;
        for (size_t i = 0; i < x.size(); ++i)
            direct += static_cast<int64_t>(x[i]) *
                      mantCodeValue(a, codes[i]);
        EXPECT_EQ(static_cast<int64_t>(a) * p.psum1 + p.psum2, direct)
            << "a=" << a;
    }
}

TEST(FusedDot, SacShiftGuardsExtremeMagnitudes)
{
    // Grid magnitudes are 0..7; the SAC lane must stay defined (and
    // int64-widened) even for magnitudes a corrupted code could carry.
    EXPECT_EQ(sacShift(1, 0), 1);
    EXPECT_EQ(sacShift(-3, 2), -12);
    EXPECT_EQ(sacShift(127, 7), 127 * 128);
    EXPECT_EQ(sacShift(1, 62), int64_t{1} << 62);
    // Beyond the int64 width the value wraps (uint64 shift semantics);
    // the point is defined behavior, not a meaningful product.
    EXPECT_EQ(sacShift(1, 63), std::numeric_limits<int64_t>::min());
    EXPECT_EQ(sacShift(1, 1000), std::numeric_limits<int64_t>::min());
    EXPECT_EQ(sacShift(2, 62), std::numeric_limits<int64_t>::min());
    EXPECT_EQ(sacShift(-1, -5), -1);
    EXPECT_EQ(sacShift(0, 40), 0);
}

TEST(FusedDot, EmptyIsZero)
{
    const MantPsums p = fusedDot({}, {});
    EXPECT_EQ(p.psum1, 0);
    EXPECT_EQ(p.psum2, 0);
}

TEST(FusedDot, LengthMismatchThrows)
{
    std::vector<int32_t> x = {1};
    std::vector<MantCode> c = {0, 1};
    EXPECT_THROW(fusedDot(x, c), std::invalid_argument);
}

TEST(QuantizedMatrix, DequantizeHitsNearestGridPoints)
{
    const Tensor w = test::gaussianTensor(Shape{8, 128}, 81, 0.02);
    const MantQuantizedMatrix q = MantQuantizedMatrix::quantize(w, 64);
    const Tensor wd = q.dequantize();
    // Quantizing the dequantized tensor again must be a fixed point.
    const MantQuantizedMatrix q2 =
        MantQuantizedMatrix::quantize(wd, 64);
    const Tensor wd2 = q2.dequantize();
    EXPECT_LT(test::maxDiff(wd.span(), wd2.span()), 1e-5);
}

TEST(QuantizedMatrix, SelectionHistogramCoversAllGroups)
{
    const Tensor w = test::gaussianTensor(Shape{16, 256}, 82, 0.02);
    const MantQuantizedMatrix q = MantQuantizedMatrix::quantize(w, 64);
    int64_t total = 0;
    for (const auto &[bucket, count] : q.selectionHistogram())
        total += count;
    EXPECT_EQ(total, 16 * 4);
}

TEST(QuantizedMatrix, BitsPerElementIncludesMetadata)
{
    const Tensor w = test::gaussianTensor(Shape{4, 128}, 83);
    const MantQuantizedMatrix q = MantQuantizedMatrix::quantize(w, 64);
    // 4 bits + 24 metadata bits per 64-element group = 4.375.
    EXPECT_NEAR(q.bitsPerElement(), 4.375, 1e-9);
}

TEST(QuantizedMatrix, OutputMseRequiresCalibration)
{
    const Tensor w = test::gaussianTensor(Shape{4, 64}, 84);
    EXPECT_THROW(MantQuantizedMatrix::quantize(
                     w, 64, MantQuantizedMatrix::Search::OutputMse),
                 std::invalid_argument);
}

TEST(QuantizedMatrix, OutputMseUsesCalibrationPower)
{
    const Tensor w = test::gaussianTensor(Shape{8, 64}, 85, 0.05);
    std::vector<double> power(64, 1.0);
    power[3] = 1e6; // position 3 is critical
    const MantQuantizedMatrix q = MantQuantizedMatrix::quantize(
        w, 64, MantQuantizedMatrix::Search::OutputMse, power);
    const Tensor wd = q.dequantize();
    // The weighted search must keep column 3 accurate relative to the
    // group's overall error.
    double col3_err = 0.0, rest_err = 0.0;
    for (int64_t r = 0; r < 8; ++r) {
        for (int64_t c = 0; c < 64; ++c) {
            const double d = std::fabs(
                static_cast<double>(w.at(r, c)) - wd.at(r, c));
            if (c == 3)
                col3_err += d;
            else
                rest_err += d / 63.0;
        }
    }
    EXPECT_LT(col3_err, rest_err * 2.5);
}

TEST(Int8Activations, RoundTripAccuracy)
{
    const Tensor x = test::gaussianTensor(Shape{4, 128}, 86);
    const auto q = Int8QuantizedActivations::quantize(x, 64);
    const Tensor xd = q.dequantize();
    // INT8 group-wise: relative error well under 1%.
    EXPECT_LT(nmse(x.span(), xd.span()), 1e-4);
}

TEST(Int8Activations, CodesWithinRange)
{
    const Tensor x = test::gaussianTensor(Shape{2, 64}, 87, 10.0);
    const auto q = Int8QuantizedActivations::quantize(x, 64);
    for (int64_t r = 0; r < 2; ++r) {
        for (int8_t c : q.rowCodes(r)) {
            EXPECT_GE(c, -127);
            EXPECT_LE(c, 127);
        }
    }
}

TEST(FusedGemm, MatchesDequantReference)
{
    // The headline property (Sec. IV-C): the all-integer fused path
    // equals dequantize-then-float-multiply up to FP rounding.
    DistProfile p;
    Rng rng(88);
    const Tensor w = genWeightMatrix(rng, 24, 128, p);
    const Tensor x = test::gaussianTensor(Shape{6, 128}, 89);

    const MantQuantizedMatrix qw = MantQuantizedMatrix::quantize(w, 64);
    const auto qx = Int8QuantizedActivations::quantize(x, 64);

    const Tensor fused = fusedGemm(qx, qw);
    const Tensor ref = dequantGemmReference(qx, qw);
    ASSERT_EQ(fused.shape(), ref.shape());
    for (int64_t i = 0; i < fused.numel(); ++i) {
        EXPECT_NEAR(fused[i], ref[i],
                    1e-4f * (1.0f + std::fabs(ref[i])))
            << "index " << i;
    }
}

TEST(FusedGemm, GroupLayoutMismatchThrows)
{
    const Tensor w = test::gaussianTensor(Shape{4, 128}, 90);
    const Tensor x = test::gaussianTensor(Shape{2, 128}, 91);
    const MantQuantizedMatrix qw = MantQuantizedMatrix::quantize(w, 64);
    const auto qx = Int8QuantizedActivations::quantize(x, 32);
    EXPECT_THROW(fusedGemm(qx, qw), std::invalid_argument);
}

TEST(FusedGemm, ReductionMismatchThrows)
{
    const Tensor w = test::gaussianTensor(Shape{4, 128}, 92);
    const Tensor x = test::gaussianTensor(Shape{2, 64}, 93);
    const MantQuantizedMatrix qw = MantQuantizedMatrix::quantize(w, 64);
    const auto qx = Int8QuantizedActivations::quantize(x, 64);
    EXPECT_THROW(fusedGemm(qx, qw), std::invalid_argument);
}

TEST(FusedGemm, AccuracyAgainstFloatGemm)
{
    // End-to-end quantization error of the full fused pipeline stays
    // small on Gaussian data (W4A8 G64).
    DistProfile p;
    Rng rng(94);
    const Tensor w = genWeightMatrix(rng, 32, 256, p);
    const Tensor x = test::gaussianTensor(Shape{8, 256}, 95);

    const MantQuantizedMatrix qw = MantQuantizedMatrix::quantize(w, 64);
    const auto qx = Int8QuantizedActivations::quantize(x, 64);
    const Tensor fused = fusedGemm(qx, qw);

    // Float reference with unquantized operands.
    Tensor ref(Shape{8, 32});
    for (int64_t m = 0; m < 8; ++m)
        for (int64_t n = 0; n < 32; ++n) {
            double acc = 0.0;
            for (int64_t k = 0; k < 256; ++k)
                acc += static_cast<double>(x.at(m, k)) * w.at(n, k);
            ref.at(m, n) = static_cast<float>(acc);
        }
    EXPECT_LT(nmse(ref.span(), fused.span()), 0.01);
}

/** Parameterized sweep over shapes and group sizes. */
class FusedGemmSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>>
{};

TEST_P(FusedGemmSweep, FusedEqualsReference)
{
    const auto [m, k, n, g] = GetParam();
    DistProfile p;
    Rng rng(static_cast<uint64_t>(m * 131 + k * 17 + n * 3 + g));
    const Tensor w = genWeightMatrix(rng, n, k, p);
    const Tensor x = test::gaussianTensor(
        Shape{m, k}, static_cast<uint64_t>(g + 7));

    const MantQuantizedMatrix qw = MantQuantizedMatrix::quantize(w, g);
    const auto qx = Int8QuantizedActivations::quantize(x, g);
    const Tensor fused = fusedGemm(qx, qw);
    const Tensor ref = dequantGemmReference(qx, qw);
    for (int64_t i = 0; i < fused.numel(); ++i)
        EXPECT_NEAR(fused[i], ref[i],
                    1e-4f * (1.0f + std::fabs(ref[i])));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FusedGemmSweep,
    ::testing::Values(std::tuple{1, 64, 1, 64},   // GEMV, one group
                      std::tuple{1, 128, 8, 64},  // GEMV, two groups
                      std::tuple{4, 96, 8, 64},   // ragged tail group
                      std::tuple{2, 64, 4, 16},   // small groups
                      std::tuple{3, 200, 5, 64},  // non-multiple K
                      std::tuple{2, 64, 4, 128})); // group > K

} // namespace
} // namespace mant
