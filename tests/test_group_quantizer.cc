#include <cmath>

#include <gtest/gtest.h>

#include "quant/fixed_formats.h"
#include "quant/group_quantizer.h"
#include "test_util.h"

namespace mant {
namespace {

QuantConfig
groupCfg(int64_t g)
{
    QuantConfig cfg;
    cfg.gran = Granularity::PerGroup;
    cfg.groupSize = g;
    return cfg;
}

TEST(Granularity, UnitCounts)
{
    const Tensor t(Shape{4, 128});
    QuantConfig cfg;
    cfg.gran = Granularity::PerTensor;
    EXPECT_EQ(quantUnitCount(t, cfg), 1);
    cfg.gran = Granularity::PerChannel;
    EXPECT_EQ(quantUnitCount(t, cfg), 4);
    cfg.gran = Granularity::PerGroup;
    cfg.groupSize = 64;
    EXPECT_EQ(quantUnitCount(t, cfg), 8);
    cfg.groupSize = 100; // ragged tail group per row
    EXPECT_EQ(quantUnitCount(t, cfg), 8);
}

TEST(Granularity, MetaBitsPerElement)
{
    const Tensor t(Shape{2, 128});
    QuantConfig cfg = groupCfg(64);
    // 4 groups of 64 -> 16 bits / 64 elements = 0.25 bits/elem.
    EXPECT_NEAR(metaBitsPerElement(t, cfg, 0), 0.25, 1e-12);
    EXPECT_NEAR(metaBitsPerElement(t, cfg, 8), 0.375, 1e-12);
}

TEST(Granularity, GroupsDoNotStraddleChannels)
{
    // 2 rows of 96 with group 64 -> groups 64+32 per row, 4 total.
    Tensor in(Shape{2, 96}, 1.0f);
    Tensor out(Shape{2, 96});
    std::vector<size_t> sizes;
    forEachQuantUnit(in, out, groupCfg(64),
                     [&](std::span<const float> g, std::span<float>) {
                         sizes.push_back(g.size());
                     });
    ASSERT_EQ(sizes.size(), 4u);
    EXPECT_EQ(sizes[0], 64u);
    EXPECT_EQ(sizes[1], 32u);
    EXPECT_EQ(sizes[2], 64u);
    EXPECT_EQ(sizes[3], 32u);
}

TEST(FixedQuant, ZeroTensorSurvives)
{
    const Tensor t(Shape{2, 64});
    QuantStats stats;
    const Tensor q = quantDequantFixed(t, int4Format(), groupCfg(64),
                                       &stats);
    EXPECT_EQ(stats.mse, 0.0);
}

TEST(FixedQuant, ErrorBounded)
{
    const Tensor t = test::gaussianTensor(Shape{8, 128}, 21);
    QuantStats stats;
    quantDequantFixed(t, int4Format(), groupCfg(64), &stats);
    // INT4 group-wise on a Gaussian: NMSE well under 1% of power...
    EXPECT_LT(stats.nmse, 0.05);
    EXPECT_GT(stats.nmse, 0.0);
}

TEST(FixedQuant, GroupBeatsChannelBeatsTensor)
{
    // The Fig. 1 phenomenon: finer granularity -> lower error, on data
    // with channel and group scale diversity.
    DistProfile p;
    p.sigmaSpread = 0.5;
    p.groupDrift = 0.4;
    p.outlierRate = 0.002;
    Rng rng(22);
    const Tensor w = genWeightMatrix(rng, 32, 512, p);

    QuantStats tensor_s, chan_s, group_s;
    QuantConfig cfg;
    cfg.gran = Granularity::PerTensor;
    quantDequantFixed(w, int4Format(), cfg, &tensor_s);
    cfg.gran = Granularity::PerChannel;
    quantDequantFixed(w, int4Format(), cfg, &chan_s);
    quantDequantFixed(w, int4Format(), groupCfg(64), &group_s);

    EXPECT_LT(group_s.mse, chan_s.mse);
    EXPECT_LT(chan_s.mse, tensor_s.mse);
}

TEST(FixedQuant, SmallerGroupsLowerError)
{
    DistProfile p;
    p.groupDrift = 0.4;
    Rng rng(23);
    const Tensor w = genWeightMatrix(rng, 16, 512, p);
    double prev = 1e18;
    for (int64_t g : {256, 128, 64, 32}) {
        QuantStats s;
        quantDequantFixed(w, int4Format(), groupCfg(g), &s);
        EXPECT_LT(s.mse, prev * 1.0001) << "group " << g;
        prev = s.mse;
    }
}

TEST(AdaptiveQuant, NeverWorseThanAnySingleType)
{
    const Tensor t = test::gaussianTensor(Shape{8, 256}, 25, 0.1);
    QuantStats ant;
    quantDequantAdaptive(t, antTypeSet(), groupCfg(64), &ant);
    for (const NumericFormat *f : antTypeSet()) {
        QuantStats single;
        quantDequantFixed(t, *f, groupCfg(64), &single);
        EXPECT_LE(ant.mse, single.mse * 1.0001) << f->name();
    }
}

TEST(AdaptiveQuant, FormatCountsSumToUnits)
{
    const Tensor t = test::gaussianTensor(Shape{4, 256}, 26);
    QuantStats stats;
    quantDequantAdaptive(t, antTypeSet(), groupCfg(64), &stats);
    int64_t total = 0;
    for (int64_t c : stats.formatCounts)
        total += c;
    EXPECT_EQ(total, stats.unitCount);
    EXPECT_EQ(stats.unitCount, 16);
}

TEST(AdaptiveQuant, PicksPotForExponentialData)
{
    // Data concentrated near zero with exponential tails favours PoT.
    Tensor t(Shape{1, 64});
    Rng rng(27);
    for (int64_t i = 0; i < 64; ++i)
        t[i] = static_cast<float>(rng.laplace(0.05));
    QuantStats stats;
    quantDequantAdaptive(t, antTypeSet(), groupCfg(64), &stats);
    // pot4 is index 2 in the set.
    EXPECT_GE(stats.formatCounts[2] + stats.formatCounts[1], 1);
}

TEST(KMeans, BeatsAdaptiveOnMixedData)
{
    // Per-group clustering is the accuracy-optimal reference (Fig. 2).
    DistProfile p;
    p.groupDrift = 0.4;
    p.laplaceMix = 0.3;
    Rng rng(28);
    const Tensor w = genWeightMatrix(rng, 16, 256, p);

    QuantStats ant, ideal;
    quantDequantAdaptive(w, antTypeSet(), groupCfg(64), &ant);
    quantDequantKMeans(w, 16, groupCfg(64), &ideal);
    EXPECT_LT(ideal.mse, ant.mse);
}

TEST(KMeans, PerfectWhenFewDistinctValues)
{
    Tensor t(Shape{1, 64});
    for (int64_t i = 0; i < 64; ++i)
        t[i] = static_cast<float>(i % 4); // 4 distinct values, k=16
    QuantStats stats;
    QuantConfig cfg = groupCfg(64);
    cfg.fp16Scale = false; // exact codebook
    quantDequantKMeans(t, 16, cfg, &stats);
    EXPECT_NEAR(stats.mse, 0.0, 1e-10);
}

TEST(KMeans, MetaBitsReflectCodebook)
{
    const Tensor t = test::gaussianTensor(Shape{1, 128}, 29);
    QuantStats stats;
    quantDequantKMeans(t, 16, groupCfg(64), &stats);
    // 16 FP16 entries per 64-element group: 256 bits / 64 = 4 extra
    // bits/elem beyond the scale slot -> "effectively 6-bit" storage.
    EXPECT_GT(stats.metaBits, 3.5);
}

TEST(Fp16Scale, RoundingScaleMattersLittle)
{
    const Tensor t = test::gaussianTensor(Shape{4, 128}, 30);
    QuantConfig exact = groupCfg(64);
    exact.fp16Scale = false;
    QuantConfig fp16 = groupCfg(64);
    QuantStats se, sf;
    quantDequantFixed(t, int4Format(), exact, &se);
    quantDequantFixed(t, int4Format(), fp16, &sf);
    EXPECT_NEAR(sf.mse, se.mse, se.mse * 0.2 + 1e-12);
}

/**
 * Property: quantize-dequantize is idempotent. A dequantized tensor
 * lies exactly on the grid its scale implies, so requantizing it must
 * be a fixed point — for every fixed format at every granularity the
 * sweep covers, bit-exactly.
 */
class RoundTripSweep
    : public ::testing::TestWithParam<
          std::tuple<const NumericFormat *, int64_t>>
{};

TEST_P(RoundTripSweep, QuantDequantIsIdempotent)
{
    const auto [fmt, g] = GetParam();
    // 96 columns: group 32 divides, 40 leaves a ragged tail, 128
    // clamps to one group per row, -1 means per-row, 1 is per-element.
    const Tensor t = test::gaussianTensor(Shape{6, 96}, 501);
    const Tensor once = quantDequantFixed(t, *fmt, groupCfg(g));
    const Tensor twice = quantDequantFixed(once, *fmt, groupCfg(g));
    ASSERT_EQ(once.shape(), t.shape());
    for (int64_t i = 0; i < once.numel(); ++i)
        ASSERT_EQ(once[i], twice[i])
            << fmt->name() << " group=" << g << " index " << i;
}

std::string
roundTripName(
    const ::testing::TestParamInfo<std::tuple<const NumericFormat *,
                                              int64_t>> &info)
{
    const NumericFormat *fmt = std::get<0>(info.param);
    const int64_t g = std::get<1>(info.param);
    std::string name(fmt->name());
    name += g < 0 ? "_gneg1" : "_g" + std::to_string(g);
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    FormatsAndGroups, RoundTripSweep,
    ::testing::Combine(
        ::testing::Values(
            static_cast<const NumericFormat *>(&int4Format()),
            static_cast<const NumericFormat *>(&int8Format()),
            static_cast<const NumericFormat *>(&pot4Format()),
            static_cast<const NumericFormat *>(&flint4Format()),
            static_cast<const NumericFormat *>(&nf4Format()),
            static_cast<const NumericFormat *>(&mxfp4Format())),
        ::testing::Values<int64_t>(-1, 1, 32, 128, 40)),
    roundTripName);

TEST(RoundTrip, AdaptiveIsIdempotent)
{
    // The adaptive engine re-selects grids on the second pass, but a
    // tensor already on its chosen grids quantizes to itself (each
    // unit's winning grid reproduces it with zero error).
    const Tensor t = test::gaussianTensor(Shape{6, 96}, 502);
    for (int64_t g : {-1L, 1L, 32L, 128L, 40L}) {
        const Tensor once =
            quantDequantAdaptive(t, antTypeSet(), groupCfg(g));
        QuantStats stats;
        const Tensor twice =
            quantDequantAdaptive(once, antTypeSet(), groupCfg(g), &stats);
        EXPECT_EQ(test::maxDiff(once.span(), twice.span()), 0.0)
            << "group " << g;
        EXPECT_EQ(stats.mse, 0.0) << "group " << g;
    }
}

/** Parameterized sweep: every engine preserves shape and determinism. */
class EngineSweep : public ::testing::TestWithParam<int64_t>
{};

TEST_P(EngineSweep, DeterministicAndShapePreserving)
{
    const int64_t g = GetParam();
    const Tensor t = test::gaussianTensor(Shape{4, 256}, 31);
    const Tensor a = quantDequantFixed(t, int4Format(), groupCfg(g));
    const Tensor b = quantDequantFixed(t, int4Format(), groupCfg(g));
    EXPECT_EQ(a.shape(), t.shape());
    EXPECT_EQ(test::maxDiff(a.span(), b.span()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, EngineSweep,
                         ::testing::Values(16, 32, 64, 128, 256));

} // namespace
} // namespace mant
