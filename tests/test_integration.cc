/**
 * Cross-module integration tests: the fused integer path inside a real
 * model layer, the Fig. 2 accuracy ordering, and end-to-end quantized
 * inference sanity.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "model/evaluator.h"
#include "model/model_profiles.h"
#include "model/quantized_linear.h"
#include "quant/fixed_formats.h"
#include "quant/group_quantizer.h"
#include "tensor/stats.h"
#include "test_util.h"

namespace mant {
namespace {

TEST(Integration, QuantizedLinearFusedMatchesFloatPath)
{
    // Take a real generated layer weight and verify the all-integer
    // fused path equals the float path on the same quantized operands.
    const ModelProfile p = test::tinyProfile();
    const ModelWeights w = ModelWeights::generate(p, 64);

    QuantSetup setup = mantW4A8Setup(16);
    const QuantizedLinear lin(w.layers[0].wq, setup);
    ASSERT_TRUE(lin.hasFusedPath());

    const Tensor x = test::gaussianTensor(Shape{4, 64}, 301);
    const Tensor fused = lin.forwardFused(x);

    // Reference: INT8-quantized activations against effective weights.
    const auto qx = Int8QuantizedActivations::quantize(x, 16);
    const Tensor ref = linearNT(qx.dequantize(), lin.effectiveWeights());
    for (int64_t i = 0; i < fused.numel(); ++i)
        EXPECT_NEAR(fused[i], ref[i],
                    1e-4f * (1.0f + std::fabs(ref[i])));
}

TEST(Integration, Fig2OrderingIntAntMantIdeal)
{
    // The Fig. 2 story at G-128: INT > ANT > MANT >= Ideal (K-means).
    const ModelProfile p = modelProfile("llama-1-7b");
    Rng rng(302);
    const Tensor w = genWeightMatrix(rng, 64, 512, p.weightStats);

    QuantConfig cfg;
    cfg.gran = Granularity::PerGroup;
    cfg.groupSize = 128;

    QuantStats int_s, ant_s, ideal_s;
    quantDequantFixed(w, int4Format(), cfg, &int_s);
    quantDequantAdaptive(w, antTypeSet(), cfg, &ant_s);
    quantDequantKMeans(w, 16, cfg, &ideal_s);

    const MantQuantizedMatrix mq = MantQuantizedMatrix::quantize(w, 128);
    const double mant_mse = mse(w.span(), mq.dequantize().span());

    EXPECT_LT(ant_s.mse, int_s.mse);
    EXPECT_LT(mant_mse, ant_s.mse);
    // Per-group clustering and MANT are both near-optimal; they must
    // land within ~25% of each other (Lloyd's is not globally optimal,
    // so either may win narrowly) and both clearly beat ANT.
    EXPECT_LE(ideal_s.mse, mant_mse * 1.25);
    EXPECT_LE(ideal_s.mse, ant_s.mse);
}

TEST(Integration, MantSelectionDiverse)
{
    // On realistic weights MANT must actually use its adaptivity:
    // multiple coefficients selected, not one dominant type.
    const ModelProfile p = modelProfile("llama-1-7b");
    Rng rng(303);
    const Tensor w = genWeightMatrix(rng, 32, 512, p.weightStats);
    const MantQuantizedMatrix q = MantQuantizedMatrix::quantize(w, 64);
    const auto hist = q.selectionHistogram();
    EXPECT_GE(hist.size(), 3u);
}

TEST(Integration, WeightMethodDispatchAllRun)
{
    const Tensor w = test::gaussianTensor(Shape{8, 128}, 304, 0.02);
    for (WeightMethod m :
         {WeightMethod::Fp16, WeightMethod::Int, WeightMethod::Ant,
          WeightMethod::Olive, WeightMethod::Tender, WeightMethod::Mant,
          WeightMethod::KMeans, WeightMethod::Nf4,
          WeightMethod::Mxfp4}) {
        QuantSetup setup;
        setup.weight = m;
        setup.weightBits = 4;
        setup.weightGroup = 64;
        const Tensor q = quantizeWeightMatrix(w, setup);
        EXPECT_EQ(q.shape(), w.shape());
        const double err = nmse(w.span(), q.span());
        EXPECT_LT(err, 0.6) << "method " << static_cast<int>(m);
    }
}

TEST(Integration, ActMethodDispatchAllRun)
{
    const Tensor x = test::gaussianTensor(Shape{8, 128}, 305);
    for (ActMethod m : {ActMethod::Int, ActMethod::Ant, ActMethod::Olive,
                        ActMethod::Tender}) {
        QuantSetup setup;
        setup.act = m;
        setup.actBits = 8;
        setup.actGroup = 64;
        const Tensor q = quantizeActivations(x, setup);
        EXPECT_EQ(q.shape(), x.shape());
        EXPECT_LT(nmse(x.span(), q.span()), 0.05)
            << "method " << static_cast<int>(m);
    }
}

TEST(Integration, EndToEndMantPipelineSane)
{
    // Full pipeline: calibrated KV selector + W4A8 + MANT KV, decode
    // steps after prefill, finite outputs, modest perplexity delta.
    ModelProfile p = test::tinyProfile();
    p.fp16Ppl = 10.0;
    const ModelWeights w = ModelWeights::generate(p, 128);

    EvalConfig ecfg;
    ecfg.contexts = 2;
    ecfg.seqLen = 24;
    ecfg.skip = 4;
    const PplEvaluator eval(w, ecfg);

    const auto samples =
        Transformer::collectKvSamples(w, eval.corpus()[0]);
    const VarianceSelector sel =
        VarianceSelector::calibrateMulti(samples, 16);

    QuantSetup full = mantFullSetup(16);
    const double ppl = eval.perplexityOf(full, &sel);
    EXPECT_TRUE(std::isfinite(ppl));
    EXPECT_GE(ppl, eval.referencePerplexity() - 0.1);
    EXPECT_LT(ppl, eval.referencePerplexity() * 3.0);
}

TEST(Integration, MetaBitsMatchPaperArithmetic)
{
    // Sec. III-A: G-128 with a 16-bit scale is 4.125 bits/element;
    // G-32 has 4x the overhead.
    const Tensor t(Shape{16, 512});
    QuantConfig cfg;
    cfg.gran = Granularity::PerGroup;
    cfg.groupSize = 128;
    EXPECT_NEAR(4.0 + metaBitsPerElement(t, cfg, 0), 4.125, 1e-9);
    cfg.groupSize = 32;
    EXPECT_NEAR(4.0 + metaBitsPerElement(t, cfg, 0), 4.5, 1e-9);
}

} // namespace
} // namespace mant
