/**
 * @file
 * KvPageAllocator property suite plus paged panel-store integration —
 * the torture layer under the paged serving engine.
 *
 * The allocator's contracts (core/kv_pages.h) are what the serving
 * determinism and no-leak claims rest on, so they are tested directly:
 * alloc/free round-trips, LIFO-deterministic reuse, typed exhaustion
 * (never UB, never a bad page), and randomized churn that must end
 * with zero leaked pages and a replayable page-id trace. Misuse
 * (double free, foreign ids) asserts in debug builds and throws
 * std::logic_error in release builds — both are pinned here.
 */

#include <algorithm>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/kv_pages.h"
#include "core/kv_panels.h"
#include "tensor/rng.h"
#include "test_util.h"

namespace mant {
namespace {

TEST(KvPageAllocator, AllocFreeRoundTrip)
{
    KvPageAllocator pool(256, 4);
    EXPECT_EQ(pool.pageBytes(), 256);
    EXPECT_EQ(pool.maxPages(), 4);
    EXPECT_EQ(pool.inUsePages(), 0);
    EXPECT_EQ(pool.createdPages(), 0);
    EXPECT_EQ(pool.freePages(), 4);

    const KvPageId a = pool.alloc();
    const KvPageId b = pool.alloc();
    EXPECT_NE(a, b);
    EXPECT_EQ(pool.inUsePages(), 2);
    EXPECT_EQ(pool.createdPages(), 2);
    EXPECT_EQ(pool.freePages(), 2);
    EXPECT_EQ(pool.peakInUsePages(), 2);

    // Page storage is writable, stable, and distinct per page.
    std::memset(pool.data(a), 0xAA, 256);
    std::memset(pool.data(b), 0xBB, 256);
    EXPECT_EQ(pool.data(a)[255], 0xAA);
    EXPECT_EQ(pool.data(b)[0], 0xBB);

    pool.free(a);
    pool.free(b);
    EXPECT_EQ(pool.inUsePages(), 0);
    EXPECT_EQ(pool.freePages(), 4);
    // Materialized pages park on the free list; they are not returned
    // to the OS (createdPages is monotone).
    EXPECT_EQ(pool.createdPages(), 2);
    EXPECT_EQ(pool.peakInUsePages(), 2);
}

TEST(KvPageAllocator, LifoDeterministicReuse)
{
    KvPageAllocator pool(64);
    const KvPageId a = pool.alloc();
    const KvPageId b = pool.alloc();
    const KvPageId c = pool.alloc();
    pool.free(a);
    pool.free(b);
    // LIFO: the most recently freed page comes back first, so an
    // identical free/alloc sequence sees identical placement.
    EXPECT_EQ(pool.alloc(), b);
    EXPECT_EQ(pool.alloc(), a);
    pool.free(c);
    EXPECT_EQ(pool.alloc(), c);
    // Recycled pages keep their previous bytes (claimants must
    // re-initialize what they use — the panel stores do).
    std::memset(pool.data(c), 0x5C, 64);
    pool.free(c);
    const KvPageId again = pool.alloc();
    ASSERT_EQ(again, c);
    EXPECT_EQ(pool.data(again)[63], 0x5C);
}

TEST(KvPageAllocator, ExhaustionIsTypedNeverUB)
{
    KvPageAllocator pool(32, 2);
    const KvPageId a = pool.alloc();
    (void)pool.alloc();
    // Cap hit: tryAlloc reports nullopt, alloc throws the typed
    // exception; neither hands out a page.
    EXPECT_EQ(pool.tryAlloc(), std::nullopt);
    EXPECT_THROW(pool.alloc(), KvPoolExhausted);
    EXPECT_EQ(pool.inUsePages(), 2);
    EXPECT_EQ(pool.freePages(), 0);
    // KvPoolExhausted is a runtime_error (callers can catch either).
    try {
        pool.alloc();
        FAIL() << "alloc() past the cap must throw";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("exhausted"),
                  std::string::npos);
    }
    // Freeing restores claimability.
    pool.free(a);
    EXPECT_EQ(pool.freePages(), 1);
    EXPECT_EQ(pool.alloc(), a);
}

TEST(KvPageAllocator, UnboundedPoolSaturatesFreePages)
{
    KvPageAllocator pool(16);
    EXPECT_EQ(pool.maxPages(), 0);
    EXPECT_EQ(pool.freePages(), std::numeric_limits<int64_t>::max());
    for (int i = 0; i < 100; ++i)
        (void)pool.alloc();
    EXPECT_EQ(pool.inUsePages(), 100);
    EXPECT_EQ(pool.freePages(), std::numeric_limits<int64_t>::max());
}

TEST(KvPageAllocator, ConstructorValidatesGeometry)
{
    EXPECT_THROW(KvPageAllocator(0), std::invalid_argument);
    EXPECT_THROW(KvPageAllocator(-8), std::invalid_argument);
    EXPECT_THROW(KvPageAllocator(64, -1), std::invalid_argument);
}

/** Randomized churn: interleaved allocs and frees, counter-seeded (no
 *  wall-clock anywhere), must end with zero pages in use, a free-list
 *  that accounts for every created page, and a page-id trace that
 *  replays identically from the same seed. */
TEST(KvPageAllocator, RandomizedChurnLeaksNothingAndReplays)
{
    const auto runChurn = [](uint64_t seed) {
        KvPageAllocator pool(48, 32);
        Rng rng(seed);
        std::vector<KvPageId> held;
        std::vector<KvPageId> trace;
        for (int op = 0; op < 2000; ++op) {
            const bool doAlloc =
                held.empty() ||
                (pool.freePages() > 0 && rng.uniformInt(3) != 0);
            if (doAlloc) {
                const KvPageId id = pool.alloc();
                held.push_back(id);
                trace.push_back(id);
            } else {
                const size_t pick = static_cast<size_t>(
                    rng.uniformInt(static_cast<uint64_t>(held.size())));
                pool.free(held[pick]);
                trace.push_back(-1 - held[pick]);
                held[pick] = held.back();
                held.pop_back();
            }
            EXPECT_LE(pool.inUsePages(), 32);
            EXPECT_EQ(pool.inUsePages(),
                      static_cast<int64_t>(held.size()));
        }
        for (const KvPageId id : held)
            pool.free(id);
        EXPECT_EQ(pool.inUsePages(), 0);
        EXPECT_LE(pool.createdPages(), 32);
        EXPECT_EQ(pool.peakInUsePages(), 32);
        return trace;
    };
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        const auto first = runChurn(seed);
        // Identical request sequence → identical placement (the
        // serving determinism contract leans on this).
        EXPECT_EQ(first, runChurn(seed)) << "seed " << seed;
    }
}

// --- misuse contract: debug asserts, release throws ------------------

#ifndef NDEBUG

using KvPageAllocatorDeathTest = ::testing::Test;

TEST(KvPageAllocatorDeathTest, DoubleFreeAbortsInDebug)
{
    KvPageAllocator pool(32);
    const KvPageId id = pool.alloc();
    pool.free(id);
    EXPECT_DEATH(pool.free(id), "double free");
}

TEST(KvPageAllocatorDeathTest, ForeignIdAbortsInDebug)
{
    KvPageAllocator pool(32);
    (void)pool.alloc();
    EXPECT_DEATH(pool.free(7), "outside this pool");
    EXPECT_DEATH(pool.free(-1), "outside this pool");
}

#else

TEST(KvPageAllocator, DoubleFreeThrowsInRelease)
{
    KvPageAllocator pool(32);
    const KvPageId id = pool.alloc();
    pool.free(id);
    EXPECT_THROW(pool.free(id), std::logic_error);
    // The failed free must not have corrupted the free list: the page
    // is handed out exactly once.
    EXPECT_EQ(pool.alloc(), id);
    EXPECT_EQ(pool.tryAlloc(), std::optional<KvPageId>(1));
}

TEST(KvPageAllocator, ForeignIdThrowsInRelease)
{
    KvPageAllocator pool(32);
    (void)pool.alloc();
    EXPECT_THROW(pool.free(7), std::logic_error);
    EXPECT_THROW(pool.free(-1), std::logic_error);
    EXPECT_EQ(pool.inUsePages(), 1);
}

#endif

// --- paged panel stores over a shared pool ---------------------------

/** Flat K codes for one row, alternating small values (always within
 *  the sign-magnitude nibble range). */
std::vector<int8_t>
kRowCodes(int64_t headDim, int64_t row)
{
    std::vector<int8_t> codes(static_cast<size_t>(headDim));
    for (int64_t i = 0; i < headDim; ++i)
        codes[static_cast<size_t>(i)] =
            static_cast<int8_t>(((row + i) % 15) - 7);
    return codes;
}

TEST(PagedPanelStores, SharedPoolMatchesPrivatePoolByteForByte)
{
    const int64_t headDim = 32, group = 16;
    const int64_t blockBytes = KPanelStore::blockBytesFor(headDim, group);
    // Three blocks per page: rows 0..23 fit in one page.
    KvPageAllocator pool(3 * blockBytes, 8);
    KPanelStore shared(headDim, group, &pool);
    KPanelStore priv(headDim, group);

    const std::vector<MantSelection> sels(
        static_cast<size_t>(shared.groupsPerRow()), MantSelection{});
    for (int64_t r = 0; r < 40; ++r) {
        const auto codes = kRowCodes(headDim, r);
        shared.appendRow(codes, sels);
        priv.appendRow(codes, sels);
    }
    EXPECT_EQ(shared.rows(), priv.rows());
    EXPECT_EQ(shared.panels(), priv.panels());
    // 40 rows = 5 panels = ceil(5/3) = 2 pages.
    EXPECT_EQ(shared.pagesHeld(), 2);
    EXPECT_EQ(pool.inUsePages(), 2);

    for (int64_t r = 0; r < 40; ++r) {
        const auto a = shared.rowCodes(r);
        const auto b = priv.rowCodes(r);
        ASSERT_EQ(a.size(), b.size());
        EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0)
            << "row " << r;
    }
    for (int64_t p = 0; p < shared.panels(); ++p) {
        for (int64_t g = 0; g < shared.groupsPerRow(); ++g) {
            const auto sa = shared.tileScales(p, g);
            const auto sb = priv.tileScales(p, g);
            EXPECT_EQ(std::memcmp(sa.data(), sb.data(),
                                  sa.size() * sizeof(float)),
                      0);
            EXPECT_EQ(std::memcmp(shared.tileCodes(p, g),
                                  priv.tileCodes(p, g),
                                  static_cast<size_t>(group) *
                                      kTilePanelCols / 2),
                      0);
        }
    }

    // reset() returns every page; a refill re-claims the same pages
    // (LIFO) and reproduces identical bytes despite the stale data a
    // recycled page carries.
    shared.reset();
    EXPECT_EQ(shared.pagesHeld(), 0);
    EXPECT_EQ(pool.inUsePages(), 0);
    for (int64_t r = 0; r < 40; ++r)
        shared.appendRow(kRowCodes(headDim, r), sels);
    for (int64_t r = 0; r < 40; ++r) {
        const auto a = shared.rowCodes(r);
        const auto b = priv.rowCodes(r);
        EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0);
    }
}

TEST(PagedPanelStores, ExhaustionLeavesStoreUnchanged)
{
    const int64_t headDim = 16, group = 16;
    const int64_t blockBytes = KPanelStore::blockBytesFor(headDim, group);
    KvPageAllocator pool(blockBytes, 1); // one panel, 8 rows max
    KPanelStore store(headDim, group, &pool);
    const std::vector<MantSelection> sels(
        static_cast<size_t>(store.groupsPerRow()), MantSelection{});
    for (int64_t r = 0; r < kTilePanelCols; ++r)
        store.appendRow(kRowCodes(headDim, r), sels);
    // Row 8 needs a second panel block → a second page → exhausted.
    EXPECT_THROW(store.appendRow(kRowCodes(headDim, 8), sels),
                 KvPoolExhausted);
    EXPECT_EQ(store.rows(), kTilePanelCols);
    EXPECT_EQ(pool.inUsePages(), 1);
    // Existing rows stay readable after the failed append.
    EXPECT_EQ(std::memcmp(store.rowCodes(0).data(),
                          kRowCodes(headDim, 0).data(),
                          static_cast<size_t>(headDim)),
              0);
}

TEST(PagedPanelStores, SharedPageMustHoldOneBlock)
{
    const int64_t blockBytes = KPanelStore::blockBytesFor(32, 16);
    KvPageAllocator tiny(blockBytes - 4, 4);
    EXPECT_THROW(KPanelStore(32, 16, &tiny), std::invalid_argument);
    const int64_t vBlock = VPanelStore::blockBytesFor(32, 16);
    KvPageAllocator vTiny(vBlock - 4, 4);
    EXPECT_THROW(VPanelStore(32, 16, &vTiny), std::invalid_argument);
}

TEST(PagedPanelStores, VStoreSharedPoolRoundTrip)
{
    const int64_t channels = 16, window = 8;
    const int64_t blockBytes =
        VPanelStore::blockBytesFor(channels, window);
    KvPageAllocator pool(2 * blockBytes, 4);
    VPanelStore shared(channels, window, &pool);
    VPanelStore priv(channels, window);

    std::vector<int8_t> colCodes(
        static_cast<size_t>(channels * window));
    const std::vector<MantSelection> sels(
        static_cast<size_t>(channels), MantSelection{});
    for (int64_t w = 0; w < 5; ++w) {
        for (size_t i = 0; i < colCodes.size(); ++i)
            colCodes[i] = static_cast<int8_t>(
                ((w * 3 + static_cast<int64_t>(i)) % 15) - 7);
        shared.appendWindow(colCodes, sels);
        priv.appendWindow(colCodes, sels);
    }
    EXPECT_EQ(shared.windows(), 5);
    EXPECT_EQ(shared.pagesHeld(), 3); // ceil(5 / 2) blocks-per-page
    for (int64_t row = 0; row < 5 * window; ++row) {
        const auto a = shared.rowCodes(row);
        const auto b = priv.rowCodes(row);
        EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0)
            << "row " << row;
    }
    shared.reset();
    EXPECT_EQ(pool.inUsePages(), 0);
    EXPECT_EQ(shared.windows(), 0);
}

/** Two stores interleaving claims on one pool must not interfere —
 *  the serving engine runs every stream's K and V stores against the
 *  same allocator. */
TEST(PagedPanelStores, InterleavedStoresShareOnePool)
{
    const int64_t headDim = 16, group = 16;
    const int64_t kBlock = KPanelStore::blockBytesFor(headDim, group);
    const int64_t vBlock =
        VPanelStore::blockBytesFor(headDim, group);
    KvPageAllocator pool(std::max(kBlock, vBlock), 0);
    KPanelStore k1(headDim, group, &pool);
    KPanelStore k2(headDim, group, &pool);
    VPanelStore v1(headDim, group, &pool);

    const std::vector<MantSelection> kSels(
        static_cast<size_t>(k1.groupsPerRow()), MantSelection{});
    const std::vector<MantSelection> vSels(
        static_cast<size_t>(headDim), MantSelection{});
    std::vector<int8_t> colCodes(
        static_cast<size_t>(headDim * group));
    for (int64_t r = 0; r < 24; ++r) {
        k1.appendRow(kRowCodes(headDim, r), kSels);
        if (r % 2 == 0)
            k2.appendRow(kRowCodes(headDim, r + 100), kSels);
        if (r % 8 == 7) {
            for (size_t i = 0; i < colCodes.size(); ++i)
                colCodes[i] =
                    static_cast<int8_t>((static_cast<int64_t>(i) +
                                         r) % 15 - 7);
            v1.appendWindow(colCodes, vSels);
        }
    }
    EXPECT_EQ(pool.inUsePages(),
              k1.pagesHeld() + k2.pagesHeld() + v1.pagesHeld());
    for (int64_t r = 0; r < 24; ++r) {
        EXPECT_EQ(std::memcmp(k1.rowCodes(r).data(),
                              kRowCodes(headDim, r).data(),
                              static_cast<size_t>(headDim)),
                  0);
        if (r % 2 == 0) {
            EXPECT_EQ(std::memcmp(k2.rowCodes(r / 2).data(),
                                  kRowCodes(headDim, r + 100).data(),
                                  static_cast<size_t>(headDim)),
                      0);
        }
    }
    // Dropping one store returns exactly its pages.
    const int64_t before = pool.inUsePages();
    const int64_t k2Pages = k2.pagesHeld();
    k2.reset();
    EXPECT_EQ(pool.inUsePages(), before - k2Pages);
}

// --- deterministic fault injection -----------------------------------

TEST(KvPageAllocator, FaultPlanFailsExactlyTheNthAttempt)
{
    KvPageAllocator pool(64, 4);
    KvFaultPlan plan;
    plan.failAtAttempt = 2;
    pool.setFaultPlan(plan);
    EXPECT_TRUE(pool.faultPlan().armed());

    const KvPageId a = pool.alloc(); // attempt 1: clean
    EXPECT_EQ(pool.allocAttempts(), 1);
    // Attempt 2 fires the injected fault; the pool itself is
    // untouched — no page consumed, free headroom unchanged.
    EXPECT_THROW(pool.alloc(), KvFaultInjected);
    EXPECT_EQ(pool.allocAttempts(), 2);
    EXPECT_EQ(pool.injectedFaults(), 1);
    EXPECT_EQ(pool.inUsePages(), 1);
    EXPECT_EQ(pool.freePages(), 3);
    // Fires exactly once: attempt 3 is clean again.
    const KvPageId b = pool.alloc();
    EXPECT_NE(a, b);
    EXPECT_EQ(pool.allocAttempts(), 3);
    EXPECT_EQ(pool.injectedFaults(), 1);
}

TEST(KvPageAllocator, InjectedFaultIsCatchableAsPoolExhausted)
{
    KvPageAllocator pool(32, 2);
    KvFaultPlan plan;
    plan.failAtAttempt = pool.allocAttempts() + 1;
    pool.setFaultPlan(plan);
    // Exhaustion-handling code that only knows KvPoolExhausted still
    // covers injected faults (KvFaultInjected derives from it).
    bool caught = false;
    try {
        (void)pool.alloc();
    } catch (const KvPoolExhausted &e) {
        caught = true;
        EXPECT_NE(std::string(e.what()).find("injected"),
                  std::string::npos);
    }
    EXPECT_TRUE(caught);
    // And a genuine cap hit is NOT a KvFaultInjected.
    (void)pool.alloc();
    (void)pool.alloc();
    EXPECT_EQ(pool.inUsePages(), 2);
    try {
        (void)pool.alloc();
        FAIL() << "cap hit must throw";
    } catch (const KvFaultInjected &) {
        FAIL() << "genuine exhaustion must not be KvFaultInjected";
    } catch (const KvPoolExhausted &) {
        // expected
    }
}

TEST(KvPageAllocator, FailAllWindowThenDisarm)
{
    KvPageAllocator pool(64, 4);
    KvFaultPlan storm;
    storm.failAll = true;
    pool.setFaultPlan(storm);

    // Every attempt fails while the storm is armed — tryAlloc reports
    // nullopt (like exhaustion), alloc throws the injected type.
    EXPECT_EQ(pool.tryAlloc(), std::nullopt);
    EXPECT_EQ(pool.tryAlloc(), std::nullopt);
    EXPECT_THROW(pool.alloc(), KvFaultInjected);
    EXPECT_EQ(pool.allocAttempts(), 3);
    EXPECT_EQ(pool.injectedFaults(), 3);
    EXPECT_EQ(pool.inUsePages(), 0);
    EXPECT_EQ(pool.createdPages(), 0);

    // Disarming (default-constructed plan) restores normal service;
    // the attempt counter keeps running (allocator-lifetime space).
    pool.setFaultPlan(KvFaultPlan{});
    EXPECT_FALSE(pool.faultPlan().armed());
    const auto page = pool.tryAlloc();
    ASSERT_TRUE(page.has_value());
    EXPECT_EQ(pool.allocAttempts(), 4);
    EXPECT_EQ(pool.injectedFaults(), 3);
    EXPECT_EQ(pool.inUsePages(), 1);
}

TEST(KvPageAllocator, InjectedFaultLeavesLifoOrderIntact)
{
    // A fired fault must not perturb placement determinism: the free
    // list order after a fault is identical to a run without one.
    KvPageAllocator pool(32, 4);
    const KvPageId a = pool.alloc();
    const KvPageId b = pool.alloc();
    pool.free(a);
    pool.free(b);
    KvFaultPlan plan;
    plan.failAtAttempt = pool.allocAttempts() + 1;
    pool.setFaultPlan(plan);
    EXPECT_THROW(pool.alloc(), KvFaultInjected);
    // LIFO still: b (freed last) comes back first, then a.
    EXPECT_EQ(pool.alloc(), b);
    EXPECT_EQ(pool.alloc(), a);
}

// --- exact page-need prediction --------------------------------------

/** Reservation math the serving engine leans on: poolPagesForRows /
 *  poolPagesForWindows must predict the exact pages each append claims,
 *  so the scheduler can make headroom BEFORE growing a stream and keep
 *  exhaustion out of the growth path entirely. */
TEST(PagedPanelStores, PoolPagesForRowsPredictsEveryClaim)
{
    const int64_t headDim = 16, group = 16;
    const int64_t blockBytes = KPanelStore::blockBytesFor(headDim, group);
    KvPageAllocator pool(3 * blockBytes, 0);
    KPanelStore store(headDim, group, &pool);
    const std::vector<MantSelection> sels(
        static_cast<size_t>(store.groupsPerRow()), MantSelection{});

    // Whole-horizon prediction up front: 60 rows = 8 panels = 3 pages.
    EXPECT_EQ(store.poolPagesForRows(60), 3);
    EXPECT_EQ(store.poolPagesForRows(0), 0);

    for (int64_t r = 0; r < 60; ++r) {
        const int64_t predicted = store.poolPagesForRows(1);
        const int64_t before = store.pagesHeld();
        store.appendRow(kRowCodes(headDim, r), sels);
        EXPECT_EQ(store.pagesHeld() - before, predicted)
            << "row " << r;
    }
    // A multi-row prediction is the sum of its single-row steps: grow
    // a twin store by the same 60 rows in one predicted batch.
    KPanelStore twin(headDim, group, &pool);
    const int64_t batchPredicted = twin.poolPagesForRows(60);
    for (int64_t r = 0; r < 60; ++r)
        twin.appendRow(kRowCodes(headDim, r), sels);
    EXPECT_EQ(twin.pagesHeld(), batchPredicted);
    EXPECT_EQ(store.pagesHeld(), 3);
    EXPECT_EQ(store.poolPagesForRows(0), 0);
}

TEST(PagedPanelStores, PoolPagesForWindowsPredictsEveryClaim)
{
    const int64_t channels = 16, window = 8;
    const int64_t blockBytes =
        VPanelStore::blockBytesFor(channels, window);
    KvPageAllocator pool(2 * blockBytes, 0);
    VPanelStore store(channels, window, &pool);

    std::vector<int8_t> colCodes(
        static_cast<size_t>(channels * window));
    const std::vector<MantSelection> sels(
        static_cast<size_t>(channels), MantSelection{});
    EXPECT_EQ(store.poolPagesForWindows(7), 4); // ceil(7/2)
    for (int64_t w = 0; w < 7; ++w) {
        const int64_t predicted = store.poolPagesForWindows(w + 1);
        const int64_t before = store.pagesHeld();
        for (size_t i = 0; i < colCodes.size(); ++i)
            colCodes[i] = static_cast<int8_t>(
                ((w + static_cast<int64_t>(i)) % 15) - 7);
        store.appendWindow(colCodes, sels);
        EXPECT_EQ(store.pagesHeld() - before, predicted)
            << "window " << w;
    }
    EXPECT_EQ(store.pagesHeld(), 4);
    EXPECT_EQ(store.poolPagesForWindows(store.windows()), 0);
}

} // namespace
} // namespace mant
