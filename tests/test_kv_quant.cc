#include <cmath>

#include <gtest/gtest.h>

#include "core/kv_panels.h"
#include "core/kv_quant.h"
#include "core/mant_grid.h"
#include "tensor/stats.h"
#include "test_util.h"

namespace mant {
namespace {

class KvQuantTest : public ::testing::Test
{
  protected:
    VarianceSelector sel_ = VarianceSelector::analytic();
};

TEST_F(KvQuantTest, SpatialRowQuantizesPerGroup)
{
    const Tensor row = test::gaussianTensor(Shape{128}, 101);
    std::vector<float> out(128);
    const auto sels = spatialQuantizeRow(row.span(), 64, sel_, out);
    ASSERT_EQ(sels.size(), 2u);
    // Error bounded: 4-bit adaptive on Gaussian data.
    EXPECT_LT(nmse(row.span(), out), 0.1);
}

TEST_F(KvQuantTest, SpatialRowRaggedTail)
{
    const Tensor row = test::gaussianTensor(Shape{100}, 102);
    std::vector<float> out(100);
    const auto sels = spatialQuantizeRow(row.span(), 64, sel_, out);
    EXPECT_EQ(sels.size(), 2u); // 64 + 36
}

TEST_F(KvQuantTest, SpatialSizeMismatchThrows)
{
    const Tensor row = test::gaussianTensor(Shape{64}, 103);
    std::vector<float> out(32);
    EXPECT_THROW(spatialQuantizeRow(row.span(), 64, sel_, out),
                 std::invalid_argument);
}

TEST_F(KvQuantTest, TemporalWindowFinalizesExactlyAtG)
{
    TemporalVQuantizer tq(8, 16, sel_);
    const Tensor v = test::gaussianTensor(Shape{16, 8}, 104);
    // Seed channel scales from a prefill of zero full windows.
    tq.pushPrefill(test::gaussianTensor(Shape{4, 8}, 105));
    EXPECT_EQ(tq.finalizedRows(), 0);
    EXPECT_EQ(tq.pendingRows(), 4);

    for (int64_t r = 0; r < 11; ++r)
        tq.pushDecode(v.row(r));
    EXPECT_EQ(tq.pendingRows(), 15);
    EXPECT_EQ(tq.finalizedRows(), 0);

    tq.pushDecode(v.row(11)); // 16th pending row -> finalize
    EXPECT_EQ(tq.pendingRows(), 0);
    EXPECT_EQ(tq.finalizedRows(), 16);
}

TEST_F(KvQuantTest, PrefillFullWindowsQuantizedImmediately)
{
    TemporalVQuantizer tq(8, 16, sel_);
    tq.pushPrefill(test::gaussianTensor(Shape{40, 8}, 106));
    EXPECT_EQ(tq.finalizedRows(), 32); // two full windows
    EXPECT_EQ(tq.pendingRows(), 8);
    EXPECT_EQ(tq.rows(), 40);
}

TEST_F(KvQuantTest, ReconstructShapeAndAccuracy)
{
    TemporalVQuantizer tq(16, 32, sel_);
    const Tensor v = test::gaussianTensor(Shape{48, 16}, 107);
    tq.pushPrefill(v);
    const Tensor rec = tq.reconstruct();
    ASSERT_EQ(rec.shape(), Shape({48, 16}));
    // Finalized rows at 4-bit, pending at 8-bit: overall error small.
    EXPECT_LT(nmse(v.span(), rec.span()), 0.1);
}

TEST_F(KvQuantTest, PendingRowsMoreAccurateThanFinalized)
{
    // INT8 pending rows should reconstruct better than 4-bit MANT
    // finalized rows — the design intent behind keeping the newest
    // tokens at higher precision (Sec. V-C).
    TemporalVQuantizer tq(32, 32, sel_);
    const Tensor prefill = test::gaussianTensor(Shape{32, 32}, 108);
    tq.pushPrefill(prefill); // one full window -> finalized
    const Tensor decode = test::gaussianTensor(Shape{8, 32}, 109);
    for (int64_t r = 0; r < 8; ++r)
        tq.pushDecode(decode.row(r));

    const Tensor rec = tq.reconstruct();
    double fin_err = 0.0, pend_err = 0.0;
    for (int64_t c = 0; c < 32; ++c) {
        for (int64_t r = 0; r < 32; ++r) {
            const double d = rec.at(r, c) - prefill.at(r, c);
            fin_err += d * d;
        }
        for (int64_t r = 0; r < 8; ++r) {
            const double d = rec.at(32 + r, c) - decode.at(r, c);
            pend_err += d * d;
        }
    }
    EXPECT_LT(pend_err / (8 * 32), fin_err / (32 * 32));
}

TEST_F(KvQuantTest, PendingFraction)
{
    TemporalVQuantizer tq(4, 8, sel_);
    tq.pushPrefill(test::gaussianTensor(Shape{8, 4}, 110));
    EXPECT_EQ(tq.pendingFraction(), 0.0);
    tq.pushDecode(std::vector<float>(4, 1.0f));
    EXPECT_NEAR(tq.pendingFraction(), 1.0 / 9.0, 1e-12);
}

TEST_F(KvQuantTest, ChannelScalesFromPrefill)
{
    TemporalVQuantizer tq(2, 4, sel_);
    Tensor v(Shape{4, 2}, {1.0f, 10.0f, -2.0f, 20.0f,
                           0.5f, -30.0f, 1.5f, 5.0f});
    tq.pushPrefill(v);
    const auto scales = tq.channelScales();
    EXPECT_NEAR(scales[0], 2.0f / 127.0f, 2e-4);
    EXPECT_NEAR(scales[1], 30.0f / 127.0f, 2e-3);
}

TEST_F(KvQuantTest, SelectionHistoryGrowsPerChannelGroup)
{
    TemporalVQuantizer tq(8, 16, sel_);
    tq.pushPrefill(test::gaussianTensor(Shape{32, 8}, 111));
    // Two finalized windows x 8 channels = 16 selections.
    EXPECT_EQ(tq.selectionHistory().size(), 16u);
}

TEST_F(KvQuantTest, StreamedStatsMatchBatchVariance)
{
    // The variance the temporal quantizer computes from streamed
    // Σv, Σv² must equal the batch variance of the INT8-visible data.
    TemporalVQuantizer tq(1, 8, sel_);
    Tensor pre(Shape{2, 1});
    pre[0] = 1.0f;
    pre[1] = -1.0f;
    tq.pushPrefill(pre);
    // (No full window yet; finalize runs after 8 decode pushes.)
    Rng rng(112);
    for (int i = 0; i < 6; ++i) {
        const float v[] = {static_cast<float>(rng.gaussian(0.0, 0.5))};
        tq.pushDecode(v);
    }
    EXPECT_EQ(tq.finalizedRows(), 8);
    EXPECT_EQ(tq.selectionHistory().size(), 1u);
}

TEST_F(KvQuantTest, BadShapesThrow)
{
    TemporalVQuantizer tq(4, 8, sel_);
    EXPECT_THROW(tq.pushPrefill(Tensor(Shape{4, 3})),
                 std::invalid_argument);
    EXPECT_THROW(tq.pushDecode(std::vector<float>(3, 0.0f)),
                 std::invalid_argument);
    EXPECT_THROW(TemporalVQuantizer(0, 8, sel_), std::invalid_argument);
}

TEST_F(KvQuantTest, TwoPhaseCloseToDirectSpatialQuantization)
{
    // The two-phase scheme (INT8 window then MANT4) should track the
    // oracle that quantizes the finalized window directly from FP.
    const int64_t ch = 16, win = 32;
    TemporalVQuantizer tq(ch, win, sel_);
    Tensor seed(Shape{win, ch});
    Rng rng(113);
    for (int64_t i = 0; i < seed.numel(); ++i)
        seed[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
    tq.pushPrefill(seed); // derives scales, finalizes one window

    Tensor decode(Shape{win, ch});
    for (int64_t i = 0; i < decode.numel(); ++i)
        decode[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
    for (int64_t r = 0; r < win; ++r)
        tq.pushDecode(decode.row(r));

    const Tensor rec = tq.reconstruct();
    double two_phase_err = 0.0;
    for (int64_t r = 0; r < win; ++r)
        for (int64_t c = 0; c < ch; ++c) {
            const double d = rec.at(win + r, c) - decode.at(r, c);
            two_phase_err += d * d;
        }

    // Oracle: direct spatial quantization of the same window.
    double oracle_err = 0.0;
    std::vector<float> col(static_cast<size_t>(win));
    std::vector<float> out(static_cast<size_t>(win));
    for (int64_t c = 0; c < ch; ++c) {
        for (int64_t r = 0; r < win; ++r)
            col[static_cast<size_t>(r)] = decode.at(r, c);
        spatialQuantizeRow(col, win, sel_, out);
        for (int64_t r = 0; r < win; ++r) {
            const double d = out[static_cast<size_t>(r)] -
                             col[static_cast<size_t>(r)];
            oracle_err += d * d;
        }
    }
    // The INT8 intermediate adds only a modest penalty.
    EXPECT_LT(two_phase_err, oracle_err * 1.5 + 1e-9);
}

// ---------------------------------------------------------------------
// Property tests (the fused-attention PR's proof obligations)
// ---------------------------------------------------------------------

TEST_F(KvQuantTest, PrefillRemainderEquivalentToDecodePushes)
{
    // The prefill remainder path routes through pushDecode, so two
    // quantizers that derive identical channel scales and then see
    // the same row stream must agree bit for bit — regardless of how
    // the rows were split between pushPrefill and pushDecode. Pinning
    // every channel's absmax into row 0 makes the scale derivation
    // identical on both sides.
    const int64_t ch = 6, win = 8, rows = 5;
    Tensor v = test::gaussianTensor(Shape{rows, ch}, 300, 0.5);
    for (int64_t c = 0; c < ch; ++c)
        v.at(0, c) = (c % 2 == 0) ? 4.0f : -4.0f; // per-channel absmax

    TemporalVQuantizer a(ch, win, sel_, true, true);
    a.pushPrefill(v); // zero full windows: all rows via the remainder

    TemporalVQuantizer b(ch, win, sel_, true, true);
    Tensor first(Shape{1, ch});
    for (int64_t c = 0; c < ch; ++c)
        first.at(0, c) = v.at(0, c);
    b.pushPrefill(first); // scales from row 0 alone
    for (int64_t r = 1; r < rows; ++r)
        b.pushDecode(v.row(r));

    ASSERT_TRUE(test::bytesEqual(a.channelScales(), b.channelScales()));
    EXPECT_EQ(a.pendingRows(), b.pendingRows());
    ASSERT_EQ(a.pendingCodes().size(), b.pendingCodes().size());
    EXPECT_EQ(std::memcmp(a.pendingCodes().data(),
                          b.pendingCodes().data(),
                          a.pendingCodes().size()),
              0);
    EXPECT_TRUE(test::bytesEqual(a.reconstruct().span(),
                                 b.reconstruct().span()));

    // Cross the finalize boundary on both and re-compare: streamed
    // stats, selections, and codes must still agree.
    const Tensor more = test::gaussianTensor(Shape{win, ch}, 301, 0.5);
    for (int64_t r = 0; r < win; ++r) {
        a.pushDecode(more.row(r));
        b.pushDecode(more.row(r));
    }
    EXPECT_EQ(a.finalizedRows(), b.finalizedRows());
    EXPECT_GT(a.finalizedRows(), 0);
    EXPECT_TRUE(test::bytesEqual(a.reconstruct().span(),
                                 b.reconstruct().span()));
    EXPECT_EQ(a.codePanels().windows(), b.codePanels().windows());
}

TEST_F(KvQuantTest, FinalizeWindowEdgeCases)
{
    // window = 1: every decode push finalizes immediately; nothing is
    // ever pending after a push.
    TemporalVQuantizer w1(4, 1, sel_, true, true);
    w1.pushPrefill(test::gaussianTensor(Shape{3, 4}, 302));
    EXPECT_EQ(w1.finalizedRows(), 3);
    EXPECT_EQ(w1.pendingRows(), 0);
    w1.pushDecode(std::vector<float>(4, 0.25f));
    EXPECT_EQ(w1.finalizedRows(), 4);
    EXPECT_EQ(w1.pendingRows(), 0);
    EXPECT_EQ(w1.codePanels().windows(), 4);

    // Exact multiple of the window: prefill leaves nothing pending,
    // and the next decode seeds a fresh window.
    TemporalVQuantizer exact(4, 8, sel_, true, true);
    exact.pushPrefill(test::gaussianTensor(Shape{16, 4}, 303));
    EXPECT_EQ(exact.finalizedRows(), 16);
    EXPECT_EQ(exact.pendingRows(), 0);
    exact.pushDecode(std::vector<float>(4, 0.5f));
    EXPECT_EQ(exact.pendingRows(), 1);
    EXPECT_EQ(exact.codePanels().windows(), 2);

    // All-zero windows: every scale falls back to 1 (the shared
    // all-zero rule), finalization stays finite, and the captured
    // codes still decode to the stored floats bit for bit. (MANT has
    // no zero level, so the floats themselves need not be zero — the
    // code/float consistency is the invariant.)
    TemporalVQuantizer zeros(4, 2, sel_, true, true);
    zeros.pushPrefill(Tensor(Shape{4, 4})); // two all-zero windows
    EXPECT_EQ(zeros.finalizedRows(), 4);
    const Tensor rec = zeros.reconstruct();
    const VPanelStore &vp = zeros.codePanels();
    for (int64_t r = 0; r < 4; ++r) {
        const auto codes = vp.rowCodes(r);
        for (int64_t c = 0; c < 4; ++c) {
            const MantGroupMeta meta = vp.metaAt(r / 2, c);
            EXPECT_GT(meta.scale, 0.0f);
            const float decoded =
                meta.isInt
                    ? static_cast<float>(codes[static_cast<size_t>(c)]) *
                          meta.scale
                    : static_cast<float>(mantCodeValue(
                          meta.a,
                          static_cast<MantCode>(
                              static_cast<uint8_t>(
                                  codes[static_cast<size_t>(c)]) &
                              0xf))) *
                          meta.scale;
            EXPECT_EQ(decoded, rec.at(r, c));
        }
    }
}

TEST_F(KvQuantTest, RaggedChannelCountsCaptureConsistently)
{
    // channels % 8 != 0 pads the last V panel; the padded columns must
    // never leak into the flat view or the reconstruction.
    for (int64_t ch : {1, 3, 9, 11}) {
        TemporalVQuantizer tq(ch, 4, sel_, true, true);
        tq.pushPrefill(test::gaussianTensor(Shape{8, ch},
                                            400 + static_cast<uint64_t>(ch)));
        const Tensor rec = tq.reconstruct();
        const VPanelStore &vp = tq.codePanels();
        ASSERT_EQ(vp.windows(), 2);
        ASSERT_EQ(vp.panels(), (ch + 7) / 8);
        for (int64_t r = 0; r < 8; ++r) {
            const auto codes = vp.rowCodes(r);
            ASSERT_EQ(static_cast<int64_t>(codes.size()), ch);
            for (int64_t c = 0; c < ch; ++c) {
                const MantGroupMeta meta = vp.metaAt(r / 4, c);
                const float decoded =
                    meta.isInt
                        ? static_cast<float>(codes[static_cast<size_t>(c)]) *
                              meta.scale
                        : static_cast<float>(mantCodeValue(
                              meta.a,
                              static_cast<MantCode>(
                                  static_cast<uint8_t>(
                                      codes[static_cast<size_t>(c)]) &
                                  0xf))) *
                              meta.scale;
                EXPECT_EQ(decoded, rec.at(r, c))
                    << "ch=" << ch << " r=" << r << " c=" << c;
            }
        }
    }
}

TEST_F(KvQuantTest, ReconstructIsIdempotentAndNonMutating)
{
    TemporalVQuantizer tq(8, 8, sel_, true, true);
    tq.pushPrefill(test::gaussianTensor(Shape{20, 8}, 305));
    const int64_t rows_before = tq.rows();
    const double pending_before = tq.pendingFraction();
    const Tensor rec1 = tq.reconstruct();
    const Tensor rec2 = tq.reconstruct();
    EXPECT_TRUE(test::bytesEqual(rec1.span(), rec2.span()));
    EXPECT_EQ(tq.rows(), rows_before);
    EXPECT_EQ(tq.pendingFraction(), pending_before);
    // Pending rows decode from the stored INT8 codes exactly.
    const auto codes = tq.pendingCodes();
    const auto scales = tq.channelScales();
    for (int64_t r = 0; r < tq.pendingRows(); ++r)
        for (int64_t c = 0; c < 8; ++c)
            EXPECT_EQ(rec1.at(tq.finalizedRows() + r, c),
                      static_cast<float>(
                          codes[static_cast<size_t>(r * 8 + c)]) *
                          scales[static_cast<size_t>(c)]);
}

TEST_F(KvQuantTest, CodeCaptureAccessorsGateOnFlag)
{
    TemporalVQuantizer plain(4, 4, sel_);
    EXPECT_FALSE(plain.capturesCodes());
    EXPECT_THROW(plain.codePanels(), std::logic_error);

    TemporalVQuantizer capture(4, 4, sel_, true, true);
    EXPECT_TRUE(capture.capturesCodes());
    EXPECT_EQ(capture.codePanels().windows(), 0);

    // Capture must not perturb the quantization itself: same inputs,
    // same dequantized output, flag on or off.
    const Tensor v = test::gaussianTensor(Shape{10, 4}, 306);
    TemporalVQuantizer p2(4, 4, sel_);
    p2.pushPrefill(v);
    capture.pushPrefill(v);
    EXPECT_TRUE(test::bytesEqual(p2.reconstruct().span(),
                                 capture.reconstruct().span()));
}

} // namespace
} // namespace mant
