#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "model/layers.h"
#include "test_util.h"

namespace mant {
namespace {

TEST(Softmax, SumsToOne)
{
    std::vector<float> row = {1.0f, 2.0f, 3.0f, -1.0f};
    softmaxRow(row);
    const double sum = std::accumulate(row.begin(), row.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-6);
    for (float p : row)
        EXPECT_GT(p, 0.0f);
}

TEST(Softmax, MonotonicInLogits)
{
    std::vector<float> row = {0.0f, 1.0f, 2.0f};
    softmaxRow(row);
    EXPECT_LT(row[0], row[1]);
    EXPECT_LT(row[1], row[2]);
}

TEST(Softmax, StableForHugeLogits)
{
    std::vector<float> row = {1000.0f, 999.0f};
    softmaxRow(row);
    EXPECT_FALSE(std::isnan(row[0]));
    EXPECT_GT(row[0], row[1]);
}

TEST(Softmax, TemperatureSharpens)
{
    std::vector<float> soft = {1.0f, 2.0f};
    std::vector<float> sharp = {1.0f, 2.0f};
    softmaxRowScaled(soft, 0.5f);
    softmaxRowScaled(sharp, 5.0f);
    EXPECT_GT(sharp[1], soft[1]);
}

TEST(RmsNorm, UnitGainNormalizesRms)
{
    std::vector<float> row = {3.0f, -4.0f, 5.0f, 1.0f};
    const std::vector<float> gain(4, 1.0f);
    rmsNormRow(row, gain);
    double ms = 0.0;
    for (float v : row)
        ms += static_cast<double>(v) * v;
    EXPECT_NEAR(std::sqrt(ms / 4.0), 1.0, 1e-3);
}

TEST(RmsNorm, GainScalesChannels)
{
    std::vector<float> row = {1.0f, 1.0f};
    const std::vector<float> gain = {1.0f, 3.0f};
    rmsNormRow(row, gain);
    EXPECT_NEAR(row[1] / row[0], 3.0f, 1e-5);
}

TEST(LayerNorm, ZeroMeanUnitVar)
{
    std::vector<float> row = {1.0f, 2.0f, 3.0f, 4.0f};
    const std::vector<float> gain(4, 1.0f), bias(4, 0.0f);
    layerNormRow(row, gain, bias);
    double mean = 0.0, var = 0.0;
    for (float v : row)
        mean += v;
    mean /= 4.0;
    for (float v : row)
        var += (v - mean) * (v - mean);
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var / 4.0, 1.0, 1e-2);
}

TEST(LayerNorm, BiasAdds)
{
    std::vector<float> row = {1.0f, -1.0f};
    const std::vector<float> gain(2, 0.0f), bias = {5.0f, -5.0f};
    layerNormRow(row, gain, bias);
    EXPECT_FLOAT_EQ(row[0], 5.0f);
    EXPECT_FLOAT_EQ(row[1], -5.0f);
}

TEST(Silu, KnownValues)
{
    std::vector<float> xs = {0.0f, 10.0f, -10.0f};
    siluInPlace(xs);
    EXPECT_FLOAT_EQ(xs[0], 0.0f);
    EXPECT_NEAR(xs[1], 10.0f, 1e-3);
    EXPECT_NEAR(xs[2], 0.0f, 1e-3);
}

TEST(Gelu, KnownValues)
{
    std::vector<float> xs = {0.0f, 3.0f, -3.0f};
    geluInPlace(xs);
    EXPECT_FLOAT_EQ(xs[0], 0.0f);
    EXPECT_NEAR(xs[1], 3.0f, 0.02f);
    EXPECT_NEAR(xs[2], 0.0f, 0.02f);
}

TEST(Rope, PreservesNorm)
{
    std::vector<float> v = {1.0f, 2.0f, -3.0f, 0.5f};
    double before = 0.0;
    for (float x : v)
        before += static_cast<double>(x) * x;
    applyRope(v, 17);
    double after = 0.0;
    for (float x : v)
        after += static_cast<double>(x) * x;
    EXPECT_NEAR(before, after, 1e-4);
}

TEST(Rope, PositionZeroIsIdentity)
{
    std::vector<float> v = {1.0f, 2.0f, -3.0f, 0.5f};
    const std::vector<float> orig = v;
    applyRope(v, 0);
    for (size_t i = 0; i < v.size(); ++i)
        EXPECT_NEAR(v[i], orig[i], 1e-6);
}

TEST(Rope, RelativePhaseProperty)
{
    // The dot product of two RoPE'd vectors depends only on the
    // position difference.
    std::vector<float> q = {0.3f, -0.7f, 1.1f, 0.2f};
    std::vector<float> k = {-0.5f, 0.9f, 0.4f, -1.0f};

    auto dot_at = [&](int64_t pq, int64_t pk) {
        std::vector<float> qq = q, kk = k;
        applyRope(qq, pq);
        applyRope(kk, pk);
        double acc = 0.0;
        for (size_t i = 0; i < qq.size(); ++i)
            acc += static_cast<double>(qq[i]) * kk[i];
        return acc;
    };
    EXPECT_NEAR(dot_at(5, 3), dot_at(12, 10), 1e-4);
    EXPECT_NEAR(dot_at(9, 9), dot_at(0, 0), 1e-4);
}

TEST(Rope, OddDimThrows)
{
    std::vector<float> v = {1.0f, 2.0f, 3.0f};
    EXPECT_THROW(applyRope(v, 1), std::invalid_argument);
}

TEST(Entropy, UniformIsLogN)
{
    const std::vector<float> p(8, 0.125f);
    EXPECT_NEAR(rowEntropy(p), std::log(8.0), 1e-6);
}

TEST(Entropy, DeltaIsZero)
{
    const std::vector<float> p = {1.0f, 0.0f, 0.0f};
    EXPECT_EQ(rowEntropy(p), 0.0);
}

TEST(CrossEntropy, SelfIsEntropy)
{
    std::vector<float> p = {0.1f, 0.2f, 0.3f, 0.4f};
    EXPECT_NEAR(rowCrossEntropy(p, p), rowEntropy(p), 1e-9);
}

TEST(CrossEntropy, GibbsInequality)
{
    const std::vector<float> p = {0.7f, 0.2f, 0.1f};
    const std::vector<float> q = {0.1f, 0.2f, 0.7f};
    EXPECT_GT(rowCrossEntropy(p, q), rowEntropy(p));
}

TEST(CrossEntropy, ClampsZeroQ)
{
    const std::vector<float> p = {0.5f, 0.5f};
    const std::vector<float> q = {1.0f, 0.0f};
    const double ce = rowCrossEntropy(p, q);
    EXPECT_TRUE(std::isfinite(ce));
    EXPECT_GT(ce, 5.0); // heavy penalty from the floor
}

} // namespace
} // namespace mant
