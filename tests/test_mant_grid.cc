#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/mant_grid.h"
#include "quant/fixed_formats.h"
#include "tensor/stats.h"

namespace mant {
namespace {

/** NF quantile helper (Eq. 3 of the paper). */
[[maybe_unused]] double
probitQuantile(int i, double eps)
{
    return probit(static_cast<double>(i) * (1.0 - eps) * 0.5 / 7.0 + 0.5);
}

TEST(MantGrid, Fig7GridForA17)
{
    // The paper's worked example: a = 17 gives positive magnitudes
    // {1, 19, 38, 59, 84, 117, 166, 247}.
    const int expected[] = {1, 19, 38, 59, 84, 117, 166, 247};
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(mantGridValue(17, i), expected[i]) << "i=" << i;
}

TEST(MantGrid, AZeroIsPot)
{
    // a = 0 -> Value = ±2^|INT| exactly (Sec. IV-A).
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(mantGridValue(0, i), 1 << i);
}

TEST(MantGrid, GridMax)
{
    EXPECT_EQ(mantGridMax(17), 7 * 17 + 128);
    EXPECT_EQ(mantGridMax(0), 128);
    EXPECT_EQ(mantGridMax(120), 968);
}

TEST(MantGrid, NoZeroOnGrid)
{
    // Both ±0 codes map to ±1: the grid contains no zero.
    for (int a : mantCoefficientSet()) {
        for (float lvl : mantFormat(a).levels())
            EXPECT_NE(lvl, 0.0f) << "a=" << a;
    }
}

TEST(MantGrid, SixteenDistinctLevels)
{
    for (int a : mantCoefficientSet()) {
        std::set<float> distinct;
        for (float lvl : mantFormat(a).levels())
            distinct.insert(lvl);
        EXPECT_EQ(distinct.size(), 16u) << "a=" << a;
    }
}

TEST(MantGrid, CodeHelpers)
{
    const MantCode c = makeMantCode(true, 5);
    EXPECT_TRUE(mantNegative(c));
    EXPECT_EQ(mantMagnitude(c), 5);
    EXPECT_EQ(mantSign(c), -1);
    EXPECT_EQ(mantCodeValue(17, c), -(17 * 5 + 32));

    const MantCode p = makeMantCode(false, 0);
    EXPECT_EQ(mantCodeValue(17, p), 1);
}

TEST(MantGrid, IndexCodeBijection)
{
    for (int idx = 0; idx < 16; ++idx) {
        const MantCode c = MantFormat::indexToCode(idx);
        EXPECT_EQ(MantFormat::codeToIndex(c), idx);
    }
    // And the level order matches the code values.
    const MantFormat &f = mantFormat(17);
    for (int idx = 0; idx < 16; ++idx) {
        EXPECT_FLOAT_EQ(
            f.levels()[static_cast<size_t>(idx)],
            static_cast<float>(
                mantCodeValue(17, MantFormat::indexToCode(idx))));
    }
}

TEST(MantGrid, CoefficientSetMatchesPaper)
{
    // Sec. V-A set; with the INT option it makes 16 selectable types.
    const auto set = mantCoefficientSet();
    ASSERT_EQ(set.size(), 15u);
    EXPECT_EQ(set[0], 0);
    EXPECT_EQ(set[3], 17);
    EXPECT_EQ(set[14], 120);
}

TEST(MantGrid, CoefficientBounds)
{
    EXPECT_THROW(MantFormat(-1), std::invalid_argument);
    EXPECT_THROW(MantFormat(128), std::invalid_argument);
    EXPECT_NO_THROW(MantFormat(127));
}

TEST(MantGrid, NormalizedValueEndpoints)
{
    for (int a : {0, 17, 60, 120}) {
        EXPECT_NEAR(mantNormalizedValue(a, 7), 1.0, 1e-12);
        EXPECT_GT(mantNormalizedValue(a, 0), 0.0);
        EXPECT_LT(mantNormalizedValue(a, 0), 0.02);
    }
}

TEST(MantGrid, LargerACloserToLinear)
{
    // As a grows the grid approaches INT (y(i) -> i/7): measure L1
    // distance to the linear ramp, must decrease with a.
    auto dist_to_linear = [](int a) {
        double d = 0.0;
        for (int i = 0; i <= 7; ++i)
            d += std::fabs(mantNormalizedValue(a, i) - i / 7.0);
        return d;
    };
    EXPECT_GT(dist_to_linear(0), dist_to_linear(17));
    EXPECT_GT(dist_to_linear(17), dist_to_linear(60));
    EXPECT_GT(dist_to_linear(60), dist_to_linear(120));
}

TEST(MantGrid, A17IsTheBestFloatApproximation)
{
    // Fig. 5: a = 17 tracks the float (E2M1-style) curve
    // {1,2,3,4,6,8,12,16}/16 better than any other grid in the
    // selectable neighbourhood — and far better than PoT or INT.
    const double fp4[] = {1 / 16.0, 2 / 16.0,  3 / 16.0, 4 / 16.0,
                          6 / 16.0, 8 / 16.0, 12 / 16.0, 1.0};
    auto l1 = [&](int a) {
        double d = 0.0;
        for (int i = 0; i < 8; ++i)
            d += std::fabs(mantNormalizedValue(a, i) - fp4[i]);
        return d;
    };
    int best_a = -1;
    double best = 1e9;
    for (int a = 0; a <= 127; ++a) {
        if (l1(a) < best) {
            best = l1(a);
            best_a = a;
        }
    }
    EXPECT_NEAR(best_a, 17, 6);
    EXPECT_LT(l1(17), l1(0));   // much better than PoT
    EXPECT_LT(l1(17), l1(120)); // much better than near-INT
}

TEST(MantGrid, A25BestApproximatesNf4)
{
    // Fig. 5: a = 25 tracks NormalFloat. Fit against the deployed NF4
    // grid's positive levels (QLoRA constants).
    const auto nf = nf4Format().levels();
    auto l1 = [&](int a) {
        double d = 0.0;
        for (int i = 0; i < 8; ++i)
            d += std::fabs(mantNormalizedValue(a, i) -
                           nf[static_cast<size_t>(8 + i)]);
        return d;
    };
    int best_a = -1;
    double best = 1e9;
    for (int a = 0; a <= 127; ++a) {
        if (l1(a) < best) {
            best = l1(a);
            best_a = a;
        }
    }
    // The exact best-fit depends on the eps convention in Eq. 3; the
    // robust property is that a *moderate* coefficient wins, and a=25
    // (the paper's pick) beats both extremes decisively.
    EXPECT_GE(best_a, 10);
    EXPECT_LE(best_a, 60);
    EXPECT_LT(l1(25), l1(0));
    EXPECT_LT(l1(25), l1(120));
}

TEST(MantGrid, EncodeDecodeRoundTrip)
{
    const MantFormat &f = mantFormat(40);
    const float scale = f.scaleFor(10.0f);
    for (int i = -30; i <= 30; ++i) {
        const float x = 0.33f * static_cast<float>(i);
        const MantCode c = f.encodeToCode(x, scale);
        const float v = f.decodeCode(c, scale);
        // Must match the generic format path exactly.
        EXPECT_FLOAT_EQ(v, f.quantizeValue(x, scale));
    }
}

TEST(MantGrid, FormatCacheReturnsSameInstance)
{
    EXPECT_EQ(&mantFormat(17), &mantFormat(17));
    EXPECT_NE(&mantFormat(17), &mantFormat(20));
}

} // namespace
} // namespace mant
