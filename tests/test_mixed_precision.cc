#include <gtest/gtest.h>

#include "quant/mixed_precision.h"

namespace mant {
namespace {

std::vector<LayerError>
threeLayers()
{
    return {
        {"a", 0.10, 0.001, 100},
        {"b", 0.02, 0.0005, 100},
        {"c", 0.30, 0.002, 100},
    };
}

TEST(MixedPrecision, LooseBudgetKeepsEverything4Bit)
{
    const auto layers = threeLayers();
    const BitAssignment a = assignBits(layers, 1.0);
    EXPECT_EQ(a.layersAt8, 0);
    EXPECT_EQ(a.avgBits, 4.0);
}

TEST(MixedPrecision, TightBudgetPromotesWorstFirst)
{
    const auto layers = threeLayers();
    // Aggregate at all-4 = (0.10+0.02+0.30)/3 = 0.14; budget 0.05
    // forces promoting "c" (0.30) first, then "a".
    const BitAssignment a = assignBits(layers, 0.05);
    EXPECT_EQ(a.bits[2], 8); // c promoted
    EXPECT_LE(a.aggregateNmse, 0.05);
}

TEST(MixedPrecision, ImpossibleBudgetPromotesAll)
{
    const auto layers = threeLayers();
    const BitAssignment a = assignBits(layers, 0.0);
    EXPECT_EQ(a.layersAt8, 3);
    EXPECT_EQ(a.avgBits, 8.0);
}

TEST(MixedPrecision, WeightingBySizeMatters)
{
    std::vector<LayerError> layers = {
        {"big", 0.10, 0.001, 1000},
        {"small", 0.50, 0.001, 10},
    };
    // Weighted error: (1000*0.10 + 10*0.50)/1010 = 0.104. The big
    // layer's promotion removes ~0.098, the small one's only ~0.005 —
    // greedy must take the big one first despite lower NMSE.
    const BitAssignment a = assignBits(layers, 0.01);
    EXPECT_EQ(a.bits[0], 8);
}

TEST(MixedPrecision, AggregateMonotoneInBudget)
{
    const auto layers = threeLayers();
    double prev_avg_bits = 100.0;
    for (double budget : {0.0, 0.01, 0.05, 0.2, 1.0}) {
        const BitAssignment a = assignBits(layers, budget);
        EXPECT_LE(a.avgBits, prev_avg_bits + 1e-12);
        prev_avg_bits = a.avgBits;
    }
}

TEST(MixedPrecisionTiered, ThreeTierPromotion)
{
    std::vector<TieredLayerError> layers(2);
    layers[0] = {"x", {4, 8, 16}, {0.5, 0.05, 1e-7}, 100};
    layers[1] = {"y", {4, 8, 16}, {0.1, 0.01, 1e-7}, 100};

    // Budget below what all-8 achieves forces a 16-bit tier.
    const TieredAssignment a = assignBitsTiered(layers, 0.005);
    EXPECT_LE(a.aggregateNmse, 0.005);
    EXPECT_GE(a.bits[0], 8);
    bool any16 = a.bits[0] == 16 || a.bits[1] == 16;
    EXPECT_TRUE(any16);
}

TEST(MixedPrecisionTiered, StopsWhenBudgetMet)
{
    std::vector<TieredLayerError> layers(1);
    layers[0] = {"x", {4, 8}, {0.01, 0.001}, 100};
    const TieredAssignment a = assignBitsTiered(layers, 0.02);
    EXPECT_EQ(a.bits[0], 4);
}

TEST(MixedPrecisionTiered, AvgBitsWeighted)
{
    std::vector<TieredLayerError> layers(2);
    layers[0] = {"x", {4, 8}, {1.0, 0.0}, 300};
    layers[1] = {"y", {4, 8}, {0.0, 0.0}, 100};
    const TieredAssignment a = assignBitsTiered(layers, 0.01);
    // x (weight 300) -> 8, y stays 4: avg = (300*8+100*4)/400 = 7.
    EXPECT_DOUBLE_EQ(a.avgBits, 7.0);
}

TEST(MixedPrecision, AggregateNmseHelper)
{
    const auto layers = threeLayers();
    const int bits4[] = {4, 4, 4};
    const int bits8[] = {8, 8, 8};
    EXPECT_GT(aggregateNmse(layers, bits4),
              aggregateNmse(layers, bits8));
}

} // namespace
} // namespace mant
